#pragma once
// awplint v2 symbol index: per-function summaries extracted from every
// analyzed translation unit, merged into a whole-program view. The index
// is what lets rank-taint and collective-reachability flow through
// arbitrary call depth (tools/awplint/callgraph.cpp runs the fixpoint) —
// it replaced the hand-maintained `collectiveWrappers` whitelist and the
// one-level taint approximation of awplint v1.
//
// The index is name-based, not overload-resolved: a call site `foo(...)`
// matches every summary named `foo`, and per-name facts are the
// conservative union over same-named summaries. That is exactly the
// semantics the old whitelist had (it listed bare names), so deleting it
// loses nothing — and the fixpoint finds wrappers the whitelist never
// knew about.

#include <cstddef>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace awplint {

// "acquired `acquired` while already holding `held`" — one observed lock
// acquisition ordering, anchored at the acquisition site so the global
// inversion report can point somewhere reviewable.
struct LockEdge {
  std::string held;      // qualified lock name, e.g. "Mailbox::mutex_"
  std::string acquired;  // qualified lock name
  std::string file;
  int line = 0;
};

struct FunctionSummary {
  std::string name;       // bare name (token-level: overloads fold)
  std::string qualifier;  // enclosing class, or X for an X::name definition
  std::string file;
  int line = 0;
  bool isHot = false;
  bool isDeclaration = false;  // body-less declaration (AWP_REQUIRES carrier)

  // Collectives: a member-call to a collective primitive in the body.
  bool callsCollectivePrimitive = false;
  // Rank taint: some `return` expression is rank-tainted by the local
  // scan (rank seeds / tainted locals, allreduce-scrubbed returns do not
  // count).
  bool localRankReturn = false;

  std::set<std::string> callees;        // bare names called in the body
  std::set<std::string> returnCallees;  // calls inside return expressions
  // callee -> locks actually held at some call site of that callee (the
  // scanner's per-scope lock tracking, not a function-level union). This
  // is what makes interprocedural lock-order edges per-call-site precise.
  std::map<std::string, std::set<std::string>> calleeHeld;

  // Lock facts. Lock names are qualified at index-merge time: a bare or
  // this-> acquisition of a declared mutex member of class C becomes
  // "C::name"; dotted paths the scanner cannot type-resolve stay textual.
  std::set<std::string> requiredLocks;  // from AWP_REQUIRES(...)
  std::set<std::string> acquiredLocks;  // acquired somewhere in the body
  std::vector<LockEdge> lockEdges;      // locally observed orderings

  // Rough allocation-site count (hot or cold) for --stats.
  int allocations = 0;
};

struct ClassInfo {
  std::string name;
  std::string file;
  // field -> guarding mutex member, from AWP_GUARDED_BY annotations.
  std::map<std::string, std::string> guardedFields;
  // declared mutex-typed members (std::mutex / shared_mutex / ...).
  std::set<std::string> mutexMembers;
};

// Per-file extraction result (pass 1 output for one file).
struct FileIndex {
  std::string path;
  std::vector<FunctionSummary> functions;
  std::vector<ClassInfo> classes;
};

// The whole-program view plus the fixpoint results over it.
struct SymbolIndex {
  std::vector<FunctionSummary> functions;
  std::map<std::string, ClassInfo> classes;  // merged by class name

  // ---- fixpoint results (filled by callgraph::propagate) ----
  // Names of functions that reach a collective primitive at any depth.
  std::set<std::string> collectiveNames;
  // Names of functions whose return value is rank-dependent at any depth.
  std::set<std::string> rankReturnNames;
  // name -> union of locks the function may acquire, transitively.
  std::map<std::string, std::set<std::string>> acquiresByName;
  // "Class::name" and bare "name" -> union of AWP_REQUIRES locks.
  std::map<std::string, std::set<std::string>> requiresByKey;

  void add(FileIndex&& fi);

  [[nodiscard]] const ClassInfo* classInfo(const std::string& name) const {
    auto it = classes.find(name);
    return it == classes.end() ? nullptr : &it->second;
  }
  [[nodiscard]] bool isCollective(const std::string& name) const {
    return collectiveNames.count(name) != 0;
  }
  [[nodiscard]] bool returnsRankData(const std::string& name) const {
    return rankReturnNames.count(name) != 0;
  }
  [[nodiscard]] const std::set<std::string>* requiredLocksFor(
      const std::string& qualifier, const std::string& name) const;
};

// Resolve raw lock paths against the merged class table ("mutex_" inside
// class C -> "C::mutex_"). Run after every file is merged, before the
// fixpoint; callgraph::propagate does this for you.
void qualifyIndexLocks(SymbolIndex& index);

// ---- index cache (CI keys it on the aggregate source hash) -------------
// save() writes the merged, fixpoint-annotated index; load() returns
// false (leaving *out untouched) unless the cache exists and its recorded
// key matches `key` exactly.
void saveIndexCache(const std::string& path, const std::string& key,
                    const SymbolIndex& index);
bool loadIndexCache(const std::string& path, const std::string& key,
                    SymbolIndex* out);

// FNV-1a over file contents; the cache key is the hash chain over every
// indexed file plus the tool's format version.
std::string indexCacheKey(const std::vector<std::string>& contents);

}  // namespace awplint
