#pragma once
// awplint lexer: a comment/string/preprocessor-aware tokenizer for the
// project's static-analysis pass. It is NOT a C++ parser — it produces a
// flat token stream with line numbers, plus the two comment channels the
// rules consume:
//   * suppressions  — `// awplint: <rule>(<reason>)` escape hatches
//   * expectations  — `// awplint-expect: <rule-id>` markers used by the
//                     fixture self-test to assert the exact finding set
// Preprocessor lines are skipped wholesale (macro BODIES are not analyzed;
// macro CALLS appear as ordinary identifiers, which is what the rules key
// on — e.g. AWP_CHECK counts as a throwing call at its use site).

#include <map>
#include <string>
#include <vector>

namespace awplint {

struct Token {
  // String tokens carry the literal's inner text (quotes and any raw-string
  // delimiter stripped, escape sequences left as written). The registry
  // drift gates key on them — fault-site consults are exact-match strings.
  enum class Kind { Identifier, Number, Punct, String };
  Kind kind = Kind::Punct;
  std::string text;
  int line = 0;
};

struct Annotation {
  std::string rule;    // e.g. "collective-uniform"
  std::string reason;  // text inside the parentheses; must be non-empty
};

struct LexedFile {
  std::vector<Token> tokens;
  // line -> suppression annotations found on that line
  std::map<int, std::vector<Annotation>> annotations;
  // line -> rule ids the fixture self-test expects to fire on that line
  std::map<int, std::vector<std::string>> expects;
};

LexedFile lex(const std::string& source);

}  // namespace awplint
