#pragma once
// awplint registry drift gates: cross-checks that keep the project's
// machine-readable registries and the code that consults them in sync.
// CI fails on silent divergence instead of letting it rot:
//
//   * registry-undeclared    — `check("site")` consulted in src/ for a
//                              site that fault::kKnownSites does not
//                              declare.
//   * registry-unconsulted   — a declared site whose string appears
//                              nowhere in the analyzed sources (dead
//                              registry entry).
//   * registry-untested      — a declared site (string + dedicated
//                              builder both unseen) or a Phase/Counter
//                              enum member referenced by no test.
//                              An exhaustive sweep test that walks
//                              kPhaseJsonNames / kCounterJsonNames
//                              covers every member of that enum.
//   * registry-json-mismatch — the Phase/Counter enums and their JSON
//                              name arrays diverge (count or per-index
//                              snake_case correspondence).
//   * hot-unpinned           — a function marked AWP_HOT in src/ that
//                              hot_registry.txt does not list (the
//                              registry is the reviewed set of pinned
//                              hot paths; additions must be recorded).
//
// Suppression for all of the above: `// awplint: registry-ok(<reason>)`
// on the anchor line.

#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"
#include "symbols.hpp"

namespace awplint {

struct RegistryInputs {
  // Lexed taxonomy header (Phase/Counter enums + JSON name arrays).
  const LexedFile* taxonomy = nullptr;
  std::string taxonomyPath;
  // Lexed header carrying the fault::kKnownSites table.
  const LexedFile* sites = nullptr;
  std::string sitesPath;
  // Hot registry entries (file-suffix -> function), from Config.
  const Config* cfg = nullptr;
  // Analyzed sources: path -> lexed file (consult scan + string scan).
  const std::vector<std::pair<std::string, const LexedFile*>>* sources =
      nullptr;
  // Merged symbol index (AWP_HOT definitions for the reverse check).
  const SymbolIndex* index = nullptr;
  // Raw contents of every test/example file (reference scan).
  const std::vector<std::string>* testContents = nullptr;
};

std::vector<Finding> registryFindings(const RegistryInputs& in);

}  // namespace awplint
