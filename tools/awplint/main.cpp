// awplint — project-specific static analysis for the AWP solver sources.
//
// Usage:
//   awplint [--taxonomy FILE] [--hot-registry FILE] [--self-test] PATH...
//
// PATH arguments may be files or directories (directories are walked
// recursively for .cpp/.hpp). Exit status is non-zero when findings are
// emitted, or — under --self-test — when the findings do not match the
// `// awplint-expect:` markers in the fixture set exactly (both missed
// expectations and unexpected findings fail).

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  *ok = static_cast<bool>(in);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool isSource(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

void collect(const fs::path& root, std::vector<fs::path>* out) {
  if (fs::is_directory(root)) {
    for (const auto& e : fs::recursive_directory_iterator(root))
      if (e.is_regular_file() && isSource(e.path())) out->push_back(e.path());
  } else {
    out->push_back(root);
  }
}

void loadHotRegistry(const fs::path& p, awplint::Config* cfg, bool* ok) {
  std::ifstream in(p);
  *ok = static_cast<bool>(in);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back())))
      line.pop_back();
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start])))
      ++start;
    line.erase(0, start);
    if (line.empty()) continue;
    const std::size_t sep = line.find("::");
    if (sep == std::string::npos) continue;
    cfg->hotRegistry.emplace(line.substr(0, sep), line.substr(sep + 2));
  }
}

}  // namespace

int main(int argc, char** argv) {
  awplint::Config cfg;
  bool selfTest = false;
  std::vector<fs::path> roots;
  fs::path taxonomyPath;
  fs::path registryPath;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--taxonomy" && a + 1 < argc) {
      taxonomyPath = argv[++a];
    } else if (arg == "--hot-registry" && a + 1 < argc) {
      registryPath = argv[++a];
    } else if (arg == "--self-test") {
      selfTest = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: awplint [--taxonomy FILE] [--hot-registry FILE] "
                   "[--self-test] PATH...\n";
      return 0;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "awplint: no input paths\n";
    return 2;
  }

  bool ok = true;
  if (!taxonomyPath.empty()) {
    const std::string src = slurp(taxonomyPath, &ok);
    if (!ok) {
      std::cerr << "awplint: cannot read taxonomy " << taxonomyPath << "\n";
      return 2;
    }
    cfg.phases = awplint::parsePhaseTaxonomy(awplint::lex(src));
    if (cfg.phases.empty()) {
      std::cerr << "awplint: no Phase enum found in " << taxonomyPath << "\n";
      return 2;
    }
  }
  if (!registryPath.empty()) {
    loadHotRegistry(registryPath, &cfg, &ok);
    if (!ok) {
      std::cerr << "awplint: cannot read hot registry " << registryPath
                << "\n";
      return 2;
    }
  }

  std::vector<fs::path> files;
  for (const fs::path& r : roots) {
    if (!fs::exists(r)) {
      std::cerr << "awplint: no such path: " << r << "\n";
      return 2;
    }
    collect(r, &files);
  }
  std::sort(files.begin(), files.end());

  int findingCount = 0;
  int mismatchCount = 0;
  for (const fs::path& f : files) {
    const std::string src = slurp(f, &ok);
    if (!ok) {
      std::cerr << "awplint: cannot read " << f << "\n";
      return 2;
    }
    const awplint::LexedFile lf = awplint::lex(src);
    std::vector<awplint::Finding> findings =
        awplint::analyzeFile(f.generic_string(), lf, cfg);

    if (!selfTest) {
      for (const auto& fd : findings) {
        std::cout << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
                  << fd.message << "\n";
        ++findingCount;
      }
      continue;
    }

    // Self-test: findings must match the expect markers exactly.
    std::map<int, std::vector<std::string>> expected = lf.expects;
    for (const auto& fd : findings) {
      auto it = expected.find(fd.line);
      bool matched = false;
      if (it != expected.end()) {
        auto& rules = it->second;
        auto rit = std::find(rules.begin(), rules.end(), fd.rule);
        if (rit != rules.end()) {
          rules.erase(rit);
          if (rules.empty()) expected.erase(it);
          matched = true;
        }
      }
      if (!matched) {
        std::cout << fd.file << ":" << fd.line << ": UNEXPECTED [" << fd.rule
                  << "] " << fd.message << "\n";
        ++mismatchCount;
      }
    }
    for (const auto& [line, rules] : expected) {
      for (const auto& rule : rules) {
        std::cout << f.generic_string() << ":" << line << ": MISSED expected ["
                  << rule << "]\n";
        ++mismatchCount;
      }
    }
  }

  if (selfTest) {
    if (mismatchCount > 0) {
      std::cout << "awplint self-test: " << mismatchCount << " mismatch(es)\n";
      return 1;
    }
    std::cout << "awplint self-test: all expectations matched across "
              << files.size() << " fixture file(s)\n";
    return 0;
  }
  if (findingCount > 0) {
    std::cout << "awplint: " << findingCount << " finding(s)\n";
    return 1;
  }
  std::cout << "awplint: clean (" << files.size() << " files)\n";
  return 0;
}
