// awplint — project-specific static analysis for the AWP solver sources.
//
// Usage:
//   awplint [--taxonomy FILE] [--hot-registry FILE] [--sites FILE]
//           [--tests PATH]... [--registry] [--index-cache FILE]
//           [--json] [--stats] [--self-test] PATH...
//
// PATH arguments may be files or directories (directories are walked
// recursively for .cpp/.hpp). The v2 engine runs in two passes: pass 1
// indexes every file into per-function summaries, a fixed-point
// propagation over the merged index derives collective-reachability,
// rank-return taint and transitive lock sets, and pass 2 re-scans each
// file with the propagated index to emit findings. `--index-cache FILE`
// persists the propagated index keyed on the aggregate source hash (CI
// keys the cache on the same hash, so unchanged sources skip pass 1).
//
// `--registry` additionally runs the registry drift gates (requires
// --taxonomy, --hot-registry, --sites, and at least one --tests path).
//
// Exit status is non-zero when findings are emitted, or — under
// --self-test — when the findings do not match the `// awplint-expect:`
// markers in the fixture set exactly (both missed expectations and
// unexpected findings fail).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "lexer.hpp"
#include "registry.hpp"
#include "rules.hpp"
#include "symbols.hpp"

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  *ok = static_cast<bool>(in);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool isSource(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

void collect(const fs::path& root, std::vector<fs::path>* out) {
  if (fs::is_directory(root)) {
    for (const auto& e : fs::recursive_directory_iterator(root))
      if (e.is_regular_file() && isSource(e.path())) out->push_back(e.path());
  } else {
    out->push_back(root);
  }
}

void loadHotRegistry(const fs::path& p, awplint::Config* cfg, bool* ok) {
  std::ifstream in(p);
  *ok = static_cast<bool>(in);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back())))
      line.pop_back();
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start])))
      ++start;
    line.erase(0, start);
    if (line.empty()) continue;
    const std::size_t sep = line.find("::");
    if (sep == std::string::npos) continue;
    cfg->hotRegistry.emplace(line.substr(0, sep), line.substr(sep + 2));
  }
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct Options {
  fs::path taxonomyPath;
  fs::path registryPath;
  fs::path sitesPath;
  fs::path indexCachePath;
  std::vector<fs::path> testRoots;
  std::vector<fs::path> roots;
  bool selfTest = false;
  bool json = false;
  bool stats = false;
  bool registry = false;
};

int usage(int code) {
  (code == 0 ? std::cout : std::cerr)
      << "usage: awplint [--taxonomy FILE] [--hot-registry FILE]\n"
         "               [--sites FILE] [--tests PATH]... [--registry]\n"
         "               [--index-cache FILE] [--json] [--stats]\n"
         "               [--self-test] PATH...\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  awplint::Config cfg;
  Options opt;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--taxonomy" && a + 1 < argc) {
      opt.taxonomyPath = argv[++a];
    } else if (arg == "--hot-registry" && a + 1 < argc) {
      opt.registryPath = argv[++a];
    } else if (arg == "--sites" && a + 1 < argc) {
      opt.sitesPath = argv[++a];
    } else if (arg == "--tests" && a + 1 < argc) {
      opt.testRoots.emplace_back(argv[++a]);
    } else if (arg == "--index-cache" && a + 1 < argc) {
      opt.indexCachePath = argv[++a];
    } else if (arg == "--registry") {
      opt.registry = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--self-test") {
      opt.selfTest = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "awplint: unknown option " << arg << "\n";
      return usage(2);
    } else {
      opt.roots.emplace_back(arg);
    }
  }
  if (opt.roots.empty()) {
    std::cerr << "awplint: no input paths\n";
    return 2;
  }
  if (opt.registry &&
      (opt.taxonomyPath.empty() || opt.registryPath.empty() ||
       opt.sitesPath.empty() || opt.testRoots.empty())) {
    std::cerr << "awplint: --registry requires --taxonomy, --hot-registry, "
                 "--sites and at least one --tests path\n";
    return 2;
  }

  bool ok = true;
  awplint::LexedFile taxonomyLf;
  if (!opt.taxonomyPath.empty()) {
    const std::string src = slurp(opt.taxonomyPath, &ok);
    if (!ok) {
      std::cerr << "awplint: cannot read taxonomy " << opt.taxonomyPath
                << "\n";
      return 2;
    }
    taxonomyLf = awplint::lex(src);
    cfg.phases = awplint::parsePhaseTaxonomy(taxonomyLf);
    if (cfg.phases.empty()) {
      std::cerr << "awplint: no Phase enum found in " << opt.taxonomyPath
                << "\n";
      return 2;
    }
  }
  if (!opt.registryPath.empty()) {
    loadHotRegistry(opt.registryPath, &cfg, &ok);
    if (!ok) {
      std::cerr << "awplint: cannot read hot registry " << opt.registryPath
                << "\n";
      return 2;
    }
  }
  awplint::LexedFile sitesLf;
  if (!opt.sitesPath.empty()) {
    const std::string src = slurp(opt.sitesPath, &ok);
    if (!ok) {
      std::cerr << "awplint: cannot read sites header " << opt.sitesPath
                << "\n";
      return 2;
    }
    sitesLf = awplint::lex(src);
  }

  std::vector<fs::path> files;
  for (const fs::path& r : opt.roots) {
    if (!fs::exists(r)) {
      std::cerr << "awplint: no such path: " << r << "\n";
      return 2;
    }
    collect(r, &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // ---- lex everything once ------------------------------------------------
  std::vector<std::string> paths;
  std::vector<awplint::LexedFile> lexed;
  std::vector<std::string> contents;
  for (const fs::path& f : files) {
    std::string src = slurp(f, &ok);
    if (!ok) {
      std::cerr << "awplint: cannot read " << f << "\n";
      return 2;
    }
    paths.push_back(f.generic_string());
    lexed.push_back(awplint::lex(src));
    contents.push_back(std::move(src));
  }
  std::map<std::string, const awplint::LexedFile*> lfByPath;
  for (std::size_t i = 0; i < paths.size(); ++i)
    lfByPath[paths[i]] = &lexed[i];
  if (!opt.taxonomyPath.empty())
    lfByPath.emplace(opt.taxonomyPath.generic_string(), &taxonomyLf);
  if (!opt.sitesPath.empty())
    lfByPath.emplace(opt.sitesPath.generic_string(), &sitesLf);

  // ---- pass 1: symbol index (or cache hit) --------------------------------
  awplint::SymbolIndex index;
  awplint::PropagateStats pstats;
  const std::string cacheKey = awplint::indexCacheKey(contents);
  bool cacheHit = false;
  if (!opt.indexCachePath.empty() &&
      awplint::loadIndexCache(opt.indexCachePath.generic_string(), cacheKey,
                              &index)) {
    cacheHit = true;
    pstats.functionsIndexed = index.functions.size();
    for (const auto& f : index.functions) {
      pstats.callEdges += f.callees.size();
      pstats.lockEdges += f.lockEdges.size();
    }
    pstats.collectiveFunctions = index.collectiveNames.size();
    pstats.rankReturnFunctions = index.rankReturnNames.size();
    for (const auto& [name, c] : index.classes)
      pstats.guardedFields += c.guardedFields.size();
  } else {
    for (std::size_t i = 0; i < paths.size(); ++i)
      index.add(awplint::indexFile(paths[i], lexed[i], cfg));
    pstats = awplint::propagate(index);
    if (!opt.indexCachePath.empty())
      awplint::saveIndexCache(opt.indexCachePath.generic_string(), cacheKey,
                              index);
  }

  // ---- pass 2: per-file findings ------------------------------------------
  std::map<std::string, std::vector<awplint::Finding>> byFile;
  for (std::size_t i = 0; i < paths.size(); ++i)
    byFile[paths[i]] = awplint::analyzeFile(paths[i], lexed[i], cfg, index);

  // Global findings anchor wherever their evidence is; suppressions from
  // the anchor file apply.
  auto addGlobal = [&](awplint::Finding f) {
    const auto it = lfByPath.find(f.file);
    std::vector<awplint::Finding> one;
    one.push_back(std::move(f));
    if (it != lfByPath.end())
      one = awplint::applySuppressions(std::move(one), *it->second);
    for (auto& kept : one) byFile[kept.file].push_back(std::move(kept));
  };

  for (const awplint::LockOrderFinding& lo :
       awplint::lockOrderInversions(index))
    addGlobal({lo.file, lo.line, "lock-order", lo.message});

  // ---- registry drift gates -----------------------------------------------
  if (opt.registry) {
    std::vector<fs::path> testFiles;
    for (const fs::path& r : opt.testRoots) {
      if (!fs::exists(r)) {
        std::cerr << "awplint: no such --tests path: " << r << "\n";
        return 2;
      }
      collect(r, &testFiles);
    }
    std::vector<std::string> testContents;
    for (const fs::path& t : testFiles) {
      testContents.push_back(slurp(t, &ok));
      if (!ok) {
        std::cerr << "awplint: cannot read " << t << "\n";
        return 2;
      }
    }
    std::vector<std::pair<std::string, const awplint::LexedFile*>> sources;
    for (std::size_t i = 0; i < paths.size(); ++i)
      sources.emplace_back(paths[i], &lexed[i]);

    awplint::RegistryInputs in;
    in.taxonomy = &taxonomyLf;
    in.taxonomyPath = opt.taxonomyPath.generic_string();
    in.sites = &sitesLf;
    in.sitesPath = opt.sitesPath.generic_string();
    in.cfg = &cfg;
    in.sources = &sources;
    in.index = &index;
    in.testContents = &testContents;
    for (awplint::Finding& f : awplint::registryFindings(in))
      addGlobal(std::move(f));
  }

  // ---- self-test: findings must match expect markers exactly --------------
  if (opt.selfTest) {
    int mismatchCount = 0;
    std::set<std::string> reportPaths;
    for (const auto& [path, lf] : lfByPath) reportPaths.insert(path);
    for (const auto& [path, fds] : byFile) reportPaths.insert(path);
    for (const std::string& path : reportPaths) {
      std::map<int, std::vector<std::string>> expected;
      const auto lfIt = lfByPath.find(path);
      if (lfIt != lfByPath.end()) expected = lfIt->second->expects;
      for (const auto& fd : byFile[path]) {
        auto it = expected.find(fd.line);
        bool matched = false;
        if (it != expected.end()) {
          auto& rules = it->second;
          auto rit = std::find(rules.begin(), rules.end(), fd.rule);
          if (rit != rules.end()) {
            rules.erase(rit);
            if (rules.empty()) expected.erase(it);
            matched = true;
          }
        }
        if (!matched) {
          std::cout << fd.file << ":" << fd.line << ": UNEXPECTED ["
                    << fd.rule << "] " << fd.message << "\n";
          ++mismatchCount;
        }
      }
      for (const auto& [line, rules] : expected) {
        for (const auto& rule : rules) {
          std::cout << path << ":" << line << ": MISSED expected [" << rule
                    << "]\n";
          ++mismatchCount;
        }
      }
    }
    if (mismatchCount > 0) {
      std::cout << "awplint self-test: " << mismatchCount
                << " mismatch(es)\n";
      return 1;
    }
    std::cout << "awplint self-test: all expectations matched across "
              << files.size() << " fixture file(s)\n";
    return 0;
  }

  // ---- report -------------------------------------------------------------
  std::vector<awplint::Finding> all;
  for (auto& [path, fds] : byFile)
    for (auto& fd : fds) all.push_back(std::move(fd));
  std::sort(all.begin(), all.end(),
            [](const awplint::Finding& a, const awplint::Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  if (opt.json) {
    std::cout << "{\n  \"findings\": [";
    for (std::size_t i = 0; i < all.size(); ++i) {
      const auto& fd = all[i];
      std::cout << (i ? ",\n    " : "\n    ") << "{\"file\": \""
                << jsonEscape(fd.file) << "\", \"line\": " << fd.line
                << ", \"rule\": \"" << jsonEscape(fd.rule)
                << "\", \"message\": \"" << jsonEscape(fd.message) << "\"}";
    }
    std::cout << (all.empty() ? "]" : "\n  ]") << ",\n  \"stats\": {"
              << "\"files\": " << files.size()
              << ", \"functions_indexed\": " << pstats.functionsIndexed
              << ", \"call_edges\": " << pstats.callEdges
              << ", \"fixpoint_iterations\": " << pstats.fixpointIterations
              << ", \"collective_functions\": " << pstats.collectiveFunctions
              << ", \"rank_return_functions\": "
              << pstats.rankReturnFunctions
              << ", \"guarded_fields\": " << pstats.guardedFields
              << ", \"lock_edges\": " << pstats.lockEdges
              << ", \"index_cache\": \"" << (cacheHit ? "hit" : "miss")
              << "\"},\n  \"findings_count\": " << all.size() << "\n}\n";
    return all.empty() ? 0 : 1;
  }

  for (const auto& fd : all)
    std::cout << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
              << fd.message << "\n";
  if (opt.stats) {
    std::cout << "awplint stats: " << files.size() << " files, "
              << pstats.functionsIndexed << " functions indexed, "
              << pstats.callEdges << " call edges, "
              << pstats.fixpointIterations << " fixpoint iterations, "
              << pstats.collectiveFunctions << " collective-reaching, "
              << pstats.rankReturnFunctions << " rank-returning, "
              << pstats.guardedFields << " guarded fields, "
              << pstats.lockEdges << " lock edges"
              << (cacheHit ? " (index cache hit)" : "") << "\n";
  }
  if (!all.empty()) {
    std::cout << "awplint: " << all.size() << " finding(s)\n";
    return 1;
  }
  std::cout << "awplint: clean (" << files.size() << " files)\n";
  return 0;
}
