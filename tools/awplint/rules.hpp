#pragma once
// awplint rule engine v2: four project-specific rule families enforced
// over src/ (see DESIGN.md §10 for the full catalog and the annotation
// grammar), running in two passes over the same token stream.
//
// Pass 1 (indexFile) extracts a per-function summary from every file —
// callees, collective primitives called, rank taint introduced or
// scrubbed at returns, locks required/acquired and their ordering,
// allocation sites — plus per-class guarded-field and mutex-member
// tables. tools/awplint/callgraph.cpp merges the summaries and runs a
// fixed-point propagation so collective-reachability and rank-taint flow
// through arbitrary call depth. The v1 `collectiveWrappers` whitelist
// and its one-level approximation are gone: wrappers are DISCOVERED.
//
// Pass 2 (analyzeFile) re-scans each file with the propagated index in
// hand and emits findings:
//
//   1. collective-in-rank-branch — a collective primitive (allreduce,
//      allgather, barrier, bcast, broadcast, gatherBytes) or ANY function
//      the fixpoint proved reaches one, under control flow whose
//      predicate is rank-dependent. Taint seeds: rank identifiers,
//      fault-injection state, and functions whose RETURN the fixpoint
//      proved per-rank. Results of allreduce/allgather scrub taint;
//      arguments of a completed bcast are scrubbed too (uniform after
//      the call). Suppress: `// awplint: collective-uniform(<why>)`.
//   2. hot-alloc / hot-throw — allocation, container growth, string
//      construction, or throwing calls inside AWP_HOT functions.
//      Suppress: `// awplint: hot-ok(<reason>)`.
//   3. span discipline — span-taxonomy / span-temporary / manual-span /
//      raw-span-api, unchanged from v1. Suppress: `// awplint:
//      span-ok(...)` / `manual-span(...)`.
//   4. lock discipline — a field annotated `AWP_GUARDED_BY(mutex)`
//      (src/util/guarded.hpp) accessed in a member function on a path
//      where the guarding mutex is not held (guarded-field); helpers
//      that expect the caller to hold it carry `AWP_REQUIRES(mutex)`,
//      and this-calls of such helpers without the lock held are flagged
//      too (lock-requires). Lock acquisition order is recorded per
//      function and checked globally for inversions (lock-order,
//      reported by the callgraph layer). Suppress: `// awplint:
//      guard-ok(...)` / `lock-ok(...)`.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "symbols.hpp"

namespace awplint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Config {
  // Valid telemetry phase names, parsed from taxonomy.hpp.
  std::set<std::string> phases;
  // Collectives called through an object (comm.barrier(), comm_->bcast()).
  std::set<std::string> collectivePrimitives = {
      "allreduce", "allgather", "barrier", "bcast", "broadcast",
      "gatherBytes"};
  // file-suffix -> function names that MUST carry AWP_HOT in that file.
  std::multimap<std::string, std::string> hotRegistry;
};

// Parse the Phase enum out of a lexed taxonomy header.
std::set<std::string> parsePhaseTaxonomy(const LexedFile& lf);

// Pass 1: extract the symbol-index contribution of one file.
FileIndex indexFile(const std::string& path, const LexedFile& lf,
                    const Config& cfg);

// Pass 2: run all applicable rule families over one lexed file, with the
// propagated whole-program index in hand. `path` selects the per-layer
// exclusions (rule 1 skips src/vcluster — the implementation of the
// collectives; rule 3 skips src/telemetry — the implementation of the
// spans). Suppression annotations are applied before returning.
std::vector<Finding> analyzeFile(const std::string& path, const LexedFile& lf,
                                 const Config& cfg, const SymbolIndex& index);

// Apply `// awplint: <name>(<reason>)` suppressions from `lf` to findings
// that anchor in that file. Used by analyzeFile, and by main for global
// (lock-order) findings.
std::string suppressionNameFor(const std::string& rule);
std::vector<Finding> applySuppressions(std::vector<Finding> findings,
                                       const LexedFile& lf);

}  // namespace awplint
