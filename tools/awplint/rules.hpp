#pragma once
// awplint rule engine: the three project-specific rule families enforced
// over src/ (see DESIGN.md §10 for the full catalog and the annotation
// grammar).
//
//   1. collective-in-rank-branch — a Communicator/Mailbox collective
//      (allreduce, allgather, barrier, bcast, gatherBytes, or a known
//      collective wrapper) reached under control flow whose predicate is
//      rank-dependent: derived from rank(), per-rank verdict scans, or
//      fault-injection sites. Rank-divergent control flow around a
//      collective is the canonical SPMD deadlock. Suppress with
//      `// awplint: collective-uniform(<why all ranks agree>)`.
//   2. hot-alloc / hot-throw — allocation, container growth, string
//      construction, or throwing calls inside a function marked AWP_HOT
//      (the solver step loop, FD kernels, halo pack/unpack, PML/sponge
//      updates). Suppress with `// awplint: hot-ok(<reason>)`.
//   3. span discipline — telemetry::Phase members must belong to the
//      fixed taxonomy (span-taxonomy), ScopedSpan must be a named local,
//      never a discarded temporary (span-temporary), ManualSpan use must
//      be justified (manual-span), and the raw RankTelemetry open/close
//      API stays inside src/telemetry (raw-span-api). Suppress with
//      `// awplint: span-ok(...)` / `// awplint: manual-span(...)`.
//
// The analysis is a scoped token scan with one-level taint propagation,
// not a full dataflow pass: results of allreduce/allgather are uniform by
// construction and scrub taint; early exits (return/throw) under a
// tainted predicate taint the remainder of the function; break/continue
// taint the remainder of the enclosing loop.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace awplint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Config {
  // Valid telemetry phase names, parsed from taxonomy.hpp.
  std::set<std::string> phases;
  // Collectives called through an object (comm.barrier(), comm_->bcast()).
  std::set<std::string> collectivePrimitives = {
      "allreduce", "allgather", "barrier", "bcast", "broadcast",
      "gatherBytes"};
  // Functions that contain collectives, flagged at their call sites too.
  std::set<std::string> collectiveWrappers = {
      "collectivePreflight", "collectiveRupturePreflight", "parallelMd5",
      "aggregate",           "emitTelemetry",              "restart",
      "preflight",           "evaluate",                   "collectTraces",
      "gatherFaultHistory",  "exchangeVelocities",         "exchangeStresses",
      "exchangeMaterial",    "exchangeFields"};
  // file-suffix -> function names that MUST carry AWP_HOT in that file.
  std::multimap<std::string, std::string> hotRegistry;
};

// Parse the Phase enum out of a lexed taxonomy header.
std::set<std::string> parsePhaseTaxonomy(const LexedFile& lf);

// Run all applicable rule families over one lexed file. `path` selects the
// per-layer exclusions (rule 1 skips src/vcluster — the implementation of
// the collectives; rule 3 skips src/telemetry — the implementation of the
// spans). Suppression annotations are applied before returning.
std::vector<Finding> analyzeFile(const std::string& path, const LexedFile& lf,
                                 const Config& cfg);

}  // namespace awplint
