#include "lexer.hpp"

#include <cctype>

namespace awplint {

namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parse the comment channels out of one line comment's text (the part
// after "//"). Recognized forms:
//   awplint: <rule>(<reason>)      — suppression
//   awplint-expect: <rule-id>      — fixture expectation
void parseCommentDirectives(const std::string& text, int line, LexedFile& out) {
  std::size_t at = 0;
  while (at < text.size() && std::isspace(static_cast<unsigned char>(text[at])))
    ++at;
  auto startsWith = [&](const char* prefix) {
    return text.compare(at, std::string(prefix).size(), prefix) == 0;
  };
  if (startsWith("awplint-expect:")) {
    std::size_t p = at + std::string("awplint-expect:").size();
    while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
      ++p;
    std::size_t e = p;
    while (e < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[e])))
      ++e;
    if (e > p) out.expects[line].push_back(text.substr(p, e - p));
    return;
  }
  if (startsWith("awplint:")) {
    std::size_t p = at + std::string("awplint:").size();
    while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
      ++p;
    std::size_t nameEnd = p;
    while (nameEnd < text.size() &&
           (isIdentChar(text[nameEnd]) || text[nameEnd] == '-'))
      ++nameEnd;
    Annotation a;
    a.rule = text.substr(p, nameEnd - p);
    if (nameEnd < text.size() && text[nameEnd] == '(') {
      const std::size_t close = text.rfind(')');
      if (close != std::string::npos && close > nameEnd)
        a.reason = text.substr(nameEnd + 1, close - nameEnd - 1);
    }
    if (!a.rule.empty()) out.annotations[line].push_back(a);
  }
}

}  // namespace

LexedFile lex(const std::string& src) {
  LexedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool atLineStart = true;

  auto bump = [&](char c) {
    if (c == '\n') {
      ++line;
      atLineStart = true;
    }
  };

  while (i < n) {
    const char c = src[i];

    if (c == '\n') {
      bump(c);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor directive: skip to end of line, honoring continuations.
    if (c == '#' && atLineStart) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          bump('\n');
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    atLineStart = false;

    // Line comment (with directive channels). A backslash-newline splice
    // CONTINUES the comment onto the next physical line (translation phase
    // 2 runs before comment removal), so the scanner must not wake up and
    // tokenize the spliced tail as code.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int commentLine = line;
      std::string text;
      std::size_t e = i + 2;
      while (e < n) {
        if (src[e] == '\\' && e + 1 < n && src[e + 1] == '\n') {
          bump('\n');
          text += ' ';
          e += 2;
          continue;
        }
        if (src[e] == '\n') break;
        text += src[e];
        ++e;
      }
      parseCommentDirectives(text, commentLine, out);
      i = e;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        bump(src[i]);
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // String literal (emitted as a String token; the registry gates match
    // fault-site consults on the inner text). Escapes are NOT processed —
    // `\\` and `\"` just keep the scanner from ending the literal early.
    auto scanString = [&]() {
      std::size_t e = i + 1;
      std::string text;
      while (e < n && src[e] != '"') {
        if (src[e] == '\\' && e + 1 < n) {
          text += src[e];
          bump(src[e]);
          ++e;
        }
        text += src[e];
        bump(src[e]);
        ++e;
      }
      out.tokens.push_back({Token::Kind::String, std::move(text), line});
      i = (e < n) ? e + 1 : n;
    };
    // Raw string literal R"delim( ... )delim" — no escape processing and
    // the delimiter (not a bare quote) ends it. An unmatched delimiter
    // consumes to EOF rather than desyncing into the middle of the file.
    auto scanRawString = [&]() {
      // i points at the opening '"'.
      std::size_t d = i + 1;
      while (d < n && src[d] != '(' && src[d] != '"' && src[d] != '\n' &&
             d - i <= 17)
        ++d;
      if (d >= n || src[d] != '(') {  // ill-formed; treat as a plain string
        scanString();
        return;
      }
      const std::string delim = ")" + src.substr(i + 1, d - i - 1) + "\"";
      std::size_t e = src.find(delim, d + 1);
      const std::size_t contentEnd = (e == std::string::npos) ? n : e;
      out.tokens.push_back(
          {Token::Kind::String, src.substr(d + 1, contentEnd - d - 1), line});
      e = (e == std::string::npos) ? n : e + delim.size();
      for (std::size_t k = i; k < e && k < n; ++k) bump(src[k]);
      i = e;
    };
    if (c == '"') {
      scanString();
      continue;
    }
    // Char literal: consumed, not emitted.
    if (c == '\'') {
      std::size_t e = i + 1;
      while (e < n && src[e] != '\'') {
        if (src[e] == '\\' && e + 1 < n) ++e;
        bump(src[e]);
        ++e;
      }
      i = (e < n) ? e + 1 : n;
      continue;
    }

    if (isIdentStart(c)) {
      std::size_t e = i;
      while (e < n && isIdentChar(src[e])) ++e;
      std::string id = src.substr(i, e - i);
      // Raw-string openers, with or without an encoding prefix, scan as an
      // identifier ending in R followed directly by a quote: R"( u8R"( LR"(.
      // The old scanner only caught bare R and fell into the escape-aware
      // plain-string path for the rest, desyncing on content like "..\)".
      if (e < n && src[e] == '"' &&
          (id == "R" || id == "u8R" || id == "uR" || id == "UR" ||
           id == "LR")) {
        i = e;
        scanRawString();
        continue;
      }
      out.tokens.push_back({Token::Kind::Identifier, std::move(id), line});
      i = e;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t e = i;
      while (e < n && (isIdentChar(src[e]) || src[e] == '.' ||
                       ((src[e] == '+' || src[e] == '-') && e > i &&
                        (src[e - 1] == 'e' || src[e - 1] == 'E'))))
        ++e;
      out.tokens.push_back({Token::Kind::Number, src.substr(i, e - i), line});
      i = e;
      continue;
    }

    // Multi-char punctuators the rules care about.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({Token::Kind::Punct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({Token::Kind::Punct, "->", line});
      i += 2;
      continue;
    }
    // Comparison / compound-assignment operators are folded to two-char
    // tokens so the taint pass can tell `=` from `==`, `<=`, `+=`, ...
    if (i + 1 < n && src[i + 1] == '=' &&
        (c == '=' || c == '!' || c == '<' || c == '>' || c == '+' ||
         c == '-' || c == '*' || c == '/' || c == '%' || c == '&' ||
         c == '|' || c == '^')) {
      out.tokens.push_back({Token::Kind::Punct, std::string{c, '='}, line});
      i += 2;
      continue;
    }

    out.tokens.push_back({Token::Kind::Punct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace awplint
