#include "callgraph.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace awplint {

const std::vector<std::string>& semanticRankReturnSeeds() {
  // These return per-rank VERDICTS computed from field data — divergence
  // the token engine cannot see (no rank identifier appears in their
  // bodies; the values themselves differ across ranks). Reviewed set.
  static const std::vector<std::string> kSeeds = {
      "scan", "runPreflight", "runRupturePreflight", "allFinite",
      "verdictFor"};
  return kSeeds;
}

namespace {

// Name-level view of the call graph: per bare name, the union of callee
// names across every summary sharing that name.
struct NameGraph {
  std::map<std::string, std::set<std::string>> callees;
  std::map<std::string, std::set<std::string>> returnCallees;
  std::size_t edges = 0;
};

NameGraph buildNameGraph(const SymbolIndex& index) {
  NameGraph g;
  for (const FunctionSummary& f : index.functions) {
    g.callees[f.name].insert(f.callees.begin(), f.callees.end());
    g.returnCallees[f.name].insert(f.returnCallees.begin(),
                                   f.returnCallees.end());
  }
  for (const auto& [name, cs] : g.callees) g.edges += cs.size();
  return g;
}

// Generic monotone fixpoint: grow `members` until no rule fires. The
// predicate receives a candidate name and the current member set; the
// iteration count is the number of whole-graph sweeps.
template <typename Rule>
std::size_t fixpoint(const NameGraph& g, std::set<std::string>& members,
                     Rule rule) {
  std::size_t sweeps = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    ++sweeps;
    for (const auto& [name, _] : g.callees) {
      if (members.count(name)) continue;
      if (rule(name, members)) {
        members.insert(name);
        changed = true;
      }
    }
  }
  return sweeps;
}

}  // namespace

PropagateStats propagate(SymbolIndex& index) {
  PropagateStats stats;
  stats.functionsIndexed = index.functions.size();

  qualifyIndexLocks(index);

  const NameGraph g = buildNameGraph(index);
  stats.callEdges = g.edges;

  // ---- collective reachability ------------------------------------------
  index.collectiveNames.clear();
  for (const FunctionSummary& f : index.functions)
    if (f.callsCollectivePrimitive) index.collectiveNames.insert(f.name);
  stats.fixpointIterations += fixpoint(
      g, index.collectiveNames,
      [&](const std::string& name, const std::set<std::string>& members) {
        const auto it = g.callees.find(name);
        for (const std::string& c : it->second)
          if (members.count(c)) return true;
        return false;
      });
  stats.collectiveFunctions = index.collectiveNames.size();

  // ---- rank-tainted returns ---------------------------------------------
  // Flows only through RETURN-position calls: `return helper();` taints
  // the caller's return; a helper called mid-body does not.
  index.rankReturnNames.clear();
  for (const std::string& s : semanticRankReturnSeeds())
    index.rankReturnNames.insert(s);
  for (const FunctionSummary& f : index.functions)
    if (f.localRankReturn) index.rankReturnNames.insert(f.name);
  stats.fixpointIterations += fixpoint(
      g, index.rankReturnNames,
      [&](const std::string& name, const std::set<std::string>& members) {
        const auto it = g.returnCallees.find(name);
        for (const std::string& c : it->second)
          if (members.count(c)) return true;
        return false;
      });
  stats.rankReturnFunctions = index.rankReturnNames.size();

  // ---- transitive lock acquisition sets ---------------------------------
  index.acquiresByName.clear();
  for (const FunctionSummary& f : index.functions) {
    auto& s = index.acquiresByName[f.name];
    s.insert(f.acquiredLocks.begin(), f.acquiredLocks.end());
  }
  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.fixpointIterations;
    for (const auto& [name, cs] : g.callees) {
      auto& mine = index.acquiresByName[name];
      const std::size_t before = mine.size();
      for (const std::string& c : cs) {
        const auto it = index.acquiresByName.find(c);
        if (it != index.acquiresByName.end())
          mine.insert(it->second.begin(), it->second.end());
      }
      if (mine.size() != before) changed = true;
    }
  }

  // ---- AWP_REQUIRES lookup table ----------------------------------------
  index.requiresByKey.clear();
  for (const FunctionSummary& f : index.functions) {
    if (f.requiredLocks.empty()) continue;
    index.requiresByKey[f.name].insert(f.requiredLocks.begin(),
                                       f.requiredLocks.end());
    if (!f.qualifier.empty())
      index.requiresByKey[f.qualifier + "::" + f.name].insert(
          f.requiredLocks.begin(), f.requiredLocks.end());
  }

  for (const auto& [name, c] : index.classes)
    stats.guardedFields += c.guardedFields.size();
  for (const FunctionSummary& f : index.functions)
    stats.lockEdges += f.lockEdges.size();
  return stats;
}

std::vector<LockOrderFinding> lockOrderInversions(const SymbolIndex& index) {
  // Edge set: (held, acquired) pairs with a representative site. Local
  // edges come straight from summaries; interprocedural edges arise when
  // a function calls `g` while holding L and `g` may transitively acquire
  // M — that is an L-before-M ordering even though no single function
  // shows both acquisitions.
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  auto record = [&](const LockEdge& e) {
    if (e.held == e.acquired) return;  // same-name self edges are noise
    edges.emplace(std::make_pair(e.held, e.acquired), e);
  };
  // Direct acquisitions per bare name (no transitive closure: the
  // name-folded closure turns `run`/`pump`-style names into "acquires
  // everything", and crossing that with held sets manufactures edge
  // pairs no execution can realize).
  std::map<std::string, std::set<std::string>> directAcquires;
  for (const FunctionSummary& f : index.functions)
    directAcquires[f.name].insert(f.acquiredLocks.begin(),
                                  f.acquiredLocks.end());
  const auto qualified = [](const std::string& lock) {
    return lock.find("::") != std::string::npos;
  };
  for (const FunctionSummary& f : index.functions) {
    for (const LockEdge& e : f.lockEdges) record(e);
    // Interprocedural: a call made while a lock is actually held (the
    // scanner's per-scope tracking, via calleeHeld) orders that lock
    // before everything the callee's own body acquires. Restricted to
    // class-qualified locks on both sides — textual paths such as
    // `it.second.mu` name different objects at different sites, and
    // bare-name callee folding makes unqualified matches meaningless
    // across classes. Inversions only fire when BOTH directions are
    // observed, so this stays conservative.
    for (const auto& [callee, heldSet] : f.calleeHeld) {
      const auto it = directAcquires.find(callee);
      if (it == directAcquires.end()) continue;
      for (const std::string& acq : it->second) {
        if (!qualified(acq)) continue;
        for (const std::string& held : heldSet)
          if (qualified(held)) record({held, acq, f.file, f.line});
      }
    }
  }

  std::vector<LockOrderFinding> findings;
  std::set<std::pair<std::string, std::string>> reported;
  for (const auto& [pair, edge] : edges) {
    const auto inverse = edges.find({pair.second, pair.first});
    if (inverse == edges.end()) continue;
    // Report each unordered pair once, at the lexicographically first
    // direction's site.
    auto key = std::minmax(pair.first, pair.second);
    if (!reported.insert({key.first, key.second}).second) continue;
    LockOrderFinding f;
    f.file = edge.file;
    f.line = edge.line;
    f.message = "lock-order inversion: `" + pair.first + "` -> `" +
                pair.second + "` here, but `" + inverse->second.held +
                "` -> `" + inverse->second.acquired + "` at " +
                inverse->second.file + ":" +
                std::to_string(inverse->second.line) +
                "; pick one global order or annotate with `// awplint: "
                "lock-ok(<why these cannot deadlock>)`";
    findings.push_back(std::move(f));
  }
  return findings;
}

}  // namespace awplint
