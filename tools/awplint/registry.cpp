#include "registry.hpp"

#include <cctype>
#include <set>

namespace awplint {

namespace {

bool isIdent(const Token& t) { return t.kind == Token::Kind::Identifier; }
bool is(const Token& t, const char* s) { return t.text == s; }

struct NamedEntry {
  std::string text;
  int line = 0;
};

// Members of `enum class <name> ...`, declaration order, kCount excluded.
std::vector<NamedEntry> parseEnumMembers(const LexedFile& lf,
                                         const std::string& name) {
  std::vector<NamedEntry> out;
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is(toks[i], "enum")) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && (is(toks[j], "class") || is(toks[j], "struct")))
      ++j;
    if (j >= toks.size() || toks[j].text != name) continue;
    while (j < toks.size() && !is(toks[j], "{")) ++j;
    ++j;
    bool expectName = true;
    int depth = 1;
    for (; j < toks.size() && depth > 0; ++j) {
      if (is(toks[j], "{")) ++depth;
      else if (is(toks[j], "}")) --depth;
      else if (is(toks[j], ",") && depth == 1) expectName = true;
      else if (expectName && isIdent(toks[j])) {
        if (toks[j].text != "kCount")
          out.push_back({toks[j].text, toks[j].line});
        expectName = false;
      }
    }
    return out;
  }
  return out;
}

// String elements of `... <name> = { "a", "b", ... };`, in order.
std::vector<NamedEntry> parseStringArray(const LexedFile& lf,
                                         const std::string& name) {
  std::vector<NamedEntry> out;
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!isIdent(toks[i]) || toks[i].text != name) continue;
    std::size_t j = i + 1;
    while (j < toks.size() && !is(toks[j], "{") && !is(toks[j], ";")) ++j;
    if (j >= toks.size() || !is(toks[j], "{")) continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (is(toks[j], "{")) ++depth;
      else if (is(toks[j], "}") && --depth == 0) break;
      else if (toks[j].kind == Token::Kind::String)
        out.push_back({toks[j].text, toks[j].line});
    }
    return out;
  }
  return out;
}

struct SiteEntry {
  std::string site;
  std::string builder;  // "" when the site has no dedicated builder
  int line = 0;
};

// Entries of `constexpr KnownFaultSite kKnownSites[] = {{"s","b"}, ...};`.
std::vector<SiteEntry> parseKnownSites(const LexedFile& lf) {
  std::vector<SiteEntry> out;
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!isIdent(toks[i]) || toks[i].text != "kKnownSites") continue;
    std::size_t j = i + 1;
    while (j < toks.size() && !is(toks[j], "{") && !is(toks[j], ";")) ++j;
    if (j >= toks.size() || !is(toks[j], "{")) continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (is(toks[j], "{")) {
        ++depth;
        if (depth == 2 && j + 1 < toks.size() &&
            toks[j + 1].kind == Token::Kind::String) {
          SiteEntry e;
          e.site = toks[j + 1].text;
          e.line = toks[j + 1].line;
          if (j + 3 < toks.size() && is(toks[j + 2], ",") &&
              toks[j + 3].kind == Token::Kind::String)
            e.builder = toks[j + 3].text;
          out.push_back(std::move(e));
        }
      } else if (is(toks[j], "}") && --depth == 0) {
        break;
      }
    }
    return out;
  }
  return out;
}

// CamelCase -> snake_case ("DtTightenEvents" -> "dt_tighten_events").
std::string snakeCase(const std::string& name) {
  std::string out;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (std::isupper(static_cast<unsigned char>(c))) {
      if (i > 0) out.push_back('_');
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

class Gate {
 public:
  explicit Gate(const RegistryInputs& in) : in_(in) {}

  std::vector<Finding> run() {
    if (in_.sites != nullptr) siteGates();
    if (in_.taxonomy != nullptr) {
      enumGates("Phase", "kPhaseJsonNames");
      enumGates("Counter", "kCounterJsonNames");
    }
    if (in_.cfg != nullptr && in_.index != nullptr) hotGate();
    return std::move(findings_);
  }

 private:
  bool inTests(const std::string& needle) const {
    if (in_.testContents == nullptr || needle.empty()) return false;
    for (const std::string& body : *in_.testContents)
      if (body.find(needle) != std::string::npos) return true;
    return false;
  }

  void emit(const std::string& file, int line, const std::string& rule,
            const std::string& message) {
    findings_.push_back({file, line, rule, message});
  }

  // ---- fault sites --------------------------------------------------------

  void siteGates() {
    const std::vector<SiteEntry> declared = parseKnownSites(*in_.sites);
    if (declared.empty()) {
      emit(in_.sitesPath, 1, "registry-undeclared",
           "no kKnownSites table found in the sites header; the fault-site "
           "registry gate has nothing to check against");
      return;
    }
    std::set<std::string> declaredNames;
    for (const SiteEntry& e : declared) declaredNames.insert(e.site);

    // Every string literal seen in the analyzed sources (consulted-scan),
    // and every literal consult `check("site", ...)` (declared-scan).
    std::set<std::string> sourceStrings;
    if (in_.sources != nullptr) {
      for (const auto& [path, lf] : *in_.sources) {
        const auto& toks = lf->tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
          if (toks[i].kind == Token::Kind::String)
            sourceStrings.insert(toks[i].text);
          // Member call `->check("...")` with a literal first argument.
          if (isIdent(toks[i]) && is(toks[i], "check") && i > 0 &&
              (is(toks[i - 1], ".") || is(toks[i - 1], "->")) &&
              i + 2 < toks.size() && is(toks[i + 1], "(") &&
              toks[i + 2].kind == Token::Kind::String) {
            const std::string& site = toks[i + 2].text;
            if (!declaredNames.count(site)) {
              emit(path, toks[i + 2].line, "registry-undeclared",
                   "fault site \"" + site +
                       "\" is consulted here but not declared in "
                       "fault::kKnownSites; add it to the table (with its "
                       "hook-site documentation) so tests can schedule it");
            }
          }
        }
      }
    }

    for (const SiteEntry& e : declared) {
      if (!sourceStrings.count(e.site)) {
        emit(in_.sitesPath, e.line, "registry-unconsulted",
             "fault site \"" + e.site +
                 "\" is declared in kKnownSites but no analyzed source "
                 "consults it; remove the dead entry or wire up the hook");
      }
      if (!inTests("\"" + e.site + "\"") && !inTests(e.builder)) {
        emit(in_.sitesPath, e.line, "registry-untested",
             "fault site \"" + e.site + "\" is declared but no test " +
                 (e.builder.empty()
                      ? "references its site string"
                      : "references it (site string or builder `" +
                            e.builder + "`)") +
                 "; recovery paths that are never injected regress "
                 "silently");
      }
    }
  }

  // ---- telemetry enums ----------------------------------------------------

  void enumGates(const std::string& enumName, const std::string& arrayName) {
    const auto members = parseEnumMembers(*in_.taxonomy, enumName);
    const auto jsonNames = parseStringArray(*in_.taxonomy, arrayName);
    if (members.empty()) return;  // taxonomy without this enum: nothing to do
    if (members.size() != jsonNames.size()) {
      emit(in_.taxonomyPath,
           jsonNames.empty() ? members.front().line : jsonNames.front().line,
           "registry-json-mismatch",
           enumName + " has " + std::to_string(members.size()) +
               " members but " + arrayName + " has " +
               std::to_string(jsonNames.size()) +
               " entries; the report schema is index-aligned and just "
               "silently shifted");
      return;
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      const std::string want = snakeCase(members[i].text);
      if (jsonNames[i].text != want) {
        emit(in_.taxonomyPath, jsonNames[i].line, "registry-json-mismatch",
             arrayName + "[" + std::to_string(i) + "] is \"" +
                 jsonNames[i].text + "\" but " + enumName + "::" +
                 members[i].text + " expects \"" + want +
                 "\" (index-aligned snake_case)");
      }
    }
    // Test coverage: an exhaustive sweep over the JSON-name array counts
    // for every member; otherwise each member needs an individual
    // reference (enum member or JSON name) in some test.
    if (inTests(arrayName)) return;
    for (const NamedEntry& m : members) {
      if (inTests(enumName + "::" + m.text) ||
          inTests("\"" + snakeCase(m.text) + "\""))
        continue;
      emit(in_.taxonomyPath, m.line, "registry-untested",
           enumName + "::" + m.text +
               " is declared but referenced by no test (neither the enum "
               "member nor its JSON name \"" + snakeCase(m.text) +
               "\" appears, and no test sweeps " + arrayName + ")");
    }
  }

  // ---- hot registry reverse check -----------------------------------------

  void hotGate() {
    for (const FunctionSummary& f : in_.index->functions) {
      if (!f.isHot || f.isDeclaration) continue;
      bool listed = false;
      for (const auto& [suffix, fn] : in_.cfg->hotRegistry) {
        if (fn != f.name) continue;
        if (f.file.size() >= suffix.size() &&
            f.file.compare(f.file.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
          listed = true;
          break;
        }
      }
      if (!listed) {
        emit(f.file, f.line, "hot-unpinned",
             "`" + f.name +
                 "` is marked AWP_HOT but hot_registry.txt does not list "
                 "it; the registry is the reviewed set of pinned hot "
                 "paths — add `" + f.file + "::" + f.name + "`");
      }
    }
  }

  const RegistryInputs& in_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> registryFindings(const RegistryInputs& in) {
  return Gate(in).run();
}

}  // namespace awplint
