#pragma once
// awplint v2 call-graph propagation: the fixed-point pass that turns the
// per-function summaries of symbols.hpp into whole-program facts.
//
//   * collective reachability — a function that calls a collective
//     primitive, or any function that (transitively) reaches one, is
//     itself collective: calling it under rank-divergent control flow is
//     the same SPMD deadlock as calling `barrier` there. This replaced
//     the hand-maintained `collectiveWrappers` whitelist.
//   * rank-tainted returns — a function whose return expression is
//     rank-tainted, or returns the result of a function that is, returns
//     per-rank data; assigning from it taints the destination.
//   * transitive lock sets — the union of locks a function may acquire
//     through any call chain, feeding the cross-function lock-order
//     check.
//
// Propagation is a worklist over the name-level call graph (bare names;
// overloads fold conservatively — the same semantics the old whitelist
// had). Cycles are handled by the fixpoint; iteration count is reported
// for --stats.

#include <string>
#include <vector>

#include "lexer.hpp"
#include "symbols.hpp"

namespace awplint {

struct PropagateStats {
  std::size_t functionsIndexed = 0;
  std::size_t callEdges = 0;
  std::size_t fixpointIterations = 0;
  std::size_t collectiveFunctions = 0;
  std::size_t rankReturnFunctions = 0;
  std::size_t guardedFields = 0;
  std::size_t lockEdges = 0;
};

// Seed names for the rank-return fixpoint that the lexical engine cannot
// derive: local verdict/scan producers whose rank-dependence lives in the
// DATA (field values differ per rank), not in the tokens of their bodies.
// Kept deliberately tiny and reviewed — everything lexically derivable
// flows through the fixpoint instead.
const std::vector<std::string>& semanticRankReturnSeeds();

// Fill index.collectiveNames / rankReturnNames / acquiresByName /
// requiresByKey from the merged summaries. Returns iteration counts and
// sizes for --stats.
PropagateStats propagate(SymbolIndex& index);

// Cross-function lock-order inversions: pairs of locks acquired in both
// orders anywhere in the program (directly or through calls). Each
// finding anchors at one of the acquisition sites.
struct LockOrderFinding {
  std::string file;
  int line = 0;
  std::string message;
};

std::vector<LockOrderFinding> lockOrderInversions(const SymbolIndex& index);

}  // namespace awplint
