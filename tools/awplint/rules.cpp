#include "rules.hpp"

#include <algorithm>
#include <cstddef>

namespace awplint {

namespace {

using Tokens = std::vector<Token>;

bool isIdent(const Token& t) { return t.kind == Token::Kind::Identifier; }
bool is(const Token& t, const char* s) { return t.text == s; }

// Identifiers whose mere presence in a predicate makes it rank-dependent.
const std::set<std::string> kRankSeeds = {"rank", "rank_", "myRank",
                                          "offenderRank"};
// Fault-injection entry points: predicates touching them diverge by design.
const std::set<std::string> kFaultSeeds = {"injectionEnabled",
                                           "activeInjector"};
// Functions returning per-rank data (local scans and verdicts): assigning
// from them taints the destination.
const std::set<std::string> kLocalVerdictFns = {
    "scan", "runPreflight", "runRupturePreflight", "allFinite"};
// Collective results are uniform across ranks by construction: these call
// expressions are scrubbed before evaluating taint.
const std::set<std::string> kUniformResultFns = {"allreduce", "allgather"};

// Need a call-paren right after the name (avoids flagging unrelated members).
const std::set<std::string> kHotAllocCalls = {"malloc", "calloc", "realloc",
                                              "free"};
// Flagged on presence: template arguments sit between the name and the '('.
const std::set<std::string> kHotAllocNames = {"vector", "make_unique",
                                              "make_shared"};
const std::set<std::string> kHotGrowthMembers = {
    "push_back", "emplace_back", "emplace", "resize",
    "reserve",   "insert",       "assign",  "append"};
const std::set<std::string> kHotStringIds = {"string", "to_string",
                                             "ostringstream", "stringstream",
                                             "wstring"};
const std::set<std::string> kHotCheckMacros = {"AWP_CHECK", "AWP_CHECK_MSG"};

struct Scope {
  enum class Kind {
    Namespace,
    Type,
    Function,
    Cond,   // if / switch body
    Else,   // else body
    Loop,   // for / while / do body
    Block,  // plain or unclassified braces
    Init,   // brace initializer
    Stmt    // single-statement control body (no braces)
  };
  Kind kind = Kind::Block;
  bool braced = true;        // Stmt scopes are unbraced
  // Paren depth outside this braced scope. A braced body is a fresh
  // statement context even mid-argument-list (a lambda body inside a
  // call): depth is zeroed at `{` and restored from here at `}`, so `;`
  // inside the body still pops single-statement control scopes.
  int enclosingParenDepth = 0;
  bool tainted = false;
  std::string taintReason;
  bool remainderTainted = false;
  std::string remainderReason;
  // Function scopes only:
  bool isHot = false;
  std::string fnName;
  std::map<std::string, std::string> taintedPaths;  // path -> reason
  // Taint of the if-chain that just closed at this level (for `else`).
  bool lastIfTaint = false;
  std::string lastIfReason;
};

bool isControl(Scope::Kind k) {
  return k == Scope::Kind::Cond || k == Scope::Kind::Else ||
         k == Scope::Kind::Loop;
}

struct Pending {
  bool active = false;
  Scope::Kind kind = Scope::Kind::Block;
  bool tainted = false;
  std::string reason;
  std::size_t afterIdx = 0;  // attaches to the first token past this index
};

class Analyzer {
 public:
  Analyzer(const std::string& path, const LexedFile& lf, const Config& cfg)
      : path_(path), lf_(lf), toks_(lf.tokens), cfg_(cfg) {
    checkCollectives_ = path.find("vcluster/") == std::string::npos;
    checkSpans_ = path.find("telemetry/") == std::string::npos;
  }

  std::vector<Finding> run() {
    for (i_ = 0; i_ < toks_.size(); ++i_) step();
    registryCheck();
    applySuppressions();
    return std::move(findings_);
  }

 private:
  // ---- token helpers ------------------------------------------------------

  const Token& tok(std::size_t i) const { return toks_[i]; }
  bool has(std::size_t i) const { return i < toks_.size(); }

  std::size_t matchForward(std::size_t open) const {
    // open indexes a "(" token; returns the index of its matching ")".
    int depth = 0;
    for (std::size_t j = open; j < toks_.size(); ++j) {
      if (is(toks_[j], "(")) ++depth;
      else if (is(toks_[j], ")") && --depth == 0) return j;
    }
    return toks_.size() - 1;
  }

  std::size_t matchBackward(std::size_t close) const {
    // close indexes a ")" token; returns the index of its matching "(".
    int depth = 0;
    for (std::size_t j = close + 1; j-- > 0;) {
      if (is(toks_[j], ")")) ++depth;
      else if (is(toks_[j], "(") && --depth == 0) return j;
    }
    return 0;
  }

  // ---- scope stack --------------------------------------------------------

  Scope* functionScope() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
      if (it->kind == Scope::Kind::Function) return &*it;
    return nullptr;
  }

  bool inFunction() { return functionScope() != nullptr; }

  // Any enclosing predicate or early-exit remainder that is rank-tainted?
  bool effectiveTaint(std::string* reason) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->tainted) {
        if (reason) *reason = it->taintReason;
        return true;
      }
      if (it->remainderTainted) {
        if (reason) *reason = it->remainderReason;
        return true;
      }
    }
    return false;
  }

  void pushScope(Scope s) { scopes_.push_back(std::move(s)); }

  void popScopeInto() {
    Scope closed = std::move(scopes_.back());
    scopes_.pop_back();
    if (!scopes_.empty() && (closed.kind == Scope::Kind::Cond ||
                             (closed.kind == Scope::Kind::Stmt))) {
      Scope& parent = scopes_.back();
      if (closed.tainted || closed.lastIfTaint) {
        parent.lastIfTaint = true;
        parent.lastIfReason = closed.tainted ? closed.taintReason
                                             : closed.lastIfReason;
      }
    }
  }

  // Pop single-statement control scopes whose statement just ended.
  void popStmtScopes() {
    while (!scopes_.empty() && scopes_.back().kind == Scope::Kind::Stmt)
      popScopeInto();
  }

  // ---- taint machinery ----------------------------------------------------

  bool spanTainted(std::size_t a, std::size_t b, std::string* reason) {
    Scope* fn = functionScope();
    for (std::size_t j = a; j < b && j < toks_.size();) {
      const Token& t = toks_[j];
      if (!isIdent(t)) {
        ++j;
        continue;
      }
      // Build the dotted access path a.b->c starting here.
      std::string pathText = t.text;
      std::size_t end = j;
      bool tainted = seedTainted(t.text, j, reason);
      if (fn != nullptr) {
        auto hit = fn->taintedPaths.find(pathText);
        if (hit != fn->taintedPaths.end()) {
          tainted = true;
          if (reason) *reason = hit->second;
        }
      }
      while (has(end + 2) &&
             (is(toks_[end + 1], ".") || is(toks_[end + 1], "->")) &&
             isIdent(toks_[end + 2])) {
        end += 2;
        pathText += "." + toks_[end].text;
        if (!tainted) tainted = seedTainted(toks_[end].text, end, reason);
        if (!tainted && fn != nullptr && fn->taintedPaths.count(pathText)) {
          tainted = true;
          if (reason) *reason = fn->taintedPaths[pathText];
        }
      }
      // Scrub collective-result calls: allreduce(...)/allgather(...) produce
      // the same value on every rank whatever their arguments were, so the
      // whole call expression — arguments included — is skipped untainted.
      if (kUniformResultFns.count(toks_[end].text) && has(end + 1) &&
          is(toks_[end + 1], "(")) {
        j = matchForward(end + 1) + 1;
        continue;
      }
      if (tainted) return true;
      j = end + 1;
    }
    return false;
  }

  bool seedTainted(const std::string& id, std::size_t idx,
                   std::string* reason) {
    if (kRankSeeds.count(id)) {
      if (reason) *reason = "`" + id + "` is rank-dependent";
      return true;
    }
    if (kFaultSeeds.count(id)) {
      if (reason) *reason = "`" + id + "` is a fault-injection site";
      return true;
    }
    if (kLocalVerdictFns.count(id) && has(idx + 1) && is(toks_[idx + 1], "(")) {
      if (reason) *reason = "`" + id + "()` returns per-rank data";
      return true;
    }
    return false;
  }

  // Handle `path = expr` taint propagation (and clean overwrites).
  void handleAssignment(std::size_t eqIdx) {
    Scope* fn = functionScope();
    if (fn == nullptr || eqIdx == 0) return;
    // LHS: dotted path ending right before '='.
    std::size_t k = eqIdx - 1;
    if (!isIdent(toks_[k])) return;
    std::vector<std::string> parts = {toks_[k].text};
    while (k >= 2 && (is(toks_[k - 1], ".") || is(toks_[k - 1], "->")) &&
           isIdent(toks_[k - 2])) {
      k -= 2;
      parts.push_back(toks_[k].text);
    }
    std::string path;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it)
      path += (path.empty() ? "" : ".") + *it;

    // RHS: until ';' at this paren level or the level closes (covers both
    // plain statements and `if (auto x = ...)` / for-header inits).
    int rel = 0;
    std::size_t end = eqIdx + 1;
    for (; end < toks_.size(); ++end) {
      const std::string& s = toks_[end].text;
      if (s == "(" || s == "[" || s == "{") ++rel;
      else if (s == ")" || s == "]" || s == "}") {
        if (--rel < 0) break;
      } else if (s == ";" && rel <= 0) {
        break;
      }
    }
    std::string reason;
    bool tainted = spanTainted(eqIdx + 1, end, &reason);
    if (!tainted && effectiveTaint(&reason))
      tainted = true;  // assignment only happens on some ranks
    if (tainted)
      fn->taintedPaths[path] = reason;
    else
      fn->taintedPaths.erase(path);
  }

  // ---- structure: braces, functions, control flow -------------------------

  // Classify the '{' at index i and push the matching scope.
  void openBrace(std::size_t i) {
    if (pending_.active && i > pending_.afterIdx) {
      Scope s;
      s.kind = pending_.kind;
      s.tainted = pending_.tainted;
      s.taintReason = pending_.reason;
      pending_.active = false;
      pushScope(std::move(s));
      return;
    }
    // Statement tokens since the last boundary.
    const std::size_t stmtBegin = lastBoundary_ + 1;
    auto stmtHas = [&](const char* kw) {
      for (std::size_t j = stmtBegin; j < i; ++j)
        if (isIdent(toks_[j]) && is(toks_[j], kw)) return true;
      return false;
    };

    if (stmtHas("namespace")) {
      pushScope({Scope::Kind::Namespace});
      return;
    }
    // Type definitions: class-key leads the statement (after template<..>).
    std::size_t first = stmtBegin;
    if (first < i && is(toks_[first], "template")) {
      int depth = 0;
      for (std::size_t j = first + 1; j < i; ++j) {
        if (is(toks_[j], "<")) ++depth;
        else if (is(toks_[j], ">") && --depth == 0) {
          first = j + 1;
          break;
        }
      }
    }
    if (first < i &&
        (is(toks_[first], "class") || is(toks_[first], "struct") ||
         is(toks_[first], "union") || is(toks_[first], "enum"))) {
      pushScope({Scope::Kind::Type});
      return;
    }

    // Lambda body: `[..] {` or `[..](params) {`.
    if (i >= 1) {
      std::size_t p = i - 1;
      while (p > stmtBegin &&
             (is(toks_[p], "mutable") || is(toks_[p], "noexcept") ||
              is(toks_[p], "const")))
        --p;
      bool lambda = is(toks_[p], "]");
      if (!lambda && is(toks_[p], ")")) {
        const std::size_t open = matchBackward(p);
        lambda = open > 0 && is(toks_[open - 1], "]");
      }
      if (lambda) {
        // Inside a function a lambda body is part of the surrounding
        // analysis; at namespace scope treat it as an anonymous function.
        pushScope(inFunction() ? Scope{Scope::Kind::Block}
                               : Scope{Scope::Kind::Function});
        return;
      }
    }

    if (!inFunction()) {
      std::string name;
      if (looksLikeFunction(i, &name)) {
        Scope s;
        s.kind = Scope::Kind::Function;
        s.fnName = name;
        for (std::size_t j = stmtBegin; j < i; ++j)
          if (is(toks_[j], "AWP_HOT")) s.isHot = true;
        definedFns_[name] = toks_[i].line;
        if (s.isHot) hotFns_.insert(name);
        pushScope(std::move(s));
        return;
      }
    }
    pushScope({Scope::Kind::Block});
  }

  bool looksLikeFunction(std::size_t braceIdx, std::string* name) {
    if (braceIdx == 0) return false;
    std::size_t p = braceIdx - 1;
    while (p > 0 && (is(toks_[p], "const") || is(toks_[p], "noexcept") ||
                     is(toks_[p], "override") || is(toks_[p], "final") ||
                     is(toks_[p], "try")))
      --p;
    // Walk backward over constructor-initializer entries `name(...)`,
    // separated by ',' and introduced by ':', to the parameter list.
    for (int guard = 0; guard < 64; ++guard) {
      if (!is(toks_[p], ")")) return false;
      const std::size_t open = matchBackward(p);
      if (open == 0) return false;
      const std::size_t nameIdx = open - 1;
      if (!isIdent(toks_[nameIdx])) return false;
      if (nameIdx >= 1 &&
          (is(toks_[nameIdx - 1], ",") || is(toks_[nameIdx - 1], ":"))) {
        if (nameIdx < 2) return false;
        p = nameIdx - 2;  // token before the ',' / ':' separator
        continue;
      }
      *name = toks_[nameIdx].text;
      return true;
    }
    return false;
  }

  void closeBrace() {
    if (scopes_.empty()) return;
    // Unbraced Stmt scopes cannot outlive the braced scope that contains
    // them; drop any still open before closing the brace itself.
    popStmtScopes();
    if (scopes_.empty()) return;
    const bool wasControl = isControl(scopes_.back().kind);
    parenDepth_ = scopes_.back().enclosingParenDepth;
    popScopeInto();
    // A braced control body completes the single-statement scope that
    // introduced it: `if (a) while (b) { ... }`.
    if (wasControl) popStmtScopes();
  }

  // ---- per-token dispatch -------------------------------------------------

  void step() {
    const Token& t = toks_[i_];

    if (is(t, "{")) {
      openBrace(i_);
      scopes_.back().enclosingParenDepth = parenDepth_;
      parenDepth_ = 0;
      lastBoundary_ = i_;
      return;
    }
    if (is(t, "}")) {
      closeBrace();
      lastBoundary_ = i_;
      return;
    }
    if (is(t, ";")) {
      if (parenDepth_ == 0) popStmtScopes();
      lastBoundary_ = i_;
      return;
    }
    if (is(t, "(")) ++parenDepth_;
    if (is(t, ")")) parenDepth_ = std::max(0, parenDepth_ - 1);

    // Convert a pending control header into a single-statement scope when
    // its body turns out to be unbraced.
    if (pending_.active && i_ > pending_.afterIdx && !is(t, "{")) {
      Scope s;
      s.kind = Scope::Kind::Stmt;
      s.braced = false;
      s.tainted = pending_.tainted;
      s.taintReason = pending_.reason;
      pending_.active = false;
      pushScope(std::move(s));
    }

    if (isIdent(t) && inFunction()) {
      if (is(t, "if") || is(t, "while") || is(t, "switch") || is(t, "for")) {
        controlHeader(t.text);
        return;
      }
      if (is(t, "else")) {
        pending_.active = true;
        pending_.kind = Scope::Kind::Else;
        pending_.tainted = scopes_.back().lastIfTaint;
        pending_.reason = scopes_.back().lastIfReason;
        pending_.afterIdx = i_;
        return;
      }
      if (is(t, "do")) {
        pending_ = {true, Scope::Kind::Loop, false, "", i_};
        return;
      }
      if (is(t, "return") || is(t, "throw") || is(t, "break") ||
          is(t, "continue")) {
        earlyExit(t.text);
        // fall through: `throw` is also a hot-path violation.
      }
    }

    if (is(t, "=")) handleAssignment(i_);

    collectiveRule(t);
    hotRules(t);
    spanRules(t);
  }

  void controlHeader(const std::string& kw) {
    // `if` starts a fresh chain at this level.
    if (kw == "if" && !scopes_.empty()) {
      scopes_.back().lastIfTaint = false;
      scopes_.back().lastIfReason.clear();
    }
    if (!has(i_ + 1) || !is(toks_[i_ + 1], "(")) return;
    const std::size_t close = matchForward(i_ + 1);
    std::string reason;
    const bool tainted = spanTainted(i_ + 2, close, &reason);
    pending_.active = true;
    pending_.kind = (kw == "for" || kw == "while") ? Scope::Kind::Loop
                                                   : Scope::Kind::Cond;
    pending_.tainted = tainted;
    pending_.reason = tainted
                          ? reason + " (line " +
                                std::to_string(toks_[i_].line) + ")"
                          : "";
    pending_.afterIdx = close;
  }

  void earlyExit(const std::string& kw) {
    // Locate the exit's target scope and check whether any predicate
    // BETWEEN it and this statement is tainted: if so, everything after
    // the construct in the target scope only runs on some ranks.
    const bool toFunction = (kw == "return" || kw == "throw");
    std::string reason;
    bool taintedBelowTarget = false;
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const bool isTarget =
          toFunction ? it->kind == Scope::Kind::Function
                     : (it->kind == Scope::Kind::Loop ||
                        (kw == "break" && it->kind == Scope::Kind::Cond));
      if (isTarget) {
        if (taintedBelowTarget && !it->remainderTainted) {
          it->remainderTainted = true;
          it->remainderReason = "code after rank-dependent `" + kw +
                                "` at line " +
                                std::to_string(toks_[i_].line) + " (" +
                                reason + ")";
        }
        return;
      }
      if (it->tainted && !taintedBelowTarget) {
        taintedBelowTarget = true;
        reason = it->taintReason;
      }
    }
  }

  // ---- rule 1: collective consistency -------------------------------------

  void collectiveRule(const Token& t) {
    if (!checkCollectives_ || !isIdent(t) || !inFunction()) return;
    if (!has(i_ + 1) || !is(toks_[i_ + 1], "(")) return;
    const bool memberCall =
        i_ > 0 && (is(toks_[i_ - 1], ".") || is(toks_[i_ - 1], "->"));
    const bool primitive =
        cfg_.collectivePrimitives.count(t.text) != 0 && memberCall;
    const bool wrapper = cfg_.collectiveWrappers.count(t.text) != 0;
    if (!primitive && !wrapper) return;
    std::string reason;
    if (!effectiveTaint(&reason)) return;
    emit(t.line, "collective-in-rank-branch",
         "collective `" + t.text +
             "` reached under rank-dependent control flow: " + reason +
             "; if every rank provably takes this branch together, annotate "
             "with `// awplint: collective-uniform(<why>)`");
  }

  // ---- rule 2: hot-path hygiene -------------------------------------------

  void hotRules(const Token& t) {
    Scope* fn = functionScope();
    if (fn == nullptr || !fn->isHot || !isIdent(t)) return;
    const bool call = has(i_ + 1) && is(toks_[i_ + 1], "(");
    const bool memberCall =
        i_ > 0 && (is(toks_[i_ - 1], ".") || is(toks_[i_ - 1], "->"));
    if (is(t, "new") || is(t, "delete")) {
      emit(t.line, "hot-alloc",
           "`" + t.text + "` in AWP_HOT function `" + fn->fnName + "`");
    } else if (call && !memberCall && kHotAllocCalls.count(t.text)) {
      emit(t.line, "hot-alloc",
           "allocation call `" + t.text + "` in AWP_HOT function `" +
               fn->fnName + "`");
    } else if (call && memberCall && kHotGrowthMembers.count(t.text)) {
      emit(t.line, "hot-alloc",
           "container growth `." + t.text + "()` in AWP_HOT function `" +
               fn->fnName + "`");
    } else if (kHotAllocNames.count(t.text) && !memberCall) {
      emit(t.line, "hot-alloc",
           "`" + t.text + "` in AWP_HOT function `" + fn->fnName +
               "` (use a preallocated span/scratch buffer)");
    } else if (kHotStringIds.count(t.text) && !memberCall) {
      emit(t.line, "hot-alloc",
           "string construction `" + t.text + "` in AWP_HOT function `" +
               fn->fnName + "`");
    } else if (is(t, "throw")) {
      emit(t.line, "hot-throw",
           "`throw` in AWP_HOT function `" + fn->fnName + "`");
    } else if (call && kHotCheckMacros.count(t.text)) {
      emit(t.line, "hot-throw",
           "`" + t.text + "` (throws on failure) in AWP_HOT function `" +
               fn->fnName + "`");
    }
  }

  // ---- rule 3: telemetry span discipline ----------------------------------

  void spanRules(const Token& t) {
    if (!checkSpans_ || !isIdent(t)) return;
    // telemetry::Phase::X must name a taxonomy member.
    if (is(t, "Phase") && i_ >= 2 && is(toks_[i_ - 1], "::") &&
        is(toks_[i_ - 2], "telemetry") && has(i_ + 2) &&
        is(toks_[i_ + 1], "::") && isIdent(toks_[i_ + 2])) {
      const std::string& member = toks_[i_ + 2].text;
      if (!cfg_.phases.empty() && cfg_.phases.count(member) == 0) {
        emit(toks_[i_ + 2].line, "span-taxonomy",
             "`telemetry::Phase::" + member +
                 "` is not in the fixed phase taxonomy");
      }
    }
    if (is(t, "ScopedSpan")) {
      // Statement-leading `ScopedSpan(...)` is a temporary that closes
      // immediately — it times nothing.
      std::size_t first = i_;
      if (first >= 2 && is(toks_[first - 1], "::") &&
          is(toks_[first - 2], "telemetry"))
        first -= 2;
      const bool stmtStart =
          first == 0 || is(toks_[first - 1], ";") ||
          is(toks_[first - 1], "{") || is(toks_[first - 1], "}");
      if (stmtStart && has(i_ + 1) && is(toks_[i_ + 1], "(")) {
        emit(t.line, "span-temporary",
             "unnamed ScopedSpan temporary is destroyed immediately; bind "
             "it to a named local");
      }
    }
    if (is(t, "ManualSpan")) {
      emit(t.line, "manual-span",
           "ManualSpan is a raw begin/end pair; prefer ScopedSpan, or "
           "annotate with `// awplint: manual-span(<why RAII cannot work>)`");
    }
    if (is(t, "RankTelemetry")) {
      emit(t.line, "raw-span-api",
           "raw RankTelemetry open/close API used outside src/telemetry");
    }
  }

  // ---- registry + suppression ---------------------------------------------

  void registryCheck() {
    for (const auto& [suffix, fn] : cfg_.hotRegistry) {
      if (path_.size() < suffix.size() ||
          path_.compare(path_.size() - suffix.size(), suffix.size(),
                        suffix) != 0)
        continue;
      if (hotFns_.count(fn)) continue;
      const auto defined = definedFns_.find(fn);
      if (defined != definedFns_.end()) {
        emit(defined->second, "hot-registry",
             "`" + fn + "` is listed in the hot registry but its definition "
                        "is not marked AWP_HOT");
      } else {
        emit(1, "hot-registry",
             "hot registry lists `" + fn + "` for this file but no such "
             "function definition was found (registry drift?)");
      }
    }
  }

  static std::string suppressionFor(const std::string& rule) {
    if (rule == "collective-in-rank-branch") return "collective-uniform";
    if (rule == "hot-alloc" || rule == "hot-throw") return "hot-ok";
    if (rule == "manual-span") return "manual-span";
    if (rule == "span-taxonomy" || rule == "span-temporary" ||
        rule == "raw-span-api")
      return "span-ok";
    return "";
  }

  void applySuppressions() {
    std::vector<Finding> kept;
    for (Finding& f : findings_) {
      const std::string want = suppressionFor(f.rule);
      bool suppressed = false;
      bool emptyReason = false;
      for (int line : {f.line, f.line - 1}) {
        auto it = lf_.annotations.find(line);
        if (it == lf_.annotations.end()) continue;
        for (const Annotation& a : it->second) {
          if (a.rule != want) continue;
          if (a.reason.empty()) emptyReason = true;
          else suppressed = true;
        }
      }
      if (suppressed) continue;
      if (emptyReason)
        f.message += " [annotation found but its reason string is empty]";
      kept.push_back(std::move(f));
    }
    findings_ = std::move(kept);
  }

  void emit(int line, const std::string& rule, const std::string& message) {
    findings_.push_back({path_, line, rule, message});
  }

  // ---- state --------------------------------------------------------------

  std::string path_;
  const LexedFile& lf_;
  const Tokens& toks_;
  const Config& cfg_;
  bool checkCollectives_ = true;
  bool checkSpans_ = true;

  std::size_t i_ = 0;
  std::size_t lastBoundary_ = static_cast<std::size_t>(-1);
  int parenDepth_ = 0;
  std::vector<Scope> scopes_;
  Pending pending_;
  std::vector<Finding> findings_;
  std::set<std::string> hotFns_;
  std::map<std::string, int> definedFns_;
};

}  // namespace

std::set<std::string> parsePhaseTaxonomy(const LexedFile& lf) {
  std::set<std::string> phases;
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is(toks[i], "enum")) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && (is(toks[j], "class") || is(toks[j], "struct")))
      ++j;
    if (j >= toks.size() || !is(toks[j], "Phase")) continue;
    while (j < toks.size() && !is(toks[j], "{")) ++j;
    ++j;
    bool expectName = true;
    int depth = 1;
    for (; j < toks.size() && depth > 0; ++j) {
      if (is(toks[j], "{")) ++depth;
      else if (is(toks[j], "}")) --depth;
      else if (is(toks[j], ",") && depth == 1) expectName = true;
      else if (expectName && isIdent(toks[j])) {
        phases.insert(toks[j].text);
        expectName = false;
      }
    }
    break;
  }
  return phases;
}

std::vector<Finding> analyzeFile(const std::string& path, const LexedFile& lf,
                                 const Config& cfg) {
  return Analyzer(path, lf, cfg).run();
}

}  // namespace awplint
