#include "rules.hpp"

#include <algorithm>
#include <cstddef>

#include "callgraph.hpp"

namespace awplint {

namespace {

using Tokens = std::vector<Token>;

bool isIdent(const Token& t) { return t.kind == Token::Kind::Identifier; }
bool is(const Token& t, const char* s) { return t.text == s; }

// Identifiers whose mere presence in a predicate makes it rank-dependent.
const std::set<std::string> kRankSeeds = {"rank", "rank_", "myRank",
                                          "offenderRank"};
// Fault-injection entry points: predicates touching them diverge by design.
const std::set<std::string> kFaultSeeds = {"injectionEnabled",
                                           "activeInjector"};
// Collective results are uniform across ranks by construction: these call
// expressions are scrubbed before evaluating taint.
const std::set<std::string> kUniformResultFns = {"allreduce", "allgather"};

// Need a call-paren right after the name (avoids flagging unrelated members).
const std::set<std::string> kHotAllocCalls = {"malloc", "calloc", "realloc",
                                              "free"};
// Flagged on presence: template arguments sit between the name and the '('.
const std::set<std::string> kHotAllocNames = {"vector", "make_unique",
                                              "make_shared"};
const std::set<std::string> kHotGrowthMembers = {
    "push_back", "emplace_back", "emplace", "resize",
    "reserve",   "insert",       "assign",  "append"};
const std::set<std::string> kHotStringIds = {"string", "to_string",
                                             "ostringstream", "stringstream",
                                             "wstring"};
const std::set<std::string> kHotCheckMacros = {"AWP_CHECK", "AWP_CHECK_MSG"};

// RAII lock guards (declaration introduces an acquisition) and the raw
// mutex member calls the scanner recognizes.
const std::set<std::string> kLockGuardTypes = {"lock_guard", "scoped_lock",
                                               "unique_lock", "shared_lock"};
// Lock/condition-variable API member names: excluded from held-at-call
// interprocedural edges — `cv.wait(lock)` would otherwise fold with every
// user-defined `wait()` that takes its own mutex, manufacturing
// inversions no execution can realize.
const std::set<std::string> kLockApiCallees = {
    "wait", "wait_for", "wait_until", "notify_one", "notify_all",
    "lock", "unlock",   "try_lock",   "lock_shared", "unlock_shared"};
const std::set<std::string> kMutexTypes = {
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex"};
// Identifiers that are never callees even when followed by '('.
const std::set<std::string> kNotCallees = {
    "if",     "while",  "for",        "switch",      "return",
    "sizeof", "alignof", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "catch", "throw", "new", "delete", "assert",
    "defined"};

struct Scope {
  enum class Kind {
    Namespace,
    Type,
    Function,
    Cond,   // if / switch body
    Else,   // else body
    Loop,   // for / while / do body
    Block,  // plain or unclassified braces
    Init,   // brace initializer
    Stmt    // single-statement control body (no braces)
  };
  Kind kind = Kind::Block;
  bool braced = true;        // Stmt scopes are unbraced
  // Paren depth outside this braced scope. A braced body is a fresh
  // statement context even mid-argument-list (a lambda body inside a
  // call): depth is zeroed at `{` and restored from here at `}`, so `;`
  // inside the body still pops single-statement control scopes.
  int enclosingParenDepth = 0;
  bool tainted = false;
  std::string taintReason;
  bool remainderTainted = false;
  std::string remainderReason;
  // Type scopes only:
  std::string typeName;
  int classIdx = -1;  // index into fileIndex_.classes
  // Function scopes only:
  bool isHot = false;
  bool isCtorDtor = false;
  std::string fnName;
  std::string fnQualifier;
  std::map<std::string, std::string> taintedPaths;  // path -> reason
  // Locks held by this scope: RAII guards declared here, the function's
  // AWP_REQUIRES set (seeded on the Function scope itself), and manual
  // .lock() calls (Function scope — they outlive inner blocks).
  std::set<std::string> heldLocks;
  // Taint of the if-chain that just closed at this level (for `else`).
  bool lastIfTaint = false;
  std::string lastIfReason;
  // For Stmt scopes: the pending control kind that created this unbraced
  // body (Cond / Loop / Else). Only if-arm statements may feed the
  // parent's lastIfTaint — a tainted loop body inside an if must not make
  // the following `else` look rank-conditional.
  Kind stmtOrigin = Kind::Block;
  // A lambda body inside a function: shares the enclosing taint/lock
  // context (captures), but `return`/`throw`/`break`/`continue` cannot
  // escape it — early-exit remainder taint stops here.
  bool lambdaBoundary = false;
};

bool isControl(Scope::Kind k) {
  return k == Scope::Kind::Cond || k == Scope::Kind::Else ||
         k == Scope::Kind::Loop;
}

struct Pending {
  bool active = false;
  Scope::Kind kind = Scope::Kind::Block;
  bool tainted = false;
  std::string reason;
  std::size_t afterIdx = 0;  // attaches to the first token past this index
};

// One pass over one file. Always extracts the FileIndex contribution;
// when a propagated whole-program index is supplied, also emits findings
// (pass 2). Running the identical scan in both passes is what guarantees
// the summaries and the checks agree on function boundaries.
class Analyzer {
 public:
  Analyzer(const std::string& path, const LexedFile& lf, const Config& cfg,
           const SymbolIndex* index)
      : path_(path), lf_(lf), toks_(lf.tokens), cfg_(cfg), index_(index) {
    checkCollectives_ = path.find("vcluster/") == std::string::npos;
    checkSpans_ = path.find("telemetry/") == std::string::npos;
  }

  std::vector<Finding> run() {
    for (i_ = 0; i_ < toks_.size(); ++i_) step();
    finishOpenSummaries();
    if (checkMode()) {
      registryCheck();
      findings_ = applySuppressions(std::move(findings_), lf_);
    }
    return std::move(findings_);
  }

  FileIndex takeIndex() {
    fileIndex_.path = path_;
    return std::move(fileIndex_);
  }

 private:
  bool checkMode() const { return index_ != nullptr; }

  // ---- token helpers ------------------------------------------------------

  bool has(std::size_t i) const { return i < toks_.size(); }

  std::size_t matchForward(std::size_t open) const {
    // open indexes a "(" (or "{" / "<") token; returns its match's index.
    const std::string& o = toks_[open].text;
    const char* c = o == "(" ? ")" : (o == "{" ? "}" : ">");
    int depth = 0;
    for (std::size_t j = open; j < toks_.size(); ++j) {
      if (toks_[j].text == o) ++depth;
      else if (toks_[j].text == c && --depth == 0) return j;
    }
    return toks_.size() - 1;
  }

  std::size_t matchBackward(std::size_t close) const {
    // close indexes a ")" token; returns the index of its matching "(".
    int depth = 0;
    for (std::size_t j = close + 1; j-- > 0;) {
      if (is(toks_[j], ")")) ++depth;
      else if (is(toks_[j], "(") && --depth == 0) return j;
    }
    return 0;
  }

  // Dotted access path ending at token k, `this->` stripped: `a.b->c_`.
  std::string pathEndingAt(std::size_t k) const {
    std::vector<std::string> parts = {toks_[k].text};
    while (k >= 2 && (is(toks_[k - 1], ".") || is(toks_[k - 1], "->")) &&
           isIdent(toks_[k - 2])) {
      k -= 2;
      parts.push_back(toks_[k].text);
    }
    if (parts.back() == "this") parts.pop_back();
    std::string path;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it)
      path += (path.empty() ? "" : ".") + *it;
    return path;
  }

  // ---- scope stack --------------------------------------------------------

  Scope* functionScope() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
      if (it->kind == Scope::Kind::Function) return &*it;
    return nullptr;
  }

  bool inFunction() { return functionScope() != nullptr; }

  // Innermost class context: a Type scope, else the current function's
  // qualifier (out-of-line member definitions).
  std::string classContext() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::Type) return it->typeName;
      if (it->kind == Scope::Kind::Function && !it->fnQualifier.empty())
        return it->fnQualifier;
    }
    return "";
  }

  Scope* typeScope() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::Function) return nullptr;
      if (it->kind == Scope::Kind::Type) return &*it;
    }
    return nullptr;
  }

  // Any enclosing predicate or early-exit remainder that is rank-tainted?
  bool effectiveTaint(std::string* reason) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->tainted) {
        if (reason) *reason = it->taintReason;
        return true;
      }
      if (it->remainderTainted) {
        if (reason) *reason = it->remainderReason;
        return true;
      }
    }
    return false;
  }

  void pushScope(Scope s) { scopes_.push_back(std::move(s)); }

  void popScopeInto() {
    Scope closed = std::move(scopes_.back());
    scopes_.pop_back();
    if (closed.kind == Scope::Kind::Function) {
      finalizeSummary();
      guardVars_.clear();
      localTypes_.clear();
    }
    // Feed the parent's `else` lookahead ONLY with if-chain CONDITION
    // taint. A braced Cond contributes its own header taint; an unbraced
    // if/else arm (Stmt) relays its condition taint plus any chained
    // `else if` condition taint that closed inside it. Loop bodies and
    // nested statements inside the arm do NOT count: whether the `else`
    // runs depends solely on the if conditions, not on what the taken
    // branch happened to compute.
    if (!scopes_.empty()) {
      const bool ifArmStmt =
          closed.kind == Scope::Kind::Stmt &&
          (closed.stmtOrigin == Scope::Kind::Cond ||
           closed.stmtOrigin == Scope::Kind::Else);
      const bool condTaint =
          closed.kind == Scope::Kind::Cond
              ? closed.tainted
              : (ifArmStmt && (closed.tainted || closed.lastIfTaint));
      if (condTaint) {
        Scope& parent = scopes_.back();
        parent.lastIfTaint = true;
        parent.lastIfReason = closed.tainted ? closed.taintReason
                                             : closed.lastIfReason;
      }
    }
  }

  // Pop single-statement control scopes whose statement just ended.
  void popStmtScopes() {
    while (!scopes_.empty() && scopes_.back().kind == Scope::Kind::Stmt)
      popScopeInto();
  }

  // ---- taint machinery ----------------------------------------------------

  bool spanTainted(std::size_t a, std::size_t b, std::string* reason) {
    Scope* fn = functionScope();
    for (std::size_t j = a; j < b && j < toks_.size();) {
      const Token& t = toks_[j];
      if (!isIdent(t)) {
        ++j;
        continue;
      }
      // Build the dotted access path a.b->c starting here.
      std::string pathText = t.text;
      std::size_t end = j;
      bool tainted = seedTainted(t.text, j, reason);
      if (fn != nullptr) {
        auto hit = fn->taintedPaths.find(pathText);
        if (hit != fn->taintedPaths.end()) {
          tainted = true;
          if (reason) *reason = hit->second;
        }
      }
      while (has(end + 2) &&
             (is(toks_[end + 1], ".") || is(toks_[end + 1], "->")) &&
             isIdent(toks_[end + 2])) {
        end += 2;
        pathText += "." + toks_[end].text;
        if (!tainted) tainted = seedTainted(toks_[end].text, end, reason);
        if (!tainted && fn != nullptr && fn->taintedPaths.count(pathText)) {
          tainted = true;
          if (reason) *reason = fn->taintedPaths[pathText];
        }
      }
      // Scrub collective-result calls: allreduce(...)/allgather(...) produce
      // the same value on every rank whatever their arguments were, so the
      // whole call expression — arguments included — is skipped untainted.
      if (kUniformResultFns.count(toks_[end].text) && has(end + 1) &&
          is(toks_[end + 1], "(")) {
        j = matchForward(end + 1) + 1;
        continue;
      }
      if (tainted) return true;
      j = end + 1;
    }
    return false;
  }

  bool seedTainted(const std::string& id, std::size_t idx,
                   std::string* reason) {
    if (kRankSeeds.count(id)) {
      if (reason) *reason = "`" + id + "` is rank-dependent";
      return true;
    }
    if (kFaultSeeds.count(id)) {
      if (reason) *reason = "`" + id + "` is a fault-injection site";
      return true;
    }
    if (has(idx + 1) && is(toks_[idx + 1], "(") && rankReturnFn(id)) {
      if (reason) *reason = "`" + id + "()` returns per-rank data";
      return true;
    }
    return false;
  }

  // Does a call to `id` produce per-rank data? Pass 2 asks the propagated
  // index; pass 1 falls back to the semantic seeds so local return-taint
  // extraction does not depend on propagation order.
  bool rankReturnFn(const std::string& id) const {
    if (index_ != nullptr) return index_->returnsRankData(id);
    const auto& seeds = semanticRankReturnSeeds();
    return std::find(seeds.begin(), seeds.end(), id) != seeds.end();
  }

  // Handle `path = expr` taint propagation (and clean overwrites).
  void handleAssignment(std::size_t eqIdx) {
    Scope* fn = functionScope();
    if (fn == nullptr || eqIdx == 0) return;
    // LHS: dotted path ending right before '='.
    std::size_t k = eqIdx - 1;
    if (!isIdent(toks_[k])) return;
    const std::string path = pathEndingAt(k);

    // RHS: until ';' at this paren level or the level closes (covers both
    // plain statements and `if (auto x = ...)` / for-header inits).
    int rel = 0;
    std::size_t end = eqIdx + 1;
    for (; end < toks_.size(); ++end) {
      const std::string& s = toks_[end].text;
      if (s == "(" || s == "[" || s == "{") ++rel;
      else if (s == ")" || s == "]" || s == "}") {
        if (--rel < 0) break;
      } else if (s == ";" && rel <= 0) {
        break;
      }
    }
    std::string reason;
    bool tainted = spanTainted(eqIdx + 1, end, &reason);
    if (!tainted && effectiveTaint(&reason))
      tainted = true;  // assignment only happens on some ranks
    if (tainted)
      fn->taintedPaths[path] = reason;
    else
      fn->taintedPaths.erase(path);
  }

  // A completed bcast makes its out-arguments uniform on every rank:
  // scrub every dotted path in the argument list. This is what lets
  // "length was just broadcast" branches pass without an annotation.
  void scrubBcastArgs(std::size_t callIdx) {
    Scope* fn = functionScope();
    if (fn == nullptr || !has(callIdx + 1) || !is(toks_[callIdx + 1], "("))
      return;
    const std::size_t close = matchForward(callIdx + 1);
    for (std::size_t j = callIdx + 2; j < close; ++j) {
      if (!isIdent(toks_[j])) continue;
      if (j > callIdx + 2 &&
          (is(toks_[j - 1], ".") || is(toks_[j - 1], "->")))
        continue;  // only path heads; pathEndingAt walks the rest
      // Walk the dotted path forward to its full extent.
      std::size_t end = j;
      while (has(end + 2) &&
             (is(toks_[end + 1], ".") || is(toks_[end + 1], "->")) &&
             isIdent(toks_[end + 2]))
        end += 2;
      fn->taintedPaths.erase(pathEndingAt(end));
      j = end;
    }
  }

  // ---- structure: braces, functions, control flow -------------------------

  // Classify the '{' at index i and push the matching scope.
  void openBrace(std::size_t i) {
    if (pending_.active && i > pending_.afterIdx) {
      Scope s;
      s.kind = pending_.kind;
      s.tainted = pending_.tainted;
      s.taintReason = pending_.reason;
      pending_.active = false;
      pushScope(std::move(s));
      return;
    }
    // Statement tokens since the last boundary.
    const std::size_t stmtBegin = lastBoundary_ + 1;
    auto stmtHas = [&](const char* kw) {
      for (std::size_t j = stmtBegin; j < i; ++j)
        if (isIdent(toks_[j]) && is(toks_[j], kw)) return true;
      return false;
    };

    if (stmtHas("namespace")) {
      Scope s;
      s.kind = Scope::Kind::Namespace;
      pushScope(std::move(s));
      return;
    }
    // Type definitions: class-key leads the statement (after template<..>).
    std::size_t first = stmtBegin;
    if (first < i && is(toks_[first], "template")) {
      int depth = 0;
      for (std::size_t j = first + 1; j < i; ++j) {
        if (is(toks_[j], "<")) ++depth;
        else if (is(toks_[j], ">") && --depth == 0) {
          first = j + 1;
          break;
        }
      }
    }
    if (first < i &&
        (is(toks_[first], "class") || is(toks_[first], "struct") ||
         is(toks_[first], "union") || is(toks_[first], "enum"))) {
      Scope s;
      s.kind = Scope::Kind::Type;
      // The type's name: the identifier right before the brace or before
      // the base-clause colon. `enum class X : int {` and `struct X final
      // : Base {` both land on X.
      std::size_t nameIdx = i;
      for (std::size_t j = first; j < i; ++j)
        if (is(toks_[j], ":") && !is(toks_[j == 0 ? 0 : j - 1], ":") &&
            (!has(j + 1) || !is(toks_[j + 1], ":"))) {
          nameIdx = j;
          break;
        }
      while (nameIdx > first) {
        --nameIdx;
        if (is(toks_[nameIdx], "final")) continue;
        break;
      }
      if (nameIdx >= first && nameIdx < i && isIdent(toks_[nameIdx]) &&
          !is(toks_[nameIdx], "class") && !is(toks_[nameIdx], "struct") &&
          !is(toks_[nameIdx], "enum") && !is(toks_[nameIdx], "union")) {
        s.typeName = toks_[nameIdx].text;
        ClassInfo c;
        c.name = s.typeName;
        c.file = path_;
        fileIndex_.classes.push_back(std::move(c));
        s.classIdx = static_cast<int>(fileIndex_.classes.size()) - 1;
      }
      pushScope(std::move(s));
      return;
    }

    // Lambda body: `[..] {` or `[..](params) {`.
    if (i >= 1) {
      std::size_t p = i - 1;
      while (p > stmtBegin &&
             (is(toks_[p], "mutable") || is(toks_[p], "noexcept") ||
              is(toks_[p], "const")))
        --p;
      bool lambda = is(toks_[p], "]");
      if (!lambda && is(toks_[p], ")")) {
        const std::size_t open = matchBackward(p);
        lambda = open > 0 && is(toks_[open - 1], "]");
      }
      if (lambda) {
        // Inside a function a lambda body shares the surrounding taint
        // and lock context (captures) but is an early-exit boundary; at
        // namespace scope treat it as an anonymous function.
        Scope s;
        s.kind = inFunction() ? Scope::Kind::Block : Scope::Kind::Function;
        s.lambdaBoundary = inFunction();
        pushScope(std::move(s));
        return;
      }
    }

    if (!inFunction()) {
      std::string name;
      std::string qualifier;
      if (looksLikeFunction(i, &name, &qualifier)) {
        Scope s;
        s.kind = Scope::Kind::Function;
        s.fnName = name;
        if (qualifier.empty()) {
          if (const Scope* ts = typeScope()) qualifier = ts->typeName;
        }
        s.fnQualifier = qualifier;
        s.isCtorDtor = !name.empty() &&
                       (name[0] == '~' || (!qualifier.empty() &&
                                           name == qualifier));
        for (std::size_t j = stmtBegin; j < i; ++j)
          if (is(toks_[j], "AWP_HOT")) s.isHot = true;
        // AWP_REQUIRES(...) between the parameter list and the brace:
        // the function body runs with those locks already held.
        for (std::size_t j = stmtBegin; j < i; ++j)
          if (is(toks_[j], "AWP_REQUIRES"))
            for (const std::string& m : parenPaths(j))
              s.heldLocks.insert(m);
        // Pass 2: a declaration in the class body may carry the
        // annotation while the out-of-line definition does not.
        if (index_ != nullptr) {
          if (const auto* req =
                  index_->requiredLocksFor(s.fnQualifier, name)) {
            for (const std::string& m : *req) {
              const std::string prefix = s.fnQualifier + "::";
              if (m.rfind(prefix, 0) == 0)
                s.heldLocks.insert(m.substr(prefix.size()));
              else if (m.find("::") == std::string::npos)
                s.heldLocks.insert(m);
            }
          }
        }
        definedFns_[name] = toks_[i].line;
        if (s.isHot) hotFns_.insert(name);
        beginSummary(s, toks_[i].line);
        // Parameters of indexed guarded-class types: typed bases for the
        // guarded-field rule (`void merge(JobState& j)` types `j`).
        localTypes_.clear();
        for (std::size_t j = stmtBegin; j < i; ++j)
          if (isIdent(toks_[j])) maybeRecordLocalDecl(j);
        pushScope(std::move(s));
        return;
      }
    }
    Scope s;
    s.kind = Scope::Kind::Block;
    pushScope(std::move(s));
  }

  bool looksLikeFunction(std::size_t braceIdx, std::string* name,
                         std::string* qualifier) {
    if (braceIdx == 0) return false;
    std::size_t p = braceIdx - 1;
    while (p > 0 && (is(toks_[p], "const") || is(toks_[p], "noexcept") ||
                     is(toks_[p], "override") || is(toks_[p], "final") ||
                     is(toks_[p], "try") || is(toks_[p], "AWP_REQUIRES")))
      --p;
    // An AWP_REQUIRES(...) clause sits between the parameter list and the
    // brace; skip over its parenthesized argument.
    if (is(toks_[p], ")") && matchBackward(p) > 0 &&
        is(toks_[matchBackward(p) == 0 ? 0 : matchBackward(p) - 1],
           "AWP_REQUIRES")) {
      p = matchBackward(p) - 2;
      while (p > 0 && (is(toks_[p], "const") || is(toks_[p], "noexcept")))
        --p;
    }
    // Walk backward over constructor-initializer entries `name(...)`,
    // separated by ',' and introduced by ':', to the parameter list.
    for (int guard = 0; guard < 64; ++guard) {
      if (!is(toks_[p], ")")) return false;
      const std::size_t open = matchBackward(p);
      if (open == 0) return false;
      const std::size_t nameIdx = open - 1;
      if (!isIdent(toks_[nameIdx])) return false;
      if (nameIdx >= 1 &&
          (is(toks_[nameIdx - 1], ",") || is(toks_[nameIdx - 1], ":"))) {
        // `:` could be a member-init-list introducer OR the `::` of a
        // qualified name — `::` lexes as one token, so a single `:` here
        // is the initializer list.
        if (nameIdx < 2) return false;
        p = nameIdx - 2;  // token before the ',' / ':' separator
        continue;
      }
      *name = toks_[nameIdx].text;
      std::size_t q = nameIdx;
      if (q >= 1 && is(toks_[q - 1], "~")) {
        *name = "~" + *name;
        q -= 1;
      }
      if (q >= 2 && is(toks_[q - 1], "::") && isIdent(toks_[q - 2]))
        *qualifier = toks_[q - 2].text;
      return true;
    }
    return false;
  }

  void closeBrace() {
    if (scopes_.empty()) return;
    // Unbraced Stmt scopes cannot outlive the braced scope that contains
    // them; drop any still open before closing the brace itself.
    popStmtScopes();
    if (scopes_.empty()) return;
    const bool wasControl = isControl(scopes_.back().kind);
    parenDepth_ = scopes_.back().enclosingParenDepth;
    popScopeInto();
    // A braced control body completes the single-statement scope that
    // introduced it: `if (a) while (b) { ... }`.
    if (wasControl) popStmtScopes();
  }

  // ---- summaries (pass 1 output) ------------------------------------------

  void beginSummary(const Scope& s, int line) {
    if (s.fnName.empty()) return;
    FunctionSummary f;
    f.name = s.fnName;
    f.qualifier = s.fnQualifier;
    f.file = path_;
    f.line = line;
    f.isHot = s.isHot;
    for (const std::string& m : s.heldLocks) f.requiredLocks.insert(m);
    summaryStack_.push_back(std::move(f));
  }

  FunctionSummary* curSummary() {
    return summaryStack_.empty() ? nullptr : &summaryStack_.back();
  }

  void finalizeSummary() {
    if (summaryStack_.empty()) return;
    fileIndex_.functions.push_back(std::move(summaryStack_.back()));
    summaryStack_.pop_back();
  }

  void finishOpenSummaries() {
    while (!summaryStack_.empty()) finalizeSummary();
  }

  // Record a body-less declaration that carries AWP_REQUIRES — the
  // annotation must be visible to out-of-line definitions in other files.
  void recordRequiresDeclaration(std::size_t reqIdx) {
    // Backtrack over cv-qualifiers to the parameter list.
    std::size_t p = reqIdx;
    while (p > 0) {
      --p;
      if (is(toks_[p], "const") || is(toks_[p], "noexcept")) continue;
      break;
    }
    if (!is(toks_[p], ")")) return;
    const std::size_t open = matchBackward(p);
    if (open == 0 || !isIdent(toks_[open - 1])) return;
    FunctionSummary f;
    f.name = toks_[open - 1].text;
    if (const Scope* ts = typeScope()) f.qualifier = ts->typeName;
    f.file = path_;
    f.line = toks_[open - 1].line;
    f.isDeclaration = true;
    for (const std::string& m : parenPaths(reqIdx)) f.requiredLocks.insert(m);
    fileIndex_.functions.push_back(std::move(f));
  }

  // Comma-separated dotted paths inside the parens following token i.
  std::vector<std::string> parenPaths(std::size_t i) const {
    std::vector<std::string> out;
    if (!has(i + 1) || !is(toks_[i + 1], "(")) return out;
    const std::size_t close = matchForward(i + 1);
    for (std::size_t j = i + 2; j < close; ++j) {
      if (!isIdent(toks_[j])) continue;
      if (j > i + 2 && (is(toks_[j - 1], ".") || is(toks_[j - 1], "->") ||
                        is(toks_[j - 1], "::")))
        continue;
      std::size_t end = j;
      while (has(end + 2) &&
             (is(toks_[end + 1], ".") || is(toks_[end + 1], "->")) &&
             isIdent(toks_[end + 2]))
        end += 2;
      out.push_back(pathEndingAt(end));
      j = end;
    }
    return out;
  }

  // ---- lock machinery -----------------------------------------------------

  std::set<std::string> allHeldLocks() {
    std::set<std::string> held;
    for (const Scope& s : scopes_)
      held.insert(s.heldLocks.begin(), s.heldLocks.end());
    return held;
  }

  bool lockHeld(const std::string& path) {
    for (const Scope& s : scopes_)
      if (s.heldLocks.count(path)) return true;
    return false;
  }

  void acquireLock(const std::string& path, int line, bool functionScoped) {
    if (FunctionSummary* f = curSummary()) {
      f->acquiredLocks.insert(path);
      for (const std::string& h : allHeldLocks()) {
        if (h == path) continue;
        bool dup = false;
        for (const LockEdge& e : f->lockEdges)
          if (e.held == h && e.acquired == path) dup = true;
        if (!dup) f->lockEdges.push_back({h, path, path_, line});
      }
    }
    Scope* target = functionScoped ? functionScope() : &scopes_.back();
    if (target != nullptr) target->heldLocks.insert(path);
  }

  void releaseLock(const std::string& path) {
    for (Scope& s : scopes_) s.heldLocks.erase(path);
  }

  // RAII guard declaration: `std::lock_guard<std::mutex> lk(mutex_);`,
  // CTAD, brace-init, scoped_lock with several mutexes, and unique_lock
  // with std::defer_lock all land here (i_ is the guard-type token).
  void handleGuardDecl() {
    std::size_t j = i_ + 1;
    if (has(j) && is(toks_[j], "<")) j = matchForward(j) + 1;
    if (!has(j) || !isIdent(toks_[j])) return;
    const std::string var = toks_[j].text;
    std::size_t open = j + 1;
    if (!has(open) || (!is(toks_[open], "(") && !is(toks_[open], "{")))
      return;
    const std::size_t close = matchForward(open);
    bool deferred = false;
    std::vector<std::string> mutexes;
    for (std::size_t k = open + 1; k < close; ++k) {
      if (!isIdent(toks_[k])) continue;
      if (is(toks_[k], "defer_lock")) {
        deferred = true;
        continue;
      }
      if (is(toks_[k], "adopt_lock") || is(toks_[k], "try_to_lock") ||
          is(toks_[k], "std"))
        continue;
      if (k > open + 1 && (is(toks_[k - 1], ".") || is(toks_[k - 1], "->") ||
                           is(toks_[k - 1], "::")))
        continue;
      std::size_t end = k;
      while (has(end + 2) &&
             (is(toks_[end + 1], ".") || is(toks_[end + 1], "->")) &&
             isIdent(toks_[end + 2]))
        end += 2;
      mutexes.push_back(pathEndingAt(end));
      k = end;
    }
    guardVars_[var] = {mutexes, scopes_.size() - 1};
    if (!deferred)
      for (const std::string& m : mutexes)
        acquireLock(m, toks_[i_].line, /*functionScoped=*/false);
  }

  // Member calls on mutexes and guards: m.lock() / lk.unlock() / ...
  void handleLockMemberCall() {
    const std::string& member = toks_[i_].text;
    const bool isLock = member == "lock" || member == "lock_shared";
    const bool isUnlock = member == "unlock" || member == "unlock_shared";
    if (!isLock && !isUnlock) return;
    if (i_ < 2 || (!is(toks_[i_ - 1], ".") && !is(toks_[i_ - 1], "->")))
      return;
    if (!has(i_ + 1) || !is(toks_[i_ + 1], "(")) return;
    const std::string path = pathEndingAt(i_ - 2);
    const auto gv = guardVars_.find(path);
    if (gv != guardVars_.end()) {
      for (const std::string& m : gv->second.mutexes) {
        if (isLock) {
          // A manual re-lock on a guard holds until the GUARD's scope
          // ends (its destructor), not the block the .lock() sits in:
          // `lk.unlock(); { ...; lk.lock(); }` stays held after the `}`.
          acquireLock(m, toks_[i_].line, /*functionScoped=*/false);
          const std::size_t idx =
              std::min(gv->second.scopeIdx, scopes_.size() - 1);
          scopes_[idx].heldLocks.insert(m);
        } else {
          releaseLock(m);
        }
      }
      return;
    }
    if (isLock)
      acquireLock(path, toks_[i_].line, /*functionScoped=*/true);
    else
      releaseLock(path);
  }

  // Record `GuardedClass [&*]... var` declarations (params and locals) so
  // dotted guarded-field accesses can be attributed to a concrete class.
  // Only classes that actually carry AWP_GUARDED_BY fields are tracked.
  void maybeRecordLocalDecl(std::size_t j) {
    if (!checkMode()) return;
    const Token& t = toks_[j];
    if (j > 0 && (is(toks_[j - 1], ".") || is(toks_[j - 1], "->"))) return;
    const ClassInfo* cls = index_->classInfo(t.text);
    if (cls == nullptr || cls->guardedFields.empty()) return;
    std::size_t k = j + 1;
    while (has(k) && (is(toks_[k], "&") || is(toks_[k], "&&") ||
                      is(toks_[k], "*") || is(toks_[k], "const")))
      ++k;
    if (k == j + 1 && has(k) && is(toks_[k], "<")) return;  // template arg
    if (!has(k) || !isIdent(toks_[k]) || !has(k + 1)) return;
    const std::string& nxt = toks_[k + 1].text;
    if (nxt == "=" || nxt == ";" || nxt == "," || nxt == ")" ||
        nxt == "{" || nxt == "(" || nxt == ":")
      localTypes_[toks_[k].text] = t.text;
  }

  // Rule 4a: an AWP_GUARDED_BY field accessed without its mutex held.
  void guardedAccessRule(const Token& t) {
    if (!checkMode() || !inFunction()) return;
    Scope* fn = functionScope();
    if (fn->isCtorDtor) return;
    const std::string full = pathEndingAt(i_);
    const ClassInfo* cls = nullptr;
    if (full == t.text) {
      // Bare (implicit-this) access: resolve against the enclosing class.
      const std::string ctx = classContext();
      if (ctx.empty()) return;
      cls = index_->classInfo(ctx);
      if (cls == nullptr || !cls->guardedFields.count(t.text)) return;
    } else {
      // Dotted access: only attributable when the base object was declared
      // in this function (param or local) with an indexed guarded-class
      // type — matching common field names like `count` by name alone
      // drowns in collisions with unrelated structs.
      const std::string base = full.substr(0, full.find('.'));
      const auto lt = localTypes_.find(base);
      if (lt == localTypes_.end()) return;
      cls = index_->classInfo(lt->second);
      if (cls == nullptr || !cls->guardedFields.count(t.text)) return;
      if (full != base + "." + t.text) return;  // only direct members
    }
    const std::string mutex = cls->guardedFields.at(t.text);
    // Prefix of the access path: `other.queue_` needs `other.mutex_`.
    std::string required = mutex;
    if (full.size() > t.text.size())
      required = full.substr(0, full.size() - t.text.size()) + mutex;
    if (lockHeld(required)) return;
    const std::string key = std::to_string(t.line) + ":" + full;
    if (!guardReported_.insert(key).second) return;
    emit(t.line, "guarded-field",
         "field `" + full + "` is AWP_GUARDED_BY(`" + mutex + "`) but `" +
             required +
             "` is not held on this path; take the lock, annotate the "
             "function with AWP_REQUIRES(" + mutex +
             "), or suppress with `// awplint: guard-ok(<why this access "
             "is race-free>)`");
  }

  // Rule 4b: calling an AWP_REQUIRES-annotated helper on `this` without
  // holding its contract locks. Restricted to this-calls (bare name or
  // explicit this->) where the current class declares the contract, so a
  // same-named method of an unrelated class can never misfire.
  void requiresCallRule(const Token& t) {
    if (!checkMode() || !inFunction()) return;
    Scope* fn = functionScope();
    if (fn->isCtorDtor) return;
    if (!has(i_ + 1) || !is(toks_[i_ + 1], "(")) return;
    if (i_ > 0 && (is(toks_[i_ - 1], ".") || is(toks_[i_ - 1], "->")) &&
        !(i_ >= 2 && is(toks_[i_ - 2], "this")))
      return;
    const std::string ctx = classContext();
    if (ctx.empty()) return;
    const auto it = index_->requiresByKey.find(ctx + "::" + t.text);
    if (it == index_->requiresByKey.end()) return;
    for (const std::string& m : it->second) {
      std::string need = m;
      const std::string prefix = ctx + "::";
      if (need.rfind(prefix, 0) == 0) need = need.substr(prefix.size());
      if (need.find("::") != std::string::npos) continue;
      if (lockHeld(need)) continue;
      emit(t.line, "lock-requires",
           "`" + t.text + "()` is annotated AWP_REQUIRES(" + need +
               ") but `" + need +
               "` is not held at this call site; take the lock first, "
               "propagate the AWP_REQUIRES contract, or suppress with "
               "`// awplint: lock-ok(<why the lock is not needed here>)`");
    }
  }

  // AWP_GUARDED_BY in a class body: record field -> mutex.
  void handleGuardedByAnnotation() {
    Scope* ts = typeScope();
    if (ts == nullptr || ts->classIdx < 0 || i_ == 0) return;
    if (!isIdent(toks_[i_ - 1])) return;
    const auto paths = parenPaths(i_);
    if (paths.size() != 1) return;
    ClassInfo& c = fileIndex_.classes[static_cast<std::size_t>(ts->classIdx)];
    c.guardedFields[toks_[i_ - 1].text] = paths[0];
  }

  // `std::mutex name_;` in a class body: record the mutex member so lock
  // names can be class-qualified at merge time.
  void maybeMutexMember() {
    Scope* ts = typeScope();
    if (ts == nullptr || ts->classIdx < 0) return;
    if (!has(i_ + 1) || !isIdent(toks_[i_ + 1])) return;
    if (!has(i_ + 2) || !is(toks_[i_ + 2], ";")) return;
    fileIndex_.classes[static_cast<std::size_t>(ts->classIdx)]
        .mutexMembers.insert(toks_[i_ + 1].text);
  }

  // ---- per-token dispatch -------------------------------------------------

  void step() {
    const Token& t = toks_[i_];
    if (t.kind == Token::Kind::String) return;

    if (is(t, "{")) {
      openBrace(i_);
      scopes_.back().enclosingParenDepth = parenDepth_;
      parenDepth_ = 0;
      lastBoundary_ = i_;
      return;
    }
    if (is(t, "}")) {
      closeBrace();
      lastBoundary_ = i_;
      return;
    }
    if (is(t, ";")) {
      if (parenDepth_ == 0) popStmtScopes();
      lastBoundary_ = i_;
      return;
    }
    if (is(t, "(")) ++parenDepth_;
    if (is(t, ")")) parenDepth_ = std::max(0, parenDepth_ - 1);

    // Convert a pending control header into a single-statement scope when
    // its body turns out to be unbraced.
    if (pending_.active && i_ > pending_.afterIdx && !is(t, "{")) {
      Scope s;
      s.kind = Scope::Kind::Stmt;
      s.stmtOrigin = pending_.kind;
      s.braced = false;
      s.tainted = pending_.tainted;
      s.taintReason = pending_.reason;
      pending_.active = false;
      pushScope(std::move(s));
    }

    if (isIdent(t) && !inFunction()) {
      if (is(t, "AWP_GUARDED_BY")) {
        handleGuardedByAnnotation();
        return;
      }
      if (is(t, "AWP_REQUIRES") && typeScope() != nullptr) {
        // Only declarations land here: on definitions the annotation is
        // consumed by openBrace before the body opens.
        recordRequiresDeclaration(i_);
        return;
      }
      if (kMutexTypes.count(t.text)) maybeMutexMember();
    }

    if (isIdent(t) && inFunction()) {
      if (is(t, "if") || is(t, "while") || is(t, "switch") || is(t, "for")) {
        controlHeader(t.text);
        return;
      }
      if (is(t, "else")) {
        pending_.active = true;
        pending_.kind = Scope::Kind::Else;
        pending_.tainted = scopes_.back().lastIfTaint;
        pending_.reason = scopes_.back().lastIfReason;
        pending_.afterIdx = i_;
        return;
      }
      if (is(t, "do")) {
        pending_ = {true, Scope::Kind::Loop, false, "", i_};
        return;
      }
      if (is(t, "return")) recordReturn();
      if (is(t, "return") || is(t, "throw") || is(t, "break") ||
          is(t, "continue")) {
        earlyExit(t.text);
        // fall through: `throw` is also a hot-path violation.
      }
      if (kLockGuardTypes.count(t.text)) handleGuardDecl();
      handleLockMemberCall();
      recordCallee(t);
      maybeRecordLocalDecl(i_);
      guardedAccessRule(t);
      requiresCallRule(t);
      // A finished bcast leaves its arguments uniform on every rank.
      if ((is(t, "bcast") || is(t, "broadcast")) && i_ > 0 &&
          (is(toks_[i_ - 1], ".") || is(toks_[i_ - 1], "->")))
        scrubBcastArgs(i_);
    }

    if (is(t, "=")) handleAssignment(i_);

    collectiveRule(t);
    hotRules(t);
    spanRules(t);
  }

  // Record the callee set and allocation count for the summary.
  void recordCallee(const Token& t) {
    FunctionSummary* f = curSummary();
    if (f == nullptr) return;
    const bool call = has(i_ + 1) && is(toks_[i_ + 1], "(");
    if (call && !kNotCallees.count(t.text)) {
      f->callees.insert(t.text);
      if (!kLockApiCallees.count(t.text))
        for (const std::string& held : allHeldLocks())
          f->calleeHeld[t.text].insert(held);
    }
    // Collective primitives are member calls: comm.barrier(), mb->bcast().
    const bool memberCall =
        i_ > 0 && (is(toks_[i_ - 1], ".") || is(toks_[i_ - 1], "->"));
    if (call && memberCall && cfg_.collectivePrimitives.count(t.text))
      f->callsCollectivePrimitive = true;
    if (is(t, "new") || (call && kHotAllocCalls.count(t.text)) ||
        (call && memberCall && kHotGrowthMembers.count(t.text)) ||
        (!memberCall && kHotAllocNames.count(t.text)))
      ++f->allocations;
  }

  // `return <expr>;` — extract local rank taint and return-position calls.
  void recordReturn() {
    FunctionSummary* f = curSummary();
    if (f == nullptr) return;
    int rel = 0;
    std::size_t end = i_ + 1;
    for (; end < toks_.size(); ++end) {
      const std::string& s = toks_[end].text;
      if (s == "(" || s == "[" || s == "{") ++rel;
      else if (s == ")" || s == "]" || s == "}") {
        if (--rel < 0) break;
      } else if (s == ";" && rel <= 0) {
        break;
      }
    }
    std::string reason;
    if (spanTainted(i_ + 1, end, &reason)) f->localRankReturn = true;
    // A return VALUE inside rank-divergent control flow is itself
    // rank-dependent even when the expression is clean.
    if (!f->localRankReturn && end > i_ + 1 && effectiveTaint(&reason))
      f->localRankReturn = true;
    // Calls in return position propagate return-taint — but not from
    // inside a scrubbing allreduce/allgather call expression.
    for (std::size_t j = i_ + 1; j < end; ++j) {
      if (!isIdent(toks_[j])) continue;
      if (kUniformResultFns.count(toks_[j].text) && has(j + 1) &&
          is(toks_[j + 1], "(")) {
        j = matchForward(j + 1);
        continue;
      }
      if (has(j + 1) && is(toks_[j + 1], "(") &&
          !kNotCallees.count(toks_[j].text))
        f->returnCallees.insert(toks_[j].text);
    }
  }

  void controlHeader(const std::string& kw) {
    // `if` starts a fresh chain at this level.
    if (kw == "if" && !scopes_.empty()) {
      scopes_.back().lastIfTaint = false;
      scopes_.back().lastIfReason.clear();
    }
    if (!has(i_ + 1) || !is(toks_[i_ + 1], "(")) return;
    const std::size_t close = matchForward(i_ + 1);
    std::string reason;
    const bool tainted = spanTainted(i_ + 2, close, &reason);
    pending_.active = true;
    pending_.kind = (kw == "for" || kw == "while") ? Scope::Kind::Loop
                                                   : Scope::Kind::Cond;
    pending_.tainted = tainted;
    pending_.reason = tainted
                          ? reason + " (line " +
                                std::to_string(toks_[i_].line) + ")"
                          : "";
    pending_.afterIdx = close;
  }

  void earlyExit(const std::string& kw) {
    // Locate the exit's target scope and check whether any predicate
    // BETWEEN it and this statement is tainted: if so, everything after
    // the construct in the target scope only runs on some ranks.
    const bool toFunction = (kw == "return" || kw == "throw");
    std::string reason;
    bool taintedBelowTarget = false;
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      // No early exit escapes a lambda body: the exit targets at most
      // the lambda itself.
      const bool isTarget =
          it->lambdaBoundary ||
          (toFunction ? it->kind == Scope::Kind::Function
                      : (it->kind == Scope::Kind::Loop ||
                         (kw == "break" && it->kind == Scope::Kind::Cond)));
      if (isTarget) {
        if (taintedBelowTarget && !it->remainderTainted) {
          it->remainderTainted = true;
          it->remainderReason = "code after rank-dependent `" + kw +
                                "` at line " +
                                std::to_string(toks_[i_].line) + " (" +
                                reason + ")";
        }
        return;
      }
      if (it->tainted && !taintedBelowTarget) {
        taintedBelowTarget = true;
        reason = it->taintReason;
      }
    }
  }

  // ---- rule 1: collective consistency -------------------------------------

  void collectiveRule(const Token& t) {
    if (!checkMode() || !checkCollectives_ || !isIdent(t) || !inFunction())
      return;
    if (!has(i_ + 1) || !is(toks_[i_ + 1], "(")) return;
    const bool memberCall =
        i_ > 0 && (is(toks_[i_ - 1], ".") || is(toks_[i_ - 1], "->"));
    const bool primitive =
        cfg_.collectivePrimitives.count(t.text) != 0 && memberCall;
    // Interprocedural: the fixpoint proved this function reaches a
    // collective primitive at some call depth (v1's whitelist, derived).
    const bool wrapper = !primitive && index_->isCollective(t.text);
    if (!primitive && !wrapper) return;
    std::string reason;
    if (!effectiveTaint(&reason)) return;
    emit(t.line, "collective-in-rank-branch",
         std::string("collective ") +
             (wrapper ? "wrapper `" : "`") + t.text +
             "` reached under rank-dependent control flow: " + reason +
             "; if every rank provably takes this branch together, annotate "
             "with `// awplint: collective-uniform(<why>)`");
  }

  // ---- rule 2: hot-path hygiene -------------------------------------------

  void hotRules(const Token& t) {
    if (!checkMode()) return;
    Scope* fn = functionScope();
    if (fn == nullptr || !fn->isHot || !isIdent(t)) return;
    const bool call = has(i_ + 1) && is(toks_[i_ + 1], "(");
    const bool memberCall =
        i_ > 0 && (is(toks_[i_ - 1], ".") || is(toks_[i_ - 1], "->"));
    if (is(t, "new") || is(t, "delete")) {
      emit(t.line, "hot-alloc",
           "`" + t.text + "` in AWP_HOT function `" + fn->fnName + "`");
    } else if (call && !memberCall && kHotAllocCalls.count(t.text)) {
      emit(t.line, "hot-alloc",
           "allocation call `" + t.text + "` in AWP_HOT function `" +
               fn->fnName + "`");
    } else if (call && memberCall && kHotGrowthMembers.count(t.text)) {
      emit(t.line, "hot-alloc",
           "container growth `." + t.text + "()` in AWP_HOT function `" +
               fn->fnName + "`");
    } else if (kHotAllocNames.count(t.text) && !memberCall) {
      emit(t.line, "hot-alloc",
           "`" + t.text + "` in AWP_HOT function `" + fn->fnName +
               "` (use a preallocated span/scratch buffer)");
    } else if (kHotStringIds.count(t.text) && !memberCall) {
      emit(t.line, "hot-alloc",
           "string construction `" + t.text + "` in AWP_HOT function `" +
               fn->fnName + "`");
    } else if (is(t, "throw")) {
      emit(t.line, "hot-throw",
           "`throw` in AWP_HOT function `" + fn->fnName + "`");
    } else if (call && kHotCheckMacros.count(t.text)) {
      emit(t.line, "hot-throw",
           "`" + t.text + "` (throws on failure) in AWP_HOT function `" +
               fn->fnName + "`");
    }
  }

  // ---- rule 3: telemetry span discipline ----------------------------------

  void spanRules(const Token& t) {
    if (!checkMode() || !checkSpans_ || !isIdent(t)) return;
    // telemetry::Phase::X must name a taxonomy member.
    if (is(t, "Phase") && i_ >= 2 && is(toks_[i_ - 1], "::") &&
        is(toks_[i_ - 2], "telemetry") && has(i_ + 2) &&
        is(toks_[i_ + 1], "::") && isIdent(toks_[i_ + 2])) {
      const std::string& member = toks_[i_ + 2].text;
      if (!cfg_.phases.empty() && cfg_.phases.count(member) == 0) {
        emit(toks_[i_ + 2].line, "span-taxonomy",
             "`telemetry::Phase::" + member +
                 "` is not in the fixed phase taxonomy");
      }
    }
    if (is(t, "ScopedSpan")) {
      // Statement-leading `ScopedSpan(...)` is a temporary that closes
      // immediately — it times nothing.
      std::size_t first = i_;
      if (first >= 2 && is(toks_[first - 1], "::") &&
          is(toks_[first - 2], "telemetry"))
        first -= 2;
      const bool stmtStart =
          first == 0 || is(toks_[first - 1], ";") ||
          is(toks_[first - 1], "{") || is(toks_[first - 1], "}");
      if (stmtStart && has(i_ + 1) && is(toks_[i_ + 1], "(")) {
        emit(t.line, "span-temporary",
             "unnamed ScopedSpan temporary is destroyed immediately; bind "
             "it to a named local");
      }
    }
    if (is(t, "ManualSpan")) {
      emit(t.line, "manual-span",
           "ManualSpan is a raw begin/end pair; prefer ScopedSpan, or "
           "annotate with `// awplint: manual-span(<why RAII cannot work>)`");
    }
    if (is(t, "RankTelemetry")) {
      emit(t.line, "raw-span-api",
           "raw RankTelemetry open/close API used outside src/telemetry");
    }
  }

  // ---- registry + suppression ---------------------------------------------

  void registryCheck() {
    for (const auto& [suffix, fn] : cfg_.hotRegistry) {
      if (path_.size() < suffix.size() ||
          path_.compare(path_.size() - suffix.size(), suffix.size(),
                        suffix) != 0)
        continue;
      if (hotFns_.count(fn)) continue;
      const auto defined = definedFns_.find(fn);
      if (defined != definedFns_.end()) {
        emit(defined->second, "hot-registry",
             "`" + fn + "` is listed in the hot registry but its definition "
                        "is not marked AWP_HOT");
      } else {
        emit(1, "hot-registry",
             "hot registry lists `" + fn + "` for this file but no such "
             "function definition was found (registry drift?)");
      }
    }
  }

  void emit(int line, const std::string& rule, const std::string& message) {
    if (!checkMode()) return;
    findings_.push_back({path_, line, rule, message});
  }

  // ---- state --------------------------------------------------------------

  std::string path_;
  const LexedFile& lf_;
  const Tokens& toks_;
  const Config& cfg_;
  const SymbolIndex* index_;  // nullptr in pass 1
  bool checkCollectives_ = true;
  bool checkSpans_ = true;

  std::size_t i_ = 0;
  std::size_t lastBoundary_ = static_cast<std::size_t>(-1);
  int parenDepth_ = 0;
  std::vector<Scope> scopes_;
  Pending pending_;
  std::vector<Finding> findings_;
  std::set<std::string> hotFns_;
  std::map<std::string, int> definedFns_;
  FileIndex fileIndex_;
  std::vector<FunctionSummary> summaryStack_;
  struct GuardVar {
    std::vector<std::string> mutexes;
    std::size_t scopeIdx = 0;  // scope index where the guard was declared
  };
  std::map<std::string, GuardVar> guardVars_;
  // Locals/params declared with an indexed guarded-class type, from this
  // function's header and body: `JobState& j` -> {"j": "JobState"}.
  std::map<std::string, std::string> localTypes_;
  std::set<std::string> guardReported_;
};

}  // namespace

std::set<std::string> parsePhaseTaxonomy(const LexedFile& lf) {
  std::set<std::string> phases;
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is(toks[i], "enum")) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && (is(toks[j], "class") || is(toks[j], "struct")))
      ++j;
    if (j >= toks.size() || !is(toks[j], "Phase")) continue;
    while (j < toks.size() && !is(toks[j], "{")) ++j;
    ++j;
    bool expectName = true;
    int depth = 1;
    for (; j < toks.size() && depth > 0; ++j) {
      if (is(toks[j], "{")) ++depth;
      else if (is(toks[j], "}")) --depth;
      else if (is(toks[j], ",") && depth == 1) expectName = true;
      else if (expectName && isIdent(toks[j])) {
        phases.insert(toks[j].text);
        expectName = false;
      }
    }
    break;
  }
  return phases;
}

FileIndex indexFile(const std::string& path, const LexedFile& lf,
                    const Config& cfg) {
  Analyzer a(path, lf, cfg, nullptr);
  a.run();
  return a.takeIndex();
}

std::vector<Finding> analyzeFile(const std::string& path, const LexedFile& lf,
                                 const Config& cfg, const SymbolIndex& index) {
  return Analyzer(path, lf, cfg, &index).run();
}

std::string suppressionNameFor(const std::string& rule) {
  if (rule == "collective-in-rank-branch") return "collective-uniform";
  if (rule == "hot-alloc" || rule == "hot-throw") return "hot-ok";
  if (rule == "manual-span") return "manual-span";
  if (rule == "span-taxonomy" || rule == "span-temporary" ||
      rule == "raw-span-api")
    return "span-ok";
  if (rule == "guarded-field") return "guard-ok";
  if (rule == "lock-order" || rule == "lock-requires") return "lock-ok";
  if (rule.rfind("registry-", 0) == 0 || rule == "hot-unpinned")
    return "registry-ok";
  return "";
}

std::vector<Finding> applySuppressions(std::vector<Finding> findings,
                                       const LexedFile& lf) {
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    const std::string want = suppressionNameFor(f.rule);
    bool suppressed = false;
    bool emptyReason = false;
    for (int line : {f.line, f.line - 1}) {
      auto it = lf.annotations.find(line);
      if (it == lf.annotations.end()) continue;
      for (const Annotation& a : it->second) {
        if (a.rule != want) continue;
        if (a.reason.empty()) emptyReason = true;
        else suppressed = true;
      }
    }
    if (suppressed) continue;
    if (emptyReason)
      f.message += " [annotation found but its reason string is empty]";
    kept.push_back(std::move(f));
  }
  return kept;
}

}  // namespace awplint
