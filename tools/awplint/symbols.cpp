#include "symbols.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>

namespace awplint {

namespace {

// Qualify a raw lock path recorded inside class `cls`: a bare (or
// this->-stripped) name that matches a declared mutex member of the class
// becomes "cls::name"; anything else stays textual (the scanner cannot
// type-resolve `board_.mutex_`, and leaving it textual is still stable
// enough for inversion matching).
std::string qualifyLock(const std::string& raw, const std::string& cls,
                        const std::map<std::string, ClassInfo>& classes) {
  if (cls.empty() || raw.find('.') != std::string::npos) return raw;
  auto it = classes.find(cls);
  if (it != classes.end() && it->second.mutexMembers.count(raw))
    return cls + "::" + raw;
  return raw;
}

}  // namespace

void SymbolIndex::add(FileIndex&& fi) {
  for (ClassInfo& c : fi.classes) {
    ClassInfo& dst = classes[c.name];
    if (dst.name.empty()) {
      dst = std::move(c);
      continue;
    }
    // Same class name seen again (header re-walked, or a genuinely
    // distinct type with the same name): union the facts, conservatively.
    for (auto& [field, mutex] : c.guardedFields)
      dst.guardedFields.emplace(field, mutex);
    dst.mutexMembers.insert(c.mutexMembers.begin(), c.mutexMembers.end());
  }
  for (FunctionSummary& f : fi.functions) functions.push_back(std::move(f));
}

const std::set<std::string>* SymbolIndex::requiredLocksFor(
    const std::string& qualifier, const std::string& name) const {
  if (!qualifier.empty()) {
    auto it = requiresByKey.find(qualifier + "::" + name);
    if (it != requiresByKey.end()) return &it->second;
  }
  auto it = requiresByKey.find(name);
  return it == requiresByKey.end() ? nullptr : &it->second;
}

// Lock qualification happens after every file has been merged, because a
// .cpp's out-of-line definitions need the class's mutex declarations from
// its header. callgraph::propagate calls this before the fixpoint.
void qualifyIndexLocks(SymbolIndex& index) {
  for (FunctionSummary& f : index.functions) {
    std::set<std::string> q;
    for (const std::string& raw : f.acquiredLocks)
      q.insert(qualifyLock(raw, f.qualifier, index.classes));
    f.acquiredLocks = std::move(q);
    std::set<std::string> r;
    for (const std::string& raw : f.requiredLocks)
      r.insert(qualifyLock(raw, f.qualifier, index.classes));
    f.requiredLocks = std::move(r);
    for (LockEdge& e : f.lockEdges) {
      e.held = qualifyLock(e.held, f.qualifier, index.classes);
      e.acquired = qualifyLock(e.acquired, f.qualifier, index.classes);
    }
    for (auto& [callee, held] : f.calleeHeld) {
      std::set<std::string> qh;
      for (const std::string& raw : held)
        qh.insert(qualifyLock(raw, f.qualifier, index.classes));
      held = std::move(qh);
    }
  }
}

// ---- cache serialization -------------------------------------------------
// Line-oriented text: one record per line, fields separated by '\x1f'
// (never present in identifiers or paths we emit). Version bumps on any
// format change via the key prefix in indexCacheKey.

namespace {

constexpr char kSep = '\x1f';

std::string joinSet(const std::set<std::string>& s) {
  std::string out;
  for (const auto& e : s) {
    if (!out.empty()) out += ',';
    out += e;
  }
  return out;
}

std::set<std::string> splitSet(const std::string& s) {
  std::set<std::string> out;
  std::size_t at = 0;
  while (at <= s.size() && !s.empty()) {
    std::size_t comma = s.find(',', at);
    if (comma == std::string::npos) comma = s.size();
    if (comma > at) out.insert(s.substr(at, comma - at));
    if (comma == s.size()) break;
    at = comma + 1;
  }
  return out;
}

std::vector<std::string> splitFields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (true) {
    const std::size_t sep = line.find(kSep, at);
    if (sep == std::string::npos) {
      out.push_back(line.substr(at));
      return out;
    }
    out.push_back(line.substr(at, sep - at));
    at = sep + 1;
  }
}

}  // namespace

void saveIndexCache(const std::string& path, const std::string& key,
                    const SymbolIndex& index) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;  // cache is best-effort
  out << "awplint-index" << kSep << key << "\n";
  for (const auto& [name, c] : index.classes) {
    out << "C" << kSep << name << kSep << c.file << kSep
        << joinSet(c.mutexMembers);
    for (const auto& [field, mutex] : c.guardedFields)
      out << kSep << field << '=' << mutex;
    out << "\n";
  }
  for (const FunctionSummary& f : index.functions) {
    out << "F" << kSep << f.name << kSep << f.qualifier << kSep << f.file
        << kSep << f.line << kSep << (f.isHot ? 1 : 0)
        << (f.isDeclaration ? 2 : 0) << (f.callsCollectivePrimitive ? 4 : 0)
        << (f.localRankReturn ? 8 : 0) << kSep << f.allocations << kSep
        << joinSet(f.callees) << kSep << joinSet(f.returnCallees) << kSep
        << joinSet(f.requiredLocks) << kSep << joinSet(f.acquiredLocks);
    for (const LockEdge& e : f.lockEdges)
      out << kSep << e.held << '<' << e.acquired << '@' << e.line;
    // Held-at-call-site sets: `callee>lock1;lock2` (distinguished from
    // lock edges by '>' instead of '<').
    for (const auto& [callee, held] : f.calleeHeld) {
      if (held.empty()) continue;
      out << kSep << callee << '>';
      bool first = true;
      for (const std::string& l : held) {
        if (!first) out << ';';
        out << l;
        first = false;
      }
    }
    out << "\n";
  }
  out << "S" << kSep << "collective" << kSep << joinSet(index.collectiveNames)
      << "\n";
  out << "S" << kSep << "rankreturn" << kSep << joinSet(index.rankReturnNames)
      << "\n";
  for (const auto& [name, locks] : index.acquiresByName)
    out << "A" << kSep << name << kSep << joinSet(locks) << "\n";
  for (const auto& [key2, locks] : index.requiresByKey)
    out << "R" << kSep << key2 << kSep << joinSet(locks) << "\n";
}

bool loadIndexCache(const std::string& path, const std::string& key,
                    SymbolIndex* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  const auto header = splitFields(line);
  if (header.size() != 2 || header[0] != "awplint-index" || header[1] != key)
    return false;
  SymbolIndex idx;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = splitFields(line);
    if (f[0] == "C" && f.size() >= 4) {
      ClassInfo c;
      c.name = f[1];
      c.file = f[2];
      c.mutexMembers = splitSet(f[3]);
      for (std::size_t i = 4; i < f.size(); ++i) {
        const std::size_t eq = f[i].find('=');
        if (eq != std::string::npos)
          c.guardedFields[f[i].substr(0, eq)] = f[i].substr(eq + 1);
      }
      idx.classes[c.name] = std::move(c);
    } else if (f[0] == "F" && f.size() >= 11) {
      FunctionSummary fn;
      fn.name = f[1];
      fn.qualifier = f[2];
      fn.file = f[3];
      fn.line = std::stoi(f[4]);
      int flags = 0;
      for (char ch : f[5]) flags |= (ch - '0');
      fn.isHot = (flags & 1) != 0;
      fn.isDeclaration = (flags & 2) != 0;
      fn.callsCollectivePrimitive = (flags & 4) != 0;
      fn.localRankReturn = (flags & 8) != 0;
      fn.allocations = std::stoi(f[6]);
      fn.callees = splitSet(f[7]);
      fn.returnCallees = splitSet(f[8]);
      fn.requiredLocks = splitSet(f[9]);
      fn.acquiredLocks = splitSet(f[10]);
      for (std::size_t i = 11; i < f.size(); ++i) {
        const std::size_t lt = f[i].find('<');
        const std::size_t gt = f[i].find('>');
        if (gt != std::string::npos &&
            (lt == std::string::npos || gt < lt)) {
          auto& held = fn.calleeHeld[f[i].substr(0, gt)];
          std::size_t at2 = gt + 1;
          while (at2 <= f[i].size()) {
            std::size_t semi = f[i].find(';', at2);
            if (semi == std::string::npos) semi = f[i].size();
            if (semi > at2) held.insert(f[i].substr(at2, semi - at2));
            if (semi == f[i].size()) break;
            at2 = semi + 1;
          }
          continue;
        }
        const std::size_t at = f[i].rfind('@');
        if (lt == std::string::npos || at == std::string::npos || at < lt)
          continue;
        LockEdge e;
        e.held = f[i].substr(0, lt);
        e.acquired = f[i].substr(lt + 1, at - lt - 1);
        e.line = std::stoi(f[i].substr(at + 1));
        e.file = fn.file;
        fn.lockEdges.push_back(std::move(e));
      }
      idx.functions.push_back(std::move(fn));
    } else if (f[0] == "S" && f.size() == 3) {
      if (f[1] == "collective") idx.collectiveNames = splitSet(f[2]);
      if (f[1] == "rankreturn") idx.rankReturnNames = splitSet(f[2]);
    } else if (f[0] == "A" && f.size() == 3) {
      idx.acquiresByName[f[1]] = splitSet(f[2]);
    } else if (f[0] == "R" && f.size() == 3) {
      idx.requiresByKey[f[1]] = splitSet(f[2]);
    }
  }
  *out = std::move(idx);
  return true;
}

std::string indexCacheKey(const std::vector<std::string>& contents) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0xff;  // file separator
    h *= 1099511628211ULL;
  };
  mix("awplint-index-v3");  // format version participates in the key
  for (const std::string& c : contents) mix(c);
  std::ostringstream ss;
  ss << std::hex << h;
  return ss.str();
}

}  // namespace awplint
