// Telemetry demo: a 2-rank run with one injected blow-up, traced end to
// end by the telemetry subsystem.
//
//   1. build a wave solver on 2 virtual ranks with the health guard,
//      checkpoints, and dt re-widening enabled,
//   2. inject a NaN on rank 0 so the guard rolls back and replays,
//   3. install a telemetry session for the run: every phase (kernels,
//      halo, absorb, output, checkpoint, health scans, rollback replay)
//      lands in per-rank span buffers and counters,
//   4. the solver emits the cluster report (JSON) and per-rank traces
//      (JSONL) at the end of run(),
//   5. validate the report: schema, per-phase stats, and that the phase
//      times cover >= 95% of the measured wall time.
//
// Exits non-zero on any validation failure — CI runs this binary.
//
// Build & run:  ./examples/telemetry_demo [output-dir]

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/solver.hpp"
#include "fault/injector.hpp"
#include "io/checkpoint.hpp"
#include "io/shared_file.hpp"
#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/report.hpp"
#include "util/table.hpp"
#include "vcluster/cluster.hpp"

using namespace awp;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "telemetry_demo_out";
  const std::string reportPath = dir + "/telemetry_report.json";
  std::filesystem::create_directories(dir + "/ckpt");

  // The rollback scenario from the health-guard suite: NaN poisons rank 0
  // entering step 23; checkpoints at 10/20 and scans every 5 steps mean
  // detection at step 25, rollback to step 21, dt halved, then — with the
  // re-widen window at 2 — dt walks back to the baseline after two
  // consecutive Healthy scans.
  fault::FaultPlan plan;
  plan.poison("solver.step", /*rank=*/0, /*occurrence=*/23);
  fault::FaultInjector injector(std::move(plan), /*seed=*/99);
  fault::ScopedInjection scope(injector);

  telemetry::Session session(telemetry::SessionConfig{/*nranks=*/2});

  double dt0 = 0.0, dtFinal = 0.0;
  vcluster::ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    vcluster::CartTopology topo(vcluster::Dims3{2, 1, 1});
    core::SolverConfig config;
    config.globalDims = {28, 20, 14};
    config.h = 600.0;
    config.spongeWidth = 4;
    config.health.enabled = true;
    config.health.monitor.everySteps = 5;
    config.health.dtRewidenWindow = 2;
    config.health.dtRewiden = 2.0;
    config.telemetry.reportPath = reportPath;
    config.telemetry.tracePathPrefix = dir + "/telemetry_trace";

    io::CheckpointStore store(dir + "/ckpt");
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5200.0f, 3000.0f, 2700.0f});
    solver.attachCheckpoints(&store, 10);
    solver.addSource(core::explosionPointSource(
        14, 10, 7,
        core::rickerWavelet(2.0, 0.5, solver.dt(), 40, 1e15)));
    solver.addReceiver("site", 20, 12);
    dt0 = solver.dt();

    // Install the session for the run() window only, so the report's wall
    // clock and the recorded spans measure the same interval. The install
    // is process-global: one rank flips it while the others wait.
    comm.barrier();
    if (comm.rank() == 0) telemetry::installSession(&session);
    comm.barrier();
    solver.run(40);
    comm.barrier();
    if (comm.rank() == 0) telemetry::installSession(nullptr);
    comm.barrier();
    dtFinal = solver.dt();
  });

  // --- validate the emitted report ---------------------------------------
  int failures = 0;
  auto expect = [&](bool ok, const std::string& what) {
    std::cout << (ok ? "  [ok]   " : "  [FAIL] ") << what << "\n";
    if (!ok) ++failures;
  };

  const std::string text = io::readTextFile(reportPath);
  const auto violations = telemetry::validateReportJson(text);
  for (const auto& v : violations) std::cout << "  [FAIL] schema: " << v << "\n";
  failures += static_cast<int>(violations.size());
  expect(violations.empty(), "report passes schema validation");

  const auto root = telemetry::parseJson(text);
  auto number = [&](const char* key) {
    const telemetry::JsonValue* v = root.find(key);
    return v != nullptr && v->isNumber() ? v->number : std::nan("");
  };
  auto counterTotal = [&](const char* name) {
    const telemetry::JsonValue* counters = root.find("counters");
    const telemetry::JsonValue* c =
        counters != nullptr ? counters->find(name) : nullptr;
    const telemetry::JsonValue* t = c != nullptr ? c->find("total") : nullptr;
    return t != nullptr && t->isNumber() ? t->number : std::nan("");
  };

  expect(number("nranks") == 2.0, "report covers 2 ranks");
  expect(number("coverage") >= 0.95,
         "phase times cover >= 95% of wall time (coverage = " +
             std::to_string(number("coverage")) + ")");
  expect(number("replay_seconds") > 0.0,
         "rollback replay time is accounted separately");
  // Guard events are collective, so each rank counts one: total == nranks.
  expect(counterTotal("rollbacks") == 2.0, "one rollback per rank counted");
  expect(counterTotal("dt_tighten_events") == 2.0, "one dt tightening");
  expect(counterTotal("dt_rewiden_events") >= 2.0, "dt re-widened after "
         "the Healthy streak");
  expect(dtFinal == dt0, "dt walked back to the baseline (" +
                             std::to_string(dtFinal) + " s)");
  expect(counterTotal("cells_updated") > 0.0, "cell-update counter nonzero");
  expect(counterTotal("spans_dropped") == 0.0, "no trace spans dropped");

  // Per-phase table from the report, mean across ranks.
  std::cout << "\ntelemetry report (" << reportPath << "), wall = "
            << number("wall_seconds") << " s:\n\n";
  TextTable table({"Phase", "mean (ms)", "max (ms)", "imbalance", "max rank"});
  const telemetry::JsonValue* phases = root.find("phases");
  for (std::size_t p = 0; p < telemetry::kPhaseCount; ++p) {
    const telemetry::JsonValue* e =
        phases->find(std::string(telemetry::kPhaseJsonNames[p]));
    if (e == nullptr) continue;
    table.addRow({std::string(telemetry::kPhaseJsonNames[p]),
                  TextTable::num(e->find("mean_seconds")->number * 1e3, 3),
                  TextTable::num(e->find("max_seconds")->number * 1e3, 3),
                  TextTable::num(e->find("imbalance")->number, 2),
                  std::to_string(
                      static_cast<int>(e->find("max_rank")->number))});
  }
  table.print(std::cout);

  std::cout << "\n" << (failures == 0 ? "telemetry_demo: PASS"
                                      : "telemetry_demo: FAIL") << "\n";
  return failures == 0 ? 0 : 1;
}
