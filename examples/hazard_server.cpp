// Hazard-server chaos driver: a scenario ensemble runs across three
// sharded brokers while a subscribed client watches tile-version deltas
// for its extent and issues exceedance queries mid-run. The fault plan
// fail-stops one broker AND drops the first window publishes of every
// origin — the serving tier must still converge every subscribed tile to
// its final complete version, partial maps must be queryable before
// completion with honest staleness, and the exceedance answer over the
// settled catalog must match a brute-force fold of the partial maps.
//
// Exits nonzero on any violated expectation. CI runs this under
// ASan/UBSan and (via the chaos job) alongside the fault suites.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "fabric/fabric.hpp"
#include "fault/injector.hpp"
#include "sched/report.hpp"
#include "sched/spec.hpp"
#include "serve/server.hpp"
#include "serve/tile.hpp"

using namespace awp;
namespace fs = std::filesystem;

namespace {

sched::ScenarioSpec member(std::uint64_t steps, double amplitude,
                           const std::string& name) {
  sched::ScenarioSpec spec;
  spec.kind = sched::ScenarioKind::Wave;
  spec.dims = {32, 24, 16};
  spec.h = 600.0;
  spec.steps = steps;
  spec.nranks = 2;
  spec.useCvm = true;
  spec.checkpointEverySteps = 8;
  spec.surfaceSampleEverySteps = 2;
  spec.healthEverySteps = 5;
  spec.sourceAmplitude = amplitude;
  spec.name = name;
  return spec;
}

bool expect(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "FAIL: %s\n", what);
  return ok;
}

}  // namespace

int main() {
  const fs::path root = fs::temp_directory_path() / "awp-hazard-server";
  fs::remove_all(root);

  // Broker 1 dies at its 10th pump tick; every origin loses its first two
  // window publishes outright.
  fault::FaultPlan plan;
  plan.brokerDeath(/*broker=*/1, /*occurrence=*/10);
  for (int origin = 0; origin < 3; ++origin)
    plan.servePublishDrop(origin, /*occurrence=*/1, /*count=*/2);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  fabric::FabricConfig config;
  config.brokers = 3;
  config.rootDir = root.string();
  config.leaseSeconds = 0.4;
  config.heartbeatSeconds = 0.08;
  config.pumpIntervalSeconds = 0.005;
  config.service.coreBudget = 4;
  config.service.queueCapacity = 16;
  config.serve.tileEdge = 8;
  config.serve.windowSamples = 2;
  config.serve.reconcileEveryTicks = 20;  // anti-entropy on the pump
  fabric::HazardFabric fabric(config);

  // The subscribed client: full-extent watch, per-tile version fences.
  std::mutex mu;
  std::map<std::tuple<std::string, int, int>, std::uint64_t> latest;
  bool ordered = true;
  std::uint64_t partialDeltas = 0;
  fabric.subscribeTiles(
      serve::Field::PgvH, serve::Extent{0, 0, 32, 24},
      [&](const std::vector<serve::TileDelta>& batch) {
        std::lock_guard<std::mutex> lock(mu);
        for (const auto& d : batch) {
          auto& last = latest[std::make_tuple(d.digest, d.tx, d.ty)];
          if (d.version <= last) ordered = false;
          last = d.version;
          if (!d.complete) ++partialDeltas;
        }
      });

  std::vector<fabric::FabricJobHandle> jobs;
  jobs.push_back(fabric.submit(member(120, 1.0e15, "hazard-a")));
  jobs.push_back(fabric.submit(member(120, 2.0e15, "hazard-b")));
  jobs.push_back(fabric.submit(member(130, 1.0e15, "hazard-c")));
  jobs.push_back(fabric.submit(member(130, 3.0e15, "hazard-d")));
  jobs.push_back(fabric.submit(member(140, 2.0e15, "hazard-e")));
  jobs.push_back(fabric.submit(member(140, 4.0e15, "hazard-f")));

  // Mid-run probe: at least one scenario should serve a partial map with
  // honest staleness (present, incomplete) before the ensemble settles.
  bool sawPartialQuery = false;
  for (int probe = 0; probe < 2000 && !sawPartialQuery; ++probe) {
    for (const auto& job : jobs) {
      const auto map = fabric.productServer().partialMap(job->digest);
      if (map.has_value() && !map->complete && map->version > 0)
        sawPartialQuery = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  fabric.drain();
  fabric.productServer().reconcile();  // deterministic final anti-entropy

  bool ok = true;
  ok &= expect(fabric.brokerState(1) == fabric::BrokerState::Dead,
               "the doomed broker fail-stopped");
  ok &= expect(sawPartialQuery,
               "a partial map was queryable before completion");

  std::vector<std::string> digests;
  for (const auto& job : jobs) {
    ok &= expect(job->wait() == sched::JobPhase::Completed,
                 "every member completes despite death + drops");
    digests.push_back(job->digest);
  }

  // Exceedance over the settled catalog vs a brute-force fold of the
  // (now canonical) partial maps.
  serve::ExceedanceQuery query;
  query.extent = serve::Extent{4, 2, 28, 22};
  query.digests = digests;
  query.threshold = 1.0e-9f;
  const serve::ExceedanceResult res = fabric.exceedance(query);
  ok &= expect(res.scenarios.size() == digests.size(),
               "staleness metadata covers the catalog");
  std::vector<serve::PartialMap> maps;
  for (const auto& st : res.scenarios) {
    ok &= expect(st.present && st.complete,
                 "every settled scenario serves complete");
    ok &= expect(st.version == st.totalSamples && st.totalSamples > 0,
                 "final version equals the scenario's total samples");
    const auto map = fabric.productServer().partialMap(st.digest);
    ok &= expect(map.has_value(), "settled scenario has a served map");
    if (map.has_value()) maps.push_back(*map);
  }
  if (maps.size() == digests.size()) {
    bool match = true;
    for (std::size_t y = query.extent.y0; y < query.extent.y1 && match; ++y)
      for (std::size_t x = query.extent.x0; x < query.extent.x1; ++x) {
        const std::size_t at =
            (x - query.extent.x0) + res.width * (y - query.extent.y0);
        float wantMax = 0.0f;
        std::uint32_t wantCount = 0;
        for (const auto& map : maps) {
          const float v = map.values[x + map.nx * y];
          if (v > wantMax) wantMax = v;
          if (v > query.threshold) ++wantCount;
        }
        if (std::memcmp(&res.maxOver[at], &wantMax, sizeof(float)) != 0 ||
            res.exceedCount[at] != wantCount) {
          match = false;
          break;
        }
      }
    ok &= expect(match, "exceedance matches the brute-force reference");
  }

  // Subscription convergence: every tile of every scenario fenced at its
  // final version, in order, with at least one pre-completion delta.
  {
    std::lock_guard<std::mutex> lock(mu);
    ok &= expect(ordered, "delta versions never regressed or re-notified");
    ok &= expect(partialDeltas > 0, "mid-run windows reached subscribers");
    for (const auto& st : res.scenarios)
      for (int ty = 0; ty * 8 < 24; ++ty)
        for (int tx = 0; tx * 8 < 32; ++tx) {
          const auto it = latest.find(std::make_tuple(st.digest, tx, ty));
          ok &= expect(it != latest.end() && it->second == st.totalSamples,
                       "every subscribed tile fenced at the final version");
        }
  }

  const fabric::FabricReport report = fabric.report();
  ok &= expect(report.completed == jobs.size(), "all members completed");
  ok &= expect(report.failed == 0, "zero lost products");
  for (const auto& broker : report.brokers) {
    const auto violations =
        sched::validateServiceReportJson(sched::toJson(broker));
    for (const auto& v : violations)
      std::fprintf(stderr, "broker report violation: %s\n", v.c_str());
    ok &= expect(violations.empty(), "broker service report validates");
  }

  const serve::ServerStats stats = fabric.productServer().stats();
  std::printf(
      "serving: %llu window publishes, %llu completion publishes, "
      "%llu drops injected, %llu delta batches, %llu reconciles, "
      "%llu queries\n",
      static_cast<unsigned long long>(stats.windowPublishes),
      static_cast<unsigned long long>(stats.completionPublishes),
      static_cast<unsigned long long>(stats.publishDrops),
      static_cast<unsigned long long>(stats.notifies),
      static_cast<unsigned long long>(stats.reconciles),
      static_cast<unsigned long long>(stats.queries));
  fabric.shutdown();
  return ok ? 0 : 1;
}
