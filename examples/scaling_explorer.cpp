// Scaling explorer: interactive use of the performance model — given a
// machine, problem size, and optimization set, print the expected time
// breakdown and scaling curve. Usage:
//
//   ./examples/scaling_explorer [machine] [problem]
//
//   machine: Jaguar (default) | Kraken | Ranger | Intrepid | BGW | DataStar
//   problem: m8 (default) | shakeout | terashake | bluewaters

#include <iostream>
#include <string>

#include "perfmodel/machine.hpp"
#include "perfmodel/model.hpp"
#include "util/table.hpp"
#include "vcluster/cart.hpp"

using namespace awp;
using namespace awp::perfmodel;

int main(int argc, char** argv) {
  const std::string machineName = argc > 1 ? argv[1] : "Jaguar";
  const std::string problemName = argc > 2 ? argv[2] : "m8";

  ProblemSize problem = m8Problem();
  if (problemName == "shakeout") problem = shakeoutProblem();
  if (problemName == "terashake") problem = terashakeProblem();
  if (problemName == "bluewaters") problem = bluewatersBenchmarkProblem();

  const auto& machine = machineByName(machineName);
  ScalingModel model(machine, problem);

  std::cout << "Machine: " << machine.name << " (" << machine.processor
            << ", " << machine.interconnect << ")\n"
            << "Problem: " << problem.nx << " x " << problem.ny << " x "
            << problem.nz << " = " << problem.total() / 1e9
            << "e9 grid points\n\n";

  TextTable table({"Cores", "t/step v4.0 (s)", "t/step v7.2 (s)",
                   "Tflop/s v7.2", "Eq.8 efficiency"});
  const auto v40 = traitsOf(CodeVersion::V4_0);
  const auto v72 = traitsOf(CodeVersion::V7_2);
  for (int p = 256; p <= machine.coresUsed; p *= 4) {
    const auto dims = vcluster::CartTopology::balancedDims(
        p, problem.nx, problem.ny, problem.nz);
    table.addRow({std::to_string(p),
                  TextTable::num(model.perStep(v40, dims).total(), 4),
                  TextTable::num(model.perStep(v72, dims).total(), 4),
                  TextTable::num(model.sustainedTflops(v72, dims), 1),
                  TextTable::pct(model.efficiencyEq8(dims), 1)});
  }
  {
    const auto dims = vcluster::CartTopology::balancedDims(
        machine.coresUsed, problem.nx, problem.ny, problem.nz);
    table.addRow({std::to_string(machine.coresUsed),
                  TextTable::num(model.perStep(v40, dims).total(), 4),
                  TextTable::num(model.perStep(v72, dims).total(), 4),
                  TextTable::num(model.sustainedTflops(v72, dims), 1),
                  TextTable::pct(model.efficiencyEq8(dims), 1)});
  }
  table.print(std::cout);

  std::cout << "\nBreakdown at " << machine.coresUsed << " cores (v7.2):\n";
  const auto dims = vcluster::CartTopology::balancedDims(
      machine.coresUsed, problem.nx, problem.ny, problem.nz);
  const auto t = model.perStep(v72, dims);
  TextTable breakdown({"Phase", "Seconds", "Share"});
  breakdown.addRow({"compute", TextTable::num(t.comp, 4),
                    TextTable::pct(t.comp / t.total(), 1)});
  breakdown.addRow({"communication", TextTable::num(t.comm, 5),
                    TextTable::pct(t.comm / t.total(), 1)});
  breakdown.addRow({"synchronization", TextTable::num(t.sync, 5),
                    TextTable::pct(t.sync / t.total(), 1)});
  breakdown.addRow({"output", TextTable::num(t.output, 5),
                    TextTable::pct(t.output / t.total(), 1)});
  breakdown.print(std::cout);
  return 0;
}
