// ShakeOut-style scenario: a large strike-slip earthquake in a basin-
// bearing community velocity model, comparing a smooth kinematic source
// description with a physics-based spontaneous-rupture source (the
// TeraShake-K vs TeraShake-D / ShakeOut-K vs ShakeOut-D methodology of
// the paper's Section VI).
//
// Demonstrates:
//   * the synthetic community velocity model with sedimentary basins,
//   * dSrcG's two source paths (kinematic + from a DFR rupture),
//   * PGV map extraction and site seismograms,
//   * basin amplification relative to rock sites.

#include <cmath>
#include <iostream>

#include "analysis/aval.hpp"
#include "analysis/pgv.hpp"
#include "core/solver.hpp"
#include "mesh/partitioner.hpp"
#include "rupture/solver.hpp"
#include "source/dsrcg.hpp"
#include "util/table.hpp"
#include "vcluster/cluster.hpp"

using namespace awp;

namespace {

struct RunOutput {
  std::vector<float> pgvh;
  std::vector<core::SeismogramTrace> traces;
};

RunOutput runScenario(const grid::GridDims& dims, double h,
                      const vmodel::CommunityVelocityModel& cvm,
                      std::vector<core::MomentRateSource> sources,
                      std::size_t steps) {
  RunOutput out;
  vcluster::ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
    const auto pdims =
        vcluster::CartTopology::balancedDims(4, dims.nx, dims.ny, dims.nz);
    vcluster::CartTopology topo(pdims);

    // Sample this rank's material block from the CVM.
    const mesh::MeshSpec spec{dims.nx, dims.ny, dims.nz, h, 0.0, 0.0};
    mesh::MeshBlock block;
    block.spec = mesh::subdomainFor(topo, spec, comm.rank());
    block.points.resize(block.spec.pointCount());
    for (std::size_t k = 0; k < block.spec.z.count(); ++k)
      for (std::size_t j = 0; j < block.spec.y.count(); ++j)
        for (std::size_t i = 0; i < block.spec.x.count(); ++i)
          block.at(i, j, k) =
              cvm.sample((block.spec.x.begin + i) * h,
                         (block.spec.y.begin + j) * h,
                         (block.spec.z.begin + k) * h);

    core::SolverConfig config;
    config.globalDims = dims;
    config.h = h;
    core::WaveSolver solver(comm, topo, config, block);
    for (auto& s : sources) solver.addSource(s);
    for (const auto& site : cvm.sites())
      solver.addReceiver(site.name,
                         static_cast<std::size_t>(site.x / h),
                         static_cast<std::size_t>(site.y / h));
    solver.run(steps);
    auto pgvh = solver.surface().gatherPgvh(comm, topo);
    auto traces = solver.receivers().gather(comm);
    if (comm.rank() == 0) {
      out.pgvh = std::move(pgvh);
      out.traces = std::move(traces);
    }
  });
  return out;
}

}  // namespace

int main() {
  const grid::GridDims dims{112, 56, 22};
  const double h = 1500.0;
  const double lx = dims.nx * h, ly = dims.ny * h;
  const double faultY = 0.55 * ly;
  const auto cvm = vmodel::CommunityVelocityModel::socal(lx, ly, faultY);
  const auto trace =
      source::FaultTrace::straight(0.15 * lx, 0.85 * lx, faultY);
  const double dt = 0.45 * h / 6800.0;
  const std::size_t steps = 260;

  std::cout << "ShakeOut-style scenario: " << dims.nx << "x" << dims.ny
            << "x" << dims.nz << " cells at " << h << " m\n\n";

  // --- Kinematic source ------------------------------------------------------
  source::KinematicScenario sc;
  sc.faultLength = 0.5 * trace.length();
  sc.faultDepth = 14e3;
  sc.targetMw = 7.6;
  source::WaveModelTarget target{dims, h, dt};
  auto kinematic = source::kinematicSource(sc, trace, target);
  std::cout << "[1/3] kinematic run (" << kinematic.size()
            << " subfaults)...\n";
  const auto resK = runScenario(dims, h, cvm, kinematic, steps);

  // --- Dynamic source (two-step method) ---------------------------------------
  std::cout << "[2/3] spontaneous rupture (DFR)...\n";
  rupture::RuptureConfig rc;
  rc.globalDims = {120, 30, 36};
  rc.h = 600.0;
  rc.faultJ = 14;
  rc.fi0 = 12;
  rc.fi1 = 108;
  rc.fk1 = rc.globalDims.nz - 1;
  rc.fk0 = rc.fk1 - 22;
  rc.stress.nucX = 0.2 * (rc.fi1 - rc.fi0) * rc.h;
  rc.stress.nucZ = 8000.0;
  rc.stress.nucRadius = 2200.0;
  rc.stress.corrX = 10e3;
  rc.stress.corrZ = 4e3;
  rc.timeDecimation = 2;
  rc.slipRateThreshold = 0.01;

  rupture::FaultHistory fault;
  vcluster::ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    vcluster::CartTopology topo(vcluster::Dims3{2, 1, 1});
    rupture::DynamicRuptureSolver dfr(comm, topo, rc,
                                      vmodel::LayeredModel::socalBackground());
    dfr.run(420);
    auto gathered = dfr.gather();
    if (comm.rank() == 0) fault = std::move(gathered);
  });
  std::cout << "      rupture Mw = "
            << TextTable::num(fault.momentMagnitude(), 2)
            << ", average slip = "
            << TextTable::num(fault.averageSlip(), 2) << " m\n";

  source::FilterConfig filter;
  filter.cutoffHz = 0.4 / dt / 10.0;
  auto dynamic = source::fromRupture(fault, trace, target, filter);
  std::cout << "[3/3] dynamic-source run (" << dynamic.size()
            << " subfaults)...\n\n";
  const auto resD = runScenario(dims, h, cvm, dynamic, steps);

  // --- Compare ---------------------------------------------------------------
  TextTable table({"Site", "Kinematic PGVH (cm/s)", "Dynamic PGVH (cm/s)"});
  for (const auto& tK : resK.traces) {
    double dyn = 0.0;
    for (const auto& tD : resD.traces)
      if (tD.name == tK.name) dyn = analysis::tracePgv(tD, true);
    table.addRow({tK.name,
                  TextTable::num(analysis::tracePgv(tK, true) * 100.0, 1),
                  TextTable::num(dyn * 100.0, 1)});
  }
  table.print(std::cout);

  const auto peakK = analysis::mapPeak(resK.pgvh, dims.nx, dims.ny);
  const auto peakD = analysis::mapPeak(resD.pgvh, dims.nx, dims.ny);
  std::cout << "\nPeak PGVH: kinematic " << TextTable::num(peakK.value, 2)
            << " m/s, dynamic " << TextTable::num(peakD.value, 2)
            << " m/s.\nThe dynamic source's heterogeneous rupture "
               "produces a less coherent wavefield — the TeraShake-D "
               "result that motivated physics-based sources.\n";
  return 0;
}
