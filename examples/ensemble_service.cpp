// Scenario-service demonstration (and the CI chaos-job driver): an
// ensemble of wave scenarios runs concurrently under the service's
// admission control while the fault injector exercises both rungs of the
// rank recovery ladder:
//
//  - a fail-stop rank death mid-ensemble is repaired IN PLACE — the
//    supervisor respawns the lost rank, the replacement restores from its
//    ring buddy's in-memory checkpoint replica, and the attempt completes
//    with zero job requeues;
//  - a transient rank wedge shorter than the watchdog's debounce window
//    (watchdogMissThreshold consecutive missed scans) never opens a stall
//    episode — the rank recovers on its own and nothing is cancelled.
//
// A resubmitted member is then served from the product cache without
// re-execution. Exits nonzero unless every scenario completes, the death
// was repaired without a requeue, the transient stall stayed below the
// debounce threshold, and the service report validates.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "sched/report.hpp"
#include "sched/service.hpp"
#include "sched/spec.hpp"

using namespace awp;
namespace fs = std::filesystem;

namespace {

sched::ScenarioSpec member(std::uint64_t steps, double amplitude,
                           const std::string& name) {
  sched::ScenarioSpec spec;
  spec.kind = sched::ScenarioKind::Wave;
  spec.dims = {32, 24, 16};
  spec.h = 600.0;
  spec.steps = steps;
  spec.nranks = 2;
  spec.useCvm = true;
  spec.checkpointEverySteps = 8;
  spec.surfaceSampleEverySteps = 2;
  spec.healthEverySteps = 5;
  spec.sourceAmplitude = amplitude;
  spec.name = name;
  return spec;
}

bool expect(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "FAIL: %s\n", what);
  return ok;
}

}  // namespace

int main() {
  const fs::path work = fs::temp_directory_path() / "awp-ensemble-service";
  fs::remove_all(work);

  fault::FaultPlan plan;
  // Transient wedge on rank 0, shorter than the debounce window: the
  // watchdog sees missed heartbeats but fewer than watchdogMissThreshold
  // consecutive missed scans, so no stall episode opens and the wedged
  // rank simply resumes.
  plan.stall("solver.step", /*rank=*/0, /*occurrence=*/30, /*seconds=*/1.2);
  // Fail-stop loss of rank 1 mid-ensemble: the op stream is shared by the
  // concurrent jobs, so the 40th per-step consult lands mid-run in one of
  // them. The supervisor respawns the rank in place and the replacement
  // restores from its ring buddy's replica — no job requeue.
  plan.rankDeath(/*rank=*/1, /*occurrence=*/40);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  sched::ServiceConfig cfg;
  cfg.coreBudget = 8;  // four 2-rank scenarios in flight concurrently
  cfg.queueCapacity = 8;
  cfg.maxRetries = 3;
  cfg.respawnBudget = 1;       // one in-place respawn before escalation
  cfg.buddyCheckpoints = true; // diskless buddy restore for the replacement
  cfg.stallTimeoutSeconds = 0.75;
  cfg.watchdogPollSeconds = 0.05;
  // Debounce: require 3 s of CONSECUTIVE missed scans before opening a
  // stall episode, so the 1.2 s transient wedge above stays sub-threshold.
  cfg.watchdogMissThreshold = 60;
  cfg.workDir = work.string();
  sched::ScenarioService service(cfg);

  // Four distinct members (different source amplitudes and lengths), all
  // admitted together so they run concurrently under the core budget.
  std::vector<sched::JobHandle> jobs;
  jobs.push_back(service.submit(member(32, 1.0e15, "member-a")));
  jobs.push_back(service.submit(member(32, 2.0e15, "member-b")));
  jobs.push_back(service.submit(member(40, 1.0e15, "member-c")));
  jobs.push_back(service.submit(member(40, 3.0e15, "member-d")));
  service.drain();

  bool ok = true;
  for (const auto& job : jobs) {
    ok &= expect(job->wait() == sched::JobPhase::Completed,
                 "every ensemble member completes");
    ok &= expect(job->products.find("surface.bin") != nullptr,
                 "completed member has a surface product");
    ok &= expect(job->products.find("pgvh.bin") != nullptr,
                 "completed member has a PGV-H product");
  }

  ok &= expect(injector.faultsInjected() >= 2,
               "both the transient stall and the rank death fired");
  // The rank loss was repaired in place: exactly one respawn, no
  // escalation, and ZERO job requeues anywhere in the ensemble.
  ok &= expect(service.stallEpisodes().empty(),
               "debounce suppressed the transient stall");

  // Resubmitting an unchanged member is a cache hit, not a re-run.
  auto resubmitted = service.submit(member(32, 1.0e15, "member-a-again"));
  ok &= expect(resubmitted->wait() == sched::JobPhase::Completed,
               "resubmission completes");
  ok &= expect(resubmitted->cacheHit, "resubmission served from cache");

  const auto report = service.report();
  ok &= expect(report.retries == 0, "zero job requeues across the ensemble");
  ok &= expect(report.respawns == 1, "exactly one in-place respawn");
  ok &= expect(report.respawnEscalations == 0, "the ladder never escalated");
  ok &= expect(report.cacheHits >= 1, "report shows the cache hit");
  ok &= expect(report.completed == 4, "report counts 4 executed completions");
  const auto violations = sched::validateServiceReportJson(toJson(report));
  for (const auto& v : violations)
    std::fprintf(stderr, "report violation: %s\n", v.c_str());
  ok &= expect(violations.empty(), "service report validates");

  const std::string reportPath = (work / "service_report.json").string();
  sched::writeServiceReportFile(reportPath, report);
  std::printf(
      "ensemble: %llu submitted, %llu completed, %llu respawns, %llu "
      "retries, %llu cache hits, %zu stall episode(s); report at %s\n",
      static_cast<unsigned long long>(report.submitted),
      static_cast<unsigned long long>(report.completed),
      static_cast<unsigned long long>(report.respawns),
      static_cast<unsigned long long>(report.retries),
      static_cast<unsigned long long>(report.cacheHits),
      service.stallEpisodes().size(), reportPath.c_str());
  return ok ? 0 : 1;
}
