// Hazard-fabric demonstration: an ensemble of wave scenarios runs across
// three sharded scenario brokers while a fault plan fail-stops one of
// them mid-flight. The dead broker's lease lapses, the membership epoch
// bumps, its hash range moves to the survivors, and its scenarios replay
// from the submission log (resuming from the shared checkpoint tier when
// one was mid-run) — every product still arrives, exactly once, and the
// fabric report records the whole episode: view epochs, replays,
// handoffs, per-site retry stats.
//
// Exits nonzero unless every scenario completes exactly once after the
// broker death and every broker's service report validates.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fabric/fabric.hpp"
#include "fault/injector.hpp"
#include "sched/report.hpp"
#include "sched/spec.hpp"

using namespace awp;
namespace fs = std::filesystem;

namespace {

sched::ScenarioSpec member(std::uint64_t steps, double amplitude,
                           const std::string& name) {
  sched::ScenarioSpec spec;
  spec.kind = sched::ScenarioKind::Wave;
  spec.dims = {32, 24, 16};
  spec.h = 600.0;
  spec.steps = steps;
  spec.nranks = 2;
  spec.useCvm = true;
  spec.checkpointEverySteps = 8;
  spec.surfaceSampleEverySteps = 2;
  spec.healthEverySteps = 5;
  spec.sourceAmplitude = amplitude;
  spec.name = name;
  return spec;
}

bool expect(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "FAIL: %s\n", what);
  return ok;
}

}  // namespace

int main() {
  const fs::path root = fs::temp_directory_path() / "awp-fabric-ensemble";
  fs::remove_all(root);

  // Fail-stop broker 1 at its 10th pump tick (~50 ms in), with the
  // ensemble routed and some of its scenarios running there.
  fault::FaultPlan plan;
  plan.brokerDeath(/*broker=*/1, /*occurrence=*/10);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  fabric::FabricConfig config;
  config.brokers = 3;
  config.rootDir = root.string();
  config.leaseSeconds = 0.4;       // quick detection for the demo
  config.heartbeatSeconds = 0.08;
  config.pumpIntervalSeconds = 0.005;
  config.service.coreBudget = 4;   // two 2-rank scenarios per broker
  config.service.queueCapacity = 16;
  fabric::HazardFabric fabric(config);

  std::vector<fabric::FabricJobHandle> jobs;
  jobs.push_back(fabric.submit(member(120, 1.0e15, "member-a")));
  jobs.push_back(fabric.submit(member(120, 2.0e15, "member-b")));
  jobs.push_back(fabric.submit(member(130, 1.0e15, "member-c")));
  jobs.push_back(fabric.submit(member(130, 3.0e15, "member-d")));
  jobs.push_back(fabric.submit(member(140, 2.0e15, "member-e")));
  jobs.push_back(fabric.submit(member(140, 4.0e15, "member-f")));
  fabric.drain();

  bool ok = true;
  for (const auto& job : jobs) {
    ok &= expect(job->wait() == sched::JobPhase::Completed,
                 "every ensemble member completes despite the death");
    std::lock_guard<std::mutex> lock(job->mu);
    ok &= expect(job->completions == 1, "each digest settled exactly once");
    ok &= expect(job->products.find("pgvh.bin") != nullptr,
                 "completed member has a PGV-H product");
  }
  ok &= expect(fabric.brokerState(1) == fabric::BrokerState::Dead,
               "the doomed broker fail-stopped");

  const fabric::FabricReport report = fabric.report();
  ok &= expect(report.completed == jobs.size(), "all members completed");
  ok &= expect(report.failed == 0, "zero lost products");
  ok &= expect(report.liveBrokers == 2, "two survivors hold the view");
  ok &= expect(report.viewEpoch >= 2, "the death bumped the epoch");
  for (const auto& broker : report.brokers) {
    const auto violations =
        sched::validateServiceReportJson(sched::toJson(broker));
    for (const auto& v : violations)
      std::fprintf(stderr, "broker report violation: %s\n", v.c_str());
    ok &= expect(violations.empty(), "broker service report validates");
  }

  std::printf(
      "fabric: %llu submitted, %llu completed, epoch %llu, %d live; "
      "%llu forwards, %llu replays, %llu handoffs, %llu deduped\n",
      static_cast<unsigned long long>(report.submitted),
      static_cast<unsigned long long>(report.completed),
      static_cast<unsigned long long>(report.viewEpoch),
      report.liveBrokers,
      static_cast<unsigned long long>(report.counters.forwards),
      static_cast<unsigned long long>(report.counters.replays),
      static_cast<unsigned long long>(report.counters.handoffs),
      static_cast<unsigned long long>(report.counters.dedupHits));
  for (const std::string& ev : fabric.events())
    std::printf("  event: %s\n", ev.c_str());
  fabric.shutdown();
  return ok ? 0 : 1;
}
