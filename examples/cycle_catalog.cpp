// Earthquake-cycle catalog demonstration: a seeded quasi-dynamic sequence
// run detects a handful of events on a rate-and-state fault, bridges each
// nucleation snapshot into a dynamic-rupture scenario (spec encoding v2,
// content-addressed by the event digest), and submits the whole catalog
// through the fault-tolerant hazard fabric — twice. The second submission
// fail-stops one of the three brokers mid-catalog; the survivors replay
// the orphaned scenarios from the submission log, every event still
// completes exactly once, and the resulting catalog is bit-identical to
// the undisturbed one (its canonical bytes exclude wall-clock, so the MD5
// digests must match).
//
// Exits nonzero unless the run detects at least three events, every
// bridged scenario completes with completions == 1 after the broker
// death, the two catalogs share one digest, and the catalog JSON
// validates.

#include <cstdio>
#include <filesystem>
#include <string>

#include "cycle/bridge.hpp"
#include "cycle/catalog.hpp"
#include "cycle/solver.hpp"
#include "fabric/fabric.hpp"
#include "fault/injector.hpp"
#include "util/retry.hpp"
#include "util/timer.hpp"

using namespace awp;
namespace fs = std::filesystem;

namespace {

bool expect(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "FAIL: %s\n", what);
  return ok;
}

cycle::CycleConfig sequenceConfig() {
  cycle::CycleConfig config;
  config.nx = 24;
  config.nz = 8;
  config.cell = 500.0;
  config.friction.L = 0.005;  // cell-scale events ("inherently discrete")
  config.interaction = 0.05;
  config.stencilRadius = 3;
  config.vpl = 1.0e-8;
  config.heterogeneity = 0.3;
  config.corrX = 4000.0;
  config.corrZ = 2000.0;
  config.seed = 11;
  config.years = 40.0;
  config.maxEvents = 3;
  return config;
}

fabric::FabricConfig fabricConfig(const fs::path& root) {
  fabric::FabricConfig config;
  config.brokers = 3;
  config.vnodes = 64;
  config.rootDir = root.string();
  config.leaseSeconds = 0.4;
  config.heartbeatSeconds = 0.06;
  config.degradedAfterMisses = 2;
  config.pumpIntervalSeconds = 0.004;
  config.service.coreBudget = 4;
  config.service.queueCapacity = 32;
  return config;
}

}  // namespace

int main() {
  bool ok = true;
  const cycle::CycleConfig config = sequenceConfig();

  // --- the interseismic sequence, twice from one seed ---------------------
  std::printf("simulating %.0f years of earthquake cycle (%zux%zu fault, "
              "seed %llu)...\n",
              config.years, config.nx, config.nz,
              static_cast<unsigned long long>(config.seed));
  cycle::CycleSolver solver(config);
  const cycle::CycleRunSummary summary = solver.run();
  cycle::CycleSolver rerun(config);
  const cycle::CycleRunSummary rerunSummary = rerun.run();

  std::printf("  %d events in %llu adaptive steps (%.1f simulated years, "
              "peak slip rate %.2e m/s)\n",
              summary.eventsDetected,
              static_cast<unsigned long long>(summary.steps),
              summary.simulatedSeconds / (365.25 * 86400.0),
              summary.peakSlipRate);
  for (const cycle::CycleEvent& event : solver.events())
    std::printf("  event %d: Mw %.2f at %.2f yr, nucleated at (%zu, %zu), "
                "digest %s\n",
                event.index, event.magnitude,
                event.onsetSeconds / (365.25 * 86400.0), event.nucI,
                event.nucK, event.digest.c_str());

  ok &= expect(summary.eventsDetected >= 3, "at least three events detected");
  ok &= expect(summary.steps == rerunSummary.steps,
               "rerun takes the identical step count");
  ok &= expect(solver.events().size() == rerun.events().size() &&
                   [&] {
                     for (std::size_t i = 0; i < solver.events().size(); ++i)
                       if (solver.events()[i].digest !=
                           rerun.events()[i].digest)
                         return false;
                     return true;
                   }(),
               "rerun reproduces every event digest");

  cycle::BridgeConfig bridge;
  bridge.h = 600.0;
  bridge.steps = 12;
  bridge.nranks = 2;

  // --- undisturbed catalog ------------------------------------------------
  std::printf("\nsubmitting %zu bridged rupture scenarios (clean fabric)...\n",
              solver.events().size());
  cycle::CycleCatalog baseline;
  {
    const fs::path root = fs::temp_directory_path() / "awp-cycle-catalog-a";
    fs::remove_all(root);
    util::resetRetryRegistry();
    Stopwatch timer;
    fabric::HazardFabric clean(fabricConfig(root));
    baseline = cycle::submitCatalog(clean, config, summary, solver.events(),
                                    bridge);
    baseline.wallSeconds = timer.seconds();
    clean.shutdown();
    fs::remove_all(root);
  }
  std::printf("  catalog digest %s (%.2f s)\n", baseline.digestHex().c_str(),
              baseline.wallSeconds);

  // --- catalog with broker 1 fail-stopping mid-catalog --------------------
  std::printf("\nresubmitting with broker 1 fail-stopping mid-catalog...\n");
  cycle::CycleCatalog survived;
  {
    const fs::path root = fs::temp_directory_path() / "awp-cycle-catalog-b";
    fs::remove_all(root);
    util::resetRetryRegistry();
    fault::FaultPlan plan;
    plan.brokerDeath(/*broker=*/1, /*occurrence=*/8);
    fault::FaultInjector injector(std::move(plan));
    fault::ScopedInjection scoped(injector);

    Stopwatch timer;
    fabric::HazardFabric chaos(fabricConfig(root));
    survived = cycle::submitCatalog(chaos, config, rerunSummary,
                                    rerun.events(), bridge);
    survived.wallSeconds = timer.seconds();
    ok &= expect(chaos.brokerState(1) == fabric::BrokerState::Dead,
                 "broker 1 actually died");
    chaos.shutdown();
    fs::remove_all(root);
  }
  for (const cycle::CycleCatalogRow& row : survived.rows) {
    std::printf("  event %d: %s, completions=%d, product %s\n", row.index,
                row.phase.c_str(), row.completions,
                row.productDigest.c_str());
    ok &= expect(row.phase == "completed", "event completed after the death");
    ok &= expect(row.completions == 1, "exactly-once completion");
  }
  std::printf("  catalog digest %s (%.2f s)\n", survived.digestHex().c_str(),
              survived.wallSeconds);

  ok &= expect(survived.canonicalBytes() == baseline.canonicalBytes(),
               "catalog bit-identical across the broker death");

  const auto violations = cycle::validateCycleCatalogJson(toJson(survived));
  for (const std::string& v : violations)
    std::fprintf(stderr, "catalog JSON violation: %s\n", v.c_str());
  ok &= expect(violations.empty(), "catalog JSON validates");

  std::printf("\n%s\n", ok ? "cycle catalog OK" : "cycle catalog FAILED");
  return ok ? 0 : 1;
}
