// Quickstart: simulate a small earthquake and record seismograms.
//
// This is the smallest end-to-end use of the public API:
//   1. describe a velocity structure (a layered half-space),
//   2. build a wave solver on a virtual cluster of 4 ranks,
//   3. add a strike-slip point source and a few surface receivers,
//   4. run, and print the recorded peak velocities.
//
// Build & run:  ./examples/quickstart

#include <cmath>
#include <iostream>

#include "analysis/aval.hpp"
#include "core/solver.hpp"
#include "util/table.hpp"
#include "vcluster/cluster.hpp"

using namespace awp;

int main() {
  // A 12.8 x 12.8 x 6.4 km box at 200 m resolution.
  core::SolverConfig config;
  config.globalDims = {64, 64, 32};
  config.h = 200.0;
  config.absorbing = core::AbsorbingType::Pml;  // M-PML sides + bottom
  config.pml.width = 10;

  // Half-space rock: Vp 5.2 km/s, Vs 3.0 km/s, rho 2.7 g/cc.
  const vmodel::Material rock{5196.0f, 3000.0f, 2700.0f};

  std::vector<core::SeismogramTrace> traces;
  double dt = 0.0;

  vcluster::ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
    vcluster::CartTopology topo(vcluster::Dims3{2, 2, 1});
    core::WaveSolver solver(comm, topo, config, rock);
    dt = solver.config().dt;  // chosen automatically from the CFL limit

    // A Mw ~4.9 strike-slip point source, 3 km deep, with a 2 Hz Ricker
    // moment-rate time history.
    const double m0 = 2.5e16;  // N·m
    solver.addSource(core::strikeSlipPointSource(
        32, 32, 32 - 15,
        core::rickerWavelet(2.0, 0.8, dt, 400, m0 * 2.0 * 2.0 * M_PI)));

    solver.addReceiver("epicenter", 32, 32);
    solver.addReceiver("5km-east", 32 + 25, 32);
    solver.addReceiver("5km-north", 32, 32 + 25);
    solver.addReceiver("corner", 54, 54);

    solver.run(400);

    auto gathered = solver.receivers().gather(comm);
    if (comm.rank() == 0) traces = std::move(gathered);
  });

  std::cout << "quickstart: 64x64x32 grid, dt = " << dt
            << " s, 400 steps on 4 virtual ranks\n\n";
  TextTable table({"Receiver", "PGV (m/s)", "PGVH (m/s)"});
  for (const auto& t : traces)
    table.addRow({t.name, TextTable::num(analysis::tracePgv(t), 4),
                  TextTable::num(analysis::tracePgv(t, true), 4)});
  table.print(std::cout);

  std::cout << "\nNote the strike-slip radiation pattern: the receivers "
               "east and north of a strike-slip source see different "
               "horizontal/vertical partitioning.\n";
  return 0;
}
