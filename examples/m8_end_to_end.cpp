// Mini-M8 end to end: the full AWP-ODC production pipeline of Fig 4/10 at
// laptop scale —
//   CVM2MESH    mesh extraction from the community velocity model,
//   PetaMeshP   mesh partitioning (pre-partitioned files + checksums),
//   DFR         spontaneous rupture on the planar fault (SGSN mode),
//   dSrcG       moment-rate source generation (filter + segmented trace),
//   PetaSrcP    spatial/temporal source partitioning,
//   AWM         anelastic wave propagation with aggregated surface output
//               and checkpointing,
//   aVal-style  integrity checks, then
//   E2EaW       transfer + archive ingestion of the products.

#include <filesystem>
#include <iostream>
#include <unistd.h>

#include "analysis/pgv.hpp"
#include "core/solver.hpp"
#include "io/checksum.hpp"
#include "mesh/generator.hpp"
#include "mesh/partitioner.hpp"
#include "rupture/solver.hpp"
#include "source/dsrcg.hpp"
#include "source/petasrcp.hpp"
#include "util/table.hpp"
#include "vcluster/cluster.hpp"
#include "workflow/archive.hpp"
#include "workflow/e2eaw.hpp"
#include "workflow/transfer.hpp"

using namespace awp;

int main() {
  const auto work = std::filesystem::temp_directory_path() /
                    ("awp_m8_e2e_" + std::to_string(::getpid()));
  std::filesystem::create_directories(work / "input");
  std::filesystem::create_directories(work / "output");
  std::filesystem::create_directories(work / "archive");

  // Mini-M8 geometry: 120 x 60 x 24 km at 1.25 km (the paper: 810 x 405 x
  // 85 km at 40 m).
  const grid::GridDims dims{96, 48, 20};
  const double h = 1250.0;
  const double lx = dims.nx * h, ly = dims.ny * h;
  const double faultY = 0.55 * ly;
  const auto cvm = vmodel::CommunityVelocityModel::socal(lx, ly, faultY);
  const auto trace = source::FaultTrace::bent(0.12 * lx, faultY,
                                              0.88 * lx, faultY, 12, 3e3);
  const int solverRanks = 8;
  const vcluster::CartTopology topo(vcluster::CartTopology::balancedDims(
      solverRanks, dims.nx, dims.ny, dims.nz));

  const std::string meshPath = (work / "input" / "mesh.bin").string();
  const std::string partsDir = (work / "input" / "parts").string();
  const std::string srcDir = (work / "input" / "source").string();
  const std::string surfacePath =
      (work / "output" / "surface.bin").string();

  rupture::FaultHistory fault;
  std::vector<float> pgvhMap;
  std::string meshChecksum;
  double dt = 0.0;

  workflow::Pipeline pipeline;

  pipeline.addStage("CVM2MESH mesh generation", [&] {
    vcluster::ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
      mesh::generateMesh(comm, cvm, {dims.nx, dims.ny, dims.nz, h, 0, 0},
                         meshPath);
    });
    return std::to_string(mesh::meshFileSize(
               {dims.nx, dims.ny, dims.nz, h, 0, 0}) >>
           20) + " MiB mesh written";
  });

  pipeline.addStage("PetaMeshP partitioning + parallel MD5", [&] {
    vcluster::ThreadCluster::run(
        solverRanks, [&](vcluster::Communicator& comm) {
          mesh::prePartitionMesh(comm, meshPath, topo, partsDir);
          const auto block = mesh::readPrePartitioned(partsDir, comm.rank());
          const auto sum = io::parallelMd5(
              comm, std::as_bytes(std::span<const vmodel::Material>(
                        block.points)));
          if (comm.rank() == 0) meshChecksum = sum.collectionHex;
        });
    return std::to_string(solverRanks) +
           " pre-partitioned blocks, collection MD5 " + meshChecksum;
  });

  pipeline.addStage("DFR spontaneous rupture (SGSN mode)", [&] {
    fault = [&] {
      rupture::RuptureConfig rc;
      rc.globalDims = {130, 30, 34};
      rc.h = 700.0;
      rc.faultJ = 14;
      rc.fi0 = 13;
      rc.fi1 = 117;
      rc.fk1 = rc.globalDims.nz - 1;
      rc.fk0 = rc.fk1 - 20;
      rc.stress.nucX = 0.15 * (rc.fi1 - rc.fi0) * rc.h;
      rc.stress.nucZ = 8000.0;
      rc.stress.nucRadius = 2500.0;
      rc.stress.corrX = 12e3;
      rc.stress.corrZ = 4e3;
      rc.timeDecimation = 2;
      rc.slipRateThreshold = 0.01;
      rupture::FaultHistory out;
      vcluster::ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
        vcluster::CartTopology rtopo(vcluster::Dims3{2, 1, 1});
        rupture::DynamicRuptureSolver dfr(
            comm, rtopo, rc, vmodel::LayeredModel::socalBackground());
        dfr.run(480);
        auto g = dfr.gather();
        if (comm.rank() == 0) out = std::move(g);
      });
      return out;
    }();
    return "Mw " + TextTable::num(fault.momentMagnitude(), 2) +
           ", mean slip " + TextTable::num(fault.averageSlip(), 2) + " m";
  });

  pipeline.addStage("dSrcG + PetaSrcP source preparation", [&] {
    dt = 0.45 * h / 6800.0;
    source::WaveModelTarget target{dims, h, dt};
    source::FilterConfig filter;
    filter.cutoffHz = 0.4 / dt / 10.0;
    const auto sources = source::fromRupture(fault, trace, target, filter);
    const auto info = source::partitionSources(sources, topo, dims,
                                               /*stepsPerSegment=*/400,
                                               srcDir);
    return std::to_string(sources.size()) + " subfaults, " +
           std::to_string(info.segments) + " temporal segments, max file " +
           std::to_string(info.maxFileBytes >> 10) + " KiB";
  });

  pipeline.addStage("AWM wave propagation", [&] {
    const std::size_t steps = 240;
    vcluster::ThreadCluster::run(
        solverRanks, [&](vcluster::Communicator& comm) {
          const auto block = mesh::readPrePartitioned(partsDir, comm.rank());
          core::SolverConfig config;
          config.globalDims = dims;
          config.h = h;
          config.dt = dt;
          core::WaveSolver solver(comm, topo, config, block);

          // Load this rank's source segments (temporal locality).
          const auto info = source::readPartitionInfo(srcDir);
          for (int seg = 0; seg < info.segments; ++seg)
            for (auto& s : source::loadSegment(srcDir, comm.rank(), seg))
              solver.addSource(std::move(s));

          io::SharedFile surface(surfacePath, io::SharedFile::Mode::Write);
          core::SurfaceOutputConfig out;
          out.file = &surface;
          out.sampleEverySteps = 20;  // the M8 decimation choice
          out.spatialDecimation = 2;
          out.flushEverySamples = 5;
          solver.attachSurfaceOutput(out);

          solver.run(steps);
          auto map = solver.surface().gatherPgvh(comm, topo);
          if (comm.rank() == 0) pgvhMap = std::move(map);
        });
    const auto peak = analysis::mapPeak(pgvhMap, dims.nx, dims.ny);
    return std::to_string(steps) + " steps; peak PGVH " +
           TextTable::num(peak.value, 2) + " m/s";
  });

  pipeline.addStage("E2EaW transfer + archive", [&] {
    workflow::TransferChannel channel(workflow::TransferConfig{});
    const auto report = channel.transfer(
        (work / "output").string(), (work / "archive").string(),
        {"surface.bin"});
    if (!report.allVerified) throw Error("transfer verification failed");
    workflow::ArchiveRegistry registry;
    registry.ingestFile((work / "archive" / "surface.bin").string(),
                        "mini-m8", "surface.bin", 2);
    return "surface volume archived (" +
           std::to_string(report.bytesMoved >> 10) + " KiB, MD5 " +
           registry.entry("surface.bin").md5Hex.substr(0, 8) + "...)";
  });

  const bool ok = pipeline.run();

  std::cout << "=== mini-M8 end-to-end workflow ===\n\n";
  TextTable table({"Stage", "Status", "Seconds", "Detail"});
  for (const auto& r : pipeline.results())
    table.addRow({r.name, r.ok ? "ok" : (r.ran ? "FAILED" : "skipped"),
                  TextTable::num(r.seconds, 2), r.detail});
  table.print(std::cout);

  if (ok) {
    const auto peak = analysis::mapPeak(pgvhMap, dims.nx, dims.ny);
    const double peakDist = analysis::distanceToTrace(
        peak.i * h, peak.j * h, trace);
    std::cout << "\nPeak PGVH lies " << TextTable::num(peakDist / 1e3, 1)
              << " km from the fault trace — the near-fault concentration "
                 "of Fig 21.\n";
  }
  std::filesystem::remove_all(work);
  return ok ? 0 : 1;
}
