// Table 1 — "Computers used by model for production runs": the machine
// catalog, plus the modeled per-step wall clock and sustained performance
// of the fully optimized code (v7.2) at each machine's production core
// count on its milestone problem.

#include <iostream>

#include "perfmodel/machine.hpp"
#include "perfmodel/model.hpp"
#include "util/table.hpp"
#include "vcluster/cart.hpp"

using namespace awp;
using namespace awp::perfmodel;

int main() {
  std::cout << "=== Table 1: computers used by model for production runs "
               "===\n"
            << "(modeled columns use the Eq. 7/8 performance model with "
               "v7.2 optimizations)\n\n";

  TextTable table({"Computer", "Location", "Processor", "Interconnect",
                   "Peak Gflops/core", "Cores used", "t/step (model, s)",
                   "Sustained (model, Tflop/s)"});

  for (const auto& m : machineCatalog()) {
    // Milestone problem per machine (Table 3): TeraShake on DataStar,
    // ShakeOut-class on the mid machines, M8 on Kraken/Jaguar.
    ProblemSize problem = shakeoutProblem();
    if (m.name == "DataStar") problem = terashakeProblem();
    if (m.name == "Jaguar" || m.name == "Kraken") problem = m8Problem();

    ScalingModel model(m, problem);
    const auto dims = vcluster::CartTopology::balancedDims(
        m.coresUsed, problem.nx, problem.ny, problem.nz);
    const auto traits = traitsOf(CodeVersion::V7_2);
    const auto t = model.perStep(traits, dims);

    table.addRow({m.name, m.site, m.processor, m.interconnect,
                  TextTable::num(m.peakGflopsPerCore, 1),
                  std::to_string(m.coresUsed),
                  TextTable::num(t.total(), 3),
                  TextTable::num(model.sustainedTflops(traits, dims), 1)});
  }
  table.print(std::cout);

  std::cout << "\nPaper anchor: M8 on 223,074 Jaguar cores sustained 220 "
               "Tflop/s.\n";
  return 0;
}
