// Fig 18 — the ShakeOut-D source ensemble: "Seven dynamic source
// descriptions were used to assess the uncertainty in the site-specific
// peak motions." We run an ensemble of spontaneous ruptures differing
// only in the random initial-stress seed and report the spread of their
// source properties (slip distributions and rupture-time contours differ
// realization to realization while the magnitude stays comparable).

#include <iostream>

#include "scenarios.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace awp;
using namespace awp::bench;

int main() {
  std::cout << "=== Fig 18: dynamic source ensemble ===\n\n";

  TextTable table({"Seed", "Mw", "Mean slip (m)", "Max slip (m)",
                   "Peak slip rate (m/s)", "Last rupture time (s)",
                   "Ruptured fraction"});
  std::vector<double> mws, maxSlips;
  for (std::uint64_t seed : {11u, 23u, 42u, 77u}) {
    const auto fault = runMiniRupture(/*lengthKm=*/50.0, /*depthKm=*/12.0,
                                      /*hRupture=*/600.0, seed,
                                      /*steps=*/360, /*nranks=*/2);
    double maxSlip = 0.0, maxRate = 0.0, lastTime = 0.0;
    std::size_t ruptured = 0;
    for (std::size_t n = 0; n < fault.finalSlip.size(); ++n) {
      maxSlip = std::max<double>(maxSlip, fault.finalSlip[n]);
      maxRate = std::max<double>(maxRate, fault.peakSlipRate[n]);
      if (fault.ruptureTime[n] >= 0.0f) {
        ++ruptured;
        lastTime = std::max<double>(lastTime, fault.ruptureTime[n]);
      }
    }
    const double mw = fault.momentMagnitude();
    mws.push_back(mw);
    maxSlips.push_back(maxSlip);
    table.addRow({std::to_string(seed), TextTable::num(mw, 2),
                  TextTable::num(fault.averageSlip(), 2),
                  TextTable::num(maxSlip, 2), TextTable::num(maxRate, 2),
                  TextTable::num(lastTime, 2),
                  TextTable::pct(static_cast<double>(ruptured) /
                                     fault.finalSlip.size(),
                                 1)});
  }
  table.print(std::cout);

  std::cout << "\nEnsemble spread: Mw " << TextTable::num(minOf(mws), 2)
            << " - " << TextTable::num(maxOf(mws), 2) << ", max slip "
            << TextTable::num(minOf(maxSlips), 2) << " - "
            << TextTable::num(maxOf(maxSlips), 2)
            << " m.\nPaper anchor: the seven ShakeOut-D realizations share "
               "the target magnitude but differ in slip distribution and "
               "rupture-time contours — the basis of the site-motion "
               "uncertainty assessment.\n";
  return 0;
}
