// Fig 18 — the ShakeOut-D source ensemble: "Seven dynamic source
// descriptions were used to assess the uncertainty in the site-specific
// peak motions." We run an ensemble of spontaneous ruptures differing
// only in the random initial-stress seed and report the spread of their
// source properties (slip distributions and rupture-time contours differ
// realization to realization while the magnitude stays comparable).
//
// The ensemble is driven through the scenario service: the realizations
// are submitted together, admission control leases each one a 2-rank core
// range out of a shared budget (so two run concurrently on a 4-core
// budget), and completed products are memoized — resubmitting a seed is a
// cache hit, not a re-run, which is how a site-motion assessment iterates
// on an ensemble without paying for unchanged members.

#include <iostream>
#include <vector>

#include "sched/service.hpp"
#include "sched/spec.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace awp;

namespace {

sched::ScenarioSpec realization(std::uint64_t seed) {
  sched::ScenarioSpec spec;
  spec.kind = sched::ScenarioKind::Rupture;
  spec.lengthKm = 50.0;
  spec.depthKm = 12.0;
  spec.h = 600.0;
  spec.seed = seed;
  spec.steps = 360;
  spec.nranks = 2;
  spec.name = "shakeout-d-seed-" + std::to_string(seed);
  return spec;
}

}  // namespace

int main() {
  std::cout << "=== Fig 18: dynamic source ensemble (scenario service) ===\n\n";

  sched::ServiceConfig cfg;
  cfg.coreBudget = 4;  // two 2-rank realizations in flight at a time
  sched::ScenarioService service(cfg);

  const std::vector<std::uint64_t> seeds{11, 23, 42, 77};
  std::vector<sched::JobHandle> jobs;
  for (std::uint64_t seed : seeds) jobs.push_back(service.submit(realization(seed)));
  service.drain();

  TextTable table({"Seed", "Mw", "Mean slip (m)", "Max slip (m)",
                   "Peak slip rate (m/s)", "Last rupture time (s)",
                   "Ruptured fraction"});
  std::vector<double> mws, maxSlips;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i]->wait() != sched::JobPhase::Completed) {
      std::cerr << "realization seed " << seeds[i] << " failed: "
                << jobs[i]->error << "\n";
      return 1;
    }
    const auto* blob = jobs[i]->products.find("fault_history");
    if (blob == nullptr) {
      std::cerr << "realization seed " << seeds[i]
                << " produced no fault history\n";
      return 1;
    }
    const auto fault = sched::deserializeFaultHistory(blob->bytes);
    double maxSlip = 0.0, maxRate = 0.0, lastTime = 0.0;
    std::size_t ruptured = 0;
    for (std::size_t n = 0; n < fault.finalSlip.size(); ++n) {
      maxSlip = std::max<double>(maxSlip, fault.finalSlip[n]);
      maxRate = std::max<double>(maxRate, fault.peakSlipRate[n]);
      if (fault.ruptureTime[n] >= 0.0f) {
        ++ruptured;
        lastTime = std::max<double>(lastTime, fault.ruptureTime[n]);
      }
    }
    const double mw = fault.momentMagnitude();
    mws.push_back(mw);
    maxSlips.push_back(maxSlip);
    table.addRow({std::to_string(seeds[i]), TextTable::num(mw, 2),
                  TextTable::num(fault.averageSlip(), 2),
                  TextTable::num(maxSlip, 2), TextTable::num(maxRate, 2),
                  TextTable::num(lastTime, 2),
                  TextTable::pct(static_cast<double>(ruptured) /
                                     fault.finalSlip.size(),
                                 1)});
  }
  table.print(std::cout);

  // Iterating on the ensemble: an unchanged member is served from the
  // product cache without re-executing the rupture.
  auto rerun = service.submit(realization(seeds.front()));
  rerun->wait();

  const auto report = service.report();
  std::cout << "\nEnsemble spread: Mw " << TextTable::num(minOf(mws), 2)
            << " - " << TextTable::num(maxOf(mws), 2) << ", max slip "
            << TextTable::num(minOf(maxSlips), 2) << " - "
            << TextTable::num(maxOf(maxSlips), 2)
            << " m.\nService: " << report.executedAttempts
            << " attempts executed for " << report.submitted
            << " submissions (" << report.cacheHits
            << " cache hit), mean queue latency "
            << TextTable::num(report.queueLatencyMean, 3) << " s, throughput "
            << TextTable::num(report.throughputPerSecond, 3)
            << " scenarios/s.\nPaper anchor: the seven ShakeOut-D "
               "realizations share the target magnitude but differ in slip "
               "distribution and rupture-time contours — the basis of the "
               "site-motion uncertainty assessment.\n";
  return rerun->cacheHit ? 0 : 1;
}
