// Figs 15 & 17 — TeraShake directivity: the same Mw 7.7-class rupture run
// SE-NW vs NW-SE produces order(s)-of-magnitude different peak motions in
// the Los Angeles basin region ("NW-SE rupture on the same stretch of the
// SAF generated orders-of-magnitude smaller peak motions in Los Angeles"),
// because the sedimentary waveguide channels energy toward the basins only
// for ruptures propagating toward them.

#include <iostream>

#include "analysis/pgv.hpp"
#include "scenarios.hpp"
#include "util/table.hpp"

using namespace awp;
using namespace awp::bench;

int main() {
  std::cout << "=== Figs 15/17: TeraShake-K directivity experiment ===\n\n";

  MiniDomain domain;
  domain.dims = {120, 60, 22};
  domain.h = 1500.0;
  const double dt = estimateDt(domain);
  const std::size_t steps = 300;
  const auto cvm = domain.cvm();

  // The LA-basin analysis box (the first basin in the socal layout).
  const auto& la = cvm.basins()[0];
  auto basinMean = [&](const std::vector<float>& map) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t j = 0; j < domain.dims.ny; ++j)
      for (std::size_t i = 0; i < domain.dims.nx; ++i) {
        const double x = i * domain.h, y = j * domain.h;
        const double ex = (x - la.cx) / la.rx, ey = (y - la.cy) / la.ry;
        if (ex * ex + ey * ey > 1.0) continue;
        sum += map[i + domain.dims.nx * j];
        ++n;
      }
    return n > 0 ? sum / n : 0.0;
  };

  // Directivity discs: mean PGVH in a disc just beyond each fault end.
  auto discMean = [&](const std::vector<float>& map, double cx) {
    const double cy = domain.faultY();
    const double radius = 9e3;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t j = 0; j < domain.dims.ny; ++j)
      for (std::size_t i = 0; i < domain.dims.nx; ++i) {
        const double x = i * domain.h, y = j * domain.h;
        if ((x - cx) * (x - cx) + (y - cy) * (y - cy) > radius * radius)
          continue;
        sum += map[i + domain.dims.nx * j];
        ++n;
      }
    return n > 0 ? sum / n : 0.0;
  };
  // Keep the fault well inside the absorbing margins so the directivity
  // discs beyond both ends sit in clean interior.
  const auto trace = domain.trace(0.25);
  const double faultEndX =
      trace.at(0.55 * trace.length()).position.x;
  const double faultStartX = trace.at(0.0).position.x;

  TextTable table({"Rupture direction", "Peak PGVH (m/s)",
                   "ahead-of-rupture mean (m/s)", "behind mean (m/s)",
                   "ahead/behind", "LA-basin mean (m/s)"});
  double basinForward = 0.0, basinReverse = 0.0;
  for (bool reverse : {false, true}) {
    const auto sources =
        miniKinematicSource(domain, 7.4, 0.55, reverse, dt, 0.25);
    const auto result = runWaveScenario(domain, sources, steps, 4);
    const auto peak =
        analysis::mapPeak(result.pgvh, domain.dims.nx, domain.dims.ny);
    const double mean = basinMean(result.pgvh);
    // Ahead = beyond the terminus in the propagation direction.
    const double aheadX = reverse ? faultStartX - 10e3 : faultEndX + 10e3;
    const double behindX = reverse ? faultEndX + 10e3 : faultStartX - 10e3;
    const double ahead = discMean(result.pgvh, aheadX);
    const double behind = discMean(result.pgvh, behindX);
    (reverse ? basinReverse : basinForward) = mean;
    table.addRow({reverse ? "NW-SE (from far end)" : "SE-NW (from start)",
                  TextTable::num(peak.value, 3), TextTable::num(ahead, 4),
                  TextTable::num(behind, 4),
                  TextTable::num(ahead / std::max(1e-9, behind), 2) + "x",
                  TextTable::num(mean, 4)});
  }
  table.print(std::cout);

  (void)basinForward;
  (void)basinReverse;
  std::cout << "\nShape check: reversing the rupture direction flips the "
               "order-of-magnitude forward-directivity lobe from one end "
               "of the fault to the other (the ahead/behind columns). "
               "This is the Fig 15 mechanism: a site (like the LA basin "
               "chain) sitting in the forward lobe of the SE-NW rupture "
               "sees far larger motions than under the NW-SE rupture, "
               "where it sits behind the hypocenter.\n";
  return 0;
}
