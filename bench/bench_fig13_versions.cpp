// Fig 13 — "Reduction of time-to-solution per time step achieved for each
// new version of AWP-ODC on NCCS Jaguar": the per-step wall clock of the
// M8 configuration on 223,074 Jaguar cores, version by version. Shape to
// reproduce: the async redesign (v5.0) is the single biggest drop (~7x),
// followed by single-CPU optimization (v6.0, ~33% compute), cache
// blocking (v7.1, ~7%), and reduced communication (v7.2, ~15% at scale).

#include <iostream>

#include "perfmodel/machine.hpp"
#include "perfmodel/model.hpp"
#include "util/table.hpp"
#include "vcluster/cart.hpp"

using namespace awp;
using namespace awp::perfmodel;

int main() {
  std::cout << "=== Fig 13: time-to-solution per step by code version "
               "(M8 settings, 223,074 Jaguar cores) ===\n\n";
  ScalingModel model(machineByName("Jaguar"), m8Problem());
  const auto dims =
      vcluster::CartTopology::balancedDims(223074, 20250, 10125, 2125);

  TextTable table({"Version", "Optimization added", "t/step (s)",
                   "Speedup vs previous", "Speedup vs v4.0"});
  double prev = 0.0, first = 0.0;
  for (CodeVersion v : {CodeVersion::V4_0, CodeVersion::V5_0,
                        CodeVersion::V6_0, CodeVersion::V7_0,
                        CodeVersion::V7_1, CodeVersion::V7_2}) {
    const auto& traits = traitsOf(v);
    const double t = model.perStep(traits, dims).total();
    if (first == 0.0) first = t;
    table.addRow({traits.label, traits.optimization, TextTable::num(t, 3),
                  prev > 0.0 ? TextTable::num(prev / t, 2) + "x" : "-",
                  TextTable::num(first / t, 2) + "x"});
    prev = t;
  }
  table.print(std::cout);
  std::cout << "\nPaper anchors: async ~7x on 223K cores; single-CPU opt "
               "40% total (31% arithmetic + 2% unroll + 7% blocking); "
               "reduced comm ~15% wall clock at full scale.\n";
  return 0;
}
