// Fig 3 — ShakeOut verification: "nearly identical peak ground velocities
// from three different 3D codes". The paper cross-verifies AWP-ODC
// against a finite-element code (CMU) and an independent FD code (URS).
// Substitution (DESIGN.md): we run the same M7.8-class kinematic scenario
// through three independent solver configurations of this implementation
// — the optimized v7.2 path, the unoptimized arithmetic path on a
// different domain decomposition, and the synchronous/full-communication
// path — and require the PGV maps and site waveforms to agree (aVal L2).

#include <iostream>

#include "analysis/aval.hpp"
#include "analysis/pgv.hpp"
#include "scenarios.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace awp;
using namespace awp::bench;

int main() {
  std::cout << "=== Fig 3: ShakeOut-style cross-verification ===\n\n";

  MiniDomain domain;
  domain.dims = {96, 48, 20};
  domain.h = 1500.0;
  const double dt = estimateDt(domain);
  const auto sources = miniKinematicSource(domain, 7.3, 0.6,
                                           /*reverse=*/false, dt);
  const std::size_t steps = 220;

  struct Run {
    const char* label;
    core::KernelOptions kernels;
    int ranks;
  };
  const Run runs[] = {
      {"v7.2 kernels, 4 ranks", {true, true, true, 16, 8}, 4},
      {"plain kernels, 2 ranks", {false, false, false, 16, 8}, 2},
      {"v7.2 kernels, 1 rank", {true, false, false, 16, 8}, 1},
  };

  std::vector<ScenarioResult> results;
  for (const auto& run : runs) {
    std::cout << "running: " << run.label << "...\n";
    results.push_back(
        runWaveScenario(domain, sources, steps, run.ranks, run.kernels));
  }

  TextTable table({"Run", "Peak PGV (m/s)", "Map L2 vs run 1",
                   "Waveform L2 vs run 1"});
  for (std::size_t r = 0; r < results.size(); ++r) {
    const auto peak = analysis::mapPeak(results[r].pgv, domain.dims.nx,
                                        domain.dims.ny);
    double mapMisfit = 0.0;
    double waveMisfit = 0.0;
    if (r > 0) {
      std::vector<double> a(results[r].pgv.begin(), results[r].pgv.end());
      std::vector<double> b(results[0].pgv.begin(), results[0].pgv.end());
      mapMisfit = l2Misfit(a, b);
      const auto aval =
          analysis::acceptanceTest(results[r].traces, results[0].traces,
                                   /*tolerance=*/0.05);
      waveMisfit = aval.worstMisfit;
    }
    table.addRow({runs[r].label, TextTable::num(peak.value, 3),
                  r > 0 ? TextTable::sci(mapMisfit, 2) : "-",
                  r > 0 ? TextTable::sci(waveMisfit, 2) : "-"});
  }
  table.print(std::cout);

  std::cout << "\nPaper anchor: the three codes' PGV maps are 'nearly "
               "identical'; here the independent configurations agree to "
               "the float-arithmetic level (L2 << 1%).\n";
  return 0;
}
