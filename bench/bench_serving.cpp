// Serving-tier benchmark: tile publish latency (fresh content, duplicate
// absorption, dedup-absorbed content), end-to-end incremental publishing
// overhead while a scenario ensemble runs, and exceedance-query
// throughput over the resulting catalog. Records BENCH_serving.json next
// to the working directory so CI keeps a trajectory of the serving hot
// paths.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <unistd.h>
#include <vector>

#include "sched/artifact_cache.hpp"
#include "sched/service.hpp"
#include "sched/spec.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"
#include "serve/tile.hpp"
#include "util/table.hpp"

using namespace awp;
using namespace awp::serve;

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

sched::ScenarioSpec benchSpec(std::uint64_t steps) {
  sched::ScenarioSpec spec;
  spec.kind = sched::ScenarioKind::Wave;
  spec.dims = {48, 36, 16};
  spec.h = 600.0;
  spec.steps = steps;
  spec.nranks = 2;
  spec.useCvm = true;
  spec.spongeWidth = 4;
  spec.checkpointEverySteps = 10;
  spec.surfaceSampleEverySteps = 2;
  spec.name = "bench-serving";
  return spec;
}

}  // namespace

int main() {
  std::cout << "=== Hazard-product serving tier ===\n\n";

  // --- raw tile publish latency -------------------------------------------
  // One 16x16 tile republished across versions: fresh content every time
  // (index update + chunk store), exact duplicates (version lattice
  // absorbs), and alternating content (chunk tier dedups).
  sched::ArtifactCache rawCache;
  TileStore rawStore(&rawCache, 16);
  TileKey key;
  key.digest = digestFromHex("00112233445566778899aabbccddeeff");
  std::vector<float> payload(256, 0.0f);

  const int publishes = 20000;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < publishes; ++i) {
    payload[i % 256] += 1.0f;  // fresh content each version
    rawStore.publish(key, static_cast<std::uint64_t>(i + 1), payload.data(),
                     payload.size());
  }
  const double freshUs = secondsSince(t0) * 1e6 / publishes;

  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < publishes; ++i)  // same version: absorbed duplicates
    rawStore.publish(key, publishes, payload.data(), payload.size());
  const double dupUs = secondsSince(t0) * 1e6 / publishes;

  const std::vector<float> contentA(256, 1.0f), contentB(256, 2.0f);
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < publishes; ++i) {  // alternating known content: dedup
    const auto& c = (i & 1) ? contentA : contentB;
    rawStore.publish(key, static_cast<std::uint64_t>(publishes + i + 1),
                     c.data(), c.size());
  }
  const double dedupUs = secondsSince(t0) * 1e6 / publishes;

  TextTable pub({"Publish path", "us/publish"});
  pub.addRow({"fresh content", TextTable::num(freshUs, 2)});
  pub.addRow({"absorbed duplicate", TextTable::num(dupUs, 3)});
  pub.addRow({"dedup-absorbed chunk", TextTable::num(dedupUs, 2)});
  pub.print(std::cout);
  std::cout << "\n";

  // --- end-to-end incremental publishing over a live ensemble -------------
  const auto work = std::filesystem::temp_directory_path() /
                    ("awp_bench_serving_" + std::to_string(::getpid()));
  std::filesystem::create_directories(work);

  sched::ArtifactCache tileCache;
  ServeConfig scfg;
  scfg.tileEdge = 16;
  scfg.windowSamples = 1;
  ProductServer server(&tileCache, scfg);

  std::vector<TileDelta> seen;
  server.subscribe(Field::PgvH, Extent{0, 0, 48, 36},
                   [&seen](const std::vector<TileDelta>& batch) {
                     seen.insert(seen.end(), batch.begin(), batch.end());
                   });

  sched::ServiceConfig cfg;
  cfg.coreBudget = 4;
  cfg.workDir = work.string();
  cfg.publisher = &server;
  sched::ScenarioService service(cfg);

  std::vector<std::string> digests;
  t0 = std::chrono::steady_clock::now();
  std::vector<sched::JobHandle> jobs;
  for (std::uint64_t steps : {40, 44, 48, 52})
    jobs.push_back(service.submit(benchSpec(steps)));
  bool allCompleted = true;
  for (const auto& job : jobs) {
    allCompleted =
        (job->wait() == sched::JobPhase::Completed) && allCompleted;
    digests.push_back(job->hash);
  }
  const double ensembleSeconds = secondsSince(t0);
  service.shutdown();

  const ServerStats stats = server.stats();
  const sched::CacheStats cache = tileCache.stats();
  TextTable run({"Metric", "Value"});
  run.addRow({"ensemble wall (4 scenarios)",
              TextTable::num(ensembleSeconds, 2) + " s"});
  run.addRow({"window publishes", std::to_string(stats.windowPublishes)});
  run.addRow({"completion publishes",
              std::to_string(stats.completionPublishes)});
  run.addRow({"delta batches delivered", std::to_string(stats.notifies)});
  run.addRow({"tile deltas seen", std::to_string(seen.size())});
  run.addRow({"chunk dedup hits", std::to_string(cache.dedupHits)});
  run.addRow({"logical MB",
              TextTable::num(cache.logicalBytes / 1e6, 2)});
  run.addRow({"stored MB", TextTable::num(cache.storedBytes / 1e6, 2)});
  run.print(std::cout);
  std::cout << "\n";

  // --- exceedance query throughput ----------------------------------------
  // Deterministic extent sweep over the 4-scenario catalog: small window
  // probes and full-map aggregations, streamed tile-by-tile.
  const int queries = 2000;
  std::uint64_t tilesScanned = 0;
  std::uint32_t lcg = 12345;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < queries; ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    ExceedanceQuery query;
    query.digests = digests;
    query.threshold = 1.0e-9f;
    if (i % 4 == 0) {
      query.extent = Extent{0, 0, 48, 36};  // full map
    } else {
      const std::size_t x0 = lcg % 32, y0 = (lcg >> 8) % 24;
      query.extent = Extent{x0, y0, x0 + 16, y0 + 12};
    }
    tilesScanned += server.exceedance(query).tilesScanned;
  }
  const double querySeconds = secondsSince(t0);
  const double qps = queries / querySeconds;
  const double tilesPerSecond = tilesScanned / querySeconds;

  TextTable qt({"Query path", "Rate"});
  qt.addRow({"exceedance queries", TextTable::num(qps, 0) + " /s"});
  qt.addRow({"tiles streamed", TextTable::num(tilesPerSecond / 1e3, 1) +
                                   " k/s"});
  qt.print(std::cout);

  // --- record the trajectory ----------------------------------------------
  {
    std::ofstream json("BENCH_serving.json");
    json << "{\n"
         << "  \"publish_fresh_us\": " << freshUs << ",\n"
         << "  \"publish_duplicate_us\": " << dupUs << ",\n"
         << "  \"publish_dedup_us\": " << dedupUs << ",\n"
         << "  \"ensemble_wall_seconds\": " << ensembleSeconds << ",\n"
         << "  \"window_publishes\": " << stats.windowPublishes << ",\n"
         << "  \"completion_publishes\": " << stats.completionPublishes
         << ",\n"
         << "  \"delta_batches\": " << stats.notifies << ",\n"
         << "  \"chunk_dedup_hits\": " << cache.dedupHits << ",\n"
         << "  \"cache_logical_bytes\": " << cache.logicalBytes << ",\n"
         << "  \"cache_stored_bytes\": " << cache.storedBytes << ",\n"
         << "  \"exceedance_queries_per_second\": " << qps << ",\n"
         << "  \"tiles_scanned_per_second\": " << tilesPerSecond << "\n"
         << "}\n";
  }
  std::cout << "\nrecorded BENCH_serving.json\n";

  std::filesystem::remove_all(work);
  if (!allCompleted) {
    std::cerr << "ensemble run FAILED\n";
    return 1;
  }
  return 0;
}
