// Fig 23 — comparison of simulated PGVs to NGA attenuation relations at
// rock sites: "For most distances from the fault, the median M8 and AR
// PGVs agree very well, and the M8 median ± 1 standard deviation are very
// close to the AR 16% and 84% probability of exceedance levels." Basin
// sites (Oxnard/Downey/San Bernardino analogues) fall at low POE.

#include <cmath>
#include <iostream>

#include "analysis/gmpe.hpp"
#include "analysis/pgv.hpp"
#include "scenarios.hpp"
#include "util/table.hpp"

using namespace awp;
using namespace awp::bench;

int main() {
  std::cout << "=== Fig 23: simulated rock-site PGV vs GMPE predictions "
               "===\n\n";

  MiniDomain domain;
  domain.dims = {144, 72, 24};
  domain.h = 1500.0;
  const double dt = estimateDt(domain);
  const auto trace = domain.trace();
  const auto cvm = domain.cvm();
  const double mw = 7.5;
  const auto sources = miniKinematicSource(domain, mw, 0.6, false, dt);
  const auto result = runWaveScenario(domain, sources, 320, 4);

  // Rock-site mask: surface Vs > 1000 m/s (the paper's definition).
  auto rockSite = [&](std::size_t i, std::size_t j) {
    return cvm.sample(i * domain.h, j * domain.h, 0.0).vs > 1000.0f;
  };
  // Geometric-mean proxy: the paper notes the geometric-mean PGVH runs
  // 1.5-2x below the root-sum-of-squares measure; apply the midpoint.
  std::vector<float> geoMean(result.pgvh.size());
  for (std::size_t n = 0; n < geoMean.size(); ++n)
    geoMean[n] = result.pgvh[n] / 1.75f;

  const std::vector<double> edges = {2.0, 4.0, 8.0, 15.0, 30.0, 60.0};
  const auto bins = analysis::pgvVsDistance(geoMean, domain.dims.nx,
                                            domain.dims.ny, domain.h,
                                            trace, rockSite, edges);

  const auto ba = analysis::ba08Like();
  const auto cb = analysis::cb08Like();
  TextTable table({"R (km)", "Sites", "Sim median (cm/s)",
                   "Sim 16% (cm/s)", "Sim 84% (cm/s)", "B&A08 median",
                   "C&B08 median", "B&A08 16%", "B&A08 84%"});
  for (const auto& b : bins) {
    const double rMid = 0.5 * (b.rLoKm + b.rHiKm);
    table.addRow({TextTable::num(b.rLoKm, 0) + "-" +
                      TextTable::num(b.rHiKm, 0),
                  std::to_string(b.count), TextTable::num(b.medianCmS, 1),
                  TextTable::num(b.p16CmS, 1), TextTable::num(b.p84CmS, 1),
                  TextTable::num(ba.medianPgv(mw, rMid), 1),
                  TextTable::num(cb.medianPgv(mw, rMid), 1),
                  TextTable::num(ba.pgvAtEpsilon(mw, rMid, -1.0), 1),
                  TextTable::num(ba.pgvAtEpsilon(mw, rMid, 1.0), 1)});
  }
  table.print(std::cout);

  // Basin-site POE ranking (the paper's Oxnard/Downey/SBB comparison).
  std::cout << "\nBasin-site probability of exceedance (B&A08):\n";
  TextTable poeTable({"Site", "PGVH geo-mean (cm/s)", "R (km)", "POE"});
  for (const auto& t : result.traces) {
    double peak = 0.0;
    for (std::size_t n = 0; n < t.u.size(); ++n)
      peak = std::max(peak, std::hypot(static_cast<double>(t.u[n]),
                                       static_cast<double>(t.v[n])));
    const double pgvCmS = peak / 1.75 * 100.0;
    const double rKm = analysis::distanceToTrace(t.gi * domain.h,
                                                 t.gj * domain.h, trace) /
                       1000.0;
    poeTable.addRow({t.name, TextTable::num(pgvCmS, 1),
                     TextTable::num(rKm, 1),
                     TextTable::pct(ba.poe(mw, rKm, pgvCmS), 2)});
  }
  poeTable.print(std::cout);

  std::cout << "\nPaper anchors: rock-site medians track the ARs across "
               "distance; basin sites (path-specific amplification the "
               "ARs cannot capture) land at low POE — Downey 0.13%, "
               "Oxnard ~2%, San Bernardino <0.1% in the paper.\n";
  return 0;
}
