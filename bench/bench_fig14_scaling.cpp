// Fig 14 — "Strong scaling of AWP-ODC on TeraGrid and DOE INCITE
// systems": speedup-vs-cores series for the milestone problems, before
// and after the relevant optimization, with the ideal line. Shapes to
// reproduce:
//   * TeraShake (1.8e9 points) on DataStar: near-ideal at small scale;
//   * ShakeOut (14.4e9) on Ranger/Intrepid: synchronous model collapses
//     at large NUMA core counts, asynchronous restores scaling;
//   * ShakeOut on Kraken: v4.0 (sync) vs v5.0 (async);
//   * M8 (436e9) on Jaguar: v6.0 vs v7.2, v7.2 near/above ideal
//     (super-linear cache effects are reported by the paper; our model is
//     capped at ideal).

#include <iostream>

#include "perfmodel/machine.hpp"
#include "perfmodel/model.hpp"
#include "util/table.hpp"
#include "vcluster/cart.hpp"

using namespace awp;
using namespace awp::perfmodel;

namespace {

void scalingSeries(const std::string& machine, ProblemSize problem,
                   CodeVersion before, CodeVersion after,
                   const std::vector<int>& cores) {
  ScalingModel model(machineByName(machine), problem);
  const auto base = vcluster::CartTopology::balancedDims(
      cores.front(), problem.nx, problem.ny, problem.nz);
  const auto& tb = traitsOf(before);
  const auto& ta = traitsOf(after);

  std::cout << machine << " / " << problem.total() / 1e9
            << "e9 grid points (v" << tb.label << " vs v" << ta.label
            << "):\n";
  TextTable table({"Cores", "Ideal", "Speedup v" + tb.label,
                   "Speedup v" + ta.label, "Eff. v" + tb.label,
                   "Eff. v" + ta.label});
  for (int p : cores) {
    const auto dims = vcluster::CartTopology::balancedDims(
        p, problem.nx, problem.ny, problem.nz);
    const double ideal = static_cast<double>(p) / cores.front();
    const double sb = model.relativeSpeedup(tb, base, dims) /
                      cores.front();
    const double sa = model.relativeSpeedup(ta, base, dims) /
                      cores.front();
    table.addRow({std::to_string(p), TextTable::num(ideal, 1),
                  TextTable::num(sb, 1), TextTable::num(sa, 1),
                  TextTable::pct(sb / ideal, 1),
                  TextTable::pct(sa / ideal, 1)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Fig 14: strong scaling across systems ===\n"
            << "(speedup normalized to the smallest core count; 'before' "
               "uses the synchronous/unoptimized code path)\n\n";

  scalingSeries("DataStar", terashakeProblem(), CodeVersion::V1_0,
                CodeVersion::V2_0, {240, 480, 1024, 2048});
  scalingSeries("Ranger", shakeoutProblem(), CodeVersion::V4_0,
                CodeVersion::V5_0, {4096, 16384, 32768, 60000});
  scalingSeries("Intrepid", shakeoutProblem(), CodeVersion::V4_0,
                CodeVersion::V5_0, {8192, 32768, 65536, 131072});
  scalingSeries("Kraken", shakeoutProblem(), CodeVersion::V4_0,
                CodeVersion::V5_0, {12288, 24576, 49152, 98304});
  scalingSeries("Jaguar", m8Problem(), CodeVersion::V6_0,
                CodeVersion::V7_2, {21870, 65610, 131220, 223074});

  std::cout << "Paper anchors: BG/P efficiency fell to ~40% at 40K cores "
               "under the synchronous model (vs 96% on BG/L); Ranger "
               "async raised efficiency 28% -> 75% on 60K cores; M8 v7.2 "
               "scales near-ideally to 223K cores.\n";
  return 0;
}
