// §IV.A — communication models: synchronous vs asynchronous exchange and
// the algorithm-level reduced communication. Real byte/message accounting
// on the virtual cluster plus the model's wall-clock projections at the
// paper's scales. Paper anchors: async cut Ranger 60K-core time to 1/3
// (28% -> 75% efficiency) and gave ~7x at 223K Jaguar cores; reduced
// communication cuts the xx-component volume by 75% (overall bytes ~50%)
// and 15% wall clock at full scale.

#include <atomic>
#include <iostream>

#include "grid/halo.hpp"
#include "mesh/partitioner.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/model.hpp"
#include "util/table.hpp"
#include "vcluster/cluster.hpp"

using namespace awp;

namespace {

struct ExchangeCounts {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t barriers = 0;
};

ExchangeCounts countExchanges(grid::HaloExchanger::Mode mode,
                              bool reduced) {
  ExchangeCounts out;
  std::atomic<std::uint64_t> messages{0}, bytes{0}, barriers{0};
  const grid::GridDims global{48, 48, 48};
  vcluster::CartTopology topo(vcluster::Dims3{2, 2, 2});
  const mesh::MeshSpec spec{global.nx, global.ny, global.nz, 1.0, 0, 0};
  vcluster::ThreadCluster::run(8, [&](vcluster::Communicator& comm) {
    const auto sub = mesh::subdomainFor(topo, spec, comm.rank());
    grid::StaggeredGrid g({sub.x.count(), sub.y.count(), sub.z.count()},
                          100.0, 0.005);
    grid::HaloExchanger ex(comm, topo, mode, reduced);
    for (int step = 0; step < 10; ++step) {
      ex.exchangeVelocities(g);
      ex.exchangeStresses(g);
    }
    messages.fetch_add(ex.stats().messages);
    bytes.fetch_add(ex.stats().bytes);
    if (comm.rank() == 0) barriers = comm.stats().barriers.load();
  });
  out.messages = messages.load();
  out.bytes = bytes.load();
  out.barriers = barriers.load();
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Communication models (Section IV.A) ===\n\n"
            << "Measured on the virtual cluster (48^3 global grid, 8 "
               "ranks, 10 steps):\n";

  TextTable table({"Model", "Messages", "Bytes", "Barriers",
                   "Bytes vs full-async"});
  const auto fullAsync =
      countExchanges(grid::HaloExchanger::Mode::Asynchronous, false);
  const auto fullSync =
      countExchanges(grid::HaloExchanger::Mode::Synchronous, false);
  const auto reduced =
      countExchanges(grid::HaloExchanger::Mode::Asynchronous, true);

  auto row = [&](const char* label, const ExchangeCounts& c) {
    table.addRow({label, std::to_string(c.messages),
                  std::to_string(c.bytes), std::to_string(c.barriers),
                  TextTable::pct(static_cast<double>(c.bytes) /
                                     static_cast<double>(fullAsync.bytes),
                                 1)});
  };
  row("synchronous, full", fullSync);
  row("asynchronous, full", fullAsync);
  row("asynchronous, reduced (v7.2)", reduced);
  table.print(std::cout);

  std::cout << "\nThe synchronous model inserts a global barrier per axis "
               "per exchange (its cascading cost); reduced communication "
               "halves the exchanged bytes (xx alone drops 75%: 3 of 12 "
               "planes).\n\n";

  std::cout << "Modeled wall-clock effect at paper scales (per step):\n";
  TextTable model({"Machine/cores", "sync t/step (s)", "async t/step (s)",
                   "gain"});
  struct Case {
    const char* machine;
    int cores;
    perfmodel::ProblemSize problem;
  };
  for (const auto& c :
       {Case{"Ranger", 60000, perfmodel::shakeoutProblem()},
        Case{"Jaguar", 223074, perfmodel::m8Problem()}}) {
    perfmodel::ScalingModel m(perfmodel::machineByName(c.machine),
                              c.problem);
    const auto dims = vcluster::CartTopology::balancedDims(
        c.cores, c.problem.nx, c.problem.ny, c.problem.nz);
    auto async = perfmodel::traitsOf(perfmodel::CodeVersion::V7_2);
    auto sync = async;
    sync.asyncComm = false;
    const double ts = m.perStep(sync, dims).total();
    const double ta = m.perStep(async, dims).total();
    model.addRow({std::string(c.machine) + "/" + std::to_string(c.cores),
                  TextTable::num(ts, 3), TextTable::num(ta, 3),
                  TextTable::num(ts / ta, 2) + "x"});
  }
  model.print(std::cout);
  std::cout << "\nPaper anchors: 3x total-time reduction on 60K Ranger "
               "cores; ~7x on 223K Jaguar cores.\n";
  return 0;
}
