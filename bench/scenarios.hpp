#pragma once
// Shared mini-scenario builders for the bench harness. Every bench that
// regenerates a science figure runs one of these laptop-scale replicas of
// the paper's SCEC milestone runs (Table 3): same physics and geometry
// proportions, reduced resolution and extent. EXPERIMENTS.md records the
// scale mapping per experiment.

#include <string>
#include <vector>

#include "analysis/aval.hpp"
#include "core/solver.hpp"
#include "rupture/solver.hpp"
#include "source/dsrcg.hpp"
#include "vmodel/cvm.hpp"

namespace awp::bench {

// A mini southern-California-like wave-propagation domain. The fault
// trace runs along x at faultY; basins follow the CVM socal layout.
struct MiniDomain {
  grid::GridDims dims{144, 72, 24};  // cells
  double h = 1000.0;                 // m -> 144 x 72 x 24 km volume
  double faultYFraction = 0.55;

  [[nodiscard]] double lx() const { return dims.nx * h; }
  [[nodiscard]] double ly() const { return dims.ny * h; }
  [[nodiscard]] double faultY() const { return faultYFraction * ly(); }
  [[nodiscard]] vmodel::CommunityVelocityModel cvm() const {
    return vmodel::CommunityVelocityModel::socal(lx(), ly(), faultY());
  }
  [[nodiscard]] source::FaultTrace trace(double marginFraction = 0.15,
                                         double bend = 0.0) const;
};

struct ScenarioResult {
  std::vector<float> pgvh;  // global surface map on exit (x fastest)
  std::vector<float> pgv;
  std::vector<core::SeismogramTrace> traces;
  double dt = 0.0;
  std::size_t steps = 0;
  double wallSeconds = 0.0;
  PhaseTimer phases;  // aggregated over ranks? (rank 0's timer)
  std::size_t gridPoints = 0;
};

// Run a wave-propagation scenario on `nranks` virtual ranks with the given
// sources; records PGV maps and traces at the CVM's named sites.
ScenarioResult runWaveScenario(
    const MiniDomain& domain, std::vector<core::MomentRateSource> sources,
    std::size_t steps, int nranks = 4,
    const core::KernelOptions& kernels = {}, bool attenuation = false,
    const std::vector<vmodel::Site>& extraSites = {});

// A mini TeraShake/ShakeOut-style kinematic scenario along the domain's
// fault trace.
std::vector<core::MomentRateSource> miniKinematicSource(
    const MiniDomain& domain, double mw, double faultLengthFraction,
    bool reverseDirection, double dt, double traceMargin = 0.15);

// A mini dynamic rupture (the two-step method's first step): run the DFR
// solver on a planar fault and return the gathered history. The fault
// length is `lengthKm` at `hRupture` spacing.
rupture::FaultHistory runMiniRupture(double lengthKm, double depthKm,
                                     double hRupture, std::uint64_t seed,
                                     std::size_t steps, int nranks = 2,
                                     double nucAlongStrikeFraction = 0.15);

// Solver time-step estimate for a mini domain (for pre-sizing sources).
double estimateDt(const MiniDomain& domain);

}  // namespace awp::bench
