// §IV.D — load balancing by hybrid multithreads: "multiple OpenMP
// threads, spawned from a single MPI process, directly access shared
// memory within a node", reducing imbalance by up to 35% — but "for the
// large-scale runs where communication and synchronization overhead
// dominate the simulation time, the pure MPI code still performs better
// than the MPI/OpenMP hybrid code". This bench measures the real hybrid
// kernel path (correct by construction, see test_runtime) and its
// overhead on this host, then prints the model's view of the tradeoff.

#include <iostream>

#include "core/kernels.hpp"
#include "grid/staggered_grid.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace awp;

int main() {
  std::cout << "=== Hybrid MPI/OpenMP mode (Section IV.D) ===\n\n";

  grid::StaggeredGrid g({96, 96, 64}, 100.0, 0.005);
  g.setUniformMaterial(vmodel::Material{5000.0f, 2900.0f, 2700.0f});

  TextTable table({"Intra-rank threads", "ms/step", "vs pure"});
  double pure = 0.0;
  for (int threads : {1, 2, 4}) {
    core::KernelOptions opts;
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      opts.pool = pool.get();
    }
    // Warm up, then measure.
    core::updateVelocity(g, opts);
    core::updateStress(g, opts);
    Stopwatch watch;
    const int reps = 6;
    for (int r = 0; r < reps; ++r) {
      core::updateVelocity(g, opts);
      core::updateStress(g, opts);
    }
    const double ms = watch.seconds() / reps * 1e3;
    if (threads == 1) pure = ms;
    table.addRow({std::to_string(threads), TextTable::num(ms, 1),
                  TextTable::num(pure / ms, 2) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nOn a single-core host the hybrid threads add scheduling "
               "overhead without speedup — the miniature of the paper's "
               "full-scale finding that pure message passing beat the "
               "hybrid once per-subdomain work shrank. With real spare "
               "cores the k-slab split gives near-linear kernel speedup "
               "(the wavefield is bitwise identical either way; see "
               "test_runtime's HybridMode test).\n";
  return 0;
}
