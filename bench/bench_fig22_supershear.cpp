// Fig 22 — super-shear Mach waves: where the rupture runs faster than the
// local shear speed, Mach cones "carry intense near-fault ground motions
// to much larger distances from the fault than is the case for sub-shear
// ruptures", and the fault-PARALLEL component "tends to display similar
// or larger amplitude, as compared to the fault-perpendicular component".
//
// The experiment: two prescribed-rupture-speed kinematic runs (sub-shear
// vs super-shear), comparing (a) the off-fault decay of PGVH and (b) the
// fault-parallel / fault-normal amplitude ratio at a line of receivers.

#include <cmath>
#include <iostream>

#include "analysis/pgv.hpp"
#include "scenarios.hpp"
#include "util/table.hpp"

using namespace awp;
using namespace awp::bench;

int main() {
  std::cout << "=== Fig 22: sub-shear vs super-shear rupture wavefields "
               "===\n\n";

  MiniDomain domain;
  domain.dims = {120, 64, 20};
  domain.h = 1500.0;
  const double dt = estimateDt(domain);
  const std::size_t steps = 260;
  const auto trace = domain.trace();

  auto rowMean = [&](const std::vector<float>& map, double offKm) {
    const auto j = static_cast<std::size_t>(
        (domain.faultY() - offKm * 1000.0) / domain.h);
    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t i = domain.dims.nx / 4; i < 3 * domain.dims.nx / 4;
         ++i, ++n)
      s += map[i + domain.dims.nx * j];
    return s / static_cast<double>(n);
  };

  TextTable table({"Rupture speed", "PGVH 5 km (m/s)", "PGVH 25 km (m/s)",
                   "far/near decay", "fault-parallel / fault-normal"});
  double decaySub = 0.0, decaySuper = 0.0;
  double ratioSub = 0.0, ratioSuper = 0.0;

  for (bool superShear : {false, true}) {
    source::KinematicScenario sc;
    sc.faultLength = 0.55 * trace.length();
    sc.faultDepth = 12e3;
    sc.targetMw = 7.4;
    sc.riseTime = 2.5;
    // Sub-Rayleigh (~0.8 vs) vs super-shear (~1.5 vs) for mid-crust
    // vs ~ 3.2 km/s.
    sc.ruptureSpeed = superShear ? 4800.0 : 2600.0;
    source::WaveModelTarget target{domain.dims, domain.h, dt};
    auto sources = source::kinematicSource(sc, trace, target);

    // A dedicated receiver line 15 km off the fault for the component
    // ratio (u is fault-parallel, v fault-normal for this straight trace).
    std::vector<vmodel::Site> line;
    for (int r = 0; r < 8; ++r)
      line.push_back({"line" + std::to_string(r),
                      (0.3 + 0.05 * r) * domain.lx(),
                      domain.faultY() - 15e3});
    const auto result =
        runWaveScenario(domain, sources, steps, 4, {}, false, line);

    const double near = rowMean(result.pgvh, 5.0);
    const double far = rowMean(result.pgvh, 25.0);
    const double decay = far / std::max(1e-12, near);

    double sumU = 0.0, sumV = 0.0;
    for (const auto& t : result.traces) {
      if (t.name.rfind("line", 0) != 0) continue;
      double pu = 0.0, pv = 0.0;
      for (std::size_t n = 0; n < t.u.size(); ++n) {
        pu = std::max(pu, std::abs(static_cast<double>(t.u[n])));
        pv = std::max(pv, std::abs(static_cast<double>(t.v[n])));
      }
      sumU += pu;
      sumV += pv;
    }
    const double ratio = sumV > 0.0 ? sumU / sumV : 0.0;

    (superShear ? decaySuper : decaySub) = decay;
    (superShear ? ratioSuper : ratioSub) = ratio;
    table.addRow({superShear ? "super-shear (1.5 vs)"
                             : "sub-Rayleigh (0.8 vs)",
                  TextTable::num(near, 4), TextTable::num(far, 4),
                  TextTable::num(decay, 3), TextTable::num(ratio, 2)});
  }
  table.print(std::cout);

  std::cout << "\nShape checks: the super-shear run decays more slowly "
               "off-fault (Mach cone: "
            << TextTable::num(decaySuper, 3) << " vs "
            << TextTable::num(decaySub, 3)
            << ") and raises the fault-parallel/fault-normal ratio ("
            << TextTable::num(ratioSuper, 2) << " vs "
            << TextTable::num(ratioSub, 2) << ").\n";
  return 0;
}
