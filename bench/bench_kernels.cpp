// §IV.B — single-CPU optimization microbenchmarks (google-benchmark):
// the kernel variants kept side by side. Paper-reported gains at full
// Jaguar scale: reciprocal arithmetic 31%, 2x unrolling 2%, cache
// blocking 7% (40% total with all three); kblock/jblock = 16/8 optimal
// for loop length ~125 with ~3% spread between nearby blockings.

#include <benchmark/benchmark.h>

#include "core/kernels.hpp"
#include "grid/staggered_grid.hpp"

using namespace awp;

namespace {

grid::StaggeredGrid& testGrid() {
  static grid::StaggeredGrid g = [] {
    grid::StaggeredGrid grid({125, 125, 64}, 100.0, 0.005);
    grid.setUniformMaterial(vmodel::Material{5000.0f, 2900.0f, 2700.0f});
    // Non-trivial wavefield so the arithmetic is realistic.
    for (std::size_t n = 0; n < grid.u.size(); ++n) {
      grid.u.data()[n] = static_cast<float>(n % 97) * 1e-3f;
      grid.v.data()[n] = static_cast<float>(n % 89) * 1e-3f;
      grid.w.data()[n] = static_cast<float>(n % 83) * 1e-3f;
      grid.xx.data()[n] = static_cast<float>(n % 79) * 1e2f;
      grid.xy.data()[n] = static_cast<float>(n % 73) * 1e2f;
    }
    return grid;
  }();
  return g;
}

void runStep(benchmark::State& state, const core::KernelOptions& opts) {
  auto& g = testGrid();
  for (auto _ : state) {
    core::updateVelocity(g, opts);
    core::updateStress(g, opts);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.dims().count()));
  state.counters["ns/point"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(g.dims().count()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_Plain(benchmark::State& state) {
  core::KernelOptions opts;
  opts.useReciprocals = false;
  runStep(state, opts);
}

void BM_Reciprocal(benchmark::State& state) {
  core::KernelOptions opts;  // reciprocals on by default
  runStep(state, opts);
}

void BM_ReciprocalUnrolled(benchmark::State& state) {
  core::KernelOptions opts;
  opts.unrolled = true;
  runStep(state, opts);
}

void BM_ReciprocalBlocked(benchmark::State& state) {
  core::KernelOptions opts;
  opts.cacheBlocked = true;
  runStep(state, opts);
}

void BM_FullyOptimized(benchmark::State& state) {
  core::KernelOptions opts;
  opts.cacheBlocked = true;
  opts.unrolled = true;
  runStep(state, opts);
}

// kblock/jblock sweep around the paper's 16/8 optimum.
void BM_BlockingSweep(benchmark::State& state) {
  core::KernelOptions opts;
  opts.cacheBlocked = true;
  opts.kblock = static_cast<int>(state.range(0));
  opts.jblock = static_cast<int>(state.range(1));
  runStep(state, opts);
}

}  // namespace

BENCHMARK(BM_Plain)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Reciprocal)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReciprocalUnrolled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReciprocalBlocked)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullyOptimized)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlockingSweep)
    ->Args({8, 4})
    ->Args({16, 8})
    ->Args({32, 16})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
