// §V.B — sustained performance: the 2,000-step 1.4-trillion-point Blue
// Waters preparation benchmark (260 Tflop/s) and the 24-hour M8
// production run (220 Tflop/s) on 223,074 Jaguar cores, plus a REAL
// measured single-core kernel rate from this machine feeding the model's
// compute anchor.

#include <iostream>

#include "core/kernels.hpp"
#include "grid/staggered_grid.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/model.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "vcluster/cart.hpp"

using namespace awp;
using namespace awp::perfmodel;

int main() {
  std::cout << "=== Sustained performance (Section V.B) ===\n\n";

  // --- Real measured kernel rate on this host -----------------------------
  grid::StaggeredGrid g({96, 96, 96}, 100.0, 0.005);
  g.setUniformMaterial(vmodel::Material{5000.0f, 2900.0f, 2700.0f});
  core::KernelOptions opts;  // v7.2-style: reciprocals on
  opts.cacheBlocked = true;
  // Warm up, then measure.
  core::updateVelocity(g, opts);
  core::updateStress(g, opts);
  Stopwatch watch;
  const int reps = 10;
  for (int r = 0; r < reps; ++r) {
    core::updateVelocity(g, opts);
    core::updateStress(g, opts);
  }
  const double secs = watch.seconds();
  const double points = static_cast<double>(g.dims().count()) * reps;
  const double flops = points * core::flopsPerPointPerStep(false);
  const double hostGflops = flops / secs / 1e9;
  std::cout << "Measured single-core stencil rate on this host: "
            << TextTable::num(hostGflops, 2) << " Gflop/s ("
            << TextTable::num(secs / reps * 1e3, 1)
            << " ms per 96^3 step)\n\n";

  // --- Modeled sustained rates at Jaguar scale -----------------------------
  TextTable table({"Run", "Grid points", "Cores", "Paper Tflop/s",
                   "Model Tflop/s"});
  const auto traits = traitsOf(CodeVersion::V7_2);

  {
    ScalingModel model(machineByName("Jaguar"), m8Problem());
    const auto dims =
        vcluster::CartTopology::balancedDims(223074, 20250, 10125, 2125);
    table.addRow({"M8 production (24 h)", "4.36e11", "223074", "220.00",
                  TextTable::num(model.sustainedTflops(traits, dims), 2)});
  }
  {
    const auto problem = bluewatersBenchmarkProblem();
    ScalingModel model(machineByName("Jaguar"), problem);
    const auto dims = vcluster::CartTopology::balancedDims(
        223074, problem.nx, problem.ny, problem.nz);
    // A pure 2,000-step benchmark: no production output, no source
    // re-initialization (γ = φ = 0 in Eq. 7).
    const auto t = model.perStep(traits, dims, 0.0, 0.0);
    const double tf =
        ScalingModel::kDefaultFlopsPerPoint * problem.total() / t.total() /
        1e12;
    table.addRow({"2,000-step benchmark (25 m)", "1.4e12", "223074",
                  "260.00", TextTable::num(tf, 2)});
  }
  table.print(std::cout);

  std::cout << "\nShape check: the larger benchmark sustains MORE than the "
               "production run (better surface-to-volume and no "
               "production I/O), matching the paper's 260 vs 220.\n"
            << "Peak fraction: 220 Tflop/s / (223074 x 10.4 Gflops) = "
            << TextTable::pct(220e12 / (223074.0 * 10.4e9), 1)
            << " — the paper's 'approximately 10% of peak'.\n";
  return 0;
}
