// Fig 12 — breakdown of execution time into computing, communication,
// synchronization and I/O for the M8 settings on Jaguar, v6.0 (left
// panel: no cache blocking, no reduced communication) vs v7.2 (right),
// between 65,610 and 223,074 cores. The paper's observations to
// reproduce: I/O is 0.6–2% of total; v7.2 shows lower comm+sync AND lower
// compute (cache blocking); compute drops super-linearly as the per-core
// working set falls into cache.
//
// A measured mini-run (real solver, 8 virtual ranks) validates that the
// instrumented phase fractions behave like the model's.

#include <iostream>

#include "core/solver.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/model.hpp"
#include "util/table.hpp"
#include "vcluster/cluster.hpp"

using namespace awp;
using namespace awp::perfmodel;

int main() {
  std::cout << "=== Fig 12: execution-time breakdown, M8 on Jaguar ===\n\n";
  ScalingModel model(machineByName("Jaguar"), m8Problem());

  for (CodeVersion v : {CodeVersion::V6_0, CodeVersion::V7_2}) {
    auto traits = traitsOf(v);
    if (v == CodeVersion::V6_0) {
      // Fig 12's v6.0 panel: async comm already in, no cache blocking or
      // reduced communication.
      traits.cacheBlocking = false;
      traits.reducedComm = false;
    }
    std::cout << "Version " << traits.label << ":\n";
    TextTable table({"Cores", "Tcomp (s)", "Tcomm (s)", "Tsync (s)",
                     "I/O (s)", "Total (s)", "I/O share"});
    for (int cores : {65610, 87480, 109350, 131220, 223074}) {
      const auto dims = vcluster::CartTopology::balancedDims(
          cores, 20250, 10125, 2125);
      const auto t = model.perStep(traits, dims);
      table.addRow({std::to_string(cores), TextTable::num(t.comp, 4),
                    TextTable::num(t.comm, 5), TextTable::num(t.sync, 5),
                    TextTable::num(t.output, 5),
                    TextTable::num(t.total(), 4),
                    TextTable::pct(t.output / t.total(), 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Measured phase fractions from a real mini-run on 8 virtual ranks.
  std::cout << "Measured mini-run (real solver, 64x32x32, 8 ranks):\n";
  PhaseTimer phases;
  vcluster::ThreadCluster::run(8, [&](vcluster::Communicator& comm) {
    vcluster::CartTopology topo(vcluster::Dims3{2, 2, 2});
    core::SolverConfig config;
    config.globalDims = {64, 32, 32};
    config.h = 200.0;
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5000.0f, 2900.0f, 2700.0f});
    solver.addSource(core::explosionPointSource(
        32, 16, 16,
        core::rickerWavelet(4.0, 0.4, solver.config().dt, 60, 1e15)));
    solver.run(60);
    if (comm.rank() == 0) phases = solver.phases();
  });
  const double total = phases.total();
  TextTable measured({"Phase", "Seconds", "Share"});
  for (auto p : {Phase::Compute, Phase::Communicate, Phase::Synchronize,
                 Phase::Output}) {
    measured.addRow({std::string(kPhaseNames[static_cast<std::size_t>(p)]),
                     TextTable::num(phases.get(p), 3),
                     TextTable::pct(phases.get(p) / total, 1)});
  }
  measured.print(std::cout);
  std::cout << "\nPaper anchors: I/O between 0.6% and 2% of total; v7.2 "
               "reduces both Tcomp (cache blocking) and Tcomm+Tsync "
               "(reduced communication) relative to v6.0.\n";
  return 0;
}
