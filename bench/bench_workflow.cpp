// §III.I — the end-to-end workflow: GridFTP-style transfer with MD5
// verification and automatic failure recovery (>200 MB/s average), PIPUT
// parallel archive ingestion (~177 MB/s, >10x a single iPUT stream), and
// the staged E2EaW pipeline over real files.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <unistd.h>

#include "util/error.hpp"
#include "util/table.hpp"
#include "workflow/archive.hpp"
#include "workflow/e2eaw.hpp"
#include "workflow/transfer.hpp"

using namespace awp;
using namespace awp::workflow;

int main() {
  const auto root = std::filesystem::temp_directory_path() /
                    ("awp_bench_wf_" + std::to_string(::getpid()));
  const auto src = root / "kraken", dst = root / "archive";
  std::filesystem::create_directories(src);
  std::filesystem::create_directories(dst);

  // Synthetic simulation outputs (stand-ins for the 4.5 TB surface data).
  std::vector<std::string> files;
  for (int f = 0; f < 4; ++f) {
    const std::string name = "surface_" + std::to_string(f) + ".bin";
    std::ofstream out(src / name, std::ios::binary);
    std::vector<char> data((f + 1) << 20,
                           static_cast<char>('a' + f));
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    files.push_back(name);
  }

  std::cout << "=== End-to-end workflow (Section III.I) ===\n\n";

  // --- Transfer leg with failure injection ---------------------------------
  TextTable xfer({"Failure prob", "Chunks failed", "All recovered",
                  "Verified", "Simulated MB/s effective"});
  for (double p : {0.0, 0.05, 0.25}) {
    TransferConfig config;
    config.chunkFailureProb = p;
    config.seed = 7;
    TransferChannel channel(config);
    // Fresh destination per failure level.
    const auto d = root / ("dst" + std::to_string(int(p * 100)));
    std::filesystem::create_directories(d);
    const auto report = channel.transfer(src.string(), d.string(), files);
    bool allRecovered = true;
    for (const auto& rec : report.records)
      allRecovered = allRecovered && rec.recovered;
    xfer.addRow({TextTable::pct(p, 0),
                 std::to_string(report.chunksFailed),
                 allRecovered ? "yes" : "NO",
                 report.allVerified ? "yes" : "NO",
                 TextTable::num(static_cast<double>(report.bytesMoved) /
                                    report.simulatedSeconds / 1e6,
                                1)});
  }
  xfer.print(std::cout);
  std::cout << "Paper anchor: average transfer rate above 200 MB/s with "
               "transaction records enabling automatic recovery.\n\n";

  // --- Ingestion model -------------------------------------------------------
  TextTable ingest({"Streams", "Aggregate MB/s", "200 TB collection (days)"});
  const IngestionModel model;
  for (int streams : {1, 4, 16, 64}) {
    ingest.addRow(
        {std::to_string(streams),
         TextTable::num(model.aggregateRate(streams) / 1e6, 1),
         TextTable::num(model.ingestSeconds(200e12, streams) / 86400.0,
                        1)});
  }
  ingest.print(std::cout);
  std::cout << "Paper anchor: PIPUT reaches ~177 MB/s, >10x a single "
               "iRODS iPUT stream, for the 200 TB digital collection.\n\n";

  // --- Full pipeline ----------------------------------------------------------
  ArchiveRegistry registry;
  Pipeline pipeline;
  pipeline.addStage("checksum+transfer", [&] {
    TransferChannel channel(TransferConfig{});
    const auto report = channel.transfer(src.string(), dst.string(), files);
    if (!report.allVerified) throw Error("verification failed");
    return std::to_string(report.filesMoved) + " files, " +
           std::to_string(report.bytesMoved >> 20) + " MiB verified";
  });
  pipeline.addStage("ingest (PIPUT)", [&] {
    for (const auto& f : files)
      registry.ingestFile((dst / f).string(), "m8/surface", f, 2);
    return std::to_string(registry.size()) + " entries registered";
  });
  pipeline.addStage("verify replicas", [&] {
    for (const auto& f : files)
      if (!registry.verify(f, (dst / f).string()))
        throw Error("replica mismatch for " + f);
    return "all replicas verified against registered MD5s";
  });

  const bool ok = pipeline.run();
  TextTable stages({"Stage", "Status", "Detail"});
  for (const auto& r : pipeline.results())
    stages.addRow({r.name, r.ok ? "ok" : (r.ran ? "FAILED" : "skipped"),
                   r.detail});
  stages.print(std::cout);
  std::cout << (ok ? "\nE2EaW pipeline completed.\n"
                   : "\nE2EaW pipeline FAILED.\n");

  std::filesystem::remove_all(root);
  return ok ? 0 : 1;
}
