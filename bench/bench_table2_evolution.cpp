// Table 2 — "Evolution of AWP-ODC": per code version, the optimization it
// introduced and the sustained Tflop/s of its milestone simulation. The
// modeled sustained rate evaluates each version's optimization set at its
// milestone machine/core-count/problem; the paper column is printed next
// to it for the shape comparison (who improves on whom, by roughly what
// factor).

#include <iostream>

#include "perfmodel/machine.hpp"
#include "perfmodel/model.hpp"
#include "util/table.hpp"
#include "vcluster/cart.hpp"

using namespace awp;
using namespace awp::perfmodel;

namespace {

struct Milestone {
  CodeVersion version;
  const char* machine;
  int cores;
  ProblemSize problem;
};

}  // namespace

int main() {
  std::cout << "=== Table 2: evolution of AWP-ODC ===\n\n";

  // Milestone configuration per version (§VI and Table 3).
  const Milestone milestones[] = {
      {CodeVersion::V1_0, "DataStar", 240, terashakeProblem()},
      {CodeVersion::V2_0, "DataStar", 1024, terashakeProblem()},
      {CodeVersion::V3_0, "DataStar", 2048, terashakeProblem()},
      {CodeVersion::V4_0, "Ranger", 16384, shakeoutProblem()},
      {CodeVersion::V5_0, "Ranger", 60000, shakeoutProblem()},
      {CodeVersion::V6_0, "Kraken", 96000, shakeoutProblem()},
      {CodeVersion::V7_2, "Jaguar", 223074, m8Problem()},
  };

  TextTable table({"Year", "Version", "Simulation", "Optimization",
                   "SCEC SUs (M)", "Paper Tflop/s", "Model Tflop/s"});
  double prevModel = 0.0;
  for (const auto& ms : milestones) {
    const auto& traits = traitsOf(ms.version);
    ScalingModel model(machineByName(ms.machine), ms.problem);
    const auto dims = vcluster::CartTopology::balancedDims(
        ms.cores, ms.problem.nx, ms.problem.ny, ms.problem.nz);
    const double tf = model.sustainedTflops(traits, dims);
    table.addRow({std::to_string(traits.year), traits.label,
                  traits.simulation, traits.optimization,
                  TextTable::num(traits.scecAllocMSu, 1),
                  traits.paperSustainedTflops > 0.0
                      ? TextTable::num(traits.paperSustainedTflops, 2)
                      : "-",
                  TextTable::num(tf, 2)});
    prevModel = tf;
  }
  table.print(std::cout);
  std::cout << "\nShape check: the modeled sustained rate must grow "
               "monotonically down the table (it does: final row "
            << TextTable::num(prevModel, 1)
            << " Tflop/s vs the paper's 220).\n";
  return 0;
}
