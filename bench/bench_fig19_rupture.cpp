// Fig 19 — the M8 source model from the spontaneous rupture simulation:
// (a) final slip, (b) horizontal peak slip rate, (c) rupture velocity
// normalized by local shear speed (sub-Rayleigh vs super-shear patches).
// Paper anchors: final slip up to 7.8 m (5.7 m at the surface), average
// 4.5 m, total moment 1.0e21 Nm (Mw 8.0), peak slip rates > 10 m/s at
// depth, rupture reaching the far end after 135 s, a large super-shear
// patch plus smaller ones.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "scenarios.hpp"
#include "util/table.hpp"

using namespace awp;
using namespace awp::bench;

int main() {
  std::cout << "=== Fig 19: mini-M8 spontaneous rupture source model "
               "===\n\n";
  // Mini wall-to-wall: 80 km x 14 km fault at 500 m (the paper: 545 km x
  // 16 km at 100 m).
  const auto fault = runMiniRupture(/*lengthKm=*/80.0, /*depthKm=*/14.0,
                                    /*hRupture=*/500.0, /*seed=*/20100545,
                                    /*steps=*/700, /*nranks=*/4);

  double maxSlip = 0.0, surfaceMaxSlip = 0.0, maxRate = 0.0,
         lastTime = 0.0;
  for (std::size_t k = 0; k < fault.nz; ++k)
    for (std::size_t i = 0; i < fault.nx; ++i) {
      const std::size_t n = i + fault.nx * k;
      maxSlip = std::max<double>(maxSlip, fault.finalSlip[n]);
      if (k == fault.nz - 1)
        surfaceMaxSlip =
            std::max<double>(surfaceMaxSlip, fault.finalSlip[n]);
      maxRate = std::max<double>(maxRate, fault.peakSlipRate[n]);
      if (fault.ruptureTime[n] >= 0.0f)
        lastTime = std::max<double>(lastTime, fault.ruptureTime[n]);
    }

  TextTable table({"Quantity", "Paper (545 km fault)",
                   "Mini-M8 (80 km fault)"});
  table.addRow({"Final slip max (m)", "7.8", TextTable::num(maxSlip, 2)});
  table.addRow({"Final slip at surface max (m)", "5.7",
                TextTable::num(surfaceMaxSlip, 2)});
  table.addRow({"Average slip (m)", "4.5",
                TextTable::num(fault.averageSlip(), 2)});
  table.addRow({"Moment magnitude Mw", "8.0",
                TextTable::num(fault.momentMagnitude(), 2)});
  table.addRow({"Peak slip rate (m/s)", ">10 in patches",
                TextTable::num(maxRate, 2)});
  table.addRow({"Rupture duration (s)", "135",
                TextTable::num(lastTime, 1)});
  const double vsAvg = 3200.0;
  table.addRow({"Super-shear node fraction", "patches (~20% of strike)",
                TextTable::pct(fault.superShearFraction(vsAvg), 1)});
  table.print(std::cout);

  // Rupture-velocity profile along strike at mid depth (Fig 19c's
  // sub-Rayleigh vs super-shear classification).
  const std::size_t kMid = fault.nz / 2;
  std::size_t superRun = 0, maxSuperRun = 0;
  for (std::size_t i = 1; i + 1 < fault.nx; ++i) {
    const float t0 = fault.ruptureTime[i - 1 + fault.nx * kMid];
    const float t1 = fault.ruptureTime[i + 1 + fault.nx * kMid];
    if (t0 < 0.0f || t1 < 0.0f || t1 == t0) {
      superRun = 0;
      continue;
    }
    const double vr = 2.0 * fault.h / std::abs(t1 - t0);
    if (vr > vsAvg) {
      ++superRun;
      maxSuperRun = std::max(maxSuperRun, superRun);
    } else {
      superRun = 0;
    }
  }
  std::cout << "\nLargest contiguous super-shear patch at mid depth: "
            << TextTable::num(maxSuperRun * fault.h / 1000.0, 1)
            << " km (paper: a ~100 km patch plus smaller ones on the "
               "545 km fault).\n"
            << "Scale note: slip scales with fault length (L/W scaling), "
               "so the mini fault's absolute slip sits below the paper's "
               "— the magnitude/area ratio and the shape of the slip and "
               "rupture-speed distributions are the comparables.\n";
  return 0;
}
