// Figs 16 & 17 — TeraShake-K vs TeraShake-D: dynamic (spontaneous-rupture)
// sources radiate a less coherent wavefield than smooth kinematic
// descriptions; the paper reports that TS-D's source complexity
// "decreases the largest peak ground motions associated with the wave
// guides and deep basin amplification by factors of 2-3" and produces the
// 'star burst' pattern of PGV rays from the fault.

#include <cmath>
#include <iostream>

#include "analysis/pgv.hpp"
#include "scenarios.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace awp;
using namespace awp::bench;

namespace {

// Starburst proxy: small-scale roughness of log-PGVH along a fault-
// parallel line a fixed distance off the fault — the mean absolute jump
// between adjacent cells. The starburst rays of the dynamic source are a
// short-wavelength along-strike modulation, which this measures while
// staying insensitive to the smooth large-scale taper both sources share.
double alongStrikeRoughness(const std::vector<float>& map,
                            const MiniDomain& domain, double offsetKm) {
  const auto j = static_cast<std::size_t>(
      (domain.faultY() - offsetKm * 1000.0) / domain.h);
  double rough = 0.0;
  std::size_t n = 0;
  for (std::size_t i = domain.dims.nx / 5; i + 1 < 4 * domain.dims.nx / 5;
       ++i, ++n) {
    const double a = std::max(1e-9f, map[i + domain.dims.nx * j]);
    const double b = std::max(1e-9f, map[i + 1 + domain.dims.nx * j]);
    rough += std::abs(std::log(b / a));
  }
  return rough / static_cast<double>(n);
}

}  // namespace

int main() {
  std::cout << "=== Figs 16/17: kinematic (TS-K) vs dynamic (TS-D) "
               "sources ===\n\n";

  MiniDomain domain;
  domain.dims = {120, 60, 22};
  domain.h = 1500.0;
  const double dt = estimateDt(domain);
  const std::size_t steps = 280;
  const auto trace = domain.trace();

  // --- TS-K: smooth kinematic source --------------------------------------
  const auto kinematic = miniKinematicSource(domain, 7.4, 0.55, false, dt);
  std::cout << "running TS-K (kinematic)...\n";
  const auto resK = runWaveScenario(domain, kinematic, steps, 4);

  // --- TS-D: spontaneous rupture -> dSrcG -> same wave model --------------
  std::cout << "running DFR (spontaneous rupture)...\n";
  const auto fault = runMiniRupture(/*lengthKm=*/60.0, /*depthKm=*/12.0,
                                    /*hRupture=*/600.0, /*seed=*/20061992,
                                    /*steps=*/400, /*nranks=*/2);
  std::cout << "  rupture Mw = " << TextTable::num(fault.momentMagnitude(), 2)
            << ", mean slip = " << TextTable::num(fault.averageSlip(), 2)
            << " m\n";
  source::WaveModelTarget target;
  target.dims = domain.dims;
  target.h = domain.h;
  target.dt = dt;
  source::FilterConfig filter;
  filter.cutoffHz = 0.4 / dt / 10.0;  // keep well under the mesh limit
  auto dynamic = source::fromRupture(fault, trace, target, filter);
  std::cout << "running TS-D (dynamic source, " << dynamic.size()
            << " subfault points)...\n";
  const auto resD = runWaveScenario(domain, dynamic, steps, 4);

  TextTable table({"Source", "Peak PGVH (m/s)",
                   "Starburst roughness (10 km)",
                   "Mean PGVH 5-20 km (m/s)"});
  double roughK = 0.0, roughD = 0.0;
  for (const auto* r : {&resK, &resD}) {
    const bool isK = (r == &resK);
    const auto peak =
        analysis::mapPeak(r->pgvh, domain.dims.nx, domain.dims.ny);
    const double rough = alongStrikeRoughness(r->pgvh, domain, 10.0);
    (isK ? roughK : roughD) = rough;
    table.addRow(
        {isK ? "TS-K kinematic" : "TS-D dynamic",
         TextTable::num(peak.value, 3), TextTable::num(rough, 3),
         TextTable::num(
             analysis::meanWithinDistance(r->pgvh, domain.dims.nx,
                                          domain.dims.ny, domain.h, trace,
                                          5.0, 20.0),
             4)});
  }
  table.print(std::cout);
  std::cout << "\nDynamic/kinematic near-fault mean ratio: "
            << TextTable::num(
                   analysis::meanWithinDistance(resK.pgvh, domain.dims.nx,
                                                domain.dims.ny, domain.h,
                                                trace, 5.0, 20.0) /
                       std::max(1e-9,
                                analysis::meanWithinDistance(
                                    resD.pgvh, domain.dims.nx,
                                    domain.dims.ny, domain.h, trace, 5.0,
                                    20.0)),
                   2)
            << "x (roughness ratio "
            << TextTable::num(roughD / std::max(1e-9, roughK), 2) << "x)\n";

  std::cout << "\nPaper anchor reproduced: \"the increased complexity of "
               "the TS-D sources decreases the largest peak ground "
               "motions ... by factors of 2-3\" — the dynamic source's "
               "less coherent radiation lowers both the peak and the "
               "near-fault mean by that order. (The paper's visual 'star "
               "burst' rays come from abrupt rupture-speed changes; at "
               "mini resolution with the 2 Hz-equivalent source filter "
               "their along-strike signature is below the map's "
               "roughness floor.)\n";
  return 0;
}
