// §IV.C — computation/communication overlap: per-component interleaving
// of velocity/stress updates with their exchanges. Paper anchors: 11%
// (PGI) / 21% (Cray) elapsed-time gain on 65,610 XT5 cores; the gain is
// limited by boundary/interior load skew, which cache blocking reduces.
// On the 1-core virtual cluster the interleaving is semantics-preserving
// but not truly concurrent, so the wall-clock effect is modeled; the
// bench verifies result-equivalence for real and reports the model.

#include <iostream>

#include "core/solver.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/model.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "vcluster/cluster.hpp"

using namespace awp;

int main() {
  std::cout << "=== Computation/communication overlap (Section IV.C) "
               "===\n\n";

  // --- Real equivalence check ----------------------------------------------
  auto runMini = [&](bool overlap) {
    std::vector<float> field;
    vcluster::ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
      vcluster::CartTopology topo(vcluster::Dims3{2, 2, 1});
      core::SolverConfig config;
      config.globalDims = {48, 48, 24};
      config.h = 500.0;
      config.overlap = overlap;
      core::WaveSolver solver(comm, topo, config,
                              vmodel::Material{5000.0f, 2900.0f, 2700.0f});
      solver.addSource(core::explosionPointSource(
          24, 24, 12,
          core::rickerWavelet(2.0, 0.5, solver.config().dt, 80, 1e15)));
      solver.run(80);
      if (comm.rank() == 0) {
        const auto& u = solver.grid().u;
        field.assign(u.data(), u.data() + u.size());
      }
    });
    return field;
  };
  const auto plain = runMini(false);
  const auto overlapped = runMini(true);
  std::vector<double> a(plain.begin(), plain.end());
  std::vector<double> b(overlapped.begin(), overlapped.end());
  std::cout << "Interleaved vs staged results, relative L2 difference: "
            << TextTable::sci(l2Misfit(b, a), 2)
            << " (must be ~float epsilon — overlap only reorders the "
               "schedule)\n\n";

  // --- Modeled gain at the paper's scale -----------------------------------
  perfmodel::ScalingModel model(perfmodel::machineByName("Jaguar"),
                                perfmodel::m8Problem());
  TextTable table({"Cores", "t/step staged (s)", "t/step overlap (s)",
                   "gain"});
  for (int cores : {65610, 131220, 223074}) {
    const auto dims = vcluster::CartTopology::balancedDims(
        cores, 20250, 10125, 2125);
    auto base = perfmodel::traitsOf(perfmodel::CodeVersion::V6_0);
    auto over = base;
    over.overlap = true;
    const double ts = model.perStep(base, dims).total();
    const double to = model.perStep(over, dims).total();
    table.addRow({std::to_string(cores), TextTable::num(ts, 4),
                  TextTable::num(to, 4),
                  TextTable::pct(1.0 - to / ts, 1)});
  }
  table.print(std::cout);
  std::cout << "\nPaper anchor: 11-21% elapsed-time gain at 65,610 cores; "
               "the gain shrinks toward full machine scale where "
               "boundary/interior skew dominates (why v7.2 kept cache "
               "blocking but dropped overlap).\n";
  return 0;
}
