// Table 3 / §VI — F3DT: "an I/O intensive 3D waveform tomography to
// iteratively improve the CVM4 in southern California. Here, AWP-ODC is
// used to calculate sensitivity kernels accounting for the full physics
// of 3D wave propagation, generating updated velocity models with
// substantially better fit to data as compared to the starting models."
//
// Miniature: synthetic "observed" waveforms are generated in a true model
// (basin of depth D* = 3.5 km); candidate models sweep the basin depth;
// the full-physics forward solver evaluates each candidate's waveform
// misfit (the aVal L2 metric) against the observations. The updated model
// — the misfit minimizer — must recover the true depth and fit the data
// far better than the starting model.

#include <algorithm>
#include <iostream>

#include "analysis/aval.hpp"
#include "core/solver.hpp"
#include "mesh/partitioner.hpp"
#include "util/table.hpp"
#include "vmodel/cvm.hpp"
#include "vcluster/cluster.hpp"

using namespace awp;

namespace {

const grid::GridDims kDims{56, 48, 22};
constexpr double kH = 800.0;

std::vector<core::SeismogramTrace> forward(double basinDepth) {
  const vmodel::LayeredModel background(
      {{0.0, 2400.0}, {4000.0, 3000.0}, {16000.0, 3500.0}});
  std::vector<vmodel::Basin> basins = {
      {"target", 0.55 * kDims.nx * kH, 0.5 * kDims.ny * kH, 9e3, 8e3,
       basinDepth, 900.0}};
  const vmodel::CommunityVelocityModel cvm(background, std::move(basins),
                                           800.0);

  std::vector<core::SeismogramTrace> traces;
  vcluster::ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
    vcluster::CartTopology topo(vcluster::Dims3{2, 2, 1});
    const mesh::MeshSpec spec{kDims.nx, kDims.ny, kDims.nz, kH, 0, 0};
    mesh::MeshBlock block;
    block.spec = mesh::subdomainFor(topo, spec, comm.rank());
    block.points.resize(block.spec.pointCount());
    for (std::size_t k = 0; k < block.spec.z.count(); ++k)
      for (std::size_t j = 0; j < block.spec.y.count(); ++j)
        for (std::size_t i = 0; i < block.spec.x.count(); ++i)
          block.at(i, j, k) = cvm.sample((block.spec.x.begin + i) * kH,
                                         (block.spec.y.begin + j) * kH,
                                         (block.spec.z.begin + k) * kH);
    core::SolverConfig config;
    config.globalDims = kDims;
    config.h = kH;
    config.dt = 0.45 * kH / 7000.0;  // shared dt across all models
    core::WaveSolver real(comm, topo, config, block);  // full 3D model
    real.addSource(core::explosionPointSource(
        10, 24, kDims.nz - 10,
        core::rickerWavelet(0.5, 2.5, config.dt, 250, 1e16)));
    real.addReceiver("basin", 31, 24);
    real.addReceiver("edge", 40, 33);
    real.addReceiver("rock", 20, 10);
    real.run(250);
    auto gathered = real.receivers().gather(comm);
    if (comm.rank() == 0) traces = std::move(gathered);
  });
  return traces;
}

}  // namespace

int main() {
  std::cout << "=== F3DT miniature: waveform-fit velocity-model update "
               "===\n\n";
  const double trueDepth = 3500.0;
  std::cout << "generating 'observed' data in the true model (basin depth "
            << trueDepth << " m)...\n";
  const auto observed = forward(trueDepth);

  TextTable table({"Candidate basin depth (m)", "Waveform misfit (L2)"});
  double bestDepth = 0.0, bestMisfit = 1e18, startMisfit = 0.0;
  // The truth (3500 m) is deliberately off the search grid, as in a real
  // inversion where the update approximates the target structure.
  const std::vector<double> candidates = {1500.0, 2600.0, 3200.0, 3900.0,
                                          5000.0};
  for (double depth : candidates) {
    const auto synthetic = forward(depth);
    const auto result = analysis::acceptanceTest(synthetic, observed, 1e9);
    double misfit = 0.0;
    for (double m : result.perTraceMisfit) misfit += m;
    if (depth == candidates.front()) startMisfit = misfit;
    if (misfit < bestMisfit) {
      bestMisfit = misfit;
      bestDepth = depth;
    }
    table.addRow({TextTable::num(depth, 0), TextTable::num(misfit, 4)});
  }
  table.print(std::cout);

  std::cout << "\nUpdated model: basin depth " << bestDepth
            << " m (true: " << trueDepth << " m); misfit improved "
            << TextTable::num(startMisfit / std::max(1e-12, bestMisfit), 1)
            << "x over the starting model.\nPaper anchor: F3DT's "
               "full-physics kernels produce 'updated velocity models "
               "with substantial better fit to data as compared to the "
               "starting models'.\n";
  return std::abs(bestDepth - trueDepth) <= 700.0 ? 0 : 1;
}
