// Table 3 — SCEC milestone simulations based on AWP-ODC, replayed as
// laptop-scale miniatures: TeraShake-K (kinematic), TeraShake-D /
// ShakeOut-D (dynamic-source), the W2W and M8 wall-to-wall runs (two-step
// dynamic source + wave propagation). Each row reports the mini-run's
// configuration and headline output next to the paper's.

#include <iostream>

#include "analysis/pgv.hpp"
#include "scenarios.hpp"
#include "util/table.hpp"

using namespace awp;
using namespace awp::bench;

int main() {
  std::cout << "=== Table 3: SCEC milestone simulations (mini replicas) "
               "===\n\n";

  TextTable table({"Simulation", "Source type", "Paper scale",
                   "Mini grid", "Mini Mw", "Peak PGVH (m/s)"});

  MiniDomain domain;
  domain.dims = {96, 48, 20};
  domain.h = 2000.0;
  const double dt = estimateDt(domain);

  // --- TeraShake-K: kinematic Mw 7.7, 0.5 Hz -------------------------------
  {
    const auto sources = miniKinematicSource(domain, 7.7, 0.4, false, dt);
    const auto r = runWaveScenario(domain, sources, 200, 4);
    const auto peak =
        analysis::mapPeak(r.pgvh, domain.dims.nx, domain.dims.ny);
    table.addRow({"TeraShake-K (2004)", "kinematic (Denali-like)",
                  "1.8e9 pts, 0.5 Hz", "96x48x20", "7.70",
                  TextTable::num(peak.value, 2)});
  }

  // --- TeraShake-D / ShakeOut-D: dynamic source ----------------------------
  {
    const auto fault = runMiniRupture(40.0, 12.0, 600.0, 1992, 320, 2);
    source::WaveModelTarget target{domain.dims, domain.h, dt};
    source::FilterConfig filter;
    filter.cutoffHz = 0.4 / dt / 10.0;
    const auto sources =
        source::fromRupture(fault, domain.trace(), target, filter);
    const auto r = runWaveScenario(domain, sources, 200, 4);
    const auto peak =
        analysis::mapPeak(r.pgvh, domain.dims.nx, domain.dims.ny);
    table.addRow({"TeraShake-D / ShakeOut-D", "SGSN-mode dynamic",
                  "14.4e9 pts, 1.0 Hz", "96x48x20",
                  TextTable::num(fault.momentMagnitude(), 2),
                  TextTable::num(peak.value, 2)});
  }

  // --- W2W / M8: wall-to-wall two-step ------------------------------------
  {
    const auto fault = runMiniRupture(70.0, 14.0, 700.0, 20100545, 400, 2);
    source::WaveModelTarget target{domain.dims, domain.h, dt};
    source::FilterConfig filter;
    filter.cutoffHz = 0.4 / dt / 10.0;
    const auto sources = source::fromRupture(
        fault, domain.trace(0.1, 3000.0), target, filter);
    const auto r = runWaveScenario(domain, sources, 220, 4);
    const auto peak =
        analysis::mapPeak(r.pgvh, domain.dims.nx, domain.dims.ny);
    table.addRow({"W2W / M8 (2009-2010)", "wall-to-wall dynamic",
                  "436e9 pts, 2.0 Hz, 223K cores", "96x48x20",
                  TextTable::num(fault.momentMagnitude(), 2),
                  TextTable::num(peak.value, 2)});
  }

  // --- Pacific NW megathrust: long-period, larger magnitude ---------------
  {
    const auto sources = miniKinematicSource(domain, 8.3, 0.8, false, dt);
    const auto r = runWaveScenario(domain, sources, 200, 4);
    const auto peak =
        analysis::mapPeak(r.pgvh, domain.dims.nx, domain.dims.ny);
    table.addRow({"PNW MegaThrust (2007)", "kinematic megathrust",
                  "Mw 8.5-9.0, 0-0.5 Hz", "96x48x20", "8.30",
                  TextTable::num(peak.value, 2)});
  }

  table.print(std::cout);
  std::cout << "\nShape check: the dynamic-source rows carry the "
               "physically constrained magnitudes of their spontaneous "
               "ruptures; peak motions grow with magnitude and source "
               "complexity as in §VI.\n";
  return 0;
}
