#include "scenarios.hpp"

#include <algorithm>

#include "mesh/generator.hpp"
#include "mesh/partitioner.hpp"
#include "util/timer.hpp"
#include "vcluster/cluster.hpp"

namespace awp::bench {

source::FaultTrace MiniDomain::trace(double marginFraction,
                                     double bend) const {
  const double x0 = marginFraction * lx();
  const double x1 = (1.0 - marginFraction) * lx();
  if (bend <= 0.0) return source::FaultTrace::straight(x0, x1, faultY());
  return source::FaultTrace::bent(x0, faultY(), x1, faultY(), 12, bend);
}

double estimateDt(const MiniDomain& domain) {
  // CFL with the fastest background material.
  const auto m = domain.cvm().sample(0.0, 0.0, domain.dims.nz * domain.h);
  const double vp = m.vp;
  return 0.45 * domain.h / vp;
}

ScenarioResult runWaveScenario(const MiniDomain& domain,
                               std::vector<core::MomentRateSource> sources,
                               std::size_t steps, int nranks,
                               const core::KernelOptions& kernels,
                               bool attenuation,
                               const std::vector<vmodel::Site>& extraSites) {
  ScenarioResult result;
  result.gridPoints = domain.dims.count();
  const auto cvm = domain.cvm();
  Stopwatch wall;

  vcluster::ThreadCluster::run(nranks, [&](vcluster::Communicator& comm) {
    const auto dims = vcluster::CartTopology::balancedDims(
        nranks, domain.dims.nx, domain.dims.ny, domain.dims.nz);
    vcluster::CartTopology topo(dims);

    // Sample this rank's mesh block directly from the CVM.
    const mesh::MeshSpec spec{domain.dims.nx, domain.dims.ny,
                              domain.dims.nz, domain.h, 0.0, 0.0};
    mesh::MeshBlock block;
    block.spec = mesh::subdomainFor(topo, spec, comm.rank());
    block.points.resize(block.spec.pointCount());
    for (std::size_t k = 0; k < block.spec.z.count(); ++k) {
      const double depth =
          static_cast<double>(block.spec.z.begin + k) * domain.h;
      for (std::size_t j = 0; j < block.spec.y.count(); ++j)
        for (std::size_t i = 0; i < block.spec.x.count(); ++i)
          block.at(i, j, k) = cvm.sample(
              static_cast<double>(block.spec.x.begin + i) * domain.h,
              static_cast<double>(block.spec.y.begin + j) * domain.h,
              depth);
    }

    core::SolverConfig config;
    config.globalDims = domain.dims;
    config.h = domain.h;
    config.kernels = kernels;
    config.attenuation.enabled = attenuation;
    config.attenuation.fMax = 0.5 / estimateDt(domain) / 10.0;
    config.absorbing = core::AbsorbingType::Sponge;
    config.spongeWidth = 10;

    core::WaveSolver solver(comm, topo, config, block);
    for (auto& s : sources) solver.addSource(s);
    for (const auto& site : cvm.sites())
      solver.addReceiver(site.name,
                         static_cast<std::size_t>(site.x / domain.h),
                         static_cast<std::size_t>(site.y / domain.h));
    for (const auto& site : extraSites)
      solver.addReceiver(site.name,
                         static_cast<std::size_t>(site.x / domain.h),
                         static_cast<std::size_t>(site.y / domain.h));
    solver.run(steps);

    auto pgvh = solver.surface().gatherPgvh(comm, topo);
    auto pgv = solver.surface().gatherPgv(comm, topo);
    auto traces = solver.receivers().gather(comm);
    if (comm.rank() == 0) {
      result.pgvh = std::move(pgvh);
      result.pgv = std::move(pgv);
      result.traces = std::move(traces);
      result.dt = solver.config().dt;
      result.steps = solver.currentStep();
      result.phases = solver.phases();
    }
  });
  result.wallSeconds = wall.seconds();
  return result;
}

std::vector<core::MomentRateSource> miniKinematicSource(
    const MiniDomain& domain, double mw, double faultLengthFraction,
    bool reverseDirection, double dt, double traceMargin) {
  source::KinematicScenario sc;
  const auto trace = domain.trace(traceMargin);
  sc.faultLength = faultLengthFraction * trace.length();
  sc.faultDepth = std::min(16e3, 0.6 * domain.dims.nz * domain.h);
  sc.targetMw = mw;
  sc.reverseDirection = reverseDirection;
  sc.riseTime = 3.0;
  source::WaveModelTarget target;
  target.dims = domain.dims;
  target.h = domain.h;
  target.dt = dt;
  return source::kinematicSource(sc, trace, target);
}

rupture::FaultHistory runMiniRupture(double lengthKm, double depthKm,
                                     double hRupture, std::uint64_t seed,
                                     std::size_t steps, int nranks,
                                     double nucAlongStrikeFraction) {
  rupture::RuptureConfig config;
  const auto nx = static_cast<std::size_t>(lengthKm * 1000.0 / hRupture);
  const auto nzFault = static_cast<std::size_t>(depthKm * 1000.0 / hRupture);
  // Volume: fault plus absorbing margins on every side.
  const std::size_t margin = 14;
  config.globalDims = {nx + 2 * margin, 2 * margin + 2, nzFault + margin};
  config.h = hRupture;
  config.faultJ = margin;
  config.fi0 = margin;
  config.fi1 = margin + nx;
  // The fault reaches from depth `depthKm` up to one row below the free
  // surface.
  config.fk1 = config.globalDims.nz - 1;
  config.fk0 = config.fk1 - nzFault;
  config.spongeWidth = 10;
  // Keep the slip-weakening cohesive zone Λ = μ dc / (τs - τd) resolved at
  // the mini grid's spacing (the paper's 0.3 m at h = 100 m gives
  // Λ ≈ 6-7 h; scale dc ∝ h to preserve that). Under-resolving Λ drives
  // spurious super-shear transitions everywhere.
  config.friction.dc = 1.5e-3 * hRupture;
  config.friction.dcSurface = 3.0 * config.friction.dc;
  config.stress.seed = seed;
  config.stress.corrX = 0.1 * lengthKm * 1000.0;  // scaled 50 km / 545 km
  config.stress.corrZ = 0.3 * depthKm * 1000.0;
  config.stress.nucX = nucAlongStrikeFraction * lengthKm * 1000.0;
  config.stress.nucZ = 0.6 * depthKm * 1000.0;
  config.stress.nucRadius = std::max(8.0 * hRupture, 4000.0);
  config.stress.nucExcess = 0.15;
  config.timeDecimation = 2;
  config.slipRateThreshold = 0.01;

  rupture::FaultHistory out;
  vcluster::ThreadCluster::run(nranks, [&](vcluster::Communicator& comm) {
    const auto dims = vcluster::CartTopology::balancedDims(
        nranks, config.globalDims.nx, config.globalDims.ny,
        config.globalDims.nz);
    vcluster::CartTopology topo(dims);
    const auto model = vmodel::LayeredModel::socalBackground();
    rupture::DynamicRuptureSolver solver(comm, topo, config, model);
    solver.run(steps);
    auto h = solver.gather();
    if (comm.rank() == 0) out = std::move(h);
  });
  return out;
}

}  // namespace awp::bench
