// Figs 20–21 — the M8 wave-propagation run: PGVH map over the region with
// seismograms at selected sites. Paper anchors to reproduce in shape:
//   * largest near-fault PGVHs immediately on the fault trace;
//   * San Bernardino (basin right on the fault) is the hardest-hit site
//     (paper: PGVH ~ 6 m/s, dominated by 2-4 s basin response);
//   * downtown LA sees moderate motions (~0.4 m/s) because the NW-SE
//     rupture is largely transverse to the waveguides;
//   * basin sites exceed comparable-distance rock sites.

#include <iostream>

#include "analysis/aval.hpp"
#include "analysis/pgv.hpp"
#include "scenarios.hpp"
#include "util/fft.hpp"
#include "util/table.hpp"

using namespace awp;
using namespace awp::bench;

int main() {
  std::cout << "=== Figs 20/21: mini-M8 wave propagation, PGVH and site "
               "seismograms ===\n\n";

  MiniDomain domain;
  domain.dims = {144, 72, 24};
  domain.h = 1500.0;
  const double dt = estimateDt(domain);
  const std::size_t steps = 340;
  const auto trace = domain.trace(0.12, 4000.0);  // gently bent SAF analog

  // Two-step method: dynamic rupture, then insertion onto the bent trace.
  std::cout << "step 1: spontaneous rupture (dSrcG source)...\n";
  const auto fault = runMiniRupture(/*lengthKm=*/90.0, /*depthKm=*/14.0,
                                    /*hRupture=*/600.0, /*seed=*/20100545,
                                    /*steps=*/520, /*nranks=*/2);
  std::cout << "  source Mw = " << TextTable::num(fault.momentMagnitude(), 2)
            << "\n";
  source::WaveModelTarget target{domain.dims, domain.h, dt};
  source::FilterConfig filter;
  filter.cutoffHz = 0.4 / dt / 10.0;
  const auto sources = source::fromRupture(fault, trace, target, filter);

  std::cout << "step 2: wave propagation (" << sources.size()
            << " subfault points, " << steps << " steps)...\n\n";
  const auto result = runWaveScenario(domain, sources, steps, 4);

  // --- Site seismogram summary (Fig 21's annotated traces) ---------------
  TextTable sites({"Site", "PGVH (cm/s)", "Dominant period (s)",
                   "Distance to fault (km)"});
  double sanBernardino = 0.0, downtownLa = 0.0;
  for (const auto& t : result.traces) {
    const double pgvh = analysis::tracePgv(t, /*horizontalOnly=*/true);
    // Dominant period from the horizontal amplitude spectrum.
    std::vector<double> h(t.u.size());
    for (std::size_t n = 0; n < h.size(); ++n)
      h[n] = std::hypot(t.u[n], t.v[n]);
    const auto spec = amplitudeSpectrum(h, result.dt);
    // Search above 0.1 Hz: the lowest bins carry the near-field static
    // offset, not the shaking of interest (the paper's SBB response is at
    // 2-4 s periods).
    std::size_t peak = 0;
    for (std::size_t k = 1; k < spec.amplitude.size(); ++k) {
      if (spec.frequency[k] < 0.1) continue;
      if (peak == 0 || spec.amplitude[k] > spec.amplitude[peak]) peak = k;
    }
    const double period =
        spec.frequency[peak] > 0.0 ? 1.0 / spec.frequency[peak] : 0.0;
    const double dist = analysis::distanceToTrace(
        t.gi * domain.h, t.gj * domain.h, trace);
    if (t.name == "San Bernardino") sanBernardino = pgvh;
    if (t.name == "Downtown LA") downtownLa = pgvh;
    sites.addRow({t.name, TextTable::num(pgvh * 100.0, 1),
                  TextTable::num(period, 2),
                  TextTable::num(dist / 1000.0, 1)});
  }
  sites.print(std::cout);

  // --- Map summary ---------------------------------------------------------
  const auto peak =
      analysis::mapPeak(result.pgvh, domain.dims.nx, domain.dims.ny);
  const double peakDist = analysis::distanceToTrace(
      peak.i * domain.h, peak.j * domain.h, trace);
  std::cout << "\nMap peak PGVH: " << TextTable::num(peak.value, 2)
            << " m/s at " << TextTable::num(peakDist / 1000.0, 1)
            << " km from the fault trace (paper: largest values "
               "immediately on the trace, locally exceeding 10 m/s).\n";
  std::cout << "San Bernardino / downtown LA PGVH ratio: "
            << TextTable::num(sanBernardino / std::max(1e-9, downtownLa), 1)
            << "x (paper: ~6 m/s vs ~0.4 m/s — San Bernardino hardest "
               "hit via fault proximity + basin + directivity).\n";
  return 0;
}
