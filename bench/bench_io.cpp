// §III.E / §IV.E — the I/O stack: output aggregation (49% -> <2%
// overhead), the concurrent-open throttle against MDS contention (20 GB/s
// at <=650 opens on Jaguar), striping policy, and the mesh partitioning
// models' real throughput at laptop scale.

#include <filesystem>
#include <iostream>
#include <unistd.h>

#include "core/solver.hpp"
#include "io/contention.hpp"
#include "mesh/generator.hpp"
#include "mesh/partitioner.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "vcluster/cluster.hpp"

using namespace awp;

namespace {

// Run a solver with surface output at the given aggregation depth and
// return (wall seconds, output-phase seconds, flush count).
struct IoRun {
  double wall = 0.0;
  double outputSeconds = 0.0;
  double totalSeconds = 0.0;
};

IoRun runWithAggregation(const std::string& file, int flushEvery) {
  IoRun out;
  Stopwatch wall;
  vcluster::ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
    vcluster::CartTopology topo(vcluster::Dims3{2, 2, 1});
    core::SolverConfig config;
    config.globalDims = {64, 64, 24};
    config.h = 500.0;
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5000.0f, 2900.0f, 2700.0f});
    io::SharedFile shared(file, io::SharedFile::Mode::Write);
    core::SurfaceOutputConfig surf;
    surf.file = &shared;
    surf.sampleEverySteps = 1;  // heavy output to expose the overhead
    surf.spatialDecimation = 1;
    surf.flushEverySamples = flushEvery;
    solver.attachSurfaceOutput(surf);
    solver.addSource(core::explosionPointSource(
        32, 32, 12,
        core::rickerWavelet(2.0, 0.5, solver.config().dt, 100, 1e15)));
    solver.run(100);
    if (comm.rank() == 0) {
      out.outputSeconds = solver.phases().get(Phase::Output);
      out.totalSeconds = solver.phases().total();
    }
  });
  out.wall = wall.seconds();
  return out;
}

}  // namespace

int main() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("awp_bench_io_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  std::cout << "=== I/O stack (Sections III.E, IV.E) ===\n\n";

  // --- Output aggregation ---------------------------------------------------
  std::cout << "Output aggregation (real runs, per-step surface dump):\n";
  TextTable agg({"Aggregation", "Output share of solver time",
                 "Output seconds"});
  const auto unbuffered = runWithAggregation((dir / "u.bin").string(), 1);
  const auto buffered = runWithAggregation((dir / "b.bin").string(), 50);
  agg.addRow({"flush every sample (pre-tuning)",
              TextTable::pct(unbuffered.outputSeconds /
                                 unbuffered.totalSeconds,
                             1),
              TextTable::num(unbuffered.outputSeconds, 3)});
  agg.addRow({"aggregate 50 samples (tuned)",
              TextTable::pct(buffered.outputSeconds / buffered.totalSeconds,
                             1),
              TextTable::num(buffered.outputSeconds, 3)});
  agg.print(std::cout);
  std::cout << "Paper anchor: aggregation reduced I/O overhead from 49% "
               "to <2% of wall clock (at petascale, where each flush "
               "costs far more than here).\n\n";

  // --- MDS contention / open throttle ---------------------------------------
  std::cout << "Concurrent-open throttle (Jaguar Lustre model):\n";
  TextTable cont({"Concurrent writers", "Aggregate GB/s"});
  const auto fs = io::FileSystemModel::jaguarLustre();
  for (int w : {10, 100, 650, 2000, 20000, 223074}) {
    cont.addRow({std::to_string(w),
                 TextTable::num(fs.aggregateBandwidth(w) / 1e9, 2)});
  }
  cont.print(std::cout);
  std::cout << "Best writer count within 223K clients: "
            << fs.bestWriterCount(223074)
            << " (paper limited synchronous opens to 650 of 670 OSTs and "
               "reached ~20 GB/s; unthrottled 100K+ opens collapsed on "
               "BG/P).\n\n";

  // --- Striping policy -------------------------------------------------------
  std::cout << "Striping policy (lfs setstripe classes, §IV.E):\n";
  TextTable stripes({"File class", "Stripe count", "Stripe size (MiB)"});
  for (auto [cls, name] :
       {std::pair{io::FileClass::LargeSharedInput, "large shared input"},
        {io::FileClass::PrePartitioned, "pre-partitioned/checkpoint"},
        {io::FileClass::SimulationOutput, "simulation output"}}) {
    const auto s = io::stripePolicy(cls, fs);
    stripes.addRow({name, std::to_string(s.stripeCount),
                    TextTable::num(s.stripeSizeBytes / 1048576.0, 0)});
  }
  stripes.print(std::cout);

  // --- Mesh partitioning models ----------------------------------------------
  std::cout << "\nPetaMeshP models (real 96x64x32 mesh, 8 ranks):\n";
  const mesh::MeshSpec spec{96, 64, 32, 500.0, 0.0, 0.0};
  const auto cvm =
      vmodel::CommunityVelocityModel::socal(48e3, 32e3, 18e3);
  const std::string meshPath = (dir / "mesh.bin").string();
  vcluster::ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
    mesh::generateMesh(comm, cvm, spec, meshPath);
  });

  vcluster::CartTopology topo(vcluster::Dims3{2, 2, 2});
  TextTable part({"Model", "Seconds", "MB moved"});
  const double meshMb =
      static_cast<double>(mesh::meshFileSize(spec)) / 1048576.0;
  {
    Stopwatch w;
    vcluster::ThreadCluster::run(8, [&](vcluster::Communicator& comm) {
      mesh::prePartitionMesh(comm, meshPath, topo, (dir / "pp").string());
      mesh::readPrePartitioned((dir / "pp").string(), comm.rank());
    });
    part.addRow({"pre-partitioned (serial I/O)", TextTable::num(w.seconds(), 3),
                 TextTable::num(2.0 * meshMb, 1)});
  }
  {
    Stopwatch w;
    vcluster::ThreadCluster::run(8, [&](vcluster::Communicator& comm) {
      mesh::readAndRedistribute(comm, meshPath, topo, 4, 2);
    });
    part.addRow({"read+redistribute (MPI-IO model)",
                 TextTable::num(w.seconds(), 3),
                 TextTable::num(meshMb, 1)});
  }
  {
    Stopwatch w;
    vcluster::ThreadCluster::run(8, [&](vcluster::Communicator& comm) {
      mesh::readDirect(meshPath, topo, comm.rank());
    });
    part.addRow({"direct strided reads", TextTable::num(w.seconds(), 3),
                 TextTable::num(meshMb, 1)});
  }
  part.print(std::cout);
  std::cout << "\nPaper anchor: the pre-partitioned path read M8's "
               "223,074 files in 4 minutes at 20 GB/s; the MPI-IO "
               "read+redistribute model is the contention-safe "
               "alternative.\n";

  std::filesystem::remove_all(dir);
  return 0;
}
