// Earthquake-cycle benchmark: stiffness-kernel apply throughput (the
// registered hot path of the interseismic loop), adaptive-stepping rate on
// a production-sized fault, and the end-to-end seeded sequence — detect a
// small event catalog and bridge it through a standalone ScenarioService
// into completed rupture scenarios. Records BENCH_cycle.json next to the
// working directory so CI keeps a trajectory of the cycle engine.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <unistd.h>
#include <vector>

#include "cycle/bridge.hpp"
#include "cycle/catalog.hpp"
#include "cycle/kernel.hpp"
#include "cycle/solver.hpp"
#include "sched/service.hpp"
#include "util/table.hpp"

using namespace awp;

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// The catalog-producing sequence: cell-scale events on a small rough
// fault, same regime the cycle tests pin down (kc above the single-cell
// stiffness, heterogeneity staggering nucleation).
cycle::CycleConfig sequenceConfig() {
  cycle::CycleConfig config;
  config.nx = 24;
  config.nz = 8;
  config.cell = 500.0;
  config.friction.L = 0.005;
  config.interaction = 0.05;
  config.stencilRadius = 3;
  config.vpl = 1.0e-8;
  config.heterogeneity = 0.3;
  config.corrX = 4000.0;
  config.corrZ = 2000.0;
  config.seed = 11;
  config.years = 40.0;
  config.maxEvents = 3;
  return config;
}

}  // namespace

int main() {
  std::cout << "=== Earthquake-cycle engine ===\n\n";

  // --- stiffness-kernel apply throughput ----------------------------------
  // The per-step hot path: τ̇ = K·(V − Vpl) over a 96x32 fault with the
  // default radius-8 stencil (~200 taps plus the self term per node).
  const std::size_t knx = 96, knz = 32;
  cycle::StiffnessKernel kernel({knx, knz, 500.0, 30.0e9, 0.1, 0.25, 8});
  std::vector<double> v(knx * knz, 1.0e-9), tauRate(knx * knz, 0.0);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] += 1.0e-10 * static_cast<double>(i % 7);

  const int applies = 4000;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < applies; ++i) kernel.stressingRate(v, 1.0e-9, tauRate);
  const double applySeconds = secondsSince(t0);
  const double appliesPerSecond = applies / applySeconds;
  const double nodeUpdatesPerSecond =
      static_cast<double>(applies) * static_cast<double>(v.size()) /
      applySeconds;

  TextTable kt({"Kernel (96x32, radius 8)", "Rate"});
  kt.addRow({"stressing-rate applies",
             TextTable::num(appliesPerSecond, 0) + " /s"});
  kt.addRow({"node updates", TextTable::num(nodeUpdatesPerSecond / 1e6, 1) +
                                 " M/s"});
  kt.print(std::cout);
  std::cout << "\n";

  // --- adaptive stepping on a production-sized fault ----------------------
  // Fixed step count on the default 96x32 configuration: each step is two
  // kernel applies plus the per-node Newton strength solves.
  cycle::CycleConfig big;  // defaults: 96x32, VS rim, heterogeneity 0.3
  big.seed = 7;
  cycle::CycleSolver stepper(big);
  const std::uint64_t stepTarget = 3000;
  t0 = std::chrono::steady_clock::now();
  while (stepper.summary().steps < stepTarget) stepper.step();
  const double stepSeconds = secondsSince(t0);
  const double stepsPerSecond = static_cast<double>(stepTarget) / stepSeconds;
  const double simulatedYears =
      stepper.time() / (365.25 * 86400.0);

  TextTable st({"Stepping (96x32)", "Value"});
  st.addRow({"adaptive steps", TextTable::num(stepsPerSecond, 0) + " /s"});
  st.addRow({"simulated span", TextTable::num(simulatedYears, 1) + " yr"});
  st.addRow({"peak slip rate",
             TextTable::num(stepper.summary().peakSlipRate, 3) + " m/s"});
  st.print(std::cout);
  std::cout << "\n";

  // --- seeded sequence + catalog through a ScenarioService ----------------
  const cycle::CycleConfig seq = sequenceConfig();
  t0 = std::chrono::steady_clock::now();
  cycle::CycleSolver solver(seq);
  const cycle::CycleRunSummary summary = solver.run();
  const double sequenceSeconds = secondsSince(t0);

  const auto work = std::filesystem::temp_directory_path() /
                    ("awp_bench_cycle_" + std::to_string(::getpid()));
  std::filesystem::create_directories(work);
  sched::ServiceConfig cfg;
  cfg.coreBudget = 4;
  cfg.workDir = work.string();
  sched::ScenarioService service(cfg);

  cycle::BridgeConfig bridge;
  bridge.h = 600.0;
  bridge.steps = 12;
  bridge.nranks = 2;
  t0 = std::chrono::steady_clock::now();
  cycle::CycleCatalog catalog =
      cycle::submitCatalog(service, seq, summary, solver.events(), bridge);
  catalog.wallSeconds = secondsSince(t0);
  service.shutdown();

  int completed = 0;
  for (const cycle::CycleCatalogRow& row : catalog.rows)
    if (row.phase == "completed") ++completed;
  const bool ok = summary.eventsDetected >= 3 &&
                  completed == static_cast<int>(catalog.rows.size());

  TextTable ct({"Sequence -> catalog", "Value"});
  ct.addRow({"interseismic wall",
             TextTable::num(sequenceSeconds, 2) + " s"});
  ct.addRow({"solver steps", std::to_string(summary.steps)});
  ct.addRow({"events detected", std::to_string(summary.eventsDetected)});
  ct.addRow({"catalog wall", TextTable::num(catalog.wallSeconds, 2) + " s"});
  ct.addRow({"scenarios completed", std::to_string(completed) + "/" +
                                        std::to_string(catalog.rows.size())});
  ct.addRow({"catalog digest", catalog.digestHex()});
  ct.print(std::cout);

  // --- record the trajectory ----------------------------------------------
  {
    std::ofstream json("BENCH_cycle.json");
    json << "{\n"
         << "  \"kernel_applies_per_second\": " << appliesPerSecond << ",\n"
         << "  \"kernel_node_updates_per_second\": " << nodeUpdatesPerSecond
         << ",\n"
         << "  \"solver_steps_per_second\": " << stepsPerSecond << ",\n"
         << "  \"solver_simulated_years\": " << simulatedYears << ",\n"
         << "  \"sequence_wall_seconds\": " << sequenceSeconds << ",\n"
         << "  \"sequence_steps\": " << summary.steps << ",\n"
         << "  \"sequence_events\": " << summary.eventsDetected << ",\n"
         << "  \"catalog_wall_seconds\": " << catalog.wallSeconds << ",\n"
         << "  \"catalog_scenarios_completed\": " << completed << "\n"
         << "}\n";
  }
  std::cout << "\nrecorded BENCH_cycle.json\n";

  std::filesystem::remove_all(work);
  if (!ok) {
    std::cerr << "cycle bench FAILED (events=" << summary.eventsDetected
              << ", completed=" << completed << "/" << catalog.rows.size()
              << ")\n";
    return 1;
  }
  return 0;
}
