// Tests for CVM2MESH mesh generation and the PetaMeshP partitioning models.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "io/shared_file.hpp"
#include "mesh/generator.hpp"
#include "mesh/mesh_file.hpp"
#include "mesh/partitioner.hpp"
#include "util/error.hpp"
#include "vcluster/cluster.hpp"
#include "vmodel/cvm.hpp"

namespace awp::mesh {
namespace {

class MeshTest : public ::testing::Test {
 protected:
  MeshTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("awp_mesh_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~MeshTest() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;

  static MeshSpec smallSpec() {
    MeshSpec s;
    s.nx = 24;
    s.ny = 16;
    s.nz = 12;
    s.h = 1000.0;
    return s;
  }
  static vmodel::CommunityVelocityModel model() {
    return vmodel::CommunityVelocityModel::socal(24e3, 16e3, 8e3);
  }
};

TEST_F(MeshTest, HeaderRoundTrip) {
  const auto spec = smallSpec();
  generateMeshSerial(model(), spec, path("mesh.bin"));
  const auto h = readMeshHeader(path("mesh.bin"));
  EXPECT_EQ(h.nx, spec.nx);
  EXPECT_EQ(h.ny, spec.ny);
  EXPECT_EQ(h.nz, spec.nz);
  EXPECT_DOUBLE_EQ(h.h, spec.h);
}

TEST_F(MeshTest, RejectsNonMeshFile) {
  io::writeFile(path("junk.bin"), std::vector<std::byte>(128));
  EXPECT_THROW(readMeshHeader(path("junk.bin")), Error);
}

TEST_F(MeshTest, ParallelGenerationMatchesSerial) {
  const auto spec = smallSpec();
  const auto cvm = model();
  generateMeshSerial(cvm, spec, path("serial.bin"));
  vcluster::ThreadCluster::run(5, [&](vcluster::Communicator& comm) {
    generateMesh(comm, cvm, spec, path("parallel.bin"));
  });
  const auto a = io::readTextFile(path("serial.bin"));
  const auto b = io::readTextFile(path("parallel.bin"));
  EXPECT_EQ(a, b);
}

TEST_F(MeshTest, GeneratedMaterialsMatchModelSamples) {
  const auto spec = smallSpec();
  const auto cvm = model();
  generateMeshSerial(cvm, spec, path("mesh.bin"));
  vcluster::CartTopology topo(vcluster::Dims3{1, 1, 1});
  const auto block = readDirect(path("mesh.bin"), topo, 0);
  // Spot-check a few points against direct model queries.
  for (auto [i, j, k] : {std::array<std::size_t, 3>{0, 0, 0},
                         {5, 7, 3},
                         {23, 15, 11}}) {
    const auto got = block.at(i, j, k);
    const auto want = cvm.sample(static_cast<double>(i) * spec.h,
                                 static_cast<double>(j) * spec.h,
                                 static_cast<double>(k) * spec.h);
    EXPECT_FLOAT_EQ(got.vs, want.vs);
    EXPECT_FLOAT_EQ(got.vp, want.vp);
    EXPECT_FLOAT_EQ(got.rho, want.rho);
  }
}

TEST_F(MeshTest, SubdomainsPartitionTheVolume) {
  const auto spec = smallSpec();
  vcluster::CartTopology topo(vcluster::Dims3{2, 2, 3});
  std::uint64_t total = 0;
  for (int r = 0; r < topo.size(); ++r)
    total += subdomainFor(topo, spec, r).pointCount();
  EXPECT_EQ(total, spec.pointCount());
}

TEST_F(MeshTest, AllThreePartitioningModelsAgree) {
  const auto spec = smallSpec();
  generateMeshSerial(model(), spec, path("mesh.bin"));
  vcluster::CartTopology topo(vcluster::Dims3{2, 2, 2});

  // Model 3 (direct) as the reference.
  std::vector<MeshBlock> direct;
  for (int r = 0; r < topo.size(); ++r)
    direct.push_back(readDirect(path("mesh.bin"), topo, r));

  // Model 1: pre-partitioning then per-rank read.
  std::filesystem::create_directories(path("parts"));
  vcluster::ThreadCluster::run(topo.size(),
                               [&](vcluster::Communicator& comm) {
                                 prePartitionMesh(comm, path("mesh.bin"),
                                                  topo, path("parts"));
                               });
  for (int r = 0; r < topo.size(); ++r) {
    const auto block = readPrePartitioned(path("parts"), r);
    ASSERT_EQ(block.points.size(), direct[r].points.size());
    for (std::size_t n = 0; n < block.points.size(); ++n) {
      EXPECT_FLOAT_EQ(block.points[n].vs, direct[r].points[n].vs);
    }
  }

  // Model 2: read + redistribute with various reader counts/subdivisions.
  for (const auto& [readers, ysub] :
       std::vector<std::pair<int, int>>{{1, 1}, {3, 1}, {8, 2}, {2, 4}}) {
    vcluster::ThreadCluster::run(
        topo.size(), [&, readers = readers, ysub = ysub](
                         vcluster::Communicator& comm) {
          const auto block = readAndRedistribute(comm, path("mesh.bin"),
                                                 topo, readers, ysub);
          const auto& ref = direct[comm.rank()];
          ASSERT_EQ(block.points.size(), ref.points.size());
          for (std::size_t n = 0; n < block.points.size(); ++n) {
            ASSERT_FLOAT_EQ(block.points[n].vs, ref.points[n].vs);
            ASSERT_FLOAT_EQ(block.points[n].rho, ref.points[n].rho);
          }
        });
  }
}

TEST_F(MeshTest, PrePartitionedFileBelongsToRank) {
  const auto spec = smallSpec();
  generateMeshSerial(model(), spec, path("mesh.bin"));
  vcluster::CartTopology topo(vcluster::Dims3{2, 1, 1});
  vcluster::ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    prePartitionMesh(comm, path("mesh.bin"), topo, path("parts2"));
  });
  // Reading rank 0's file as rank 1 must fail the ownership check.
  EXPECT_THROW(
      {
        auto bad = readPrePartitioned(path("parts2"), 0);
        // Manually confuse the rank by renaming.
        std::filesystem::copy(path("parts2") + "/mesh_rank0.bin",
                              path("parts2") + "/mesh_rank1.bin",
                              std::filesystem::copy_options::
                                  overwrite_existing);
        readPrePartitioned(path("parts2"), 1);
      },
      Error);
}

}  // namespace
}  // namespace awp::mesh
