// Telemetry tests: span nesting and exclusive-time attribution, replay
// accounting, cross-rank counter aggregation, report JSON schema (positive
// and negative), the disabled-mode zero-overhead guarantee, and the
// solver-level invariant that telemetry never perturbs the physics.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <thread>

#include "core/solver.hpp"
#include "fault/injector.hpp"
#include "io/shared_file.hpp"
#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/report.hpp"
#include "vcluster/cluster.hpp"
#include "vmodel/material.hpp"

// Global allocation counter for the zero-overhead test. Counting is always
// on (the overhead of one relaxed increment is irrelevant to the other
// tests) and covers every operator-new in the binary.
static std::atomic<std::uint64_t> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace awp {
namespace {

using vcluster::CartTopology;
using vcluster::Dims3;
using vcluster::ThreadCluster;

// Tag the calling thread as a cluster rank for the duration of a test
// (ThreadCluster does this for real rank threads).
class ScopedThreadRank {
 public:
  explicit ScopedThreadRank(int rank) { fault::setThreadRank(rank); }
  ~ScopedThreadRank() { fault::setThreadRank(-1); }
};

void spinFor(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

class TelemetryTest : public ::testing::Test {
 protected:
  TelemetryTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("awp_telemetry_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~TelemetryTest() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

// --- span recording --------------------------------------------------------

TEST_F(TelemetryTest, NestedSpansAttributeExclusiveTime) {
  using telemetry::Phase;
  using telemetry::Counter;
  using namespace telemetry;
  Session session(SessionConfig{1});
  ScopedSession active(session);
  ScopedThreadRank rank(0);

  const auto spin = std::chrono::microseconds(2000);
  {
    ScopedSpan outer(Phase::VelocityKernel);
    spinFor(spin);
    {
      ScopedSpan inner(Phase::HaloExchange);
      spinFor(spin);
    }
    spinFor(spin);
  }

  const RankTelemetry& rt = session.slot(0);
  const auto velocity = rt.phaseNs(Phase::VelocityKernel);
  const auto halo = rt.phaseNs(Phase::HaloExchange);
  const auto spinNs = static_cast<std::uint64_t>(spin.count()) * 1000u;
  EXPECT_GE(halo, spinNs);
  EXPECT_GE(velocity, 2 * spinNs);

  // Trace ring: records close in LIFO order with nesting depth, and the
  // records hold *inclusive* durations while the buckets hold *exclusive*
  // ones — exact arithmetic, independent of scheduler noise:
  //   halo bucket == inner record;  velocity bucket == outer - inner.
  const auto trace = rt.traceSnapshot();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].phase, Phase::HaloExchange);
  EXPECT_EQ(trace[0].depth, 1);
  EXPECT_EQ(trace[1].phase, Phase::VelocityKernel);
  EXPECT_EQ(trace[1].depth, 0);
  EXPECT_GE(trace[1].durationNs, trace[0].durationNs);
  EXPECT_FALSE(trace[0].replay);
  EXPECT_EQ(halo, trace[0].durationNs);
  EXPECT_EQ(velocity, trace[1].durationNs - trace[0].durationNs);
}

// The stall-respawn drain: retireSlot() advances the slot generation so a
// wedged incarnation that wakes up later can provably never write again,
// while the replacement claims the slot and records normally.
TEST_F(TelemetryTest, RetireSlotFencesTheWedgedIncarnation) {
  using telemetry::Phase;
  using namespace telemetry;
  Session session(SessionConfig{1});
  ScopedSession active(session);

  std::atomic<int> stage{0};
  std::thread zombie([&] {
    ScopedThreadRank rank(0);
    resetThreadSpans();  // claim the slot's current generation
    {
      ScopedSpan s(Phase::VelocityKernel);
      spinFor(std::chrono::microseconds(500));
    }
    stage.store(1);
    while (stage.load() != 2) std::this_thread::yield();
    // The slot was retired while this incarnation was wedged. Its late
    // span writes must be silent no-ops, not races with the replacement.
    for (int i = 0; i < 4; ++i) {
      ScopedSpan late(Phase::HaloExchange);
      spinFor(std::chrono::microseconds(100));
    }
    stage.store(3);
  });

  while (stage.load() != 1) std::this_thread::yield();
  const std::uint64_t genBefore = session.slot(0).generation();
  retireSlot(0);  // what the supervisor's onRespawn hook runs before reuse
  EXPECT_GT(session.slot(0).generation(), genBefore);
  stage.store(2);
  while (stage.load() != 3) std::this_thread::yield();
  zombie.join();

  // The replacement incarnation claims the retired slot and records.
  std::thread replacement([&] {
    ScopedThreadRank rank(0);
    resetThreadSpans();
    ScopedSpan s(Phase::StressKernel);
    spinFor(std::chrono::microseconds(500));
  });
  replacement.join();

  const RankTelemetry& rt = session.slot(0);
  EXPECT_EQ(rt.phaseNs(Phase::HaloExchange), 0u);  // fenced writes dropped
  EXPECT_GT(rt.phaseNs(Phase::VelocityKernel), 0u);
  EXPECT_GT(rt.phaseNs(Phase::StressKernel), 0u);
  // Trace ring: exactly the pre-retire span and the replacement's span.
  const auto trace = rt.traceSnapshot();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].phase, Phase::VelocityKernel);
  EXPECT_EQ(trace[1].phase, Phase::StressKernel);
}

TEST_F(TelemetryTest, ReplayWindowsExcludedFromUsefulTotals) {
  using telemetry::Phase;
  using telemetry::Counter;
  using namespace telemetry;
  Session session(SessionConfig{1});
  ScopedSession active(session);
  ScopedThreadRank rank(0);

  ManualSpan window;
  window.begin(Phase::RollbackReplay);
  {
    ScopedSpan span(Phase::VelocityKernel);
    spinFor(std::chrono::microseconds(1000));
  }
  window.end();
  EXPECT_FALSE(window.active());

  const RankTelemetry& rt = session.slot(0);
  // The kernel time inside the replay window lands in the replay bucket,
  // not the useful one.
  EXPECT_EQ(rt.phaseNs(Phase::VelocityKernel), 0u);
  EXPECT_GE(rt.replayNs(Phase::VelocityKernel), 1000000u);
  const auto trace = rt.traceSnapshot();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_TRUE(trace[0].replay);  // the kernel span
}

TEST_F(TelemetryTest, RingOverflowDropsOldestAndCounts) {
  using telemetry::Phase;
  using telemetry::Counter;
  using namespace telemetry;
  Session session(SessionConfig{1, /*ringCapacity=*/4});
  ScopedSession active(session);
  ScopedThreadRank rank(0);

  for (int n = 0; n < 10; ++n) {
    stepMark(static_cast<std::uint64_t>(n));
    ScopedSpan span(Phase::Output);
  }
  const RankSummary s = session.slot(0).summary();
  EXPECT_EQ(s.spansRecorded, 10u);
  EXPECT_EQ(s.spansDropped, 6u);
  EXPECT_EQ(s.counters[static_cast<std::size_t>(Counter::SpansDropped)], 6u);
  const auto trace = session.slot(0).traceSnapshot();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.front().step, 6u);  // oldest survivor
  EXPECT_EQ(trace.back().step, 9u);
}

// --- disabled mode ---------------------------------------------------------

TEST_F(TelemetryTest, DisabledModeAllocatesNothing) {
  ASSERT_FALSE(telemetry::enabled());
  // Warm up so lazy init elsewhere cannot pollute the measurement.
  {
    telemetry::ScopedSpan span(telemetry::Phase::VelocityKernel);
    telemetry::count(telemetry::Counter::CellsUpdated, 1);
  }
  const std::uint64_t before = g_allocations.load();
  for (int n = 0; n < 10000; ++n) {
    telemetry::ScopedSpan span(telemetry::Phase::StressKernel);
    telemetry::count(telemetry::Counter::FlopsEstimated, 100);
    telemetry::stepMark(static_cast<std::uint64_t>(n));
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before);
}

// --- aggregation -----------------------------------------------------------

TEST_F(TelemetryTest, CountersAggregateAcrossRanks) {
  using telemetry::Phase;
  using telemetry::Counter;
  using namespace telemetry;
  Session session(SessionConfig{2});
  ScopedSession active(session);

  ClusterReport report;
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    // Rank r records r+1 halo messages and a rank-dependent byte count.
    for (int n = 0; n <= comm.rank(); ++n)
      count(Counter::HaloMessages);
    count(Counter::HaloBytesSent, 1000u * (comm.rank() + 1u));
    {
      ScopedSpan span(Phase::VelocityKernel);
      spinFor(std::chrono::microseconds(500));
    }
    comm.barrier();
    auto r = aggregate(comm, session, /*step=*/7, /*wallSeconds=*/0.01);
    if (comm.rank() == 0) report = std::move(r);
  });

  ASSERT_TRUE(report.valid());
  EXPECT_EQ(report.nranks, 2);
  EXPECT_EQ(report.step, 7u);
  const auto& msgs =
      report.counters[static_cast<std::size_t>(Counter::HaloMessages)];
  EXPECT_EQ(msgs.total, 3u);
  EXPECT_EQ(msgs.min, 1u);
  EXPECT_EQ(msgs.max, 2u);
  EXPECT_EQ(msgs.maxRank, 1);
  const auto& bytes =
      report.counters[static_cast<std::size_t>(Counter::HaloBytesSent)];
  EXPECT_EQ(bytes.total, 3000u);
  // Phase stats: both ranks spun ~0.5 ms in the velocity bucket.
  const auto& vel =
      report.phases[static_cast<std::size_t>(Phase::VelocityKernel)];
  EXPECT_GE(vel.minSeconds, 0.0005);
  EXPECT_GE(vel.meanSeconds, vel.minSeconds);
  EXPECT_GE(vel.maxSeconds, vel.meanSeconds);
  EXPECT_GE(vel.imbalance, 1.0);
  EXPECT_TRUE(vel.maxRank == 0 || vel.maxRank == 1);
  EXPECT_NEAR(vel.sumSeconds, vel.meanSeconds * 2.0, 1e-12);
}

TEST_F(TelemetryTest, OffRankWorkFoldsIntoCounterTotals) {
  using telemetry::Phase;
  using telemetry::Counter;
  using namespace telemetry;
  Session session(SessionConfig{2});
  ScopedSession active(session);

  // The launcher thread (rank tag -1) counts transfer bytes — the
  // workflow's transfer leg does exactly this.
  count(Counter::TransferBytes, 4096);

  ClusterReport report;
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    auto r = aggregate(comm, session, 0, 0.001);
    if (comm.rank() == 0) report = std::move(r);
  });
  ASSERT_TRUE(report.valid());
  EXPECT_EQ(report.counters[static_cast<std::size_t>(Counter::TransferBytes)]
                .total,
            4096u);
}

// --- report JSON -----------------------------------------------------------

TEST_F(TelemetryTest, ReportJsonRoundTripsAndValidates) {
  using telemetry::Phase;
  using telemetry::Counter;
  using namespace telemetry;
  Session session(SessionConfig{2});
  ScopedSession active(session);

  ClusterReport report;
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    {
      ScopedSpan span(Phase::StressKernel);
      spinFor(std::chrono::microseconds(200));
    }
    count(Counter::CellsUpdated, 100);
    auto r = aggregate(comm, session, 42, 0.005);
    if (comm.rank() == 0) report = std::move(r);
  });
  ASSERT_TRUE(report.valid());

  const std::string text = toJson(report);
  EXPECT_TRUE(validateReportJson(text).empty())
      << validateReportJson(text).front();

  // Round-trip through the parser.
  const JsonValue root = parseJson(text);
  EXPECT_EQ(root.find("schema")->text, "awp-telemetry-report");
  EXPECT_EQ(root.find("nranks")->number, 2.0);
  EXPECT_EQ(root.find("step")->number, 42.0);
  const JsonValue* phases = root.find("phases");
  ASSERT_NE(phases, nullptr);
  for (std::size_t p = 0; p < kPhaseCount; ++p)
    EXPECT_NE(phases->find(std::string(kPhaseJsonNames[p])), nullptr)
        << kPhaseJsonNames[p];
  // Every taxonomy counter must appear in the emitted report, even when
  // its total is zero — readers key on the full kCounterJsonNames table.
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  for (std::size_t c = 0; c < kCounterCount; ++c)
    EXPECT_NE(counters->find(std::string(kCounterJsonNames[c])), nullptr)
        << kCounterJsonNames[c];

  // File emission is atomic and re-readable.
  const std::string path = (dir_ / "report.json").string();
  writeReportFile(path, report);
  EXPECT_TRUE(validateReportJson(io::readTextFile(path)).empty());
}

TEST_F(TelemetryTest, ValidatorRejectsBrokenReports) {
  using telemetry::Phase;
  using telemetry::Counter;
  using namespace telemetry;
  // Missing phase.
  std::string text =
      "{\"schema\": \"awp-telemetry-report\", \"version\": 1, "
      "\"nranks\": 1, \"step\": 0, \"wall_seconds\": 1.0, "
      "\"useful_seconds\": 0.9, \"replay_seconds\": 0.0, "
      "\"coverage\": 0.9, \"spans_recorded\": 0, \"spans_dropped\": 0, "
      "\"phases\": {}, \"counters\": {}}";
  auto violations = validateReportJson(text);
  EXPECT_FALSE(violations.empty());
  bool missingPhase = false, missingCounter = false;
  for (const auto& v : violations) {
    if (v.find("missing phase 'velocity_kernel'") != std::string::npos)
      missingPhase = true;
    if (v.find("missing counter 'rollbacks'") != std::string::npos)
      missingCounter = true;
  }
  EXPECT_TRUE(missingPhase);
  EXPECT_TRUE(missingCounter);

  // Negative duration.
  EXPECT_FALSE(validateReportJson(
                   "{\"schema\": \"awp-telemetry-report\", \"version\": 1, "
                   "\"nranks\": 1, \"wall_seconds\": -2.0}")
                   .empty());
  // NaN is not valid JSON at all: the parser must reject it.
  EXPECT_FALSE(validateReportJson("{\"wall_seconds\": NaN}").empty());
  // Wrong schema id.
  EXPECT_FALSE(validateReportJson("{\"schema\": \"something-else\"}").empty());
  // Malformed document.
  EXPECT_FALSE(validateReportJson("{\"unterminated").empty());
}

// --- solver integration ----------------------------------------------------

TEST_F(TelemetryTest, SolverPhysicsIsBitIdenticalWithTelemetry) {
  const grid::GridDims dims{24, 16, 12};
  const CartTopology topo(Dims3{2, 1, 1});

  auto runOnce = [&](bool withTelemetry, const std::string& reportPath) {
    std::vector<core::SeismogramTrace> traces;
    telemetry::Session session(telemetry::SessionConfig{2});
    ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
      core::SolverConfig config;
      config.globalDims = dims;
      config.h = 600.0;
      config.spongeWidth = 4;
      if (withTelemetry) config.telemetry.reportPath = reportPath;
      core::WaveSolver solver(comm, topo, config,
                              vmodel::Material{5200.0f, 3000.0f, 2700.0f});
      solver.addSource(core::explosionPointSource(
          12, 8, 6,
          core::rickerWavelet(2.0, 0.5, solver.dt(), 30, 1e15)));
      solver.addReceiver("site", 18, 10);
      // Install the session around run() only, so the report's wall clock
      // and its spans measure the same window (construction-time halo
      // exchanges would otherwise push coverage past 1).
      comm.barrier();
      if (withTelemetry && comm.rank() == 0)
        telemetry::installSession(&session);
      comm.barrier();
      solver.run(30);
      comm.barrier();
      if (withTelemetry && comm.rank() == 0)
        telemetry::installSession(nullptr);
      comm.barrier();
      auto gathered = solver.receivers().gather(comm);
      if (comm.rank() == 0) traces = std::move(gathered);
    });
    return traces;
  };

  const std::string reportPath = (dir_ / "solver_report.json").string();
  const auto plain = runOnce(false, "");
  const auto traced = runOnce(true, reportPath);

  // Telemetry must not perturb the physics: bit-identical seismograms.
  ASSERT_EQ(plain.size(), 1u);
  ASSERT_EQ(traced.size(), 1u);
  EXPECT_EQ(plain[0].u, traced[0].u);
  EXPECT_EQ(plain[0].v, traced[0].v);
  EXPECT_EQ(plain[0].w, traced[0].w);

  // And the emitted report is schema-valid with sane coverage.
  const std::string text = io::readTextFile(reportPath);
  EXPECT_TRUE(telemetry::validateReportJson(text).empty());
  const auto root = telemetry::parseJson(text);
  EXPECT_EQ(root.find("nranks")->number, 2.0);
  EXPECT_GT(root.find("wall_seconds")->number, 0.0);
  const double coverage = root.find("coverage")->number;
  EXPECT_GT(coverage, 0.5);   // phases dominate the run() window
  EXPECT_LT(coverage, 1.05);  // and never exceed it (exclusive times)
  EXPECT_GT(root.find("counters")
                ->find("cells_updated")
                ->find("total")
                ->number,
            0.0);
}

TEST_F(TelemetryTest, PerRankTraceFilesAreEmitted) {
  const grid::GridDims dims{24, 16, 12};
  const CartTopology topo(Dims3{2, 1, 1});
  const std::string prefix = (dir_ / "trace").string();

  telemetry::Session session(telemetry::SessionConfig{2});
  telemetry::ScopedSession active(session);
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    core::SolverConfig config;
    config.globalDims = dims;
    config.h = 600.0;
    config.spongeWidth = 4;
    config.telemetry.tracePathPrefix = prefix;
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5200.0f, 3000.0f, 2700.0f});
    solver.run(5);
  });

  for (int r = 0; r < 2; ++r) {
    const std::string path = prefix + ".rank" + std::to_string(r) + ".jsonl";
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    // Every line is a standalone JSON object naming this rank.
    std::istringstream in(io::readTextFile(path));
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const auto rec = telemetry::parseJson(line);
      EXPECT_EQ(rec.find("rank")->number, static_cast<double>(r));
      EXPECT_GE(rec.find("duration_ns")->number, 0.0);
      ++lines;
    }
    EXPECT_GT(lines, 0u);
  }
}

}  // namespace
}  // namespace awp
