// Rank-recovery-ladder tests: the in-memory buddy checkpoint store, epoch
// fencing in the mailbox/communicator layer, SupervisedCluster respawn and
// budget escalation, watchdog debounce, the rank_death / buddy_drop fault
// sites, buddy-restore vs disk-restore equivalence at the solver level,
// and the end-to-end service guarantee: a rank killed mid-attempt is
// respawned in place, the attempt completes with ZERO requeues, and the
// products are bit-identical to an uninterrupted baseline.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "core/source.hpp"
#include "fault/injector.hpp"
#include "health/watchdog.hpp"
#include "io/buddy.hpp"
#include "io/checkpoint.hpp"
#include "sched/report.hpp"
#include "sched/service.hpp"
#include "sched/spec.hpp"
#include "vcluster/cart.hpp"
#include "vcluster/cluster.hpp"
#include "vcluster/comm.hpp"
#include "vcluster/epoch.hpp"
#include "vcluster/respawn.hpp"

namespace awp {
namespace {

namespace fs = std::filesystem;

fs::path tempDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("awp-respawn-test-" + tag + "-" +
                  std::to_string(getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::byte> bytesOf(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

// ---------------------------------------------------------------------------
// BuddyStore

TEST(BuddyStore, StoresRestoresAndPrefersSelf) {
  io::BuddyStore store(2);
  EXPECT_EQ(store.size(), 2);
  EXPECT_FALSE(store.newestStep(0).has_value());
  EXPECT_FALSE(store.restore(0, 5).has_value());

  store.storeSelf(0, 5, bytesOf("self-gen5"));
  store.storeReplica(0, 5, bytesOf("replica-gen5"));
  ASSERT_TRUE(store.newestStep(0).has_value());
  EXPECT_EQ(*store.newestStep(0), 5u);

  // A survivor restores from its own blob; the replica is untouched.
  auto self = store.restore(0, 5);
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(*self, bytesOf("self-gen5"));

  // Newer generation replaces self in place; a step-5 restore now falls
  // through to the replica, and step 10 is served from the new self blob.
  store.storeSelf(0, 10, bytesOf("self-gen10"));
  EXPECT_EQ(*store.newestStep(0), 10u);
  auto replica = store.restore(0, 5);
  ASSERT_TRUE(replica.has_value());
  EXPECT_EQ(*replica, bytesOf("replica-gen5"));
  auto newest = store.restore(0, 10);
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, bytesOf("self-gen10"));

  // A dead rank loses its self blob but keeps the buddy-held replica.
  store.noteDeath(0);
  EXPECT_FALSE(store.restore(0, 10).has_value());
  ASSERT_TRUE(store.restore(0, 5).has_value());

  const auto stats = store.stats();
  EXPECT_EQ(stats.selfStores, 2u);
  EXPECT_EQ(stats.replicaStores, 1u);
  EXPECT_EQ(stats.restoresFromSelf, 2u);
  EXPECT_EQ(stats.restoresFromReplica, 2u);

  store.clear();
  EXPECT_FALSE(store.newestStep(0).has_value());
}

TEST(BuddyStore, ReplacementRestoresFromReplicaAndDropInvalidates) {
  io::BuddyStore store(4);
  // Only the replica exists for rank 2 (its own memory died with it).
  store.storeReplica(2, 12, bytesOf("rank2@12"));
  ASSERT_TRUE(store.newestStep(2).has_value());
  EXPECT_EQ(*store.newestStep(2), 12u);
  auto blob = store.restore(2, 12);
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(*blob, bytesOf("rank2@12"));
  EXPECT_EQ(store.stats().restoresFromReplica, 1u);

  // A dropped replication invalidates the stale replica: a later restore
  // must fall back to disk instead of resurrecting an old generation.
  store.noteDrop(2);
  EXPECT_FALSE(store.restore(2, 12).has_value());
  EXPECT_EQ(store.stats().drops, 1u);
}

// ---------------------------------------------------------------------------
// Epoch fencing in the mailbox layer

TEST(EpochFencing, StaleMailIsDiscardedNotDelivered) {
  vcluster::ClusterState state(2);

  vcluster::Communicator sender(0, &state);
  const int payloadOld = 111;
  sender.sendValue(1, /*tag=*/7, payloadOld);  // stamped epoch 0

  // A respawn bumps the epoch; the queued message is now dead-incarnation
  // mail. A receiver under the new epoch must get the NEW message, not the
  // stale one.
  state.epoch.store(1, std::memory_order_release);
  sender.adoptEpoch();
  const int payloadNew = 222;
  sender.sendValue(1, /*tag=*/7, payloadNew);

  vcluster::Communicator receiver(1, &state);
  EXPECT_EQ(receiver.epoch(), 1u);
  EXPECT_EQ(receiver.recvValue<int>(0, 7), payloadNew);
  EXPECT_EQ(state.stats.messagesFenced.load(), 1u);
}

TEST(EpochFencing, BlockedReceiverWakesAndThrowsOnFence) {
  vcluster::ClusterState state(2);
  vcluster::Communicator receiver(1, &state);

  std::atomic<bool> fenced{false};
  std::thread t([&] {
    try {
      (void)receiver.recvValue<int>(0, 3);  // nothing will ever arrive
    } catch (const vcluster::EpochFenced&) {
      fenced.store(true);
    }
  });
  // Let the receiver block, then fence it the way the supervisor does.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  state.epoch.store(1, std::memory_order_release);
  for (auto& mb : state.mailboxes) mb->wakeAll();
  t.join();
  EXPECT_TRUE(fenced.load());
}

TEST(EpochFencing, PurgeBelowDropsOnlyDeadIncarnationMail) {
  vcluster::Mailbox box;
  box.push({/*src=*/0, /*tag=*/1, /*epoch=*/0, bytesOf("dead")});
  box.push({/*src=*/0, /*tag=*/2, /*epoch=*/1, bytesOf("live")});
  EXPECT_EQ(box.depth(), 2u);
  EXPECT_EQ(box.purgeBelow(1), 1u);
  EXPECT_EQ(box.depth(), 1u);
  vcluster::Message out;
  EXPECT_TRUE(box.tryPopMatch(0, 2, out));
  EXPECT_EQ(out.payload, bytesOf("live"));
}

// ---------------------------------------------------------------------------
// SupervisedCluster

TEST(SupervisedCluster, RespawnsDeadRankAndRunCompletes) {
  constexpr int kRanks = 3;
  constexpr int kRounds = 6;
  std::atomic<int> rank1Entries{0};
  std::atomic<int> cleanFinishes{0};

  vcluster::SupervisorOptions opts;
  opts.respawnBudget = 1;
  std::atomic<int> quiesceEnters{0};
  opts.onQuiesce = [&](int, bool entering) {
    if (entering) quiesceEnters.fetch_add(1);
  };
  vcluster::SupervisedCluster cluster(kRanks, opts);

  cluster.run([&](vcluster::Communicator& comm) {
    // First incarnation of rank 1 dies on round 2; every other execution
    // (survivors re-entering after the fence, and the replacement) runs
    // all rounds to completion.
    const bool doomed =
        comm.rank() == 1 && rank1Entries.fetch_add(1) == 0;
    for (int round = 0; round < kRounds; ++round) {
      if (doomed && round == 2)
        throw vcluster::RankDeathError(comm.rank(),
                                       static_cast<std::uint64_t>(round));
      const std::int64_t sum =
          comm.allreduce(std::int64_t{comm.rank()}, vcluster::ReduceOp::Sum);
      EXPECT_EQ(sum, kRanks * (kRanks - 1) / 2);
    }
    comm.barrier();
    cleanFinishes.fetch_add(1);
  });

  EXPECT_EQ(cluster.respawnsUsed(), 1);
  const auto events = cluster.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].rank, 1);
  EXPECT_EQ(events[0].cause, "rank-death");
  EXPECT_EQ(events[0].incarnation, 1);
  EXPECT_EQ(cleanFinishes.load(), kRanks);
  EXPECT_EQ(rank1Entries.load(), 2);  // dead incarnation + replacement
  // Both survivors fenced and quiesced exactly once.
  EXPECT_EQ(quiesceEnters.load(), kRanks - 1);
}

TEST(SupervisedCluster, ExhaustedBudgetEscalates) {
  constexpr int kRanks = 2;
  std::atomic<int> rank1Entries{0};

  vcluster::SupervisorOptions opts;
  opts.respawnBudget = 1;
  vcluster::SupervisedCluster cluster(kRanks, opts);

  try {
    cluster.run([&](vcluster::Communicator& comm) {
      // Rank 1 dies on BOTH its incarnations: the second death exceeds
      // the budget and must escalate instead of respawning again.
      const int entry =
          comm.rank() == 1 ? rank1Entries.fetch_add(1) : -1;
      for (int round = 0; round < 50; ++round) {
        if (comm.rank() == 1 && entry < 2 && round == 1)
          throw vcluster::RankDeathError(comm.rank(),
                                         static_cast<std::uint64_t>(round));
        (void)comm.allreduce(std::int64_t{1}, vcluster::ReduceOp::Sum);
      }
    });
    FAIL() << "expected RespawnExhaustedError";
  } catch (const vcluster::RespawnExhaustedError& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.cause(), "rank-death");
  }
  EXPECT_EQ(cluster.respawnsUsed(), 1);  // the one respawn before escalation
  EXPECT_EQ(rank1Entries.load(), 2);
}

TEST(SupervisedCluster, RequestRespawnOutsideRunIsRefused) {
  vcluster::SupervisorOptions opts;
  vcluster::SupervisedCluster cluster(2, opts);
  EXPECT_FALSE(cluster.requestRespawn(0, "stall"));
  cluster.run([](vcluster::Communicator&) {});
  EXPECT_FALSE(cluster.requestRespawn(0, "stall"));
}

// ---------------------------------------------------------------------------
// Fault plan builders for the new sites

TEST(FaultSites, RankDeathFiresAtTheChosenStepConsult) {
  fault::FaultPlan plan;
  plan.rankDeath(/*rank=*/1, /*occurrence=*/3);
  ASSERT_EQ(plan.specs().size(), 1u);
  EXPECT_EQ(plan.specs()[0].site, "rank_death");
  EXPECT_EQ(plan.specs()[0].kind, fault::FaultKind::RankDeath);

  fault::FaultInjector injector(std::move(plan));
  EXPECT_FALSE(injector.check("rank_death", 1).has_value());  // consult 1
  EXPECT_FALSE(injector.check("rank_death", 0).has_value());  // other rank
  EXPECT_FALSE(injector.check("rank_death", 1).has_value());  // consult 2
  auto action = injector.check("rank_death", 1);              // consult 3
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->kind, fault::FaultKind::RankDeath);
  EXPECT_FALSE(injector.check("rank_death", 1).has_value());  // one-shot
}

TEST(FaultSites, BuddyDropIsAttributedToTheReplicaOwner) {
  fault::FaultPlan plan;
  plan.buddyDrop(/*rank=*/2, /*occurrence=*/1, /*count=*/2);
  ASSERT_EQ(plan.specs().size(), 1u);
  EXPECT_EQ(plan.specs()[0].site, "buddy_drop");
  EXPECT_EQ(plan.specs()[0].kind, fault::FaultKind::MessageDrop);

  fault::FaultInjector injector(std::move(plan));
  EXPECT_FALSE(injector.check("buddy_drop", 0).has_value());
  ASSERT_TRUE(injector.check("buddy_drop", 2).has_value());  // count=2
  ASSERT_TRUE(injector.check("buddy_drop", 2).has_value());
  EXPECT_FALSE(injector.check("buddy_drop", 2).has_value());
  EXPECT_EQ(injector.faultsInjected(), 2u);
}

// ---------------------------------------------------------------------------
// Watchdog debounce

TEST(WatchdogDebounce, MissThresholdSuppressesTransientStalls) {
  health::HeartbeatBoard board(1);
  board.beat(0, 1);

  // Threshold far above what the sleep window can accumulate: silence.
  {
    std::atomic<int> episodes{0};
    health::Watchdog dog(
        board, /*stallTimeoutSeconds=*/0.05,
        [&](const health::StallReport&) { episodes.fetch_add(1); },
        /*pollIntervalSeconds=*/0.01, /*missThreshold=*/100000);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    dog.stop();
    EXPECT_EQ(episodes.load(), 0);
    EXPECT_TRUE(dog.reports().empty());
  }

  // Threshold 1 (legacy behaviour): the same silence opens an episode.
  {
    std::atomic<int> episodes{0};
    health::Watchdog dog(
        board, /*stallTimeoutSeconds=*/0.05,
        [&](const health::StallReport&) { episodes.fetch_add(1); },
        /*pollIntervalSeconds=*/0.01, /*missThreshold=*/1);
    for (int i = 0; i < 500 && episodes.load() == 0; ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    dog.stop();
    EXPECT_GE(episodes.load(), 1);
    ASSERT_GE(dog.reports().size(), 1u);
    EXPECT_EQ(dog.reports().front().rank, 0);
  }
}

// ---------------------------------------------------------------------------
// Buddy-restore vs disk-restore equivalence (solver level)

TEST(BuddyCheckpoint, BuddyRestoreMatchesDiskRestore) {
  const auto dir = tempDir("buddy-vs-disk");
  using core::SolverConfig;
  using core::WaveSolver;
  const vmodel::Material rock{5196.0f, 3000.0f, 2700.0f};

  auto makeSolver = [&](vcluster::Communicator& comm,
                        const vcluster::CartTopology& topo,
                        io::CheckpointStore* disk, io::BuddyStore* buddies) {
    SolverConfig config;
    config.globalDims = {20, 20, 20};
    config.h = 100.0;
    config.absorbing = core::AbsorbingType::Sponge;
    config.spongeWidth = 6;
    auto solver = std::make_unique<WaveSolver>(comm, topo, config, rock);
    const double dt = solver->config().dt;
    solver->addSource(core::explosionPointSource(
        10, 10, 10, core::rickerWavelet(4.0, 0.4, dt, 60, 1e15)));
    if (disk != nullptr) solver->attachCheckpoints(disk, 20);
    if (buddies != nullptr) solver->attachBuddies(buddies, 20);
    return solver;
  };

  // One run writes BOTH stores at step 20, then continues to 40.
  io::BuddyStore buddies(2);
  std::vector<float> uninterrupted;
  vcluster::ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    vcluster::CartTopology topo(vcluster::Dims3{2, 1, 1});
    io::CheckpointStore disk(dir.string());
    auto solver = makeSolver(comm, topo, &disk, &buddies);
    solver->run(40);
    if (comm.rank() == 0) {
      const auto& u = solver->grid().u;
      uninterrupted.assign(u.data(), u.data() + u.size());
    }
  });
  EXPECT_GE(buddies.stats().selfStores, 2u);
  EXPECT_GE(buddies.stats().replicaStores, 2u);

  // Restart path A: buddy blobs only (no disk store attached).
  std::vector<float> fromBuddy;
  vcluster::ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    vcluster::CartTopology topo(vcluster::Dims3{2, 1, 1});
    auto solver = makeSolver(comm, topo, nullptr, &buddies);
    solver->restart();
    EXPECT_EQ(solver->currentStep(), 21u);
    solver->run(40 - solver->currentStep());
    if (comm.rank() == 0) {
      const auto& u = solver->grid().u;
      fromBuddy.assign(u.data(), u.data() + u.size());
    }
  });
  EXPECT_GE(buddies.stats().restoresFromSelf, 2u);

  // Restart path B: disk only.
  std::vector<float> fromDisk;
  vcluster::ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    vcluster::CartTopology topo(vcluster::Dims3{2, 1, 1});
    io::CheckpointStore disk(dir.string());
    auto solver = makeSolver(comm, topo, &disk, nullptr);
    solver->restart();
    EXPECT_EQ(solver->currentStep(), 21u);
    solver->run(40 - solver->currentStep());
    if (comm.rank() == 0) {
      const auto& u = solver->grid().u;
      fromDisk.assign(u.data(), u.data() + u.size());
    }
  });
  fs::remove_all(dir);

  ASSERT_EQ(fromBuddy.size(), uninterrupted.size());
  ASSERT_EQ(fromDisk.size(), uninterrupted.size());
  for (std::size_t n = 0; n < uninterrupted.size(); ++n) {
    ASSERT_EQ(fromBuddy[n], uninterrupted[n]) << "buddy restore diverged";
    ASSERT_EQ(fromDisk[n], uninterrupted[n]) << "disk restore diverged";
  }
}

// ---------------------------------------------------------------------------
// End-to-end service guarantee

sched::ScenarioSpec chaosWaveSpec() {
  sched::ScenarioSpec spec;
  spec.kind = sched::ScenarioKind::Wave;
  spec.dims = {24, 18, 12};
  spec.h = 600.0;
  spec.steps = 24;
  spec.nranks = 4;
  spec.useCvm = true;
  spec.spongeWidth = 4;
  spec.checkpointEverySteps = 6;
  spec.surfaceSampleEverySteps = 2;
  spec.healthEverySteps = 4;
  spec.name = "chaos-wave";
  return spec;
}

std::string blobMd5(const sched::ScenarioProducts& products,
                    const std::string& name) {
  const sched::ArtifactBlob* blob = products.find(name);
  return blob != nullptr ? blob->md5Hex
                         : std::string("<missing:" + name + ">");
}

TEST(ScenarioService, RankDeathIsRepairedInPlaceBitIdentically) {
  const sched::ScenarioSpec spec = chaosWaveSpec();

  // Baseline: uninterrupted run.
  const fs::path baseWork = tempDir("svc-death-base");
  std::string surfaceMd5;
  std::string pgvhMd5;
  {
    sched::ServiceConfig cfg;
    cfg.coreBudget = 4;
    cfg.workDir = baseWork.string();
    sched::ScenarioService service(cfg);
    auto job = service.submit(spec);
    ASSERT_EQ(job->wait(), sched::JobPhase::Completed);
    surfaceMd5 = blobMd5(job->products, "surface.bin");
    pgvhMd5 = blobMd5(job->products, "pgvh.bin");
  }

  // Faulted: rank 2 dies entering step 14 (1-based consult 15) — past the
  // step-12 checkpoint/buddy generation, so the respawned rank restores
  // from its ring buddy and the loop replays only a 2-step window.
  const fs::path chaosWork = tempDir("svc-death-chaos");
  fault::FaultPlan plan;
  plan.rankDeath(/*rank=*/2, /*occurrence=*/15);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  sched::ServiceConfig cfg;
  cfg.coreBudget = 4;
  cfg.workDir = chaosWork.string();
  cfg.respawnBudget = 1;
  sched::ScenarioService service(cfg);
  auto job = service.submit(spec);
  ASSERT_EQ(job->wait(), sched::JobPhase::Completed);
  EXPECT_EQ(injector.faultsInjected(), 1u);

  // The loss was absorbed IN PLACE: one attempt, zero requeues, exactly
  // one successful respawn — and the products are bit-identical.
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    EXPECT_EQ(job->attempts, 1);
    EXPECT_TRUE(job->requeues.empty());
    EXPECT_EQ(job->respawns, 1);
    EXPECT_EQ(job->respawnEscalations, 0);
  }
  EXPECT_EQ(blobMd5(job->products, "surface.bin"), surfaceMd5);
  EXPECT_EQ(blobMd5(job->products, "pgvh.bin"), pgvhMd5);

  const auto report = service.report();
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.respawns, 1u);
  EXPECT_EQ(report.respawnEscalations, 0u);
  EXPECT_EQ(report.executedAttempts, 1u);
  const auto violations =
      sched::validateServiceReportJson(sched::toJson(report));
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
  fs::remove_all(baseWork);
  fs::remove_all(chaosWork);
}

TEST(ScenarioService, ExhaustedRespawnBudgetFallsBackToRequeue) {
  const sched::ScenarioSpec spec = chaosWaveSpec();

  // Kill rank 1 at step 14 on BOTH incarnations: the second death exceeds
  // the budget, the ladder escalates, and the legacy cancel-and-requeue
  // path must still finish the job (the requeued attempt's consult stream
  // is past the kill window, so it completes).
  const fs::path work = tempDir("svc-death-escalate");
  fault::FaultPlan plan;
  plan.rankDeath(/*rank=*/1, /*occurrence=*/15, /*count=*/2);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  sched::ServiceConfig cfg;
  cfg.coreBudget = 4;
  cfg.workDir = work.string();
  cfg.respawnBudget = 1;
  cfg.maxRetries = 2;
  sched::ScenarioService service(cfg);
  auto job = service.submit(spec);
  ASSERT_EQ(job->wait(), sched::JobPhase::Completed);

  {
    std::lock_guard<std::mutex> lock(job->mutex);
    EXPECT_EQ(job->respawns, 1);
    EXPECT_EQ(job->respawnEscalations, 1);
    ASSERT_GE(job->requeues.size(), 1u);
    EXPECT_EQ(job->requeues[0].cause, sched::RequeueCause::WorkerCrash);
    EXPECT_GE(job->attempts, 2);
  }
  const auto report = service.report();
  EXPECT_GE(report.retries, 1u);
  EXPECT_EQ(report.respawns, 1u);
  EXPECT_EQ(report.respawnEscalations, 1u);
  EXPECT_TRUE(
      sched::validateServiceReportJson(sched::toJson(report)).empty());
  fs::remove_all(work);
}

TEST(ScenarioService, BuddyDropForcesDiskFallbackAndStaysBitIdentical) {
  const sched::ScenarioSpec spec = chaosWaveSpec();

  const fs::path baseWork = tempDir("svc-drop-base");
  std::string surfaceMd5;
  {
    sched::ServiceConfig cfg;
    cfg.coreBudget = 4;
    cfg.workDir = baseWork.string();
    sched::ScenarioService service(cfg);
    auto job = service.submit(spec);
    ASSERT_EQ(job->wait(), sched::JobPhase::Completed);
    surfaceMd5 = blobMd5(job->products, "surface.bin");
  }

  // Every replication of rank 2's blob is lost in flight AND rank 2 dies
  // at step 14: the replacement finds no in-memory blob and must restore
  // from the on-disk generation — same bit-identical outcome, one rung
  // lower on the ladder.
  const fs::path chaosWork = tempDir("svc-drop-chaos");
  fault::FaultPlan plan;
  plan.buddyDrop(/*rank=*/2, /*occurrence=*/1, /*count=*/100);
  plan.rankDeath(/*rank=*/2, /*occurrence=*/15);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  sched::ServiceConfig cfg;
  cfg.coreBudget = 4;
  cfg.workDir = chaosWork.string();
  cfg.respawnBudget = 1;
  sched::ScenarioService service(cfg);
  auto job = service.submit(spec);
  ASSERT_EQ(job->wait(), sched::JobPhase::Completed);

  {
    std::lock_guard<std::mutex> lock(job->mutex);
    EXPECT_EQ(job->respawns, 1);
    EXPECT_TRUE(job->requeues.empty());
  }
  EXPECT_EQ(blobMd5(job->products, "surface.bin"), surfaceMd5);
  fs::remove_all(baseWork);
  fs::remove_all(chaosWork);
}

}  // namespace
}  // namespace awp
