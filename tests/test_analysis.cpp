// Tests for the analysis toolkit: GMPEs, PGV-vs-distance statistics, and
// the aVal acceptance test.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/aval.hpp"
#include "analysis/gmpe.hpp"
#include "analysis/pgv.hpp"

namespace awp::analysis {
namespace {

TEST(Gmpe, MedianDecaysWithDistance) {
  for (const auto& g : {ba08Like(), cb08Like()}) {
    double prev = 1e9;
    for (double r : {1.0, 5.0, 20.0, 50.0, 100.0, 200.0}) {
      const double pgv = g.medianPgv(8.0, r);
      EXPECT_LT(pgv, prev) << g.name;
      prev = pgv;
    }
  }
}

TEST(Gmpe, MedianGrowsWithMagnitude) {
  const auto g = ba08Like();
  EXPECT_LT(g.medianPgv(6.0, 20.0), g.medianPgv(7.0, 20.0));
  EXPECT_LT(g.medianPgv(7.0, 20.0), g.medianPgv(8.0, 20.0));
}

TEST(Gmpe, Magnitude8RockShape) {
  // Fig 23 shape anchors: tens of cm/s near the fault, a few cm/s at
  // 200 km, for a magnitude-8 event at rock sites.
  const auto g = ba08Like();
  const double near = g.medianPgv(8.0, 5.0);
  const double far = g.medianPgv(8.0, 200.0);
  EXPECT_GT(near, 20.0);
  EXPECT_LT(near, 200.0);
  EXPECT_GT(far, 0.5);
  EXPECT_LT(far, 10.0);
  EXPECT_GT(near / far, 10.0);
}

TEST(Gmpe, PoeAtMedianIsHalf) {
  const auto g = cb08Like();
  const double median = g.medianPgv(8.0, 30.0);
  EXPECT_NEAR(g.poe(8.0, 30.0, median), 0.5, 1e-9);
  // One sigma above the median ~ 16% POE.
  EXPECT_NEAR(g.poe(8.0, 30.0, g.pgvAtEpsilon(8.0, 30.0, 1.0)), 0.1587,
              1e-3);
  EXPECT_GT(g.poe(8.0, 30.0, 0.001), 0.999);
}

TEST(DistanceToTrace, PointSegmentGeometry) {
  const auto trace = source::FaultTrace::straight(1000.0, 9000.0, 2000.0);
  EXPECT_NEAR(distanceToTrace(5000.0, 5000.0, trace), 3000.0, 1.0);
  EXPECT_NEAR(distanceToTrace(0.0, 2000.0, trace), 1000.0, 40.0);
  EXPECT_NEAR(distanceToTrace(5000.0, 2000.0, trace), 0.0, 1.0);
}

TEST(PgvVsDistance, BinsAndStatistics) {
  // Synthetic PGV map decaying as 1/r from a central trace.
  const std::size_t nx = 80, ny = 60;
  const double h = 1000.0;
  const auto trace = source::FaultTrace::straight(10e3, 70e3, 30e3);
  std::vector<float> map(nx * ny);
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) {
      const double r = std::max(
          1000.0, distanceToTrace(i * h, j * h, trace));
      map[i + nx * j] = static_cast<float>(1.0 / (r / 1000.0));
    }

  const auto bins = pgvVsDistance(
      map, nx, ny, h, trace, [](std::size_t, std::size_t) { return true; },
      {1.0, 2.0, 5.0, 10.0, 20.0});
  ASSERT_EQ(bins.size(), 4u);
  for (std::size_t b = 1; b < bins.size(); ++b) {
    EXPECT_GT(bins[b].count, 0u);
    EXPECT_LT(bins[b].medianCmS, bins[b - 1].medianCmS);
    EXPECT_LE(bins[b].p16CmS, bins[b].medianCmS);
    EXPECT_GE(bins[b].p84CmS, bins[b].medianCmS);
  }
}

TEST(PgvVsDistance, SitePredicateFilters) {
  const std::size_t nx = 20, ny = 20;
  const auto trace = source::FaultTrace::straight(0.0, 20e3, 10e3);
  std::vector<float> map(nx * ny, 1.0f);
  const auto all = pgvVsDistance(
      map, nx, ny, 1000.0, trace,
      [](std::size_t, std::size_t) { return true; }, {0.0, 50.0});
  const auto none = pgvVsDistance(
      map, nx, ny, 1000.0, trace,
      [](std::size_t, std::size_t) { return false; }, {0.0, 50.0});
  EXPECT_GT(all[0].count, 0u);
  EXPECT_EQ(none[0].count, 0u);
}

TEST(MapUtils, PeakAndMean) {
  std::vector<float> map(12, 1.0f);
  map[7] = 5.0f;  // (i=3, j=1) for nx=4
  const auto peak = mapPeak(map, 4, 3);
  EXPECT_EQ(peak.value, 5.0f);
  EXPECT_EQ(peak.i, 3u);
  EXPECT_EQ(peak.j, 1u);
}

core::SeismogramTrace makeTrace(const std::string& name, float scale) {
  core::SeismogramTrace t;
  t.name = name;
  for (int n = 0; n < 50; ++n) {
    const float v = scale * std::sin(0.3f * static_cast<float>(n));
    t.u.push_back(v);
    t.v.push_back(0.5f * v);
    t.w.push_back(-v);
  }
  return t;
}

TEST(Aval, PassesIdenticalTraces) {
  const std::vector<core::SeismogramTrace> ref = {makeTrace("a", 1.0f),
                                                  makeTrace("b", 2.0f)};
  const auto result = acceptanceTest(ref, ref, 0.01);
  EXPECT_TRUE(result.pass);
  EXPECT_DOUBLE_EQ(result.worstMisfit, 0.0);
}

TEST(Aval, FailsOnMismatch) {
  const std::vector<core::SeismogramTrace> ref = {makeTrace("a", 1.0f)};
  const std::vector<core::SeismogramTrace> cand = {makeTrace("a", 1.5f)};
  const auto result = acceptanceTest(cand, ref, 0.1);
  EXPECT_FALSE(result.pass);
  EXPECT_EQ(result.worstTrace, "a");
  EXPECT_NEAR(result.worstMisfit, 0.5, 1e-6);
}

TEST(Aval, MissingTraceThrows) {
  const std::vector<core::SeismogramTrace> ref = {makeTrace("a", 1.0f)};
  const std::vector<core::SeismogramTrace> cand = {makeTrace("b", 1.0f)};
  EXPECT_THROW(acceptanceTest(cand, ref, 0.1), Error);
}

TEST(Aval, TracePgv) {
  core::SeismogramTrace t;
  t.u = {3.0f, 0.0f};
  t.v = {4.0f, 0.0f};
  t.w = {0.0f, 12.0f};
  EXPECT_DOUBLE_EQ(tracePgv(t), 12.0);
  EXPECT_DOUBLE_EQ(tracePgv(t, /*horizontalOnly=*/true), 5.0);
}

}  // namespace
}  // namespace awp::analysis
