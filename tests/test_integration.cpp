// Integration tests across modules: the full two-step M8 method (rupture
// -> dSrcG -> wave propagation), mesh pipeline feeding the solver, basin
// amplification phenomenology, and solver + aggregated output + partitioned
// sources working together.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>

#include "analysis/aval.hpp"
#include "analysis/pgv.hpp"
#include "core/solver.hpp"
#include "fault/injector.hpp"
#include "io/checkpoint.hpp"
#include "io/checksum.hpp"
#include "util/retry.hpp"
#include "mesh/generator.hpp"
#include "mesh/partitioner.hpp"
#include "rupture/solver.hpp"
#include "source/dsrcg.hpp"
#include "source/petasrcp.hpp"
#include "vcluster/cluster.hpp"

namespace awp {
namespace {

using vcluster::CartTopology;
using vcluster::Dims3;
using vcluster::ThreadCluster;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("awp_integ_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~IntegrationTest() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IntegrationTest, MeshPipelineFeedsSolverIdentically) {
  // CVM -> CVM2MESH -> PetaMeshP (both models) -> solver: the solver fed
  // by pre-partitioned files must produce the same wavefield as one fed
  // by read+redistribute.
  const grid::GridDims dims{32, 24, 16};
  const double h = 800.0;
  const auto cvm = vmodel::CommunityVelocityModel::socal(
      dims.nx * h, dims.ny * h, 0.5 * dims.ny * h);
  const std::string meshPath = (dir_ / "mesh.bin").string();
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    mesh::generateMesh(comm, cvm, {dims.nx, dims.ny, dims.nz, h, 0, 0},
                       meshPath);
  });

  CartTopology topo(Dims3{2, 2, 1});
  auto runWith = [&](bool prePartitioned) {
    std::vector<float> result;
    ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
      mesh::MeshBlock block;
      if (prePartitioned) {
        mesh::prePartitionMesh(comm, meshPath, topo,
                               (dir_ / "parts").string());
        block = mesh::readPrePartitioned((dir_ / "parts").string(),
                                         comm.rank());
      } else {
        block = mesh::readAndRedistribute(comm, meshPath, topo, 2, 2);
      }
      core::SolverConfig config;
      config.globalDims = dims;
      config.h = h;
      core::WaveSolver solver(comm, topo, config, block);
      solver.addSource(core::explosionPointSource(
          16, 12, 8,
          core::rickerWavelet(1.5, 0.8, solver.config().dt, 60, 1e15)));
      solver.run(60);
      if (comm.rank() == 0) {
        const auto& u = solver.grid().u;
        result.assign(u.data(), u.data() + u.size());
      }
    });
    return result;
  };

  const auto a = runWith(true);
  const auto b = runWith(false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t n = 0; n < a.size(); ++n) ASSERT_EQ(a[n], b[n]);
}

TEST_F(IntegrationTest, TwoStepMethodProducesGroundMotion) {
  // Step 1: spontaneous rupture on a planar fault.
  rupture::RuptureConfig rc;
  rc.globalDims = {72, 26, 28};
  rc.h = 700.0;
  rc.faultJ = 12;
  rc.fi0 = 12;
  rc.fi1 = 60;
  rc.fk1 = rc.globalDims.nz - 1;
  rc.fk0 = rc.fk1 - 16;
  rc.friction.dc = 1.0;
  rc.friction.dcSurface = 3.0;
  rc.stress.nucX = 0.3 * (rc.fi1 - rc.fi0) * rc.h;
  rc.stress.nucZ = 6000.0;
  rc.stress.nucRadius = 4500.0;
  rc.stress.nucExcess = 0.15;
  rc.stress.corrX = 8e3;
  rc.stress.corrZ = 3e3;
  rc.timeDecimation = 2;
  rc.slipRateThreshold = 0.01;

  rupture::FaultHistory fault;
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{2, 1, 1});
    rupture::DynamicRuptureSolver dfr(
        comm, topo, rc, vmodel::LayeredModel::socalBackground());
    dfr.run(260);
    auto h = dfr.gather();
    if (comm.rank() == 0) fault = std::move(h);
  });
  ASSERT_GT(fault.nx, 0u);
  ASSERT_GT(fault.momentMagnitude(), 5.0);

  // Step 2: dSrcG -> PetaSrcP -> wave propagation.
  const grid::GridDims dims{64, 40, 18};
  const double h = 1200.0;
  const auto trace = source::FaultTrace::straight(
      0.2 * dims.nx * h, 0.8 * dims.nx * h, 0.5 * dims.ny * h);
  const double dt = 0.45 * h / 7000.0;
  source::WaveModelTarget target{dims, h, dt};
  source::FilterConfig filter;
  filter.cutoffHz = 0.4 / dt / 10.0;
  const auto sources = source::fromRupture(fault, trace, target, filter);
  ASSERT_FALSE(sources.empty());

  // The moment must survive the mapping within the filter/resample loss.
  const double m0Fault = fault.seismicMoment();
  const double m0Sources = source::totalMoment(sources, dt);
  EXPECT_NEAR(m0Sources / m0Fault, 1.0, 0.3);

  CartTopology topo(Dims3{2, 2, 1});
  const auto info = source::partitionSources(sources, topo, dims, 200,
                                             (dir_ / "src").string());
  EXPECT_GE(info.segments, 1);

  std::vector<float> pgvh;
  ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
    core::SolverConfig config;
    config.globalDims = dims;
    config.h = h;
    config.dt = dt;
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5600.0f, 3200.0f, 2700.0f});
    for (int seg = 0; seg < info.segments; ++seg)
      for (auto& s :
           source::loadSegment((dir_ / "src").string(), comm.rank(), seg))
        solver.addSource(std::move(s));
    solver.run(160);
    auto map = solver.surface().gatherPgvh(comm, topo);
    if (comm.rank() == 0) pgvh = std::move(map);
  });

  // Ground motion exists, and the largest PGVs hug the fault trace.
  const auto peak = analysis::mapPeak(pgvh, dims.nx, dims.ny);
  ASSERT_GT(peak.value, 1e-4f);
  const double peakDist = analysis::distanceToTrace(
      peak.i * h, peak.j * h, trace);
  EXPECT_LT(peakDist, 10e3);

  // PGV decays away from the fault: mean at 3-10 km > mean at 20-35 km.
  const double nearMean = analysis::meanWithinDistance(
      pgvh, dims.nx, dims.ny, h, trace, 3.0, 10.0);
  const double farMean = analysis::meanWithinDistance(
      pgvh, dims.nx, dims.ny, h, trace, 20.0, 35.0);
  EXPECT_GT(nearMean, farMean);
}

TEST_F(IntegrationTest, BasinsAmplifyGroundMotion) {
  // The same source in a basin model vs a rock-only model: the basin-top
  // site must see larger PGV than the same location without the basin
  // (the basin-amplification phenomenology of §VI-VII). The basin must be
  // numerically resolvable: h = 500 m with basin Vs 800 m/s keeps a few
  // points per wavelength at the 0.6 Hz source.
  const grid::GridDims dims{48, 48, 26};
  const double h = 500.0;

  auto runModel = [&](bool withBasins) {
    // Hard-rock background so the sediment impedance contrast is strong
    // (the socal background is itself soft near the surface).
    const vmodel::LayeredModel background(
        {{0.0, 2500.0}, {4000.0, 3000.0}, {16000.0, 3500.0}});
    std::vector<vmodel::Basin> basins;
    if (withBasins)
      basins.push_back(vmodel::Basin{"test", 12e3, 12e3, 6e3, 6e3, 2500.0,
                                     800.0});
    const vmodel::CommunityVelocityModel cvm(background, basins, 700.0);

    std::vector<core::SeismogramTrace> traces;
    ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
      CartTopology topo(Dims3{2, 2, 1});
      const mesh::MeshSpec spec{dims.nx, dims.ny, dims.nz, h, 0, 0};
      mesh::MeshBlock block;
      block.spec = mesh::subdomainFor(topo, spec, comm.rank());
      block.points.resize(block.spec.pointCount());
      for (std::size_t k = 0; k < block.spec.z.count(); ++k)
        for (std::size_t j = 0; j < block.spec.y.count(); ++j)
          for (std::size_t i = 0; i < block.spec.x.count(); ++i)
            block.at(i, j, k) =
                cvm.sample((block.spec.x.begin + i) * h,
                           (block.spec.y.begin + j) * h,
                           (block.spec.z.begin + k) * h);
      core::SolverConfig config;
      config.globalDims = dims;
      config.h = h;
      core::WaveSolver solver(comm, topo, config, block);
      // Explosion directly under the basin, 10 km below the surface.
      solver.addSource(core::explosionPointSource(
          24, 24, dims.nz - 1 - 20,
          core::rickerWavelet(0.6, 2.2, solver.config().dt, 300, 1e16)));
      solver.addReceiver("basin-top", 24, 24);
      solver.run(300);
      auto gathered = solver.receivers().gather(comm);
      if (comm.rank() == 0) traces = std::move(gathered);
    });
    return analysis::tracePgv(traces.at(0));
  };

  const double withBasin = runModel(true);
  const double withoutBasin = runModel(false);
  EXPECT_GT(withBasin, 1.25 * withoutBasin);
}

TEST_F(IntegrationTest, ChecksummedSurfaceOutputRoundTrip) {
  // AWM with aggregated surface output; afterwards the file is readable,
  // has the expected layout, and its parallel checksum is deterministic.
  const grid::GridDims dims{32, 32, 16};
  const std::string out = (dir_ / "surface.bin").string();
  std::string sum1, sum2;
  for (std::string* sum : {&sum1, &sum2}) {
    ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
      CartTopology topo(Dims3{2, 2, 1});
      core::SolverConfig config;
      config.globalDims = dims;
      config.h = 500.0;
      core::WaveSolver solver(comm, topo, config,
                              vmodel::Material{5000.0f, 2900.0f, 2700.0f});
      io::SharedFile file(out, io::SharedFile::Mode::Write);
      core::SurfaceOutputConfig surf;
      surf.file = &file;
      surf.sampleEverySteps = 5;
      surf.spatialDecimation = 2;
      surf.flushEverySamples = 4;
      solver.attachSurfaceOutput(surf);
      solver.addSource(core::explosionPointSource(
          16, 16, 8,
          core::rickerWavelet(2.0, 0.5, solver.config().dt, 60, 1e15)));
      solver.run(60);

      // Checksum the file cooperatively (each rank hashes a slice).
      io::SharedFile reread(out, io::SharedFile::Mode::Read);
      const std::uint64_t size = reread.size();
      const std::uint64_t slice = size / comm.size();
      const std::uint64_t begin = comm.rank() * slice;
      const std::uint64_t len =
          comm.rank() == comm.size() - 1 ? size - begin : slice;
      std::vector<std::byte> buf(len);
      reread.readAt(begin, std::span<std::byte>(buf));
      const auto result = io::parallelMd5(comm, buf);
      if (comm.rank() == 0) *sum = result.collectionHex;
    });
  }
  EXPECT_FALSE(sum1.empty());
  EXPECT_EQ(sum1, sum2);  // deterministic across reruns

  // Layout: 12 sampled steps of 3 floats per decimated surface point.
  io::SharedFile file(out, io::SharedFile::Mode::Read);
  EXPECT_EQ(file.size(), 12ull * 3 * 16 * 16 * sizeof(float));
}

TEST_F(IntegrationTest, ChaosRestartReproducesUninterruptedRun) {
  // Resilience end-to-end (§III.F/§III.H): run a simulation under fault
  // injection — the newest checkpoint generation of rank 1 is silently
  // corrupted on disk and rank 0 sees transient write errors — then
  // restart a fresh solver. The collective restart must agree on the
  // newest step valid on *every* rank (the older generation), and the
  // restarted receiver traces must be bit-identical to the uninterrupted
  // run's tail.
  const grid::GridDims dims{28, 20, 14};
  const std::string ckptDir = (dir_ / "ckpt").string();
  const CartTopology topo(Dims3{2, 1, 1});

  auto makeSolver = [&](vcluster::Communicator& comm,
                        io::CheckpointStore* store) {
    core::SolverConfig config;
    config.globalDims = dims;
    config.h = 600.0;
    auto solver = std::make_unique<core::WaveSolver>(
        comm, topo, config, vmodel::Material{5200.0f, 3000.0f, 2700.0f});
    solver->addSource(core::explosionPointSource(
        14, 10, 7,
        core::rickerWavelet(2.0, 0.5, solver->config().dt, 40, 1e15)));
    solver->addReceiver("site", 20, 12);
    if (store != nullptr) solver->attachCheckpoints(store, 10);
    return solver;
  };

  // Run A: fault-free reference, 30 steps.
  std::vector<core::SeismogramTrace> refTraces;
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    io::CheckpointStore store((dir_ / "ref_ckpt").string());
    auto solver = makeSolver(comm, &store);
    solver->run(30);
    auto gathered = solver->receivers().gather(comm);
    if (comm.rank() == 0) refTraces = std::move(gathered);
  });
  ASSERT_EQ(refTraces.size(), 1u);
  ASSERT_EQ(refTraces[0].u.size(), 30u);

  // Run B: same simulation under fault injection. Rank 1's second
  // checkpoint (step 20) is bit-flipped on disk; rank 0's second
  // checkpoint hits two transient write errors, which the shared-file
  // retry layer absorbs. Physics is unaffected either way.
  fault::FaultPlan plan;
  plan.bitFlip("ckpt.payload", /*rank=*/1, /*occurrence=*/2);
  plan.transientIoError("sharedfile.write", /*rank=*/0, /*occurrence=*/3,
                        /*count=*/2);
  fault::FaultInjector injector(std::move(plan), /*seed=*/2026);
  util::resetRetryRegistry();
  std::vector<core::SeismogramTrace> chaosTraces;
  {
    fault::ScopedInjection scope(injector);
    ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
      io::CheckpointStore store(ckptDir);
      auto solver = makeSolver(comm, &store);
      solver->run(30);
      auto gathered = solver->receivers().gather(comm);
      if (comm.rank() == 0) chaosTraces = std::move(gathered);
    });
  }
  // All three scheduled faults fired, and the transient errors were
  // recovered by retries without exhausting the budget.
  EXPECT_EQ(injector.faultsInjected(), 3u);
  const auto reg = util::retryRegistrySnapshot();
  EXPECT_EQ(reg.at("sharedfile.write").failures, 2u);
  EXPECT_EQ(reg.at("sharedfile.write").exhausted, 0u);
  // The faults were invisible to the running simulation.
  ASSERT_EQ(chaosTraces.size(), 1u);
  EXPECT_EQ(chaosTraces[0].u, refTraces[0].u);

  // Run B2: fresh solver, no injection. Rank 0's newest valid step is 20
  // but rank 1's step-20 generation fails its digest check, so the
  // collective restart must agree on step 10 for everyone.
  std::vector<core::SeismogramTrace> restartTraces;
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    io::CheckpointStore store(ckptDir);
    EXPECT_EQ(store.newestValidStep(comm.rank()),
              comm.rank() == 0 ? 20u : 10u);
    auto solver = makeSolver(comm, &store);
    solver->restart();
    EXPECT_EQ(solver->currentStep(), 11u);
    solver->run(30 - solver->currentStep());
    auto gathered = solver->receivers().gather(comm);
    if (comm.rank() == 0) restartTraces = std::move(gathered);
  });

  // Recording is step-indexed, so the restarted solver's trace is aligned
  // to simulation steps: entries for the pre-restart window it never saw
  // stay zero-filled, and the re-run tail is bit-identical to the
  // uninterrupted run at the same steps.
  ASSERT_EQ(restartTraces.size(), 1u);
  const auto& ref = refTraces[0];
  const auto& got = restartTraces[0];
  ASSERT_EQ(got.u.size(), 30u);
  for (std::size_t k = 0; k < 11; ++k) {
    ASSERT_EQ(got.u[k], 0.0f) << "pre-restart step " << k;
    ASSERT_EQ(got.v[k], 0.0f) << "pre-restart step " << k;
    ASSERT_EQ(got.w[k], 0.0f) << "pre-restart step " << k;
  }
  for (std::size_t k = 11; k < got.u.size(); ++k) {
    ASSERT_EQ(got.u[k], ref.u[k]) << "step " << k;
    ASSERT_EQ(got.v[k], ref.v[k]) << "step " << k;
    ASSERT_EQ(got.w[k], ref.w[k]) << "step " << k;
  }
}

}  // namespace
}  // namespace awp
