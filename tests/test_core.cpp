// Physics and parallel-correctness tests for the AWM wave solver: wave
// speeds, radiation symmetry, free surface, absorbing boundaries,
// attenuation, kernel-variant equivalence, decomposition invariance, and
// checkpoint/restart.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>

#include "core/solver.hpp"
#include "vcluster/cluster.hpp"

namespace awp::core {
namespace {

using grid::kHalo;
using vcluster::CartTopology;
using vcluster::Dims3;
using vcluster::ThreadCluster;

vmodel::Material rock() { return {5196.0f, 3000.0f, 2700.0f}; }

SolverConfig baseConfig(std::size_t n = 32) {
  SolverConfig c;
  c.globalDims = {n, n, n};
  c.h = 100.0;
  c.absorbing = AbsorbingType::Sponge;
  c.spongeWidth = 8;
  return c;
}

// Run a single-rank solver with an explosion at the center and return the
// gathered traces at the requested surface receivers.
std::vector<SeismogramTrace> runExplosion(
    const SolverConfig& config, Dims3 dims, std::size_t steps,
    const std::vector<std::pair<std::size_t, std::size_t>>& receivers,
    double f0 = 4.0) {
  std::vector<SeismogramTrace> out;
  ThreadCluster::run(dims.total(), [&](vcluster::Communicator& comm) {
    CartTopology topo(dims);
    WaveSolver solver(comm, topo, config, rock());
    const auto n = config.globalDims.nx;
    const double dt = solver.config().dt;
    solver.addSource(explosionPointSource(
        n / 2, n / 2, config.globalDims.nz / 2,
        rickerWavelet(f0, 1.5 / f0, dt, steps, 1e16)));
    int r = 0;
    for (auto [gi, gj] : receivers)
      solver.addReceiver("r" + std::to_string(r++), gi, gj);
    solver.run(steps);
    auto traces = solver.receivers().gather(comm);
    if (comm.rank() == 0) out = std::move(traces);
  });
  return out;
}

TEST(SourceHelpers, RickerPeaksAtDelay) {
  const auto w = rickerWavelet(2.0, 0.5, 0.01, 200);
  std::size_t peak = 0;
  for (std::size_t i = 0; i < w.size(); ++i)
    if (w[i] > w[peak]) peak = i;
  EXPECT_NEAR(static_cast<double>(peak) * 0.01, 0.5, 0.011);
}

TEST(SourceHelpers, MomentMagnitude) {
  // "a total seismic moment of 1.0e21 Nm (Mw = 8.0)" (§VII.A).
  EXPECT_NEAR(momentMagnitude(1.0e21), 8.0, 0.04);
  EXPECT_NEAR(momentMagnitude(1.12e20), 7.33, 0.05);
}

TEST(Solver, AutoDtSatisfiesCfl) {
  ThreadCluster::run(1, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{1, 1, 1});
    WaveSolver solver(comm, topo, baseConfig(16), rock());
    const double dt = solver.config().dt;
    EXPECT_NEAR(dt, 0.45 * 100.0 / 5196.0, 1e-6);
  });
}

TEST(Solver, PWaveArrivesAtTheRightTime) {
  // Explosion at the center of a 48^3 box; receiver on the surface right
  // above. The first P arrival should be near r / vp.
  auto config = baseConfig(48);
  const std::size_t steps = 260;
  const auto traces =
      runExplosion(config, Dims3{1, 1, 1}, steps, {{24, 24}}, 5.0);
  ASSERT_EQ(traces.size(), 1u);
  const auto& w = traces[0].w;

  // First time |w| exceeds 5% of its peak.
  float peak = 0.0f;
  for (float v : w) peak = std::max(peak, std::abs(v));
  ASSERT_GT(peak, 0.0f);
  std::size_t first = 0;
  while (first < w.size() && std::abs(w[first]) < 0.05f * peak) ++first;

  const double dt = 0.45 * 100.0 / 5196.0;
  const double distance = 23.5 * 100.0;  // center to surface plane
  const double expected = distance / 5196.0 + 0.15;  // + source onset ramp
  const double measured = static_cast<double>(first) * dt;
  EXPECT_NEAR(measured, expected, 0.15);
}

TEST(Solver, ExplosionRadiationIsSymmetric) {
  // The interior operator is exactly mirror-symmetric (the asymmetry of a
  // truncated staggered lattice only enters through the boundaries), so an
  // explosion at the center of an odd grid must radiate bitwise-
  // symmetrically as long as no wave has touched a boundary. Mirror pairs
  // respect the staggering: w sits at integer (i, j) and mirrors cell-to-
  // cell about i = 16; u sits at i - 1/2, so the mirror of node i = 10
  // (x = 9.5) is node i = 23 (x = 22.5); same for v in y (j = 10 -> 21).
  ThreadCluster::run(1, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{1, 1, 1});
    auto config = baseConfig(33);
    config.absorbing = AbsorbingType::None;
    config.freeSurface = false;
    WaveSolver solver(comm, topo, config, rock());
    const double dt = solver.config().dt;
    // Emission finishes by ~step 50; the wavefront needs ~36 steps from
    // the source to a face, so nothing reaches a boundary within 60 steps.
    solver.addSource(explosionPointSource(
        16, 16, 16, rickerWavelet(6.0, 0.25, dt, 60, 1e16)));
    bool sawSignal = false;
    for (int n = 0; n < 45; ++n) {
      solver.step();
      auto& g = solver.grid();
      const std::size_t K = kHalo + 16;
      ASSERT_EQ(g.w(kHalo + 10, kHalo + 16, K),
                g.w(kHalo + 22, kHalo + 16, K));
      ASSERT_EQ(g.u(kHalo + 10, kHalo + 16, K),
                -g.u(kHalo + 23, kHalo + 16, K));
      ASSERT_EQ(g.w(kHalo + 16, kHalo + 10, K),
                g.w(kHalo + 16, kHalo + 22, K));
      ASSERT_EQ(g.v(kHalo + 16, kHalo + 10, K),
                -g.v(kHalo + 16, kHalo + 21, K));
      if (std::abs(g.w(kHalo + 10, kHalo + 16, K)) > 0.0f)
        sawSignal = true;
    }
    EXPECT_TRUE(sawSignal);
  });
}

TEST(Solver, FreeSurfaceKeepsTractionImagesExact) {
  ThreadCluster::run(1, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{1, 1, 1});
    auto config = baseConfig(24);
    WaveSolver solver(comm, topo, config, rock());
    const double dt = solver.config().dt;
    solver.addSource(explosionPointSource(
        12, 12, 12, rickerWavelet(4.0, 0.4, dt, 100, 1e15)));
    solver.run(100);
    auto& g = solver.grid();
    const std::size_t T = kHalo + g.dims().nz - 1;
    for (std::size_t j = kHalo; j < kHalo + g.dims().ny; ++j)
      for (std::size_t i = kHalo; i < kHalo + g.dims().nx; ++i) {
        ASSERT_EQ(g.xz(i, j, T), 0.0f);
        ASSERT_EQ(g.yz(i, j, T), 0.0f);
        ASSERT_EQ(g.zz(i, j, T + 1), -g.zz(i, j, T));
      }
  });
}

TEST(Solver, SurfaceMotionIsNonZeroWithFreeSurface) {
  auto config = baseConfig(32);
  const auto traces = runExplosion(config, Dims3{1, 1, 1}, 160, {{16, 16}});
  float peak = 0.0f;
  for (float v : traces[0].w) peak = std::max(peak, std::abs(v));
  EXPECT_GT(peak, 0.0f);
}

double residualEnergyAfterExit(AbsorbingType type, int width) {
  // Deep source so the wavefront hits the sides and bottom; run long
  // enough for everything to leave a 32^3 box, then measure what's left.
  double residual = 0.0, peak = 0.0;
  ThreadCluster::run(1, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{1, 1, 1});
    auto config = baseConfig(32);
    config.absorbing = type;
    config.spongeWidth = width;
    config.pml.width = width;
    WaveSolver solver(comm, topo, config, rock());
    const double dt = solver.config().dt;
    solver.addSource(explosionPointSource(
        16, 16, 16, rickerWavelet(5.0, 0.3, dt, 60, 1e15)));
    for (int s = 0; s < 400; ++s) {
      solver.step();
      peak = std::max(peak, solver.grid().kineticEnergy());
    }
    residual = solver.grid().kineticEnergy();
  });
  return residual / peak;
}

TEST(Absorbing, SpongeDrainsEnergy) {
  const double none = residualEnergyAfterExit(AbsorbingType::None, 0);
  const double sponge = residualEnergyAfterExit(AbsorbingType::Sponge, 8);
  EXPECT_LT(sponge, 0.05);
  EXPECT_LT(sponge, none * 0.5);
}

TEST(Absorbing, PmlAbsorbsBetterThanSponge) {
  // §II.D: "the ability of the sponge layers to absorb reflections is
  // poorer than PMLs".
  const double sponge = residualEnergyAfterExit(AbsorbingType::Sponge, 8);
  const double pml = residualEnergyAfterExit(AbsorbingType::Pml, 8);
  EXPECT_LT(pml, sponge);
  EXPECT_LT(pml, 0.02);
}

TEST(Attenuation, LowQReducesAmplitude) {
  auto runWithQ = [&](bool attenuation, double q) {
    float peak = 0.0f;
    ThreadCluster::run(1, [&](vcluster::Communicator& comm) {
      CartTopology topo(Dims3{1, 1, 1});
      auto config = baseConfig(40);
      config.attenuation.enabled = attenuation;
      config.attenuation.fMin = 0.5;
      config.attenuation.fMax = 10.0;
      WaveSolver solver(comm, topo, config, rock());
      if (attenuation) {
        solver.grid().qsInv.fill(static_cast<float>(2.0 / q));
        solver.grid().qpInv.fill(static_cast<float>(2.0 / q));
      }
      const double dt = solver.config().dt;
      solver.addSource(explosionPointSource(
          20, 20, 8, rickerWavelet(5.0, 0.3, dt, 80, 1e15)));
      solver.addReceiver("top", 20, 20);
      solver.run(250);
      const auto traces = solver.receivers().gather(comm);
      if (comm.rank() == 0)
        for (float v : traces[0].w) peak = std::max(peak, std::abs(v));
    });
    return peak;
  };
  const float elastic = runWithQ(false, 0.0);
  const float q10 = runWithQ(true, 10.0);
  const float q50 = runWithQ(true, 50.0);
  ASSERT_GT(elastic, 0.0f);
  // Attenuation reduces amplitude, more so for lower Q.
  EXPECT_LT(q10, 0.9f * elastic);
  EXPECT_LT(q10, q50);
  // Sanity: Q=10 over ~3.1 km at ~5 Hz with vp ~5.2 km/s predicts roughly
  // exp(-pi f r / (Q c)) ~ 0.4; allow a generous band for the
  // coarse-grained scheme.
  EXPECT_GT(q10, 0.15f * elastic);
  EXPECT_LT(q10, 0.8f * elastic);
}

TEST(Kernels, VariantsAgree) {
  // All §IV.B variants must produce the same physics.
  auto runVariant = [&](bool recip, bool blocked, bool unrolled) {
    std::vector<float> result;
    ThreadCluster::run(1, [&](vcluster::Communicator& comm) {
      CartTopology topo(Dims3{1, 1, 1});
      auto config = baseConfig(24);
      config.kernels.useReciprocals = recip;
      config.kernels.cacheBlocked = blocked;
      config.kernels.unrolled = unrolled;
      WaveSolver solver(comm, topo, config, rock());
      const double dt = solver.config().dt;
      solver.addSource(explosionPointSource(
          12, 12, 12, rickerWavelet(4.0, 0.4, dt, 60, 1e15)));
      solver.run(60);
      const auto& u = solver.grid().u;
      result.assign(u.data(), u.data() + u.size());
    });
    return result;
  };
  const auto reference = runVariant(true, false, false);
  float refPeak = 0.0f;
  for (float v : reference) refPeak = std::max(refPeak, std::abs(v));
  ASSERT_GT(refPeak, 0.0f);

  for (auto [recip, blocked, unrolled] :
       {std::array<bool, 3>{false, false, false},
        {true, true, false},
        {true, false, true},
        {true, true, true}}) {
    const auto got = runVariant(recip, blocked, unrolled);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t n = 0; n < got.size(); ++n)
      ASSERT_NEAR(got[n], reference[n], 1e-5f * refPeak)
          << "variant recip=" << recip << " blocked=" << blocked
          << " unrolled=" << unrolled;
  }
}

// The decomposition-invariance suite: the same problem must produce the
// same seismograms regardless of rank count, exchange mode, reduced
// communication, or overlap. This is what makes the §IV optimizations
// safe.
struct ParallelCase {
  Dims3 dims;
  grid::HaloExchanger::Mode mode;
  bool reduced;
  bool overlap;
};

class ParallelEquivalence : public ::testing::TestWithParam<ParallelCase> {};

std::vector<SeismogramTrace> runCase(const ParallelCase& pc) {
  auto config = baseConfig(24);
  config.commMode = pc.mode;
  config.reducedComm = pc.reduced;
  config.overlap = pc.overlap;
  std::vector<SeismogramTrace> out;
  ThreadCluster::run(pc.dims.total(), [&](vcluster::Communicator& comm) {
    CartTopology topo(pc.dims);
    WaveSolver solver(comm, topo, config, rock());
    const double dt = solver.config().dt;
    solver.addSource(explosionPointSource(
        13, 11, 12, rickerWavelet(4.0, 0.4, dt, 80, 1e15)));
    solver.addSource(strikeSlipPointSource(
        7, 15, 10, rickerWavelet(3.0, 0.5, dt, 80, 5e15)));
    solver.addReceiver("a", 6, 6);
    solver.addReceiver("b", 18, 12);
    solver.run(90);
    auto traces = solver.receivers().gather(comm);
    if (comm.rank() == 0) out = std::move(traces);
  });
  // Sort by name for stable comparison.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return out;
}

TEST_P(ParallelEquivalence, MatchesSingleRankReference) {
  static const auto reference = runCase(
      {Dims3{1, 1, 1}, grid::HaloExchanger::Mode::Asynchronous, true,
       false});
  const auto got = runCase(GetParam());
  ASSERT_EQ(got.size(), reference.size());
  for (std::size_t t = 0; t < got.size(); ++t) {
    ASSERT_EQ(got[t].name, reference[t].name);
    ASSERT_EQ(got[t].u.size(), reference[t].u.size());
    for (std::size_t n = 0; n < got[t].u.size(); ++n) {
      ASSERT_FLOAT_EQ(got[t].u[n], reference[t].u[n]);
      ASSERT_FLOAT_EQ(got[t].v[n], reference[t].v[n]);
      ASSERT_FLOAT_EQ(got[t].w[n], reference[t].w[n]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DecompositionAndCommModes, ParallelEquivalence,
    ::testing::Values(
        ParallelCase{Dims3{2, 1, 1},
                     grid::HaloExchanger::Mode::Asynchronous, true, false},
        ParallelCase{Dims3{2, 2, 1},
                     grid::HaloExchanger::Mode::Asynchronous, true, false},
        ParallelCase{Dims3{2, 2, 2},
                     grid::HaloExchanger::Mode::Asynchronous, true, false},
        ParallelCase{Dims3{1, 2, 2},
                     grid::HaloExchanger::Mode::Synchronous, true, false},
        ParallelCase{Dims3{2, 2, 1},
                     grid::HaloExchanger::Mode::Asynchronous, false, false},
        ParallelCase{Dims3{2, 2, 1},
                     grid::HaloExchanger::Mode::Asynchronous, true, true},
        ParallelCase{Dims3{3, 2, 1},
                     grid::HaloExchanger::Mode::Synchronous, false, true}));

TEST(Checkpoint, RestartReproducesUninterruptedRun) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("awp_ckpt_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  auto makeSolver = [&](vcluster::Communicator& comm,
                        const CartTopology& topo,
                        io::CheckpointStore* store) {
    auto config = baseConfig(20);
    auto solver = std::make_unique<WaveSolver>(comm, topo, config, rock());
    const double dt = solver->config().dt;
    solver->addSource(explosionPointSource(
        10, 10, 10, rickerWavelet(4.0, 0.4, dt, 60, 1e15)));
    if (store != nullptr) solver->attachCheckpoints(store, 20);
    return solver;
  };

  std::vector<float> uninterrupted, restarted;
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{2, 1, 1});
    io::CheckpointStore store(dir.string());
    auto solver = makeSolver(comm, topo, &store);
    solver->run(40);
    if (comm.rank() == 0) {
      const auto& u = solver->grid().u;
      uninterrupted.assign(u.data(), u.data() + u.size());
    }
  });
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{2, 1, 1});
    io::CheckpointStore store(dir.string());
    auto solver = makeSolver(comm, topo, &store);
    solver->restart();  // resumes after step 20
    EXPECT_EQ(solver->currentStep(), 21u);
    solver->run(40 - solver->currentStep());
    if (comm.rank() == 0) {
      const auto& u = solver->grid().u;
      restarted.assign(u.data(), u.data() + u.size());
    }
  });
  std::filesystem::remove_all(dir);

  ASSERT_EQ(uninterrupted.size(), restarted.size());
  for (std::size_t n = 0; n < uninterrupted.size(); ++n)
    ASSERT_EQ(uninterrupted[n], restarted[n]);
}

TEST(Solver, FlopsAccountingGrowsLinearly) {
  ThreadCluster::run(1, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{1, 1, 1});
    WaveSolver solver(comm, topo, baseConfig(16), rock());
    solver.run(10);
    const double f10 = solver.flopsExecuted();
    solver.run(10);
    EXPECT_NEAR(solver.flopsExecuted(), 2.0 * f10, 1.0);
    EXPECT_GT(f10, 0.0);
  });
}

}  // namespace
}  // namespace awp::core
