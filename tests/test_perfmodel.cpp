// Tests for the analytic performance model: Table 1 catalog, Eq. (7)/(8),
// and the version calibration against the paper's reported anchors.

#include <gtest/gtest.h>

#include "perfmodel/machine.hpp"
#include "perfmodel/model.hpp"
#include "perfmodel/version.hpp"
#include "util/error.hpp"
#include "vcluster/cart.hpp"

namespace awp::perfmodel {
namespace {

using vcluster::CartTopology;
using vcluster::Dims3;

TEST(MachineCatalog, HasAllTable1Rows) {
  const auto& cat = machineCatalog();
  ASSERT_EQ(cat.size(), 6u);
  EXPECT_EQ(cat[0].name, "DataStar");
  EXPECT_EQ(cat[5].name, "Jaguar");
}

TEST(MachineCatalog, JaguarMatchesPaperCalibration) {
  const auto& j = machineByName("Jaguar");
  EXPECT_DOUBLE_EQ(j.alpha, 5.5e-6);
  EXPECT_DOUBLE_EQ(j.beta, 2.5e-10);
  EXPECT_DOUBLE_EQ(j.tau, 9.62e-11);
  EXPECT_EQ(j.coresUsed, 223074);
  EXPECT_TRUE(j.numa);
  EXPECT_THROW(machineByName("NoSuchMachine"), Error);
}

TEST(VersionTable, MatchesTable2) {
  const auto& t = versionTable();
  ASSERT_EQ(t.size(), 9u);
  EXPECT_EQ(traitsOf(CodeVersion::V1_0).year, 2004);
  EXPECT_DOUBLE_EQ(traitsOf(CodeVersion::V7_2).paperSustainedTflops, 220.0);
  EXPECT_TRUE(traitsOf(CodeVersion::V7_2).reducedComm);
  EXPECT_TRUE(traitsOf(CodeVersion::V7_2).cacheBlocking);
  // Overlap was dropped after 7.0 (§V.A "not included in v. 7.2").
  EXPECT_TRUE(traitsOf(CodeVersion::V7_0).overlap);
  EXPECT_FALSE(traitsOf(CodeVersion::V7_2).overlap);
  EXPECT_FALSE(traitsOf(CodeVersion::V4_0).asyncComm);
  EXPECT_TRUE(traitsOf(CodeVersion::V5_0).asyncComm);
}

TEST(ProblemSizes, MatchPaperGridCounts) {
  EXPECT_NEAR(terashakeProblem().total(), 1.8e9, 0.1e9);
  EXPECT_NEAR(shakeoutProblem().total(), 14.4e9, 0.1e9);
  EXPECT_NEAR(m8Problem().total(), 436e9, 1e9);
  EXPECT_NEAR(bluewatersBenchmarkProblem().total(), 1.4e12, 0.03e12);
}

class JaguarM8Model : public ::testing::Test {
 protected:
  JaguarM8Model()
      : model_(machineByName("Jaguar"), m8Problem()),
        dims_(CartTopology::balancedDims(223074, 20250, 10125, 2125)) {}
  ScalingModel model_;
  Dims3 dims_;
};

TEST_F(JaguarM8Model, Eq8ReproducesPaperEfficiency) {
  // §V.A: "demonstrates a 2.20e5 speedup or 98.6% parallel efficiency on
  // 223K Jaguar cores".
  const double eff = model_.efficiencyEq8(dims_);
  EXPECT_GT(eff, 0.975);
  EXPECT_LE(eff, 1.0);
  EXPECT_NEAR(model_.speedupEq8(dims_), 2.20e5, 0.1e5);
}

TEST_F(JaguarM8Model, V72TimePerStepNearHalfSecond) {
  // Anchor: M8 ran 24 h for ~156K steps -> ~0.55 s/step.
  const auto t = model_.perStep(traitsOf(CodeVersion::V7_2), dims_);
  EXPECT_GT(t.total(), 0.35);
  EXPECT_LT(t.total(), 0.8);
}

TEST_F(JaguarM8Model, V72Sustains220TflopsScale) {
  const double tf =
      model_.sustainedTflops(traitsOf(CodeVersion::V7_2), dims_);
  EXPECT_GT(tf, 150.0);
  EXPECT_LT(tf, 300.0);
}

TEST_F(JaguarM8Model, AsyncRedesignGivesAbout7x) {
  // §V.A: asynchronous communication "achieved more than ~7x reduction in
  // wall clock time on 223K Jaguar cores".
  VersionTraits sync = traitsOf(CodeVersion::V7_2);
  sync.asyncComm = false;
  const double tSync = model_.perStep(sync, dims_).total();
  const double tAsync =
      model_.perStep(traitsOf(CodeVersion::V7_2), dims_).total();
  const double gain = tSync / tAsync;
  EXPECT_GT(gain, 4.0);
  EXPECT_LT(gain, 12.0);
}

TEST_F(JaguarM8Model, ReducedCommShrinksCommTime) {
  VersionTraits full = traitsOf(CodeVersion::V7_2);
  full.reducedComm = false;
  const auto tFull = model_.perStep(full, dims_);
  const auto tReduced = model_.perStep(traitsOf(CodeVersion::V7_2), dims_);
  EXPECT_LT(tReduced.comm, tFull.comm);
}

TEST_F(JaguarM8Model, SingleCpuOptWorthAbout40Percent) {
  VersionTraits un = traitsOf(CodeVersion::V7_2);
  un.singleCpuOpt = false;
  un.cacheBlocking = false;
  const double tUn = model_.perStep(un, dims_).comp;
  const double tOpt =
      model_.perStep(traitsOf(CodeVersion::V7_2), dims_).comp;
  EXPECT_NEAR(1.0 - tOpt / tUn, 0.40, 0.03);  // §IV.B: 40% at full scale
}

TEST_F(JaguarM8Model, IoTuningMovesShareFrom49To2Percent) {
  VersionTraits untuned = traitsOf(CodeVersion::V7_2);
  untuned.ioTuned = false;
  const auto tU = model_.perStep(untuned, dims_);
  EXPECT_NEAR(tU.output / tU.total(), 0.49, 0.05);
  const auto tT = model_.perStep(traitsOf(CodeVersion::V7_2), dims_);
  EXPECT_LT(tT.output / tT.total(), 0.03);
}

TEST(ScalingModel, RangerAsyncEfficiencyJump) {
  // §IV.A: "The parallel efficiency increased from 28% to 75%" on 60K
  // Ranger cores (shape: a large jump from poor to good).
  ScalingModel model(machineByName("Ranger"), shakeoutProblem());
  const auto dims = CartTopology::balancedDims(60000, 6000, 3000, 800);
  VersionTraits sync = traitsOf(CodeVersion::V4_0);
  VersionTraits async = traitsOf(CodeVersion::V5_0);
  const double tSync = model.perStep(sync, dims).total();
  const double tAsync = model.perStep(async, dims).total();
  // Efficiency proxy: compute share of the total.
  const double effSync = model.perStep(sync, dims).comp / tSync;
  const double effAsync = model.perStep(async, dims).comp / tAsync;
  EXPECT_LT(effSync, 0.5);
  EXPECT_GT(effAsync, 0.7);
}

TEST(ScalingModel, NonNumaToleratesSynchronousModel) {
  // §IV.A: BG/L showed ideal scaling up to 32K cores with the synchronous
  // scheme ("96% on BG/L" vs "40% on BG/P").
  ScalingModel bgl(machineByName("BGW"), shakeoutProblem());
  const auto dims = CartTopology::balancedDims(32768, 6000, 3000, 800);
  const auto t = bgl.perStep(traitsOf(CodeVersion::V4_0), dims);
  EXPECT_GT(t.comp / t.total(), 0.9);
}

TEST(ScalingModel, StrongScalingMonotonic) {
  ScalingModel model(machineByName("Jaguar"), m8Problem());
  const auto traits = traitsOf(CodeVersion::V7_2);
  double prev = 0.0;
  for (int p : {1024, 4096, 16384, 65536, 223074}) {
    const auto dims = CartTopology::balancedDims(p, 20250, 10125, 2125);
    const double tf = model.sustainedTflops(traits, dims);
    EXPECT_GT(tf, prev);
    prev = tf;
  }
}

TEST(ScalingModel, RelativeSpeedupNearIdealForV72) {
  ScalingModel model(machineByName("Jaguar"), m8Problem());
  const auto base = CartTopology::balancedDims(65610, 20250, 10125, 2125);
  const auto big = CartTopology::balancedDims(223074, 20250, 10125, 2125);
  const double s =
      model.relativeSpeedup(traitsOf(CodeVersion::V7_2), base, big);
  // Ideal would be 223074; accept >=80% of ideal.
  EXPECT_GT(s, 0.8 * 223074);
}

}  // namespace
}  // namespace awp::perfmodel
