// Tests for the synthetic community velocity model substrate.

#include <gtest/gtest.h>

#include "vmodel/cvm.hpp"
#include "vmodel/material.hpp"

namespace awp::vmodel {
namespace {

TEST(Material, QRelationsMatchPaper) {
  // §VII.B: Qs = 50 Vs (Vs in km/s), Qp = 2 Qs.
  EXPECT_DOUBLE_EQ(qsOf(2000.0), 100.0);
  EXPECT_DOUBLE_EQ(qpOf(2000.0), 200.0);
  EXPECT_DOUBLE_EQ(qsOf(400.0), 20.0);
}

TEST(Material, BrocherDensityPlausible) {
  // Soft sediments ~1.9-2.1 g/cc, hard rock ~2.6-2.9 g/cc.
  EXPECT_GT(brocherDensity(1500.0), 1500.0);
  EXPECT_LT(brocherDensity(1500.0), 2400.0);
  EXPECT_GT(brocherDensity(6000.0), 2500.0);
  EXPECT_LT(brocherDensity(6000.0), 3100.0);
  // Monotone over the crustal range.
  EXPECT_LT(brocherDensity(2000.0), brocherDensity(5000.0));
}

TEST(Material, LameParameters) {
  Material m{2000.0f, 1000.0f, 2500.0f};
  EXPECT_DOUBLE_EQ(muOf(m), 2500.0 * 1e6);
  EXPECT_DOUBLE_EQ(lambdaOf(m), 2500.0 * (4e6 - 2e6));
}

TEST(LayeredModel, VsIncreasesWithDepth) {
  const auto bg = LayeredModel::socalBackground();
  double prev = 0.0;
  for (double z : {0.0, 1000.0, 5000.0, 20000.0, 60000.0}) {
    const double vs = bg.vsAtDepth(z);
    EXPECT_GE(vs, prev);
    prev = vs;
  }
  EXPECT_GT(bg.vsAtDepth(0.0), 1000.0);  // rock at surface
}

TEST(LayeredModel, InterpolatesBetweenLayerTops) {
  const LayeredModel m({{0.0, 1000.0}, {1000.0, 2000.0}});
  EXPECT_DOUBLE_EQ(m.vsAtDepth(500.0), 1500.0);
  EXPECT_DOUBLE_EQ(m.vsAtDepth(5000.0), 2000.0);  // constant below
}

TEST(Basin, DepthProfile) {
  Basin b{"test", 0.0, 0.0, 10000.0, 5000.0, 3000.0, 400.0};
  EXPECT_DOUBLE_EQ(b.depthAt(0.0, 0.0), 3000.0);
  EXPECT_DOUBLE_EQ(b.depthAt(20000.0, 0.0), 0.0);  // outside
  EXPECT_GT(b.depthAt(5000.0, 0.0), 0.0);
  EXPECT_LT(b.depthAt(5000.0, 0.0), 3000.0);
}

class SocalCvm : public ::testing::Test {
 protected:
  SocalCvm() : cvm_(CommunityVelocityModel::socal(200e3, 100e3, 45e3)) {}
  CommunityVelocityModel cvm_;
};

TEST_F(SocalCvm, BasinsAreSlower) {
  ASSERT_FALSE(cvm_.basins().empty());
  for (const auto& b : cvm_.basins()) {
    const auto inBasin = cvm_.sample(b.cx, b.cy, 100.0);
    // Far corner, same depth.
    const auto outside = cvm_.sample(1000.0, 99000.0, 100.0);
    EXPECT_LT(inBasin.vs, outside.vs) << b.name;
  }
}

TEST_F(SocalCvm, VsMinClampHolds) {
  for (const auto& b : cvm_.basins()) {
    const auto m = cvm_.sample(b.cx, b.cy, 0.0);
    EXPECT_GE(m.vs, 400.0f);
  }
}

TEST_F(SocalCvm, MaterialsConsistent) {
  for (double z : {0.0, 500.0, 3000.0, 20000.0}) {
    const auto m = cvm_.sample(60e3, 40e3, z);
    EXPECT_GT(m.vp, m.vs);
    EXPECT_GT(m.rho, 1000.0f);
    EXPECT_LT(m.rho, 3500.0f);
  }
}

TEST_F(SocalCvm, IsosurfaceDeeperUnderBasins) {
  const auto& la = cvm_.basins()[0];
  const double inBasin = cvm_.depthToIsosurface(la.cx, la.cy, 2500.0);
  const double outside = cvm_.depthToIsosurface(1000.0, 99000.0, 2500.0);
  EXPECT_GT(inBasin, outside);
}

TEST_F(SocalCvm, HasFig21Sites) {
  bool foundSB = false, foundLA = false;
  for (const auto& s : cvm_.sites()) {
    if (s.name == "San Bernardino") foundSB = true;
    if (s.name == "Downtown LA") foundLA = true;
  }
  EXPECT_TRUE(foundSB);
  EXPECT_TRUE(foundLA);
}

TEST_F(SocalCvm, SanBernardinoHugsFault) {
  // The SBB analogue must sit within a few km of the fault trace
  // (y = faultY) — the Fig 21 geography the science result depends on.
  for (const auto& b : cvm_.basins()) {
    if (b.name == "San Bernardino")
      EXPECT_LT(std::abs(b.cy - 45e3), 5e3);
  }
}

}  // namespace
}  // namespace awp::vmodel
