// Tests for the E2EaW workflow substrate: transfer with failure recovery,
// archive registry with integrity metadata, ingestion model, and the
// stage pipeline.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "fault/injector.hpp"
#include "util/error.hpp"
#include "util/retry.hpp"
#include "workflow/archive.hpp"
#include "workflow/e2eaw.hpp"
#include "workflow/transfer.hpp"

namespace awp::workflow {
namespace {

class WorkflowTest : public ::testing::Test {
 protected:
  WorkflowTest() {
    root_ = std::filesystem::temp_directory_path() /
            ("awp_wf_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    src_ = root_ / "src";
    dst_ = root_ / "dst";
    std::filesystem::create_directories(src_);
    std::filesystem::create_directories(dst_);
  }
  ~WorkflowTest() override { std::filesystem::remove_all(root_); }

  void makeFile(const std::string& name, std::size_t bytes,
                unsigned char fill) {
    std::ofstream out(src_ / name, std::ios::binary);
    std::vector<char> data(bytes, static_cast<char>(fill));
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  std::filesystem::path root_, src_, dst_;
};

TEST_F(WorkflowTest, CleanTransferVerifies) {
  makeFile("a.bin", 3 << 20, 0x11);
  makeFile("b.bin", 100, 0x22);
  TransferConfig config;
  TransferChannel channel(config);
  const auto report =
      channel.transfer(src_.string(), dst_.string(), {"a.bin", "b.bin"});
  EXPECT_TRUE(report.allVerified);
  EXPECT_EQ(report.filesMoved, 2);
  EXPECT_EQ(report.bytesMoved, (3u << 20) + 100u);
  EXPECT_EQ(report.chunksFailed, 0u);
  EXPECT_TRUE(report.records.empty());
  // ~200 MB/s model: 3 MiB in ~15 ms of simulated time.
  EXPECT_NEAR(report.simulatedSeconds,
              static_cast<double>(report.bytesMoved) / 200e6, 1e-3);
}

TEST_F(WorkflowTest, FailureInjectionRecovers) {
  makeFile("big.bin", 8 << 20, 0x5a);
  TransferConfig config;
  config.chunkFailureProb = 0.3;
  config.seed = 99;
  TransferChannel channel(config);
  const auto report =
      channel.transfer(src_.string(), dst_.string(), {"big.bin"});
  // Failures happened, every one was recovered, and the data still
  // verifies (the §III.I automatic recovery and retransfer).
  EXPECT_GT(report.chunksFailed, 0u);
  EXPECT_TRUE(report.allVerified);
  for (const auto& rec : report.records) EXPECT_TRUE(rec.recovered);
  // Retries cost simulated time beyond the clean transfer.
  EXPECT_GT(report.simulatedSeconds,
            static_cast<double>(report.bytesMoved) / 200e6);
}

TEST_F(WorkflowTest, InjectedChunkFaultIsRetriedAndVerifies) {
  makeFile("c.bin", 1 << 20, 0x3c);
  // An externally injected in-flight loss at the "transfer.chunk" hook:
  // the bounded retry policy must recover it like a modeled failure.
  fault::FaultPlan plan;
  plan.transientIoError("transfer.chunk", /*rank=*/-1, /*occurrence=*/1);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  TransferConfig config;
  TransferChannel channel(config);
  const auto report =
      channel.transfer(src_.string(), dst_.string(), {"c.bin"});
  EXPECT_EQ(injector.faultsInjected(), 1u);
  EXPECT_GE(report.chunksFailed, 1u);
  EXPECT_TRUE(report.allVerified);
  for (const auto& rec : report.records) EXPECT_TRUE(rec.recovered);
}

TEST_F(WorkflowTest, ArchiveIngestAndVerify) {
  makeFile("data.bin", 4096, 0x77);
  ArchiveRegistry registry;
  registry.ingestFile((src_ / "data.bin").string(), "m8/surface",
                      "data.bin", 2);
  ASSERT_TRUE(registry.contains("data.bin"));
  const auto& e = registry.entry("data.bin");
  EXPECT_EQ(e.bytes, 4096u);
  EXPECT_EQ(e.replicas, 2);
  EXPECT_EQ(e.md5Hex.size(), 32u);
  EXPECT_TRUE(registry.verify("data.bin", (src_ / "data.bin").string()));

  // Tamper with a copy: verification must fail.
  std::filesystem::copy(src_ / "data.bin", dst_ / "data.bin");
  {
    std::ofstream out(dst_ / "data.bin",
                      std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(100);
    out.put('X');
  }
  EXPECT_FALSE(registry.verify("data.bin", (dst_ / "data.bin").string()));
  EXPECT_THROW(registry.entry("missing"), Error);
}

TEST_F(WorkflowTest, CollectionsListAndTotals) {
  makeFile("x.bin", 10, 1);
  makeFile("y.bin", 20, 2);
  makeFile("z.bin", 30, 3);
  ArchiveRegistry registry;
  registry.ingestFile((src_ / "x.bin").string(), "colA", "x.bin");
  registry.ingestFile((src_ / "y.bin").string(), "colA", "y.bin");
  registry.ingestFile((src_ / "z.bin").string(), "colB", "z.bin");
  EXPECT_EQ(registry.listCollection("colA").size(), 2u);
  EXPECT_EQ(registry.listCollection("colB").size(), 1u);
  EXPECT_EQ(registry.totalBytes(), 60u);
}

TEST(IngestionModel, PiputBeatsSingleStreamByTenfold) {
  // §III.I: PIPUT reaches ~177 MB/s, "more than ten times faster than
  // direct use of single iRODS iPUT".
  const IngestionModel model;
  const double single = model.aggregateRate(1);
  const double parallel = model.aggregateRate(16);
  EXPECT_GT(parallel / single, 10.0);
  EXPECT_NEAR(parallel, 180e6, 10e6);
  // Saturates at the backend cap.
  EXPECT_DOUBLE_EQ(model.aggregateRate(64), model.aggregateRate(100));
  // 200 TB collection at PIPUT rates: days, not months.
  const double seconds = model.ingestSeconds(200e12, 16);
  EXPECT_GT(seconds / 86400.0, 5.0);
  EXPECT_LT(seconds / 86400.0, 30.0);
}

TEST(Pipeline, RunsStagesInOrder) {
  Pipeline p;
  std::vector<int> order;
  p.addStage("one", [&] {
    order.push_back(1);
    return "ok1";
  });
  p.addStage("two", [&] {
    order.push_back(2);
    return "ok2";
  });
  EXPECT_TRUE(p.run());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  ASSERT_EQ(p.results().size(), 2u);
  EXPECT_TRUE(p.results()[0].ok);
  EXPECT_EQ(p.results()[1].detail, "ok2");
}

TEST(Pipeline, StopsAtFirstFailure) {
  Pipeline p;
  bool thirdRan = false;
  p.addStage("gen", [] { return "ok"; });
  p.addStage("boom", []() -> std::string {
    throw Error("stage failed");
  });
  p.addStage("after", [&] {
    thirdRan = true;
    return "never";
  });
  EXPECT_FALSE(p.run());
  EXPECT_FALSE(thirdRan);
  ASSERT_EQ(p.results().size(), 3u);
  EXPECT_TRUE(p.results()[0].ok);
  EXPECT_FALSE(p.results()[1].ok);
  EXPECT_EQ(p.results()[1].detail, "stage failed");
  EXPECT_FALSE(p.results()[2].ran);
}

TEST(Pipeline, RerunnableAfterFailure) {
  Pipeline p;
  int attempts = 0;
  p.addStage("flaky", [&]() -> std::string {
    ++attempts;
    if (attempts < 2) throw Error("first try fails");
    return "recovered";
  });
  EXPECT_FALSE(p.run());
  EXPECT_TRUE(p.run());
  EXPECT_EQ(p.results()[0].detail, "recovered");
}

TEST(Pipeline, NonStandardThrowIsCaughtAndReported) {
  Pipeline p;
  bool afterRan = false;
  p.addStage("weird", []() -> std::string { throw 42; });
  p.addStage("after", [&] {
    afterRan = true;
    return "never";
  });
  EXPECT_FALSE(p.run());
  EXPECT_FALSE(afterRan);
  ASSERT_EQ(p.results().size(), 2u);
  EXPECT_FALSE(p.results()[0].ok);
  EXPECT_EQ(p.results()[0].detail, "non-standard exception");
  EXPECT_FALSE(p.results()[1].ran);
}

TEST(Pipeline, StageRetryPolicyRecoversAndLogsAttempts) {
  Pipeline p;
  int calls = 0;
  util::RetryPolicy policy;
  policy.maxAttempts = 3;
  policy.baseDelaySeconds = 0.0;
  p.addStage(
      "flaky",
      [&]() -> std::string {
        if (++calls < 3) throw Error("not yet");
        return "done";
      },
      policy);
  EXPECT_TRUE(p.run());
  EXPECT_EQ(calls, 3);
  const auto& r = p.results()[0];
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 3);
  ASSERT_EQ(r.attemptLog.size(), 3u);
  EXPECT_FALSE(r.attemptLog[0].ok);
  EXPECT_EQ(r.attemptLog[0].detail, "not yet");
  EXPECT_FALSE(r.attemptLog[1].ok);
  EXPECT_TRUE(r.attemptLog[2].ok);
  EXPECT_EQ(r.detail, "done");
}

TEST(Pipeline, StageRetryExhaustionFailsTheRun) {
  Pipeline p;
  util::RetryPolicy policy;
  policy.maxAttempts = 2;
  policy.baseDelaySeconds = 0.0;
  p.addStage(
      "doomed", []() -> std::string { throw Error("always"); }, policy);
  EXPECT_FALSE(p.run());
  const auto& r = p.results()[0];
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.attemptLog.size(), 2u);
  EXPECT_EQ(r.detail, "always");
}

TEST_F(WorkflowTest, ChunkFailuresAreReorderInvariant) {
  makeFile("a.bin", 4 << 20, 0x10);
  makeFile("b.bin", 4 << 20, 0x20);
  TransferConfig config;
  config.chunkFailureProb = 0.25;
  config.seed = 7;

  auto failedChunks = [](const TransferReport& report,
                         const std::string& file) {
    std::vector<std::uint64_t> chunks;
    for (const auto& rec : report.records)
      if (rec.file == file) chunks.push_back(rec.chunkIndex);
    return chunks;
  };

  TransferChannel forward(config);
  const auto ab =
      forward.transfer(src_.string(), dst_.string(), {"a.bin", "b.bin"});
  std::filesystem::remove_all(dst_);
  std::filesystem::create_directories(dst_);
  TransferChannel backward(config);
  const auto ba =
      backward.transfer(src_.string(), dst_.string(), {"b.bin", "a.bin"});

  // The same file fails the same chunks regardless of list position.
  EXPECT_GT(ab.chunksFailed, 0u);
  EXPECT_EQ(ab.chunksFailed, ba.chunksFailed);
  EXPECT_EQ(failedChunks(ab, "a.bin"), failedChunks(ba, "a.bin"));
  EXPECT_EQ(failedChunks(ab, "b.bin"), failedChunks(ba, "b.bin"));
  EXPECT_TRUE(ab.allVerified);
  EXPECT_TRUE(ba.allVerified);
}

TEST_F(WorkflowTest, TransferReportCountsAttempts) {
  makeFile("clean.bin", 2 << 20, 0x01);
  TransferConfig config;  // no failures
  TransferChannel channel(config);
  const auto report =
      channel.transfer(src_.string(), dst_.string(), {"clean.bin"});
  const std::uint64_t nChunks =
      ((2u << 20) + config.chunkBytes - 1) / config.chunkBytes;
  // One attempt per chunk on a clean run; failures add extras.
  EXPECT_EQ(report.attempts, nChunks);
  EXPECT_EQ(report.chunksFailed, 0u);
}

}  // namespace
}  // namespace awp::workflow
