// Property-based and parameterized sweeps over the system's invariants:
// solver linearity, CFL scaling, Eq. (8) monotonicity, halo-exchange
// correctness over many topologies, friction-law monotonicity, filter
// orders, and random-field statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/gmpe.hpp"
#include "core/solver.hpp"
#include "grid/halo.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/model.hpp"
#include "rupture/friction.hpp"
#include "rupture/stress_model.hpp"
#include "util/filter.hpp"
#include "util/stats.hpp"
#include "vcluster/cluster.hpp"

namespace awp {
namespace {

using vcluster::CartTopology;
using vcluster::Dims3;
using vcluster::ThreadCluster;

// --- Solver linearity ---------------------------------------------------------

std::vector<float> runWithSources(
    const std::vector<core::MomentRateSource>& sources) {
  std::vector<float> field;
  ThreadCluster::run(1, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{1, 1, 1});
    core::SolverConfig config;
    config.globalDims = {24, 24, 16};
    config.h = 300.0;
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5196.0f, 3000.0f, 2700.0f});
    for (const auto& s : sources) solver.addSource(s);
    solver.run(60);
    const auto& u = solver.grid().u;
    field.assign(u.data(), u.data() + u.size());
  });
  return field;
}

TEST(SolverProperties, FieldScalesLinearlyWithMoment) {
  const double dt = 0.45 * 300.0 / 5196.0;
  const auto base = runWithSources({core::explosionPointSource(
      12, 12, 8, core::rickerWavelet(3.0, 0.4, dt, 50, 1e15))});
  const auto doubled = runWithSources({core::explosionPointSource(
      12, 12, 8, core::rickerWavelet(3.0, 0.4, dt, 50, 2e15))});
  float peak = 0.0f;
  for (float v : base) peak = std::max(peak, std::abs(v));
  ASSERT_GT(peak, 0.0f);
  for (std::size_t n = 0; n < base.size(); ++n)
    ASSERT_NEAR(doubled[n], 2.0f * base[n], 1e-4f * peak);
}

TEST(SolverProperties, SuperpositionOfSources) {
  const double dt = 0.45 * 300.0 / 5196.0;
  const auto a = core::explosionPointSource(
      9, 12, 8, core::rickerWavelet(3.0, 0.4, dt, 50, 1e15));
  const auto b = core::strikeSlipPointSource(
      15, 11, 9, core::rickerWavelet(2.0, 0.5, dt, 50, 2e15));
  const auto fieldA = runWithSources({a});
  const auto fieldB = runWithSources({b});
  const auto fieldAB = runWithSources({a, b});
  float peak = 0.0f;
  for (float v : fieldAB) peak = std::max(peak, std::abs(v));
  ASSERT_GT(peak, 0.0f);
  for (std::size_t n = 0; n < fieldAB.size(); ++n)
    ASSERT_NEAR(fieldAB[n], fieldA[n] + fieldB[n], 1e-4f * peak);
}

// --- Eq. (8) sweeps -------------------------------------------------------------

class Eq8Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Eq8Sweep, EfficiencyDecreasesButStaysPhysical) {
  perfmodel::ScalingModel model(perfmodel::machineByName("Jaguar"),
                                perfmodel::m8Problem());
  const int p = GetParam();
  const auto dims =
      CartTopology::balancedDims(p, 20250, 10125, 2125);
  const double eff = model.efficiencyEq8(dims);
  EXPECT_GT(eff, 0.5);
  EXPECT_LE(eff, 1.0);
  // More cores never increases Eq. 8 efficiency (for balanced splits).
  if (p >= 2048) {
    const auto smaller =
        CartTopology::balancedDims(p / 2, 20250, 10125, 2125);
    EXPECT_LE(eff, model.efficiencyEq8(smaller) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, Eq8Sweep,
                         ::testing::Values(1024, 2048, 8192, 32768, 65536,
                                           131072, 223074));

// --- Halo exchange over many topologies ----------------------------------------

class HaloTopologySweep : public ::testing::TestWithParam<Dims3> {};

TEST_P(HaloTopologySweep, GlobalFunctionSurvivesExchange) {
  const Dims3 dims = GetParam();
  const grid::GridDims global{18, 15, 12};
  const mesh::MeshSpec spec{global.nx, global.ny, global.nz, 1.0, 0, 0};
  ThreadCluster::run(dims.total(), [&](vcluster::Communicator& comm) {
    CartTopology topo(dims);
    const auto sub = mesh::subdomainFor(topo, spec, comm.rank());
    grid::StaggeredGrid g({sub.x.count(), sub.y.count(), sub.z.count()},
                          1.0, 0.1);
    auto value = [](std::size_t gi, std::size_t gj, std::size_t gk) {
      return static_cast<float>(7 * gi + 131 * gj + 1117 * gk + 1);
    };
    for (grid::FieldId f : grid::kVelocityFields) {
      auto& a = g.field(f);
      for (std::size_t k = 0; k < sub.z.count(); ++k)
        for (std::size_t j = 0; j < sub.y.count(); ++j)
          for (std::size_t i = 0; i < sub.x.count(); ++i)
            a(i + grid::kHalo, j + grid::kHalo, k + grid::kHalo) =
                value(sub.x.begin + i, sub.y.begin + j, sub.z.begin + k);
    }
    grid::HaloExchanger ex(comm, topo,
                           grid::HaloExchanger::Mode::Asynchronous,
                           /*reduced=*/false);
    ex.exchangeVelocities(g);

    // Every filled halo cell must carry the global function's value.
    for (int axis = 0; axis < 3; ++axis)
      for (int dir : {-1, 1}) {
        if (topo.neighbor(comm.rank(), axis, dir) < 0) continue;
        for (std::size_t p = 0; p < grid::kHalo; ++p)
          for (std::size_t b = 0; b < sub.y.count(); ++b)
            for (std::size_t c = 0; c < sub.z.count(); ++c) {
              std::size_t gi, gj, gk, li, lj, lk;
              if (axis == 0) {
                gi = dir < 0 ? sub.x.begin - grid::kHalo + p
                             : sub.x.end + p;
                gj = sub.y.begin + b;
                gk = sub.z.begin + c;
                li = dir < 0 ? p : grid::kHalo + sub.x.count() + p;
                lj = b + grid::kHalo;
                lk = c + grid::kHalo;
              } else if (axis == 1) {
                if (b >= sub.x.count()) continue;
                gi = sub.x.begin + b;
                gj = dir < 0 ? sub.y.begin - grid::kHalo + p
                             : sub.y.end + p;
                gk = sub.z.begin + c;
                li = b + grid::kHalo;
                lj = dir < 0 ? p : grid::kHalo + sub.y.count() + p;
                lk = c + grid::kHalo;
              } else {
                if (b >= sub.x.count() || c >= sub.y.count()) continue;
                gi = sub.x.begin + b;
                gj = sub.y.begin + c;
                gk = dir < 0 ? sub.z.begin - grid::kHalo + p
                             : sub.z.end + p;
                li = b + grid::kHalo;
                lj = c + grid::kHalo;
                lk = dir < 0 ? p : grid::kHalo + sub.z.count() + p;
              }
              ASSERT_EQ(g.u(li, lj, lk), value(gi, gj, gk))
                  << "axis " << axis << " dir " << dir;
            }
      }
  });
}

INSTANTIATE_TEST_SUITE_P(Topologies, HaloTopologySweep,
                         ::testing::Values(Dims3{2, 1, 1}, Dims3{1, 2, 1},
                                           Dims3{1, 1, 2}, Dims3{2, 2, 1},
                                           Dims3{3, 1, 2}, Dims3{2, 2, 2},
                                           Dims3{3, 2, 2}));

// --- Friction-law monotonicity ---------------------------------------------------

class FrictionSweep : public ::testing::TestWithParam<double> {};

TEST_P(FrictionSweep, CoefficientMonotoneInSlip) {
  const double depth = GetParam();
  rupture::SlipWeakeningFriction f{rupture::FrictionParams{}};
  double prev = 1e9;
  for (double slip : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0, 5.0}) {
    const double mu = f.coefficient(slip, depth);
    if (depth > f.params().strengthenBottom) {
      EXPECT_LE(mu, prev);  // weakening below the strengthened zone
    }
    EXPECT_GT(mu, 0.0);
    EXPECT_LT(mu, 1.5);
    prev = mu;
  }
  // Strength is monotone in compressive normal stress at any slip.
  EXPECT_LT(f.strength(0.1, depth, -1e6), f.strength(0.1, depth, -50e6));
}

INSTANTIATE_TEST_SUITE_P(Depths, FrictionSweep,
                         ::testing::Values(500.0, 1500.0, 2500.0, 4000.0,
                                           8000.0, 14000.0));

// --- Butterworth order sweep -----------------------------------------------------

class ButterworthOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(ButterworthOrderSweep, HalfPowerAtCutoffForEveryOrder) {
  const int order = GetParam();
  const double dt = 0.002, fc = 15.0;
  ButterworthLowpass lp(order, fc, dt);
  double peak = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double y = lp.step(std::sin(2.0 * M_PI * fc * i * dt));
    if (i > 5000) peak = std::max(peak, std::abs(y));
  }
  EXPECT_NEAR(peak, std::sqrt(0.5), 0.05) << "order " << order;
}

INSTANTIATE_TEST_SUITE_P(Orders, ButterworthOrderSweep,
                         ::testing::Values(2, 4, 6, 8));

// --- von Kármán seeds ------------------------------------------------------------

class VonKarmanSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VonKarmanSeedSweep, NormalizedForEverySeed) {
  const auto f = rupture::vonKarmanField(40, 24, 500.0, 8e3, 3e3, 0.75,
                                         GetParam());
  EXPECT_NEAR(mean(f), 0.0, 1e-9);
  double var = 0.0;
  for (double v : f) var += v * v;
  EXPECT_NEAR(var / static_cast<double>(f.size()), 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VonKarmanSeedSweep,
                         ::testing::Values(1u, 7u, 1992u, 20100545u));

// --- GMPE sanity across magnitudes -----------------------------------------------

class GmpeMagnitudeSweep : public ::testing::TestWithParam<double> {};

TEST_P(GmpeMagnitudeSweep, PoeIsMonotoneInAmplitude) {
  const double mw = GetParam();
  const auto g = analysis::ba08Like();
  double prev = 1.1;
  for (double pgv : {0.1, 1.0, 5.0, 20.0, 100.0, 500.0}) {
    const double poe = g.poe(mw, 25.0, pgv);
    EXPECT_LT(poe, prev);
    EXPECT_GE(poe, 0.0);
    EXPECT_LE(poe, 1.0);
    prev = poe;
  }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, GmpeMagnitudeSweep,
                         ::testing::Values(6.0, 7.0, 7.8, 8.5));

}  // namespace
}  // namespace awp
