// Unit tests for src/util: containers, RNG, FFT, MD5, filters, statistics,
// and the shared retry policy.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/array3.hpp"
#include "util/error.hpp"
#include "util/fft.hpp"
#include "util/filter.hpp"
#include "util/md5.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace awp {
namespace {

TEST(Retry, SucceedsAfterTransientFailures) {
  util::RetryPolicy policy;
  policy.maxAttempts = 5;
  int calls = 0;
  util::RetryStats stats;
  const int result = util::retryCall(
      policy, "test.transient",
      [&] {
        if (++calls < 3) throw TransientError("flaky");
        return 42;
      },
      &stats);
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.failures, 2);
  EXPECT_EQ(stats.lastError, "flaky");
}

TEST(Retry, ExhaustsAttemptsAndRethrows) {
  util::RetryPolicy policy;
  policy.maxAttempts = 3;
  int calls = 0;
  util::RetryStats stats;
  EXPECT_THROW(util::retryCall(
                   policy, "test.exhaust",
                   [&]() -> int { ++calls; throw TransientError("down"); },
                   &stats),
               TransientError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.failures, 3);
}

TEST(Retry, PermanentErrorsAreNotRetried) {
  util::RetryPolicy policy;
  policy.maxAttempts = 5;
  int calls = 0;
  EXPECT_THROW(util::retryCall(policy, "test.permanent",
                               [&]() -> int {
                                 ++calls;
                                 throw Error("disk gone");
                               }),
               Error);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, RetryCallAnyRetriesNonStandardThrows) {
  util::RetryPolicy policy;
  policy.maxAttempts = 4;
  int calls = 0;
  const int result = util::retryCallAny(policy, "test.any", [&] {
    if (++calls < 4) throw 17;  // not a std::exception
    return 7;
  });
  EXPECT_EQ(result, 7);
  EXPECT_EQ(calls, 4);
}

TEST(Retry, AttemptIndexIsPassedWhenRequested) {
  util::RetryPolicy policy;
  policy.maxAttempts = 3;
  std::vector<int> seen;
  util::retryCall(policy, "test.index", [&](int attempt) {
    seen.push_back(attempt);
    if (attempt < 3) throw TransientError("again");
  });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(Retry, BackoffIsDeterministicBoundedAndGrowing) {
  util::RetryPolicy policy;
  policy.baseDelaySeconds = 0.010;
  policy.backoffFactor = 2.0;
  policy.maxDelaySeconds = 0.100;
  policy.jitterFraction = 0.25;
  policy.seed = 1234;
  const double d1 = util::retryBackoffSeconds(policy, "site", 1);
  const double d2 = util::retryBackoffSeconds(policy, "site", 2);
  // Same inputs, same delay (deterministic jitter).
  EXPECT_DOUBLE_EQ(d1, util::retryBackoffSeconds(policy, "site", 1));
  // Jitter stays within +/- 25% of the nominal exponential delay.
  EXPECT_GT(d1, 0.010 * 0.75);
  EXPECT_LT(d1, 0.010 * 1.25);
  EXPECT_GT(d2, 0.020 * 0.75);
  EXPECT_LT(d2, 0.020 * 1.25);
  // Ceiling applies (nominal would be 0.64s at failure 7).
  EXPECT_LE(util::retryBackoffSeconds(policy, "site", 7), 0.100 * 1.25);
  // Different sites draw different jitter.
  EXPECT_NE(util::retryBackoffSeconds(policy, "siteA", 1),
            util::retryBackoffSeconds(policy, "siteB", 1));
  // Zero base delay means no sleeping at all.
  policy.baseDelaySeconds = 0.0;
  EXPECT_DOUBLE_EQ(util::retryBackoffSeconds(policy, "site", 3), 0.0);
}

TEST(Retry, RegistryAggregatesPerSite) {
  util::resetRetryRegistry();
  util::RetryPolicy policy;
  policy.maxAttempts = 2;
  int calls = 0;
  util::retryCall(policy, "test.registry", [&] {
    if (++calls < 2) throw TransientError("once");
  });
  EXPECT_THROW(
      util::retryCall(policy, "test.registry",
                      [&] { throw TransientError("always"); }),
      TransientError);
  const auto snapshot = util::retryRegistrySnapshot();
  const auto& site = snapshot.at("test.registry");
  EXPECT_EQ(site.calls, 2u);
  EXPECT_EQ(site.attempts, 4u);
  EXPECT_EQ(site.failures, 3u);
  EXPECT_EQ(site.exhausted, 1u);
}

TEST(Array3, IndexingIsXFastest) {
  Array3<int> a(3, 4, 5);
  ASSERT_EQ(a.size(), 60u);
  a(1, 2, 3) = 42;
  EXPECT_EQ(a.data()[1 + 3 * (2 + 4 * 3)], 42);
  EXPECT_EQ(a.index(2, 0, 0), 2u);
  EXPECT_EQ(a.index(0, 1, 0), 3u);
  EXPECT_EQ(a.index(0, 0, 1), 12u);
}

TEST(Array3, FillAndResize) {
  Array3f a(2, 2, 2, 7.0f);
  for (float v : a) EXPECT_EQ(v, 7.0f);
  a.resize(1, 1, 1, -1.0f);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a(0, 0, 0), -1.0f);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(99);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.gaussian());
  EXPECT_NEAR(mean(xs), 0.0, 0.03);
  EXPECT_NEAR(stddev(xs), 1.0, 0.03);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng base(5);
  Rng a = base.split(1);
  Rng b = base.split(2);
  EXPECT_NE(a.nextU64(), b.nextU64());
}

TEST(Rng, BelowIsUnbiasedRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Fft, RoundTrip) {
  Rng rng(1);
  std::vector<Complex> a(64);
  for (auto& v : a) v = Complex(rng.uniform(), rng.uniform());
  auto b = a;
  fft(b, false);
  fft(b, true);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-10);
}

TEST(Fft, SinglePureToneSpectrumPeak) {
  const double dt = 0.01, f0 = 5.0;
  std::vector<double> x(512);
  for (std::size_t n = 0; n < x.size(); ++n)
    x[n] = std::sin(2.0 * M_PI * f0 * static_cast<double>(n) * dt);
  const auto s = amplitudeSpectrum(x, dt);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < s.amplitude.size(); ++k)
    if (s.amplitude[k] > s.amplitude[peak]) peak = k;
  EXPECT_NEAR(s.frequency[peak], f0, 0.3);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> a(3);
  EXPECT_THROW(fft(a, false), Error);
}

TEST(Fft2d, RoundTrip) {
  Rng rng(2);
  std::vector<Complex> a(16 * 8);
  for (auto& v : a) v = Complex(rng.uniform(), rng.uniform());
  auto b = a;
  fft2d(b, 16, 8, false);
  fft2d(b, 16, 8, true);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-10);
}

// RFC 1321 test vectors.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hexDigest("", 0), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hexDigest("a", 1), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hexDigest("abc", 3), "900150983cd24fb0d6963f7d28e17f72");
  const char* msg = "message digest";
  EXPECT_EQ(Md5::hexDigest(msg, 14), "f96b697d7cb7938d525a2f31aaf161d0");
  const char* alpha = "abcdefghijklmnopqrstuvwxyz";
  EXPECT_EQ(Md5::hexDigest(alpha, 26), "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(Md5, IncrementalMatchesOneShot) {
  const std::string data(1000, 'x');
  Md5 h;
  for (std::size_t i = 0; i < data.size(); i += 77)
    h.update(data.data() + i, std::min<std::size_t>(77, data.size() - i));
  EXPECT_EQ(Md5::toHex(h.digest()),
            Md5::hexDigest(data.data(), data.size()));
}

TEST(Md5, DigestTwiceThrows) {
  Md5 h;
  h.update("x", 1);
  h.digest();
  EXPECT_THROW(h.digest(), Error);
}

TEST(Butterworth, PassesDcBlocksHighFrequency) {
  const double dt = 0.001;
  ButterworthLowpass lp(4, 10.0, dt);
  // DC gain ~ 1.
  double y = 0.0;
  for (int i = 0; i < 5000; ++i) y = lp.step(1.0);
  EXPECT_NEAR(y, 1.0, 1e-3);

  // A 100 Hz tone (10x cutoff) should be attenuated by ~80 dB/decade in
  // steady state (skip the onset transient).
  lp.reset();
  double peak = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double x = std::sin(2.0 * M_PI * 100.0 * i * dt);
    const double y = lp.step(x);
    if (i > 2000) peak = std::max(peak, std::abs(y));
  }
  EXPECT_LT(peak, 0.002);
}

TEST(Butterworth, HalfPowerAtCutoff) {
  const double dt = 0.001, fc = 20.0;
  ButterworthLowpass lp(4, fc, dt);
  double peak = 0.0;
  for (int i = 0; i < 8000; ++i) {
    const double x = std::sin(2.0 * M_PI * fc * i * dt);
    const double y = lp.step(x);
    if (i > 4000) peak = std::max(peak, std::abs(y));
  }
  EXPECT_NEAR(peak, std::sqrt(0.5), 0.05);
}

TEST(Butterworth, RejectsOddOrder) {
  EXPECT_THROW(ButterworthLowpass(3, 1.0, 0.01), Error);
  EXPECT_THROW(ButterworthLowpass(4, 100.0, 0.01), Error);  // above Nyquist
}

TEST(Resample, PreservesLinearRamp) {
  std::vector<double> x;
  for (int i = 0; i < 11; ++i) x.push_back(i);
  const auto y = resampleLinear(x, 0.1, 0.05);
  ASSERT_EQ(y.size(), 21u);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], 0.5 * static_cast<double>(i), 1e-12);
}

TEST(Stats, Percentiles) {
  std::vector<double> x = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(median(x), 3.0);
  EXPECT_DOUBLE_EQ(percentile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(x, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(minOf(x), 1.0);
  EXPECT_DOUBLE_EQ(maxOf(x), 5.0);
}

TEST(Stats, L2Misfit) {
  std::vector<double> a = {1, 2, 3};
  EXPECT_DOUBLE_EQ(l2Misfit(a, a), 0.0);
  std::vector<double> b = {2, 4, 6};
  EXPECT_NEAR(l2Misfit(a, b), 0.5, 1e-12);
}

TEST(Stats, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(TextTable, FormatsRows) {
  TextTable t({"a", "bb"});
  t.addRow({"1", "2"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| a"), std::string::npos);
  EXPECT_NE(os.str().find("| 1"), std::string::npos);
  EXPECT_THROW(t.addRow({"only-one"}), Error);
}

}  // namespace
}  // namespace awp
