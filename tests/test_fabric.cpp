// Fault-tolerant hazard fabric tests: consistent-hash routing, lease-based
// membership, transport fault injection, submission-log replay, degraded
// mode, and the broker-death chaos acceptance run (kill 1 of 3 brokers
// mid-ensemble; every scenario still completes bit-identically, exactly
// once).

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime_config.hpp"
#include "fabric/fabric.hpp"
#include "fabric/hash_ring.hpp"
#include "fabric/membership.hpp"
#include "fabric/submission_log.hpp"
#include "fabric/transport.hpp"
#include "fault/injector.hpp"
#include "sched/report.hpp"
#include "sched/spec.hpp"
#include "util/error.hpp"
#include "util/retry.hpp"

namespace awp::fabric {
namespace {

namespace fs = std::filesystem;

fs::path tempDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("awp-fabric-test-" + tag + "-" + std::to_string(getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Small, fast wave scenario (mirrors test_sched's): ~5k cells, a
// checkpoint every 6 steps, surface samples every 2.
sched::ScenarioSpec smallWaveSpec(std::uint64_t steps = 24) {
  sched::ScenarioSpec spec;
  spec.kind = sched::ScenarioKind::Wave;
  spec.dims = {24, 18, 12};
  spec.h = 600.0;
  spec.steps = steps;
  spec.nranks = 2;
  spec.useCvm = true;
  spec.spongeWidth = 4;
  spec.checkpointEverySteps = 6;
  spec.surfaceSampleEverySteps = 2;
  spec.healthEverySteps = 4;
  spec.name = "fabric-wave";
  return spec;
}

std::string blobMd5(const sched::ScenarioProducts& products,
                    const std::string& name) {
  const sched::ArtifactBlob* blob = products.find(name);
  return blob != nullptr ? blob->md5Hex
                         : std::string("<missing:" + name + ">");
}

FabricConfig smallFabricConfig(const fs::path& root, int brokers) {
  FabricConfig c;
  c.brokers = brokers;
  c.vnodes = 64;
  c.rootDir = root.string();
  c.leaseSeconds = 0.6;
  c.heartbeatSeconds = 0.08;
  c.degradedAfterMisses = 2;
  c.pumpIntervalSeconds = 0.004;
  c.forwardAttempts = 4;
  c.service.coreBudget = 4;
  c.service.queueCapacity = 32;
  return c;
}

// Spin until every broker has fetched (and adopted) the initial
// membership view. The first heartbeat consumes fault-site consults, so
// tests that inject "fabric_drop" install their injector only after this.
void waitForInitialViews(HazardFabric& fabric, int brokers) {
  for (int i = 0; i < 5000; ++i) {
    int adopted = 0;
    for (const std::string& ev : fabric.events())
      if (ev.find("adopted view epoch 1") != std::string::npos) ++adopted;
    if (adopted >= brokers) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  FAIL() << "brokers never adopted the initial membership view";
}

// Find a steps variant of the small wave spec whose digest lands on
// `wantOwner` under the full live mask of an (nbrokers, 64) ring. The
// ring is deterministic, so the search is too.
sched::ScenarioSpec specOwnedBy(int nbrokers, int wantOwner,
                                std::uint64_t minSteps = 12) {
  const HashRing ring(nbrokers, 64);
  const std::uint32_t full = (1u << static_cast<std::uint32_t>(nbrokers)) - 1u;
  for (std::uint64_t steps = minSteps; steps < minSteps + 200; steps += 2) {
    sched::ScenarioSpec spec = smallWaveSpec(steps);
    if (ring.ownerOf(HashRing::pointFor(spec.hashHex()), full) == wantOwner)
      return spec;
  }
  ADD_FAILURE() << "no spec variant owned by broker " << wantOwner;
  return smallWaveSpec(minSteps);
}

// ---------------------------------------------------------------------------
// HashRing

TEST(HashRing, DeterministicBalancedAndLiveOnly) {
  const HashRing a(4, 64);
  const HashRing b(4, 64);
  EXPECT_EQ(a.vnodeCount(), 4u * 64u);

  const std::uint32_t full = 0b1111;
  std::map<int, int> load;
  for (int i = 0; i < 2000; ++i) {
    const std::string digest = "digest-" + std::to_string(i);
    const std::uint64_t point = HashRing::pointFor(digest);
    const int owner = a.ownerOf(point, full);
    EXPECT_EQ(owner, b.ownerOf(point, full));  // identical rings
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 4);
    ++load[owner];
  }
  for (int broker = 0; broker < 4; ++broker)
    EXPECT_GT(load[broker], 0) << "broker " << broker << " owns nothing";

  // Excluded brokers are never chosen.
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t point =
        HashRing::pointFor("mask-" + std::to_string(i));
    EXPECT_NE(a.ownerOf(point, 0b1101), 1);
  }
  EXPECT_EQ(a.ownerOf(12345, 0), -1);  // nobody live
}

TEST(HashRing, DeathMovesOnlyTheDeadBrokersKeys) {
  const HashRing ring(3, 64);
  const std::uint32_t full = 0b111;
  const std::uint32_t without1 = 0b101;
  int moved = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t point =
        HashRing::pointFor("reshuffle-" + std::to_string(i));
    const int before = ring.ownerOf(point, full);
    const int after = ring.ownerOf(point, without1);
    if (before != 1) {
      EXPECT_EQ(after, before);  // survivors' assignments untouched
    } else {
      EXPECT_NE(after, 1);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);  // broker 1 owned something to begin with
}

// ---------------------------------------------------------------------------
// LeaseBoard

TEST(LeaseBoard, MissedRenewalsEvictAndBumpTheEpoch) {
  LeaseBoard board(3, /*leaseSeconds=*/0.5);
  MembershipView v = board.view(0.0);
  EXPECT_EQ(v.epoch, 1u);
  EXPECT_EQ(v.liveCount(), 3);

  // Broker 0 renews at 0.4 (deadline 0.9); 1 and 2 never do.
  EXPECT_EQ(board.renew(0, 0.4), LeaseBoard::RenewResult::Ok);
  v = board.view(0.6);
  EXPECT_EQ(v.epoch, 2u);  // one bump for the batch of expiries
  EXPECT_TRUE(v.contains(0));
  EXPECT_FALSE(v.contains(1));
  EXPECT_FALSE(v.contains(2));

  // A lapsed broker's renewal is refused until it rejoins.
  EXPECT_EQ(board.renew(1, 0.7), LeaseBoard::RenewResult::Lapsed);
  board.rejoin(1, 0.7);
  v = board.view(0.7);
  EXPECT_EQ(v.epoch, 3u);
  EXPECT_TRUE(v.contains(1));

  // markDead is permanent: rejoin is ignored.
  board.markDead(2);
  board.rejoin(2, 0.8);
  v = board.view(0.8);
  EXPECT_FALSE(v.contains(2));
}

// ---------------------------------------------------------------------------
// FabricTransport fault sites

TEST(Transport, InjectedDropAndDuplicateAreAttributedToTheSender) {
  LeaseBoard board(2, 1000.0);
  FabricTransport transport(2, &board, /*inboxCapacity=*/8);

  fault::FaultPlan plan;
  plan.fabricDrop(0, /*occurrence=*/1);       // first send from broker 0
  plan.fabricDuplicate(0, /*occurrence=*/2);  // second send from broker 0
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  FabricMessage m;
  m.from = 0;
  m.setDigest(std::string(32, 'a'));
  EXPECT_EQ(transport.send(m, 1), FabricTransport::SendResult::Dropped);
  EXPECT_EQ(transport.send(m, 1), FabricTransport::SendResult::Delivered);

  FabricMessage out;
  ASSERT_TRUE(transport.poll(1, out));  // duplicated: two copies queued
  EXPECT_EQ(out.digestStr(), std::string(32, 'a'));
  ASSERT_TRUE(transport.poll(1, out));
  EXPECT_FALSE(transport.poll(1, out));

  const FabricTransport::Stats stats = transport.stats();
  EXPECT_EQ(stats.sent, 2u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.duplicated, 1u);
  EXPECT_EQ(stats.delivered, 2u);
}

TEST(Transport, InjectedSendDelayStallsButStillDelivers) {
  LeaseBoard board(2, 1000.0);
  FabricTransport transport(2, &board, /*inboxCapacity=*/8);

  // A fabric_delay stall slows the sending broker without losing the
  // message: delivery and digest integrity are unaffected.
  fault::FaultPlan plan;
  plan.fabricDelay(0, /*occurrence=*/1, /*seconds=*/0.05);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  FabricMessage m;
  m.from = 0;
  m.setDigest(std::string(32, 'b'));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(transport.send(m, 1), FabricTransport::SendResult::Delivered);
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 0.04);

  FabricMessage out;
  ASSERT_TRUE(transport.poll(1, out));
  EXPECT_EQ(out.digestStr(), std::string(32, 'b'));
  EXPECT_FALSE(transport.poll(1, out));

  const FabricTransport::Stats stats = transport.stats();
  EXPECT_EQ(stats.delayed, 1u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(injector.faultsInjected(), 1u);
}

// ---------------------------------------------------------------------------
// SubmissionLog

TEST(SubmissionLog, AppendIsIdempotentByDigest) {
  SubmissionLog log;
  const sched::ScenarioSpec spec = smallWaveSpec();
  const std::string digest = spec.hashHex();

  const std::uint64_t seq = log.append(spec, digest, 0);
  EXPECT_EQ(log.append(spec, digest, 1), seq);  // dedup, same record
  EXPECT_TRUE(log.contains(digest));
  EXPECT_FALSE(log.isCompleted(digest));
  EXPECT_EQ(log.incompleteRecords().size(), 1u);

  log.markCompleted(digest);
  log.markCompleted(digest);  // idempotent
  EXPECT_TRUE(log.isCompleted(digest));
  EXPECT_TRUE(log.incompleteRecords().empty());

  const SubmissionLog::Stats stats = log.stats();
  EXPECT_EQ(stats.appended, 1u);
  EXPECT_EQ(stats.dedupedAppends, 1u);
  EXPECT_EQ(stats.completedMarks, 1u);
}

// ---------------------------------------------------------------------------
// Runtime config plumbing

TEST(FabricConfigKeys, ParseAndRoundTripIntoFabricConfig) {
  const auto rc = core::parseRuntimeConfig(
      "fabric_brokers = 5\n"
      "fabric_vnodes = 32\n"
      "fabric_lease_seconds = 2.5\n"
      "fabric_heartbeat_seconds = 0.5\n"
      "fabric_degraded_misses = 3\n"
      "fabric_pump_interval = 0.02\n"
      "fabric_forward_attempts = 6\n"
      "fabric_root_dir = /tmp/awp-fabric-test-keys\n");
  const FabricConfig c = FabricConfig::fromRuntime(rc);
  EXPECT_EQ(c.brokers, 5);
  EXPECT_EQ(c.vnodes, 32);
  EXPECT_DOUBLE_EQ(c.leaseSeconds, 2.5);
  EXPECT_DOUBLE_EQ(c.heartbeatSeconds, 0.5);
  EXPECT_EQ(c.degradedAfterMisses, 3);
  EXPECT_DOUBLE_EQ(c.pumpIntervalSeconds, 0.02);
  EXPECT_EQ(c.forwardAttempts, 6);
  EXPECT_EQ(c.rootDir, "/tmp/awp-fabric-test-keys");
  EXPECT_FALSE(c.service.telemetry);  // the fabric owns the session

  EXPECT_THROW(core::parseRuntimeConfig("fabric_brokers = 0\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("fabric_lease_seconds = -1\n"),
               Error);
}

// ---------------------------------------------------------------------------
// Healthy-fabric ensemble

TEST(Fabric, EnsembleCompletesWithCoalescedResubmission) {
  const fs::path root = tempDir("ensemble");
  util::resetRetryRegistry();
  HazardFabric fabric(smallFabricConfig(root, 2));

  std::vector<FabricJobHandle> jobs;
  for (std::uint64_t steps : {12u, 14u, 16u, 18u})
    jobs.push_back(fabric.submit(smallWaveSpec(steps)));
  // Resubmitting an in-flight digest coalesces onto the same handle.
  FabricJobHandle dup = fabric.submit(smallWaveSpec(12));
  EXPECT_EQ(dup.get(), jobs[0].get());

  fabric.drain();
  for (const auto& job : jobs) {
    EXPECT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
    std::lock_guard<std::mutex> lock(job->mu);
    EXPECT_EQ(job->completions, 1);
    EXPECT_NE(job->products.find("pgvh.bin"), nullptr);
    EXPECT_NE(job->products.find("surface.bin"), nullptr);
  }
  {
    std::lock_guard<std::mutex> lock(dup->mu);
    EXPECT_EQ(dup->submissions, 2);
  }

  const FabricReport report = fabric.report();
  EXPECT_EQ(report.submitted, 4u);
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.liveBrokers, 2);
  EXPECT_EQ(report.log.appended, 4u);
  EXPECT_EQ(report.log.completedMarks, 4u);
  ASSERT_EQ(report.brokers.size(), 2u);
  for (const auto& br : report.brokers) {
    const auto problems =
        sched::validateServiceReportJson(sched::toJson(br));
    EXPECT_TRUE(problems.empty())
        << "broker report invalid: " << problems.front();
  }
  fabric.shutdown();
}

// ---------------------------------------------------------------------------
// Forward retry under injected drops (satellite: per-site retry stats)

TEST(Fabric, ForwardRetriesUnderDropsAndRecordsRetrySites) {
  const fs::path root = tempDir("forward-retry");
  util::resetRetryRegistry();

  FabricConfig config = smallFabricConfig(root, 2);
  // Park the control plane so ONLY data-plane forwards consume broker 0's
  // "fabric_drop" occurrence stream (heartbeats share the site).
  config.heartbeatSeconds = 1000.0;
  config.leaseSeconds = 1e9;

  HazardFabric fabric(config);
  waitForInitialViews(fabric, 2);

  // The first two forward sends from broker 0 are lost; the third retry
  // lands (forwardAttempts = 4). Installed after the initial view fetch
  // so the control plane does not consume the occurrence stream.
  fault::FaultPlan plan;
  plan.fabricDrop(0, /*occurrence=*/1, /*count=*/2);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  // Entry round-robin starts at broker 0; a spec owned by broker 1 forces
  // a forward across the faulty link.
  FabricJobHandle job = fabric.submit(specOwnedBy(2, /*wantOwner=*/1));
  fabric.drain();
  EXPECT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;

  const FabricReport report = fabric.report();
  EXPECT_GE(report.transport.dropped, 2u);
  EXPECT_GE(report.counters.forwards, 1u);
  const auto it = report.retrySites.find("fabric.forward");
  ASSERT_NE(it, report.retrySites.end());
  EXPECT_GE(it->second.calls, 1u);
  EXPECT_GE(it->second.failures, 2u);  // the two dropped attempts
  EXPECT_GT(it->second.attempts, it->second.calls);
  EXPECT_EQ(it->second.exhausted, 0u);
  fabric.shutdown();
}

TEST(Fabric, DuplicateDeliveryIsAbsorbedExactlyOnce) {
  const fs::path root = tempDir("duplicate");
  util::resetRetryRegistry();

  FabricConfig config = smallFabricConfig(root, 2);
  config.heartbeatSeconds = 1000.0;  // leave the fault stream to the sends
  config.leaseSeconds = 1e9;

  HazardFabric fabric(config);
  waitForInitialViews(fabric, 2);

  fault::FaultPlan plan;
  plan.fabricDuplicate(0, /*occurrence=*/1);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  FabricJobHandle job = fabric.submit(specOwnedBy(2, /*wantOwner=*/1));
  fabric.drain();
  EXPECT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    EXPECT_EQ(job->completions, 1);
  }
  // The second copy is absorbed by digest dedup (tracked-job table or
  // completed-log check), not run again; it may still be in the inbox
  // when drain() returns, so poll for the dedup mark.
  for (int i = 0; i < 1000 && fabric.report().counters.dedupHits == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const FabricReport report = fabric.report();
  EXPECT_EQ(report.transport.duplicated, 1u);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_GE(report.counters.dedupHits, 1u);
  fabric.shutdown();
}

// ---------------------------------------------------------------------------
// Degraded mode: a partitioned broker parks work instead of failing it

TEST(Fabric, PartitionedBrokerDegradesParksAndRecovers) {
  const fs::path root = tempDir("degraded");
  util::resetRetryRegistry();

  FabricConfig config = smallFabricConfig(root, 2);
  config.leaseSeconds = 0.3;
  config.heartbeatSeconds = 0.05;
  config.degradedAfterMisses = 2;

  // Partition broker 1 from the start: every send AND lease RPC from it
  // is lost for the first 40 consults (~1 s of heartbeats), then the
  // link heals and it rejoins.
  fault::FaultPlan plan;
  plan.fabricDrop(1, /*occurrence=*/1, /*count=*/40);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  HazardFabric fabric(config);

  // Wait for the partition to register: broker 1 degrades after two
  // missed renewals, and the board evicts it when the lease lapses.
  for (int i = 0; i < 2000 && fabric.brokerState(1) != BrokerState::Degraded;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(fabric.brokerState(1), BrokerState::Degraded);

  // Entry round-robin: first submit enters broker 0, second enters the
  // degraded broker 1, which must PARK it (degradedHolds), not fail it.
  FabricJobHandle first = fabric.submit(smallWaveSpec(12));
  FabricJobHandle parked = fabric.submit(smallWaveSpec(14));

  fabric.drain();
  EXPECT_EQ(first->wait(), sched::JobPhase::Completed) << first->error;
  EXPECT_EQ(parked->wait(), sched::JobPhase::Completed) << parked->error;
  {
    std::lock_guard<std::mutex> lock(parked->mu);
    EXPECT_EQ(parked->completions, 1);
  }

  // The drop window ends ~1 s in; wait for broker 1 to renew, learn its
  // lease lapsed, and rejoin before checking the recovery markers.
  for (int i = 0; i < 5000 && fabric.brokerState(1) != BrokerState::Active;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(fabric.brokerState(1), BrokerState::Active);

  const FabricReport report = fabric.report();
  EXPECT_GE(report.counters.degradedHolds, 1u);
  EXPECT_GE(report.viewEpoch, 2u);  // the eviction bumped the epoch

  bool sawDegraded = false;
  bool sawRecovery = false;
  for (const std::string& ev : fabric.events()) {
    if (ev.find("degraded") != std::string::npos) sawDegraded = true;
    if (ev.find("active again") != std::string::npos ||
        ev.find("rejoined") != std::string::npos)
      sawRecovery = true;
  }
  EXPECT_TRUE(sawDegraded);
  EXPECT_TRUE(sawRecovery);
  fabric.shutdown();
}

// ---------------------------------------------------------------------------
// Chaos acceptance: kill 1 of 3 brokers mid-ensemble. Every scenario
// completes bit-identically to an undisturbed baseline, exactly once.

TEST(FabricChaos, BrokerDeathMidEnsembleIsBitIdentical) {
  // Ensure at least two scenarios land on the broker we will kill, so its
  // hash range genuinely has work to hand off.
  // The doomed broker's scenarios are long enough (150+ steps, a
  // checkpoint every 6) that they cannot finish before the death fires.
  std::vector<sched::ScenarioSpec> specs;
  specs.push_back(specOwnedBy(3, /*wantOwner=*/1, /*minSteps=*/150));
  specs.push_back(specOwnedBy(
      3, /*wantOwner=*/1, specs.back().steps + 2));
  specs.push_back(specOwnedBy(3, /*wantOwner=*/0, /*minSteps=*/12));
  specs.push_back(specOwnedBy(3, /*wantOwner=*/2, /*minSteps=*/12));
  std::set<std::string> digests;
  for (const auto& s : specs) digests.insert(s.hashHex());
  ASSERT_EQ(digests.size(), specs.size());

  // Baseline: an undisturbed single-broker fabric with its own work/cache
  // tier records the ground-truth product hashes.
  std::map<std::string, std::string> basePgvh;
  std::map<std::string, std::string> baseSurface;
  {
    const fs::path root = tempDir("chaos-baseline");
    util::resetRetryRegistry();
    HazardFabric baseline(smallFabricConfig(root, 1));
    std::vector<FabricJobHandle> jobs;
    for (const auto& s : specs) jobs.push_back(baseline.submit(s));
    baseline.drain();
    for (const auto& job : jobs) {
      ASSERT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
      std::lock_guard<std::mutex> lock(job->mu);
      basePgvh[job->digest] = blobMd5(job->products, "pgvh.bin");
      baseSurface[job->digest] = blobMd5(job->products, "surface.bin");
    }
    baseline.shutdown();
  }

  // Chaos run: 3 brokers, broker 1 fail-stops at its 8th pump tick
  // (~30 ms in, with the ensemble in flight).
  const fs::path root = tempDir("chaos-run");
  util::resetRetryRegistry();
  FabricConfig config = smallFabricConfig(root, 3);
  config.leaseSeconds = 0.3;
  config.heartbeatSeconds = 0.06;

  fault::FaultPlan plan;
  plan.brokerDeath(1, /*occurrence=*/8);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  HazardFabric fabric(config);
  std::vector<FabricJobHandle> jobs;
  for (const auto& s : specs) jobs.push_back(fabric.submit(s));
  fabric.drain();

  EXPECT_EQ(fabric.brokerState(1), BrokerState::Dead);
  for (const auto& job : jobs) {
    ASSERT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
    std::lock_guard<std::mutex> lock(job->mu);
    EXPECT_EQ(job->completions, 1) << job->digest;  // exactly once
    EXPECT_EQ(blobMd5(job->products, "pgvh.bin"), basePgvh[job->digest])
        << "pgvh not bit-identical for " << job->digest;
    EXPECT_EQ(blobMd5(job->products, "surface.bin"),
              baseSurface[job->digest])
        << "surface not bit-identical for " << job->digest;
  }

  const FabricReport report = fabric.report();
  EXPECT_EQ(report.completed, specs.size());
  EXPECT_EQ(report.failed, 0u);           // zero lost products
  EXPECT_EQ(report.liveBrokers, 2);
  EXPECT_GE(report.viewEpoch, 2u);        // the death bumped the epoch
  EXPECT_GE(report.counters.replays, 1u); // the orphaned range replayed
  EXPECT_GE(report.counters.viewChanges, 1u);

  bool sawDeath = false;
  for (const std::string& ev : fabric.events())
    if (ev.find("fail-stop") != std::string::npos) sawDeath = true;
  EXPECT_TRUE(sawDeath);

  // The dead broker's jobs were marked complete in the log by whoever
  // finished them — nothing left incomplete, nothing double-marked.
  EXPECT_EQ(report.log.completedMarks, specs.size());

  for (const auto& br : report.brokers) {
    const auto problems =
        sched::validateServiceReportJson(sched::toJson(br));
    EXPECT_TRUE(problems.empty())
        << "broker report invalid: " << problems.front();
  }
  fabric.shutdown();
}

// Every broker dying with work outstanding settles the remainder as
// Failed instead of hanging drain() forever.
TEST(FabricChaos, AllBrokersDeadFailsRemainingWork) {
  const fs::path root = tempDir("all-dead");
  util::resetRetryRegistry();
  FabricConfig config = smallFabricConfig(root, 2);
  config.leaseSeconds = 0.3;
  config.heartbeatSeconds = 0.05;

  HazardFabric fabric(config);
  FabricJobHandle job = fabric.submit(smallWaveSpec(400));  // long-running
  fabric.killBroker(0);
  fabric.killBroker(1);
  fabric.drain();
  EXPECT_EQ(job->wait(), sched::JobPhase::Failed);
  EXPECT_FALSE(job->error.empty());
  // New submissions are refused outright.
  FabricJobHandle refused = fabric.submit(smallWaveSpec(16));
  EXPECT_EQ(refused->wait(), sched::JobPhase::Failed);
  fabric.shutdown();
}

}  // namespace
}  // namespace awp::fabric
