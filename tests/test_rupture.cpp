// Tests for the dynamic fault rupture (DFR) solver: friction law, von
// Kármán initial stress, and spontaneous rupture behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "rupture/friction.hpp"
#include "rupture/solver.hpp"
#include "rupture/stress_model.hpp"
#include "util/stats.hpp"
#include "vcluster/cluster.hpp"

namespace awp::rupture {
namespace {

using vcluster::CartTopology;
using vcluster::Dims3;
using vcluster::ThreadCluster;

TEST(Friction, M8Parameters) {
  const FrictionParams p;  // defaults are the §VII.A values
  EXPECT_DOUBLE_EQ(p.muS, 0.75);
  EXPECT_DOUBLE_EQ(p.muD, 0.50);
  EXPECT_DOUBLE_EQ(p.dc, 0.3);
  EXPECT_DOUBLE_EQ(p.cohesion, 1.0e6);
}

TEST(Friction, SlipWeakeningCurve) {
  SlipWeakeningFriction f{FrictionParams{}};
  const double depth = 8000.0;  // well below the strengthened zone
  EXPECT_DOUBLE_EQ(f.coefficient(0.0, depth), 0.75);
  EXPECT_DOUBLE_EQ(f.coefficient(0.15, depth), 0.625);  // halfway
  EXPECT_DOUBLE_EQ(f.coefficient(0.3, depth), 0.50);
  EXPECT_DOUBLE_EQ(f.coefficient(10.0, depth), 0.50);  // saturated
}

TEST(Friction, VelocityStrengtheningNearSurface) {
  // §VII.A: "we emulated velocity strengthening by forcing μd > μs, with a
  // linear transition between 2 km and 3 km".
  SlipWeakeningFriction f{FrictionParams{}};
  EXPECT_GT(f.muDAt(1000.0), f.params().muS);  // μd > μs in the top zone
  EXPECT_DOUBLE_EQ(f.muDAt(5000.0), 0.50);
  const double mid = f.muDAt(2500.0);
  EXPECT_GT(mid, 0.50);
  EXPECT_LT(mid, f.muDAt(1000.0));
}

TEST(Friction, DcTaperAtSurface) {
  // "dc was increased to 1 m at the free surface using a cosine taper in
  // the top 3 km."
  SlipWeakeningFriction f{FrictionParams{}};
  EXPECT_DOUBLE_EQ(f.dcAt(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f.dcAt(3000.0), 0.3);
  EXPECT_DOUBLE_EQ(f.dcAt(10000.0), 0.3);
  EXPECT_GT(f.dcAt(1500.0), 0.3);
  EXPECT_LT(f.dcAt(1500.0), 1.0);
}

TEST(Friction, StrengthIncludesCohesionAndNormalStress) {
  SlipWeakeningFriction f{FrictionParams{}};
  // Zero normal stress: strength = cohesion.
  EXPECT_DOUBLE_EQ(f.strength(0.0, 8000.0, 0.0), 1.0e6);
  // Compressive (negative) normal stress adds μ|σn|.
  EXPECT_DOUBLE_EQ(f.strength(0.0, 8000.0, -10.0e6), 1.0e6 + 7.5e6);
  // Tensile normal stress never yields a negative strength.
  EXPECT_GE(f.strength(0.0, 8000.0, 50.0e6), 0.0);
}

TEST(VonKarman, NormalizedAndDeterministic) {
  const auto a = vonKarmanField(48, 24, 500.0, 10e3, 3e3, 0.75, 7);
  const auto b = vonKarmanField(48, 24, 500.0, 10e3, 3e3, 0.75, 7);
  EXPECT_EQ(a, b);
  EXPECT_NEAR(mean(a), 0.0, 1e-9);
  double var = 0.0;
  for (double v : a) var += v * v;
  var /= static_cast<double>(a.size());
  EXPECT_NEAR(var, 1.0, 1e-6);
  // Different seeds give different fields.
  const auto c = vonKarmanField(48, 24, 500.0, 10e3, 3e3, 0.75, 8);
  EXPECT_NE(a, c);
}

TEST(VonKarman, AnisotropicCorrelation) {
  // With a much longer correlation length along x, neighboring samples in
  // x are more correlated than neighboring samples in z.
  const auto f = vonKarmanField(64, 64, 500.0, 16e3, 1e3, 0.75, 11);
  double cx = 0.0, cz = 0.0;
  int n = 0;
  for (std::size_t k = 0; k + 4 < 64; ++k)
    for (std::size_t i = 0; i + 4 < 64; ++i) {
      cx += f[i + 64 * k] * f[i + 4 + 64 * k];
      cz += f[i + 64 * k] * f[i + 64 * (k + 4)];
      ++n;
    }
  EXPECT_GT(cx / n, cz / n);
}

TEST(InitialStress, RespectsStrengthEnvelope) {
  SlipWeakeningFriction friction{FrictionParams{}};
  StressModelConfig config;
  config.nucRadius = 0.0;
  const auto s = buildInitialStress(64, 32, 500.0, config, friction);
  for (std::size_t k = 0; k < 32; ++k) {
    const double depth = static_cast<double>(32 - 1 - k) * 500.0;
    for (std::size_t i = 0; i < 64; ++i) {
      const double tau = s.tauAt(i, k);
      const double tauS = friction.strength(0.0, depth, s.sigmaAt(i, k));
      EXPECT_LE(tau, tauS * 1.0001);
      EXPECT_GE(tau, 0.0);
    }
  }
}

TEST(InitialStress, ShearTapersToZeroAtSurface) {
  SlipWeakeningFriction friction{FrictionParams{}};
  StressModelConfig config;
  const auto s = buildInitialStress(32, 40, 500.0, config, friction);
  // Top row (k = nz-1) is the surface: tau ~ 0.
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_LT(s.tauAt(i, 39), 0.05 * s.tauAt(i, 8));
}

TEST(InitialStress, NucleationPatchExceedsStaticStrength) {
  SlipWeakeningFriction friction{FrictionParams{}};
  StressModelConfig config;
  config.nucX = 8000.0;
  config.nucZ = 8000.0;
  config.nucRadius = 1500.0;
  const auto s = buildInitialStress(64, 40, 500.0, config, friction);
  // Node at the nucleation center: i = 16, depth 8000 -> k = 39 - 16 = 23.
  const std::size_t i = 16, k = 40 - 1 - 16;
  const double depth = 8000.0;
  const double tauS = friction.strength(0.0, depth, s.sigmaAt(i, k));
  EXPECT_GT(s.tauAt(i, k), tauS);
}

// A compact spontaneous-rupture configuration for the solver tests.
RuptureConfig smallRupture(bool nucleate) {
  RuptureConfig c;
  c.globalDims = {64, 32, 32};
  c.h = 400.0;
  c.faultJ = 15;
  c.fi0 = 12;
  c.fi1 = 52;
  c.fk0 = 6;
  c.fk1 = 31;  // up to one row below the surface
  c.spongeWidth = 6;
  c.stress.corrX = 8000.0;
  c.stress.corrZ = 3000.0;
  if (nucleate) {
    c.stress.nucX = 8.0 * 400.0;  // along the fault-local x
    c.stress.nucZ = 6000.0;
    c.stress.nucRadius = 1600.0;
    c.stress.nucExcess = 0.08;
  } else {
    c.stress.nucRadius = 0.0;
  }
  c.timeDecimation = 2;
  // A 1 cm/s pick threshold: the default 1 mm/s can trigger on the
  // numerical precursor of the nucleation stress step (grid information
  // travels 4 cells/step, ahead of the continuum wavefront).
  c.slipRateThreshold = 0.01;
  return c;
}

FaultHistory runRupture(bool nucleate, Dims3 dims, std::size_t steps) {
  FaultHistory out;
  ThreadCluster::run(dims.total(), [&](vcluster::Communicator& comm) {
    CartTopology topo(dims);
    const auto model = vmodel::LayeredModel::socalBackground();
    DynamicRuptureSolver solver(comm, topo, smallRupture(nucleate), model);
    solver.run(steps);
    auto h = solver.gather();
    if (comm.rank() == 0) out = std::move(h);
  });
  return out;
}

TEST(RuptureSolver, NoNucleationNoRupture) {
  const auto h = runRupture(false, Dims3{1, 1, 1}, 150);
  ASSERT_GT(h.nx, 0u);
  EXPECT_LT(h.seismicMoment(), 1e14);  // essentially nothing slipped
  for (float t : h.ruptureTime) EXPECT_LT(t, 0.0f);
}

TEST(RuptureSolver, NucleatedRupturePropagates) {
  const auto h = runRupture(true, Dims3{1, 1, 1}, 300);
  ASSERT_GT(h.nx, 0u);

  // Significant moment released; a plausible magnitude for a ~16 km long,
  // 10-km deep fault patch is Mw ~ 6-7.5.
  const double mw = h.momentMagnitude();
  EXPECT_GT(mw, 5.5);
  EXPECT_LT(mw, 8.0);
  EXPECT_GT(h.averageSlip(), 0.05);

  // Rupture must have spread well beyond the nucleation patch.
  std::size_t ruptured = 0;
  for (float t : h.ruptureTime)
    if (t >= 0.0f) ++ruptured;
  EXPECT_GT(ruptured, h.ruptureTime.size() / 3);

  // Causality: rupture time grows with along-strike distance from the
  // nucleation zone (sampled at mid depth).
  const std::size_t kMid = h.nz / 2;
  const std::size_t iNuc = 8;
  float tNear = -1.0f, tFar = -1.0f;
  tNear = h.ruptureTime[iNuc + 4 + h.nx * kMid];
  tFar = h.ruptureTime[std::min(h.nx - 2, iNuc + 24) + h.nx * kMid];
  if (tNear >= 0.0f && tFar >= 0.0f) EXPECT_GT(tFar, tNear);

  // Peak slip rates are physically bounded (paper: ~10 m/s patches).
  for (float v : h.peakSlipRate) EXPECT_LT(v, 50.0f);
}

TEST(RuptureSolver, RuptureFrontIsCausal) {
  // Information cannot outrun the P wave: every node's rupture time must
  // be at least its distance from the nucleation patch divided by the
  // fastest P speed in the model. (Apparent along-strike speeds from the
  // rupture-time gradient CAN exceed vp — oblique front arrivals — so the
  // causality bound is the right invariant, not the local gradient.)
  const auto h = runRupture(true, Dims3{1, 1, 1}, 300);
  const auto config = smallRupture(true);
  const double vpMax = 7000.0;  // generous for the SoCal background model
  const double nzH = static_cast<double>(h.nz) * h.h;
  for (std::size_t k = 0; k < h.nz; ++k)
    for (std::size_t i = 0; i < h.nx; ++i) {
      const float t = h.ruptureTime[i + h.nx * k];
      if (t < 0.0f) continue;
      const double x = static_cast<double>(i) * h.h;
      const double depth = nzH - static_cast<double>(k + 1) * h.h;
      const double dist = std::hypot(x - config.stress.nucX,
                                     depth - config.stress.nucZ);
      const double minTime =
          std::max(0.0, dist - config.stress.nucRadius) / (1.15 * vpMax);
      EXPECT_GE(t + 2.0 * h.dt, minTime)
          << "node (" << i << ", " << k << ")";
    }
}

TEST(RuptureSolver, DecompositionInvariant) {
  const auto ref = runRupture(true, Dims3{1, 1, 1}, 120);
  const auto par = runRupture(true, Dims3{2, 2, 1}, 120);
  ASSERT_EQ(ref.finalSlip.size(), par.finalSlip.size());
  for (std::size_t n = 0; n < ref.finalSlip.size(); ++n) {
    ASSERT_NEAR(par.finalSlip[n], ref.finalSlip[n],
                1e-4f * std::max(1.0f, ref.finalSlip[n]));
    ASSERT_EQ(par.ruptureTime[n] < 0.0f, ref.ruptureTime[n] < 0.0f);
  }
}

TEST(RuptureSolver, HistoriesMatchFinalSlip) {
  const auto h = runRupture(true, Dims3{1, 1, 1}, 200);
  ASSERT_GT(h.recordedSteps, 0u);
  // Integrating the strike slip-rate history (with decimation) should
  // land near the recorded slip path for a node that slipped mostly in x.
  const std::size_t kMid = h.nz / 2;
  for (std::size_t i : {h.nx / 2, h.nx / 3}) {
    const std::size_t node = i + h.nx * kMid;
    if (h.ruptureTime[node] < 0.0f) continue;
    double integral = 0.0;
    for (std::size_t t = 0; t < h.recordedSteps; ++t)
      integral += std::abs(h.slipRateX[node * h.recordedSteps + t]);
    integral *= h.dt * h.timeDecimation;
    EXPECT_NEAR(integral, h.finalSlip[node],
                0.35 * h.finalSlip[node] + 0.02);
  }
}

}  // namespace
}  // namespace awp::rupture
