// Earthquake-cycle engine tests: rate-and-state aging-law analytics, the
// stiffness kernel's spring-slider limit, stick-slip recurrence against
// the linear-reload prediction, seed-reproducible catalogs, the
// cycle.step fault site (state poison absorbed, stall caught by the
// watchdog), spec encoding v2 (with the v1 golden hashes pinned), the
// cycle_* runtime keys, catalog JSON validation, and the catalog-through-
// fabric chaos run (kill 1 of 3 brokers mid-catalog; every event's
// scenario still completes exactly once and the catalog stays
// bit-identical to the undisturbed run).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/runtime_config.hpp"
#include "cycle/bridge.hpp"
#include "cycle/catalog.hpp"
#include "cycle/kernel.hpp"
#include "cycle/solver.hpp"
#include "fabric/fabric.hpp"
#include "fault/injector.hpp"
#include "health/watchdog.hpp"
#include "rupture/rate_state.hpp"
#include "sched/spec.hpp"
#include "util/error.hpp"
#include "util/retry.hpp"

namespace awp::cycle {
namespace {

namespace fs = std::filesystem;

fs::path tempDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("awp-cycle-test-" + tag + "-" + std::to_string(getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// The homogeneous spring-slider limit: one node, no heterogeneity, no
// velocity-strengthening rim. Deeply unstable (kLoad = 1.2e6 ≈ 0.1·kc)
// so the aseismic creep fraction of each cycle is a few percent and the
// analytic recurrence predictions hold tightly; vpl is raised to 1e-7 m/s
// so a cycle takes simulated months, not centuries of tiny steps.
CycleConfig springSliderConfig() {
  CycleConfig c;
  c.nx = 1;
  c.nz = 1;
  c.heterogeneity = 0.0;
  c.rimNodes = 0;
  c.loadingFactor = 0.02;
  c.vpl = 1.0e-7;
  // Close the event window below the plate rate: "closed" then means
  // "relocked", so τ at close anchors the linear-reload recurrence
  // prediction instead of catching the slider mid-deceleration.
  c.lockRate = 2.0e-8;
  c.years = 40.0;
  c.maxEvents = 5;
  return c;
}

// A small multi-node fault tuned to be "inherently discrete": the
// interaction stencil is weak and short enough that a single cell's
// effective stiffness (loading + its off-diagonal row) stays below the
// rate-and-state critical stiffness, so individual cells stick and slip
// at times staggered by the seeded heterogeneity — an event catalog, not
// one fault-wide limit cycle.
CycleConfig smallFaultConfig(std::uint64_t seed = 11) {
  CycleConfig c;
  c.nx = 24;
  c.nz = 8;
  c.cell = 500.0;
  c.friction.L = 0.005;  // kc = (b-a)(-sigma)/L = 5e7 Pa/m per cell
  c.interaction = 0.05;
  c.stencilRadius = 3;
  c.vpl = 1.0e-8;
  c.heterogeneity = 0.3;
  c.corrX = 4000.0;
  c.corrZ = 2000.0;
  c.seed = seed;
  c.years = 40.0;
  c.maxEvents = 3;
  return c;
}

// --- rate-and-state friction ----------------------------------------------

TEST(RateState, AgingLawClosedFormAndSteadyState) {
  const rupture::RateStateParams p;
  const rupture::RateStateFriction f(p);

  // Steady state: dθ/dt(V, L/V) = 0 and μ(V, L/V) = μss(V).
  const double V = 3.0e-9;
  EXPECT_DOUBLE_EQ(f.steadyStateTheta(V), p.L / V);
  EXPECT_NEAR(f.thetaRate(V, f.steadyStateTheta(V)), 0.0, 1e-15);
  EXPECT_NEAR(f.friction(V, f.steadyStateTheta(V)), f.steadyStateFriction(V),
              1e-14);
  // b > a: steady-state friction weakens with rate.
  EXPECT_LT(f.steadyStateFriction(10.0 * V) - f.steadyStateFriction(V), 0.0);

  // Closed form θ(t) = L/V + (θ0 − L/V)e^{−Vt/L} against a fine forward-
  // Euler integration of dθ/dt = 1 − Vθ/L.
  const double theta0 = 0.1 * p.L / V;
  const double tEnd = 2.0 * p.L / V;  // two e-folds
  const int steps = 200000;
  double theta = theta0;
  const double dt = tEnd / steps;
  for (int i = 0; i < steps; ++i) theta += dt * f.thetaRate(V, theta);
  const double closed = f.evolveThetaConstV(theta0, V, tEnd);
  EXPECT_NEAR(theta, closed, 1e-4 * closed);
  EXPECT_NEAR(closed,
              p.L / V + (theta0 - p.L / V) * std::exp(-V * tEnd / p.L),
              1e-9 * p.L / V);

  // kc = (b − a)(−σn)/L and strength sign convention (σn negative).
  const double sigmaN = -50.0e6;
  EXPECT_DOUBLE_EQ(f.criticalStiffness(sigmaN), (p.b - p.a) * 50.0e6 / p.L);
  EXPECT_NEAR(f.strength(V, f.steadyStateTheta(V), sigmaN),
              f.steadyStateFriction(V) * 50.0e6, 1e-6 * 50.0e6);
}

// --- stiffness kernel ------------------------------------------------------

TEST(CycleKernel, UniformModeUnloadsThroughLoadingStiffnessEverywhere) {
  const KernelConfig kc{12, 6, 500.0, 30.0e9, 0.1, 0.25, 3};
  const StiffnessKernel kernel(kc);
  EXPECT_DOUBLE_EQ(kernel.loadingStiffness(), 0.1 * 30.0e9 / 500.0);

  // Locked fault (V = 0): every node loads at +kLoad·Vpl.
  const double vpl = 1.0e-9;
  std::vector<double> v(12 * 6, 0.0), rate(12 * 6, 0.0);
  kernel.stressingRate(v, vpl, rate);
  for (double r : rate)
    EXPECT_NEAR(r, kernel.loadingStiffness() * vpl,
                1e-9 * kernel.loadingStiffness() * vpl);

  // Uniformly creeping fault (V = Vpl + u): every node — edges included —
  // unloads at exactly kLoad·u, because the self term absorbs the
  // truncated in-bounds row sum.
  const double u = 2.0e-9;
  v.assign(v.size(), vpl + u);
  kernel.stressingRate(v, vpl, rate);
  for (double r : rate)
    EXPECT_NEAR(r, -kernel.loadingStiffness() * u,
                1e-9 * kernel.loadingStiffness() * u);
}

TEST(CycleKernel, SingleNodeIsTheExactSpringSlider) {
  const KernelConfig kc{1, 1, 500.0, 30.0e9, 0.1, 0.25, 8};
  const StiffnessKernel kernel(kc);
  std::vector<double> v{3.0e-9}, rate{0.0};
  kernel.stressingRate(v, 1.0e-9, rate);
  EXPECT_DOUBLE_EQ(rate[0], -kernel.loadingStiffness() * 2.0e-9);
}

// --- quasi-dynamic solver --------------------------------------------------

TEST(CycleSolver, SpringSliderSticksAndSlipsWithPredictedRecurrence) {
  const CycleConfig config = springSliderConfig();
  // Below the critical stiffness: kLoad = 1.2e6 < kc = 1.25e7 Pa/m.
  const rupture::RateStateFriction f(config.friction);
  const double kLoad =
      config.loadingFactor * config.mu / config.cell;
  ASSERT_LT(kLoad, f.criticalStiffness(-config.sigma));

  CycleSolver solver(config);
  const CycleRunSummary summary = solver.run();
  const auto& events = solver.events();
  ASSERT_GE(events.size(), 3u) << "spring slider never went unstable";
  EXPECT_EQ(summary.eventsDetected, static_cast<int>(events.size()));
  EXPECT_GT(summary.peakSlipRate, config.eventRate);

  // Slip balance over one full cycle: the limit cycle is periodic, so the
  // slip a window releases equals the plate motion accumulated between
  // consecutive onsets — T = moment/(μ·cell²·Vpl).
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    const double observed =
        events[i + 1].onsetSeconds - events[i].onsetSeconds;
    const double predicted = events[i + 1].momentNm /
                             (config.mu * config.cell * config.cell *
                              config.vpl);
    ASSERT_GT(observed, 0.0);
    EXPECT_NEAR(observed, predicted, 0.1 * predicted)
        << "cycle " << i << " violates the slip budget";
  }

  // Interseismic reload is linear at kLoad·Vpl while the slider is locked
  // (τ̇ = kLoad·(Vpl − V) ≈ kLoad·Vpl), so the stick interval is at least
  // the linear-reload time — longer only by the rate-and-state
  // self-acceleration phase, which is a bounded fraction of the cycle.
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    const double closeTime =
        events[i].onsetSeconds + events[i].durationSeconds;
    const double observed = events[i + 1].onsetSeconds - closeTime;
    const double predicted =
        (events[i + 1].tau[0] - events[i].tauCloseNuc) / (kLoad * config.vpl);
    ASSERT_GT(observed, 0.0);
    EXPECT_GE(observed, 0.95 * predicted) << "reload faster than linear";
    EXPECT_LE(observed, 1.4 * predicted)
        << "nucleation phase " << i << " implausibly long";
  }

  // The cycle is periodic: consecutive recurrence intervals agree.
  if (events.size() >= 4) {
    const double t1 = events[2].onsetSeconds - events[1].onsetSeconds;
    const double t2 = events[3].onsetSeconds - events[2].onsetSeconds;
    EXPECT_NEAR(t1, t2, 0.05 * t1);
  }
}

TEST(CycleSolver, StiffSpringAboveKcCreepsStably) {
  CycleConfig config = springSliderConfig();
  config.loadingFactor = 0.5;  // kLoad = 3e7 > kc = 1.25e7 Pa/m
  config.years = 2.0;
  config.maxEvents = 0;
  const rupture::RateStateFriction f(config.friction);
  ASSERT_GT(config.loadingFactor * config.mu / config.cell,
            f.criticalStiffness(-config.sigma));

  CycleSolver solver(config);
  const CycleRunSummary summary = solver.run();
  EXPECT_EQ(summary.eventsDetected, 0);
  EXPECT_LT(summary.peakSlipRate, config.eventRate);
  // The initial kick decays: the slider ends creeping at the plate rate.
  EXPECT_NEAR(solver.theta()[0], config.friction.L / config.vpl,
              0.05 * config.friction.L / config.vpl);
}

TEST(CycleSolver, CatalogIsBitIdenticalAcrossSeededReruns) {
  const CycleConfig config = smallFaultConfig(/*seed=*/11);
  CycleSolver first(config);
  const CycleRunSummary s1 = first.run();
  CycleSolver second(config);
  const CycleRunSummary s2 = second.run();

  ASSERT_GE(first.events().size(), 3u);
  EXPECT_EQ(s1.steps, s2.steps);
  EXPECT_DOUBLE_EQ(s1.simulatedSeconds, s2.simulatedSeconds);
  ASSERT_EQ(first.events().size(), second.events().size());
  for (std::size_t i = 0; i < first.events().size(); ++i) {
    EXPECT_EQ(first.events()[i].digest, second.events()[i].digest);
    EXPECT_EQ(first.events()[i].canonicalBytes(),
              second.events()[i].canonicalBytes());
  }

  // A different seed draws a different heterogeneity field and a
  // different catalog.
  CycleSolver other(smallFaultConfig(/*seed=*/12));
  other.run();
  ASSERT_FALSE(other.events().empty());
  EXPECT_NE(other.events()[0].digest, first.events()[0].digest);
}

// --- cycle.step fault site -------------------------------------------------

TEST(CycleFaultSite, StatePoisonIsAbsorbedByAdaptiveStepping) {
  fault::FaultPlan plan;
  plan.poison("cycle.step", /*rank=*/0, /*occurrence=*/40);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  CycleConfig config = springSliderConfig();
  config.maxEvents = 2;
  CycleSolver solver(config);
  const CycleRunSummary summary = solver.run();
  EXPECT_GE(summary.statePerturbs, 1u);
  // The perturbed state healed: the run still detects events and every
  // field is finite.
  EXPECT_GE(summary.eventsDetected, 1);
  for (double t : solver.theta()) EXPECT_TRUE(std::isfinite(t));
  for (double t : solver.tau()) EXPECT_TRUE(std::isfinite(t));
}

TEST(CycleFaultSite, StallIsCaughtByTheHeartbeatWatchdog) {
  fault::FaultPlan plan;
  plan.stall("cycle.step", /*rank=*/0, /*occurrence=*/60, /*seconds=*/0.8);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  health::HeartbeatBoard board(1);
  health::Watchdog watchdog(board, /*stallTimeoutSeconds=*/0.25, nullptr,
                            /*pollIntervalSeconds=*/0.02);

  CycleConfig config = springSliderConfig();
  config.maxEvents = 1;
  config.heartbeat = &board;
  CycleSolver solver(config);
  solver.run();
  watchdog.stop();

  const auto reports = watchdog.reports();
  ASSERT_GE(reports.size(), 1u) << "watchdog missed the wedged step loop";
  EXPECT_EQ(reports[0].rank, 0);
  EXPECT_GE(reports[0].stalledSeconds, 0.25);
}

// --- spec encoding v2 ------------------------------------------------------

TEST(SpecEncodingV2, PreCycleSpecsKeepTheirV1BytesAndHashes) {
  // Golden hashes computed before the v2 field existed: any drift here
  // means every pre-cycle cache entry and fabric digest just moved.
  const sched::ScenarioSpec wave;
  const auto waveBytes = wave.canonicalBytes();
  ASSERT_GE(waveBytes.size(), 8u);
  EXPECT_EQ(std::memcmp(waveBytes.data(), "AWPSPEC1", 8), 0);
  EXPECT_EQ(waveBytes.size(), 128u);
  EXPECT_EQ(wave.hashHex(), "92ebcb542f37f242707b80ea45e47592");

  sched::ScenarioSpec rupture;
  rupture.kind = sched::ScenarioKind::Rupture;
  rupture.steps = 16;
  rupture.nranks = 2;
  rupture.seed = 42;
  rupture.h = 600.0;
  rupture.lengthKm = 36.0;
  rupture.depthKm = 12.0;
  EXPECT_EQ(rupture.hashHex(), "04c9c9a94fa4068bec8fc7aae0d1582f");

  sched::ScenarioSpec custom;
  custom.steps = 24;
  custom.nranks = 2;
  custom.seed = 7;
  custom.sourceAmplitude = 2.5e15;
  custom.priority = 3;
  custom.name = "x";
  EXPECT_EQ(custom.hashHex(), "bd3d25e2d750a04723406b7d6162f020");
  // Presentation metadata stays outside the hash.
  custom.priority = 0;
  custom.name.clear();
  EXPECT_EQ(custom.hashHex(), "bd3d25e2d750a04723406b7d6162f020");
}

TEST(SpecEncodingV2, CycleDigestSwitchesToV2AndRoundTrips) {
  sched::ScenarioSpec spec;
  spec.kind = sched::ScenarioKind::Rupture;
  spec.steps = 16;
  spec.nranks = 2;
  spec.seed = 42;
  spec.h = 600.0;
  spec.lengthKm = 36.0;
  spec.depthKm = 12.0;
  const std::string v1Hash = spec.hashHex();

  spec.cycleDigest = "d41d8cd98f00b204e9800998ecf8427e";
  const auto v2Bytes = spec.canonicalBytes();
  ASSERT_GE(v2Bytes.size(), 8u);
  EXPECT_EQ(std::memcmp(v2Bytes.data(), "AWPSPEC2", 8), 0);
  EXPECT_NE(spec.hashHex(), v1Hash);

  // v2 round trip, digest included.
  const sched::ScenarioSpec decoded = sched::ScenarioSpec::decodeCanonical(v2Bytes);
  EXPECT_EQ(decoded.cycleDigest, spec.cycleDigest);
  EXPECT_EQ(decoded.canonicalBytes(), v2Bytes);
  EXPECT_DOUBLE_EQ(decoded.lengthKm, spec.lengthKm);

  // v1 round trip: an old encoding still decodes, to the same bytes.
  spec.cycleDigest.clear();
  const auto v1Bytes = spec.canonicalBytes();
  const sched::ScenarioSpec decodedV1 =
      sched::ScenarioSpec::decodeCanonical(v1Bytes);
  EXPECT_TRUE(decodedV1.cycleDigest.empty());
  EXPECT_EQ(decodedV1.canonicalBytes(), v1Bytes);
  EXPECT_EQ(decodedV1.hashHex(), v1Hash);

  // Garbage is rejected, not misread.
  std::vector<std::byte> truncated(v2Bytes.begin(), v2Bytes.end() - 4);
  EXPECT_THROW(sched::ScenarioSpec::decodeCanonical(truncated), Error);
  std::vector<std::byte> badMagic = v1Bytes;
  badMagic[7] = static_cast<std::byte>('9');
  EXPECT_THROW(sched::ScenarioSpec::decodeCanonical(badMagic), Error);
}

// --- cycle_* runtime keys --------------------------------------------------

TEST(CycleConfigKeys, ParseAndRoundTripIntoCycleAndBridgeConfig) {
  const auto rc = core::parseRuntimeConfig(
      "cycle_nx = 48\n"
      "cycle_nz = 16\n"
      "cycle_cell = 750\n"
      "cycle_years = 250\n"
      "cycle_max_events = 7\n"
      "cycle_seed = 99\n"
      "cycle_event_rate = 2e-3\n"
      "cycle_lock_rate = 2e-5\n"
      "cycle_priority = 9\n");
  const CycleConfig c = CycleConfig::fromRuntime(rc);
  EXPECT_EQ(c.nx, 48u);
  EXPECT_EQ(c.nz, 16u);
  EXPECT_DOUBLE_EQ(c.cell, 750.0);
  EXPECT_DOUBLE_EQ(c.years, 250.0);
  EXPECT_EQ(c.maxEvents, 7);
  EXPECT_EQ(c.seed, 99u);
  EXPECT_DOUBLE_EQ(c.eventRate, 2e-3);
  EXPECT_DOUBLE_EQ(c.lockRate, 2e-5);
  const BridgeConfig b = BridgeConfig::fromRuntime(rc);
  EXPECT_EQ(b.priority, 9);

  EXPECT_THROW(core::parseRuntimeConfig("cycle_nx = 0\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("cycle_years = -1\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("cycle_event_rate = 0\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("cycle_seed = -3\n"), Error);
}

// --- catalog JSON ----------------------------------------------------------

CycleCatalog sampleCatalog() {
  CycleCatalog catalog;
  catalog.nx = 24;
  catalog.nz = 8;
  catalog.cell = 500.0;
  catalog.years = 40.0;
  catalog.seed = 11;
  catalog.steps = 1234;
  catalog.wallSeconds = 1.5;
  CycleCatalogRow row;
  row.index = 0;
  row.onsetSeconds = 1.0e7;
  row.durationSeconds = 2.5;
  row.magnitude = 5.1;
  row.momentNm = 5.6e16;
  row.peakSlipRate = 0.31;
  row.eventDigest = "0123456789abcdef0123456789abcdef";
  row.specHash = "fedcba9876543210fedcba9876543210";
  row.productDigest = "00112233445566778899aabbccddeeff";
  row.phase = "completed";
  row.completions = 1;
  catalog.rows.push_back(row);
  row.index = 1;
  row.onsetSeconds = 2.0e7;
  catalog.rows.push_back(row);
  return catalog;
}

TEST(CycleCatalogJson, RendersValidAndCatchesViolations) {
  const CycleCatalog catalog = sampleCatalog();
  EXPECT_TRUE(validateCycleCatalogJson(toJson(catalog)).empty());

  // wallSeconds is outside the canonical bytes; rows are inside.
  CycleCatalog later = catalog;
  later.wallSeconds = 99.0;
  EXPECT_EQ(later.canonicalBytes(), catalog.canonicalBytes());
  later.rows[0].completions = 2;
  EXPECT_NE(later.canonicalBytes(), catalog.canonicalBytes());

  CycleCatalog incomplete = catalog;
  incomplete.rows[1].completions = 0;  // completed but never settled once
  EXPECT_FALSE(validateCycleCatalogJson(toJson(incomplete)).empty());

  CycleCatalog unordered = catalog;
  unordered.rows[1].onsetSeconds = 0.5e7;  // onsets must be non-decreasing
  EXPECT_FALSE(validateCycleCatalogJson(toJson(unordered)).empty());

  CycleCatalog badPhase = catalog;
  badPhase.rows[0].phase = "running";  // not a terminal phase
  EXPECT_FALSE(validateCycleCatalogJson(toJson(badPhase)).empty());

  EXPECT_FALSE(validateCycleCatalogJson("{not json").empty());
  EXPECT_FALSE(validateCycleCatalogJson("{\"schema\": \"other\"}").empty());
}

// --- bridge ----------------------------------------------------------------

CycleEvent syntheticEvent() {
  CycleEvent event;
  event.index = 0;
  event.onsetSeconds = 3.0e7;
  event.durationSeconds = 2.0;
  event.peakSlipRate = 0.2;
  event.momentNm = 1.0e17;
  event.magnitude = 5.3;
  event.nucI = 18;
  event.nucK = 4;
  event.nx = 30;
  event.nz = 10;
  event.cell = 600.0;
  const std::size_t n = event.nx * event.nz;
  event.tau.resize(n);
  event.sigmaN.assign(n, -50.0e6);
  event.theta.assign(n, 1.0e6);
  for (std::size_t i = 0; i < n; ++i)
    event.tau[i] = 25.0e6 + 1.0e4 * static_cast<double>(i % 37);
  event.tauCloseNuc = 24.0e6;
  event.digest = event.computeDigest();
  return event;
}

TEST(CycleBridge, EventSpecCarriesDigestAndAccommodatedStress) {
  const CycleEvent event = syntheticEvent();
  BridgeConfig config;
  config.h = 600.0;

  const sched::ScenarioSpec spec = eventSpec(event, config);
  EXPECT_EQ(spec.kind, sched::ScenarioKind::Rupture);
  EXPECT_EQ(spec.cycleDigest, event.digest);
  EXPECT_EQ(spec.priority, config.priority);
  // 30 cycle nodes at 600 m on a 600 m rupture grid: the plane maps 1:1
  // and lengthKm/depthKm reproduce the node counts exactly.
  ASSERT_NE(spec.cycleStress, nullptr);
  EXPECT_EQ(spec.cycleStress->nx, 30u);
  EXPECT_EQ(spec.cycleStress->nz, 10u);
  EXPECT_DOUBLE_EQ(spec.lengthKm, 18.0);
  EXPECT_DOUBLE_EQ(spec.depthKm, 6.0);
  EXPECT_NEAR(spec.nucFraction, (18.0 + 0.5) / 30.0, 1e-12);

  // The accommodated field respects the preflight gate: at least one
  // supercritical node (the nucleation patch), never more than the
  // configured fraction of the fault.
  rupture::FrictionParams fp;
  fp.dc = 1.5e-3 * config.h;
  fp.dcSurface = 3.0 * fp.dc;
  const rupture::SlipWeakeningFriction friction(fp);
  std::size_t super = 0;
  const auto& stress = *spec.cycleStress;
  for (std::size_t k = 0; k < stress.nz; ++k)
    for (std::size_t i = 0; i < stress.nx; ++i) {
      const double depth = static_cast<double>(stress.nz - 1 - k) * 600.0;
      if (stress.tauAt(i, k) >
          friction.strength(0.0, depth, stress.sigmaAt(i, k)))
        ++super;
    }
  EXPECT_GE(super, 1u);
  EXPECT_LE(static_cast<double>(super),
            0.25 * static_cast<double>(stress.nx * stress.nz));

  // Deterministic: the same event maps to byte-identical spec encodings.
  EXPECT_EQ(eventSpec(event, config).canonicalBytes(), spec.canonicalBytes());
}

// --- catalog through the fabric, with a broker killed mid-catalog ----------

fabric::FabricConfig smallFabricConfig(const fs::path& root) {
  fabric::FabricConfig c;
  c.brokers = 3;
  c.vnodes = 64;
  c.rootDir = root.string();
  c.leaseSeconds = 0.4;
  c.heartbeatSeconds = 0.06;
  c.degradedAfterMisses = 2;
  c.pumpIntervalSeconds = 0.004;
  c.service.coreBudget = 4;
  c.service.queueCapacity = 32;
  return c;
}

TEST(CycleFabricChaos, CatalogSurvivesABrokerDeathBitIdentically) {
  const CycleConfig cycleConfig = smallFaultConfig(/*seed=*/11);
  BridgeConfig bridgeConfig;
  bridgeConfig.h = 600.0;
  bridgeConfig.steps = 12;
  bridgeConfig.nranks = 2;

  // Two independent seeded solver runs (the catalog's provenance).
  CycleSolver clean(cycleConfig);
  const CycleRunSummary cleanSummary = clean.run();
  CycleSolver chaos(cycleConfig);
  const CycleRunSummary chaosSummary = chaos.run();
  ASSERT_GE(clean.events().size(), 3u);
  ASSERT_EQ(clean.events().size(), chaos.events().size());

  // Undisturbed catalog.
  CycleCatalog baseline;
  {
    const fs::path root = tempDir("catalog-clean");
    util::resetRetryRegistry();
    fabric::HazardFabric fabricClean(smallFabricConfig(root));
    baseline = submitCatalog(fabricClean, cycleConfig, cleanSummary,
                             clean.events(), bridgeConfig);
    fabricClean.shutdown();
  }
  for (const CycleCatalogRow& row : baseline.rows) {
    EXPECT_EQ(row.phase, "completed") << row.index;
    EXPECT_EQ(row.completions, 1) << row.index;
    EXPECT_EQ(row.productDigest.size(), 32u) << row.index;
  }

  // Same catalog with broker 1 fail-stopping at its 8th pump tick, i.e.
  // with the event ensemble in flight.
  CycleCatalog survived;
  {
    const fs::path root = tempDir("catalog-chaos");
    util::resetRetryRegistry();
    fault::FaultPlan plan;
    plan.brokerDeath(1, /*occurrence=*/8);
    fault::FaultInjector injector(std::move(plan));
    fault::ScopedInjection scoped(injector);

    fabric::HazardFabric fabricChaos(smallFabricConfig(root));
    survived = submitCatalog(fabricChaos, cycleConfig, chaosSummary,
                             chaos.events(), bridgeConfig);
    EXPECT_EQ(fabricChaos.brokerState(1), fabric::BrokerState::Dead);
    fabricChaos.shutdown();
  }

  // Exactly-once completion for every event, and the whole catalog —
  // event digests, spec hashes, product digests, phases, completions —
  // is bit-identical to the undisturbed run.
  for (const CycleCatalogRow& row : survived.rows) {
    EXPECT_EQ(row.phase, "completed") << row.index;
    EXPECT_EQ(row.completions, 1) << row.index;
  }
  EXPECT_EQ(survived.canonicalBytes(), baseline.canonicalBytes());
  EXPECT_EQ(survived.digestHex(), baseline.digestHex());

  const std::string json = toJson(survived);
  const auto violations = validateCycleCatalogJson(json);
  EXPECT_TRUE(violations.empty())
      << "catalog JSON invalid: " << violations.front();
}

}  // namespace
}  // namespace awp::cycle
