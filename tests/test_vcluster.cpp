// Unit tests for the virtual-cluster message-passing runtime.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>

#include "fault/injector.hpp"
#include "util/error.hpp"
#include "vcluster/cart.hpp"
#include "vcluster/cluster.hpp"
#include "vcluster/comm.hpp"
#include "vcluster/mailbox.hpp"

namespace awp::vcluster {
namespace {

TEST(Cluster, RunsAllRanks) {
  std::atomic<int> count{0};
  ThreadCluster::run(8, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 8);
    count.fetch_add(comm.rank());
  });
  EXPECT_EQ(count.load(), 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

TEST(Cluster, PropagatesExceptions) {
  EXPECT_THROW(ThreadCluster::run(4,
                                  [&](Communicator& comm) {
                                    comm.barrier();
                                    if (comm.rank() == 2)
                                      throw Error("rank 2 failed");
                                    comm.barrier();
                                  }),
               Error);
}

TEST(Mailbox, InjectedPopStallDelaysButDelivers) {
  // A RankStall at the "mailbox.pop" hook models a slow receiver: the
  // pop goes quiet for the stall window, then delivery proceeds intact.
  fault::FaultPlan plan;
  plan.stall("mailbox.pop", /*rank=*/-1, /*occurrence=*/1,
             /*seconds=*/0.05);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  Mailbox box;
  Message msg;
  msg.src = 0;
  msg.tag = 7;
  msg.payload.resize(3, std::byte{0x2a});
  box.push(std::move(msg));

  const auto start = std::chrono::steady_clock::now();
  const Message out = box.popMatch(0, 7);
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(out.src, 0);
  EXPECT_EQ(out.tag, 7);
  EXPECT_EQ(out.payload.size(), 3u);
  EXPECT_GE(elapsed.count(), 0.04);
  EXPECT_EQ(injector.faultsInjected(), 1u);
}

TEST(Comm, BlockingSendRecv) {
  ThreadCluster::run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      const double v = 3.5;
      comm.sendValue(1, 7, v);
    } else {
      EXPECT_EQ(comm.recvValue<double>(0, 7), 3.5);
    }
  });
}

TEST(Comm, TagMatchingOutOfOrder) {
  // Send two messages with different tags; receive them in reverse order.
  ThreadCluster::run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.sendValue<int>(1, 100, 1);
      comm.sendValue<int>(1, 200, 2);
    } else {
      EXPECT_EQ(comm.recvValue<int>(0, 200), 2);
      EXPECT_EQ(comm.recvValue<int>(0, 100), 1);
    }
  });
}

TEST(Comm, FifoWithinSameEnvelope) {
  ThreadCluster::run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.sendValue(1, 5, i);
    } else {
      for (int i = 0; i < 10; ++i)
        EXPECT_EQ(comm.recvValue<int>(0, 5), i);
    }
  });
}

TEST(Comm, NonBlockingWaitAll) {
  ThreadCluster::run(4, [&](Communicator& comm) {
    // Ring exchange with irecv/isend.
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    int incoming = -1;
    std::vector<Request> reqs;
    reqs.push_back(comm.irecv(prev, 1, &incoming, sizeof(int)));
    const int outgoing = comm.rank() * 10;
    reqs.push_back(comm.isend(next, 1, &outgoing, sizeof(int)));
    comm.waitAll(reqs);
    EXPECT_EQ(incoming, prev * 10);
  });
}

TEST(Comm, RecvSizeMismatchThrows) {
  EXPECT_THROW(ThreadCluster::run(2,
                                  [&](Communicator& comm) {
                                    if (comm.rank() == 0) {
                                      const int v = 1;
                                      comm.sendValue(1, 3, v);
                                    } else {
                                      double wrong;
                                      comm.recv(0, 3, &wrong,
                                                sizeof(double));
                                    }
                                  }),
               Error);
}

TEST(Comm, AllreduceOps) {
  ThreadCluster::run(5, [&](Communicator& comm) {
    const double r = comm.rank();
    EXPECT_DOUBLE_EQ(comm.allreduce(r, ReduceOp::Sum), 10.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(r, ReduceOp::Min), 0.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(r, ReduceOp::Max), 4.0);
    const std::int64_t i = comm.rank() + 1;
    EXPECT_EQ(comm.allreduce(i, ReduceOp::Sum), 15);
  });
}

TEST(Comm, Broadcast) {
  ThreadCluster::run(6, [&](Communicator& comm) {
    double v = comm.rank() == 2 ? 42.0 : 0.0;
    comm.bcast(2, &v, sizeof(v));
    EXPECT_DOUBLE_EQ(v, 42.0);
  });
}

TEST(Comm, GatherBytesVariableLength) {
  ThreadCluster::run(4, [&](Communicator& comm) {
    std::vector<std::byte> mine(static_cast<std::size_t>(comm.rank()),
                                std::byte{static_cast<unsigned char>(
                                    comm.rank())});
    const auto all = comm.gatherBytes(0, mine);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, StatsCountMessages) {
  ThreadCluster::run(2, [&](Communicator& comm) {
    comm.stats().reset();
    comm.barrier();
    if (comm.rank() == 0) comm.sendValue<int>(1, 1, 5);
    else comm.recvValue<int>(0, 1);
    comm.barrier();
    EXPECT_EQ(comm.stats().messagesSent.load(), 1u);
    EXPECT_EQ(comm.stats().bytesSent.load(), sizeof(int));
  });
}

TEST(Cart, BalancedDimsMatchesRankCount) {
  for (int p : {1, 2, 6, 8, 12, 64, 223074}) {
    const auto d = CartTopology::balancedDims(p, 1000, 500, 100);
    EXPECT_EQ(d.total(), p);
  }
}

TEST(Cart, BalancedDimsPrefersLongAxisSplit) {
  // A grid much longer in x should get more splits in x.
  const auto d = CartTopology::balancedDims(8, 8000, 100, 100);
  EXPECT_GE(d.x, d.y);
  EXPECT_GE(d.x, d.z);
}

TEST(Cart, CoordsRoundTrip) {
  CartTopology topo(Dims3{3, 4, 5});
  for (int r = 0; r < topo.size(); ++r) {
    const auto c = topo.coordsOf(r);
    EXPECT_EQ(topo.rankOf(c.x, c.y, c.z), r);
  }
}

TEST(Cart, NeighborsAndBoundaries) {
  CartTopology topo(Dims3{2, 2, 2});
  const int r = topo.rankOf(0, 0, 0);
  EXPECT_EQ(topo.neighbor(r, 0, -1), -1);  // boundary
  EXPECT_EQ(topo.neighbor(r, 0, 1), topo.rankOf(1, 0, 0));
  EXPECT_EQ(topo.neighbor(r, 1, 1), topo.rankOf(0, 1, 0));
  EXPECT_EQ(topo.neighbor(r, 2, 1), topo.rankOf(0, 0, 1));
}

TEST(Cart, BlockRangeCoversAll) {
  const std::size_t n = 103;
  const int parts = 7;
  std::size_t covered = 0;
  std::size_t prevEnd = 0;
  for (int c = 0; c < parts; ++c) {
    const auto r = CartTopology::blockRange(n, parts, c);
    EXPECT_EQ(r.begin, prevEnd);
    covered += r.count();
    prevEnd = r.end;
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(prevEnd, n);
}

TEST(Mailbox, DepthTracksQueue) {
  Mailbox box;
  box.push({0, 1, {}});
  box.push({0, 2, {}});
  EXPECT_EQ(box.depth(), 2u);
  Message out;
  EXPECT_TRUE(box.tryPopMatch(0, 2, out));
  EXPECT_EQ(out.tag, 2);
  EXPECT_EQ(box.depth(), 1u);
  EXPECT_FALSE(box.tryPopMatch(0, 99, out));
}

}  // namespace
}  // namespace awp::vcluster
