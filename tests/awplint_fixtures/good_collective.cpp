// Known-good fixture for rule 1: every pattern here is uniform across ranks
// (or carries a justified annotation) and must produce ZERO findings. The
// self-test fails on any unexpected finding in this file.

namespace fixture {

void uniformReduce(Comm& comm) {
  const double verdict = comm.allreduce(localValue());
  if (verdict > 0.5) {
    comm.barrier();  // predicate built from a collective result: uniform
  }
}

void rankWorkThenSync(Comm& comm) {
  if (comm.rank() == 0) makeDirectory();
  comm.barrier();  // outside the single-statement if: every rank arrives
}

void rankBlockThenSync(Comm& comm) {
  if (comm.rank() == 0) {
    writeHeader();
  }
  comm.barrier();
}

void reassignedClean(Comm& comm) {
  int who = comm.rank();
  who = comm.allreduce(who);  // overwritten with a uniform value
  if (who == 0) {
    comm.barrier();
  }
}

void cleanEarlyReturn(Comm& comm, const Config& config) {
  if (config.skipOutput) return;  // uniform config predicate
  comm.barrier();
}

void uniformBreakLoop(Comm& comm) {
  for (int iter = 0; iter < 4; ++iter) {
    if (converged(iter)) break;  // same iterate on every rank
    comm.barrier();
  }
}

void annotatedDivergence(Comm& comm, Monitor& monitor, Grid& grid) {
  const auto local = monitor.scan(grid);
  if (local.ok) {
    // awplint: collective-uniform(scan is deterministic over replicated fixture state, so every rank takes this branch together)
    comm.barrier();
  }
}

void rankLoopIsUniform(Comm& comm, Topology& topo) {
  // Looping over *all* ranks is uniform; only predicates on our own
  // rank() diverge.
  for (int r = 0; r < topo.nranks; ++r) {
    recordNeighbor(r);
  }
  comm.barrier();
}

}  // namespace fixture
