// Known-good fixture for the lexer edge cases fixed in awplint v2: raw
// string literals (with and without delimiters) and line-spliced `//`
// comments must not desynchronize the token stream, invent scopes, or
// produce findings from text inside literals. Must produce ZERO findings.
// Analyzer input only — never compiled.

namespace fixture {

// Raw string with unbalanced braces and collective-looking text: without
// raw-string support the lexer would see `{` tokens and rank identifiers
// here and shift every scope below.
const char* kPlanTemplate = R"({ "leader": "comm.rank() == 0 {{{", "op": "comm.barrier()" })";

// Delimited raw string containing the `)"` sequence that terminates a
// plain raw string early.
const char* kQuery = R"sql(
  SELECT spec FROM plans WHERE note = ')"' AND site = "solver.step"
)sql";

// Encoding-prefixed raw string.
const char* kWide = LR"(if (rank == 0) { barrier(); })";

// Escaped quotes and backslashes in an ordinary string must not
// terminate it early (a desync here would leak `rank` into the stream).
const char* kEscaped = "she said \"rank\" and \\ was fine";

void rawStringInBody(Comm& comm) {
  log(R"(unbalanced { brace and "if (comm.rank() == 0)" inside)");
  comm.barrier();  // still at function scope, still uniform
}

void splicedComment(Comm& comm) {
  if (comm.rank() == 0) {
    // this comment swallows the next line via a trailing splice \
    comm.barrier();
  }
  comm.barrier();  // uniform: every rank reaches this line
}

}  // namespace fixture
