// Known-good fixture for rule 3: taxonomy-valid phases, RAII-named spans,
// a justified ManualSpan, and a non-telemetry Phase enum that must not be
// validated against the taxonomy. Must produce ZERO findings.

namespace fixture {

void namedSpan() {
  telemetry::ScopedSpan span(telemetry::Phase::VelocityKernel);
  compute();
}

void nestedSpans() {
  telemetry::ScopedSpan outer(telemetry::Phase::HaloExchange);
  {
    telemetry::ScopedSpan inner(telemetry::Phase::HaloPack);
    packField();
  }
}

void justifiedManual(ReplayWindow& window) {
  // awplint: manual-span(the span must outlive this scope; the replay window closes it when rollback completes)
  telemetry::ManualSpan span;
  window.adopt(&span);
}

void perfPhaseIsNotTelemetry(Profiler& profiler) {
  // The core perf model has its own Phase enum; unqualified members are
  // outside the telemetry taxonomy and must not be checked against it.
  profiler.enter(Phase::Compute);
  profiler.leave(Phase::Communicate);
}

}  // namespace fixture
