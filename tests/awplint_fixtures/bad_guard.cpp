// Known-bad fixture for rule 4 (lock discipline): AWP_GUARDED_BY fields
// accessed without the guarding mutex held, AWP_REQUIRES helpers called
// without their contract lock, and a lock-order inversion. This file is
// analyzer input only — never compiled.

namespace fixture {

class LeakyBox {
 public:
  void unguardedWrite(int m) {
    queue_.push_back(m);  // awplint-expect: guarded-field
  }

  int unguardedRead() const {
    return depth_;  // awplint-expect: guarded-field
  }

  void releaseTooEarly() {
    std::unique_lock<std::mutex> lk(mutex_);
    depth_ += 1;  // fine: lock held
    lk.unlock();
    depth_ = 0;  // awplint-expect: guarded-field
  }

  void wrongMutex(int m) {
    std::lock_guard<std::mutex> lk(statsMutex_);
    queue_.push_back(m);  // awplint-expect: guarded-field
  }

  int drainLocked() AWP_REQUIRES(mutex_) {
    const int n = depth_;  // fine: caller contract holds mutex_
    depth_ = 0;
    return n;
  }

  int drainWithoutContract() {
    return drainLocked();  // awplint-expect: lock-requires
  }

 private:
  std::mutex mutex_;
  std::mutex statsMutex_;
  std::vector<int> queue_ AWP_GUARDED_BY(mutex_);
  int depth_ AWP_GUARDED_BY(mutex_) = 0;
};

// Lock-order inversion: `a_` before `b_` here, `b_` before `a_` below.
// The global report anchors at the a_->b_ acquisition site.
class OrderedPair {
 public:
  void forward() {
    std::lock_guard<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);  // awplint-expect: lock-order
    work_ += 1;
  }

  void backward() {
    std::lock_guard<std::mutex> lb(b_);
    std::lock_guard<std::mutex> la(a_);
    work_ -= 1;
  }

 private:
  std::mutex a_;
  std::mutex b_;
  int work_ AWP_GUARDED_BY(a_) = 0;
};

}  // namespace fixture
