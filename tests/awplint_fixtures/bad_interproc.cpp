// Known-bad fixture for the v2 interprocedural engine: rank-divergent
// calls of functions that reach a collective primitive only through the
// call graph (wrappers defined here and in good_interproc.cpp — cross-file
// discovery), and rank taint flowing through return-position call chains.
// This file is analyzer input only — never compiled.

namespace fixture {

// A wrapper chain defined bottom-up in THIS file.
void depthOne(Comm& comm) { comm.allgather(1); }

void depthTwo(Comm& comm) { depthOne(comm); }

void depthThree(Comm& comm) { depthTwo(comm); }

void deepWrapperUnderTaint(Comm& comm) {
  if (comm.rank() == 0) {
    depthThree(comm);  // awplint-expect: collective-in-rank-branch
  }
}

// Cross-file: syncEpoch is defined in good_interproc.cpp and reaches
// barrier() three calls deep. No whitelist entry exists for it anywhere.
void crossFileWrapperUnderTaint(Comm& comm, Ctx& ctx) {
  if (comm.rank() != 0) {
    syncEpoch(comm, ctx);  // awplint-expect: collective-in-rank-branch
  }
}

void wrapperUnderFaultSeed(Comm& comm, Faults& faults) {
  if (faults.injectionEnabled()) {
    depthTwo(comm);  // awplint-expect: collective-in-rank-branch
  }
}

// Return-position propagation: pickOwner returns ownerRank's result
// (defined in good_interproc.cpp, returns comm.rank()), so branching on
// pickOwner() is rank-divergent two files and two calls away.
int pickOwner(const Comm& comm) { return ownerRank(comm); }

void taintedReturnChain(Comm& comm) {
  if (pickOwner(comm) == 0) {
    comm.barrier();  // awplint-expect: collective-in-rank-branch
  }
}

// Assigning from a rank-returning chain taints the destination path.
void taintedAssignment(Comm& comm, Ctx& ctx) {
  ctx.owner = pickOwner(comm);
  if (ctx.owner == 0) {
    depthThree(comm);  // awplint-expect: collective-in-rank-branch
  }
}

}  // namespace fixture
