// Known-good fixture for rule 4 (lock discipline): every guarded access
// holds the right mutex (RAII guards, manual lock/unlock, scoped_lock of
// several mutexes, AWP_REQUIRES contracts), and lock orders are globally
// consistent. Must produce ZERO findings. Analyzer input only — never
// compiled.

namespace fixture {

class TidyBox {
 public:
  TidyBox() { depth_ = 0; }   // constructors are exempt: no concurrency yet
  ~TidyBox() { queue_.clear(); }

  void post(int m) {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.push_back(m);
    depth_ += 1;
  }

  int peek() {
    std::unique_lock<std::mutex> lk(mutex_);
    return depth_;
  }

  void manualPair() {
    mutex_.lock();
    depth_ += 1;
    mutex_.unlock();
  }

  void relockedGuard() {
    std::unique_lock<std::mutex> lk(mutex_, std::defer_lock);
    prepare();        // deliberately lock-free setup
    lk.lock();
    queue_.clear();   // held again from here
    depth_ = 0;
  }

  void bothStats() {
    std::scoped_lock lk(mutex_, statsMutex_);
    depth_ += 1;
    hits_ += 1;
  }

  int drainLocked() AWP_REQUIRES(mutex_) {
    const int n = depth_;
    depth_ = 0;
    queue_.clear();
    return n;
  }

  int drainAll() {
    std::lock_guard<std::mutex> lk(mutex_);
    return drainLocked();  // contract satisfied at the call site
  }

 private:
  void prepare() {}

  std::mutex mutex_;
  std::mutex statsMutex_;
  std::vector<int> queue_ AWP_GUARDED_BY(mutex_);
  int depth_ AWP_GUARDED_BY(mutex_) = 0;
  int hits_ AWP_GUARDED_BY(statsMutex_) = 0;
};

// Consistent global order (outer_ before inner_ everywhere): no inversion.
class NestedLocks {
 public:
  void outerThenInner() {
    std::lock_guard<std::mutex> lo(outer_);
    std::lock_guard<std::mutex> li(inner_);
    shared_ += 1;
  }

  void sameOrderElsewhere() {
    std::lock_guard<std::mutex> lo(outer_);
    refreshInner();
  }

 private:
  void refreshInner() {
    std::lock_guard<std::mutex> li(inner_);
    shared_ -= 1;
  }

  std::mutex outer_;
  std::mutex inner_;
  int shared_ AWP_GUARDED_BY(inner_) = 0;
};

// A justified suppression: reads of a monotone flag published before the
// worker threads start need no lock.
class Published {
 public:
  bool startedRelaxed() const {
    // awplint: guard-ok(written once before worker threads spawn, read-only after)
    return started_;
  }

  void markStarted() {
    std::lock_guard<std::mutex> lk(mutex_);
    started_ = true;
  }

 private:
  std::mutex mutex_;
  bool started_ AWP_GUARDED_BY(mutex_) = false;
};

}  // namespace fixture
