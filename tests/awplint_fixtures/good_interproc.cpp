// Known-good fixture for the v2 interprocedural engine. This file DEFINES
// the collective wrappers the fixpoint must discover (there is no
// whitelist anymore): `collectivePreflight` is the wrapper that
// bad_collective.cpp calls under rank taint, and `syncEpoch` reaches a
// primitive only through a two-deep call chain. Every call in THIS file
// is uniform across ranks and must produce ZERO findings. This file is
// analyzer input only — never compiled.

namespace fixture {

// Depth 1: calls a collective primitive directly. The fixpoint seeds
// `collectivePreflight` into the collective set from this body.
void collectivePreflight(Comm& comm, Ctx& ctx) {
  ctx.stage = comm.allreduce(ctx.stage);
  comm.barrier();
}

// Depth 2: reaches a primitive only through collectivePreflight.
void flushPending(Comm& comm, Ctx& ctx) {
  ctx.drainQueue();
  collectivePreflight(comm, ctx);
}

// Depth 3: reaches a primitive only through flushPending -> preflight.
void syncEpoch(Comm& comm, Ctx& ctx) {
  ctx.epoch += 1;
  flushPending(comm, ctx);
}

// Uniform call sites of every wrapper level: no findings.
void uniformWrapperUse(Comm& comm, Ctx& ctx) {
  syncEpoch(comm, ctx);
  if (ctx.config.verbose) {
    flushPending(comm, ctx);  // config predicate: uniform on every rank
  }
}

// Returns per-rank data (the fixpoint marks ownerRank rank-returning from
// this body; no seed list involved).
int ownerRank(const Comm& comm) { return comm.rank(); }

// A mid-body call of a rank-returning helper does NOT taint the caller's
// return — only return-position calls propagate.
int boundedOwner(const Comm& comm) {
  int owner = ownerRank(comm);
  owner = comm.allreduce(owner);  // scrubbed before it escapes
  return owner;
}

void scrubbedOwnerUse(Comm& comm, Ctx& ctx) {
  if (boundedOwner(comm) == 0) {
    syncEpoch(comm, ctx);  // predicate is allreduce-uniform: fine
  }
}

// bcast makes its out-arguments uniform on every rank: branching on a
// just-broadcast length needs no annotation (this pattern previously
// required a collective-uniform suppression in src/health/guard.cpp).
void broadcastThenBranch(Comm& comm, Payload& payload) {
  int len = payload.bytes * comm.rank();  // tainted before the bcast
  comm.bcast(0, &len, sizeof(len));
  if (len > 0) {
    comm.gatherBytes(0, payload.data);  // len is uniform after the bcast
  }
}

}  // namespace fixture
