// Known-good fixture for rule 2: hot functions that follow the hygiene
// rules (preallocated buffers, annotated asserts), plus a cold function
// where allocation is perfectly fine. Must produce ZERO findings.

namespace fixture {

AWP_HOT void markedKernel(float* out, const float* in, int n) {
  for (int i = 0; i < n; ++i) out[i] = in[i] * 2.0f;
}

AWP_HOT void checkedKernel(Span out, Span in) {
  // awplint: hot-ok(bounds assert runs once per call, outside the lattice loop; it fires only on programmer error)
  AWP_CHECK(out.size() == in.size());
  for (int i = 0; i < out.size(); ++i) out[i] = in[i];
}

AWP_HOT void packsIntoScratch(Scratch& scratch, const float* field, int n) {
  // Writing through a preallocated span is the approved pattern.
  for (int i = 0; i < n; ++i) scratch.data()[i] = field[i];
}

void coldSetup(Buffers& buffers, int n) {
  // Not AWP_HOT: setup code may allocate freely.
  buffers.scratch.resize(n);
  auto owned = std::make_unique<float>(0.0f);
  buffers.adopt(owned.get());
}

void coldComparatorCall(Items& items, Item item) {
  // Scanner regression: a lambda passed as a CALL ARGUMENT whose body holds
  // an unbraced `if`. The `;` inside the body sits at nonzero paren depth of
  // the enclosing call; the statement scope must still pop there, or the
  // scope stack misaligns and every later definition in the file (including
  // the registered hot function below) goes undetected.
  sortThings(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.priority != b.priority)
      return a.priority < b.priority;
    return a.seq > b.seq;
  });
}

AWP_HOT void afterComparator(float* out, const float* in, int n) {
  for (int i = 0; i < n; ++i) out[i] = in[i] + 1.0f;
}

}  // namespace fixture
