// awplint-expect: hot-registry
// ^ the fixture hot registry lists `ghostKernel` for this file but no such
//   definition exists — registry drift is reported against line 1.
// Known-bad fixture for rule 2 (hot-path allocation hygiene). Never compiled.

namespace fixture {

AWP_HOT void kernelWithVector(float* out, int n) {
  std::vector<float> scratch(n);  // awplint-expect: hot-alloc
  for (int i = 0; i < n; ++i) out[i] = scratch[i];
}

AWP_HOT void kernelWithNew(float* out) {
  float* tmp = new float[8];  // awplint-expect: hot-alloc
  out[0] = tmp[0];
  delete[] tmp;  // awplint-expect: hot-alloc
}

AWP_HOT void kernelWithMalloc(float* out, int n) {
  void* p = malloc(n);  // awplint-expect: hot-alloc
  out[0] = 0.0f;
  free(p);  // awplint-expect: hot-alloc
}

AWP_HOT void kernelWithMakeUnique(Sink& sink) {
  auto p = std::make_unique<float>(3.0f);  // awplint-expect: hot-alloc
  sink.take(p.get());
}

AWP_HOT void kernelWithGrowth(Buffer& buf) {
  buf.push_back(1.0f);  // awplint-expect: hot-alloc
}

AWP_HOT void kernelWithString(Log& log, int code) {
  log.write(std::to_string(code));  // awplint-expect: hot-alloc
}

AWP_HOT void kernelWithThrow(int n) {
  if (n < 0) throw BadInput();  // awplint-expect: hot-throw
  AWP_CHECK(n < 1024);  // awplint-expect: hot-throw
}

void unmarkedKernel(float* out, int n) {  // awplint-expect: hot-registry
  // Listed in the fixture hot registry but missing the AWP_HOT marker.
  for (int i = 0; i < n; ++i) out[i] = 0.0f;
}

}  // namespace fixture
