// Known-bad fixture for rule 3 (telemetry span discipline). Never compiled.

namespace fixture {

void invalidPhase() {
  telemetry::ScopedSpan span(telemetry::Phase::Mystery);  // awplint-expect: span-taxonomy
  compute();
}

void discardedTemporary() {
  telemetry::ScopedSpan(telemetry::Phase::Output);  // awplint-expect: span-temporary
  compute();
}

void rawManualSpan() {
  telemetry::ManualSpan span;  // awplint-expect: manual-span
  span.begin(telemetry::Phase::Output);
  compute();
  span.end();
}

void rawRegistryAccess(telemetry::RankTelemetry& rt) {  // awplint-expect: raw-span-api
  rt.open(0);
}

}  // namespace fixture
