// Known-bad fixture for rule 1 (collective-in-rank-branch). Each violation
// class the rule must catch carries an `awplint-expect` marker on the line
// the finding anchors to. This file is analyzer input only — never compiled.

namespace fixture {

void directRankBranch(Comm& comm) {
  if (comm.rank() == 0) {
    comm.barrier();  // awplint-expect: collective-in-rank-branch
  }
}

void elseBranchDiverges(Comm& comm) {
  if (comm.rank() < 2) {
    localWork();
  } else {
    comm.allreduce(1.0);  // awplint-expect: collective-in-rank-branch
  }
}

void elseIfChain(Comm& comm, int mode) {
  if (mode == 0) {
    localWork();
  } else if (comm.rank() == 0) {
    localWork();
  } else {
    comm.barrier();  // awplint-expect: collective-in-rank-branch
  }
}

void taintPropagation(Comm& comm) {
  const bool leader = comm.rank() == 0;
  if (leader) {
    comm.bcast(0, nullptr, 0);  // awplint-expect: collective-in-rank-branch
  }
}

void earlyExitRemainder(Comm& comm) {
  if (comm.rank() != 0) return;
  comm.gatherBytes(0, payload());  // awplint-expect: collective-in-rank-branch
}

void breakUnderTaint(Comm& comm) {
  for (int i = 0; i < 4; ++i) {
    if (comm.rank() == i) break;
    comm.barrier();  // awplint-expect: collective-in-rank-branch
  }
}

void faultSiteBranch(Comm& comm, Faults& faults) {
  if (faults.injectionEnabled()) {
    comm.allgather(7);  // awplint-expect: collective-in-rank-branch
  }
}

void wrapperUnderTaint(Comm& comm, Ctx& ctx) {
  if (comm.rank() == 0) {
    collectivePreflight(comm, ctx);  // awplint-expect: collective-in-rank-branch
  }
}

void singleStatementBody(Comm& comm) {
  if (comm.rank() == 0) comm.barrier();  // awplint-expect: collective-in-rank-branch
}

void emptyReasonIsNoExcuse(Comm& comm) {
  if (comm.rank() == 0) {
    // awplint: collective-uniform()
    comm.barrier();  // awplint-expect: collective-in-rank-branch
  }
}

void perRankScanBranch(Comm& comm, Monitor& monitor, Grid& grid) {
  const auto local = monitor.scan(grid);
  if (local.verdict != 0) {
    comm.allreduce(2.0);  // awplint-expect: collective-in-rank-branch
  }
}

}  // namespace fixture
