// Hazard-product serving tier tests: tile-key determinism, the version
// lattice and chunk dedup of the TileStore, incremental window folding
// vs post-hoc product derivation (bit-identity), ensemble exceedance
// queries vs brute force, subscription delta ordering under retries and
// publish drops, degraded-broker read-only serving, and the 3-broker
// chaos acceptance run (broker death + publish drops; every subscribed
// extent converges to final tile versions bit-identical to an
// uninterrupted run).

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/runtime_config.hpp"
#include "fabric/fabric.hpp"
#include "fault/injector.hpp"
#include "sched/artifact_cache.hpp"
#include "sched/report.hpp"
#include "sched/service.hpp"
#include "sched/spec.hpp"
#include "serve/layout.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"
#include "serve/tile.hpp"
#include "util/error.hpp"
#include "util/retry.hpp"

namespace awp::serve {
namespace {

namespace fs = std::filesystem;

fs::path tempDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("awp-serve-test-" + tag + "-" + std::to_string(getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Small, fast wave scenario (mirrors test_sched's): ~5k cells, a
// checkpoint every 6 steps, surface samples every 2.
sched::ScenarioSpec smallWaveSpec(std::uint64_t steps = 24) {
  sched::ScenarioSpec spec;
  spec.kind = sched::ScenarioKind::Wave;
  spec.dims = {24, 18, 12};
  spec.h = 600.0;
  spec.steps = steps;
  spec.nranks = 2;
  spec.useCvm = true;
  spec.spongeWidth = 4;
  spec.checkpointEverySteps = 6;
  spec.surfaceSampleEverySteps = 2;
  spec.healthEverySteps = 4;
  spec.name = "serve-wave";
  return spec;
}

sched::ServiceConfig smallServiceConfig(const fs::path& work,
                                        ProductServer* server) {
  sched::ServiceConfig cfg;
  cfg.coreBudget = 4;
  cfg.workDir = work.string();
  cfg.publisher = server;
  return cfg;
}

// Reassemble a full nx*ny map from the store's published tiles; fails the
// test if any covering tile is missing.
std::vector<float> assembleFromTiles(ProductServer& server,
                                     const std::string& digestHex,
                                     std::size_t nx, std::size_t ny) {
  const int edge = server.store().tileEdge();
  std::vector<float> map(nx * ny, -1.0f);
  const auto digest = digestFromHex(digestHex);
  for (int ty = 0; static_cast<std::size_t>(ty) * edge < ny; ++ty)
    for (int tx = 0; static_cast<std::size_t>(tx) * edge < nx; ++tx) {
      TileKey key;
      key.digest = digest;
      key.field = static_cast<std::uint16_t>(Field::PgvH);
      key.tx = static_cast<std::uint16_t>(tx);
      key.ty = static_cast<std::uint16_t>(ty);
      const Extent ext = tileExtent(key, edge, nx, ny);
      const auto payload = server.store().load(key);
      if (!payload.has_value() ||
          payload->size() != ext.width() * ext.height()) {
        ADD_FAILURE() << "missing/short tile " << tileVersionKey(key, 0);
        continue;
      }
      for (std::size_t y = ext.y0; y < ext.y1; ++y)
        std::memcpy(map.data() + ext.x0 + nx * y,
                    payload->data() + (y - ext.y0) * ext.width(),
                    ext.width() * sizeof(float));
    }
  return map;
}

// The canonical row-major PGV-H map from a completed job's product bytes.
std::vector<float> canonicalMap(const sched::ScenarioProducts& products,
                                const sched::ScenarioSpec& spec) {
  const sched::ArtifactBlob* pgvh = products.find("pgvh.bin");
  EXPECT_NE(pgvh, nullptr);
  const SurfaceLayout layout(spec.dims.nx, spec.dims.ny, spec.dims.nz,
                             spec.nranks);
  std::vector<float> map(layout.nx() * layout.ny(), 0.0f);
  EXPECT_EQ(pgvh->bytes.size(), map.size() * sizeof(float));
  layout.recordToRowMajor(
      reinterpret_cast<const float*>(pgvh->bytes.data()), map.data());
  return map;
}

// Thread-safe subscription recorder with the ordering invariants the
// subscription API guarantees: per (digest, tile) strictly increasing
// versions, never a duplicate, never a regression.
struct DeltaRecorder {
  std::mutex mu;
  std::vector<TileDelta> all;
  std::map<std::tuple<std::string, int, int>, std::uint64_t> latest;
  bool ordered = true;

  SubscriptionCallback callback() {
    return [this](const std::vector<TileDelta>& batch) {
      std::lock_guard<std::mutex> lock(mu);
      for (const TileDelta& d : batch) {
        auto& last = latest[std::make_tuple(d.digest, d.tx, d.ty)];
        if (d.version <= last) ordered = false;
        last = d.version;
        all.push_back(d);
      }
    };
  }
};

// ---------------------------------------------------------------------------
// Tile identity

TEST(TileKeys, DeterministicNamingOrderingAndClamping) {
  const std::string hex = "00112233445566778899aabbccddeeff";
  const auto digest = digestFromHex(hex);
  EXPECT_EQ(digestToHex(digest), hex);
  EXPECT_THROW(digestFromHex("short"), Error);
  EXPECT_THROW(digestFromHex("zz112233445566778899aabbccddeeff"), Error);

  TileKey key;
  key.digest = digest;
  key.field = 0;
  key.tx = 1;
  key.ty = 2;
  // The canonical versioned identity is a pure function of its inputs —
  // two processes naming the same publish agree byte-for-byte.
  EXPECT_EQ(tileVersionKey(key, 13),
            "tile:" + hex + ":pgvh:1x2:v13");
  EXPECT_EQ(tileVersionKey(key, 13), tileVersionKey(key, 13));

  // Total order: digest first, then field, then ty, then tx.
  TileKey other = key;
  other.tx = 2;
  EXPECT_TRUE(tileKeyLess(key, other));
  other = key;
  other.ty = 3;
  EXPECT_TRUE(tileKeyLess(key, other));
  other = key;
  other.digest[0] = 0x01;
  EXPECT_TRUE(tileKeyLess(key, other));
  EXPECT_FALSE(tileKeyLess(key, key));
  EXPECT_TRUE(key == key);

  // Edge tiles clamp to the surface dims.
  const Extent ext = tileExtent(key, /*tileEdge=*/16, /*nx=*/24, /*ny=*/36);
  EXPECT_EQ(ext.x0, 16u);
  EXPECT_EQ(ext.x1, 24u);  // clamped from 32
  EXPECT_EQ(ext.y0, 32u);
  EXPECT_EQ(ext.y1, 36u);  // clamped from 48

  const std::array<std::uint8_t, 16> md5{};
  EXPECT_EQ(chunkCacheKey(md5).rfind("tile-chunk:", 0), 0u);
}

// ---------------------------------------------------------------------------
// TileStore: version lattice + content-addressed chunk dedup

TEST(TileStore, VersionLatticeAbsorbsDuplicatesAndDedupsChunks) {
  sched::ArtifactCache cache;  // in-memory
  TileStore store(&cache, /*tileEdge=*/4);

  const std::vector<float> a(16, 1.5f);
  const std::vector<float> b(16, 2.5f);
  TileKey key;
  key.digest = digestFromHex("00112233445566778899aabbccddeeff");

  // First publish advances and stores a new chunk.
  PublishOutcome out = store.publish(key, 3, a.data(), a.size());
  EXPECT_TRUE(out.advanced);
  EXPECT_TRUE(out.chunkStored);
  EXPECT_EQ(store.latestVersion(key), 3u);

  // A retried (duplicate) publish and a stale one are absorbed.
  out = store.publish(key, 3, a.data(), a.size());
  EXPECT_FALSE(out.advanced);
  out = store.publish(key, 2, b.data(), b.size());
  EXPECT_FALSE(out.advanced);
  EXPECT_EQ(store.latestVersion(key), 3u);

  // A strictly newer version advances; the payload loads back exactly.
  out = store.publish(key, 5, b.data(), b.size());
  EXPECT_TRUE(out.advanced);
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(0, std::memcmp(loaded->data(), b.data(), 16 * sizeof(float)));

  // An identical payload under a DIFFERENT tile key shares the stored
  // chunk: the cache reports a dedup and charges no new stored bytes.
  TileKey overlap = key;
  overlap.tx = 7;
  out = store.publish(overlap, 5, b.data(), b.size());
  EXPECT_TRUE(out.advanced);
  EXPECT_FALSE(out.chunkStored);  // content-addressed: already present

  const sched::CacheStats stats = cache.stats();
  EXPECT_GE(stats.dedupHits, 1u);
  EXPECT_LT(stats.storedBytes, stats.logicalBytes);
  EXPECT_EQ(store.tileCount(), 2u);

  // Per-entry accounting: the shared chunk's entry carries the dedup.
  const auto accounting = cache.entryAccounting();
  std::uint64_t logical = 0;
  std::uint64_t stored = 0;
  std::uint64_t dedupPuts = 0;
  for (const auto& [entryKey, acct] : accounting) {
    EXPECT_LE(acct.storedBytes, acct.logicalBytes) << entryKey;
    logical += acct.logicalBytes;
    stored += acct.storedBytes;
    dedupPuts += acct.dedupPuts;
  }
  EXPECT_LT(stored, logical);
  EXPECT_GE(dedupPuts, 1u);
}

// ---------------------------------------------------------------------------
// Runtime config plumbing

TEST(ServeConfigKeys, ParseAndRoundTripIntoServeConfig) {
  const auto rc = core::parseRuntimeConfig(
      "serve_tile = 8\n"
      "serve_window = 2\n"
      "serve_partial = off\n"
      "serve_reconcile_ticks = 25\n");
  const ServeConfig cfg = ServeConfig::fromRuntime(rc);
  EXPECT_EQ(cfg.tileEdge, 8);
  EXPECT_EQ(cfg.windowSamples, 2);
  EXPECT_FALSE(cfg.partialPublish);
  EXPECT_EQ(cfg.reconcileEveryTicks, 25);

  EXPECT_THROW(core::parseRuntimeConfig("serve_tile = 0\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("serve_window = 0\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("serve_reconcile_ticks = 0\n"),
               Error);
}

// ---------------------------------------------------------------------------
// Incremental folding == post-hoc derivation, bit for bit

TEST(Serving, IncrementalFoldMatchesPostHocBitIdentically) {
  const fs::path work = tempDir("incremental");
  sched::ArtifactCache tileCache;
  ServeConfig scfg;
  scfg.tileEdge = 8;
  scfg.windowSamples = 1;  // publish every new durable sample window
  ProductServer server(&tileCache, scfg);

  const sched::ScenarioSpec spec = smallWaveSpec();
  const std::size_t nx = spec.dims.nx;
  const std::size_t ny = spec.dims.ny;

  DeltaRecorder rec;
  Extent all{0, 0, nx, ny};
  const std::uint64_t sub =
      server.subscribe(Field::PgvH, all, rec.callback());

  sched::ScenarioService service(smallServiceConfig(work, &server));
  const sched::JobHandle job = service.submit(spec);
  ASSERT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
  sched::ScenarioProducts products;
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    products = job->products;
  }
  service.shutdown();

  // Mid-run windows were published (a consumer saw a partial map before
  // the scenario finished), and the final state is complete.
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.windowPublishes, 1u);
  EXPECT_GE(stats.completionPublishes, 1u);

  // The tile-assembled map equals the canonical post-hoc product
  // bit-for-bit: the incremental max-fold loses nothing.
  const std::vector<float> expected = canonicalMap(products, spec);
  const std::vector<float> assembled =
      assembleFromTiles(server, job->hash, nx, ny);
  ASSERT_EQ(assembled.size(), expected.size());
  EXPECT_EQ(0, std::memcmp(assembled.data(), expected.data(),
                           expected.size() * sizeof(float)));

  // The in-memory partial map converged to the same canonical state.
  const auto partial = server.partialMap(job->hash);
  ASSERT_TRUE(partial.has_value());
  EXPECT_TRUE(partial->complete);
  EXPECT_FALSE(partial->tainted);
  EXPECT_GT(partial->version, 0u);
  EXPECT_EQ(0, std::memcmp(partial->values.data(), expected.data(),
                           expected.size() * sizeof(float)));

  // Subscription ordering: strictly increasing per tile, at least one
  // PARTIAL delta (version < final), and every tile fenced at the final
  // complete version. rec.mu must drop before unsubscribe() below — the
  // delivery path locks deliverMu_ then rec.mu, so holding rec.mu into a
  // server call is the lock-order inversion TSan (and awplint) flag.
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    EXPECT_TRUE(rec.ordered);
    const std::uint64_t total = partial->version;
    bool sawPartial = false;
    for (const TileDelta& d : rec.all)
      if (!d.complete && d.version < total) sawPartial = true;
    EXPECT_TRUE(sawPartial);
    const int tilesX = static_cast<int>((nx + 7) / 8);
    const int tilesY = static_cast<int>((ny + 7) / 8);
    EXPECT_EQ(rec.latest.size(),
              static_cast<std::size_t>(tilesX * tilesY));
    for (const auto& [tile, version] : rec.latest)
      EXPECT_EQ(version, total)
          << std::get<1>(tile) << "," << std::get<2>(tile);
  }

  // Completion re-publishes content already stored by the last window:
  // the content-addressed chunk tier absorbed those as dedups.
  EXPECT_GE(tileCache.stats().dedupHits, 1u);
  server.unsubscribe(sub);
}

// ---------------------------------------------------------------------------
// Exceedance queries vs brute force, with staleness metadata

TEST(Serving, ExceedanceMatchesBruteForceWithStaleness) {
  const fs::path work = tempDir("exceedance");
  sched::ArtifactCache tileCache;
  ServeConfig scfg;
  scfg.tileEdge = 8;
  ProductServer server(&tileCache, scfg);

  const sched::ScenarioSpec specA = smallWaveSpec(24);
  const sched::ScenarioSpec specB = smallWaveSpec(26);
  const std::size_t nx = specA.dims.nx;

  sched::ScenarioService service(smallServiceConfig(work, &server));
  const sched::JobHandle jobA = service.submit(specA);
  const sched::JobHandle jobB = service.submit(specB);
  ASSERT_EQ(jobA->wait(), sched::JobPhase::Completed) << jobA->error;
  ASSERT_EQ(jobB->wait(), sched::JobPhase::Completed) << jobB->error;
  service.shutdown();

  // An extent that crosses tile boundaries and clips the domain edge.
  ExceedanceQuery query;
  query.extent = Extent{5, 3, 21, 17};
  query.digests = {jobA->hash, jobB->hash, std::string(32, '0')};
  query.threshold = 1.0e-9f;
  const ExceedanceResult res = server.exceedance(query);
  ASSERT_EQ(res.width, 16u);
  ASSERT_EQ(res.height, 14u);
  EXPECT_GT(res.tilesScanned, 0u);

  // Brute force from the converged in-memory maps.
  const auto mapA = server.partialMap(jobA->hash);
  const auto mapB = server.partialMap(jobB->hash);
  ASSERT_TRUE(mapA.has_value() && mapB.has_value());
  for (std::size_t y = query.extent.y0; y < query.extent.y1; ++y)
    for (std::size_t x = query.extent.x0; x < query.extent.x1; ++x) {
      const std::size_t at =
          (x - query.extent.x0) + res.width * (y - query.extent.y0);
      const float a = mapA->values[x + nx * y];
      const float b = mapB->values[x + nx * y];
      const float wantMax = a > b ? a : b;
      std::uint32_t wantCount = 0;
      if (a > query.threshold) ++wantCount;
      if (b > query.threshold) ++wantCount;
      ASSERT_EQ(res.maxOver[at], wantMax) << "(" << x << "," << y << ")";
      ASSERT_EQ(res.exceedCount[at], wantCount) << "(" << x << "," << y << ")";
    }

  // Staleness: both known scenarios are complete at their final window;
  // the unknown digest reads as absent, not as an error.
  ASSERT_EQ(res.scenarios.size(), 3u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(res.scenarios[i].present);
    EXPECT_TRUE(res.scenarios[i].complete);
    EXPECT_GT(res.scenarios[i].totalSamples, 0u);
    EXPECT_EQ(res.scenarios[i].version, res.scenarios[i].totalSamples);
  }
  EXPECT_FALSE(res.scenarios[2].present);
  EXPECT_EQ(res.scenarios[2].version, 0u);
}

// ---------------------------------------------------------------------------
// Publish drops: later windows + the retried completion publish converge

TEST(Serving, PublishDropsConvergeWithoutReconcile) {
  const fs::path work = tempDir("drop-converge");
  sched::ArtifactCache tileCache;
  ServeConfig scfg;
  scfg.tileEdge = 8;
  scfg.windowSamples = 1;
  ProductServer server(&tileCache, scfg);

  const sched::ScenarioSpec spec = smallWaveSpec();
  DeltaRecorder rec;
  server.subscribe(Field::PgvH, Extent{0, 0, spec.dims.nx, spec.dims.ny},
                   rec.callback());

  // Lose the first two window publishes outright (origin 0: a standalone
  // service). Later cumulative windows carry the same folded content
  // forward, so nothing is permanently lost.
  fault::FaultPlan plan;
  plan.servePublishDrop(/*origin=*/0, /*occurrence=*/1, /*count=*/2);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  sched::ScenarioService service(smallServiceConfig(work, &server));
  const sched::JobHandle job = service.submit(spec);
  ASSERT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
  sched::ScenarioProducts products;
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    products = job->products;
  }
  service.shutdown();

  EXPECT_GE(server.stats().publishDrops, 2u);

  // Every subscribed tile still converged to the canonical final state.
  const std::vector<float> expected = canonicalMap(products, spec);
  const std::vector<float> assembled =
      assembleFromTiles(server, job->hash, spec.dims.nx, spec.dims.ny);
  EXPECT_EQ(0, std::memcmp(assembled.data(), expected.data(),
                           expected.size() * sizeof(float)));
  const auto partial = server.partialMap(job->hash);
  ASSERT_TRUE(partial.has_value());
  std::lock_guard<std::mutex> lock(rec.mu);
  EXPECT_TRUE(rec.ordered);
  for (const auto& [tile, version] : rec.latest)
    EXPECT_EQ(version, partial->version);
}

// A stalled notify fan-out (serve_notify_delay) slows delivery without
// losing anything: the run completes and subscribers still converge.

TEST(Serving, NotifyDelayStallsDeliveryButConverges) {
  const fs::path work = tempDir("notify-delay");
  sched::ArtifactCache tileCache;
  ServeConfig scfg;
  scfg.tileEdge = 8;
  scfg.windowSamples = 1;
  ProductServer server(&tileCache, scfg);

  const sched::ScenarioSpec spec = smallWaveSpec();
  DeltaRecorder rec;
  server.subscribe(Field::PgvH, Extent{0, 0, spec.dims.nx, spec.dims.ny},
                   rec.callback());

  fault::FaultPlan plan;
  plan.serveNotifyDelay(/*origin=*/0, /*occurrence=*/1, /*seconds=*/0.05);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  sched::ScenarioService service(smallServiceConfig(work, &server));
  const sched::JobHandle job = service.submit(spec);
  ASSERT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
  service.shutdown();

  EXPECT_GE(injector.faultsInjected(), 1u);
  const auto partial = server.partialMap(job->hash);
  ASSERT_TRUE(partial.has_value());
  std::lock_guard<std::mutex> lock(rec.mu);
  EXPECT_TRUE(rec.ordered);
  for (const auto& [tile, version] : rec.latest)
    EXPECT_EQ(version, partial->version);
}

// A sustained drop burst that swallows every publish — including all
// completion retries — is converged by the reconcile anti-entropy pass.

TEST(Serving, ReconcileConvergesAfterTotalPublishLoss) {
  const fs::path work = tempDir("drop-reconcile");
  sched::ArtifactCache tileCache;
  ServeConfig scfg;
  scfg.tileEdge = 8;
  scfg.windowSamples = 1;
  ProductServer server(&tileCache, scfg);

  const sched::ScenarioSpec spec = smallWaveSpec();
  DeltaRecorder rec;
  server.subscribe(Field::PgvH, Extent{0, 0, spec.dims.nx, spec.dims.ny},
                   rec.callback());

  sched::ScenarioProducts products;
  std::string hash;
  {
    fault::FaultPlan plan;
    plan.servePublishDrop(/*origin=*/0, /*occurrence=*/1,
                          /*count=*/1000000);
    fault::FaultInjector injector(std::move(plan));
    fault::ScopedInjection scoped(injector);

    sched::ScenarioService service(smallServiceConfig(work, &server));
    const sched::JobHandle job = service.submit(spec);
    ASSERT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
    std::lock_guard<std::mutex> lock(job->mutex);
    products = job->products;
    hash = job->hash;
    service.shutdown();
  }

  // Nothing reached the store or the subscriber while the burst lasted.
  EXPECT_EQ(server.store().tileCount(), 0u);
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    EXPECT_TRUE(rec.all.empty());
  }
  // The run state is canonical (completion replaced the accumulator), so
  // one anti-entropy pass converges store and subscribers in one step.
  server.reconcile();
  const std::vector<float> expected = canonicalMap(products, spec);
  const std::vector<float> assembled =
      assembleFromTiles(server, hash, spec.dims.nx, spec.dims.ny);
  EXPECT_EQ(0, std::memcmp(assembled.data(), expected.data(),
                           expected.size() * sizeof(float)));
  std::lock_guard<std::mutex> lock(rec.mu);
  EXPECT_TRUE(rec.ordered);
  EXPECT_FALSE(rec.latest.empty());
  for (const TileDelta& d : rec.all) EXPECT_TRUE(d.complete);
}

// ---------------------------------------------------------------------------
// Subscription ordering under a crash-retry (requeue + checkpoint resume)

TEST(Serving, CrashRetryKeepsDeltasOrderedAndConverges) {
  const fs::path work = tempDir("crash-retry");
  sched::ArtifactCache tileCache;
  ServeConfig scfg;
  scfg.tileEdge = 8;
  scfg.windowSamples = 1;
  ProductServer server(&tileCache, scfg);

  const sched::ScenarioSpec spec = smallWaveSpec();
  DeltaRecorder rec;
  server.subscribe(Field::PgvH, Extent{0, 0, spec.dims.nx, spec.dims.ny},
                   rec.callback());

  // Rank 0's 14th step consult injects a worker crash — past the step-12
  // checkpoint, so the retry resumes and REWRITES its replay window in
  // place. The serving tier must never regress or re-notify a version,
  // whatever the rewrite does to its folded prefix.
  fault::FaultPlan plan;
  plan.transientIoError("sched.job.step", /*rank=*/0, /*occurrence=*/14);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  sched::ServiceConfig cfg = smallServiceConfig(work, &server);
  cfg.respawnBudget = 0;  // force the cancel-and-requeue path
  sched::ScenarioService service(cfg);
  const sched::JobHandle job = service.submit(spec);
  ASSERT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
  sched::ScenarioProducts products;
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    EXPECT_GE(job->attempts, 2);  // the crash really requeued it
    products = job->products;
  }
  service.shutdown();

  const std::vector<float> expected = canonicalMap(products, spec);
  const std::vector<float> assembled =
      assembleFromTiles(server, job->hash, spec.dims.nx, spec.dims.ny);
  EXPECT_EQ(0, std::memcmp(assembled.data(), expected.data(),
                           expected.size() * sizeof(float)));

  const auto partial = server.partialMap(job->hash);
  ASSERT_TRUE(partial.has_value());
  EXPECT_TRUE(partial->complete);
  std::lock_guard<std::mutex> lock(rec.mu);
  EXPECT_TRUE(rec.ordered);  // retries never re-notified or regressed
  EXPECT_FALSE(rec.latest.empty());
  for (const auto& [tile, version] : rec.latest)
    EXPECT_EQ(version, partial->version);
}

// ---------------------------------------------------------------------------
// Cache accounting surfaces in the validated service report

TEST(Serving, CacheTierAccountingValidatesInServiceReport) {
  const fs::path work = tempDir("report");
  sched::ServiceConfig cfg;
  cfg.coreBudget = 4;
  cfg.workDir = work.string();
  sched::ScenarioService service(cfg);

  const sched::ScenarioSpec spec = smallWaveSpec(12);
  ASSERT_EQ(service.submit(spec)->wait(), sched::JobPhase::Completed);
  // Resubmission is a memory-tier hit.
  const sched::JobHandle hit = service.submit(spec);
  ASSERT_EQ(hit->wait(), sched::JobPhase::Completed);
  EXPECT_TRUE(hit->cacheHit);

  const sched::CacheStats stats = service.cacheStats();
  EXPECT_GE(stats.puts, 1u);
  EXPECT_GE(stats.memoryHits, 1u);
  EXPECT_LE(stats.storedBytes, stats.logicalBytes);
  EXPECT_GT(stats.entries, 0u);

  const auto problems =
      sched::validateServiceReportJson(sched::toJson(service.report()));
  EXPECT_TRUE(problems.empty()) << problems.front();
  service.shutdown();
}

// ---------------------------------------------------------------------------
// Degraded broker: read-only serving still feeds the serving tier

TEST(ServingFabric, DegradedBrokerServesCachedProductsReadOnly) {
  const fs::path root = tempDir("degraded-serve");
  util::resetRetryRegistry();
  const sched::ScenarioSpec spec = smallWaveSpec(12);

  // Phase A: a healthy single-broker fabric completes the scenario into
  // the shared on-disk cache tier, then shuts down.
  {
    fabric::FabricConfig config;
    config.brokers = 1;
    config.rootDir = root.string();
    config.service.coreBudget = 4;
    fabric::HazardFabric fabric(config);
    const fabric::FabricJobHandle job = fabric.submit(spec);
    fabric.drain();
    ASSERT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
    fabric.shutdown();
  }

  // Phase B: a new fabric over the same root, with its only broker
  // partitioned from the start (every lease RPC lost). It degrades, but
  // the cached digest is still served — and the serving tier converges
  // from the canonical products without any run.
  fault::FaultPlan plan;
  plan.fabricDrop(/*broker=*/0, /*occurrence=*/1, /*count=*/1000000);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  fabric::FabricConfig config;
  config.brokers = 1;
  config.rootDir = root.string();
  config.leaseSeconds = 0.3;
  config.heartbeatSeconds = 0.05;
  config.degradedAfterMisses = 2;
  config.service.coreBudget = 4;
  fabric::HazardFabric fabric(config);
  for (int i = 0;
       i < 2000 && fabric.brokerState(0) != fabric::BrokerState::Degraded;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(fabric.brokerState(0), fabric::BrokerState::Degraded);

  const fabric::FabricJobHandle job = fabric.submit(spec);
  ASSERT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
  sched::ScenarioProducts products;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    products = job->products;
  }

  // The degraded broker's read-only settle published the full product:
  // queries over the fabric's serving tier see a complete scenario.
  ExceedanceQuery query;
  query.extent = Extent{0, 0, spec.dims.nx, spec.dims.ny};
  query.digests = {job->digest};
  const ExceedanceResult res = fabric.exceedance(query);
  ASSERT_EQ(res.scenarios.size(), 1u);
  EXPECT_TRUE(res.scenarios[0].present);
  EXPECT_TRUE(res.scenarios[0].complete);

  const std::vector<float> expected = canonicalMap(products, spec);
  const std::vector<float> assembled = assembleFromTiles(
      fabric.productServer(), job->digest, spec.dims.nx, spec.dims.ny);
  EXPECT_EQ(0, std::memcmp(assembled.data(), expected.data(),
                           expected.size() * sizeof(float)));
  fabric.shutdown();
}

// ---------------------------------------------------------------------------
// Chaos acceptance: 3 brokers, one dies mid-ensemble, window publishes
// drop — every subscribed extent still converges to final tile versions
// bit-identical to an uninterrupted run.

TEST(ServingChaos, BrokerDeathAndPublishDropsConvergeBitIdentically) {
  // Three scenarios, at least one owned by the broker that will die, so
  // the death forces a handoff of in-flight serving state.
  const fabric::HashRing ring(3, 64);
  std::vector<sched::ScenarioSpec> specs = {smallWaveSpec(24),
                                           smallWaveSpec(26)};
  bool found = false;
  for (std::uint64_t steps = 28; steps < 28 + 200 && !found; steps += 2) {
    sched::ScenarioSpec spec = smallWaveSpec(steps);
    if (ring.ownerOf(fabric::HashRing::pointFor(spec.hashHex()), 0x7u) == 1) {
      specs.push_back(spec);
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no spec variant owned by broker 1";
  const std::size_t nx = specs[0].dims.nx;
  const std::size_t ny = specs[0].dims.ny;

  // Baseline: an undisturbed single-broker fabric records the canonical
  // tile-assembled maps.
  std::map<std::string, std::vector<float>> baseline;
  {
    const fs::path root = tempDir("serve-chaos-baseline");
    util::resetRetryRegistry();
    fabric::FabricConfig config;
    config.brokers = 1;
    config.rootDir = root.string();
    config.service.coreBudget = 4;
    fabric::HazardFabric fabric(config);
    std::vector<fabric::FabricJobHandle> jobs;
    for (const auto& s : specs) jobs.push_back(fabric.submit(s));
    fabric.drain();
    for (const auto& job : jobs) {
      ASSERT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
      baseline[job->digest] =
          assembleFromTiles(fabric.productServer(), job->digest, nx, ny);
    }
    fabric.shutdown();
  }

  // Chaos run: 3 brokers; broker 1 fail-stops at its 8th pump tick, and
  // each broker loses a couple of its first window publishes.
  const fs::path root = tempDir("serve-chaos-run");
  util::resetRetryRegistry();
  fabric::FabricConfig config;
  config.brokers = 3;
  config.rootDir = root.string();
  config.leaseSeconds = 0.3;
  config.heartbeatSeconds = 0.06;
  config.pumpIntervalSeconds = 0.004;
  config.service.coreBudget = 4;
  config.serve.windowSamples = 1;

  fault::FaultPlan plan;
  plan.brokerDeath(/*broker=*/1, /*occurrence=*/8);
  for (int origin = 0; origin < 3; ++origin)
    plan.servePublishDrop(origin, /*occurrence=*/1, /*count=*/2);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  fabric::HazardFabric fabric(config);
  DeltaRecorder rec;
  fabric.subscribeTiles(Field::PgvH, Extent{0, 0, nx, ny}, rec.callback());

  std::vector<fabric::FabricJobHandle> jobs;
  for (const auto& s : specs) jobs.push_back(fabric.submit(s));
  fabric.drain();
  EXPECT_EQ(fabric.brokerState(1), fabric::BrokerState::Dead);

  // One explicit anti-entropy pass stands in for the pump cadence, so the
  // assertions below never race a scheduled reconcile.
  fabric.productServer().reconcile();

  for (const auto& job : jobs) {
    ASSERT_EQ(job->wait(), sched::JobPhase::Completed) << job->error;
    {
      std::lock_guard<std::mutex> lock(job->mu);
      EXPECT_EQ(job->completions, 1) << job->digest;  // exactly once
    }
    const std::vector<float> assembled =
        assembleFromTiles(fabric.productServer(), job->digest, nx, ny);
    ASSERT_EQ(assembled.size(), baseline[job->digest].size());
    EXPECT_EQ(0, std::memcmp(assembled.data(), baseline[job->digest].data(),
                             assembled.size() * sizeof(float)))
        << "tiles not bit-identical for " << job->digest;

    // Every subscribed tile of every scenario was fenced at its final
    // complete version, exactly once.
    const auto partial = fabric.productServer().partialMap(job->digest);
    ASSERT_TRUE(partial.has_value());
    EXPECT_TRUE(partial->complete);
    std::lock_guard<std::mutex> lock(rec.mu);
    const int edge = fabric.productServer().store().tileEdge();
    for (int ty = 0; static_cast<std::size_t>(ty) * edge < ny; ++ty)
      for (int tx = 0; static_cast<std::size_t>(tx) * edge < nx; ++tx) {
        const auto it =
            rec.latest.find(std::make_tuple(job->digest, tx, ty));
        ASSERT_NE(it, rec.latest.end())
            << job->digest << " tile " << tx << "," << ty;
        EXPECT_EQ(it->second, partial->version);
      }
  }
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    EXPECT_TRUE(rec.ordered);
  }
  EXPECT_GE(fabric.productServer().stats().publishDrops, 1u);

  const fabric::FabricReport report = fabric.report();
  EXPECT_EQ(report.completed, specs.size());
  EXPECT_EQ(report.failed, 0u);
  for (const auto& br : report.brokers) {
    const auto problems =
        sched::validateServiceReportJson(sched::toJson(br));
    EXPECT_TRUE(problems.empty())
        << "broker report invalid: " << problems.front();
  }
  fabric.shutdown();
}

}  // namespace
}  // namespace awp::serve
