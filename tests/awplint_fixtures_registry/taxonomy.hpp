// Registry-gate fixture taxonomy: Counter::Stale's JSON name drifted
// from index-aligned snake_case, and Counter::Orphan is referenced by no
// test. The Phase table is correct and swept by the fixture test file.
// Analyzer input only — never compiled.
#pragma once

namespace fixture::telemetry {

enum class Phase {
  Alpha,
  Beta,
  kCount,
};

inline constexpr const char* kPhaseJsonNames[] = {
    "alpha",
    "beta",
};

enum class Counter {
  GoodOne,
  Stale,
  Orphan,  // awplint-expect: registry-untested
  kCount,
};

inline constexpr const char* kCounterJsonNames[] = {
    "good_one",
    "stale_typo",  // awplint-expect: registry-json-mismatch
    "orphan",
};

}  // namespace fixture::telemetry
