// Registry-gate fixture sites table: io.read is consulted and scheduled
// by a test (clean); io.dead is declared but no analyzed source consults
// it; io.untested is consulted but no test ever schedules it.
// Analyzer input only — never compiled.
#pragma once

namespace fixture::fault {

struct KnownFaultSite {
  const char* site;
  const char* builder;
};

inline constexpr KnownFaultSite kKnownSites[] = {
    {"io.read", "readFaults"},
    {"io.dead", ""},      // awplint-expect: registry-unconsulted
    {"io.untested", ""},  // awplint-expect: registry-untested
};

}  // namespace fixture::fault
