// Test-side references for the registry fixture: schedules io.read via
// its builder, names io.dead directly, sweeps the Phase JSON table, and
// touches two counters — deliberately leaving the third counter and the
// third site uncovered so the drift gates have something to catch.
// Analyzer input only — never compiled.

void registryCoverage() {
  auto plan = readFaults(3);
  expectEq(siteName(plan), "io.dead");
  sweepNames(kPhaseJsonNames);
  bump(Counter::GoodOne);
  bump(Counter::Stale);
}
