// Registry-gate fixture sources: consults io.read and io.untested,
// consults the undeclared io.ghost, defines a listed-but-not-hot pump,
// and an AWP_HOT loop missing from the fixture hot registry.
// Analyzer input only — never compiled.

namespace fixture {

void consumeFaults(Injector* injector, int step) {
  if (injector->check("io.read", step)) return;
  injector->check("io.untested", step);
  injector->check("io.ghost", step);  // awplint-expect: registry-undeclared
}

void pump(Queue& q) {  // awplint-expect: hot-registry
  q.drainOnce();
}

AWP_HOT int hotLoop(int n) {  // awplint-expect: hot-unpinned
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += i;
  return acc;
}

}  // namespace fixture
