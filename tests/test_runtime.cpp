// Tests for the later-added platform features: the §IV.D hybrid
// (thread-parallel) kernel mode, the §III.G runtime configuration, and
// the §III.I dPDA derived products.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "analysis/products.hpp"
#include "core/runtime_config.hpp"
#include "core/solver.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "vcluster/cluster.hpp"

namespace awp {
namespace {

using vcluster::CartTopology;
using vcluster::Dims3;
using vcluster::ThreadCluster;

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, CoversTheRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(0, 1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallelFor(0, 97, [&](std::size_t b, std::size_t e) {
      total.fetch_add(e - b);
    });
  }
  EXPECT_EQ(total.load(), 50u * 97u);
}

TEST(ThreadPool, HandlesSmallAndEmptyRanges) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallelFor(5, 5, [&](std::size_t, std::size_t) { count = 99; });
  EXPECT_EQ(count.load(), 0);
  pool.parallelFor(0, 2, [&](std::size_t b, std::size_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1);
  int sum = 0;
  pool.parallelFor(0, 10, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 45);
}

// --- Hybrid solver equivalence (§IV.D) ---------------------------------------

TEST(HybridMode, MatchesPureMessagePassing) {
  auto run = [&](int threads) {
    std::vector<float> field;
    ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
      CartTopology topo(Dims3{2, 1, 1});
      core::SolverConfig config;
      config.globalDims = {32, 24, 16};
      config.h = 300.0;
      config.hybridThreads = threads;
      core::WaveSolver solver(comm, topo, config,
                              vmodel::Material{5000.0f, 2900.0f, 2700.0f});
      solver.addSource(core::explosionPointSource(
          16, 12, 8,
          core::rickerWavelet(3.0, 0.5, solver.config().dt, 60, 1e15)));
      solver.run(60);
      if (comm.rank() == 0) {
        const auto& u = solver.grid().u;
        field.assign(u.data(), u.data() + u.size());
      }
    });
    return field;
  };
  const auto pure = run(1);
  const auto hybrid = run(3);
  ASSERT_EQ(pure.size(), hybrid.size());
  for (std::size_t n = 0; n < pure.size(); ++n)
    ASSERT_EQ(pure[n], hybrid[n]);  // bitwise: slabs don't change order
}

// --- Runtime configuration (§III.G) ------------------------------------------

TEST(RuntimeConfig, ParsesFullConfiguration) {
  const auto config = core::parseRuntimeConfig(R"(
      # production configuration
      comm = sync
      reduced_comm = off
      overlap = on
      cache_block = 32x4
      unroll = on
      reciprocals = off
      hybrid_threads = 6
      absorbing = pml
      pml_width = 12
      free_surface = off
      attenuation = on
      dt = 0.004
      output_sample_steps = 20
      output_decimation = 2
      output_aggregate = 1000
      mesh_io = ondemand
      checksums = off
  )");
  const auto& s = config.solver;
  EXPECT_EQ(s.commMode, grid::HaloExchanger::Mode::Synchronous);
  EXPECT_FALSE(s.reducedComm);
  EXPECT_TRUE(s.overlap);
  EXPECT_TRUE(s.kernels.cacheBlocked);
  EXPECT_EQ(s.kernels.kblock, 32);
  EXPECT_EQ(s.kernels.jblock, 4);
  EXPECT_TRUE(s.kernels.unrolled);
  EXPECT_FALSE(s.kernels.useReciprocals);
  EXPECT_EQ(s.hybridThreads, 6);
  EXPECT_EQ(s.absorbing, core::AbsorbingType::Pml);
  EXPECT_EQ(s.pml.width, 12);
  EXPECT_FALSE(s.freeSurface);
  EXPECT_TRUE(s.attenuation.enabled);
  EXPECT_DOUBLE_EQ(s.dt, 0.004);
  EXPECT_EQ(config.output.sampleEverySteps, 20);
  EXPECT_EQ(config.output.spatialDecimation, 2);
  EXPECT_EQ(config.output.flushEverySamples, 1000);
  EXPECT_EQ(config.meshIo, core::MeshIoMode::OnDemand);
  EXPECT_FALSE(config.checksums);
}

TEST(RuntimeConfig, DefaultsPreservedForUnsetKeys) {
  const auto config = core::parseRuntimeConfig("overlap = on\n");
  EXPECT_TRUE(config.solver.overlap);
  EXPECT_TRUE(config.solver.reducedComm);  // untouched default
  EXPECT_EQ(config.solver.commMode,
            grid::HaloExchanger::Mode::Asynchronous);
}

TEST(RuntimeConfig, RejectsMalformedInput) {
  EXPECT_THROW(core::parseRuntimeConfig("nonsense\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("unknown_key = 1\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("comm = carrier-pigeon\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("cache_block = 16by8\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("hybrid_threads = 0\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("dt = fast\n"), Error);
}

TEST(RuntimeConfig, LoadsFromFile) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("awp_rc_" + std::to_string(::getpid()) + ".cfg");
  {
    std::ofstream out(path);
    out << "sponge_width = 25\n";
  }
  const auto config = core::loadRuntimeConfig(path.string());
  EXPECT_EQ(config.solver.spongeWidth, 25);
  std::filesystem::remove(path);
}

TEST(RuntimeConfig, MachineDefaultsAreArchitectureAware) {
  const auto jaguar = core::defaultsForMachine("Jaguar");
  EXPECT_TRUE(jaguar.solver.kernels.cacheBlocked);
  EXPECT_EQ(jaguar.solver.kernels.kblock, 16);
  EXPECT_EQ(jaguar.meshIo, core::MeshIoMode::PrePartitioned);
  EXPECT_FALSE(jaguar.solver.overlap);  // dropped for full-scale production

  const auto intrepid = core::defaultsForMachine("Intrepid");
  EXPECT_EQ(intrepid.solver.kernels.kblock, 8);  // small L1
  EXPECT_EQ(intrepid.meshIo, core::MeshIoMode::OnDemand);

  const auto ranger = core::defaultsForMachine("Ranger");
  EXPECT_TRUE(ranger.solver.overlap);

  EXPECT_THROW(core::defaultsForMachine("Roadrunner"), Error);
}

// --- dPDA products (§III.I) ---------------------------------------------------

TEST(Products, PgmRoundTripHeaderAndScaling) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("awp_pgm_" + std::to_string(::getpid()) + ".pgm");
  std::vector<float> map = {0.0f, 1.0f, 2.0f, 4.0f};
  const double peak = analysis::writePgm(map, 2, 2, path.string(), 1.0);
  EXPECT_DOUBLE_EQ(peak, 4.0);

  std::ifstream in(path, std::ios::binary);
  std::string magic;
  std::size_t nx, ny;
  int maxval;
  in >> magic >> nx >> ny >> maxval;
  in.get();  // single whitespace after header
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(nx, 2u);
  EXPECT_EQ(ny, 2u);
  EXPECT_EQ(maxval, 255);
  unsigned char px[4];
  in.read(reinterpret_cast<char*>(px), 4);
  EXPECT_EQ(px[0], 0);      // zero -> black
  EXPECT_EQ(px[3], 255);    // peak -> white
  EXPECT_EQ(px[1], 64);     // linear gamma: 1/4 of peak
  std::filesystem::remove(path);
}

TEST(Products, SurfaceSnapshotMatchesMonitor) {
  // Run a solver writing surface output; the final snapshot read back via
  // the dPDA layout must be consistent with non-zero motion where the
  // monitor saw motion.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("awp_prod_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "surface.bin").string();

  const grid::GridDims dims{32, 32, 12};
  CartTopology topo(Dims3{2, 2, 1});
  std::vector<float> finalU;
  ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
    core::SolverConfig config;
    config.globalDims = dims;
    config.h = 400.0;
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5000.0f, 2900.0f, 2700.0f});
    io::SharedFile file(path, io::SharedFile::Mode::Write);
    core::SurfaceOutputConfig surf;
    surf.file = &file;
    surf.sampleEverySteps = 10;
    surf.spatialDecimation = 1;
    surf.flushEverySamples = 2;
    solver.attachSurfaceOutput(surf);
    solver.addSource(core::explosionPointSource(
        16, 16, 8,
        core::rickerWavelet(3.0, 0.4, solver.config().dt, 80, 1e15)));
    solver.run(80);
    if (comm.rank() == 0) {
      // Record the surface u at the final step for cross-checking.
      const auto& g = solver.grid();
      finalU.push_back(g.u(grid::kHalo + 5, grid::kHalo + 5,
                           grid::kHalo + g.dims().nz - 1));
    }
  });

  const auto layout = analysis::surfaceLayoutFor(topo, dims, 1);
  EXPECT_EQ(layout.gnx, 32u);
  EXPECT_EQ(layout.stepFloats, 3ull * 32 * 32);

  io::SharedFile file(path, io::SharedFile::Mode::Read);
  const std::size_t samples = layout.sampleCount(file.size());
  EXPECT_EQ(samples, 8u);

  const auto early = analysis::readSurfaceSnapshot(path, layout, 0);
  const auto late =
      analysis::readSurfaceSnapshot(path, layout, samples - 1);
  double earlyPeak = 0.0, latePeak = 0.0;
  for (float v : early) earlyPeak = std::max<double>(earlyPeak, v);
  for (float v : late) latePeak = std::max<double>(latePeak, v);
  EXPECT_EQ(earlyPeak, 0.0);  // step 0: nothing has arrived
  EXPECT_GT(latePeak, 0.0);   // wave reached the surface by the end

  // Out-of-range sample throws.
  EXPECT_THROW(analysis::readSurfaceSnapshot(path, layout, samples), Error);

  // A PGM of the snapshot is writable.
  analysis::writePgm(late, layout.gnx, layout.gny,
                     (dir / "snap.pgm").string());
  EXPECT_TRUE(std::filesystem::exists(dir / "snap.pgm"));
  std::filesystem::remove_all(dir);
  (void)finalU;
}

}  // namespace
}  // namespace awp
