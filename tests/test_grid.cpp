// Tests for the staggered grid and the halo-exchange machinery.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "grid/field_id.hpp"
#include "util/error.hpp"
#include "grid/halo.hpp"
#include "grid/staggered_grid.hpp"
#include "mesh/partitioner.hpp"
#include "vcluster/cluster.hpp"
#include "vmodel/material.hpp"

namespace awp::grid {
namespace {

vmodel::Material rock() { return {5000.0f, 2887.0f, 2700.0f}; }

TEST(StaggeredGrid, AllocatesWithHalos) {
  StaggeredGrid g({10, 8, 6}, 100.0, 0.01);
  EXPECT_EQ(g.sx(), 14u);
  EXPECT_EQ(g.sy(), 12u);
  EXPECT_EQ(g.sz(), 10u);
  EXPECT_EQ(g.u.size(), 14u * 12 * 10);
}

TEST(StaggeredGrid, UniformMaterialDerivesReciprocals) {
  StaggeredGrid g({4, 4, 4}, 100.0, 0.01);
  g.setUniformMaterial(rock());
  const float mu = g.mu(3, 3, 3);
  EXPECT_GT(mu, 0.0f);
  EXPECT_FLOAT_EQ(g.mui(3, 3, 3), 1.0f / mu);
  EXPECT_FLOAT_EQ(g.lami(3, 3, 3), 1.0f / g.lam(3, 3, 3));
}

TEST(StaggeredGrid, StableDtScalesWithH) {
  StaggeredGrid a({4, 4, 4}, 100.0, 1.0);
  a.setUniformMaterial(rock());
  StaggeredGrid b({4, 4, 4}, 200.0, 1.0);
  b.setUniformMaterial(rock());
  EXPECT_NEAR(b.stableDt() / a.stableDt(), 2.0, 1e-6);
  EXPECT_NEAR(a.stableDt(), 0.45 * 100.0 / 5000.0, 1e-6);
}

TEST(StaggeredGrid, AttenuationTausSpanTheBand) {
  AttenuationConfig att;
  att.enabled = true;
  att.fMin = 0.1;
  att.fMax = 2.0;
  StaggeredGrid g({8, 8, 8}, 100.0, 0.01, att);
  float tMin = 1e9f, tMax = 0.0f;
  for (float t : g.tauSigma) {
    tMin = std::min(tMin, t);
    tMax = std::max(tMax, t);
  }
  EXPECT_NEAR(tMin, 1.0 / (2.0 * M_PI * 2.0), 1e-4);
  EXPECT_NEAR(tMax, 1.0 / (2.0 * M_PI * 0.1), 1e-3);
}

TEST(StaggeredGrid, SaveRestoreRoundTrip) {
  StaggeredGrid g({6, 5, 4}, 100.0, 0.01);
  g.setUniformMaterial(rock());
  for (std::size_t n = 0; n < g.u.size(); ++n) {
    g.u.data()[n] = static_cast<float>(n) * 0.5f;
    g.xy.data()[n] = static_cast<float>(n) * -0.25f;
  }
  const auto state = g.saveState();

  StaggeredGrid g2({6, 5, 4}, 100.0, 0.01);
  g2.setUniformMaterial(rock());
  g2.restoreState(state);
  for (std::size_t n = 0; n < g.u.size(); ++n) {
    ASSERT_EQ(g2.u.data()[n], g.u.data()[n]);
    ASSERT_EQ(g2.xy.data()[n], g.xy.data()[n]);
  }
  // Size mismatch is rejected.
  StaggeredGrid g3({4, 4, 4}, 100.0, 0.01);
  EXPECT_THROW(g3.restoreState(state), Error);
}

TEST(StaggeredGrid, MeshBlockFlipsDepthAxis) {
  // Mesh k = 0 is the surface; grid k increases upward.
  mesh::MeshBlock block;
  block.spec.x = {0, 2};
  block.spec.y = {0, 2};
  block.spec.z = {0, 3};
  block.points.resize(12);
  for (std::size_t k = 0; k < 3; ++k)
    for (std::size_t j = 0; j < 2; ++j)
      for (std::size_t i = 0; i < 2; ++i) {
        auto& m = block.at(i, j, k);
        m.vs = 1000.0f + 100.0f * static_cast<float>(k);  // faster deeper
        m.vp = 2.0f * m.vs;
        m.rho = 2500.0f;
      }
  StaggeredGrid g({2, 2, 3}, 100.0, 0.01);
  g.setMaterial(block);
  // Top interior plane (k = kHalo + 2) must be the surface (mesh k = 0).
  const float muTop = g.mu(kHalo, kHalo, kHalo + 2);
  const float muBottom = g.mu(kHalo, kHalo, kHalo);
  EXPECT_LT(muTop, muBottom);
}

// Fill a field with a function of GLOBAL coordinates on each rank, run the
// exchange, and verify that halo cells contain the neighbor's values.
TEST(HaloExchange, FullExchangeFillsFaces) {
  const GridDims global{12, 10, 8};
  const vcluster::CartTopology topo(vcluster::Dims3{2, 2, 2});
  const mesh::MeshSpec spec{global.nx, global.ny, global.nz, 1.0, 0, 0};

  vcluster::ThreadCluster::run(topo.size(), [&](vcluster::Communicator&
                                                    comm) {
    const auto sub = mesh::subdomainFor(topo, spec, comm.rank());
    StaggeredGrid g({sub.x.count(), sub.y.count(), sub.z.count()}, 1.0,
                    0.1);
    auto value = [](std::size_t gi, std::size_t gj, std::size_t gk) {
      return static_cast<float>(gi + 100 * gj + 10000 * gk);
    };
    for (std::size_t k = 0; k < sub.z.count(); ++k)
      for (std::size_t j = 0; j < sub.y.count(); ++j)
        for (std::size_t i = 0; i < sub.x.count(); ++i)
          g.u(i + kHalo, j + kHalo, k + kHalo) =
              value(sub.x.begin + i, sub.y.begin + j, sub.z.begin + k);

    HaloExchanger ex(comm, topo, HaloExchanger::Mode::Asynchronous,
                     /*reduced=*/false);
    ex.exchangeVelocities(g);

    // Check the -x halo planes (if a neighbor exists there).
    if (topo.neighbor(comm.rank(), 0, -1) >= 0) {
      for (std::size_t k = 0; k < sub.z.count(); ++k)
        for (std::size_t j = 0; j < sub.y.count(); ++j)
          for (std::size_t p = 0; p < kHalo; ++p) {
            const float got = g.u(p, j + kHalo, k + kHalo);
            const float want =
                value(sub.x.begin - kHalo + p, sub.y.begin + j,
                      sub.z.begin + k);
            ASSERT_EQ(got, want);
          }
    }
    // Check the +y halo planes.
    if (topo.neighbor(comm.rank(), 1, 1) >= 0) {
      for (std::size_t k = 0; k < sub.z.count(); ++k)
        for (std::size_t p = 0; p < kHalo; ++p)
          for (std::size_t i = 0; i < sub.x.count(); ++i) {
            const float got =
                g.u(i + kHalo, kHalo + sub.y.count() + p, k + kHalo);
            const float want = value(sub.x.begin + i, sub.y.end + p,
                                     sub.z.begin + k);
            ASSERT_EQ(got, want);
          }
    }
  });
}

TEST(HaloExchange, SynchronousAndAsynchronousAgree) {
  const GridDims global{9, 9, 9};
  const vcluster::CartTopology topo(vcluster::Dims3{3, 1, 3});
  const mesh::MeshSpec spec{global.nx, global.ny, global.nz, 1.0, 0, 0};

  for (auto mode : {HaloExchanger::Mode::Synchronous,
                    HaloExchanger::Mode::Asynchronous}) {
    vcluster::ThreadCluster::run(
        topo.size(), [&](vcluster::Communicator& comm) {
          const auto sub = mesh::subdomainFor(topo, spec, comm.rank());
          StaggeredGrid g({sub.x.count(), sub.y.count(), sub.z.count()},
                          1.0, 0.1);
          for (std::size_t k = 0; k < sub.z.count(); ++k)
            for (std::size_t j = 0; j < sub.y.count(); ++j)
              for (std::size_t i = 0; i < sub.x.count(); ++i)
                g.xx(i + kHalo, j + kHalo, k + kHalo) =
                    static_cast<float>((sub.x.begin + i) * 7 +
                                       (sub.z.begin + k));
          HaloExchanger ex(comm, topo, mode, /*reduced=*/false);
          ex.exchangeStresses(g);
          if (topo.neighbor(comm.rank(), 0, 1) >= 0) {
            const float got =
                g.xx(kHalo + sub.x.count(), kHalo, kHalo);
            ASSERT_EQ(got,
                      static_cast<float>(sub.x.end * 7 + sub.z.begin));
          }
        });
  }
}

TEST(HaloExchange, ReducedSendsFewerBytes) {
  const GridDims global{16, 16, 16};
  const vcluster::CartTopology topo(vcluster::Dims3{2, 2, 2});
  const mesh::MeshSpec spec{global.nx, global.ny, global.nz, 1.0, 0, 0};

  std::uint64_t fullBytes = 0, reducedBytes = 0;
  for (bool reduced : {false, true}) {
    std::atomic<std::uint64_t> bytes{0};
    vcluster::ThreadCluster::run(
        topo.size(), [&](vcluster::Communicator& comm) {
          const auto sub = mesh::subdomainFor(topo, spec, comm.rank());
          StaggeredGrid g({sub.x.count(), sub.y.count(), sub.z.count()},
                          1.0, 0.1);
          HaloExchanger ex(comm, topo,
                           HaloExchanger::Mode::Asynchronous, reduced);
          ex.exchangeVelocities(g);
          ex.exchangeStresses(g);
          bytes.fetch_add(ex.stats().bytes);
        });
    (reduced ? reducedBytes : fullBytes) = bytes.load();
  }
  // §IV.A: the stress tensor exchange shrinks by ~62%, the overall volume
  // by ~50%.
  EXPECT_LT(reducedBytes, fullBytes);
  EXPECT_NEAR(static_cast<double>(reducedBytes) / fullBytes, 0.5, 0.05);
}

TEST(HaloExchange, ReducedStillDeliversNeededPlanes) {
  // xx only travels in x under the reduced tables; verify the planes a
  // velocity stencil needs (2 on the minus side, 1 on the plus side).
  const GridDims global{12, 6, 6};
  const vcluster::CartTopology topo(vcluster::Dims3{2, 1, 1});
  const mesh::MeshSpec spec{global.nx, global.ny, global.nz, 1.0, 0, 0};
  vcluster::ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    const auto sub = mesh::subdomainFor(topo, spec, comm.rank());
    StaggeredGrid g({sub.x.count(), sub.y.count(), sub.z.count()}, 1.0,
                    0.1);
    for (std::size_t k = 0; k < sub.z.count(); ++k)
      for (std::size_t j = 0; j < sub.y.count(); ++j)
        for (std::size_t i = 0; i < sub.x.count(); ++i)
          g.xx(i + kHalo, j + kHalo, k + kHalo) =
              static_cast<float>(sub.x.begin + i) + 1.0f;
    HaloExchanger ex(comm, topo, HaloExchanger::Mode::Asynchronous,
                     /*reduced=*/true);
    ex.exchangeStresses(g);
    if (comm.rank() == 1) {
      // Minus side: both halo planes filled (need.minus == 2).
      ASSERT_EQ(g.xx(0, kHalo, kHalo), 5.0f);  // global i = 4
      ASSERT_EQ(g.xx(1, kHalo, kHalo), 6.0f);  // global i = 5
    } else {
      // Plus side: only the first halo plane filled (need.plus == 1).
      ASSERT_EQ(g.xx(kHalo + 6, kHalo, kHalo), 7.0f);  // global i = 6
      ASSERT_EQ(g.xx(kHalo + 7, kHalo, kHalo), 0.0f);  // untouched
    }
  });
}

TEST(FieldNeeds, ReducedTotalsMatchTheClaimedSavings) {
  // Velocities: 27 of 36 planes; stresses: 27 of 72 (xx alone 3 of 12 —
  // the 75% reduction the paper quotes for xx).
  int velocity = 0, stress = 0;
  for (FieldId f : kVelocityFields) {
    const auto n = reducedNeed(f);
    velocity += n.x.total() + n.y.total() + n.z.total();
  }
  for (FieldId f : kStressFields) {
    const auto n = reducedNeed(f);
    stress += n.x.total() + n.y.total() + n.z.total();
  }
  EXPECT_EQ(velocity, 27);
  EXPECT_EQ(stress, 27);
  const auto xx = reducedNeed(FieldId::XX);
  EXPECT_EQ(xx.x.total() + xx.y.total() + xx.z.total(), 3);  // 12 -> 3
}

TEST(StaggeredGrid, KineticEnergyOfUniformField) {
  StaggeredGrid g({4, 4, 4}, 2.0, 0.01);
  g.setUniformMaterial(rock());
  for (std::size_t n = 0; n < g.u.size(); ++n) g.u.data()[n] = 1.0f;
  // E = 1/2 rho v^2 * volume over 64 interior cells of h^3 = 8.
  EXPECT_NEAR(g.kineticEnergy(), 0.5 * 2700.0 * 1.0 * 64 * 8.0, 1.0);
}

}  // namespace
}  // namespace awp::grid
