// Tests for the parallel I/O substrate: shared files, open throttling,
// aggregated output, checkpoint/restart, parallel checksums, and the
// file-system contention model.

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <filesystem>
#include <thread>

#include "io/aggregated_writer.hpp"
#include "io/checkpoint.hpp"
#include "io/checksum.hpp"
#include "io/contention.hpp"
#include "io/shared_file.hpp"
#include "io/throttle.hpp"
#include "util/error.hpp"
#include "util/md5.hpp"
#include "vcluster/cluster.hpp"

namespace awp::io {
namespace {

class TempDir : public ::testing::Test {
 protected:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("awp_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

using SharedFileTest = TempDir;

TEST_F(SharedFileTest, PositionalReadWrite) {
  SharedFile f(path("a.bin"), SharedFile::Mode::Write);
  const std::vector<float> data = {1.0f, 2.0f, 3.0f};
  f.writeAt(100, std::span<const float>(data));
  std::vector<float> back(3);
  f.readAt(100, std::span<float>(back));
  EXPECT_EQ(back, data);
  EXPECT_EQ(f.size(), 100 + 3 * sizeof(float));
}

TEST_F(SharedFileTest, ConcurrentDisjointWrites) {
  const std::string p = path("shared.bin");
  {
    SharedFile f(p, SharedFile::Mode::Write);
    f.truncate(8 * sizeof(double));
  }
  vcluster::ThreadCluster::run(8, [&](vcluster::Communicator& comm) {
    SharedFile f(p, SharedFile::Mode::ReadWrite);
    const double v = comm.rank() * 1.5;
    f.writeAt(comm.rank() * sizeof(double),
              std::span<const double>(&v, 1));
  });
  SharedFile f(p, SharedFile::Mode::Read);
  for (int r = 0; r < 8; ++r) {
    double v;
    f.readAt(r * sizeof(double), std::span<double>(&v, 1));
    EXPECT_DOUBLE_EQ(v, r * 1.5);
  }
}

TEST_F(SharedFileTest, ShortReadThrows) {
  SharedFile f(path("short.bin"), SharedFile::Mode::Write);
  f.truncate(4);
  std::vector<std::byte> buf(16);
  EXPECT_THROW(f.readAt(0, std::span<std::byte>(buf)), Error);
}

TEST_F(SharedFileTest, MissingFileThrows) {
  EXPECT_THROW(SharedFile(path("nope.bin"), SharedFile::Mode::Read), Error);
}

TEST(Throttle, NeverExceedsLimit) {
  OpenThrottle throttle(4);
  vcluster::ThreadCluster::run(16, [&](vcluster::Communicator&) {
    for (int i = 0; i < 20; ++i) {
      OpenThrottle::Ticket t(throttle);
      std::this_thread::yield();
    }
  });
  EXPECT_LE(throttle.peakConcurrent(), 4);
  EXPECT_GE(throttle.peakConcurrent(), 1);
}

using AggregatedWriterTest = TempDir;

TEST_F(AggregatedWriterTest, AggregatesFlushes) {
  SharedFile f(path("out.bin"), SharedFile::Mode::Write);
  AggregatedWriter w(&f, /*recordFloats=*/4, /*rankOffset=*/0,
                     /*stepFloats=*/4, /*flushEvery=*/5);
  std::vector<float> sample = {1, 2, 3, 4};
  for (int s = 0; s < 12; ++s) {
    for (auto& v : sample) v += 1.0f;
    w.appendSample(sample.data(), sample.size());
  }
  w.flush();
  EXPECT_EQ(w.stats().flushes, 3u);  // 5 + 5 + 2
  EXPECT_EQ(w.stats().bytesWritten, 12u * 4 * sizeof(float));

  // Verify sample 7 landed at the right displacement.
  std::vector<float> back(4);
  f.readAt(7 * 4 * sizeof(float), std::span<float>(back));
  EXPECT_FLOAT_EQ(back[0], 1.0f + 8.0f);
}

TEST_F(AggregatedWriterTest, MultiRankDisplacements) {
  const std::string p = path("multi.bin");
  {
    SharedFile f(p, SharedFile::Mode::Write);
    f.truncate(0);
  }
  // 4 ranks each owning 2 floats of an 8-float step record, 3 samples.
  vcluster::ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
    SharedFile f(p, SharedFile::Mode::ReadWrite);
    AggregatedWriter w(&f, 2, static_cast<std::uint64_t>(comm.rank()) * 2,
                       8, 2);
    for (int s = 0; s < 3; ++s) {
      const float vals[2] = {static_cast<float>(comm.rank()),
                             static_cast<float>(s)};
      w.appendSample(vals, 2);
    }
    w.flush();
    comm.barrier();
  });
  SharedFile f(p, SharedFile::Mode::Read);
  for (int s = 0; s < 3; ++s)
    for (int r = 0; r < 4; ++r) {
      float vals[2];
      f.readAt((s * 8 + r * 2) * sizeof(float),
               std::span<float>(vals, 2));
      EXPECT_FLOAT_EQ(vals[0], r);
      EXPECT_FLOAT_EQ(vals[1], s);
    }
}

using CheckpointTest = TempDir;

TEST_F(CheckpointTest, RoundTrip) {
  CheckpointStore store(path("ckpt"));
  std::vector<std::byte> state(1000);
  for (std::size_t i = 0; i < state.size(); ++i)
    state[i] = static_cast<std::byte>(i & 0xff);
  store.write(3, 1234, state);
  EXPECT_TRUE(store.exists(3));
  EXPECT_FALSE(store.exists(4));
  const auto restored = store.read(3);
  EXPECT_EQ(restored.step, 1234u);
  EXPECT_EQ(restored.state, state);
}

TEST_F(CheckpointTest, DetectsCorruption) {
  CheckpointStore store(path("ckpt"));
  std::vector<std::byte> state(64, std::byte{0x5a});
  store.write(0, 10, state);
  // Flip a byte in the payload.
  {
    SharedFile f(store.pathFor(0), SharedFile::Mode::ReadWrite);
    const std::byte evil{0xff};
    f.writeAt(f.size() - 1, std::span<const std::byte>(&evil, 1));
  }
  EXPECT_THROW(store.read(0), Error);
}

TEST_F(CheckpointTest, KeepsTwoGenerationsAndRotates) {
  CheckpointStore store(path("ckpt"));
  std::vector<std::byte> s1(32, std::byte{1});
  std::vector<std::byte> s2(32, std::byte{2});
  std::vector<std::byte> s3(32, std::byte{3});
  store.write(0, 10, s1);
  store.write(0, 20, s2);
  // Newest wins on read; both generations exist on disk.
  EXPECT_EQ(store.read(0).step, 20u);
  EXPECT_EQ(store.newestValidStep(0), 20u);
  EXPECT_EQ(store.readStep(0, 10).state, s1);
  // A third write overwrites the *older* generation, never the newest.
  store.write(0, 30, s3);
  EXPECT_EQ(store.read(0).step, 30u);
  EXPECT_EQ(store.readStep(0, 20).state, s2);
  EXPECT_THROW(store.readStep(0, 10), Error);  // rotated out
  // Writes are atomic: no .tmp litter remains.
  for (const auto& entry :
       std::filesystem::directory_iterator(path("ckpt")))
    EXPECT_EQ(entry.path().extension(), ".bin");
}

TEST_F(CheckpointTest, FallsBackOnPayloadDigestMismatch) {
  CheckpointStore store(path("ckpt"));
  std::vector<std::byte> oldState(128, std::byte{0xaa});
  std::vector<std::byte> newState(128, std::byte{0xbb});
  store.write(2, 100, oldState);
  store.write(2, 200, newState);
  // Corrupt one payload byte of the newest generation.
  {
    SharedFile f(store.pathFor(2), SharedFile::Mode::ReadWrite);
    const std::byte evil{0xff};
    f.writeAt(f.size() - 5, std::span<const std::byte>(&evil, 1));
  }
  const auto restored = store.read(2);  // falls back, does not throw
  EXPECT_EQ(restored.step, 100u);
  EXPECT_EQ(restored.state, oldState);
  EXPECT_EQ(store.newestValidStep(2), 100u);
}

TEST_F(CheckpointTest, FallsBackOnTornHeader) {
  CheckpointStore store(path("ckpt"));
  std::vector<std::byte> oldState(64, std::byte{0x11});
  std::vector<std::byte> newState(64, std::byte{0x22});
  store.write(1, 10, oldState);
  store.write(1, 20, newState);
  // Tear the newest generation mid-header (truncated file).
  {
    SharedFile f(store.pathFor(1), SharedFile::Mode::ReadWrite);
    f.truncate(17);
  }
  const auto restored = store.read(1);
  EXPECT_EQ(restored.step, 10u);
  EXPECT_EQ(restored.state, oldState);
}

TEST_F(CheckpointTest, MissingNewestGenerationUsesPrevious) {
  CheckpointStore store(path("ckpt"));
  std::vector<std::byte> oldState(64, std::byte{0x33});
  std::vector<std::byte> newState(64, std::byte{0x44});
  store.write(0, 5, oldState);
  store.write(0, 6, newState);
  std::filesystem::remove(store.pathFor(0));  // lose the newest file
  EXPECT_TRUE(store.exists(0));
  const auto restored = store.read(0);
  EXPECT_EQ(restored.step, 5u);
  EXPECT_EQ(restored.state, oldState);
}

TEST_F(CheckpointTest, BothGenerationsCorruptThrows) {
  CheckpointStore store(path("ckpt"));
  std::vector<std::byte> state(64, std::byte{0x55});
  store.write(0, 1, state);
  store.write(0, 2, state);
  for (int g = 0; g < CheckpointStore::kGenerations; ++g) {
    SharedFile f(store.pathFor(0, g), SharedFile::Mode::ReadWrite);
    const std::byte evil{0xf0};
    f.writeAt(f.size() - 1, std::span<const std::byte>(&evil, 1));
  }
  EXPECT_THROW(store.read(0), Error);
  EXPECT_FALSE(store.newestValidStep(0).has_value());
}

TEST_F(CheckpointTest, PerRankParallelWrites) {
  CheckpointStore store(path("ckpt"));
  OpenThrottle throttle(2);
  CheckpointStore throttled(path("ckpt"), &throttle);
  vcluster::ThreadCluster::run(8, [&](vcluster::Communicator& comm) {
    std::vector<std::byte> state(
        128, std::byte{static_cast<unsigned char>(comm.rank())});
    throttled.write(comm.rank(), 55, state);
    comm.barrier();
    const auto r = throttled.read(comm.rank());
    EXPECT_EQ(r.state[0],
              std::byte{static_cast<unsigned char>(comm.rank())});
  });
  EXPECT_LE(throttle.peakConcurrent(), 2);
}

TEST(ParallelChecksum, DeterministicAcrossRuns) {
  std::string hex1, hex2;
  auto runOnce = [&](std::string& out) {
    vcluster::ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
      std::vector<std::byte> block(
          256, std::byte{static_cast<unsigned char>(comm.rank() + 1)});
      const auto result = parallelMd5(comm, block);
      if (comm.rank() == 0) out = result.collectionHex;
      // Every rank receives the same collection digest.
      EXPECT_EQ(result.collectionHex.size(), 32u);
    });
  };
  runOnce(hex1);
  runOnce(hex2);
  EXPECT_EQ(hex1, hex2);
}

TEST(ParallelChecksum, SensitiveToAnyBlock) {
  std::string base, changed;
  auto runWith = [&](unsigned char rank2Fill, std::string& out) {
    vcluster::ThreadCluster::run(4, [&](vcluster::Communicator& comm) {
      const unsigned char fill =
          comm.rank() == 2 ? rank2Fill
                           : static_cast<unsigned char>(comm.rank());
      std::vector<std::byte> block(64, std::byte{fill});
      const auto result = parallelMd5(comm, block);
      if (comm.rank() == 0) out = result.collectionHex;
    });
  };
  runWith(2, base);
  runWith(3, changed);
  EXPECT_NE(base, changed);
}

TEST(ContentionModel, PeaksNearMdsComfortLimit) {
  const auto fs = FileSystemModel::jaguarLustre();
  // §IV.E: limiting to 650 concurrent opens reached ~20 GB/s.
  const double bwAtLimit = fs.aggregateBandwidth(650);
  EXPECT_GT(bwAtLimit, 15e9);
  EXPECT_LT(bwAtLimit, 30e9);
  // Unthrottled access at 100K+ clients collapses (the BG/P failure mode).
  EXPECT_LT(fs.aggregateBandwidth(100000), 0.2 * bwAtLimit);
  // The best writer count is at/below the comfort limit.
  const int best = fs.bestWriterCount(20000);
  EXPECT_LE(best, 700);
  EXPECT_GT(best, 50);
}

TEST(ContentionModel, StripePolicyMatchesPaper) {
  const auto fs = FileSystemModel::jaguarLustre();
  // "The stripe size is set to unity for serial access of pre-partitioned
  // input files and checkpoints" (§IV.E).
  EXPECT_EQ(stripePolicy(FileClass::PrePartitioned, fs).stripeCount, 1);
  EXPECT_GT(stripePolicy(FileClass::LargeSharedInput, fs).stripeCount, 100);
  EXPECT_EQ(stripePolicy(FileClass::SimulationOutput, fs).stripeCount,
            fs.osts);
}

}  // namespace
}  // namespace awp::io
