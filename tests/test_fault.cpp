// Tests for the deterministic fault-injection subsystem: plan/occurrence
// semantics, rank attribution, and the hooks wired into the comm layer
// (message drop/duplicate/bit-flip) and the shared-file I/O layer
// (transient errors retried, torn writes, injected ENOSPC).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <span>
#include <vector>

#include "fault/injector.hpp"
#include "io/shared_file.hpp"
#include "util/error.hpp"
#include "util/retry.hpp"
#include "vcluster/cluster.hpp"

namespace awp {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;
using fault::ScopedInjection;

TEST(FaultInjector, FiresOnScheduledOccurrenceOnly) {
  FaultPlan plan;
  plan.add({"site.a", FaultKind::TransientIoError, /*rank=*/-1,
            /*occurrence=*/3, /*count=*/2, 0.0});
  FaultInjector injector(std::move(plan), /*seed=*/7);
  EXPECT_FALSE(injector.check("site.a", 0).has_value());  // op 1
  EXPECT_FALSE(injector.check("site.a", 0).has_value());  // op 2
  auto third = injector.check("site.a", 0);               // op 3: fires
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->kind, FaultKind::TransientIoError);
  EXPECT_TRUE(injector.check("site.a", 0).has_value());   // op 4: count=2
  EXPECT_FALSE(injector.check("site.a", 0).has_value());  // op 5: done
  EXPECT_EQ(injector.faultsInjected(), 2u);
  const auto stats = injector.stats();
  EXPECT_EQ(stats.at("site.a").operations, 5u);
  EXPECT_EQ(stats.at("site.a").injected, 2u);
}

TEST(FaultInjector, RankFilterAndPerRankStreams) {
  FaultPlan plan;
  plan.transientIoError("site.b", /*rank=*/1, /*occurrence=*/1);
  FaultInjector injector(std::move(plan), 7);
  // Rank 0's first op does not fire; rank 1's does — each rank counts its
  // own occurrence stream, so the outcome is independent of interleaving.
  EXPECT_FALSE(injector.check("site.b", 0).has_value());
  EXPECT_TRUE(injector.check("site.b", 1).has_value());
  EXPECT_FALSE(injector.check("site.b", 1).has_value());
}

TEST(FaultInjector, UnrelatedSitesAreUntouched) {
  FaultPlan plan;
  plan.bitFlip("site.c", -1, 1);
  FaultInjector injector(std::move(plan), 7);
  EXPECT_FALSE(injector.check("site.other", 0).has_value());
  auto act = injector.check("site.c", 0);
  ASSERT_TRUE(act.has_value());
  EXPECT_EQ(act->kind, FaultKind::BitFlip);
}

TEST(FaultInjector, BitChoiceIsDeterministic) {
  auto run = [] {
    FaultPlan plan;
    plan.bitFlip("site.d", 2, 1);
    FaultInjector injector(std::move(plan), 99);
    return injector.check("site.d", 2)->flipBit;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjector, DisabledByDefault) {
  EXPECT_FALSE(fault::injectionEnabled());
  EXPECT_EQ(fault::activeInjector(), nullptr);
  {
    FaultInjector injector(FaultPlan{}, 1);
    ScopedInjection scope(injector);
    EXPECT_TRUE(fault::injectionEnabled());
  }
  EXPECT_FALSE(fault::injectionEnabled());
}

TEST(CommFaults, MessageDropNeverArrives) {
  FaultPlan plan;
  plan.add({"comm.send", FaultKind::MessageDrop, /*rank=*/0,
            /*occurrence=*/1, /*count=*/1, 0.0});
  FaultInjector injector(std::move(plan), 5);
  ScopedInjection scope(injector);
  vcluster::ThreadCluster::run(2, [](vcluster::Communicator& comm) {
    if (comm.rank() == 0) {
      const int v = 123;
      comm.send(1, 7, &v, sizeof(v));  // dropped
      comm.send(1, 7, &v, sizeof(v));  // arrives
    } else {
      // Only one message is ever delivered for the envelope.
      const int got = comm.recvValue<int>(0, 7);
      EXPECT_EQ(got, 123);
    }
    comm.barrier();
    if (comm.rank() == 1) {
      EXPECT_EQ(comm.stats().messagesDropped.load(), 1u);
    }
  });
}

TEST(CommFaults, MessageDuplicateDeliversTwice) {
  FaultPlan plan;
  plan.add({"comm.send", FaultKind::MessageDuplicate, /*rank=*/0,
            /*occurrence=*/1, /*count=*/1, 0.0});
  FaultInjector injector(std::move(plan), 5);
  ScopedInjection scope(injector);
  vcluster::ThreadCluster::run(2, [](vcluster::Communicator& comm) {
    if (comm.rank() == 0) {
      const double v = 2.5;
      comm.send(1, 3, &v, sizeof(v));
    } else {
      EXPECT_EQ(comm.recvValue<double>(0, 3), 2.5);
      EXPECT_EQ(comm.recvValue<double>(0, 3), 2.5);  // the duplicate
      EXPECT_EQ(comm.stats().messagesDuplicated.load(), 1u);
    }
  });
}

TEST(CommFaults, PayloadBitFlipIsDetectable) {
  FaultPlan plan;
  plan.bitFlip("comm.send", /*rank=*/0, /*occurrence=*/1);
  FaultInjector injector(std::move(plan), 11);
  ScopedInjection scope(injector);
  vcluster::ThreadCluster::run(2, [](vcluster::Communicator& comm) {
    std::vector<std::byte> payload(64, std::byte{0});
    if (comm.rank() == 0) {
      comm.send(1, 9, payload.data(), payload.size());
    } else {
      std::vector<std::byte> got(64);
      comm.recv(0, 9, got.data(), got.size());
      // Exactly one bit differs from the all-zero payload.
      int bitsSet = 0;
      for (const auto b : got)
        bitsSet += __builtin_popcount(static_cast<unsigned>(b));
      EXPECT_EQ(bitsSet, 1);
    }
  });
}

class SharedFileFaults : public ::testing::Test {
 protected:
  SharedFileFaults() {
    dir_ = std::filesystem::temp_directory_path() /
           ("awp_fault_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~SharedFileFaults() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(SharedFileFaults, TransientWriteErrorIsRetriedTransparently) {
  FaultPlan plan;
  plan.transientIoError("sharedfile.write", /*rank=*/-1, /*occurrence=*/1,
                        /*count=*/2);
  FaultInjector injector(std::move(plan), 3);
  ScopedInjection scope(injector);
  util::resetRetryRegistry();

  io::SharedFile f(path("t.bin"), io::SharedFile::Mode::Write);
  const std::vector<float> data = {1.f, 2.f, 3.f};
  f.writeAt(0, std::span<const float>(data));  // retried internally

  std::vector<float> back(3);
  f.readAt(0, std::span<float>(back));
  EXPECT_EQ(back, data);
  const auto reg = util::retryRegistrySnapshot();
  EXPECT_EQ(reg.at("sharedfile.write").failures, 2u);
  EXPECT_EQ(reg.at("sharedfile.write").exhausted, 0u);
}

TEST_F(SharedFileFaults, ExhaustedShortWritesLeaveATornFile) {
  FaultPlan plan;
  // More consecutive short writes than the file's retry budget.
  plan.add({"sharedfile.write", FaultKind::ShortWrite, -1, 1, 16, 0.0});
  FaultInjector injector(std::move(plan), 3);
  ScopedInjection scope(injector);

  io::SharedFile f(path("torn.bin"), io::SharedFile::Mode::Write);
  std::vector<std::byte> data(64, std::byte{0x5a});
  EXPECT_THROW(f.writeAt(0, std::span<const std::byte>(data)),
               TransientError);
  // Only the injected prefix landed.
  EXPECT_EQ(f.size(), 32u);
}

TEST_F(SharedFileFaults, InjectedEnospcIsPermanent) {
  FaultPlan plan;
  plan.add({"sharedfile.write", FaultKind::NoSpace, -1, 1, 1, 0.0});
  FaultInjector injector(std::move(plan), 3);
  ScopedInjection scope(injector);
  util::resetRetryRegistry();

  io::SharedFile f(path("full.bin"), io::SharedFile::Mode::Write);
  std::vector<std::byte> data(8, std::byte{1});
  EXPECT_THROW(f.writeAt(0, std::span<const std::byte>(data)), Error);
  // Permanent errors are not retried.
  EXPECT_EQ(util::retryRegistrySnapshot().at("sharedfile.write").attempts,
            1u);
}

TEST_F(SharedFileFaults, ReadBitFlipCorruptsExactlyOneBit) {
  {
    io::SharedFile f(path("r.bin"), io::SharedFile::Mode::Write);
    std::vector<std::byte> zeros(32, std::byte{0});
    f.writeAt(0, std::span<const std::byte>(zeros));
  }
  FaultPlan plan;
  plan.bitFlip("sharedfile.read", -1, 1);
  FaultInjector injector(std::move(plan), 21);
  ScopedInjection scope(injector);

  io::SharedFile f(path("r.bin"), io::SharedFile::Mode::Read);
  std::vector<std::byte> got(32);
  f.readAt(0, std::span<std::byte>(got));
  int bitsSet = 0;
  for (const auto b : got)
    bitsSet += __builtin_popcount(static_cast<unsigned>(b));
  EXPECT_EQ(bitsSet, 1);
}

}  // namespace
}  // namespace awp
