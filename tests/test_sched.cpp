// Scenario-service tests: spec hashing, the bounded priority admission
// queue (backpressure both policies), the content-addressed artifact cache
// (single-flight + disk tier), watchdog drain/verdict, the chrome-trace
// exporter, sched_* runtime-config keys, report validation, and the
// end-to-end service guarantees — cache-hit bit-identity without re-run,
// crash -> requeue -> checkpoint-resume equivalence, stall -> requeue
// equivalence, admission rejection under saturation, and in-flight
// coalescing.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime_config.hpp"
#include "fault/injector.hpp"
#include "health/watchdog.hpp"
#include "sched/artifact_cache.hpp"
#include "sched/job.hpp"
#include "sched/queue.hpp"
#include "sched/report.hpp"
#include "sched/service.hpp"
#include "sched/spec.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "util/retry.hpp"

namespace awp::sched {
namespace {

namespace fs = std::filesystem;

fs::path tempDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("awp-sched-test-" + tag + "-" + std::to_string(getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Small, fast wave scenario; ~5k cells, a checkpoint every 6 steps.
ScenarioSpec smallWaveSpec() {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::Wave;
  spec.dims = {24, 18, 12};
  spec.h = 600.0;
  spec.steps = 24;
  spec.nranks = 2;
  spec.useCvm = true;
  spec.spongeWidth = 4;
  spec.checkpointEverySteps = 6;
  spec.surfaceSampleEverySteps = 2;
  spec.healthEverySteps = 4;
  spec.name = "small-wave";
  return spec;
}

JobHandle makeJob(int priority, std::uint64_t seq, int nranks = 1,
                  std::uint64_t steps = 8) {
  auto job = std::make_shared<JobState>();
  job->spec = smallWaveSpec();
  job->spec.nranks = nranks;
  job->spec.steps = steps;
  job->spec.priority = priority;
  job->hash = job->spec.hashHex();
  job->submitSeq = seq;
  return job;
}

std::string jobError(const JobHandle& job) {
  std::lock_guard<std::mutex> lock(job->mutex);
  return job->error;
}

bool isRunning(const JobHandle& job) {
  std::lock_guard<std::mutex> lock(job->mutex);
  return job->phase == JobPhase::Running;
}

void awaitRunning(const JobHandle& job) {
  for (int i = 0; i < 2000 && !isRunning(job) && !job->done(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

std::string blobMd5(const ScenarioProducts& products,
                    const std::string& name) {
  const ArtifactBlob* blob = products.find(name);
  return blob != nullptr ? blob->md5Hex : std::string("<missing:" + name +
                                                      ">");
}

// ---------------------------------------------------------------------------
// ScenarioSpec hashing and product serialization

TEST(ScenarioSpec, HashIgnoresPresentationMetadata) {
  ScenarioSpec a = smallWaveSpec();
  ScenarioSpec b = a;
  b.name = "renamed";
  b.priority = 99;
  EXPECT_EQ(a.hashHex(), b.hashHex());
  EXPECT_EQ(a.hashHex().size(), 32u);
  for (char c : a.hashHex()) EXPECT_TRUE(isxdigit(static_cast<unsigned char>(c)));
}

TEST(ScenarioSpec, HashSensitiveToEveryPhysicsField) {
  const ScenarioSpec base = smallWaveSpec();
  const std::string h0 = base.hashHex();
  auto changed = [&](auto mutate) {
    ScenarioSpec s = base;
    mutate(s);
    return s.hashHex() != h0;
  };
  EXPECT_TRUE(changed([](ScenarioSpec& s) { s.steps += 1; }));
  EXPECT_TRUE(changed([](ScenarioSpec& s) { s.nranks += 1; }));
  EXPECT_TRUE(changed([](ScenarioSpec& s) { s.dims.nx += 1; }));
  EXPECT_TRUE(changed([](ScenarioSpec& s) { s.h *= 1.5; }));
  EXPECT_TRUE(changed([](ScenarioSpec& s) { s.useCvm = !s.useCvm; }));
  EXPECT_TRUE(changed([](ScenarioSpec& s) { s.checkpointEverySteps += 1; }));
  EXPECT_TRUE(changed([](ScenarioSpec& s) { s.sourceAmplitude *= 2.0; }));
  EXPECT_TRUE(changed([](ScenarioSpec& s) { s.kind = ScenarioKind::Rupture; }));
  EXPECT_TRUE(changed([](ScenarioSpec& s) { s.seed += 1; }));
}

TEST(ScenarioSpec, ProductsSerializeRoundTripAndDetectCorruption) {
  ScenarioProducts p;
  p.specHash = smallWaveSpec().hashHex();
  p.completedSteps = 24;
  p.dt = 0.025;
  std::vector<std::byte> payload(257);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i * 7u);
  p.blobs.emplace_back("surface.bin", ArtifactBlob::fromBytes(payload));
  p.blobs.emplace_back("pgvh.bin",
                       ArtifactBlob::fromBytes({std::byte{1}, std::byte{2}}));

  auto bytes = p.serialize();
  ScenarioProducts q = ScenarioProducts::deserialize(bytes);
  EXPECT_EQ(q.specHash, p.specHash);
  EXPECT_EQ(q.completedSteps, 24u);
  EXPECT_DOUBLE_EQ(q.dt, 0.025);
  ASSERT_NE(q.find("surface.bin"), nullptr);
  EXPECT_EQ(q.find("surface.bin")->bytes, payload);
  EXPECT_EQ(q.find("surface.bin")->md5Hex, p.find("surface.bin")->md5Hex);

  // Flip one payload byte: the per-blob digest check must reject it.
  auto corrupt = bytes;
  corrupt[corrupt.size() - 3] ^= std::byte{0x40};
  EXPECT_THROW((void)ScenarioProducts::deserialize(corrupt), Error);
  EXPECT_THROW((void)ScenarioProducts::deserialize({std::byte{9}}), Error);
}

// ---------------------------------------------------------------------------
// Admission queue

TEST(AdmissionQueue, PriorityOrderWithFifoTies) {
  AdmissionQueue q(8, AdmissionQueue::AdmitPolicy::Reject);
  EXPECT_EQ(q.push(makeJob(1, 0)), AdmissionQueue::PushResult::Admitted);
  EXPECT_EQ(q.push(makeJob(3, 1)), AdmissionQueue::PushResult::Admitted);
  EXPECT_EQ(q.push(makeJob(3, 2)), AdmissionQueue::PushResult::Admitted);
  EXPECT_EQ(q.push(makeJob(2, 3)), AdmissionQueue::PushResult::Admitted);

  auto a = q.pop();
  auto b = q.pop();
  auto c = q.pop();
  auto d = q.pop();
  ASSERT_TRUE(a && b && c && d);
  EXPECT_EQ(a->spec.priority, 3);
  EXPECT_EQ(a->submitSeq, 1u);  // FIFO within equal priority
  EXPECT_EQ(b->spec.priority, 3);
  EXPECT_EQ(b->submitSeq, 2u);
  EXPECT_EQ(c->spec.priority, 2);
  EXPECT_EQ(d->spec.priority, 1);
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(AdmissionQueue, RejectPolicyBoundsDepthButRequeueBypasses) {
  AdmissionQueue q(2, AdmissionQueue::AdmitPolicy::Reject);
  EXPECT_EQ(q.push(makeJob(0, 0)), AdmissionQueue::PushResult::Admitted);
  EXPECT_EQ(q.push(makeJob(0, 1)), AdmissionQueue::PushResult::Admitted);
  EXPECT_EQ(q.push(makeJob(0, 2)), AdmissionQueue::PushResult::Rejected);
  EXPECT_EQ(q.size(), 2u);

  // Requeued work the service already accepted must never be dropped.
  q.pushRequeue(makeJob(9, 3));
  EXPECT_EQ(q.size(), 3u);
  q.close();
  EXPECT_EQ(q.push(makeJob(0, 4)), AdmissionQueue::PushResult::Closed);
  q.pushRequeue(makeJob(9, 5));  // still accepted after close
  EXPECT_EQ(q.size(), 4u);

  const auto stats = q.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.requeued, 2u);
}

TEST(AdmissionQueue, BlockPolicyWaitsForSpaceAndCloseReleases) {
  AdmissionQueue q(1, AdmissionQueue::AdmitPolicy::Block);
  EXPECT_EQ(q.push(makeJob(0, 0)), AdmissionQueue::PushResult::Admitted);

  std::atomic<int> admitted{0};
  std::thread pusher([&] {
    if (q.push(makeJob(0, 1)) == AdmissionQueue::PushResult::Admitted)
      admitted.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(admitted.load(), 0);  // still blocked on the full queue
  ASSERT_NE(q.pop(), nullptr);
  pusher.join();
  EXPECT_EQ(admitted.load(), 1);
  EXPECT_GE(q.stats().blockedPushes, 1u);

  // A pusher blocked at close() time gets Closed, not a hang.
  std::thread lateClosed([&] {
    EXPECT_EQ(q.push(makeJob(0, 2)), AdmissionQueue::PushResult::Closed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  q.close();
  lateClosed.join();
}

TEST(AdmissionQueue, PopFitHonoursCoreAndMemoryLimits) {
  AdmissionQueue q(8, AdmissionQueue::AdmitPolicy::Reject);
  auto wide = makeJob(/*priority=*/5, 0, /*nranks=*/4);
  auto narrow = makeJob(/*priority=*/1, 1, /*nranks=*/1);
  ASSERT_EQ(q.push(wide), AdmissionQueue::PushResult::Admitted);
  ASSERT_EQ(q.push(narrow), AdmissionQueue::PushResult::Admitted);

  // Only 2 free cores: the higher-priority 4-rank job does not fit, the
  // 1-rank job runs instead of idling the machine.
  auto fit = q.popFit(/*freeCores=*/2, /*freeBytes=*/0);
  ASSERT_NE(fit, nullptr);
  EXPECT_EQ(fit->spec.nranks, 1);

  // A 1-byte allowance fits nothing real; 0 means unlimited.
  EXPECT_EQ(q.popFit(/*freeCores=*/8, /*freeBytes=*/1), nullptr);
  auto rest = q.popFit(/*freeCores=*/8, /*freeBytes=*/0);
  ASSERT_NE(rest, nullptr);
  EXPECT_EQ(rest->spec.nranks, 4);
}

// ---------------------------------------------------------------------------
// Artifact cache

TEST(ArtifactCache, SingleFlightComputesExactlyOnce) {
  ArtifactCache cache;
  std::atomic<int> computes{0};
  auto compute = [&] {
    computes.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return std::vector<std::byte>{std::byte{0xAB}, std::byte{0xCD}};
  };

  std::vector<std::thread> threads;
  std::vector<std::vector<std::byte>> results(6);
  for (std::size_t i = 0; i < results.size(); ++i)
    threads.emplace_back(
        [&, i] { results[i] = cache.getOrCompute("mesh:key", compute); });
  for (auto& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1);
  for (const auto& r : results)
    EXPECT_EQ(r, (std::vector<std::byte>{std::byte{0xAB}, std::byte{0xCD}}));
  EXPECT_EQ(cache.stats().computes, 1u);
}

TEST(ArtifactCache, DiskTierRoundTripsAndCorruptEntryIsMiss) {
  const fs::path dir = tempDir("cache");
  const std::vector<std::byte> value{std::byte{1}, std::byte{2},
                                     std::byte{3}, std::byte{4}};
  {
    ArtifactCache writer(dir.string());
    writer.put("products:abc", value);
  }
  {
    ArtifactCache reader(dir.string());
    auto got = reader.get("products:abc");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, value);
    EXPECT_EQ(reader.stats().diskLoads, 1u);
    EXPECT_TRUE(reader.get("products:missing") == std::nullopt);
  }

  // Flip a byte in the single entry file: the digest check makes the
  // corrupt entry a miss, never wrong data.
  fs::path entry;
  for (const auto& e : fs::directory_iterator(dir)) entry = e.path();
  ASSERT_FALSE(entry.empty());
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\x7f');
  }
  ArtifactCache verifier(dir.string());
  EXPECT_TRUE(verifier.get("products:abc") == std::nullopt);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Watchdog: consumable episodes and verdict mapping

TEST(Watchdog, DrainHandsEachEpisodeToExactlyOneConsumer) {
  health::HeartbeatBoard board(2);
  board.beat(0, 1);
  board.beat(1, 1);
  health::Watchdog dog(board, /*stallTimeoutSeconds=*/0.1, nullptr,
                       /*pollIntervalSeconds=*/0.02);
  for (int i = 0; i < 100 && dog.reports().empty(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  dog.stop();

  ASSERT_FALSE(dog.reports().empty());
  auto first = dog.drain();
  EXPECT_EQ(first.size(), dog.reports().size());
  EXPECT_TRUE(dog.drain().empty());          // already consumed
  EXPECT_FALSE(dog.reports().empty());       // history is non-destructive
  EXPECT_FALSE(first.front().stalledRanks.empty());
  EXPECT_GE(first.front().stalledSeconds, 0.1);
}

TEST(Watchdog, VerdictForMapsEpisodeAgeOntoTheLattice) {
  health::StallReport none;  // rank = -1: no stall
  EXPECT_EQ(health::verdictFor(none, 0.1), health::Verdict::Healthy);

  health::StallReport fresh;
  fresh.rank = 0;
  fresh.stalledSeconds = 0.15;
  EXPECT_EQ(health::verdictFor(fresh, 0.1), health::Verdict::Degraded);

  health::StallReport aged = fresh;
  aged.stalledSeconds = 0.5;  // past fatalFactor (4) x timeout
  EXPECT_EQ(health::verdictFor(aged, 0.1), health::Verdict::Fatal);
  EXPECT_EQ(health::verdictFor(aged, 0.1, /*fatalFactor=*/10.0),
            health::Verdict::Degraded);
}

// ---------------------------------------------------------------------------
// Chrome-trace exporter

TEST(ChromeTrace, SessionExportIsValidJsonWithServiceLane) {
  telemetry::SessionConfig sc;
  sc.nranks = 1;
  telemetry::Session session(sc);
  telemetry::ScopedSession scoped(session);
  {
    telemetry::ScopedSpan outer(telemetry::Phase::SchedQueue);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    telemetry::ScopedSpan inner(telemetry::Phase::SchedDispatch);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const std::string trace = telemetry::toChromeTrace(session);
  const auto root = telemetry::parseJson(trace);
  ASSERT_TRUE(root.isArray());

  bool sawServiceLane = false;
  bool sawComplete = false;
  for (const auto& ev : root.items) {
    ASSERT_TRUE(ev.isObject());
    const auto* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->text == "M") {
      const auto* args = ev.find("args");
      if (args != nullptr && args->find("name") != nullptr &&
          args->find("name")->text == "service")
        sawServiceLane = true;
    }
    if (ph->text == "X") {
      sawComplete = true;
      EXPECT_NE(ev.find("name"), nullptr);
      EXPECT_NE(ev.find("dur"), nullptr);
      EXPECT_NE(ev.find("ts"), nullptr);
    }
  }
  // The untagged test thread lands on the off-rank "service" lane.
  EXPECT_TRUE(sawServiceLane);
  EXPECT_TRUE(sawComplete);

  EXPECT_THROW((void)telemetry::chromeTraceFromJsonl("{not json\n"), Error);
}

// ---------------------------------------------------------------------------
// Runtime-config keys

TEST(RuntimeConfig, SchedKeysParseIntoServiceConfig) {
  const std::string text =
      "sched_workers = 6\n"
      "sched_memory_mb = 128\n"
      "sched_queue_capacity = 3\n"
      "sched_admission = block\n"
      "sched_max_retries = 5\n"
      "sched_stall_timeout = 2.5\n"
      "sched_cancel_check = 4\n"
      "sched_retry_dt_tighten = 0.25\n"
      "sched_cache = off\n"
      "sched_cache_dir = /tmp/awp-cache\n"
      "sched_work_dir = /tmp/awp-work\n"
      "telemetry = on\n"
      "telemetry_chrome = trace.json\n";
  const auto rc = core::parseRuntimeConfig(text);
  const auto cfg = ServiceConfig::fromRuntime(rc);
  EXPECT_EQ(cfg.coreBudget, 6);
  EXPECT_EQ(cfg.memoryBudgetBytes, std::size_t{128} << 20);
  EXPECT_EQ(cfg.queueCapacity, 3u);
  EXPECT_EQ(cfg.admitPolicy, AdmissionQueue::AdmitPolicy::Block);
  EXPECT_EQ(cfg.maxRetries, 5);
  EXPECT_DOUBLE_EQ(cfg.stallTimeoutSeconds, 2.5);
  EXPECT_EQ(cfg.cancelCheckEverySteps, 4);
  EXPECT_DOUBLE_EQ(cfg.retryDtTighten, 0.25);
  EXPECT_FALSE(cfg.cacheProducts);
  EXPECT_EQ(cfg.cacheDir, "/tmp/awp-cache");
  EXPECT_EQ(cfg.workDir, "/tmp/awp-work");
  EXPECT_TRUE(cfg.telemetry);
  EXPECT_EQ(cfg.chromeTracePath, "trace.json");

  EXPECT_THROW((void)core::parseRuntimeConfig("sched_admission = maybe\n"),
               Error);
  EXPECT_THROW((void)core::parseRuntimeConfig("sched_workers = zero\n"),
               Error);
}

// ---------------------------------------------------------------------------
// Report validator

TEST(ServiceReportJson, ValidatorAcceptsWellFormedAndFlagsViolations) {
  ServiceReport report;
  report.coreBudget = 4;
  report.wallSeconds = 1.0;
  report.submitted = 3;
  report.completed = 2;
  report.cacheHits = 1;
  JobRow row;
  row.name = "job-a";
  row.kind = "wave";
  row.hash = std::string(32, 'a');
  row.phase = "completed";
  row.attempts = 2;
  row.retries = 1;
  report.jobs.push_back(row);
  EXPECT_TRUE(validateServiceReportJson(toJson(report)).empty());

  // Outcome classes are disjoint; more outcomes than submissions is a bug.
  ServiceReport overcounted = report;
  overcounted.completed = 5;
  EXPECT_FALSE(validateServiceReportJson(toJson(overcounted)).empty());

  ServiceReport badRow = report;
  badRow.jobs[0].hash = "nope";
  EXPECT_FALSE(validateServiceReportJson(toJson(badRow)).empty());

  ServiceReport badRetries = report;
  badRetries.jobs[0].retries = 7;  // > attempts
  EXPECT_FALSE(validateServiceReportJson(toJson(badRetries)).empty());

  // Respawn metrics: well-formed counts pass, impossible ones are flagged.
  ServiceReport withRespawns = report;
  withRespawns.respawns = 2;
  withRespawns.respawnEscalations = 1;
  withRespawns.jobs[0].respawns = 2;
  EXPECT_TRUE(validateServiceReportJson(toJson(withRespawns)).empty());

  ServiceReport badRespawns = report;
  badRespawns.jobs[0].attempts = 0;
  badRespawns.jobs[0].retries = 0;
  badRespawns.jobs[0].respawns = 1;  // respawn inside an attempt that never ran
  EXPECT_FALSE(validateServiceReportJson(toJson(badRespawns)).empty());

  EXPECT_FALSE(validateServiceReportJson("{ not json").empty());
  EXPECT_FALSE(validateServiceReportJson("[1,2]").empty());
}

TEST(ServiceReportJson, RetrySiteStatsRenderAndValidate) {
  ServiceReport report;
  report.coreBudget = 4;
  report.wallSeconds = 1.0;
  report.submitted = 1;
  report.completed = 1;

  util::RetrySiteStats ok;
  ok.calls = 2;
  ok.attempts = 5;
  ok.failures = 3;
  ok.exhausted = 1;
  report.retrySites["sharedfile.write"] = ok;
  const std::string json = toJson(report);
  EXPECT_NE(json.find("\"retry_sites\""), std::string::npos);
  EXPECT_NE(json.find("\"sharedfile.write\""), std::string::npos);
  EXPECT_TRUE(validateServiceReportJson(json).empty());

  // Internally inconsistent stats are flagged.
  util::RetrySiteStats bad;
  bad.calls = 3;
  bad.attempts = 1;  // attempts below calls: impossible
  report.retrySites["bogus.site"] = bad;
  EXPECT_FALSE(validateServiceReportJson(toJson(report)).empty());
}

TEST(ServiceReportJson, LiveRetryRegistryLandsInTheServiceReport) {
  util::resetRetryRegistry();
  util::RetryPolicy policy;
  policy.maxAttempts = 3;
  policy.baseDelaySeconds = 0.0;
  int calls = 0;
  util::retryCall(policy, "test.flaky", [&] {
    if (++calls < 3) throw TransientError("flaky");
  });

  ServiceConfig config;
  config.coreBudget = 2;
  ScenarioService service(config);
  const ServiceReport report = service.report();
  service.shutdown();

  const auto it = report.retrySites.find("test.flaky");
  ASSERT_NE(it, report.retrySites.end());
  EXPECT_EQ(it->second.calls, 1u);
  EXPECT_EQ(it->second.attempts, 3u);
  EXPECT_EQ(it->second.failures, 2u);
  EXPECT_EQ(it->second.exhausted, 0u);
  const auto violations = validateServiceReportJson(toJson(report));
  EXPECT_TRUE(violations.empty()) << violations.front();
}

// ---------------------------------------------------------------------------
// End-to-end service behaviour

TEST(ScenarioService, CompletesCachesAndServesResubmissionWithoutRerun) {
  const fs::path work = tempDir("svc-cache-work");
  const fs::path cacheDir = tempDir("svc-cache-dir");
  ServiceConfig cfg;
  cfg.coreBudget = 2;
  cfg.workDir = work.string();
  cfg.cacheDir = cacheDir.string();
  cfg.stallTimeoutSeconds = 30.0;

  const ScenarioSpec spec = smallWaveSpec();
  std::string surfaceMd5;
  std::string pgvhMd5;
  {
    ScenarioService service(cfg);
    auto first = service.submit(spec);
    ASSERT_EQ(first->wait(), JobPhase::Completed);
    EXPECT_FALSE(first->cacheHit);
    surfaceMd5 = blobMd5(first->products, "surface.bin");
    pgvhMd5 = blobMd5(first->products, "pgvh.bin");
    ASSERT_EQ(surfaceMd5.size(), 32u);

    // Same physics, different presentation: still the same cache entry.
    ScenarioSpec renamed = spec;
    renamed.name = "resubmitted";
    renamed.priority = 7;
    auto second = service.submit(renamed);
    ASSERT_EQ(second->wait(), JobPhase::Completed);
    EXPECT_TRUE(second->cacheHit);
    EXPECT_EQ(second->attempts, 0);  // served without touching a worker
    EXPECT_EQ(blobMd5(second->products, "surface.bin"), surfaceMd5);
    EXPECT_EQ(blobMd5(second->products, "pgvh.bin"), pgvhMd5);

    const auto report = service.report();
    EXPECT_EQ(report.submitted, 2u);
    EXPECT_EQ(report.completed, 1u);  // executed completions only
    EXPECT_EQ(report.cacheHits, 1u);
    EXPECT_EQ(report.executedAttempts, 1u);
    const auto violations = validateServiceReportJson(toJson(report));
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations.front());
  }

  // The disk tier outlives the service: a fresh instance (fresh memory
  // cache) still serves the spec without execution.
  {
    ScenarioService service(cfg);
    auto job = service.submit(spec);
    ASSERT_EQ(job->wait(), JobPhase::Completed);
    EXPECT_TRUE(job->cacheHit);
    EXPECT_EQ(blobMd5(job->products, "surface.bin"), surfaceMd5);
    EXPECT_EQ(service.report().executedAttempts, 0u);
  }
  fs::remove_all(work);
  fs::remove_all(cacheDir);
}

TEST(ScenarioService, CrashRequeuesAndResumesBitIdentical) {
  const ScenarioSpec spec = smallWaveSpec();

  // Baseline: uninterrupted run of the same spec.
  const fs::path baseWork = tempDir("svc-crash-base");
  std::string surfaceMd5;
  std::string pgvhMd5;
  {
    ServiceConfig cfg;
    cfg.coreBudget = 2;
    cfg.workDir = baseWork.string();
    ScenarioService service(cfg);
    auto job = service.submit(spec);
    ASSERT_EQ(job->wait(), JobPhase::Completed);
    surfaceMd5 = blobMd5(job->products, "surface.bin");
    pgvhMd5 = blobMd5(job->products, "pgvh.bin");
  }

  // Faulted: rank 0's 14th step consult injects a worker crash — past the
  // step-12 checkpoint, so the retry resumes rather than restarting.
  const fs::path crashWork = tempDir("svc-crash-faulted");
  fault::FaultPlan plan;
  plan.transientIoError("sched.job.step", /*rank=*/0, /*occurrence=*/14);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  ServiceConfig cfg;
  cfg.coreBudget = 2;
  cfg.workDir = crashWork.string();
  cfg.maxRetries = 2;
  ScenarioService service(cfg);
  auto job = service.submit(spec);
  ASSERT_EQ(job->wait(), JobPhase::Completed);
  EXPECT_EQ(injector.faultsInjected(), 1u);

  {
    std::lock_guard<std::mutex> lock(job->mutex);
    ASSERT_GE(job->requeues.size(), 1u);
    EXPECT_EQ(job->requeues[0].cause, RequeueCause::WorkerCrash);
    EXPECT_GE(job->attempts, 2);
    // Crash retries keep dt: bit-identity depends on it.
    EXPECT_DOUBLE_EQ(job->requeues[0].dtNext, 0.0);
  }
  EXPECT_EQ(blobMd5(job->products, "surface.bin"), surfaceMd5);
  EXPECT_EQ(blobMd5(job->products, "pgvh.bin"), pgvhMd5);

  const auto report = service.report();
  EXPECT_GE(report.retries, 1u);
  EXPECT_GE(report.executedAttempts, 2u);
  EXPECT_TRUE(validateServiceReportJson(toJson(report)).empty());
  fs::remove_all(baseWork);
  fs::remove_all(crashWork);
}

TEST(ScenarioService, StallRequeuesAndResumesBitIdentical) {
  const ScenarioSpec spec = smallWaveSpec();

  const fs::path baseWork = tempDir("svc-stall-base");
  std::string surfaceMd5;
  {
    ServiceConfig cfg;
    cfg.coreBudget = 2;
    cfg.workDir = baseWork.string();
    ScenarioService service(cfg);
    auto job = service.submit(spec);
    ASSERT_EQ(job->wait(), JobPhase::Completed);
    surfaceMd5 = blobMd5(job->products, "surface.bin");
  }

  // Rank 1 wedges for 1.5 s at its 5th step; the watchdog (0.4 s timeout)
  // reports the stall and the attempt is cancelled collectively once the
  // rank wakes into the next cancel-check allreduce.
  const fs::path stallWork = tempDir("svc-stall-faulted");
  fault::FaultPlan plan;
  plan.stall("solver.step", /*rank=*/1, /*occurrence=*/5, /*seconds=*/1.5);
  fault::FaultInjector injector(std::move(plan));
  fault::ScopedInjection scoped(injector);

  ServiceConfig cfg;
  cfg.coreBudget = 2;
  cfg.workDir = stallWork.string();
  cfg.stallTimeoutSeconds = 0.4;
  cfg.watchdogPollSeconds = 0.02;
  // This test pins the LEGACY rung of the recovery ladder (collective
  // cancel + requeue); the in-place respawn rung is covered by
  // test_respawn.cpp.
  cfg.respawnBudget = 0;
  ScenarioService service(cfg);
  auto job = service.submit(spec);
  ASSERT_EQ(job->wait(), JobPhase::Completed);

  {
    std::lock_guard<std::mutex> lock(job->mutex);
    ASSERT_GE(job->requeues.size(), 1u);
    EXPECT_EQ(job->requeues[0].cause, RequeueCause::Stall);
  }
  ASSERT_GE(service.stallEpisodes().size(), 1u);
  EXPECT_EQ(service.stallEpisodes().front().rank, 1);
  EXPECT_EQ(blobMd5(job->products, "surface.bin"), surfaceMd5);
  EXPECT_GE(service.report().retries, 1u);
  fs::remove_all(baseWork);
  fs::remove_all(stallWork);
}

TEST(ScenarioService, SaturatedQueueRejectsNewSubmissions) {
  const fs::path work = tempDir("svc-reject");
  ServiceConfig cfg;
  cfg.coreBudget = 1;
  cfg.queueCapacity = 1;
  cfg.admitPolicy = AdmissionQueue::AdmitPolicy::Reject;
  cfg.workDir = work.string();
  ScenarioService service(cfg);

  auto makeSpec = [](std::uint64_t steps) {
    ScenarioSpec s = smallWaveSpec();
    s.nranks = 1;
    s.steps = steps;
    return s;
  };
  auto running = service.submit(makeSpec(200));
  awaitRunning(running);
  auto queued = service.submit(makeSpec(8));    // fills the queue
  auto rejected = service.submit(makeSpec(9));  // bounces off it

  EXPECT_EQ(rejected->wait(), JobPhase::Rejected);
  {
    std::lock_guard<std::mutex> lock(rejected->mutex);
    EXPECT_FALSE(rejected->error.empty());
  }
  EXPECT_EQ(running->wait(), JobPhase::Completed);
  EXPECT_EQ(queued->wait(), JobPhase::Completed);

  const auto report = service.report();
  EXPECT_EQ(report.submitted, 3u);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(report.completed, 2u);
  EXPECT_TRUE(validateServiceReportJson(toJson(report)).empty());
  fs::remove_all(work);
}

TEST(ScenarioService, IdenticalInFlightSpecsCoalesceOntoOneExecution) {
  const fs::path work = tempDir("svc-coalesce");
  ServiceConfig cfg;
  cfg.coreBudget = 1;
  cfg.workDir = work.string();
  ScenarioService service(cfg);

  ScenarioSpec spec = smallWaveSpec();
  spec.nranks = 1;
  spec.steps = 200;
  auto primary = service.submit(spec);
  awaitRunning(primary);
  spec.name = "follower";
  auto follower = service.submit(spec);

  ASSERT_EQ(primary->wait(), JobPhase::Completed);
  ASSERT_EQ(follower->wait(), JobPhase::Completed);
  // The follower merged into the running execution (or, if the primary won
  // the race and settled first, was served from the product cache); either
  // way exactly one attempt executed.
  EXPECT_TRUE(follower->coalesced || follower->cacheHit);
  EXPECT_EQ(service.report().executedAttempts, 1u);
  EXPECT_EQ(blobMd5(follower->products, "surface.bin"),
            blobMd5(primary->products, "surface.bin"));
  fs::remove_all(work);
}

TEST(ScenarioService, RunsRuptureScenarioToFaultHistoryProduct) {
  const fs::path work = tempDir("svc-rupture");
  ServiceConfig cfg;
  cfg.coreBudget = 2;
  cfg.workDir = work.string();
  ScenarioService service(cfg);

  ScenarioSpec spec;
  spec.kind = ScenarioKind::Rupture;
  spec.nranks = 2;
  spec.steps = 16;
  spec.h = 600.0;
  // Big enough that the 4 km nucleation-radius floor stays under the
  // preflight's 25% nucleation-patch allowance.
  spec.lengthKm = 36.0;
  spec.depthKm = 12.0;
  spec.seed = 42;
  spec.name = "small-rupture";
  auto job = service.submit(spec);
  ASSERT_EQ(job->wait(), JobPhase::Completed) << jobError(job);

  const ArtifactBlob* history = job->products.find("fault_history");
  ASSERT_NE(history, nullptr);
  EXPECT_FALSE(history->bytes.empty());
  const auto decoded = deserializeFaultHistory(history->bytes);
  EXPECT_GT(decoded.dt, 0.0);

  const auto report = service.report();
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].kind, "rupture");
  EXPECT_TRUE(validateServiceReportJson(toJson(report)).empty());
  fs::remove_all(work);
}

}  // namespace
}  // namespace awp::sched
