// Tests for dSrcG (kinematic + rupture-derived sources), the fault trace
// geometry, and the PetaSrcP spatial/temporal source partitioner.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>

#include "source/dsrcg.hpp"
#include "source/petasrcp.hpp"
#include "source/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace awp::source {
namespace {

TEST(FaultTrace, StraightLengthAndDirections) {
  const auto t = FaultTrace::straight(1000.0, 9000.0, 500.0);
  EXPECT_DOUBLE_EQ(t.length(), 8000.0);
  const auto s = t.at(4000.0);
  EXPECT_DOUBLE_EQ(s.position.x, 5000.0);
  EXPECT_DOUBLE_EQ(s.position.y, 500.0);
  EXPECT_DOUBLE_EQ(s.strikeX, 1.0);
  EXPECT_DOUBLE_EQ(s.strikeY, 0.0);
  EXPECT_DOUBLE_EQ(s.normalX, 0.0);
  EXPECT_DOUBLE_EQ(s.normalY, 1.0);
}

TEST(FaultTrace, BentTraceHasSegmentsAndBow) {
  const auto t = FaultTrace::bent(0.0, 0.0, 47000.0, 0.0, 47, 3000.0);
  EXPECT_EQ(t.segmentCount(), 47u);  // M8 used a 47-segment approximation
  EXPECT_GT(t.length(), 47000.0);    // bowing lengthens the trace
  // Mid-trace deviates by the bend amplitude.
  const auto mid = t.at(t.length() / 2.0);
  EXPECT_NEAR(mid.position.y, 3000.0, 200.0);
  // Strike rotates along the bend.
  const auto early = t.at(t.length() * 0.1);
  EXPECT_GT(early.strikeY, 0.0);
  const auto late = t.at(t.length() * 0.9);
  EXPECT_LT(late.strikeY, 0.0);
}

TEST(FaultTrace, ClampsOutOfRangeArclength) {
  const auto t = FaultTrace::straight(0.0, 1000.0, 0.0);
  EXPECT_DOUBLE_EQ(t.at(-5.0).position.x, 0.0);
  EXPECT_DOUBLE_EQ(t.at(99999.0).position.x, 1000.0);
}

WaveModelTarget smallTarget() {
  WaveModelTarget t;
  t.dims = {120, 60, 30};
  t.h = 500.0;
  t.dt = 0.02;
  return t;
}

TEST(KinematicSource, HitsTargetMoment) {
  KinematicScenario sc;
  sc.faultLength = 30e3;
  sc.faultDepth = 10e3;
  sc.targetMw = 7.0;
  const auto trace = FaultTrace::straight(10e3, 40e3, 15e3);
  const auto sources = kinematicSource(sc, trace, smallTarget());
  ASSERT_FALSE(sources.empty());
  const double m0 = totalMoment(sources, smallTarget().dt);
  const double m0Target = std::pow(10.0, 1.5 * 7.0 + 9.1);
  EXPECT_NEAR(m0 / m0Target, 1.0, 0.1);
}

TEST(KinematicSource, PureStrikeSlipOnStraightTrace) {
  KinematicScenario sc;
  sc.faultLength = 20e3;
  sc.faultDepth = 8e3;
  const auto trace = FaultTrace::straight(10e3, 30e3, 15e3);
  const auto sources = kinematicSource(sc, trace, smallTarget());
  for (const auto& s : sources) {
    // Strike along x, normal along y: only Mxy is non-zero.
    EXPECT_TRUE(s.mdot[core::MXX].empty());
    EXPECT_TRUE(s.mdot[core::MYY].empty());
    EXPECT_FALSE(s.mdot[core::MXY].empty());
  }
}

TEST(KinematicSource, RuptureDirectionControlsTiming) {
  // TS-K style experiment: the same fault ruptured SE-NW vs NW-SE
  // (Fig 15). Reversing the direction must reverse the timing gradient.
  KinematicScenario sc;
  sc.faultLength = 30e3;
  sc.faultDepth = 6e3;
  const auto trace = FaultTrace::straight(10e3, 40e3, 15e3);
  const auto target = smallTarget();

  auto onsetNear = [&](const std::vector<core::MomentRateSource>& sources,
                       std::size_t giWanted) {
    double best = 1e9;
    std::size_t onset = 0;
    for (const auto& s : sources) {
      const double d = std::abs(static_cast<double>(s.gi) -
                                static_cast<double>(giWanted));
      if (d < best) {
        best = d;
        const auto& m = s.mdot[core::MXY];
        std::size_t t = 0;
        while (t < m.size() && m[t] == 0.0f) ++t;
        onset = t;
      }
    }
    return onset;
  };

  sc.reverseDirection = false;
  const auto forward = kinematicSource(sc, trace, target);
  sc.reverseDirection = true;
  const auto reverse = kinematicSource(sc, trace, target);

  // Forward: early near the start (gi ~ 25), late near the end (gi ~ 75).
  EXPECT_LT(onsetNear(forward, 25), onsetNear(forward, 75));
  EXPECT_GT(onsetNear(reverse, 25), onsetNear(reverse, 75));
}

rupture::FaultHistory syntheticHistory() {
  rupture::FaultHistory h;
  h.nx = 20;
  h.nz = 10;
  h.h = 500.0;
  h.dt = 0.01;
  h.timeDecimation = 1;
  h.recordedSteps = 50;
  const std::size_t n = h.nx * h.nz;
  h.finalSlip.assign(n, 1.0f);
  h.peakSlipRate.assign(n, 1.0f);
  h.ruptureTime.assign(n, 0.5f);
  h.rigidity.assign(n, 3.0e10f);
  h.slipRateX.assign(n * h.recordedSteps, 0.0f);
  h.slipRateZ.assign(n * h.recordedSteps, 0.0f);
  // A 0.5 s boxcar slip rate of 2 m/s -> 1 m of slip per node.
  for (std::size_t node = 0; node < n; ++node)
    for (std::size_t t = 0; t < 50; ++t)
      h.slipRateX[node * h.recordedSteps + t] = 2.0f;
  return h;
}

TEST(FromRupture, PreservesMomentWithinFilterLoss) {
  const auto h = syntheticHistory();
  const auto trace = FaultTrace::straight(10e3, 20e3, 15e3);
  const auto target = smallTarget();
  const auto sources = fromRupture(h, trace, target, FilterConfig{});
  ASSERT_FALSE(sources.empty());

  // Expected moment: mu * A * slip summed over nodes.
  const double expected = 3.0e10 * 500.0 * 500.0 * 1.0 *
                          static_cast<double>(h.nx * h.nz);
  const double got = totalMoment(sources, target.dt);
  EXPECT_NEAR(got / expected, 1.0, 0.15);
}

TEST(FromRupture, MapsDepthOntoWaveGrid) {
  const auto h = syntheticHistory();
  const auto trace = FaultTrace::straight(10e3, 20e3, 15e3);
  const auto target = smallTarget();
  const auto sources = fromRupture(h, trace, target, FilterConfig{});
  // Surface row of the fault (k = nz-1, depth 0) must land at the wave
  // grid's top plane; deepest row ~4.5 km -> 9 cells below.
  std::size_t gkMax = 0, gkMin = target.dims.nz;
  for (const auto& s : sources) {
    gkMax = std::max(gkMax, s.gk);
    gkMin = std::min(gkMin, s.gk);
  }
  EXPECT_EQ(gkMax, target.dims.nz - 1);
  EXPECT_EQ(gkMin, target.dims.nz - 1 - 9);
}

TEST(FromRupture, FilterRemovesHighFrequency) {
  // A slip-rate history alternating each sample (Nyquist) must be almost
  // entirely removed by the 2 Hz low-pass.
  auto h = syntheticHistory();
  const std::size_t n = h.nx * h.nz;
  for (std::size_t node = 0; node < n; ++node)
    for (std::size_t t = 0; t < h.recordedSteps; ++t)
      h.slipRateX[node * h.recordedSteps + t] = (t % 2 == 0) ? 2.0f : -2.0f;
  const auto trace = FaultTrace::straight(10e3, 20e3, 15e3);
  const auto sources = fromRupture(h, trace, smallTarget(), FilterConfig{});
  const double m0 = totalMoment(sources, smallTarget().dt);
  // vs ~1.5e18 for the boxcar: >97% of the oscillatory moment removed.
  EXPECT_LT(m0, 0.03 * 1.5e18);
}

class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("awp_src_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~PartitionTest() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(PartitionTest, RoundTripAcrossRanksAndSegments) {
  // Build clustered sources (the paper: "the sources are highly
  // clustered"), partition over a 2x2x1 topology into 3 segments, reload
  // everything and compare.
  std::vector<core::MomentRateSource> sources;
  Rng rng(3);
  for (int s = 0; s < 40; ++s) {
    core::MomentRateSource src;
    // Clustered but unique positions (duplicates would make the
    // reassembly comparison ambiguous).
    src.gi = 10 + static_cast<std::size_t>(s) % 20;
    src.gj = 5 + (static_cast<std::size_t>(s) / 20) % 6;
    src.gk = 2 + (static_cast<std::size_t>(s) / 5) % 8;
    src.mdot[core::MXY].resize(25);
    for (auto& v : src.mdot[core::MXY])
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
    sources.push_back(std::move(src));
  }

  vcluster::CartTopology topo(vcluster::Dims3{2, 2, 1});
  const grid::GridDims dims{40, 20, 16};
  const auto info =
      partitionSources(sources, topo, dims, 10, dir_.string());
  EXPECT_EQ(info.segments, 3);  // 25 steps / 10 per segment
  EXPECT_EQ(info.totalSteps, 25u);

  // Reassemble and compare against the originals.
  std::size_t found = 0;
  for (int rank = 0; rank < topo.size(); ++rank) {
    std::vector<core::MomentRateSource> assembled;
    for (int seg = 0; seg < info.segments; ++seg) {
      const auto part = loadSegment(dir_.string(), rank, seg);
      if (seg == 0) {
        assembled = part;
      } else {
        ASSERT_EQ(part.size(), assembled.size());
        for (std::size_t s = 0; s < part.size(); ++s) {
          for (int c = 0; c < 6; ++c) {
            auto& dst = assembled[s].mdot[static_cast<std::size_t>(c)];
            const auto& add = part[s].mdot[static_cast<std::size_t>(c)];
            if (add.size() > dst.size()) dst.resize(add.size(), 0.0f);
            for (std::size_t t = 0; t < add.size(); ++t) dst[t] += add[t];
          }
        }
      }
    }
    for (const auto& a : assembled) {
      // Match against the original source at the same point.
      for (const auto& o : sources) {
        if (o.gi != a.gi || o.gj != a.gj || o.gk != a.gk) continue;
        ASSERT_EQ(a.mdot[core::MXY].size(), o.mdot[core::MXY].size());
        for (std::size_t t = 0; t < o.mdot[core::MXY].size(); ++t)
          ASSERT_FLOAT_EQ(a.mdot[core::MXY][t], o.mdot[core::MXY][t]);
        ++found;
        break;
      }
    }
  }
  EXPECT_EQ(found, sources.size());
}

TEST_F(PartitionTest, TemporalSplitReducesMemoryHighWater) {
  // §III.D: "To fit the large data into the processor memory, we further
  // decompose the spatially partitioned source files by time."
  std::vector<core::MomentRateSource> sources;
  for (int s = 0; s < 10; ++s) {
    core::MomentRateSource src;
    src.gi = 2 + static_cast<std::size_t>(s) % 4;
    src.gj = 2;
    src.gk = 2;
    src.mdot[core::MXY].assign(3000, 1.0f);
    sources.push_back(std::move(src));
  }
  vcluster::CartTopology topo(vcluster::Dims3{1, 1, 1});
  const grid::GridDims dims{8, 8, 8};

  const auto whole =
      partitionSources(sources, topo, dims, 3000, (dir_ / "a").string());
  const auto split =
      partitionSources(sources, topo, dims, 300, (dir_ / "b").string());
  EXPECT_EQ(split.segments, 10);
  EXPECT_LT(split.maxFileBytes, whole.maxFileBytes / 5);

  const auto reread = readPartitionInfo((dir_ / "b").string());
  EXPECT_EQ(reread.segments, split.segments);
  EXPECT_EQ(reread.totalBytes, split.totalBytes);
}

}  // namespace
}  // namespace awp::source
