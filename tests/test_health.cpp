// Health-guard tests: preflight collective fail-fast, the in-loop blow-up
// monitor with rollback-and-resume through the checkpoint store, the
// collective checkpoint veto, the rank watchdog driven by the fault
// injector's rank-stall site, and the load-path material validation.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "core/runtime_config.hpp"
#include "core/solver.hpp"
#include "fault/injector.hpp"
#include "health/guard.hpp"
#include "health/monitor.hpp"
#include "health/preflight.hpp"
#include "health/verdict.hpp"
#include "health/watchdog.hpp"
#include "io/checkpoint.hpp"
#include "mesh/partitioner.hpp"
#include "vcluster/cluster.hpp"
#include "vmodel/material.hpp"

namespace awp {
namespace {

using vcluster::CartTopology;
using vcluster::Dims3;
using vcluster::ThreadCluster;

class HealthTest : public ::testing::Test {
 protected:
  HealthTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("awp_health_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~HealthTest() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

// --- verdict lattice -------------------------------------------------------

TEST(Verdict, LatticeCombinesToWorst) {
  using health::Verdict;
  EXPECT_EQ(health::worse(Verdict::Healthy, Verdict::Degraded),
            Verdict::Degraded);
  EXPECT_EQ(health::worse(Verdict::Fatal, Verdict::Degraded), Verdict::Fatal);
  EXPECT_EQ(health::decode(health::encode(Verdict::Fatal)), Verdict::Fatal);
  EXPECT_EQ(health::decode(0), Verdict::Healthy);
}

// --- material admissibility ------------------------------------------------

TEST(MaterialIssue, FlagsUnphysicalMaterials) {
  EXPECT_EQ(vmodel::materialIssue({5000.0f, 2900.0f, 2700.0f}), nullptr);
  EXPECT_STREQ(vmodel::materialIssue({5000.0f, 0.0f, 2700.0f}), "vs <= 0");
  EXPECT_STREQ(vmodel::materialIssue({5000.0f, -100.0f, 2700.0f}), "vs <= 0");
  EXPECT_STREQ(vmodel::materialIssue({5000.0f, 2900.0f, -1.0f}), "rho <= 0");
  EXPECT_STREQ(vmodel::materialIssue({2000.0f, 2900.0f, 2700.0f}),
               "vp <= vs");
  EXPECT_STREQ(vmodel::materialIssue({NAN, 2900.0f, 2700.0f}),
               "non-finite vp/vs/rho");
}

TEST(MaterialIssue, ValidateBlockNamesTheCell) {
  mesh::MeshBlock block;
  block.spec.x = {0, 2};
  block.spec.y = {0, 2};
  block.spec.z = {0, 1};
  block.points.assign(4, vmodel::Material{5000.0f, 2900.0f, 2700.0f});
  EXPECT_NO_THROW(mesh::validateBlock(block, "test"));
  block.at(1, 1, 0).vs = -5.0f;
  try {
    mesh::validateBlock(block, "somefile.bin");
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("somefile.bin"), std::string::npos) << what;
    EXPECT_NE(what.find("vs <= 0"), std::string::npos) << what;
    EXPECT_NE(what.find("(1, 1, 0)"), std::string::npos) << what;
  }
}

TEST_F(HealthTest, PrePartitionedLoadRejectsCorruptVs) {
  // A mesh block file whose third cell has a negative Vs must be rejected
  // at load time with a clear error, not fed to the kernels as mu = 25e9.
  const std::string path = (dir_ / "mesh_rank0.bin").string();
  {
    const std::uint64_t header[8] = {0x4157504d424c4b31ULL,  // AWPMBLK1
                                     0, 0, 2, 0, 2, 0, 2};
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(header), sizeof(header));
    for (int n = 0; n < 8; ++n) {
      vmodel::Material m{5000.0f, 2900.0f, 2700.0f};
      if (n == 2) m.vs = -437.0f;
      f.write(reinterpret_cast<const char*>(&m), sizeof(m));
    }
  }
  try {
    mesh::readPrePartitioned(dir_.string(), 0);
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("vs <= 0"), std::string::npos) << what;
    EXPECT_NE(what.find("mesh_rank0.bin"), std::string::npos) << what;
  }
}

TEST(MaterialIssue, GridRejectsBadUniformMaterial) {
  grid::StaggeredGrid g({4, 4, 4}, 100.0, 0.001);
  EXPECT_THROW(g.setUniformMaterial({5000.0f, 0.0f, 2700.0f}), Error);
}

// --- derived dt ------------------------------------------------------------

TEST(DerivedDt, ExposedOnSolver) {
  ThreadCluster::run(1, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{1, 1, 1});
    core::SolverConfig config;
    config.globalDims = {12, 10, 8};
    config.h = 600.0;
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5200.0f, 3000.0f, 2700.0f});
    EXPECT_TRUE(solver.dtDerived());
    EXPECT_NEAR(solver.dt(), 0.45 * 600.0 / 5200.0, 1e-6);
    EXPECT_EQ(solver.dt(), solver.config().dt);
  });
  ThreadCluster::run(1, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{1, 1, 1});
    core::SolverConfig config;
    config.globalDims = {12, 10, 8};
    config.h = 600.0;
    config.dt = 0.01;
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5200.0f, 3000.0f, 2700.0f});
    EXPECT_FALSE(solver.dtDerived());
    EXPECT_EQ(solver.dt(), 0.01);
  });
}

// --- preflight -------------------------------------------------------------

// Run a 2-rank solver with `mutate` applied to the config/solver and return
// the preflight error message ("" if no throw).
template <typename ConfigFn, typename SolverFn>
std::string preflightFailure(ConfigFn&& configure, SolverFn&& prepare) {
  std::string message;
  try {
    ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
      CartTopology topo(Dims3{2, 1, 1});
      core::SolverConfig config;
      config.globalDims = {16, 12, 10};
      config.h = 600.0;
      config.spongeWidth = 3;  // the default 20 cannot fit this grid
      config.health.enabled = true;
      vmodel::Material material{5200.0f, 3000.0f, 2700.0f};
      configure(config, material);
      core::WaveSolver solver(comm, topo, config, material);
      prepare(solver);
      solver.run(10);
    });
  } catch (const Error& e) {
    message = e.what();
  }
  return message;
}

TEST(Preflight, RejectsVpVsRatioBelowSqrt2) {
  const std::string what = preflightFailure(
      [](core::SolverConfig&, vmodel::Material& m) {
        m = {3000.0f, 2900.0f, 2700.0f};  // lambda < 0
      },
      [](core::WaveSolver&) {});
  EXPECT_NE(what.find("preflight failed"), std::string::npos) << what;
  EXPECT_NE(what.find("below sqrt(2)"), std::string::npos) << what;
}

TEST(Preflight, RejectsUnstableDt) {
  const std::string what = preflightFailure(
      [](core::SolverConfig& c, vmodel::Material&) { c.dt = 0.1; },
      [](core::WaveSolver&) {});
  EXPECT_NE(what.find("CFL violated"), std::string::npos) << what;
}

TEST(Preflight, RejectsOverlappingSpongeLayers) {
  const std::string what = preflightFailure(
      [](core::SolverConfig& c, vmodel::Material&) { c.spongeWidth = 10; },
      [](core::WaveSolver&) {});
  EXPECT_NE(what.find("does not fit the global grid"), std::string::npos)
      << what;
}

TEST(Preflight, RejectsSourceOutsideGrid) {
  const std::string what = preflightFailure(
      [](core::SolverConfig&, vmodel::Material&) {},
      [](core::WaveSolver& s) {
        s.addSource(core::explosionPointSource(
            1000, 5, 5, core::rickerWavelet(2.0, 0.5, 0.01, 10, 1e15)));
      });
  EXPECT_NE(what.find("outside the global grid"), std::string::npos) << what;
}

TEST(Preflight, DegradedVerdictDoesNotAbort) {
  // A source history longer than the planned run is suspicious (the tail
  // is silently truncated) but must not kill the job.
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{2, 1, 1});
    core::SolverConfig config;
    config.globalDims = {16, 12, 10};
    config.h = 600.0;
    config.spongeWidth = 3;
    config.health.enabled = true;
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5200.0f, 3000.0f, 2700.0f});
    solver.addSource(core::explosionPointSource(
        8, 6, 5,
        core::rickerWavelet(2.0, 0.5, solver.dt(), 100, 1e15)));
    solver.run(10);
    EXPECT_EQ(solver.currentStep(), 10u);
    ASSERT_NE(solver.healthGuard(), nullptr);
    const auto& events = solver.healthGuard()->events();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events[0].kind, health::EventKind::Preflight);
    EXPECT_EQ(events[0].verdict, health::Verdict::Degraded);
    EXPECT_NE(events[0].detail.find("tail truncated"), std::string::npos);
  });
}

TEST(Preflight, PmlCannotSpanRankBoundaries) {
  // Unit-level: a face rank whose extent is narrower than the PML width is
  // Fatal (split-field zones hold private state), while the sponge taper
  // only degrades.
  grid::StaggeredGrid g({6, 20, 12}, 600.0, 0.001);
  g.setUniformMaterial({5200.0f, 3000.0f, 2700.0f});
  health::PreflightContext ctx;
  ctx.grid = &g;
  ctx.globalDims = {24, 20, 12};
  ctx.dt = 0.9 * g.stableDt();
  ctx.h = 600.0;
  ctx.boundary = health::BoundaryKind::Pml;
  ctx.boundaryWidth = 8;
  ctx.touchesXMin = true;
  const auto pml = health::runPreflight(ctx);
  EXPECT_EQ(pml.verdict, health::Verdict::Fatal);
  EXPECT_NE(health::describeIssues(pml.issues).find("cannot span ranks"),
            std::string::npos);

  ctx.boundary = health::BoundaryKind::Sponge;
  const auto sponge = health::runPreflight(ctx);
  EXPECT_EQ(sponge.verdict, health::Verdict::Degraded);
}

TEST(Preflight, FlagsExtremeDecomposition) {
  // Topology check: halo width vs subdomain extent on partitioned axes.
  // A sliver rank (extent below the halo width) is Fatal — its ghost
  // planes cannot be sourced from its own cells; collectivePreflight then
  // aborts every rank together instead of deadlocking the exchange.
  grid::StaggeredGrid g({1, 20, 12}, 600.0, 0.001);
  g.setUniformMaterial({5200.0f, 3000.0f, 2700.0f});
  health::PreflightContext ctx;
  ctx.grid = &g;
  ctx.globalDims = {64, 20, 12};
  ctx.dt = 0.9 * g.stableDt();
  ctx.h = 600.0;
  ctx.decompX = 64;
  ctx.haloWidth = grid::kHalo;
  const auto fatal = health::runPreflight(ctx);
  EXPECT_EQ(fatal.verdict, health::Verdict::Fatal);
  EXPECT_NE(
      health::describeIssues(fatal.issues).find("decomposition too fine"),
      std::string::npos);

  // The same sliver on an UNPARTITIONED axis exchanges nothing: clean.
  ctx.decompX = 1;
  EXPECT_EQ(health::runPreflight(ctx).verdict, health::Verdict::Healthy);

  // haloWidth = 0 opts out (callers without topology information).
  ctx.decompX = 64;
  ctx.haloWidth = 0;
  EXPECT_EQ(health::runPreflight(ctx).verdict, health::Verdict::Healthy);

  // Between one and two halo widths the exchange regions overlap: legal
  // but pathological — Degraded, not Fatal.
  grid::StaggeredGrid g3({3, 20, 12}, 600.0, 0.001);
  g3.setUniformMaterial({5200.0f, 3000.0f, 2700.0f});
  ctx.grid = &g3;
  ctx.dt = 0.9 * g3.stableDt();
  ctx.decompX = 4;
  ctx.haloWidth = grid::kHalo;
  const auto degraded = health::runPreflight(ctx);
  EXPECT_EQ(degraded.verdict, health::Verdict::Degraded);
  EXPECT_NE(
      health::describeIssues(degraded.issues).find("decomposition is extreme"),
      std::string::npos);
}

TEST(Preflight, ExtremeDecompositionDegradesEndToEnd) {
  // Solver-level wiring: a 2-way x split of a 5-cell axis leaves extents of
  // 3 and 2 — above the halo width (so init accepts it) but below twice the
  // halo width. The preflight must record the Degraded verdict and the run
  // must still complete.
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    CartTopology topo(Dims3{2, 1, 1});
    core::SolverConfig config;
    config.globalDims = {5, 12, 10};
    config.h = 600.0;
    config.absorbing = core::AbsorbingType::None;
    config.health.enabled = true;
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5200.0f, 3000.0f, 2700.0f});
    solver.run(4);
    EXPECT_EQ(solver.currentStep(), 4u);
    ASSERT_NE(solver.healthGuard(), nullptr);
    const auto& events = solver.healthGuard()->events();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events[0].kind, health::EventKind::Preflight);
    EXPECT_EQ(events[0].verdict, health::Verdict::Degraded);
    EXPECT_NE(events[0].detail.find("decomposition is extreme"),
              std::string::npos);
  });
}

// --- monitor ---------------------------------------------------------------

TEST(Monitor, SustainedGrowthPromotesToFatal) {
  grid::StaggeredGrid g({6, 6, 6}, 100.0, 0.001);
  g.setUniformMaterial({5000.0f, 2900.0f, 2700.0f});
  health::MonitorConfig mc;
  mc.growthLimit = 10.0;
  mc.degradedFatalAfter = 2;
  health::FieldMonitor monitor(mc);

  g.u.fill(1.0f);
  EXPECT_EQ(monitor.scan(g).verdict, health::Verdict::Healthy);
  g.u.fill(100.0f);
  EXPECT_EQ(monitor.scan(g).verdict, health::Verdict::Degraded);
  g.u.fill(10000.0f);
  const auto fatal = monitor.scan(g);
  EXPECT_EQ(fatal.verdict, health::Verdict::Fatal);
  EXPECT_NE(fatal.detail.find("blow-up"), std::string::npos);

  // A rollback forgets the growth track.
  monitor.resetAfterRollback();
  g.u.fill(1e6f);
  EXPECT_EQ(monitor.scan(g).verdict, health::Verdict::Healthy);
}

TEST(Monitor, NamesTheFirstNonFiniteSample) {
  grid::StaggeredGrid g({6, 6, 6}, 100.0, 0.001);
  g.setUniformMaterial({5000.0f, 2900.0f, 2700.0f});
  health::FieldMonitor monitor({});
  EXPECT_TRUE(health::FieldMonitor::allFinite(g));
  g.xy(grid::kHalo + 3, grid::kHalo + 1, grid::kHalo + 2) =
      std::numeric_limits<float>::infinity();
  EXPECT_FALSE(health::FieldMonitor::allFinite(g));
  const auto r = monitor.scan(g);
  EXPECT_EQ(r.verdict, health::Verdict::Fatal);
  EXPECT_EQ(r.field, "xy");
  EXPECT_NE(r.detail.find("non-finite xy"), std::string::npos);
  EXPECT_NE(r.detail.find("(3,1,2)"), std::string::npos);
}

// --- checkpoint generation inspection --------------------------------------

TEST_F(HealthTest, ValidStepsListsIntactGenerations) {
  io::CheckpointStore store((dir_ / "ckpt").string());
  const std::vector<std::byte> state(256, std::byte{7});
  EXPECT_TRUE(store.validSteps(0).empty());
  store.write(0, 10, state);
  store.write(0, 20, state);
  const auto steps = store.validSteps(0);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0], 20u);  // newest first
  EXPECT_EQ(steps[1], 10u);
}

// --- the flagship scenario: poison -> detect -> rollback -> complete -------

TEST_F(HealthTest, PoisonedCellRollsBackAndCompletes) {
  const grid::GridDims dims{28, 20, 14};
  const CartTopology topo(Dims3{2, 1, 1});
  const std::string ckptDir = (dir_ / "ckpt").string();

  // NaN injected on rank 0 while entering step 22; checkpoints at steps
  // 10 and 20; monitor scans every 5 steps. Expected: detection at the
  // step-25 scan, rollback to step 20, dt halved, clean completion.
  fault::FaultPlan plan;
  plan.poison("solver.step", /*rank=*/0, /*occurrence=*/23);
  fault::FaultInjector injector(std::move(plan), /*seed=*/99);
  fault::ScopedInjection scope(injector);

  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    core::SolverConfig config;
    config.globalDims = dims;
    config.h = 600.0;
    config.spongeWidth = 4;
    config.health.enabled = true;
    config.health.monitor.everySteps = 5;
    io::CheckpointStore store(ckptDir);
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5200.0f, 3000.0f, 2700.0f});
    solver.attachCheckpoints(&store, 10);
    solver.addSource(core::explosionPointSource(
        14, 10, 7,
        core::rickerWavelet(2.0, 0.5, solver.dt(), 40, 1e15)));
    const double dt0 = solver.dt();

    solver.run(40);

    EXPECT_EQ(solver.currentStep(), 40u);
    EXPECT_TRUE(health::FieldMonitor::allFinite(solver.grid()));
    EXPECT_DOUBLE_EQ(solver.dt(), 0.5 * dt0);  // one CFL tightening

    ASSERT_NE(solver.healthGuard(), nullptr);
    const auto* guard = solver.healthGuard();
    EXPECT_EQ(guard->rollbacksUsed(), 1);
    // Verdict trail (identical shape on every rank): clean preflight, the
    // Fatal scan naming rank 0, the rollback.
    const auto& events = guard->events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, health::EventKind::Preflight);
    EXPECT_EQ(events[0].verdict, health::Verdict::Healthy);
    EXPECT_EQ(events[1].kind, health::EventKind::Scan);
    EXPECT_EQ(events[1].verdict, health::Verdict::Fatal);
    EXPECT_EQ(events[1].step, 25u);  // within one monitor interval of 22
    EXPECT_EQ(events[1].offenderRank, 0);
    EXPECT_NE(events[1].detail.find("non-finite"), std::string::npos);
    EXPECT_EQ(events[2].kind, health::EventKind::Rollback);
    EXPECT_NE(events[2].detail.find("from step 25 to step 21"),
              std::string::npos);
  });
  EXPECT_EQ(injector.faultsInjected(), 1u);
}

TEST_F(HealthTest, GuardDisabledLetsThePoisonThrough) {
  // Control for the scenario above: the identical injection without the
  // guard runs to completion with a non-finite field — proving the guard
  // (not the injection plumbing) is what saves the run.
  const grid::GridDims dims{28, 20, 14};
  const CartTopology topo(Dims3{2, 1, 1});

  fault::FaultPlan plan;
  plan.poison("solver.step", /*rank=*/0, /*occurrence=*/23);
  fault::FaultInjector injector(std::move(plan), /*seed=*/99);
  fault::ScopedInjection scope(injector);

  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    core::SolverConfig config;
    config.globalDims = dims;
    config.h = 600.0;
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5200.0f, 3000.0f, 2700.0f});
    solver.addSource(core::explosionPointSource(
        14, 10, 7,
        core::rickerWavelet(2.0, 0.5, solver.dt(), 40, 1e15)));
    solver.run(40);
    EXPECT_EQ(solver.currentStep(), 40u);
    if (comm.rank() == 0) {
      EXPECT_FALSE(health::FieldMonitor::allFinite(solver.grid()));
    }
  });
  EXPECT_EQ(injector.faultsInjected(), 1u);
}

TEST_F(HealthTest, CollectiveVetoProtectsTheRollbackTarget) {
  // Checkpoints every 5 steps but scans only every 25: the NaN injected
  // entering step 11 sits undetected across THREE checkpoint cadences.
  // Every rank must veto those writes (rank 1 is clean — a local veto
  // would let it rotate its two generations past the common step 10),
  // so the step-25 scan can still roll everyone back to step 10.
  const grid::GridDims dims{28, 20, 14};
  const CartTopology topo(Dims3{2, 1, 1});
  const std::string ckptDir = (dir_ / "ckpt").string();

  fault::FaultPlan plan;
  plan.poison("solver.step", /*rank=*/0, /*occurrence=*/12);
  fault::FaultInjector injector(std::move(plan), /*seed=*/7);
  fault::ScopedInjection scope(injector);

  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    core::SolverConfig config;
    config.globalDims = dims;
    config.h = 600.0;
    config.spongeWidth = 4;
    config.health.enabled = true;
    config.health.monitor.everySteps = 25;
    io::CheckpointStore store(ckptDir);
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5200.0f, 3000.0f, 2700.0f});
    solver.attachCheckpoints(&store, 5);
    solver.addSource(core::explosionPointSource(
        14, 10, 7,
        core::rickerWavelet(2.0, 0.5, solver.dt(), 30, 1e15)));

    solver.run(30);

    EXPECT_EQ(solver.currentStep(), 30u);
    EXPECT_TRUE(health::FieldMonitor::allFinite(solver.grid()));
    ASSERT_NE(solver.healthGuard(), nullptr);
    const auto* guard = solver.healthGuard();
    EXPECT_EQ(guard->rollbacksUsed(), 1);
    int vetoes = 0;
    for (const auto& e : guard->events())
      if (e.kind == health::EventKind::CheckpointVeto) ++vetoes;
    // The step-15 and step-20 checkpoints carried the poison — vetoed on
    // BOTH ranks. (The step-25 scan fires before the step-25 write, so
    // that one becomes a rollback, not a veto.)
    EXPECT_EQ(vetoes, 2) << "rank " << comm.rank();
  });
}

TEST_F(HealthTest, AbortDumpWhenNothingToRestore) {
  // Without a checkpoint store the guard cannot recover: the run must die
  // on every rank with the structured dump, not hang or return garbage.
  fault::FaultPlan plan;
  plan.poison("solver.step", /*rank=*/0, /*occurrence=*/3);
  fault::FaultInjector injector(std::move(plan), /*seed=*/5);
  fault::ScopedInjection scope(injector);

  std::string what;
  try {
    ThreadCluster::run(1, [&](vcluster::Communicator& comm) {
      CartTopology topo(Dims3{1, 1, 1});
      core::SolverConfig config;
      config.globalDims = {16, 12, 10};
      config.h = 600.0;
      config.spongeWidth = 3;
      config.health.enabled = true;
      config.health.monitor.everySteps = 5;
      core::WaveSolver solver(comm, topo, config,
                              vmodel::Material{5200.0f, 3000.0f, 2700.0f});
      solver.run(10);
    });
  } catch (const Error& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("[health] FATAL at step 5"), std::string::npos) << what;
  EXPECT_NE(what.find("offending rank 0"), std::string::npos) << what;
  EXPECT_NE(what.find("non-finite"), std::string::npos) << what;
  EXPECT_NE(what.find("trail:"), std::string::npos) << what;
}

// --- watchdog --------------------------------------------------------------

TEST(Watchdog, ReportsTheStalledRankInsteadOfHanging) {
  // Rank 1 wedges for 1.2 s entering step 7 (before publishing its beat),
  // so its last heartbeat stays at step 6 while rank 0 beats step 7 and
  // then blocks on the halo exchange. The watchdog must name rank 1.
  const CartTopology topo(Dims3{2, 1, 1});
  health::HeartbeatBoard board(2);
  health::Watchdog watchdog(board, /*stallTimeoutSeconds=*/0.3, nullptr,
                            /*pollIntervalSeconds=*/0.02);

  fault::FaultPlan plan;
  plan.stall("solver.step", /*rank=*/1, /*occurrence=*/8, /*seconds=*/1.2);
  fault::FaultInjector injector(std::move(plan), /*seed=*/3);
  fault::ScopedInjection scope(injector);

  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    core::SolverConfig config;
    config.globalDims = {16, 12, 10};
    config.h = 600.0;
    config.spongeWidth = 3;
    config.health.enabled = true;
    config.health.monitor.everySteps = 0;  // watchdog-only
    config.health.heartbeats = &board;
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5200.0f, 3000.0f, 2700.0f});
    solver.run(20);
    EXPECT_EQ(solver.currentStep(), 20u);
  });
  watchdog.stop();

  const auto reports = watchdog.reports();
  ASSERT_GE(reports.size(), 1u);
  EXPECT_EQ(reports[0].rank, 1);
  EXPECT_EQ(reports[0].lastStep, 6u);
  EXPECT_GE(reports[0].stalledSeconds, 0.3);
  EXPECT_FALSE(reports[0].stalledRanks.empty());
}

TEST(Watchdog, HeartbeatBoardTracksBeats) {
  health::HeartbeatBoard board(3);
  EXPECT_EQ(board.size(), 3);
  EXPECT_FALSE(board.last(1).seen);
  board.beat(1, 42);
  const auto b = board.last(1);
  EXPECT_TRUE(b.seen);
  EXPECT_EQ(b.step, 42u);
  EXPECT_FALSE(board.last(0).seen);
}

// --- comm support ----------------------------------------------------------

TEST(Allgather, CollectsPerRankValuesEverywhere) {
  ThreadCluster::run(3, [&](vcluster::Communicator& comm) {
    const auto all = comm.allgather(10 * (comm.rank() + 1));
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0], 10);
    EXPECT_EQ(all[1], 20);
    EXPECT_EQ(all[2], 30);
  });
}

// --- runtime configuration -------------------------------------------------

TEST(RuntimeConfigHealth, ParsesHealthKeys) {
  const auto config = core::parseRuntimeConfig(
      "health = on\n"
      "health_interval = 10\n"
      "health_max_rollbacks = 2\n"
      "health_dt_tighten = 0.25\n"
      "health_growth_limit = 50\n"
      "health_stall_timeout = 5.5\n");
  const auto& h = config.solver.health;
  EXPECT_TRUE(h.enabled);
  EXPECT_EQ(h.monitor.everySteps, 10);
  EXPECT_EQ(h.maxRollbacks, 2);
  EXPECT_DOUBLE_EQ(h.dtTighten, 0.25);
  EXPECT_DOUBLE_EQ(h.monitor.growthLimit, 50.0);
  EXPECT_DOUBLE_EQ(h.stallTimeoutSeconds, 5.5);
}

TEST(RuntimeConfigHealth, RejectsInvalidValues) {
  EXPECT_THROW(core::parseRuntimeConfig("health_dt_tighten = 1.5\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("health_interval = 0\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("health_growth_limit = 1\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("health_stall_timeout = -1\n"),
               Error);
}

TEST(RuntimeConfigHealth, ParsesRewidenAndTelemetryKeys) {
  const auto config = core::parseRuntimeConfig(
      "health_dt_rewiden_window = 3\n"
      "health_dt_rewiden = 1.5\n"
      "telemetry = on\n"
      "telemetry_interval = 100\n"
      "telemetry_report = Out/Report.json\n"
      "telemetry_trace = Out/trace\n"
      "telemetry_ring = 1024\n");
  EXPECT_EQ(config.solver.health.dtRewidenWindow, 3);
  EXPECT_DOUBLE_EQ(config.solver.health.dtRewiden, 1.5);
  EXPECT_TRUE(config.telemetryEnabled);
  EXPECT_EQ(config.solver.telemetry.reportEverySteps, 100);
  // Path values keep their case (only enum/switch values are folded).
  EXPECT_EQ(config.solver.telemetry.reportPath, "Out/Report.json");
  EXPECT_EQ(config.solver.telemetry.tracePathPrefix, "Out/trace");
  EXPECT_EQ(config.telemetryRingCapacity, 1024u);

  EXPECT_THROW(core::parseRuntimeConfig("health_dt_rewiden = 1\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("health_dt_rewiden_window = -1\n"),
               Error);
  EXPECT_THROW(core::parseRuntimeConfig("telemetry_ring = 0\n"), Error);
  EXPECT_THROW(core::parseRuntimeConfig("telemetry_interval = -5\n"), Error);
}

// --- dt re-widening --------------------------------------------------------

TEST_F(HealthTest, DtRewidensAfterHealthyStreak) {
  // The PoisonedCellRollsBackAndCompletes scenario with re-widening
  // enabled: rollback at the step-25 scan halves dt; the Healthy scans at
  // 30 and 35 complete the streak and dt walks back to the baseline.
  const grid::GridDims dims{28, 20, 14};
  const CartTopology topo(Dims3{2, 1, 1});
  const std::string ckptDir = (dir_ / "ckpt").string();

  fault::FaultPlan plan;
  plan.poison("solver.step", /*rank=*/0, /*occurrence=*/23);
  fault::FaultInjector injector(std::move(plan), /*seed=*/99);
  fault::ScopedInjection scope(injector);

  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    core::SolverConfig config;
    config.globalDims = dims;
    config.h = 600.0;
    config.spongeWidth = 4;
    config.health.enabled = true;
    config.health.monitor.everySteps = 5;
    config.health.dtRewidenWindow = 2;
    config.health.dtRewiden = 2.0;
    io::CheckpointStore store(ckptDir);
    core::WaveSolver solver(comm, topo, config,
                            vmodel::Material{5200.0f, 3000.0f, 2700.0f});
    solver.attachCheckpoints(&store, 10);
    solver.addSource(core::explosionPointSource(
        14, 10, 7,
        core::rickerWavelet(2.0, 0.5, solver.dt(), 40, 1e15)));
    const double dt0 = solver.dt();

    solver.run(40);

    EXPECT_EQ(solver.currentStep(), 40u);
    EXPECT_TRUE(health::FieldMonitor::allFinite(solver.grid()));
    // dt walked all the way back to the pre-rollback baseline, and the
    // walk-back never overshoots it.
    EXPECT_DOUBLE_EQ(solver.dt(), dt0);

    ASSERT_NE(solver.healthGuard(), nullptr);
    const auto& events = solver.healthGuard()->events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[2].kind, health::EventKind::Rollback);
    EXPECT_EQ(events[3].kind, health::EventKind::DtRewiden);
    EXPECT_NE(events[3].detail.find("after 2 consecutive Healthy scans"),
              std::string::npos);
    // Exactly one widening: once dt is back at the baseline, later Healthy
    // streaks must not push it beyond.
    int rewidens = 0;
    for (const auto& e : events)
      if (e.kind == health::EventKind::DtRewiden) ++rewidens;
    EXPECT_EQ(rewidens, 1);
  });
  EXPECT_EQ(injector.faultsInjected(), 1u);
}

// --- rupture preflight -----------------------------------------------------

health::RupturePreflightContext ruptureCtx(std::size_t nodes,
                                           std::size_t supercritical) {
  health::RupturePreflightContext ctx;
  ctx.nodes.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    health::RuptureNode node;
    node.gi = n;
    node.gk = 3;
    node.sigmaN = -60.0e6;  // 60 MPa compression
    node.depth = 5000.0;
    // Static strength = cohesion + muS * 60 MPa = 1 MPa + 45 MPa.
    node.tau0 = n < supercritical ? 50.0e6 : 20.0e6;
    ctx.nodes.push_back(node);
  }
  return ctx;
}

TEST(RupturePreflight, AcceptsBoundedNucleationPatch) {
  std::size_t supercritical = 0;
  const auto report =
      health::runRupturePreflight(ruptureCtx(100, 10), &supercritical);
  EXPECT_EQ(report.verdict, health::Verdict::Healthy);
  EXPECT_EQ(supercritical, 10u);
}

TEST(RupturePreflight, RejectsUnphysicalFrictionParameters) {
  auto ctx = ruptureCtx(4, 1);
  ctx.dc = 0.0;
  auto report = health::runRupturePreflight(ctx, nullptr);
  EXPECT_EQ(report.verdict, health::Verdict::Fatal);
  EXPECT_NE(health::describeIssues(report.issues).find("dc"),
            std::string::npos);

  ctx = ruptureCtx(4, 1);
  ctx.muS = -0.1;
  EXPECT_EQ(health::runRupturePreflight(ctx, nullptr).verdict,
            health::Verdict::Fatal);

  ctx = ruptureCtx(4, 1);
  ctx.cohesion = -1.0;
  EXPECT_EQ(health::runRupturePreflight(ctx, nullptr).verdict,
            health::Verdict::Fatal);

  // Slip-strengthening is suspicious but survivable.
  ctx = ruptureCtx(4, 1);
  ctx.muD = ctx.muS + 0.1;
  EXPECT_EQ(health::runRupturePreflight(ctx, nullptr).verdict,
            health::Verdict::Degraded);
}

TEST(RupturePreflight, FlagsBrokenNodesWithCellDiagnostics) {
  auto ctx = ruptureCtx(8, 1);
  ctx.nodes[5].tau0 = std::numeric_limits<double>::quiet_NaN();
  const auto report = health::runRupturePreflight(ctx, nullptr);
  EXPECT_EQ(report.verdict, health::Verdict::Fatal);
  // The diagnostic names the fault cell.
  EXPECT_NE(health::describeIssues(report.issues).find("(5,3)"),
            std::string::npos);

  auto tensile = ruptureCtx(8, 1);
  tensile.nodes[2].sigmaN = 1.0e6;  // tension
  EXPECT_EQ(health::runRupturePreflight(tensile, nullptr).verdict,
            health::Verdict::Degraded);
}

TEST(RupturePreflight, CollectiveJudgesGlobalSupercriticalFraction) {
  // The nucleation patch lives entirely on rank 0: locally 40% of rank 0's
  // nodes are supercritical, globally only 10% — the collective check must
  // pass where a per-rank check would abort.
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    const auto ctx =
        comm.rank() == 0 ? ruptureCtx(25, 10) : ruptureCtx(75, 0);
    const auto report = health::collectiveRupturePreflight(comm, ctx);
    EXPECT_EQ(report.verdict, health::Verdict::Healthy);
  });

  // A fault supercritical over half its area aborts on EVERY rank, with
  // the per-rank verdict table in the message.
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    const auto ctx =
        comm.rank() == 0 ? ruptureCtx(50, 50) : ruptureCtx(50, 0);
    try {
      health::collectiveRupturePreflight(comm, ctx);
      ADD_FAILURE() << "expected Fatal on rank " << comm.rank();
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("rupture preflight failed"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find("r0=Fatal"), std::string::npos);
    }
  });

  // Zero supercritical nodes anywhere: Degraded (cannot nucleate), no
  // throw.
  ThreadCluster::run(2, [&](vcluster::Communicator& comm) {
    const auto report =
        health::collectiveRupturePreflight(comm, ruptureCtx(50, 0));
    EXPECT_EQ(report.verdict, health::Verdict::Degraded);
    EXPECT_NE(health::describeIssues(report.issues).find("cannot nucleate"),
              std::string::npos);
  });
}

}  // namespace
}  // namespace awp
