file(REMOVE_RECURSE
  "CMakeFiles/awp_rupture.dir/friction.cpp.o"
  "CMakeFiles/awp_rupture.dir/friction.cpp.o.d"
  "CMakeFiles/awp_rupture.dir/solver.cpp.o"
  "CMakeFiles/awp_rupture.dir/solver.cpp.o.d"
  "CMakeFiles/awp_rupture.dir/stress_model.cpp.o"
  "CMakeFiles/awp_rupture.dir/stress_model.cpp.o.d"
  "libawp_rupture.a"
  "libawp_rupture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_rupture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
