file(REMOVE_RECURSE
  "libawp_rupture.a"
)
