# Empty dependencies file for awp_rupture.
# This may be replaced when dependencies are built.
