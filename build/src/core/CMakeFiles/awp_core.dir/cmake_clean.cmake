file(REMOVE_RECURSE
  "CMakeFiles/awp_core.dir/free_surface.cpp.o"
  "CMakeFiles/awp_core.dir/free_surface.cpp.o.d"
  "CMakeFiles/awp_core.dir/kernels.cpp.o"
  "CMakeFiles/awp_core.dir/kernels.cpp.o.d"
  "CMakeFiles/awp_core.dir/pml.cpp.o"
  "CMakeFiles/awp_core.dir/pml.cpp.o.d"
  "CMakeFiles/awp_core.dir/receivers.cpp.o"
  "CMakeFiles/awp_core.dir/receivers.cpp.o.d"
  "CMakeFiles/awp_core.dir/runtime_config.cpp.o"
  "CMakeFiles/awp_core.dir/runtime_config.cpp.o.d"
  "CMakeFiles/awp_core.dir/solver.cpp.o"
  "CMakeFiles/awp_core.dir/solver.cpp.o.d"
  "CMakeFiles/awp_core.dir/source.cpp.o"
  "CMakeFiles/awp_core.dir/source.cpp.o.d"
  "CMakeFiles/awp_core.dir/sponge.cpp.o"
  "CMakeFiles/awp_core.dir/sponge.cpp.o.d"
  "libawp_core.a"
  "libawp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
