
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/free_surface.cpp" "src/core/CMakeFiles/awp_core.dir/free_surface.cpp.o" "gcc" "src/core/CMakeFiles/awp_core.dir/free_surface.cpp.o.d"
  "/root/repo/src/core/kernels.cpp" "src/core/CMakeFiles/awp_core.dir/kernels.cpp.o" "gcc" "src/core/CMakeFiles/awp_core.dir/kernels.cpp.o.d"
  "/root/repo/src/core/pml.cpp" "src/core/CMakeFiles/awp_core.dir/pml.cpp.o" "gcc" "src/core/CMakeFiles/awp_core.dir/pml.cpp.o.d"
  "/root/repo/src/core/receivers.cpp" "src/core/CMakeFiles/awp_core.dir/receivers.cpp.o" "gcc" "src/core/CMakeFiles/awp_core.dir/receivers.cpp.o.d"
  "/root/repo/src/core/runtime_config.cpp" "src/core/CMakeFiles/awp_core.dir/runtime_config.cpp.o" "gcc" "src/core/CMakeFiles/awp_core.dir/runtime_config.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/awp_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/awp_core.dir/solver.cpp.o.d"
  "/root/repo/src/core/source.cpp" "src/core/CMakeFiles/awp_core.dir/source.cpp.o" "gcc" "src/core/CMakeFiles/awp_core.dir/source.cpp.o.d"
  "/root/repo/src/core/sponge.cpp" "src/core/CMakeFiles/awp_core.dir/sponge.cpp.o" "gcc" "src/core/CMakeFiles/awp_core.dir/sponge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/awp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vcluster/CMakeFiles/awp_vcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/vmodel/CMakeFiles/awp_vmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/awp_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/awp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/awp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/awp_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
