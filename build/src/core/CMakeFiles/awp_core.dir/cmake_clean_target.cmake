file(REMOVE_RECURSE
  "libawp_core.a"
)
