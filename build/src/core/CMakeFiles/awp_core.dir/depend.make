# Empty dependencies file for awp_core.
# This may be replaced when dependencies are built.
