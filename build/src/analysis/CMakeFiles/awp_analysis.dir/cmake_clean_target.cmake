file(REMOVE_RECURSE
  "libawp_analysis.a"
)
