file(REMOVE_RECURSE
  "CMakeFiles/awp_analysis.dir/aval.cpp.o"
  "CMakeFiles/awp_analysis.dir/aval.cpp.o.d"
  "CMakeFiles/awp_analysis.dir/gmpe.cpp.o"
  "CMakeFiles/awp_analysis.dir/gmpe.cpp.o.d"
  "CMakeFiles/awp_analysis.dir/pgv.cpp.o"
  "CMakeFiles/awp_analysis.dir/pgv.cpp.o.d"
  "CMakeFiles/awp_analysis.dir/products.cpp.o"
  "CMakeFiles/awp_analysis.dir/products.cpp.o.d"
  "libawp_analysis.a"
  "libawp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
