# Empty dependencies file for awp_analysis.
# This may be replaced when dependencies are built.
