
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vcluster/cart.cpp" "src/vcluster/CMakeFiles/awp_vcluster.dir/cart.cpp.o" "gcc" "src/vcluster/CMakeFiles/awp_vcluster.dir/cart.cpp.o.d"
  "/root/repo/src/vcluster/cluster.cpp" "src/vcluster/CMakeFiles/awp_vcluster.dir/cluster.cpp.o" "gcc" "src/vcluster/CMakeFiles/awp_vcluster.dir/cluster.cpp.o.d"
  "/root/repo/src/vcluster/comm.cpp" "src/vcluster/CMakeFiles/awp_vcluster.dir/comm.cpp.o" "gcc" "src/vcluster/CMakeFiles/awp_vcluster.dir/comm.cpp.o.d"
  "/root/repo/src/vcluster/mailbox.cpp" "src/vcluster/CMakeFiles/awp_vcluster.dir/mailbox.cpp.o" "gcc" "src/vcluster/CMakeFiles/awp_vcluster.dir/mailbox.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/awp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
