file(REMOVE_RECURSE
  "CMakeFiles/awp_vcluster.dir/cart.cpp.o"
  "CMakeFiles/awp_vcluster.dir/cart.cpp.o.d"
  "CMakeFiles/awp_vcluster.dir/cluster.cpp.o"
  "CMakeFiles/awp_vcluster.dir/cluster.cpp.o.d"
  "CMakeFiles/awp_vcluster.dir/comm.cpp.o"
  "CMakeFiles/awp_vcluster.dir/comm.cpp.o.d"
  "CMakeFiles/awp_vcluster.dir/mailbox.cpp.o"
  "CMakeFiles/awp_vcluster.dir/mailbox.cpp.o.d"
  "libawp_vcluster.a"
  "libawp_vcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_vcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
