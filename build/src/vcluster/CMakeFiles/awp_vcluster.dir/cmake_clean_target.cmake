file(REMOVE_RECURSE
  "libawp_vcluster.a"
)
