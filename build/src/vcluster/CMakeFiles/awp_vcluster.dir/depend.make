# Empty dependencies file for awp_vcluster.
# This may be replaced when dependencies are built.
