file(REMOVE_RECURSE
  "libawp_mesh.a"
)
