file(REMOVE_RECURSE
  "CMakeFiles/awp_mesh.dir/generator.cpp.o"
  "CMakeFiles/awp_mesh.dir/generator.cpp.o.d"
  "CMakeFiles/awp_mesh.dir/mesh_file.cpp.o"
  "CMakeFiles/awp_mesh.dir/mesh_file.cpp.o.d"
  "CMakeFiles/awp_mesh.dir/partitioner.cpp.o"
  "CMakeFiles/awp_mesh.dir/partitioner.cpp.o.d"
  "libawp_mesh.a"
  "libawp_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
