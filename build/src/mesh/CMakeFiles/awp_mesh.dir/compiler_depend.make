# Empty compiler generated dependencies file for awp_mesh.
# This may be replaced when dependencies are built.
