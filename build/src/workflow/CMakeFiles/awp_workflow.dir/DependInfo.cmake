
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/archive.cpp" "src/workflow/CMakeFiles/awp_workflow.dir/archive.cpp.o" "gcc" "src/workflow/CMakeFiles/awp_workflow.dir/archive.cpp.o.d"
  "/root/repo/src/workflow/e2eaw.cpp" "src/workflow/CMakeFiles/awp_workflow.dir/e2eaw.cpp.o" "gcc" "src/workflow/CMakeFiles/awp_workflow.dir/e2eaw.cpp.o.d"
  "/root/repo/src/workflow/transfer.cpp" "src/workflow/CMakeFiles/awp_workflow.dir/transfer.cpp.o" "gcc" "src/workflow/CMakeFiles/awp_workflow.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/awp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/awp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/vcluster/CMakeFiles/awp_vcluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
