file(REMOVE_RECURSE
  "CMakeFiles/awp_workflow.dir/archive.cpp.o"
  "CMakeFiles/awp_workflow.dir/archive.cpp.o.d"
  "CMakeFiles/awp_workflow.dir/e2eaw.cpp.o"
  "CMakeFiles/awp_workflow.dir/e2eaw.cpp.o.d"
  "CMakeFiles/awp_workflow.dir/transfer.cpp.o"
  "CMakeFiles/awp_workflow.dir/transfer.cpp.o.d"
  "libawp_workflow.a"
  "libawp_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
