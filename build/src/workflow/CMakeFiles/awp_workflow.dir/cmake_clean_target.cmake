file(REMOVE_RECURSE
  "libawp_workflow.a"
)
