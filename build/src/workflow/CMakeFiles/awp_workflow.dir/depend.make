# Empty dependencies file for awp_workflow.
# This may be replaced when dependencies are built.
