
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmodel/cvm.cpp" "src/vmodel/CMakeFiles/awp_vmodel.dir/cvm.cpp.o" "gcc" "src/vmodel/CMakeFiles/awp_vmodel.dir/cvm.cpp.o.d"
  "/root/repo/src/vmodel/material.cpp" "src/vmodel/CMakeFiles/awp_vmodel.dir/material.cpp.o" "gcc" "src/vmodel/CMakeFiles/awp_vmodel.dir/material.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/awp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
