file(REMOVE_RECURSE
  "CMakeFiles/awp_vmodel.dir/cvm.cpp.o"
  "CMakeFiles/awp_vmodel.dir/cvm.cpp.o.d"
  "CMakeFiles/awp_vmodel.dir/material.cpp.o"
  "CMakeFiles/awp_vmodel.dir/material.cpp.o.d"
  "libawp_vmodel.a"
  "libawp_vmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_vmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
