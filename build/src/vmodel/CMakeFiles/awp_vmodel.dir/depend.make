# Empty dependencies file for awp_vmodel.
# This may be replaced when dependencies are built.
