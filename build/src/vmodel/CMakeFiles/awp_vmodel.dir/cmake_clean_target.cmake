file(REMOVE_RECURSE
  "libawp_vmodel.a"
)
