file(REMOVE_RECURSE
  "CMakeFiles/awp_perfmodel.dir/machine.cpp.o"
  "CMakeFiles/awp_perfmodel.dir/machine.cpp.o.d"
  "CMakeFiles/awp_perfmodel.dir/model.cpp.o"
  "CMakeFiles/awp_perfmodel.dir/model.cpp.o.d"
  "CMakeFiles/awp_perfmodel.dir/version.cpp.o"
  "CMakeFiles/awp_perfmodel.dir/version.cpp.o.d"
  "libawp_perfmodel.a"
  "libawp_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
