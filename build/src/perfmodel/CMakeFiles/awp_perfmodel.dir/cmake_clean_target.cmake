file(REMOVE_RECURSE
  "libawp_perfmodel.a"
)
