# Empty dependencies file for awp_perfmodel.
# This may be replaced when dependencies are built.
