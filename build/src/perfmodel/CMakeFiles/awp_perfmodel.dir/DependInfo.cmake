
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/machine.cpp" "src/perfmodel/CMakeFiles/awp_perfmodel.dir/machine.cpp.o" "gcc" "src/perfmodel/CMakeFiles/awp_perfmodel.dir/machine.cpp.o.d"
  "/root/repo/src/perfmodel/model.cpp" "src/perfmodel/CMakeFiles/awp_perfmodel.dir/model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/awp_perfmodel.dir/model.cpp.o.d"
  "/root/repo/src/perfmodel/version.cpp" "src/perfmodel/CMakeFiles/awp_perfmodel.dir/version.cpp.o" "gcc" "src/perfmodel/CMakeFiles/awp_perfmodel.dir/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/awp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vcluster/CMakeFiles/awp_vcluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
