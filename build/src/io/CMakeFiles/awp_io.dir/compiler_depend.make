# Empty compiler generated dependencies file for awp_io.
# This may be replaced when dependencies are built.
