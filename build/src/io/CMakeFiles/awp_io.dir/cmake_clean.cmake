file(REMOVE_RECURSE
  "CMakeFiles/awp_io.dir/aggregated_writer.cpp.o"
  "CMakeFiles/awp_io.dir/aggregated_writer.cpp.o.d"
  "CMakeFiles/awp_io.dir/checkpoint.cpp.o"
  "CMakeFiles/awp_io.dir/checkpoint.cpp.o.d"
  "CMakeFiles/awp_io.dir/checksum.cpp.o"
  "CMakeFiles/awp_io.dir/checksum.cpp.o.d"
  "CMakeFiles/awp_io.dir/contention.cpp.o"
  "CMakeFiles/awp_io.dir/contention.cpp.o.d"
  "CMakeFiles/awp_io.dir/shared_file.cpp.o"
  "CMakeFiles/awp_io.dir/shared_file.cpp.o.d"
  "CMakeFiles/awp_io.dir/throttle.cpp.o"
  "CMakeFiles/awp_io.dir/throttle.cpp.o.d"
  "libawp_io.a"
  "libawp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
