
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/aggregated_writer.cpp" "src/io/CMakeFiles/awp_io.dir/aggregated_writer.cpp.o" "gcc" "src/io/CMakeFiles/awp_io.dir/aggregated_writer.cpp.o.d"
  "/root/repo/src/io/checkpoint.cpp" "src/io/CMakeFiles/awp_io.dir/checkpoint.cpp.o" "gcc" "src/io/CMakeFiles/awp_io.dir/checkpoint.cpp.o.d"
  "/root/repo/src/io/checksum.cpp" "src/io/CMakeFiles/awp_io.dir/checksum.cpp.o" "gcc" "src/io/CMakeFiles/awp_io.dir/checksum.cpp.o.d"
  "/root/repo/src/io/contention.cpp" "src/io/CMakeFiles/awp_io.dir/contention.cpp.o" "gcc" "src/io/CMakeFiles/awp_io.dir/contention.cpp.o.d"
  "/root/repo/src/io/shared_file.cpp" "src/io/CMakeFiles/awp_io.dir/shared_file.cpp.o" "gcc" "src/io/CMakeFiles/awp_io.dir/shared_file.cpp.o.d"
  "/root/repo/src/io/throttle.cpp" "src/io/CMakeFiles/awp_io.dir/throttle.cpp.o" "gcc" "src/io/CMakeFiles/awp_io.dir/throttle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/awp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vcluster/CMakeFiles/awp_vcluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
