file(REMOVE_RECURSE
  "libawp_io.a"
)
