file(REMOVE_RECURSE
  "libawp_util.a"
)
