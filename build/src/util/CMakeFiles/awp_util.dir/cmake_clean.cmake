file(REMOVE_RECURSE
  "CMakeFiles/awp_util.dir/fft.cpp.o"
  "CMakeFiles/awp_util.dir/fft.cpp.o.d"
  "CMakeFiles/awp_util.dir/filter.cpp.o"
  "CMakeFiles/awp_util.dir/filter.cpp.o.d"
  "CMakeFiles/awp_util.dir/md5.cpp.o"
  "CMakeFiles/awp_util.dir/md5.cpp.o.d"
  "CMakeFiles/awp_util.dir/rng.cpp.o"
  "CMakeFiles/awp_util.dir/rng.cpp.o.d"
  "CMakeFiles/awp_util.dir/stats.cpp.o"
  "CMakeFiles/awp_util.dir/stats.cpp.o.d"
  "CMakeFiles/awp_util.dir/table.cpp.o"
  "CMakeFiles/awp_util.dir/table.cpp.o.d"
  "CMakeFiles/awp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/awp_util.dir/thread_pool.cpp.o.d"
  "libawp_util.a"
  "libawp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
