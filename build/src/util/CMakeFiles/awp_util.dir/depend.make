# Empty dependencies file for awp_util.
# This may be replaced when dependencies are built.
