file(REMOVE_RECURSE
  "CMakeFiles/awp_grid.dir/halo.cpp.o"
  "CMakeFiles/awp_grid.dir/halo.cpp.o.d"
  "CMakeFiles/awp_grid.dir/staggered_grid.cpp.o"
  "CMakeFiles/awp_grid.dir/staggered_grid.cpp.o.d"
  "libawp_grid.a"
  "libawp_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
