# Empty compiler generated dependencies file for awp_grid.
# This may be replaced when dependencies are built.
