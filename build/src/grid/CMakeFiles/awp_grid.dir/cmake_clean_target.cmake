file(REMOVE_RECURSE
  "libawp_grid.a"
)
