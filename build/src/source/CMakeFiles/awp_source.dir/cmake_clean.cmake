file(REMOVE_RECURSE
  "CMakeFiles/awp_source.dir/dsrcg.cpp.o"
  "CMakeFiles/awp_source.dir/dsrcg.cpp.o.d"
  "CMakeFiles/awp_source.dir/petasrcp.cpp.o"
  "CMakeFiles/awp_source.dir/petasrcp.cpp.o.d"
  "CMakeFiles/awp_source.dir/trace.cpp.o"
  "CMakeFiles/awp_source.dir/trace.cpp.o.d"
  "libawp_source.a"
  "libawp_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
