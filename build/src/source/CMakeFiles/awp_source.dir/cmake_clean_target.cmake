file(REMOVE_RECURSE
  "libawp_source.a"
)
