# Empty compiler generated dependencies file for awp_source.
# This may be replaced when dependencies are built.
