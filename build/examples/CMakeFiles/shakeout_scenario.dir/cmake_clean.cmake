file(REMOVE_RECURSE
  "CMakeFiles/shakeout_scenario.dir/shakeout_scenario.cpp.o"
  "CMakeFiles/shakeout_scenario.dir/shakeout_scenario.cpp.o.d"
  "shakeout_scenario"
  "shakeout_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shakeout_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
