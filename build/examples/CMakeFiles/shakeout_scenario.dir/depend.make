# Empty dependencies file for shakeout_scenario.
# This may be replaced when dependencies are built.
