# Empty dependencies file for m8_end_to_end.
# This may be replaced when dependencies are built.
