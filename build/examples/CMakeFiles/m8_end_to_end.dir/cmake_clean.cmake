file(REMOVE_RECURSE
  "CMakeFiles/m8_end_to_end.dir/m8_end_to_end.cpp.o"
  "CMakeFiles/m8_end_to_end.dir/m8_end_to_end.cpp.o.d"
  "m8_end_to_end"
  "m8_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m8_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
