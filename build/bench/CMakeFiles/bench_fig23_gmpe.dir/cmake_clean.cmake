file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_gmpe.dir/bench_fig23_gmpe.cpp.o"
  "CMakeFiles/bench_fig23_gmpe.dir/bench_fig23_gmpe.cpp.o.d"
  "bench_fig23_gmpe"
  "bench_fig23_gmpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_gmpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
