# Empty compiler generated dependencies file for bench_fig23_gmpe.
# This may be replaced when dependencies are built.
