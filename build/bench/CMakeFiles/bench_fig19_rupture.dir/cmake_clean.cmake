file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_rupture.dir/bench_fig19_rupture.cpp.o"
  "CMakeFiles/bench_fig19_rupture.dir/bench_fig19_rupture.cpp.o.d"
  "bench_fig19_rupture"
  "bench_fig19_rupture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_rupture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
