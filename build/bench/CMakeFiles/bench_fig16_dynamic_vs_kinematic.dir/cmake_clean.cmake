file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_dynamic_vs_kinematic.dir/bench_fig16_dynamic_vs_kinematic.cpp.o"
  "CMakeFiles/bench_fig16_dynamic_vs_kinematic.dir/bench_fig16_dynamic_vs_kinematic.cpp.o.d"
  "bench_fig16_dynamic_vs_kinematic"
  "bench_fig16_dynamic_vs_kinematic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_dynamic_vs_kinematic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
