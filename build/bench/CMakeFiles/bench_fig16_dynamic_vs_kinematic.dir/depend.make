# Empty dependencies file for bench_fig16_dynamic_vs_kinematic.
# This may be replaced when dependencies are built.
