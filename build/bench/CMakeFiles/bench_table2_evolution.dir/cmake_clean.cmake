file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_evolution.dir/bench_table2_evolution.cpp.o"
  "CMakeFiles/bench_table2_evolution.dir/bench_table2_evolution.cpp.o.d"
  "bench_table2_evolution"
  "bench_table2_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
