# Empty dependencies file for bench_fig22_supershear.
# This may be replaced when dependencies are built.
