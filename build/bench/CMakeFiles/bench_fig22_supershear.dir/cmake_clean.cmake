file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_supershear.dir/bench_fig22_supershear.cpp.o"
  "CMakeFiles/bench_fig22_supershear.dir/bench_fig22_supershear.cpp.o.d"
  "bench_fig22_supershear"
  "bench_fig22_supershear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_supershear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
