# Empty compiler generated dependencies file for bench_fig21_m8_pgvh.
# This may be replaced when dependencies are built.
