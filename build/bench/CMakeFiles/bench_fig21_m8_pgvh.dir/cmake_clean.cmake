file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_m8_pgvh.dir/bench_fig21_m8_pgvh.cpp.o"
  "CMakeFiles/bench_fig21_m8_pgvh.dir/bench_fig21_m8_pgvh.cpp.o.d"
  "bench_fig21_m8_pgvh"
  "bench_fig21_m8_pgvh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_m8_pgvh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
