file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_ensemble.dir/bench_fig18_ensemble.cpp.o"
  "CMakeFiles/bench_fig18_ensemble.dir/bench_fig18_ensemble.cpp.o.d"
  "bench_fig18_ensemble"
  "bench_fig18_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
