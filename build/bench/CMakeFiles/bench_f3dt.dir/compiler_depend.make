# Empty compiler generated dependencies file for bench_f3dt.
# This may be replaced when dependencies are built.
