file(REMOVE_RECURSE
  "CMakeFiles/bench_f3dt.dir/bench_f3dt.cpp.o"
  "CMakeFiles/bench_f3dt.dir/bench_f3dt.cpp.o.d"
  "bench_f3dt"
  "bench_f3dt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3dt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
