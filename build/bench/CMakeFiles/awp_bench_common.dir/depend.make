# Empty dependencies file for awp_bench_common.
# This may be replaced when dependencies are built.
