file(REMOVE_RECURSE
  "libawp_bench_common.a"
)
