file(REMOVE_RECURSE
  "CMakeFiles/awp_bench_common.dir/scenarios.cpp.o"
  "CMakeFiles/awp_bench_common.dir/scenarios.cpp.o.d"
  "libawp_bench_common.a"
  "libawp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
