
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/scenarios.cpp" "bench/CMakeFiles/awp_bench_common.dir/scenarios.cpp.o" "gcc" "bench/CMakeFiles/awp_bench_common.dir/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/awp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rupture/CMakeFiles/awp_rupture.dir/DependInfo.cmake"
  "/root/repo/build/src/source/CMakeFiles/awp_source.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/awp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/awp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/awp_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/awp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/vmodel/CMakeFiles/awp_vmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/awp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/vcluster/CMakeFiles/awp_vcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/awp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
