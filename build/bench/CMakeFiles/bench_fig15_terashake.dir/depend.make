# Empty dependencies file for bench_fig15_terashake.
# This may be replaced when dependencies are built.
