file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_terashake.dir/bench_fig15_terashake.cpp.o"
  "CMakeFiles/bench_fig15_terashake.dir/bench_fig15_terashake.cpp.o.d"
  "bench_fig15_terashake"
  "bench_fig15_terashake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_terashake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
