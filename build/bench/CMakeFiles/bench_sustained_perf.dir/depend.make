# Empty dependencies file for bench_sustained_perf.
# This may be replaced when dependencies are built.
