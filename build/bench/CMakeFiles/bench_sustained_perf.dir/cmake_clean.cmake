file(REMOVE_RECURSE
  "CMakeFiles/bench_sustained_perf.dir/bench_sustained_perf.cpp.o"
  "CMakeFiles/bench_sustained_perf.dir/bench_sustained_perf.cpp.o.d"
  "bench_sustained_perf"
  "bench_sustained_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sustained_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
