file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_milestones.dir/bench_table3_milestones.cpp.o"
  "CMakeFiles/bench_table3_milestones.dir/bench_table3_milestones.cpp.o.d"
  "bench_table3_milestones"
  "bench_table3_milestones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_milestones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
