# Empty dependencies file for bench_workflow.
# This may be replaced when dependencies are built.
