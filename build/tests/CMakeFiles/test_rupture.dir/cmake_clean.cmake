file(REMOVE_RECURSE
  "CMakeFiles/test_rupture.dir/test_rupture.cpp.o"
  "CMakeFiles/test_rupture.dir/test_rupture.cpp.o.d"
  "test_rupture"
  "test_rupture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rupture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
