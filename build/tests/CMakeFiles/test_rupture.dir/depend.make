# Empty dependencies file for test_rupture.
# This may be replaced when dependencies are built.
