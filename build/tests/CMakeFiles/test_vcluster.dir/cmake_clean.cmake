file(REMOVE_RECURSE
  "CMakeFiles/test_vcluster.dir/test_vcluster.cpp.o"
  "CMakeFiles/test_vcluster.dir/test_vcluster.cpp.o.d"
  "test_vcluster"
  "test_vcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
