# Empty compiler generated dependencies file for test_vcluster.
# This may be replaced when dependencies are built.
