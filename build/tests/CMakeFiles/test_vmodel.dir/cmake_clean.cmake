file(REMOVE_RECURSE
  "CMakeFiles/test_vmodel.dir/test_vmodel.cpp.o"
  "CMakeFiles/test_vmodel.dir/test_vmodel.cpp.o.d"
  "test_vmodel"
  "test_vmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
