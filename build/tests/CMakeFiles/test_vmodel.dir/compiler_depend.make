# Empty compiler generated dependencies file for test_vmodel.
# This may be replaced when dependencies are built.
