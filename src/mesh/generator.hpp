#pragma once
// CVM2MESH: parallel mesh extraction from a community velocity model
// (§III.B). "The program partitions the mesh region into a set of slices
// along the z-axis. Each slice is assigned to an individual core for
// extraction from the underlying CVM. ... Each core contributes its slice
// to the final mesh by computing the offset location of the slice within
// the mesh file, and uses efficient MPI-IO file operations to seek that
// location and write the slices."

#include <string>

#include "mesh/mesh_file.hpp"
#include "vcluster/comm.hpp"
#include "vmodel/cvm.hpp"

namespace awp::mesh {

// Collective over all ranks of `comm`: samples the model on the uniform
// grid described by `spec` and writes the single global mesh file at
// `path`. Depth of point (i,j,k) is k*h measured down from the free
// surface (k = 0 is the surface plane).
void generateMesh(vcluster::Communicator& comm,
                  const vmodel::VelocityModel& model, const MeshSpec& spec,
                  const std::string& path);

// Serial convenience wrapper (single rank).
void generateMeshSerial(const vmodel::VelocityModel& model,
                        const MeshSpec& spec, const std::string& path);

}  // namespace awp::mesh
