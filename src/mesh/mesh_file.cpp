#include "mesh/mesh_file.hpp"

#include "io/shared_file.hpp"
#include "util/error.hpp"

namespace awp::mesh {

std::uint64_t pointOffset(const MeshSpec& spec, std::uint64_t i,
                          std::uint64_t j, std::uint64_t k) {
  const std::uint64_t linear = (k * spec.ny + j) * spec.nx + i;
  return sizeof(MeshHeader) + linear * sizeof(vmodel::Material);
}

std::uint64_t meshFileSize(const MeshSpec& spec) {
  return sizeof(MeshHeader) + spec.pointCount() * sizeof(vmodel::Material);
}

MeshHeader readMeshHeader(const std::string& path) {
  io::SharedFile f(path, io::SharedFile::Mode::Read);
  MeshHeader h;
  f.readAt(0, std::span<std::byte>(reinterpret_cast<std::byte*>(&h),
                                   sizeof(h)));
  AWP_CHECK_MSG(h.magic == MeshHeader::kMagic, "not a mesh file: " + path);
  AWP_CHECK_MSG(f.size() == meshFileSize(h.spec()),
                "mesh file size does not match its header: " + path);
  return h;
}

}  // namespace awp::mesh
