#include "mesh/partitioner.hpp"

#include <sys/stat.h>

#include <cstring>

#include "io/shared_file.hpp"
#include "util/error.hpp"

namespace awp::mesh {

namespace {

constexpr std::uint64_t kBlockMagic = 0x4157504d424c4b31ULL;  // AWPMBLK1

struct BlockHeader {
  std::uint64_t magic = kBlockMagic;
  std::uint64_t rank = 0;
  std::uint64_t xb = 0, xe = 0, yb = 0, ye = 0, zb = 0, ze = 0;
};

std::string blockPath(const std::string& dir, int rank) {
  return dir + "/mesh_rank" + std::to_string(rank) + ".bin";
}

// Read one rank's block straight out of the global file, x-run at a time.
MeshBlock readBlockFromGlobal(io::SharedFile& f, const MeshSpec& spec,
                              const SubdomainSpec& sub) {
  MeshBlock block;
  block.spec = sub;
  block.points.resize(sub.pointCount());
  const std::size_t lnx = sub.x.count();
  std::size_t dst = 0;
  for (std::uint64_t k = sub.z.begin; k < sub.z.end; ++k) {
    for (std::uint64_t j = sub.y.begin; j < sub.y.end; ++j) {
      f.readAt(pointOffset(spec, sub.x.begin, j, k),
               std::span<vmodel::Material>(&block.points[dst], lnx));
      dst += lnx;
    }
  }
  return block;
}

}  // namespace

void validateBlock(const MeshBlock& block, const std::string& origin) {
  const std::size_t lnx = block.spec.x.count();
  const std::size_t lny = block.spec.y.count();
  for (std::size_t n = 0; n < block.points.size(); ++n) {
    const vmodel::Material& m = block.points[n];
    const char* issue = vmodel::materialIssue(m);
    if (issue == nullptr) continue;
    throw Error("bad material in '" + origin + "': " + issue +
                " at local cell (" + std::to_string(n % lnx) + ", " +
                std::to_string((n / lnx) % lny) + ", " +
                std::to_string(n / (lnx * lny)) + "): vp=" +
                std::to_string(m.vp) + " vs=" + std::to_string(m.vs) +
                " rho=" + std::to_string(m.rho));
  }
}

SubdomainSpec subdomainFor(const vcluster::CartTopology& topo,
                           const MeshSpec& spec, int rank) {
  const auto c = topo.coordsOf(rank);
  SubdomainSpec sub;
  sub.x = vcluster::CartTopology::blockRange(spec.nx, topo.dims().x, c.x);
  sub.y = vcluster::CartTopology::blockRange(spec.ny, topo.dims().y, c.y);
  sub.z = vcluster::CartTopology::blockRange(spec.nz, topo.dims().z, c.z);
  return sub;
}

void prePartitionMesh(vcluster::Communicator& comm,
                      const std::string& meshPath,
                      const vcluster::CartTopology& topo,
                      const std::string& dir, io::OpenThrottle* throttle) {
  AWP_CHECK(comm.size() == topo.size());
  if (comm.rank() == 0) ::mkdir(dir.c_str(), 0755);
  comm.barrier();
  const MeshHeader header = readMeshHeader(meshPath);
  const MeshSpec spec = header.spec();
  const SubdomainSpec sub = subdomainFor(topo, spec, comm.rank());

  auto work = [&] {
    io::SharedFile in(meshPath, io::SharedFile::Mode::Read);
    MeshBlock block = readBlockFromGlobal(in, spec, sub);
    validateBlock(block, meshPath);

    BlockHeader bh;
    bh.rank = static_cast<std::uint64_t>(comm.rank());
    bh.xb = sub.x.begin;
    bh.xe = sub.x.end;
    bh.yb = sub.y.begin;
    bh.ye = sub.y.end;
    bh.zb = sub.z.begin;
    bh.ze = sub.z.end;

    io::SharedFile out(blockPath(dir, comm.rank()),
                       io::SharedFile::Mode::Write);
    out.truncate(0);
    out.writeAt(0, std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(&bh), sizeof(bh)));
    out.writeAt(sizeof(bh),
                std::span<const vmodel::Material>(block.points));
  };
  if (throttle != nullptr) {
    io::OpenThrottle::Ticket ticket(*throttle);
    work();
  } else {
    work();
  }
  comm.barrier();
}

MeshBlock readPrePartitioned(const std::string& dir, int rank,
                             io::OpenThrottle* throttle) {
  auto work = [&]() -> MeshBlock {
    io::SharedFile f(blockPath(dir, rank), io::SharedFile::Mode::Read);
    BlockHeader bh;
    f.readAt(0, std::span<std::byte>(reinterpret_cast<std::byte*>(&bh),
                                     sizeof(bh)));
    AWP_CHECK_MSG(bh.magic == kBlockMagic, "not a mesh block file");
    AWP_CHECK_MSG(bh.rank == static_cast<std::uint64_t>(rank),
                  "mesh block belongs to a different rank");
    MeshBlock block;
    block.spec.x = {bh.xb, bh.xe};
    block.spec.y = {bh.yb, bh.ye};
    block.spec.z = {bh.zb, bh.ze};
    block.points.resize(block.spec.pointCount());
    f.readAt(sizeof(bh), std::span<vmodel::Material>(block.points));
    validateBlock(block, blockPath(dir, rank));
    return block;
  };
  if (throttle != nullptr) {
    io::OpenThrottle::Ticket ticket(*throttle);
    return work();
  }
  return work();
}

MeshBlock readAndRedistribute(vcluster::Communicator& comm,
                              const std::string& meshPath,
                              const vcluster::CartTopology& topo,
                              int nReaders, int ySubdivision) {
  AWP_CHECK(comm.size() == topo.size());
  AWP_CHECK(nReaders >= 1 && nReaders <= comm.size());
  AWP_CHECK(ySubdivision >= 1);
  const MeshHeader header = readMeshHeader(meshPath);
  const MeshSpec spec = header.spec();
  const SubdomainSpec mine = subdomainFor(topo, spec, comm.rank());

  // Work units: (plane k, band b). Bands split the plane's Y extent.
  auto bandRange = [&](int b) {
    return vcluster::CartTopology::blockRange(spec.ny, ySubdivision, b);
  };
  auto readerOf = [&](std::uint64_t k, int b) {
    return static_cast<int>((k * static_cast<std::uint64_t>(ySubdivision) +
                             static_cast<std::uint64_t>(b)) %
                            static_cast<std::uint64_t>(nReaders));
  };
  auto tagOf = [&](std::uint64_t k, int b) {
    return static_cast<int>(k * static_cast<std::uint64_t>(ySubdivision) +
                            static_cast<std::uint64_t>(b));
  };

  // --- Reader side: read contiguous bands, carve and send sub-rectangles.
  if (comm.rank() < nReaders) {
    io::SharedFile in(meshPath, io::SharedFile::Mode::Read);
    std::vector<vmodel::Material> band;
    for (std::uint64_t k = 0; k < spec.nz; ++k) {
      for (int b = 0; b < ySubdivision; ++b) {
        if (readerOf(k, b) != comm.rank()) continue;
        const auto yr = bandRange(b);
        band.resize(spec.nx * yr.count());
        // One contiguous burst: rows yr.begin..yr.end of plane k.
        in.readAt(pointOffset(spec, 0, yr.begin, k),
                  std::span<vmodel::Material>(band));

        // Destination ranks: all (cx, cy) columns whose z-range holds k
        // and whose y-range intersects this band.
        for (int rank = 0; rank < topo.size(); ++rank) {
          const SubdomainSpec dst = subdomainFor(topo, spec, rank);
          if (k < dst.z.begin || k >= dst.z.end) continue;
          const std::uint64_t yb = std::max(dst.y.begin, yr.begin);
          const std::uint64_t ye = std::min(dst.y.end, yr.end);
          if (yb >= ye) continue;
          std::vector<vmodel::Material> rect((ye - yb) * dst.x.count());
          std::size_t w = 0;
          for (std::uint64_t j = yb; j < ye; ++j) {
            const vmodel::Material* src =
                band.data() + (j - yr.begin) * spec.nx + dst.x.begin;
            std::memcpy(&rect[w], src,
                        dst.x.count() * sizeof(vmodel::Material));
            w += dst.x.count();
          }
          comm.sendSpan<vmodel::Material>(rank, tagOf(k, b), rect);
        }
      }
    }
  }

  // --- Receiver side: assemble the local block plane by plane.
  MeshBlock block;
  block.spec = mine;
  block.points.resize(mine.pointCount());
  const std::size_t lnx = mine.x.count();
  for (std::uint64_t k = mine.z.begin; k < mine.z.end; ++k) {
    for (int b = 0; b < ySubdivision; ++b) {
      const auto yr = bandRange(b);
      const std::uint64_t yb = std::max(mine.y.begin, yr.begin);
      const std::uint64_t ye = std::min(mine.y.end, yr.end);
      if (yb >= ye) continue;
      std::vector<vmodel::Material> rect((ye - yb) * lnx);
      comm.recvSpan<vmodel::Material>(readerOf(k, b), tagOf(k, b),
                                      std::span<vmodel::Material>(rect));
      std::size_t r = 0;
      for (std::uint64_t j = yb; j < ye; ++j) {
        vmodel::Material* dst =
            &block.at(0, j - mine.y.begin, k - mine.z.begin);
        std::memcpy(dst, &rect[r], lnx * sizeof(vmodel::Material));
        r += lnx;
      }
    }
  }
  comm.barrier();
  validateBlock(block, meshPath);
  return block;
}

MeshBlock readDirect(const std::string& meshPath,
                     const vcluster::CartTopology& topo, int rank) {
  const MeshHeader header = readMeshHeader(meshPath);
  const MeshSpec spec = header.spec();
  io::SharedFile in(meshPath, io::SharedFile::Mode::Read);
  MeshBlock block =
      readBlockFromGlobal(in, spec, subdomainFor(topo, spec, rank));
  validateBlock(block, meshPath);
  return block;
}

}  // namespace awp::mesh
