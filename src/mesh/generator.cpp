#include "mesh/generator.hpp"

#include <vector>

#include "io/shared_file.hpp"
#include "util/error.hpp"
#include "vcluster/cart.hpp"
#include "vcluster/cluster.hpp"

namespace awp::mesh {

void generateMesh(vcluster::Communicator& comm,
                  const vmodel::VelocityModel& model, const MeshSpec& spec,
                  const std::string& path) {
  AWP_CHECK(spec.nx > 0 && spec.ny > 0 && spec.nz > 0 && spec.h > 0.0);

  // Rank 0 creates and sizes the file; everyone opens after that.
  if (comm.rank() == 0) {
    io::SharedFile f(path, io::SharedFile::Mode::Write);
    f.truncate(meshFileSize(spec));
    MeshHeader h;
    h.nx = spec.nx;
    h.ny = spec.ny;
    h.nz = spec.nz;
    h.h = spec.h;
    h.x0 = spec.x0;
    h.y0 = spec.y0;
    f.writeAt(0, std::span<const std::byte>(
                     reinterpret_cast<const std::byte*>(&h), sizeof(h)));
  }
  comm.barrier();

  io::SharedFile f(path, io::SharedFile::Mode::ReadWrite);

  // Slice decomposition along z: each rank extracts and writes its slices.
  const auto zRange = vcluster::CartTopology::blockRange(
      spec.nz, comm.size(), comm.rank());

  std::vector<vmodel::Material> plane(spec.nx * spec.ny);
  for (std::uint64_t k = zRange.begin; k < zRange.end; ++k) {
    const double z = static_cast<double>(k) * spec.h;
    for (std::uint64_t j = 0; j < spec.ny; ++j) {
      const double y = spec.y0 + static_cast<double>(j) * spec.h;
      for (std::uint64_t i = 0; i < spec.nx; ++i) {
        const double x = spec.x0 + static_cast<double>(i) * spec.h;
        plane[j * spec.nx + i] = model.sample(x, y, z);
      }
    }
    f.writeAt(pointOffset(spec, 0, 0, k),
              std::span<const vmodel::Material>(plane));
  }
  comm.barrier();
}

void generateMeshSerial(const vmodel::VelocityModel& model,
                        const MeshSpec& spec, const std::string& path) {
  vcluster::ThreadCluster::run(1, [&](vcluster::Communicator& comm) {
    generateMesh(comm, model, spec, path);
  });
}

}  // namespace awp::mesh
