#pragma once
// PetaMeshP: petascale mesh partitioning (§III.C). Three access models, all
// producing the identical per-rank sub-block:
//
//  1. Pre-partitioning (serial I/O): a preparation pass writes one small
//     file per solver rank; the solver then reads only its own file.
//     "Although many per-core partitioned small files are generated, this
//     model provides efficient data locality." M8 used this path, reading
//     223,074 pre-partitioned files in 4 minutes.
//  2. On-demand read-and-redistribute (the advanced MPI-IO model): a
//     subset of ranks ("readers") read highly contiguous XY planes and
//     redistribute sub-rectangles point-to-point to the destination ranks
//     ("receivers"). A plane may be subdivided along Y by a factor n so n
//     times more readers participate (Fig 9).
//  3. Direct strided reads: every rank reads its own x-runs straight from
//     the global file — the fallback "direct contiguous MPI-IO imbedded
//     into the solver" of §VII.B.

#include <string>
#include <vector>

#include "io/throttle.hpp"
#include "mesh/mesh_file.hpp"
#include "vcluster/cart.hpp"
#include "vcluster/comm.hpp"

namespace awp::mesh {

struct SubdomainSpec {
  vcluster::Range x, y, z;
  [[nodiscard]] std::uint64_t pointCount() const {
    return static_cast<std::uint64_t>(x.count()) * y.count() * z.count();
  }
};

// The global index block owned by `rank` under a Cartesian decomposition.
SubdomainSpec subdomainFor(const vcluster::CartTopology& topo,
                           const MeshSpec& spec, int rank);

// A rank's materialized sub-block (local storage, x fastest).
struct MeshBlock {
  SubdomainSpec spec;
  std::vector<vmodel::Material> points;

  [[nodiscard]] const vmodel::Material& at(std::size_t li, std::size_t lj,
                                           std::size_t lk) const {
    return points[li + spec.x.count() * (lj + spec.y.count() * lk)];
  }
  [[nodiscard]] vmodel::Material& at(std::size_t li, std::size_t lj,
                                     std::size_t lk) {
    return points[li + spec.x.count() * (lj + spec.y.count() * lk)];
  }
};

// --- Model 1: pre-partitioning -------------------------------------------
// Collective: each rank extracts its block from the global mesh file and
// writes <dir>/mesh_rank<r>.bin. `throttle` bounds concurrent opens.
void prePartitionMesh(vcluster::Communicator& comm,
                      const std::string& meshPath,
                      const vcluster::CartTopology& topo,
                      const std::string& dir,
                      io::OpenThrottle* throttle = nullptr);

// Solver-side read of a pre-partitioned block.
MeshBlock readPrePartitioned(const std::string& dir, int rank,
                             io::OpenThrottle* throttle = nullptr);

// --- Model 2: on-demand read + redistribute -------------------------------
// Collective: ranks [0, nReaders) act as readers; every rank (readers
// included) receives its own block. ySubdivision splits each XY plane into
// that many Y-bands so more readers can work concurrently.
MeshBlock readAndRedistribute(vcluster::Communicator& comm,
                              const std::string& meshPath,
                              const vcluster::CartTopology& topo,
                              int nReaders, int ySubdivision = 1);

// --- Model 3: direct strided reads ----------------------------------------
MeshBlock readDirect(const std::string& meshPath,
                     const vcluster::CartTopology& topo, int rank);

// Reject unphysical material (zero/negative Vs, vp <= vs, non-finite
// values) with the offending local cell and its values. All the load paths
// above call this before handing the block to the solver; `origin` names
// the file the block came from.
void validateBlock(const MeshBlock& block, const std::string& origin);

}  // namespace awp::mesh
