#pragma once
// Binary mesh file format produced by the CVM2MESH generator and consumed
// by the PetaMeshP partitioner (§III.B–C). One global file:
//
//   MeshHeader (64 bytes)
//   then nx*ny*nz Material records (vp, vs, rho as float32), x fastest,
//   then y, then z — so one XY plane is contiguous, which is what the
//   read-and-redistribute partitioning model exploits ("each XY plane is
//   read in parallel ... and distributed to the associated receivers").

#include <cstdint>
#include <string>

#include "vmodel/material.hpp"

namespace awp::mesh {

struct MeshSpec {
  std::uint64_t nx = 0, ny = 0, nz = 0;
  double h = 0.0;        // grid spacing [m]
  double x0 = 0.0, y0 = 0.0;  // origin of the sampled volume [m]

  [[nodiscard]] std::uint64_t pointCount() const { return nx * ny * nz; }
};

struct MeshHeader {
  std::uint64_t magic = kMagic;
  std::uint64_t nx = 0, ny = 0, nz = 0;
  double h = 0.0;
  double x0 = 0.0, y0 = 0.0;
  std::uint64_t reserved = 0;

  static constexpr std::uint64_t kMagic = 0x4157504d45534831ULL;  // AWPMESH1

  [[nodiscard]] MeshSpec spec() const { return {nx, ny, nz, h, x0, y0}; }
};
static_assert(sizeof(MeshHeader) == 64);
static_assert(sizeof(vmodel::Material) == 12,
              "Material must be 3 packed floats for the on-disk layout");

// Byte offset of point (i, j, k) within the mesh file.
std::uint64_t pointOffset(const MeshSpec& spec, std::uint64_t i,
                          std::uint64_t j, std::uint64_t k);

// Total file size for a spec.
std::uint64_t meshFileSize(const MeshSpec& spec);

// Read and validate the header of an existing mesh file.
MeshHeader readMeshHeader(const std::string& path);

}  // namespace awp::mesh
