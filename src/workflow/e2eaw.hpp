#pragma once
// E2EaW: the end-to-end workflow (§III.I, Fig 10) that consolidates the
// AWP-ODC modules: data partitioning, solver execution, parallel checksum
// generation, high-performance site-to-site transfer with automatic
// recovery, verification, and ingestion into the digital library. Stages
// are named, timed, re-runnable and individually retryable through the
// shared util/retry.hpp policy; a stage failure (including non-standard
// throws) stops the pipeline with the failure and every attempt recorded.

#include <functional>
#include <string>
#include <vector>

#include "util/retry.hpp"

namespace awp::workflow {

struct StageAttempt {
  int attempt = 0;  // 1-based
  bool ok = false;
  double seconds = 0.0;
  std::string detail;  // stage detail on success, error message on failure
};

struct StageResult {
  std::string name;
  bool ran = false;
  bool ok = false;
  int attempts = 0;       // attempts actually made (retry policy)
  double seconds = 0.0;   // wall-clock across all attempts
  std::string detail;
  std::vector<StageAttempt> attemptLog;
};

class Pipeline {
 public:
  using StageFn = std::function<std::string()>;  // returns detail; throws on
                                                 // failure

  // Single-attempt stage (the §III.I default: failures stop the pipeline
  // and the stage is re-run by a later Pipeline::run()).
  void addStage(std::string name, StageFn fn);
  // Stage with automatic in-run retries: any throw (std::exception or not)
  // is retried up to policy.maxAttempts with the shared backoff.
  void addStage(std::string name, StageFn fn, util::RetryPolicy retry);

  // Run stages in order; stops at the first (post-retry) failure. Returns
  // overall success.
  bool run();

  [[nodiscard]] const std::vector<StageResult>& results() const {
    return results_;
  }

 private:
  struct Stage {
    std::string name;
    StageFn fn;
    util::RetryPolicy retry{.maxAttempts = 1};
  };
  std::vector<Stage> stages_;
  std::vector<StageResult> results_;
};

}  // namespace awp::workflow
