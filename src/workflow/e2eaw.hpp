#pragma once
// E2EaW: the end-to-end workflow (§III.I, Fig 10) that consolidates the
// AWP-ODC modules: data partitioning, solver execution, parallel checksum
// generation, high-performance site-to-site transfer with automatic
// recovery, verification, and ingestion into the digital library. Stages
// are named, timed, and re-runnable; a stage failure stops the pipeline
// with the failure recorded.

#include <functional>
#include <string>
#include <vector>

namespace awp::workflow {

struct StageResult {
  std::string name;
  bool ran = false;
  bool ok = false;
  double seconds = 0.0;
  std::string detail;
};

class Pipeline {
 public:
  using StageFn = std::function<std::string()>;  // returns detail; throws on
                                                 // failure

  void addStage(std::string name, StageFn fn);

  // Run stages in order; stops at the first failure. Returns overall
  // success.
  bool run();

  [[nodiscard]] const std::vector<StageResult>& results() const {
    return results_;
  }

 private:
  std::vector<std::pair<std::string, StageFn>> stages_;
  std::vector<StageResult> results_;
};

}  // namespace awp::workflow
