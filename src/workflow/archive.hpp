#pragma once
// SCEC digital library analogue (§III.I): an iRODS-like archive registry
// with per-file integrity (MD5) and replica metadata, plus PIPUT — the
// parallel ingestion tool that drives multiple concurrent streams ("an
// aggregated transfer rate of up to 177 MB/sec, more than ten times
// faster than direct use of single iRODS iPUT").

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace awp::workflow {

struct ArchiveEntry {
  std::string logicalName;
  std::uint64_t bytes = 0;
  std::string md5Hex;
  int replicas = 1;
  std::string collection;
};

class ArchiveRegistry {
 public:
  // Register a real file under a logical collection; computes its MD5.
  void ingestFile(const std::string& path, const std::string& collection,
                  const std::string& logicalName, int replicas = 1);

  [[nodiscard]] bool contains(const std::string& logicalName) const;
  [[nodiscard]] const ArchiveEntry& entry(
      const std::string& logicalName) const;
  // Verify a local file against the registered checksum.
  [[nodiscard]] bool verify(const std::string& logicalName,
                            const std::string& path) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t totalBytes() const;
  [[nodiscard]] std::vector<std::string> listCollection(
      const std::string& collection) const;

 private:
  std::map<std::string, ArchiveEntry> entries_;
};

// Ingestion throughput model: single-stream iPUT vs PIPUT's parallel
// streams. Calibrated to the paper: single stream ~16 MB/s, PIPUT
// aggregates to ~177 MB/s before the archive back end saturates.
struct IngestionModel {
  double perStreamBytesPerSec = 16e6;
  double backendCapBytesPerSec = 180e6;

  [[nodiscard]] double aggregateRate(int streams) const;
  // Simulated seconds to ingest `bytes` with `streams` parallel streams.
  [[nodiscard]] double ingestSeconds(std::uint64_t bytes, int streams) const;
};

}  // namespace awp::workflow
