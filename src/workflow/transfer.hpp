#pragma once
// Simulated wide-area transfer (the GridFTP leg of E2EaW, §III.I): moves
// real files between directories in checksum-verified chunks, with
// configurable per-chunk failure injection, automatic retry from
// maintained transaction records ("In the event of file transfer failures,
// the transaction records are maintained to allow automatic recovery and
// retransfer"), and a bandwidth model that reports the simulated
// wall-clock a petascale-sized collection would take.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace awp::workflow {

struct TransferConfig {
  double bandwidthBytesPerSec = 200e6;  // paper: >200 MB/s average
  std::size_t chunkBytes = 1 << 20;
  double chunkFailureProb = 0.0;  // failure injection
  int maxRetries = 5;
  // Seeds each file's chunk-failure stream: the stream is derived from
  // (seed, file name), so which chunks fail is a property of the file, not
  // of its position in the transfer list.
  std::uint64_t seed = 42;
};

struct TransactionRecord {
  std::string file;
  std::uint64_t chunkIndex = 0;
  int attempt = 0;
  bool recovered = false;
};

struct TransferReport {
  std::uint64_t bytesMoved = 0;
  std::uint64_t chunksFailed = 0;
  std::uint64_t chunksRetried = 0;
  std::uint64_t attempts = 0;  // total chunk attempts (util/retry policy)
  int filesMoved = 0;
  double simulatedSeconds = 0.0;  // bandwidth-model time incl. retries
  bool allVerified = false;       // MD5 source == destination for all files
  std::vector<TransactionRecord> records;
};

class TransferChannel {
 public:
  explicit TransferChannel(const TransferConfig& config);

  // Move `files` (paths relative to srcDir) from srcDir to dstDir.
  // Each file's MD5 is computed at the source, at the destination, and
  // compared; a chunk failure re-reads and re-writes that chunk.
  TransferReport transfer(const std::string& srcDir,
                          const std::string& dstDir,
                          const std::vector<std::string>& files);

 private:
  TransferConfig config_;
};

}  // namespace awp::workflow
