#include "workflow/e2eaw.hpp"

#include <exception>

#include "util/timer.hpp"

namespace awp::workflow {

void Pipeline::addStage(std::string name, StageFn fn) {
  stages_.push_back({std::move(name), std::move(fn),
                     util::RetryPolicy{.maxAttempts = 1}});
}

void Pipeline::addStage(std::string name, StageFn fn,
                        util::RetryPolicy retry) {
  stages_.push_back({std::move(name), std::move(fn), retry});
}

bool Pipeline::run() {
  results_.clear();
  bool ok = true;
  for (const auto& stage : stages_) {
    StageResult r;
    r.name = stage.name;
    if (!ok) {
      results_.push_back(std::move(r));
      continue;
    }
    r.ran = true;
    Stopwatch total;
    util::RetryStats rs;
    try {
      r.detail = util::retryCallAny(
          stage.retry, "pipeline." + stage.name,
          [&](int attempt) -> std::string {
            Stopwatch watch;
            try {
              std::string detail = stage.fn();
              r.attemptLog.push_back(
                  {attempt, true, watch.seconds(), detail});
              return detail;
            } catch (const std::exception& e) {
              r.attemptLog.push_back(
                  {attempt, false, watch.seconds(), e.what()});
              throw;
            } catch (...) {
              // Non-standard throw: still recorded and still a stage
              // failure rather than std::terminate.
              r.attemptLog.push_back({attempt, false, watch.seconds(),
                                      "non-standard exception"});
              throw;
            }
          },
          &rs);
      r.ok = true;
    } catch (const std::exception& e) {
      r.ok = false;
      r.detail = e.what();
      ok = false;
    } catch (...) {
      r.ok = false;
      r.detail = "non-standard exception";
      ok = false;
    }
    r.attempts = rs.attempts;
    r.seconds = total.seconds();
    results_.push_back(std::move(r));
  }
  return ok;
}

}  // namespace awp::workflow
