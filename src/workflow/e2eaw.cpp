#include "workflow/e2eaw.hpp"

#include <exception>

#include "util/timer.hpp"

namespace awp::workflow {

void Pipeline::addStage(std::string name, StageFn fn) {
  stages_.emplace_back(std::move(name), std::move(fn));
}

bool Pipeline::run() {
  results_.clear();
  bool ok = true;
  for (const auto& [name, fn] : stages_) {
    StageResult r;
    r.name = name;
    if (!ok) {
      results_.push_back(std::move(r));
      continue;
    }
    r.ran = true;
    Stopwatch watch;
    try {
      r.detail = fn();
      r.ok = true;
    } catch (const std::exception& e) {
      r.ok = false;
      r.detail = e.what();
      ok = false;
    }
    r.seconds = watch.seconds();
    results_.push_back(std::move(r));
  }
  return ok;
}

}  // namespace awp::workflow
