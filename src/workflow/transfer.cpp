#include "workflow/transfer.hpp"

#include <algorithm>
#include <vector>

#include "fault/injector.hpp"
#include "io/shared_file.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "util/md5.hpp"
#include "util/retry.hpp"

namespace awp::workflow {

TransferChannel::TransferChannel(const TransferConfig& config)
    : config_(config) {}

TransferReport TransferChannel::transfer(
    const std::string& srcDir, const std::string& dstDir,
    const std::vector<std::string>& files) {
  TransferReport report;
  report.allVerified = true;
  // Runs on the launcher thread in the e2eaw workflow, so this lands in
  // the session's off-rank slot.
  telemetry::ScopedSpan span(telemetry::Phase::Transfer);

  for (const auto& name : files) {
    io::SharedFile src(srcDir + "/" + name, io::SharedFile::Mode::Read);
    io::SharedFile dst(dstDir + "/" + name, io::SharedFile::Mode::Write);
    const std::uint64_t size = src.size();
    dst.truncate(size);

    // Reorder-invariant failure stream: seeded from the file *name*, so the
    // same file fails the same chunks wherever it sits in the list.
    Rng fileRng = Rng(config_.seed).split(util::fnv1a(name));

    util::RetryPolicy chunkPolicy;
    chunkPolicy.maxAttempts = config_.maxRetries + 1;
    chunkPolicy.baseDelaySeconds = 0.0;  // retransfer cost is modeled below
    chunkPolicy.seed = config_.seed ^ util::fnv1a(name);

    Md5 srcDigest;
    std::vector<std::byte> chunk;
    const std::uint64_t nChunks =
        (size + config_.chunkBytes - 1) / config_.chunkBytes;

    for (std::uint64_t c = 0; c < nChunks; ++c) {
      const std::uint64_t offset = c * config_.chunkBytes;
      const std::size_t len = static_cast<std::size_t>(
          std::min<std::uint64_t>(config_.chunkBytes, size - offset));
      chunk.resize(len);
      src.readAt(offset, chunk);
      srcDigest.update(chunk.data(), chunk.size());

      util::RetryStats rs;
      util::retryCall(
          chunkPolicy, "transfer.chunk",
          [&](int attempt) {
            report.simulatedSeconds +=
                static_cast<double>(len) / config_.bandwidthBytesPerSec;
            // In-flight loss: the modeled stream, or an externally injected
            // fault. The modeled stream is capped at maxRetries failures
            // per chunk so the bounded policy always recovers it.
            bool failed = fileRng.uniform() < config_.chunkFailureProb &&
                          attempt <= config_.maxRetries;
            if (fault::injectionEnabled()) {
              if (auto act = fault::activeInjector()->check(
                      "transfer.chunk", fault::threadRank());
                  act && (act->kind == fault::FaultKind::MessageDrop ||
                          act->kind ==
                              fault::FaultKind::TransientIoError))
                failed = true;
            }
            if (failed) {
              // Failed in flight: log the transaction for retransfer.
              report.records.push_back({name, c, attempt, false});
              throw TransientError("chunk " + std::to_string(c) + " of '" +
                                   name + "' lost in flight");
            }
            dst.writeAt(offset, std::span<const std::byte>(chunk));
          },
          &rs);
      report.attempts += static_cast<std::uint64_t>(rs.attempts);
      report.chunksFailed += static_cast<std::uint64_t>(rs.failures);
      report.chunksRetried += static_cast<std::uint64_t>(rs.failures);
      telemetry::count(telemetry::Counter::TransferBytes, len);
      telemetry::count(telemetry::Counter::TransferRetries,
                       static_cast<std::uint64_t>(rs.failures));
      if (rs.failures > 0) {
        // Mark every failed transaction for this chunk as recovered.
        for (auto& rec : report.records)
          if (rec.file == name && rec.chunkIndex == c) rec.recovered = true;
      }
      report.bytesMoved += len;
    }

    // Verify: re-read the destination and compare digests (the workflow's
    // pipelined MD5 verification step).
    Md5 verify;
    for (std::uint64_t offset = 0; offset < size;
         offset += config_.chunkBytes) {
      const std::size_t len = static_cast<std::size_t>(
          std::min<std::uint64_t>(config_.chunkBytes, size - offset));
      chunk.resize(len);
      dst.readAt(offset, chunk);
      verify.update(chunk.data(), chunk.size());
    }
    const auto a = srcDigest.digest();
    const auto b = verify.digest();
    if (a != b) report.allVerified = false;
    ++report.filesMoved;
  }
  return report;
}

}  // namespace awp::workflow
