#include "workflow/transfer.hpp"

#include <algorithm>
#include <vector>

#include "io/shared_file.hpp"
#include "util/error.hpp"
#include "util/md5.hpp"

namespace awp::workflow {

TransferChannel::TransferChannel(const TransferConfig& config)
    : config_(config), rng_(config.seed) {}

TransferReport TransferChannel::transfer(
    const std::string& srcDir, const std::string& dstDir,
    const std::vector<std::string>& files) {
  TransferReport report;
  report.allVerified = true;

  for (const auto& name : files) {
    io::SharedFile src(srcDir + "/" + name, io::SharedFile::Mode::Read);
    io::SharedFile dst(dstDir + "/" + name, io::SharedFile::Mode::Write);
    const std::uint64_t size = src.size();
    dst.truncate(size);

    Md5 srcDigest, dstDigest;
    std::vector<std::byte> chunk;
    const std::uint64_t nChunks =
        (size + config_.chunkBytes - 1) / config_.chunkBytes;

    for (std::uint64_t c = 0; c < nChunks; ++c) {
      const std::uint64_t offset = c * config_.chunkBytes;
      const std::size_t len = static_cast<std::size_t>(
          std::min<std::uint64_t>(config_.chunkBytes, size - offset));
      chunk.resize(len);
      src.readAt(offset, chunk);
      srcDigest.update(chunk.data(), chunk.size());

      int attempt = 0;
      for (;;) {
        ++attempt;
        report.simulatedSeconds +=
            static_cast<double>(len) / config_.bandwidthBytesPerSec;
        if (rng_.uniform() < config_.chunkFailureProb &&
            attempt <= config_.maxRetries) {
          // Failed in flight: log the transaction and retransfer.
          ++report.chunksFailed;
          ++report.chunksRetried;
          report.records.push_back({name, c, attempt, false});
          continue;
        }
        dst.writeAt(offset, std::span<const std::byte>(chunk));
        if (attempt > 1) {
          // Mark every failed transaction for this chunk as recovered.
          for (auto& rec : report.records) {
            if (rec.file == name && rec.chunkIndex == c)
              rec.recovered = true;
          }
        }
        break;
      }
      report.bytesMoved += len;
    }

    // Verify: re-read the destination and compare digests (the workflow's
    // pipelined MD5 verification step).
    Md5 verify;
    for (std::uint64_t offset = 0; offset < size;
         offset += config_.chunkBytes) {
      const std::size_t len = static_cast<std::size_t>(
          std::min<std::uint64_t>(config_.chunkBytes, size - offset));
      chunk.resize(len);
      dst.readAt(offset, chunk);
      verify.update(chunk.data(), chunk.size());
    }
    const auto a = srcDigest.digest();
    const auto b = verify.digest();
    if (a != b) report.allVerified = false;
    ++report.filesMoved;
  }
  return report;
}

}  // namespace awp::workflow
