#include "workflow/archive.hpp"

#include <algorithm>

#include "io/shared_file.hpp"
#include "util/error.hpp"
#include "util/md5.hpp"

namespace awp::workflow {

namespace {
std::string fileMd5(const std::string& path, std::uint64_t& bytesOut) {
  io::SharedFile f(path, io::SharedFile::Mode::Read);
  const std::uint64_t size = f.size();
  bytesOut = size;
  Md5 digest;
  std::vector<std::byte> chunk(1 << 20);
  for (std::uint64_t offset = 0; offset < size;
       offset += chunk.size()) {
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk.size(), size - offset));
    f.readAt(offset, std::span<std::byte>(chunk.data(), len));
    digest.update(chunk.data(), len);
  }
  return Md5::toHex(digest.digest());
}
}  // namespace

void ArchiveRegistry::ingestFile(const std::string& path,
                                 const std::string& collection,
                                 const std::string& logicalName,
                                 int replicas) {
  ArchiveEntry e;
  e.logicalName = logicalName;
  e.collection = collection;
  e.replicas = replicas;
  e.md5Hex = fileMd5(path, e.bytes);
  entries_[logicalName] = std::move(e);
}

bool ArchiveRegistry::contains(const std::string& logicalName) const {
  return entries_.count(logicalName) > 0;
}

const ArchiveEntry& ArchiveRegistry::entry(
    const std::string& logicalName) const {
  auto it = entries_.find(logicalName);
  AWP_CHECK_MSG(it != entries_.end(),
                "archive entry not found: " + logicalName);
  return it->second;
}

bool ArchiveRegistry::verify(const std::string& logicalName,
                             const std::string& path) const {
  std::uint64_t bytes = 0;
  const std::string digest = fileMd5(path, bytes);
  const auto& e = entry(logicalName);
  return digest == e.md5Hex && bytes == e.bytes;
}

std::uint64_t ArchiveRegistry::totalBytes() const {
  std::uint64_t total = 0;
  for (const auto& [name, e] : entries_) total += e.bytes;
  return total;
}

std::vector<std::string> ArchiveRegistry::listCollection(
    const std::string& collection) const {
  std::vector<std::string> names;
  for (const auto& [name, e] : entries_)
    if (e.collection == collection) names.push_back(name);
  return names;
}

double IngestionModel::aggregateRate(int streams) const {
  if (streams <= 0) return 0.0;
  return std::min(static_cast<double>(streams) * perStreamBytesPerSec,
                  backendCapBytesPerSec);
}

double IngestionModel::ingestSeconds(std::uint64_t bytes,
                                     int streams) const {
  const double rate = aggregateRate(streams);
  return rate > 0.0 ? static_cast<double>(bytes) / rate : 0.0;
}

}  // namespace awp::workflow
