#pragma once
// Flat, strided 3D array. The x index is fastest (matches the Fortran
// memory order of the original AWP-ODC kernels, so the cache-blocking
// discussion in the paper carries over unchanged).

#include <cassert>
#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace awp {

template <typename T>
class Array3 {
 public:
  Array3() = default;
  Array3(std::size_t nx, std::size_t ny, std::size_t nz, T fill = T{})
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, fill) {}

  void resize(std::size_t nx, std::size_t ny, std::size_t nz, T fill = T{}) {
    nx_ = nx;
    ny_ = ny;
    nz_ = nz;
    data_.assign(nx * ny * nz, fill);
  }

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j,
                                  std::size_t k) const {
    assert(i < nx_ && j < ny_ && k < nz_);
    return i + nx_ * (j + ny_ * k);
  }

  T& operator()(std::size_t i, std::size_t j, std::size_t k) {
    return data_[index(i, j, k)];
  }
  const T& operator()(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[index(i, j, k)];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(T value) { data_.assign(data_.size(), value); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<T> data_;
};

using Array3f = Array3<float>;
using Array3d = Array3<double>;

}  // namespace awp
