#include "util/filter.hpp"

#include <cmath>

#include "util/error.hpp"

namespace awp {

double Biquad::step(double x) {
  const double y = b0 * x + z1;
  z1 = b1 * x - a1 * y + z2;
  z2 = b2 * x - a2 * y;
  return y;
}

ButterworthLowpass::ButterworthLowpass(int order, double fc, double dt) {
  AWP_CHECK_MSG(order > 0 && order % 2 == 0,
                "Butterworth order must be a positive even number");
  AWP_CHECK_MSG(fc > 0.0 && fc < 0.5 / dt,
                "cutoff must be below the Nyquist frequency");

  // Bilinear transform with frequency pre-warping.
  const double wc = std::tan(M_PI * fc * dt);
  const int nSections = order / 2;
  sections_.reserve(nSections);
  for (int s = 0; s < nSections; ++s) {
    // Analog pole pair angle for Butterworth: evenly spaced on unit circle.
    const double theta =
        M_PI * (2.0 * s + 1.0) / (2.0 * order) + M_PI / 2.0;
    const double q = -2.0 * std::cos(theta);  // = 1/Q of the section
    const double norm = 1.0 + q * wc + wc * wc;
    Biquad bq{};
    bq.b0 = wc * wc / norm;
    bq.b1 = 2.0 * bq.b0;
    bq.b2 = bq.b0;
    bq.a1 = 2.0 * (wc * wc - 1.0) / norm;
    bq.a2 = (1.0 - q * wc + wc * wc) / norm;
    sections_.push_back(bq);
  }
}

double ButterworthLowpass::step(double x) {
  for (auto& s : sections_) x = s.step(x);
  return x;
}

void ButterworthLowpass::reset() {
  for (auto& s : sections_) s.reset();
}

std::vector<double> ButterworthLowpass::apply(const std::vector<double>& x) {
  reset();
  std::vector<double> y;
  y.reserve(x.size());
  for (double v : x) y.push_back(step(v));
  return y;
}

std::vector<double> resampleLinear(const std::vector<double>& x, double dtIn,
                                   double dtOut) {
  AWP_CHECK(dtIn > 0.0 && dtOut > 0.0);
  if (x.empty()) return {};
  const double duration = dtIn * static_cast<double>(x.size() - 1);
  const std::size_t nOut =
      static_cast<std::size_t>(std::floor(duration / dtOut)) + 1;
  std::vector<double> y;
  y.reserve(nOut);
  for (std::size_t i = 0; i < nOut; ++i) {
    const double t = static_cast<double>(i) * dtOut;
    const double u = t / dtIn;
    const std::size_t k0 = std::min<std::size_t>(
        static_cast<std::size_t>(std::floor(u)), x.size() - 1);
    const std::size_t k1 = std::min<std::size_t>(k0 + 1, x.size() - 1);
    const double frac = u - static_cast<double>(k0);
    y.push_back(x[k0] * (1.0 - frac) + x[k1] * frac);
  }
  return y;
}

}  // namespace awp
