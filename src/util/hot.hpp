#pragma once
// AWP_HOT marks the per-step hot path: the solver step loop, the FD
// kernels, halo pack/unpack, and the PML/sponge boundary updates. The
// marker does two jobs:
//  * tells the optimizer the function is hot (GCC/Clang `hot` attribute:
//    more aggressive inlining/layout, grouped in the .text.hot section);
//  * registers the function with awplint's hot-path hygiene rule — no
//    allocation, container growth, string construction, or throwing calls
//    inside (see tools/awplint and DESIGN.md §10). The set of functions
//    that MUST carry this marker is pinned in tools/awplint/hot_registry.txt
//    so the marker cannot silently disappear in a refactor.

#if defined(__GNUC__) || defined(__clang__)
#define AWP_HOT [[gnu::hot]]
#else
#define AWP_HOT
#endif
