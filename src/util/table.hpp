#pragma once
// Plain-text table printer used by the bench harnesses to emit the rows and
// series of the paper's tables and figures.

#include <iosfwd>
#include <string>
#include <vector>

namespace awp {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Add a row; each cell is already formatted.
  void addRow(std::vector<std::string> cells);

  void print(std::ostream& os) const;

  // Cell formatting helpers.
  static std::string num(double v, int precision = 3);
  static std::string sci(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace awp
