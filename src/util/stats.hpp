#pragma once
// Small numeric helpers shared by analysis, tests, and benches.

#include <cstddef>
#include <vector>

namespace awp {

double mean(const std::vector<double>& x);
double stddev(const std::vector<double>& x);
double minOf(const std::vector<double>& x);
double maxOf(const std::vector<double>& x);
// p in [0,100]; linear interpolation between order statistics.
double percentile(std::vector<double> x, double p);
// Median of the vector (copy-based).
double median(std::vector<double> x);

// Relative L2 misfit ||a-b|| / ||b||; the aVal acceptance metric (§III.H).
double l2Misfit(const std::vector<double>& a, const std::vector<double>& b);

// n evenly spaced values from lo to hi inclusive.
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace awp
