#pragma once
// Iterative radix-2 FFT, enough for the spectral needs of the reproduction:
// von Kármán random field synthesis on the fault plane (§VII.A) and the
// spectral analysis of seismograms (§VII.C).

#include <complex>
#include <vector>

namespace awp {

using Complex = std::complex<double>;

// In-place FFT; n must be a power of two. inverse=true applies 1/n scaling.
void fft(std::vector<Complex>& a, bool inverse);

// 2D FFT over a row-major nx-by-ny grid (a.size() == nx*ny).
void fft2d(std::vector<Complex>& a, std::size_t nx, std::size_t ny,
           bool inverse);

// Smallest power of two >= n.
std::size_t nextPow2(std::size_t n);

// One-sided amplitude spectrum of a real series sampled at dt. Returns
// (frequency, amplitude) pairs for bins 0..n/2.
struct Spectrum {
  std::vector<double> frequency;
  std::vector<double> amplitude;
};
Spectrum amplitudeSpectrum(const std::vector<double>& series, double dt);

}  // namespace awp
