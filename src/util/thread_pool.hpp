#pragma once
// Minimal persistent thread pool with a blocking parallel-for, backing the
// MPI/OpenMP-hybrid execution mode of §IV.D ("multiple OpenMP threads,
// spawned from a single MPI process, directly access shared memory within
// a node"). One pool per rank; parallelFor splits an index range into
// contiguous chunks, one per worker, and blocks until all complete.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/guarded.hpp"

namespace awp {

class ThreadPool {
 public:
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workers() const {
    return static_cast<int>(threads_.size()) + 1;  // + the calling thread
  }

  // Run fn(begin, end) over contiguous chunks of [begin, end) on the
  // workers plus the calling thread; returns when every chunk is done.
  void parallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Task {
    std::size_t begin = 0, end = 0;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  };

  void workerLoop(std::size_t index);

  std::vector<std::thread> threads_;
  std::vector<Task> tasks_ AWP_GUARDED_BY(mutex_);  // one slot per worker
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  // bumped per parallelFor
  std::size_t generation_ AWP_GUARDED_BY(mutex_) = 0;
  std::size_t pending_ AWP_GUARDED_BY(mutex_) = 0;
  bool stop_ AWP_GUARDED_BY(mutex_) = false;
};

}  // namespace awp
