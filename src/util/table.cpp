#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace awp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::addRow(std::vector<std::string> cells) {
  AWP_CHECK_MSG(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto printRow = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << " " << std::setw(static_cast<int>(width[c])) << std::left
         << row[c] << " |";
    os << "\n";
  };

  printRow(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) printRow(row);
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

}  // namespace awp
