#include "util/rng.hpp"

#include <cmath>

namespace awp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::nextU64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into the mantissa.
  return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::gaussian() {
  if (haveCached_) {
    haveCached_ = false;
    return cached_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_ = r * std::sin(theta);
  haveCached_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = nextU64();
  while (v >= limit) v = nextU64();
  return v % n;
}

Rng Rng::split(std::uint64_t stream) const {
  // Mix the current state with the stream id through splitmix.
  std::uint64_t x = s_[0] ^ rotl(stream, 32) ^ s_[3];
  return Rng(splitmix64(x));
}

}  // namespace awp
