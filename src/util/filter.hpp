#pragma once
// Butterworth low-pass filtering and resampling for moment-rate time
// histories. The M8 two-step method inserts the dynamic-rupture source into
// the wave-propagation run "after applying temporal interpolation and a
// 4th-order low-pass filter with a cut-off frequency of 2 Hz" (§VII.B).

#include <vector>

namespace awp {

// One biquad section (direct form II transposed).
struct Biquad {
  double b0, b1, b2, a1, a2;
  double z1 = 0.0, z2 = 0.0;
  double step(double x);
  void reset() { z1 = z2 = 0.0; }
};

// Butterworth low-pass of even order `order` (2, 4, 6, ...) with cutoff
// frequency fc [Hz] at sampling interval dt [s], as a cascade of biquads.
class ButterworthLowpass {
 public:
  ButterworthLowpass(int order, double fc, double dt);

  double step(double x);
  void reset();
  // Filter a whole series (single pass, causal).
  std::vector<double> apply(const std::vector<double>& x);

 private:
  std::vector<Biquad> sections_;
};

// Linear-interpolation resampling from step dtIn to dtOut, preserving the
// duration of the input series.
std::vector<double> resampleLinear(const std::vector<double>& x, double dtIn,
                                   double dtOut);

}  // namespace awp
