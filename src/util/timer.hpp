#pragma once
// Wall-clock stopwatch and a cumulative phase timer matching the paper's
// execution-time decomposition Ttot = Tcomp + Tcomm + Tsync + γToutput
// + φTreini (Eq. 7).

#include <array>
#include <chrono>
#include <cstddef>
#include <string_view>

namespace awp {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void restart() { start_ = Clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Phases of the solver main loop, in the paper's Eq. (7) order.
enum class Phase : std::size_t {
  Compute = 0,
  Communicate,
  Synchronize,
  Output,
  Reinit,
  kCount
};

inline constexpr std::array<std::string_view,
                            static_cast<std::size_t>(Phase::kCount)>
    kPhaseNames = {"compute", "comm", "sync", "output", "reinit"};

class PhaseTimer {
 public:
  // Accumulate `seconds` into a phase bucket.
  void add(Phase p, double seconds) {
    total_[static_cast<std::size_t>(p)] += seconds;
  }
  [[nodiscard]] double get(Phase p) const {
    return total_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] double total() const {
    double t = 0.0;
    for (double x : total_) t += x;
    return t;
  }
  void reset() { total_.fill(0.0); }

 private:
  std::array<double, static_cast<std::size_t>(Phase::kCount)> total_{};
};

// RAII helper: times a scope into a PhaseTimer bucket.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer& timer, Phase phase) : timer_(timer), phase_(phase) {}
  ~ScopedPhase() { timer_.add(phase_, watch_.seconds()); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& timer_;
  Phase phase_;
  Stopwatch watch_;
};

}  // namespace awp
