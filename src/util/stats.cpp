#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace awp {

double mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double stddev(const std::vector<double>& x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(x.size() - 1));
}

double minOf(const std::vector<double>& x) {
  AWP_CHECK(!x.empty());
  return *std::min_element(x.begin(), x.end());
}

double maxOf(const std::vector<double>& x) {
  AWP_CHECK(!x.empty());
  return *std::max_element(x.begin(), x.end());
}

double percentile(std::vector<double> x, double p) {
  AWP_CHECK(!x.empty());
  AWP_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(x.begin(), x.end());
  const double pos = p / 100.0 * static_cast<double>(x.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, x.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return x[lo] * (1.0 - frac) + x[hi] * frac;
}

double median(std::vector<double> x) { return percentile(std::move(x), 50.0); }

double l2Misfit(const std::vector<double>& a, const std::vector<double>& b) {
  AWP_CHECK(a.size() == b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    num += d * d;
    den += b[i] * b[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : 1.0;
  return std::sqrt(num / den);
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  std::vector<double> v;
  v.reserve(n);
  if (n == 1) {
    v.push_back(lo);
    return v;
  }
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(lo + step * static_cast<double>(i));
  return v;
}

}  // namespace awp
