#pragma once
// Error handling for the AWP-ODC reproduction. All recoverable failures are
// reported as awp::Error; AWP_CHECK is for programmer-contract violations
// that must hold in release builds too (I/O layouts, partition arithmetic).

#include <sstream>
#include <stdexcept>
#include <string>

namespace awp {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// A failure that is expected to clear on retry: interrupted transfers,
// injected transient I/O faults, momentarily unreachable storage. The
// shared retry policy (util/retry.hpp) retries these by default and treats
// every other Error as permanent.
class TransientError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "AWP_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace awp

#define AWP_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::awp::detail::checkFailed(#expr, __FILE__, __LINE__, "");     \
  } while (false)

#define AWP_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr))                                                     \
      ::awp::detail::checkFailed(#expr, __FILE__, __LINE__, (msg));  \
  } while (false)
