#include "util/thread_pool.hpp"

#include "util/error.hpp"

namespace awp {

ThreadPool::ThreadPool(int workers) {
  AWP_CHECK(workers >= 1);
  const int helpers = workers - 1;  // the caller is worker 0
  tasks_.resize(static_cast<std::size_t>(helpers));
  threads_.reserve(static_cast<std::size_t>(helpers));
  for (int w = 0; w < helpers; ++w)
    threads_.emplace_back(
        [this, w] { workerLoop(static_cast<std::size_t>(w)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::workerLoop(std::size_t index) {
  std::size_t seen = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = tasks_[index];
    }
    if (task.fn != nullptr && task.begin < task.end)
      (*task.fn)(task.begin, task.end);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
    }
    done_.notify_one();
  }
}

void ThreadPool::parallelFor(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t parts = threads_.size() + 1;
  const std::size_t chunk = (n + parts - 1) / parts;

  Task mine{};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t at = begin;
    for (std::size_t w = 0; w < threads_.size(); ++w) {
      tasks_[w].begin = std::min(at, end);
      tasks_[w].end = std::min(at + chunk, end);
      tasks_[w].fn = &fn;
      at += chunk;
    }
    mine.begin = std::min(at, end);
    mine.end = std::min(at + chunk, end);
    pending_ = threads_.size();
    ++generation_;
  }
  wake_.notify_all();

  if (mine.begin < mine.end) fn(mine.begin, mine.end);

  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return pending_ == 0; });
}

}  // namespace awp
