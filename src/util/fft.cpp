#include "util/fft.hpp"

#include <cmath>

#include "util/error.hpp"

namespace awp {

std::size_t nextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  AWP_CHECK_MSG((n & (n - 1)) == 0, "fft size must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const Complex wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }

  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv;
  }
}

void fft2d(std::vector<Complex>& a, std::size_t nx, std::size_t ny,
           bool inverse) {
  AWP_CHECK(a.size() == nx * ny);
  std::vector<Complex> row(nx);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) row[i] = a[i + nx * j];
    fft(row, inverse);
    for (std::size_t i = 0; i < nx; ++i) a[i + nx * j] = row[i];
  }
  std::vector<Complex> col(ny);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) col[j] = a[i + nx * j];
    fft(col, inverse);
    for (std::size_t j = 0; j < ny; ++j) a[i + nx * j] = col[j];
  }
}

Spectrum amplitudeSpectrum(const std::vector<double>& series, double dt) {
  const std::size_t n = nextPow2(series.size());
  std::vector<Complex> buf(n, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < series.size(); ++i) buf[i] = Complex(series[i]);
  fft(buf, false);

  Spectrum s;
  const double df = 1.0 / (static_cast<double>(n) * dt);
  s.frequency.reserve(n / 2 + 1);
  s.amplitude.reserve(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    s.frequency.push_back(df * static_cast<double>(k));
    s.amplitude.push_back(std::abs(buf[k]) * dt);
  }
  return s;
}

}  // namespace awp
