#pragma once
// Lock-discipline annotations, checked by awplint (rule family 4, see
// DESIGN.md §10). Both expand to nothing at compile time — they are
// structured comments the analyzer can verify rather than prose that
// drifts:
//
//   AWP_GUARDED_BY(mutex_)  — on a data member: every read or write of
//       the member in a member function must happen with `mutex_` held
//       (a lock_guard/scoped_lock/unique_lock/shared_lock in scope, a
//       manual .lock() without an intervening .unlock(), or an
//       AWP_REQUIRES contract on the enclosing function). Constructors
//       and destructors are exempt — no other thread can hold a
//       reference yet/anymore.
//
//           std::deque<Message> queue_ AWP_GUARDED_BY(mutex_);
//
//   AWP_REQUIRES(mutex_)    — on a function or member-function
//       declaration, between the parameter list and the body or `;`:
//       callers must already hold `mutex_`; the body is checked as if
//       the lock were taken on entry. This is the `...Locked()` helper
//       contract the codebase already uses by naming convention, made
//       checkable.
//
//           void drainLocked() AWP_REQUIRES(mutex_);
//
// awplint also records every lock-acquisition ordering (which locks are
// held when another is taken, through calls too) and flags pairs taken
// in both orders anywhere in the program — the classic deadlock shape.
// Suppressions: `// awplint: guard-ok(<why>)`, `// awplint: lock-ok(<why>)`.
//
// These are deliberately NOT the clang `guarded_by`/`requires_capability`
// attributes: the solver builds with GCC on the target machines, and the
// clang attributes demand capability types on the mutex wrappers. The
// awplint checker understands plain std::mutex members.

#define AWP_GUARDED_BY(mutex)
#define AWP_REQUIRES(mutex)
