#pragma once
// The single retry policy behind every fault-tolerant path in the
// reproduction (§III.F/§III.I: component failure is the expected case at
// petascale, so transfers, shared-file writes and workflow stages all
// recover automatically). Bounded attempts, exponential backoff with
// deterministic jitter (seeded, so chaos tests replay exactly), and a
// process-wide per-site statistics registry so benches and tests can
// assert on how often each site actually retried.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>

#include "util/error.hpp"

namespace awp::util {

struct RetryPolicy {
  int maxAttempts = 3;            // total attempts, including the first
  double baseDelaySeconds = 0.0;  // backoff before the 2nd attempt
  double backoffFactor = 2.0;     // delay multiplier per further failure
  double maxDelaySeconds = 0.5;   // backoff ceiling
  double jitterFraction = 0.25;   // +/- this fraction of the delay
  std::uint64_t seed = 0x5eedULL; // jitter stream (deterministic)
};

struct RetryStats {
  int attempts = 0;           // attempts actually made (>= 1)
  int failures = 0;           // failed attempts among them
  double backoffSeconds = 0;  // total backoff delay inserted
  std::string lastError;      // what() of the most recent failure
};

// FNV-1a — used to salt jitter streams per site and to derive
// order-invariant per-item RNG streams (e.g. per transfer file).
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Backoff before retrying after the `failureIndex`-th failure (1-based).
// Pure function of (policy, site, failureIndex) — no global RNG state, so
// concurrent ranks retrying the same site stay deterministic.
double retryBackoffSeconds(const RetryPolicy& policy, std::string_view site,
                           int failureIndex);

// Cumulative per-site retry accounting, aggregated across the process.
struct RetrySiteStats {
  std::uint64_t calls = 0;      // retryCall invocations
  std::uint64_t attempts = 0;   // total attempts
  std::uint64_t failures = 0;   // failed attempts
  std::uint64_t exhausted = 0;  // calls that ran out of attempts
};

std::map<std::string, RetrySiteStats> retryRegistrySnapshot();
void resetRetryRegistry();

namespace detail {

void recordRetry(std::string_view site, const RetryStats& stats,
                 bool succeeded);
bool currentExceptionIsTransient();
std::string currentExceptionMessage();

template <bool RetryAll, typename Fn>
auto retryImpl(const RetryPolicy& policy, std::string_view site, Fn&& fn,
               RetryStats* out) {
  RetryStats stats;
  const int maxAttempts = policy.maxAttempts < 1 ? 1 : policy.maxAttempts;
  auto finish = [&](bool succeeded) {
    if (out != nullptr) *out = stats;
    recordRetry(site, stats, succeeded);
  };
  auto invoke = [&](int attempt) {
    if constexpr (std::is_invocable_v<Fn&, int>) {
      return fn(attempt);
    } else {
      (void)attempt;
      return fn();
    }
  };
  for (int attempt = 1;; ++attempt) {
    ++stats.attempts;
    try {
      if constexpr (std::is_void_v<decltype(invoke(attempt))>) {
        invoke(attempt);
        finish(true);
        return;
      } else {
        auto result = invoke(attempt);
        finish(true);
        return result;
      }
    } catch (...) {
      ++stats.failures;
      stats.lastError = currentExceptionMessage();
      const bool retryable = RetryAll || currentExceptionIsTransient();
      if (!retryable || attempt >= maxAttempts) {
        finish(false);
        throw;
      }
    }
    const double delay = retryBackoffSeconds(policy, site, stats.failures);
    stats.backoffSeconds += delay;
    if (delay > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

}  // namespace detail

// Run `fn` (optionally taking the 1-based attempt index) with bounded
// retries on awp::TransientError; any other exception propagates
// immediately. Returns fn's result; rethrows the last failure when
// attempts are exhausted.
template <typename Fn>
auto retryCall(const RetryPolicy& policy, std::string_view site, Fn&& fn,
               RetryStats* stats = nullptr) {
  return detail::retryImpl<false>(policy, site, std::forward<Fn>(fn), stats);
}

// Same, but retries on *any* thrown object (workflow stages are re-runnable
// by design, whatever they threw).
template <typename Fn>
auto retryCallAny(const RetryPolicy& policy, std::string_view site, Fn&& fn,
                  RetryStats* stats = nullptr) {
  return detail::retryImpl<true>(policy, site, std::forward<Fn>(fn), stats);
}

}  // namespace awp::util
