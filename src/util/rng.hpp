#pragma once
// Deterministic random number generation. Everything stochastic in the
// reproduction (von Kármán stress fields, failure injection, workload
// jitter) derives from a seeded Xoshiro256** stream so runs are replayable
// across rank counts.

#include <cstdint>

namespace awp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t nextU64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Standard normal via Box–Muller (cached second deviate).
  double gaussian();
  double gaussian(double mean, double stddev);
  // Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

  // Derive an independent child stream (for per-rank determinism).
  Rng split(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
  bool haveCached_ = false;
  double cached_ = 0.0;
};

}  // namespace awp
