#pragma once
// MD5 implemented from scratch (RFC 1321). The paper generates MD5
// checksums in parallel, one per mesh sub-array, to track the integrity of
// multi-terabyte simulation collections (§III.E, §III.I). This is that
// primitive; the parallel driver lives in src/io/checksum.*.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace awp {

class Md5 {
 public:
  Md5();

  void update(const void* data, std::size_t len);
  // Finalize and return the 16-byte digest. The object may not be updated
  // afterwards (reset() to reuse).
  std::array<std::uint8_t, 16> digest();
  void reset();

  // One-shot helpers.
  static std::array<std::uint8_t, 16> hash(const void* data, std::size_t len);
  static std::string hexDigest(const void* data, std::size_t len);
  static std::string toHex(const std::array<std::uint8_t, 16>& d);

 private:
  void processBlock(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t totalBits_ = 0;
  std::uint8_t buffer_[64];
  std::size_t bufferLen_ = 0;
  bool finalized_ = false;
};

}  // namespace awp
