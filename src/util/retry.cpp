#include "util/retry.hpp"

#include <algorithm>
#include <exception>
#include <mutex>

namespace awp::util {

namespace {

// splitmix64: one-shot mixing for jitter derivation.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::mutex& registryMutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, RetrySiteStats>& registry() {
  static std::map<std::string, RetrySiteStats> r;
  return r;
}

}  // namespace

double retryBackoffSeconds(const RetryPolicy& policy, std::string_view site,
                           int failureIndex) {
  if (policy.baseDelaySeconds <= 0.0 || failureIndex < 1) return 0.0;
  double delay = policy.baseDelaySeconds;
  for (int i = 1; i < failureIndex; ++i) delay *= policy.backoffFactor;
  delay = std::min(delay, policy.maxDelaySeconds);
  if (policy.jitterFraction > 0.0) {
    const std::uint64_t h = mix64(policy.seed ^ fnv1a(site) ^
                                  static_cast<std::uint64_t>(failureIndex));
    // Map the hash to [-1, 1) and scale by the jitter fraction.
    const double unit =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
    delay *= 1.0 + policy.jitterFraction * (2.0 * unit - 1.0);
  }
  return std::max(delay, 0.0);
}

std::map<std::string, RetrySiteStats> retryRegistrySnapshot() {
  std::lock_guard<std::mutex> lock(registryMutex());
  return registry();
}

void resetRetryRegistry() {
  std::lock_guard<std::mutex> lock(registryMutex());
  registry().clear();
}

namespace detail {

void recordRetry(std::string_view site, const RetryStats& stats,
                 bool succeeded) {
  std::lock_guard<std::mutex> lock(registryMutex());
  auto& s = registry()[std::string(site)];
  ++s.calls;
  s.attempts += static_cast<std::uint64_t>(stats.attempts);
  s.failures += static_cast<std::uint64_t>(stats.failures);
  if (!succeeded) ++s.exhausted;
}

bool currentExceptionIsTransient() {
  try {
    throw;
  } catch (const TransientError&) {
    return true;
  } catch (...) {
    return false;
  }
}

std::string currentExceptionMessage() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

}  // namespace detail

}  // namespace awp::util
