#pragma once
// ProductPublisher: the scenario service's outbound hook into a serving
// tier. The service stays ignorant of tiles, subscriptions, and hazard
// queries — it only reports two facts a read path needs:
//
//  * onWindowFlush — a rank's AggregatedWriter advanced its durable
//    sample prefix in the scenario's step-indexed surface file. Fired on
//    the rank thread, mid-run; a serving tier can fold the freshly
//    durable samples into partial hazard products. `lowestRewritten`
//    carries the rollback-replay low-water mark (io::kNoRewrite when no
//    flushed sample was rewritten in place) so the tier can tell cheap
//    monotone progress from a replay that invalidates folded history.
//
//  * onScenarioComplete — the scenario settled with products (a fresh
//    run, a cache hit, or a degraded broker serving memoized work). The
//    products' canonical bytes are authoritative: a serving tier must
//    converge its published state to them no matter what it saw (or
//    missed) mid-run.
//
// Both calls may arrive multiple times for the same digest (retries,
// respawns, at-least-once fabric replay) and from several threads;
// implementations must be idempotent and thread-safe.

#include <cstdint>
#include <string>

#include "sched/spec.hpp"

namespace awp::sched {

// Everything a serving tier needs to interpret one scenario's surface
// stream: the spec identity, its geometry knobs, and the step-indexed
// surface file the ranks are writing.
struct SurfaceRunInfo {
  std::string specHash;     // physics digest (32-hex MD5)
  ScenarioSpec spec;        // dims/nranks/cadence for layout recovery
  std::string surfacePath;  // step-indexed surface.bin of the active owner
};

class ProductPublisher {
 public:
  virtual ~ProductPublisher() = default;

  // A rank's durable surface prefix advanced to `durableSamples`.
  // `lowestRewritten` is the smallest already-flushed sample index
  // rewritten in place since the previous notification for this rank
  // (io::kNoRewrite when none). `origin` identifies the publishing
  // service (broker id inside a fabric; ServiceConfig::publishOriginId
  // otherwise) — it is the fault-injection rank for the serve_* sites.
  virtual void onWindowFlush(const SurfaceRunInfo& info, int origin,
                             int rank, std::uint64_t durableSamples,
                             std::uint64_t lowestRewritten) = 0;

  // The scenario settled with products. Must converge published state to
  // the canonical product bytes; duplicate completions (fabric replay
  // races) must not re-notify or regress versions.
  virtual void onScenarioComplete(const SurfaceRunInfo& info, int origin,
                                  const ScenarioProducts& products) = 0;
};

}  // namespace awp::sched
