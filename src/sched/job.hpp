#pragma once
// JobState: the shared record of one submitted scenario as it moves
// through the service — queued, leased to a worker, possibly requeued
// after a crash/stall/fatal verdict, and finally settled (Completed,
// Failed or Rejected). The handle is shared between the submitter, the
// admission queue, the dispatcher, the worker running the attempt, and
// the per-job watchdog; the cancel flag and abort markers are atomics so
// the watchdog and fault hooks can request cancellation without touching
// the job mutex from inside a rank thread.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/spec.hpp"
#include "util/error.hpp"
#include "util/guarded.hpp"

namespace awp::sched {

enum class JobPhase { Queued, Running, Completed, Failed, Rejected };

const char* toString(JobPhase phase);

// Why a running attempt was abandoned and the scenario requeued.
enum class RequeueCause : int {
  None = 0,
  WorkerCrash = 1,   // injected/real worker failure mid-attempt
  Stall = 2,         // watchdog stall episode on the job's heartbeat board
  FatalVerdict = 3,  // health guard exhausted its in-run rollback budget
  Aborted = 4,       // service fail-fast abort (never requeues)
};

const char* toString(RequeueCause cause);

struct RequeueEvent {
  RequeueCause cause = RequeueCause::None;
  int attempt = 0;             // 1-based attempt that was abandoned
  std::uint64_t atStep = 0;    // solver step when the attempt ended
  double dtNext = 0.0;         // dt override for the next attempt (0 = CFL)
};

// Thrown collectively by every rank of a cancelled attempt: the cancel
// flag is agreed via allreduce at the cancel-check step, so no rank is
// left blocking on a neighbour that already unwound.
class CancelledError : public Error {
 public:
  CancelledError(RequeueCause cause, std::uint64_t step)
      : Error(std::string("scenario attempt cancelled (") +
              sched::toString(cause) + " at step " + std::to_string(step) +
              ")"),
        cause_(cause),
        step_(step) {}

  [[nodiscard]] RequeueCause cause() const { return cause_; }
  [[nodiscard]] std::uint64_t step() const { return step_; }

 private:
  RequeueCause cause_;
  std::uint64_t step_;
};

struct JobState {
  ScenarioSpec spec;
  std::string hash;            // spec.hashHex(), computed at submit
  std::uint64_t submitSeq = 0; // admission order (FIFO within priority)

  // --- cross-thread controls (lock-free) ---
  // RequeueCause as int; nonzero = some party asked this attempt to stop.
  // Set by the watchdog thread and the rank-0 fault consult; read by every
  // rank at the collective cancel-check.
  std::atomic<int> cancelRequested{0};
  // The solver threw a non-cancellation Error (health abort, I/O): the
  // worker maps it to a FatalVerdict requeue.
  std::atomic<bool> fatalAbort{false};
  // Last effective dt observed by rank 0 (feeds dt tightening on requeue).
  std::atomic<double> lastDt{0.0};
  // Step the failed/cancelled attempt reached (for the requeue record).
  std::atomic<std::uint64_t> lastStep{0};

  // --- guarded by mutex ---
  mutable std::mutex mutex;
  std::condition_variable settled;
  JobPhase phase AWP_GUARDED_BY(mutex) = JobPhase::Queued;
  int attempts AWP_GUARDED_BY(mutex) = 0;  // attempts started
  std::vector<RequeueEvent> requeues AWP_GUARDED_BY(mutex);
  // Recovery-ladder bookkeeping: in-place rank respawns absorbed by this
  // job's attempts (no requeue), and escalations where the ladder gave up
  // and fell back to cancel-and-requeue.
  int respawns AWP_GUARDED_BY(mutex) = 0;
  int respawnEscalations AWP_GUARDED_BY(mutex) = 0;
  // cacheHit: served from the product cache. coalesced: merged into an
  // in-flight identical spec.
  bool cacheHit AWP_GUARDED_BY(mutex) = false;
  bool coalesced AWP_GUARDED_BY(mutex) = false;
  // Next attempt's dt (0 = spec/CFL default).
  double dtOverride AWP_GUARDED_BY(mutex) = 0.0;
  std::string error AWP_GUARDED_BY(mutex);  // terminal failure description
  // Populated when phase == Completed.
  ScenarioProducts products AWP_GUARDED_BY(mutex);
  // Service-epoch timestamps: submit, first dispatch, settle.
  double submitSeconds AWP_GUARDED_BY(mutex) = 0.0;
  double startSeconds AWP_GUARDED_BY(mutex) = 0.0;
  double endSeconds AWP_GUARDED_BY(mutex) = 0.0;

  void requestCancel(RequeueCause cause) {
    int expected = 0;
    // First cause wins; later requests keep the original attribution.
    cancelRequested.compare_exchange_strong(
        expected, static_cast<int>(cause), std::memory_order_relaxed);
  }

  [[nodiscard]] bool done() {
    std::lock_guard<std::mutex> lock(mutex);
    return phase == JobPhase::Completed || phase == JobPhase::Failed ||
           phase == JobPhase::Rejected;
  }

  // Block until the job settles; returns the terminal phase.
  JobPhase wait() {
    std::unique_lock<std::mutex> lock(mutex);
    settled.wait(lock, [&] {
      return phase == JobPhase::Completed || phase == JobPhase::Failed ||
             phase == JobPhase::Rejected;
    });
    return phase;
  }
};

using JobHandle = std::shared_ptr<JobState>;

}  // namespace awp::sched
