#include "sched/queue.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hot.hpp"

namespace awp::sched {

AdmissionQueue::AdmissionQueue(std::size_t capacity, AdmitPolicy policy)
    : capacity_(capacity), policy_(policy) {
  AWP_CHECK(capacity > 0);
  // Headroom beyond the bound: requeues bypass capacity, and the pop path
  // must never trigger a reallocation (it is a registered hot path).
  items_.reserve(2 * capacity + 8);
}

void AdmissionQueue::insertSorted(JobHandle job) {
  // Ascending (priority, descending seq): back() is the highest priority,
  // and within a priority the OLDEST submission (lowest seq).
  const auto pos = std::upper_bound(
      items_.begin(), items_.end(), job,
      [](const JobHandle& a, const JobHandle& b) {
        if (a->spec.priority != b->spec.priority)
          return a->spec.priority < b->spec.priority;
        return a->submitSeq > b->submitSeq;
      });
  items_.insert(pos, std::move(job));
}

AdmissionQueue::PushResult AdmissionQueue::push(JobHandle job) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) return PushResult::Closed;
  if (items_.size() >= capacity_) {
    if (policy_ == AdmitPolicy::Reject) {
      ++stats_.rejected;
      return PushResult::Rejected;
    }
    ++stats_.blockedPushes;
    space_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return PushResult::Closed;
  }
  insertSorted(std::move(job));
  ++stats_.admitted;
  return PushResult::Admitted;
}

void AdmissionQueue::pushRequeue(JobHandle job) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Requeues land even after close(): a drain must finish accepted work.
  insertSorted(std::move(job));
  ++stats_.requeued;
}

AWP_HOT JobHandle AdmissionQueue::pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (items_.empty()) return nullptr;
  JobHandle job = std::move(items_.back());
  items_.pop_back();
  space_.notify_one();
  return job;
}

AWP_HOT JobHandle AdmissionQueue::popFit(int freeCores,
                                         std::size_t freeBytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = items_.rbegin(); it != items_.rend(); ++it) {
    const ScenarioSpec& spec = (*it)->spec;
    if (spec.nranks > freeCores) continue;
    if (freeBytes != 0 && spec.estimatedBytes() > freeBytes) continue;
    JobHandle job = std::move(*it);
    items_.erase(std::next(it).base());
    space_.notify_one();
    return job;
  }
  return nullptr;
}

void AdmissionQueue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  space_.notify_all();
}

std::vector<JobHandle> AdmissionQueue::drainAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobHandle> out = std::move(items_);
  items_.clear();
  items_.reserve(2 * capacity_ + 8);  // keep the hot-pop no-realloc headroom
  space_.notify_all();
  return out;
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

AdmissionQueue::Stats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace awp::sched
