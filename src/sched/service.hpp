#pragma once
// ScenarioService: the ensemble scheduler. An operator submits
// ScenarioSpecs; the service admits them through a bounded priority queue
// (backpressure: reject or block), leases contiguous thread-cluster core
// ranges out of a global core/memory budget, and runs each scenario as an
// SPMD job under the health guard with a per-attempt watchdog. Identical
// in-flight specs coalesce onto one execution; completed products are
// memoized in a content-addressed artifact cache (spec-hash keyed, MD5
// verified), so a resubmitted spec is served without re-execution and
// concurrent jobs share one mesh generation.
//
// Failure policy: an injected/real worker crash, a watchdog stall episode,
// or a Fatal health verdict cancels the attempt COLLECTIVELY (the cancel
// flag is agreed by allreduce at a fixed step cadence, so no rank is left
// blocking on a dead neighbour) and requeues the scenario with a bounded
// retry budget. Crash and stall retries resume from the job's last
// checkpoint at the SAME dt — the completed products are bit-identical to
// an uninterrupted run. Fatal-verdict retries tighten dt (the run was
// numerically unstable; reproducing it exactly would reproduce the
// blow-up).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime_config.hpp"
#include "health/watchdog.hpp"
#include "sched/artifact_cache.hpp"
#include "sched/job.hpp"
#include "sched/publish.hpp"
#include "sched/queue.hpp"
#include "sched/report.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/registry.hpp"
#include "util/timer.hpp"

namespace awp::sched {

struct ServiceConfig {
  int coreBudget = 4;               // total rank threads leasable at once
  std::size_t memoryBudgetBytes = 0;  // admission memory budget (0 = none)
  std::size_t queueCapacity = 16;
  AdmissionQueue::AdmitPolicy admitPolicy =
      AdmissionQueue::AdmitPolicy::Reject;
  int maxRetries = 2;               // requeues before a job is poison
  double stallTimeoutSeconds = 30.0;  // per-attempt watchdog (0 = off)
  double watchdogPollSeconds = 0.05;
  int cancelCheckEverySteps = 2;    // collective cancel-poll cadence
  double retryDtTighten = 0.5;      // dt scale on fatal-verdict requeue
  // Recovery ladder (wave attempts): in-place rank respawns allowed per
  // attempt before a loss escalates to cancel-and-requeue. Separate from
  // maxRetries — a respawn repairs the RUNNING attempt; a retry restarts
  // it. 0 = legacy behaviour (every loss cancels the attempt).
  int respawnBudget = 1;
  // Diskless buddy checkpointing at the job's checkpoint cadence: each
  // rank replicates its state blob to its ring buddy in memory, so a
  // respawned rank restores without touching the two-generation disk
  // store (which remains the fallback).
  bool buddyCheckpoints = true;
  // Watchdog debounce: consecutive stalled scans before an episode opens.
  int watchdogMissThreshold = 1;
  bool cacheProducts = true;        // memoize completed scenario products
  std::string cacheDir;             // "" = in-memory artifact cache only
  std::string workDir;              // "" = <tmp>/awp-sched
  // Telemetry: when true and no session is installed, the service owns a
  // Session sized to the core budget (slot = lease base + rank) so spans
  // and counters from concurrent jobs never collide.
  bool telemetry = false;
  // Slot offset added to every lease base (slot = slotBase + lease base +
  // rank). Zero for a standalone service; the hazard fabric gives each of
  // its brokers a disjoint slot range of one shared session so concurrent
  // brokers never collide on a span ring.
  int telemetrySlotBase = 0;
  // Dedicated session slot for the dispatcher thread's SchedQueue /
  // SchedDispatch spans. -1 (the default) keeps the legacy mapping — the
  // shared off-rank slot — which is single-writer only while one service
  // exists; the fabric runs several dispatchers concurrently and gives
  // each its own lane.
  int dispatcherTelemetrySlot = -1;
  std::size_t telemetryRingCapacity = std::size_t{1} << 16;
  std::string chromeTracePath;      // whole-service trace at shutdown
  // Serving-tier hook (not owned; may be null). Wave jobs report surface
  // window flushes and scenario completions — fresh runs AND cache hits,
  // so a serving tier converges to canonical products either way.
  // publishOriginId is the fault-injection rank for the serve_* sites
  // (the fabric sets it to the broker id).
  ProductPublisher* publisher = nullptr;
  int publishOriginId = 0;

  static ServiceConfig fromRuntime(const core::RuntimeConfig& rc);
};

class ScenarioService {
 public:
  explicit ScenarioService(ServiceConfig config);
  ~ScenarioService();
  ScenarioService(const ScenarioService&) = delete;
  ScenarioService& operator=(const ScenarioService&) = delete;

  // Admission-controlled submission. Returns immediately with a handle:
  // Completed (cache hit), Rejected (backpressure / closed), or Queued.
  // With the Block policy a full queue blocks the caller until space
  // frees. job->wait() blocks until the job settles.
  JobHandle submit(ScenarioSpec spec);

  // Block until every admitted job has settled (admissions stay open).
  void drain();
  // Close admissions, drain, stop the dispatcher. Idempotent; the
  // destructor calls it.
  void shutdown();

  // Fail-fast abort (the fabric's broker-death path): close admissions,
  // settle every still-queued job as Failed, collectively cancel running
  // attempts (suppressing their requeues), and wait for the workers to
  // unwind. Best-effort: an attempt already past its last cancel-check
  // may still complete — its products are correct and stay cached, which
  // is exactly what at-least-once replay by a new owner wants. Idempotent;
  // concurrent callers block until the first abort finishes draining.
  void abort(const std::string& why);
  [[nodiscard]] bool aborted() const {
    return aborting_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ServiceReport report() const;
  // Completed products for a spec hash, served straight from the artifact
  // cache without submitting anything — how a degraded (partitioned)
  // fabric broker keeps serving hits while parking everything else.
  [[nodiscard]] std::optional<ScenarioProducts> cachedProducts(
      const std::string& hash);
  [[nodiscard]] CacheStats cacheStats() const { return cache_.stats(); }
  [[nodiscard]] AdmissionQueue::Stats queueStats() const {
    return queue_.stats();
  }
  // Watchdog stall episodes observed across all attempts (consumed from
  // each per-attempt watchdog via its callback).
  [[nodiscard]] std::vector<health::StallReport> stallEpisodes() const;
  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  // Private working directory of a (possibly not yet submitted) spec hash:
  // checkpoints under <dir>/ckpt plus the step-indexed surface file. The
  // fabric's handoff seeds a new owner's job dir from a lost broker's.
  [[nodiscard]] std::string jobDirFor(const std::string& hash) const;

 private:
  struct Dispatch {
    JobHandle job;
    int coreBase = -1;
    std::size_t bytes = 0;
  };

  // Pop the best fitting job and lease it a contiguous core range +
  // memory. Registered hot path: no allocation, no throw (a
  // fragmented-budget pop is pushed back, not dropped).
  bool dispatchNext(Dispatch& out) AWP_REQUIRES(dispatchMu_);
  void dispatcherLoop();
  void workerMain(Dispatch d);
  // One attempt of each kind; returns the products on success, throws
  // CancelledError (collective cancellation) or awp::Error.
  ScenarioProducts attemptWave(JobState& job, int coreBase);
  ScenarioProducts attemptRupture(JobState& job, int coreBase);
  void maybeRequeue(const JobHandle& job, RequeueCause cause,
                    std::uint64_t atStep, const std::string& why);
  // Terminal transition: settle the job (and any coalesced followers),
  // release the in-flight registration, update outstanding accounting.
  void settleTerminal(const JobHandle& job, JobPhase phase,
                      const std::string& error, ScenarioProducts products,
                      bool countedPrimary);
  void recordStall(const health::StallReport& report);
  // Respawn/escalation markers for the chrome trace's service lane; `at`
  // is converted to ns since the active telemetry session's epoch (no-op
  // without a session).
  void recordRecoveryInstant(const std::string& name,
                             std::chrono::steady_clock::time_point at);

  ServiceConfig config_;
  ArtifactCache cache_;
  AdmissionQueue queue_;
  Stopwatch epoch_;

  std::unique_ptr<telemetry::Session> ownedSession_;

  // Dispatcher state (dispatchMu_): core/memory accounting + lifecycle.
  mutable std::mutex dispatchMu_;
  std::condition_variable dispatchCv_;
  std::vector<char> coreBusy_ AWP_GUARDED_BY(dispatchMu_);
  std::size_t memoryUsed_ AWP_GUARDED_BY(dispatchMu_) = 0;
  int activeWorkers_ AWP_GUARDED_BY(dispatchMu_) = 0;
  bool signal_ AWP_GUARDED_BY(dispatchMu_) = false;
  bool stopping_ AWP_GUARDED_BY(dispatchMu_) = false;
  bool shutdownDone_ AWP_GUARDED_BY(dispatchMu_) = false;

  // Job bookkeeping (jobsMu_).
  mutable std::mutex jobsMu_;
  std::condition_variable drainCv_;
  std::vector<JobHandle> allJobs_ AWP_GUARDED_BY(jobsMu_);
  // In-flight primaries + the followers coalesced onto each.
  std::map<std::string, JobHandle> primaryByHash_ AWP_GUARDED_BY(jobsMu_);
  std::map<std::string, std::vector<JobHandle>> followersByHash_
      AWP_GUARDED_BY(jobsMu_);
  std::size_t outstanding_ AWP_GUARDED_BY(jobsMu_) = 0;

  mutable std::mutex stallMu_;
  std::vector<health::StallReport> stalls_ AWP_GUARDED_BY(stallMu_);

  mutable std::mutex recoveryMu_;
  std::vector<telemetry::InstantEvent> recoveryInstants_
      AWP_GUARDED_BY(recoveryMu_);

  std::atomic<std::uint64_t> submitSeq_{0};
  std::atomic<std::uint64_t> executedAttempts_{0};
  std::atomic<bool> aborting_{false};

  std::thread dispatcher_;
};

}  // namespace awp::sched
