#pragma once
// Content-addressed artifact cache. Keys are arbitrary strings (the
// service uses scenario spec hashes and mesh descriptors); values are
// byte blobs stored with their MD5 so every load is verified — a corrupt
// or torn entry reads as a miss, never as wrong data (§III.H's checksum
// discipline applied to the cache).
//
// Two tiers: an in-memory map (always), and an optional disk directory
// where each entry lives in a file named by the MD5 of its key, written
// atomically (tmp + rename) with a 16-byte digest header. The disk tier
// makes memoized scenario products survive the process.
//
// getOrCompute is single-flight: concurrent requests for the same missing
// key run the compute exactly once and share the result — the property
// that dedupes identical mesh generation across concurrently admitted
// scenarios.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/guarded.hpp"

namespace awp::sched {

struct CacheStats {
  std::uint64_t hits = 0;       // served from memory or disk
  std::uint64_t misses = 0;     // not present anywhere
  std::uint64_t computes = 0;   // compute callbacks actually run
  std::uint64_t diskLoads = 0;  // hits satisfied from the disk tier
  // Per-tier breakdown: every lookup probes memory first, disk second, so
  // hits == memoryHits + diskHits and misses == diskMisses.
  std::uint64_t memoryHits = 0;
  std::uint64_t memoryMisses = 0;
  std::uint64_t diskHits = 0;
  std::uint64_t diskMisses = 0;
  // Chunk-level dedup accounting across put()/putDedup(): logicalBytes is
  // what callers presented for storage; storedBytes is what the cache
  // actually kept. The gap is the dedup win (overlapping surface tiles
  // across scenarios share one stored chunk).
  std::uint64_t puts = 0;
  std::uint64_t dedupHits = 0;  // putDedup calls absorbed by existing data
  std::uint64_t logicalBytes = 0;
  std::uint64_t storedBytes = 0;
  std::uint64_t entries = 0;    // live memory-tier entries at stats() time
};

// Per-entry logical-vs-stored accounting (dedup measurement).
struct EntryAccounting {
  std::uint64_t logicalBytes = 0;  // bytes presented across all puts
  std::uint64_t storedBytes = 0;   // bytes actually stored for the entry
  std::uint64_t dedupPuts = 0;     // puts absorbed by an existing copy
};

class ArtifactCache {
 public:
  // `directory` empty = in-memory only.
  explicit ArtifactCache(std::string directory = {});

  // Lookup without computing. Verifies the digest on a disk load (and
  // promotes the entry to memory); a failed verification is a miss.
  [[nodiscard]] std::optional<std::vector<std::byte>> get(
      const std::string& key);

  // Insert/overwrite. Persists to the disk tier when one is configured.
  void put(const std::string& key, std::vector<std::byte> value);

  // Content-addressed insert: skip the store entirely when the key is
  // already present in either tier (the caller's key embeds the payload
  // digest, so presence implies identity). Returns true when the value was
  // actually stored, false when absorbed as a dedup hit. This is the
  // chunk-level path the serving tier uses for surface tiles.
  bool putDedup(const std::string& key, std::vector<std::byte> value);

  // Single-flight memoization: if the key is cached, return it; otherwise
  // run `compute` (exactly once across concurrent callers — the others
  // block until the winner finishes) and cache its result. A compute that
  // throws releases the other waiters to retry.
  std::vector<std::byte> getOrCompute(
      const std::string& key,
      const std::function<std::vector<std::byte>()>& compute);

  [[nodiscard]] bool contains(const std::string& key);
  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::map<std::string, EntryAccounting> entryAccounting() const;
  [[nodiscard]] const std::string& directory() const { return directory_; }

 private:
  struct Pending {
    std::condition_variable cv;
    bool done = false;    // winner finished (result is in the cache)
    bool failed = false;  // winner threw; a waiter should retry
  };

  [[nodiscard]] std::string entryPath(const std::string& key) const;
  std::optional<std::vector<std::byte>> loadDisk(const std::string& key);
  void storeDisk(const std::string& key,
                 const std::vector<std::byte>& value) const;
  // Fold one put into the aggregate + per-entry accounting.
  void accountPutLocked(const std::string& key, std::uint64_t bytes,
                        bool stored) AWP_REQUIRES(mutex_);

  std::string directory_;
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<std::byte>> memory_
      AWP_GUARDED_BY(mutex_);
  std::map<std::string, std::shared_ptr<Pending>> pending_
      AWP_GUARDED_BY(mutex_);
  std::map<std::string, EntryAccounting> accounting_ AWP_GUARDED_BY(mutex_);
  CacheStats stats_ AWP_GUARDED_BY(mutex_);
};

}  // namespace awp::sched
