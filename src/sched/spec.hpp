#pragma once
// ScenarioSpec: the unit of work of the scenario service. A spec is a
// complete, self-contained description of one simulation — everything that
// determines its numerical output and nothing else — so that two equal
// specs are guaranteed to produce bit-identical products and the service
// can content-address completed work by the MD5 of the spec's canonical
// byte encoding (§III.H's product-verification idea turned into a cache
// key). Presentation metadata (name, priority) is deliberately outside the
// hash: renaming or reprioritising a scenario must still hit the cache.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "grid/staggered_grid.hpp"
#include "rupture/solver.hpp"

namespace awp::sched {

enum class ScenarioKind : std::uint32_t { Wave = 0, Rupture = 1 };

const char* toString(ScenarioKind kind);

struct ScenarioSpec {
  ScenarioKind kind = ScenarioKind::Wave;

  // --- hashed physics/run parameters (both kinds) ---
  std::uint64_t steps = 40;
  int nranks = 2;
  std::uint64_t seed = 1;  // rupture stress model; reserved for wave

  // --- hashed, wave kind ---
  grid::GridDims dims{32, 24, 16};
  double h = 600.0;              // grid spacing [m]
  bool useCvm = true;            // CVM-sampled mesh vs uniform background
  int spongeWidth = 4;
  int checkpointEverySteps = 10; // 0 = no checkpoints (and no resume)
  int surfaceSampleEverySteps = 2;
  double sourceFreqHz = 0.0;     // ricker peak frequency; 0 = derived
  double sourceAmplitude = 1.0e15;  // peak moment rate [N·m/s]
  int healthEverySteps = 5;
  int maxRollbacks = 3;

  // --- hashed, rupture kind ---
  double lengthKm = 50.0;
  double depthKm = 12.0;
  double nucFraction = 0.15;  // nucleation patch position along strike

  // --- hashed, rupture kind with a cycle overlay (encoding v2) ---
  // Content digest of the earthquake-cycle stress snapshot this scenario
  // nucleates from ("" = none). A non-empty digest switches the canonical
  // encoding to v2 (magic AWPSPEC2) with the digest appended; specs
  // without one keep emitting byte-exact v1, so every pre-cycle spec hash
  // is unchanged.
  std::string cycleDigest;

  // --- unhashed carriers / metadata ---
  // The snapshot itself, accommodated to this fault's strength profile.
  // Specs travel in-process by shared_ptr (fabric transport, submission
  // log), so the field rides along; cycleDigest above is its hashed
  // content identity.
  std::shared_ptr<const rupture::FaultInitialStress> cycleStress;
  std::string name;   // human label for reports
  int priority = 0;   // larger = sooner; ties run in submission order

  // Canonical fixed-width little-endian encoding (version-tagged). Equal
  // specs encode identically; any hashed field change changes the bytes.
  [[nodiscard]] std::vector<std::byte> canonicalBytes() const;
  // MD5 hex of canonicalBytes() — the service-wide identity of this spec.
  [[nodiscard]] std::string hashHex() const;
  // Decode a canonical encoding, v1 (AWPSPEC1) or v2 (AWPSPEC2): the
  // round trip decodeCanonical(s.canonicalBytes()).canonicalBytes() ==
  // s.canonicalBytes() holds for both versions. Unhashed metadata and the
  // in-memory stress carrier are outside the encoding and come back
  // defaulted. Throws awp::Error on bad magic or truncation.
  static ScenarioSpec decodeCanonical(const std::vector<std::byte>& data);

  // Rough resident-memory estimate for admission control [bytes].
  [[nodiscard]] std::size_t estimatedBytes() const;
};

// One named output artifact of a completed scenario, with its own digest
// (verified on every cache load: a corrupt cache entry is a miss, not a
// wrong answer).
struct ArtifactBlob {
  std::vector<std::byte> bytes;
  std::string md5Hex;

  static ArtifactBlob fromBytes(std::vector<std::byte> data);
};

// The memoized result of one scenario: its products by name, plus enough
// run metadata for reports. Serialization is the cache's value format.
struct ScenarioProducts {
  std::string specHash;
  std::uint64_t completedSteps = 0;
  double dt = 0.0;
  // Sorted by name (deserialize enforces this; serialize sorts).
  std::vector<std::pair<std::string, ArtifactBlob>> blobs;

  [[nodiscard]] const ArtifactBlob* find(const std::string& name) const;

  [[nodiscard]] std::vector<std::byte> serialize() const;
  // Throws awp::Error on bad magic, truncation, or a blob digest mismatch.
  static ScenarioProducts deserialize(const std::vector<std::byte>& data);
};

// FaultHistory <-> bytes, the rupture kind's "fault_history" product.
std::vector<std::byte> serializeFaultHistory(const rupture::FaultHistory& h);
rupture::FaultHistory deserializeFaultHistory(
    const std::vector<std::byte>& data);

}  // namespace awp::sched
