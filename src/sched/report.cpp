#include "sched/report.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/error.hpp"

namespace awp::sched {

namespace {

std::string fmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void writeTextAtomically(const std::string& path, const std::string& text) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  if (target.has_parent_path()) fs::create_directories(target.parent_path());
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("sched: cannot open " + tmp.string());
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) throw Error("sched: short write to " + tmp.string());
  }
  fs::rename(tmp, target);
}

}  // namespace

std::string toJson(const ServiceReport& report) {
  using telemetry::escapeJson;
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"awp-sched-service-report\",\n";
  os << "  \"version\": 1,\n";
  os << "  \"wall_seconds\": " << fmtDouble(report.wallSeconds) << ",\n";
  os << "  \"core_budget\": " << report.coreBudget << ",\n";
  os << "  \"submitted\": " << report.submitted << ",\n";
  os << "  \"completed\": " << report.completed << ",\n";
  os << "  \"failed\": " << report.failed << ",\n";
  os << "  \"rejected\": " << report.rejected << ",\n";
  os << "  \"cache_hits\": " << report.cacheHits << ",\n";
  os << "  \"coalesced\": " << report.coalesced << ",\n";
  os << "  \"retries\": " << report.retries << ",\n";
  os << "  \"respawns\": " << report.respawns << ",\n";
  os << "  \"respawn_escalations\": " << report.respawnEscalations << ",\n";
  os << "  \"executed_attempts\": " << report.executedAttempts << ",\n";
  os << "  \"throughput_per_second\": "
     << fmtDouble(report.throughputPerSecond) << ",\n";
  os << "  \"queue_latency_seconds\": {"
     << "\"min\": " << fmtDouble(report.queueLatencyMin) << ", "
     << "\"mean\": " << fmtDouble(report.queueLatencyMean) << ", "
     << "\"max\": " << fmtDouble(report.queueLatencyMax) << "},\n";
  os << "  \"artifact_cache\": {"
     << "\"hits\": " << report.cache.hits << ", "
     << "\"misses\": " << report.cache.misses << ", "
     << "\"computes\": " << report.cache.computes << ", "
     << "\"disk_loads\": " << report.cache.diskLoads << ",\n"
     << "    \"memory_hits\": " << report.cache.memoryHits << ", "
     << "\"memory_misses\": " << report.cache.memoryMisses << ", "
     << "\"disk_hits\": " << report.cache.diskHits << ", "
     << "\"disk_misses\": " << report.cache.diskMisses << ",\n"
     << "    \"puts\": " << report.cache.puts << ", "
     << "\"dedup_hits\": " << report.cache.dedupHits << ", "
     << "\"logical_bytes\": " << report.cache.logicalBytes << ", "
     << "\"stored_bytes\": " << report.cache.storedBytes << ", "
     << "\"entries\": " << report.cache.entries << "},\n";
  os << "  \"retry_sites\": {";
  {
    bool first = true;
    for (const auto& [site, s] : report.retrySites) {
      os << (first ? "\n" : ",\n") << "    \"" << escapeJson(site)
         << "\": {\"calls\": " << s.calls << ", \"attempts\": " << s.attempts
         << ", \"failures\": " << s.failures
         << ", \"exhausted\": " << s.exhausted << "}";
      first = false;
    }
    if (!first) os << "\n  ";
  }
  os << "},\n";
  os << "  \"jobs\": [\n";
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const JobRow& j = report.jobs[i];
    os << "    {"
       << "\"name\": \"" << escapeJson(j.name) << "\", "
       << "\"kind\": \"" << escapeJson(j.kind) << "\", "
       << "\"hash\": \"" << escapeJson(j.hash) << "\", "
       << "\"priority\": " << j.priority << ", "
       << "\"phase\": \"" << escapeJson(j.phase) << "\", "
       << "\"attempts\": " << j.attempts << ", "
       << "\"retries\": " << j.retries << ", "
       << "\"respawns\": " << j.respawns << ", "
       << "\"cache_hit\": " << (j.cacheHit ? "true" : "false") << ", "
       << "\"coalesced\": " << (j.coalesced ? "true" : "false") << ", "
       << "\"completed_steps\": " << j.completedSteps << ", "
       << "\"queue_seconds\": " << fmtDouble(j.queueSeconds) << ", "
       << "\"run_seconds\": " << fmtDouble(j.runSeconds) << ", "
       << "\"error\": \"" << escapeJson(j.error) << "\"}"
       << (i + 1 < report.jobs.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

void writeServiceReportFile(const std::string& path,
                            const ServiceReport& report) {
  AWP_CHECK_MSG(report.valid(), "sched: writeServiceReportFile without data");
  writeTextAtomically(path, toJson(report));
}

namespace {

using telemetry::JsonValue;

bool numberMember(const JsonValue& obj, const std::string& context,
                  const std::string& key, std::vector<std::string>& out,
                  double* value) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->isNumber()) {
    out.push_back(context + ": missing numeric field '" + key + "'");
    return false;
  }
  if (!std::isfinite(v->number)) {
    out.push_back(context + ": field '" + key + "' is not finite");
    return false;
  }
  *value = v->number;
  return true;
}

bool nonNegativeMember(const JsonValue& obj, const std::string& context,
                       const std::string& key, std::vector<std::string>& out,
                       double* value) {
  if (!numberMember(obj, context, key, out, value)) return false;
  if (*value < 0.0) {
    out.push_back(context + ": field '" + key + "' is negative");
    return false;
  }
  return true;
}

bool stringMember(const JsonValue& obj, const std::string& context,
                  const std::string& key, std::vector<std::string>& out,
                  std::string* value) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->isString()) {
    out.push_back(context + ": missing string field '" + key + "'");
    return false;
  }
  *value = v->text;
  return true;
}

bool boolMember(const JsonValue& obj, const std::string& context,
                const std::string& key, std::vector<std::string>& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::Bool) {
    out.push_back(context + ": missing boolean field '" + key + "'");
    return false;
  }
  return true;
}

bool knownPhaseName(const std::string& name) {
  return name == "queued" || name == "running" || name == "completed" ||
         name == "failed" || name == "rejected";
}

}  // namespace

std::vector<std::string> validateServiceReportJson(const std::string& text) {
  std::vector<std::string> out;
  JsonValue root;
  try {
    root = telemetry::parseJson(text);
  } catch (const Error& e) {
    out.push_back(std::string("parse error: ") + e.what());
    return out;
  }
  if (!root.isObject()) {
    out.push_back("document is not an object");
    return out;
  }

  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->isString() ||
      schema->text != "awp-sched-service-report")
    out.push_back("missing or wrong 'schema' identifier");
  const JsonValue* version = root.find("version");
  if (version == nullptr || !version->isNumber() || version->number != 1.0)
    out.push_back("missing or unsupported 'version'");

  double scratch = 0.0;
  nonNegativeMember(root, "report", "wall_seconds", out, &scratch);
  double coreBudget = 0.0;
  if (numberMember(root, "report", "core_budget", out, &coreBudget) &&
      coreBudget < 1.0)
    out.push_back("report: 'core_budget' must be >= 1");

  double submitted = 0, completed = 0, failed = 0, rejected = 0;
  double cacheHits = 0, coalescedN = 0;
  nonNegativeMember(root, "report", "submitted", out, &submitted);
  nonNegativeMember(root, "report", "completed", out, &completed);
  nonNegativeMember(root, "report", "failed", out, &failed);
  nonNegativeMember(root, "report", "rejected", out, &rejected);
  nonNegativeMember(root, "report", "cache_hits", out, &cacheHits);
  nonNegativeMember(root, "report", "coalesced", out, &coalescedN);
  nonNegativeMember(root, "report", "retries", out, &scratch);
  nonNegativeMember(root, "report", "respawns", out, &scratch);
  nonNegativeMember(root, "report", "respawn_escalations", out, &scratch);
  nonNegativeMember(root, "report", "executed_attempts", out, &scratch);
  nonNegativeMember(root, "report", "throughput_per_second", out, &scratch);
  // Every submission has exactly one terminal outcome.
  if (completed + failed + rejected + cacheHits + coalescedN >
      submitted + 0.5)
    out.push_back("report: outcomes exceed submissions");

  constexpr double kEps = 1e-9;
  const JsonValue* lat = root.find("queue_latency_seconds");
  if (lat == nullptr || !lat->isObject()) {
    out.push_back("missing 'queue_latency_seconds' object");
  } else {
    double minV = 0, mean = 0, maxV = 0;
    const bool haveMin =
        nonNegativeMember(*lat, "queue_latency", "min", out, &minV);
    const bool haveMean =
        nonNegativeMember(*lat, "queue_latency", "mean", out, &mean);
    const bool haveMax =
        nonNegativeMember(*lat, "queue_latency", "max", out, &maxV);
    if (haveMin && haveMean && minV > mean * (1.0 + kEps) + kEps)
      out.push_back("queue_latency: min exceeds mean");
    if (haveMean && haveMax && mean > maxV * (1.0 + kEps) + kEps)
      out.push_back("queue_latency: mean exceeds max");
  }

  const JsonValue* cache = root.find("artifact_cache");
  if (cache == nullptr || !cache->isObject()) {
    out.push_back("missing 'artifact_cache' object");
  } else {
    double hits = 0, computes = 0;
    nonNegativeMember(*cache, "artifact_cache", "hits", out, &hits);
    nonNegativeMember(*cache, "artifact_cache", "misses", out, &scratch);
    nonNegativeMember(*cache, "artifact_cache", "computes", out, &computes);
    nonNegativeMember(*cache, "artifact_cache", "disk_loads", out, &scratch);
    // Tier/dedup accounting joined the schema later; tolerated as absent
    // so pre-existing handcrafted reports stay valid. When present the
    // tiers must reconcile with the totals and dedup can only shrink.
    if (cache->find("puts") != nullptr) {
      double memHits = 0, diskHits = 0, puts = 0, dedup = 0;
      double logical = 0, stored = 0;
      const bool haveMem = nonNegativeMember(*cache, "artifact_cache",
                                             "memory_hits", out, &memHits);
      nonNegativeMember(*cache, "artifact_cache", "memory_misses", out,
                        &scratch);
      const bool haveDisk = nonNegativeMember(*cache, "artifact_cache",
                                              "disk_hits", out, &diskHits);
      nonNegativeMember(*cache, "artifact_cache", "disk_misses", out,
                        &scratch);
      nonNegativeMember(*cache, "artifact_cache", "puts", out, &puts);
      nonNegativeMember(*cache, "artifact_cache", "dedup_hits", out, &dedup);
      const bool haveLogical = nonNegativeMember(
          *cache, "artifact_cache", "logical_bytes", out, &logical);
      const bool haveStored = nonNegativeMember(
          *cache, "artifact_cache", "stored_bytes", out, &stored);
      nonNegativeMember(*cache, "artifact_cache", "entries", out, &scratch);
      if (haveMem && haveDisk && memHits + diskHits > hits + 0.5)
        out.push_back("artifact_cache: tier hits exceed total hits");
      if (dedup > puts + 0.5)
        out.push_back("artifact_cache: dedup_hits exceed puts");
      if (haveLogical && haveStored && stored > logical + 0.5)
        out.push_back("artifact_cache: stored_bytes exceed logical_bytes");
    }
  }

  // Retry-site stats are part of the v1 schema but tolerated as absent so
  // pre-existing handcrafted reports stay valid; when present every entry
  // must be internally consistent.
  const JsonValue* retry = root.find("retry_sites");
  if (retry != nullptr) {
    if (!retry->isObject()) {
      out.push_back("'retry_sites' is not an object");
    } else {
      for (const auto& [site, stats] : retry->members) {
        const std::string context = "retry_sites['" + site + "']";
        if (!stats.isObject()) {
          out.push_back(context + ": not an object");
          continue;
        }
        double calls = 0, attempts = 0, failures = 0, exhausted = 0;
        nonNegativeMember(stats, context, "calls", out, &calls);
        nonNegativeMember(stats, context, "attempts", out, &attempts);
        nonNegativeMember(stats, context, "failures", out, &failures);
        nonNegativeMember(stats, context, "exhausted", out, &exhausted);
        if (attempts < calls)
          out.push_back(context + ": attempts below calls");
        if (failures > attempts)
          out.push_back(context + ": failures exceed attempts");
        if (exhausted > calls)
          out.push_back(context + ": exhausted exceeds calls");
      }
    }
  }

  const JsonValue* jobs = root.find("jobs");
  if (jobs == nullptr || !jobs->isArray()) {
    out.push_back("missing 'jobs' array");
    return out;
  }
  for (std::size_t i = 0; i < jobs->items.size(); ++i) {
    const JsonValue& j = jobs->items[i];
    const std::string context = "job[" + std::to_string(i) + "]";
    if (!j.isObject()) {
      out.push_back(context + ": not an object");
      continue;
    }
    std::string s;
    stringMember(j, context, "name", out, &s);
    if (stringMember(j, context, "kind", out, &s) && s != "wave" &&
        s != "rupture")
      out.push_back(context + ": unknown kind '" + s + "'");
    if (stringMember(j, context, "hash", out, &s) && s.size() != 32)
      out.push_back(context + ": hash is not a 32-hex digest");
    if (stringMember(j, context, "phase", out, &s) && !knownPhaseName(s))
      out.push_back(context + ": unknown phase '" + s + "'");
    numberMember(j, context, "priority", out, &scratch);
    double attempts = 0, retries = 0, respawns = 0;
    nonNegativeMember(j, context, "attempts", out, &attempts);
    nonNegativeMember(j, context, "retries", out, &retries);
    if (retries > attempts)
      out.push_back(context + ": retries exceed attempts");
    nonNegativeMember(j, context, "respawns", out, &respawns);
    // An in-place respawn happens inside a running attempt, so a job that
    // never started an attempt cannot have absorbed one.
    if (respawns > 0.5 && attempts < 0.5)
      out.push_back(context + ": respawns without attempts");
    boolMember(j, context, "cache_hit", out);
    boolMember(j, context, "coalesced", out);
    nonNegativeMember(j, context, "completed_steps", out, &scratch);
    nonNegativeMember(j, context, "queue_seconds", out, &scratch);
    nonNegativeMember(j, context, "run_seconds", out, &scratch);
  }
  return out;
}

}  // namespace awp::sched
