#include "sched/spec.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"
#include "util/md5.hpp"

namespace awp::sched {

namespace {

// Fixed-width little-endian append helpers. Doubles go through their
// IEEE-754 bit pattern: the encoding hashes the exact value, not a
// formatting of it.
void putU64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

void putU32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

void putI32(std::vector<std::byte>& out, std::int32_t v) {
  putU32(out, static_cast<std::uint32_t>(v));
}

void putF64(std::vector<std::byte>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

void putBytes(std::vector<std::byte>& out, const void* data,
              std::size_t len) {
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + len);
}

void putString(std::vector<std::byte>& out, const std::string& s) {
  putU64(out, s.size());
  putBytes(out, s.data(), s.size());
}

void putFloats(std::vector<std::byte>& out, const std::vector<float>& v) {
  putU64(out, v.size());
  putBytes(out, v.data(), v.size() * sizeof(float));
}

// Cursor-based readers; every read bounds-checks against the buffer.
struct Reader {
  const std::vector<std::byte>& data;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > data.size())
      throw Error("sched: truncated product encoding at offset " +
                  std::to_string(pos));
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const auto n = static_cast<std::size_t>(u64());
    need(n);
    std::string s(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return s;
  }
  std::vector<std::byte> bytes(std::size_t n) {
    need(n);
    std::vector<std::byte> out(data.begin() + static_cast<std::ptrdiff_t>(pos),
                               data.begin() +
                                   static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return out;
  }
  std::vector<float> floats() {
    const auto n = static_cast<std::size_t>(u64());
    need(n * sizeof(float));
    std::vector<float> out(n);
    std::memcpy(out.data(), data.data() + pos, n * sizeof(float));
    pos += n * sizeof(float);
    return out;
  }
};

constexpr char kSpecMagic[8] = {'A', 'W', 'P', 'S', 'P', 'E', 'C', '1'};
constexpr char kSpecMagicV2[8] = {'A', 'W', 'P', 'S', 'P', 'E', 'C', '2'};
constexpr char kProductMagic[8] = {'A', 'W', 'P', 'P', 'R', 'O', 'D', '1'};
constexpr char kHistoryMagic[8] = {'A', 'W', 'P', 'F', 'H', 'I', 'S', '1'};

void checkMagic(Reader& r, const char (&magic)[8], const char* what) {
  r.need(8);
  if (std::memcmp(r.data.data() + r.pos, magic, 8) != 0)
    throw Error(std::string("sched: bad ") + what + " magic");
  r.pos += 8;
}

}  // namespace

const char* toString(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::Wave: return "wave";
    case ScenarioKind::Rupture: return "rupture";
  }
  return "unknown";
}

std::vector<std::byte> ScenarioSpec::canonicalBytes() const {
  std::vector<std::byte> out;
  out.reserve(160);
  // v1 encodes exactly as before the cycle fields existed, so pre-cycle
  // spec hashes (and thus cached products) are untouched; only a spec
  // carrying a cycle-event digest opts into the v2 magic + suffix.
  const bool v2 = !cycleDigest.empty();
  putBytes(out, v2 ? kSpecMagicV2 : kSpecMagic, sizeof(kSpecMagic));
  putU32(out, static_cast<std::uint32_t>(kind));
  putU64(out, steps);
  putI32(out, nranks);
  putU64(out, seed);
  putU64(out, static_cast<std::uint64_t>(dims.nx));
  putU64(out, static_cast<std::uint64_t>(dims.ny));
  putU64(out, static_cast<std::uint64_t>(dims.nz));
  putF64(out, h);
  putU32(out, useCvm ? 1u : 0u);
  putI32(out, spongeWidth);
  putI32(out, checkpointEverySteps);
  putI32(out, surfaceSampleEverySteps);
  putF64(out, sourceFreqHz);
  putF64(out, sourceAmplitude);
  putI32(out, healthEverySteps);
  putI32(out, maxRollbacks);
  putF64(out, lengthKm);
  putF64(out, depthKm);
  putF64(out, nucFraction);
  if (v2) putString(out, cycleDigest);
  return out;
}

std::string ScenarioSpec::hashHex() const {
  const auto bytes = canonicalBytes();
  return Md5::hexDigest(bytes.data(), bytes.size());
}

ScenarioSpec ScenarioSpec::decodeCanonical(
    const std::vector<std::byte>& data) {
  Reader r{data};
  r.need(8);
  bool v2 = false;
  if (std::memcmp(r.data.data(), kSpecMagicV2, 8) == 0)
    v2 = true;
  else if (std::memcmp(r.data.data(), kSpecMagic, 8) != 0)
    throw Error("sched: bad spec magic");
  r.pos += 8;

  ScenarioSpec s;
  s.kind = static_cast<ScenarioKind>(r.u32());
  if (s.kind != ScenarioKind::Wave && s.kind != ScenarioKind::Rupture)
    throw Error("sched: unknown scenario kind in spec encoding");
  s.steps = r.u64();
  s.nranks = r.i32();
  s.seed = r.u64();
  s.dims.nx = static_cast<std::size_t>(r.u64());
  s.dims.ny = static_cast<std::size_t>(r.u64());
  s.dims.nz = static_cast<std::size_t>(r.u64());
  s.h = r.f64();
  s.useCvm = r.u32() != 0;
  s.spongeWidth = r.i32();
  s.checkpointEverySteps = r.i32();
  s.surfaceSampleEverySteps = r.i32();
  s.sourceFreqHz = r.f64();
  s.sourceAmplitude = r.f64();
  s.healthEverySteps = r.i32();
  s.maxRollbacks = r.i32();
  s.lengthKm = r.f64();
  s.depthKm = r.f64();
  s.nucFraction = r.f64();
  if (v2) {
    s.cycleDigest = r.str();
    if (s.cycleDigest.empty())
      throw Error("sched: v2 spec encoding carries an empty cycle digest");
  }
  if (r.pos != data.size())
    throw Error("sched: trailing bytes after spec encoding");
  return s;
}

std::size_t ScenarioSpec::estimatedBytes() const {
  // Admission-control estimate: the staggered grid holds ~20 float fields
  // per cell (velocities, stresses, material, attenuation memory), plus
  // halo padding and solver scratch. Deliberately generous.
  constexpr std::size_t kBytesPerCell = 160;
  if (kind == ScenarioKind::Wave) return dims.count() * kBytesPerCell;
  // Rupture: reconstruct the volume runMiniRupture-style (fault plus
  // absorbing margins) from the fault extent.
  const auto nx = static_cast<std::size_t>(lengthKm * 1000.0 / h);
  const auto nzFault = static_cast<std::size_t>(depthKm * 1000.0 / h);
  const std::size_t margin = 14;
  const std::size_t cells =
      (nx + 2 * margin) * (2 * margin + 2) * (nzFault + margin);
  return cells * kBytesPerCell;
}

ArtifactBlob ArtifactBlob::fromBytes(std::vector<std::byte> data) {
  ArtifactBlob blob;
  blob.md5Hex = Md5::hexDigest(data.data(), data.size());
  blob.bytes = std::move(data);
  return blob;
}

const ArtifactBlob* ScenarioProducts::find(const std::string& name) const {
  for (const auto& [n, blob] : blobs)
    if (n == name) return &blob;
  return nullptr;
}

std::vector<std::byte> ScenarioProducts::serialize() const {
  auto sorted = blobs;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::byte> out;
  putBytes(out, kProductMagic, sizeof(kProductMagic));
  putString(out, specHash);
  putU64(out, completedSteps);
  putF64(out, dt);
  putU64(out, sorted.size());
  for (const auto& [name, blob] : sorted) {
    putString(out, name);
    putString(out, blob.md5Hex);
    putU64(out, blob.bytes.size());
    putBytes(out, blob.bytes.data(), blob.bytes.size());
  }
  return out;
}

ScenarioProducts ScenarioProducts::deserialize(
    const std::vector<std::byte>& data) {
  Reader r{data};
  checkMagic(r, kProductMagic, "product");
  ScenarioProducts p;
  p.specHash = r.str();
  p.completedSteps = r.u64();
  p.dt = r.f64();
  const auto count = static_cast<std::size_t>(r.u64());
  p.blobs.reserve(count);
  std::string prev;
  for (std::size_t i = 0; i < count; ++i) {
    std::string name = r.str();
    if (i > 0 && !(prev < name))
      throw Error("sched: product blobs not sorted ('" + prev + "' before '" +
                  name + "')");
    prev = name;
    ArtifactBlob blob;
    blob.md5Hex = r.str();
    blob.bytes = r.bytes(static_cast<std::size_t>(r.u64()));
    const std::string actual =
        Md5::hexDigest(blob.bytes.data(), blob.bytes.size());
    if (actual != blob.md5Hex)
      throw Error("sched: product blob '" + name + "' digest mismatch (" +
                  actual + " != " + blob.md5Hex + ")");
    p.blobs.emplace_back(std::move(name), std::move(blob));
  }
  if (r.pos != data.size())
    throw Error("sched: trailing bytes after product encoding");
  return p;
}

std::vector<std::byte> serializeFaultHistory(const rupture::FaultHistory& h) {
  std::vector<std::byte> out;
  putBytes(out, kHistoryMagic, sizeof(kHistoryMagic));
  putU64(out, h.nx);
  putU64(out, h.nz);
  putF64(out, h.h);
  putF64(out, h.dt);
  putI32(out, h.timeDecimation);
  putU64(out, h.recordedSteps);
  putFloats(out, h.finalSlip);
  putFloats(out, h.peakSlipRate);
  putFloats(out, h.ruptureTime);
  putFloats(out, h.rigidity);
  putFloats(out, h.slipRateX);
  putFloats(out, h.slipRateZ);
  return out;
}

rupture::FaultHistory deserializeFaultHistory(
    const std::vector<std::byte>& data) {
  Reader r{data};
  checkMagic(r, kHistoryMagic, "fault-history");
  rupture::FaultHistory h;
  h.nx = static_cast<std::size_t>(r.u64());
  h.nz = static_cast<std::size_t>(r.u64());
  h.h = r.f64();
  h.dt = r.f64();
  h.timeDecimation = r.i32();
  h.recordedSteps = static_cast<std::size_t>(r.u64());
  h.finalSlip = r.floats();
  h.peakSlipRate = r.floats();
  h.ruptureTime = r.floats();
  h.rigidity = r.floats();
  h.slipRateX = r.floats();
  h.slipRateZ = r.floats();
  if (r.pos != data.size())
    throw Error("sched: trailing bytes after fault-history encoding");
  return h;
}

}  // namespace awp::sched
