#include "sched/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "core/solver.hpp"
#include "core/source.hpp"
#include "fault/injector.hpp"
#include "io/buddy.hpp"
#include "io/checkpoint.hpp"
#include "io/shared_file.hpp"
#include "mesh/partitioner.hpp"
#include "rupture/solver.hpp"
#include "telemetry/chrome_trace.hpp"
#include "util/error.hpp"
#include "util/hot.hpp"
#include "vcluster/cart.hpp"
#include "vcluster/cluster.hpp"
#include "vcluster/respawn.hpp"
#include "vmodel/cvm.hpp"

namespace awp::sched {

namespace fs = std::filesystem;

namespace {

std::string productKey(const std::string& specHash) {
  return "prod:" + specHash;
}

// Mesh identity: everything that determines the sampled material field.
// Steps, seed, source and cadence knobs are deliberately absent — jobs
// that differ only in those share one mesh generation.
std::string meshKey(const ScenarioSpec& spec) {
  return "mesh:" + std::to_string(spec.dims.nx) + "x" +
         std::to_string(spec.dims.ny) + "x" + std::to_string(spec.dims.nz) +
         ":h=" + std::to_string(spec.h) +
         ":cvm=" + (spec.useCvm ? "1" : "0");
}

// Sample the full global material field from the synthetic CVM, x fastest.
std::vector<std::byte> buildGlobalMesh(const ScenarioSpec& spec) {
  const double lx = static_cast<double>(spec.dims.nx) * spec.h;
  const double ly = static_cast<double>(spec.dims.ny) * spec.h;
  const auto cvm =
      vmodel::CommunityVelocityModel::socal(lx, ly, 0.55 * ly);
  std::vector<vmodel::Material> field(spec.dims.count());
  std::size_t at = 0;
  for (std::size_t k = 0; k < spec.dims.nz; ++k)
    for (std::size_t j = 0; j < spec.dims.ny; ++j)
      for (std::size_t i = 0; i < spec.dims.nx; ++i)
        field[at++] = cvm.sample(static_cast<double>(i) * spec.h,
                                 static_cast<double>(j) * spec.h,
                                 static_cast<double>(k) * spec.h);
  std::vector<std::byte> bytes(field.size() * sizeof(vmodel::Material));
  std::memcpy(bytes.data(), field.data(), bytes.size());
  return bytes;
}

std::vector<std::byte> readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("sched: cannot read " + path);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  return bytes;
}

// Horizontal peak ground velocity per surface-file record position: the
// max over samples of sqrt(u^2 + v^2). Derived from the surface.bin BYTES
// (not from in-memory accumulators) so it is exactly reproducible from the
// canonical product alone — the property the bit-identity tests pin.
std::vector<std::byte> derivePgvh(const std::vector<std::byte>& surface,
                                  std::size_t stepFloats) {
  if (stepFloats == 0 || surface.size() % (stepFloats * sizeof(float)) != 0)
    throw Error("sched: surface product size is not a whole sample count");
  const std::size_t samples = surface.size() / (stepFloats * sizeof(float));
  const std::size_t points = stepFloats / 3;
  std::vector<float> floats(stepFloats);
  std::vector<float> pgvh(points, 0.0f);
  for (std::size_t s = 0; s < samples; ++s) {
    std::memcpy(floats.data(),
                surface.data() + s * stepFloats * sizeof(float),
                stepFloats * sizeof(float));
    for (std::size_t p = 0; p < points; ++p) {
      const float u = floats[3 * p];
      const float v = floats[3 * p + 1];
      const float horiz = std::sqrt(u * u + v * v);
      if (horiz > pgvh[p]) pgvh[p] = horiz;
    }
  }
  std::vector<std::byte> bytes(pgvh.size() * sizeof(float));
  std::memcpy(bytes.data(), pgvh.data(), bytes.size());
  return bytes;
}

}  // namespace

const char* toString(JobPhase phase) {
  switch (phase) {
    case JobPhase::Queued: return "queued";
    case JobPhase::Running: return "running";
    case JobPhase::Completed: return "completed";
    case JobPhase::Failed: return "failed";
    case JobPhase::Rejected: return "rejected";
  }
  return "?";
}

const char* toString(RequeueCause cause) {
  switch (cause) {
    case RequeueCause::None: return "none";
    case RequeueCause::WorkerCrash: return "worker-crash";
    case RequeueCause::Stall: return "stall";
    case RequeueCause::FatalVerdict: return "fatal-verdict";
    case RequeueCause::Aborted: return "aborted";
  }
  return "?";
}

ServiceConfig ServiceConfig::fromRuntime(const core::RuntimeConfig& rc) {
  ServiceConfig c;
  c.coreBudget = rc.sched.workers;
  c.memoryBudgetBytes =
      static_cast<std::size_t>(rc.sched.memoryMb) * (std::size_t{1} << 20);
  c.queueCapacity = static_cast<std::size_t>(rc.sched.queueCapacity);
  c.admitPolicy = rc.sched.admitBlock ? AdmissionQueue::AdmitPolicy::Block
                                      : AdmissionQueue::AdmitPolicy::Reject;
  c.maxRetries = rc.sched.maxRetries;
  c.stallTimeoutSeconds = rc.sched.stallTimeoutSeconds;
  c.cancelCheckEverySteps = rc.sched.cancelCheckEverySteps;
  c.retryDtTighten = rc.sched.retryDtTighten;
  c.respawnBudget = rc.sched.respawnBudget;
  c.buddyCheckpoints = rc.sched.respawnBuddy;
  c.watchdogMissThreshold = rc.solver.health.watchdogMissThreshold;
  c.cacheProducts = rc.sched.cacheProducts;
  c.cacheDir = rc.sched.cacheDir;
  c.workDir = rc.sched.workDir;
  c.telemetry = rc.telemetryEnabled;
  c.telemetryRingCapacity = rc.telemetryRingCapacity;
  c.chromeTracePath = rc.solver.telemetry.chromeTracePath;
  return c;
}

ScenarioService::ScenarioService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cacheDir),
      queue_(config_.queueCapacity, config_.admitPolicy),
      coreBusy_(static_cast<std::size_t>(std::max(1, config_.coreBudget)),
                0) {
  AWP_CHECK_MSG(config_.coreBudget >= 1, "sched: core budget must be >= 1");
  if (config_.workDir.empty())
    config_.workDir = (fs::temp_directory_path() / "awp-sched").string();
  fs::create_directories(config_.workDir);
  if (config_.telemetry && telemetry::activeSession() == nullptr) {
    telemetry::SessionConfig sc;
    sc.nranks = config_.coreBudget;
    sc.ringCapacity = config_.telemetryRingCapacity;
    ownedSession_ = std::make_unique<telemetry::Session>(sc);
    telemetry::installSession(ownedSession_.get());
  }
  dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

ScenarioService::~ScenarioService() { shutdown(); }

std::string ScenarioService::jobDirFor(const std::string& hash) const {
  return (fs::path(config_.workDir) / ("job-" + hash)).string();
}

JobHandle ScenarioService::submit(ScenarioSpec spec) {
  AWP_CHECK_MSG(spec.nranks >= 1 && spec.nranks <= config_.coreBudget,
                "sched: spec.nranks outside [1, coreBudget]");
  auto job = std::make_shared<JobState>();
  job->spec = std::move(spec);
  job->hash = job->spec.hashHex();
  job->submitSeq = submitSeq_.fetch_add(1, std::memory_order_relaxed);
  job->submitSeconds = epoch_.seconds();
  telemetry::count(telemetry::Counter::ScenariosSubmitted);

  // Memoized completed work: served without touching the queue. The job
  // is published into allJobs_ only after cacheHit/coalesced are final,
  // so report() never observes a half-initialized row (jobsMu_ release /
  // acquire orders every plain write made here before the publication).
  if (config_.cacheProducts) {
    if (auto bytes = cache_.get(productKey(job->hash))) {
      try {
        ScenarioProducts products = ScenarioProducts::deserialize(*bytes);
        job->cacheHit = true;
        telemetry::count(telemetry::Counter::ScenarioCacheHits);
        if (config_.publisher != nullptr &&
            job->spec.kind == ScenarioKind::Wave) {
          // A memoized hit still converges the serving tier: the canonical
          // products are republished (the tile store absorbs duplicates).
          SurfaceRunInfo info;
          info.specHash = job->hash;
          info.spec = job->spec;
          info.surfacePath =
              (fs::path(jobDirFor(job->hash)) / "surface.bin").string();
          config_.publisher->onScenarioComplete(
              info, config_.publishOriginId, products);
        }
        {
          std::lock_guard<std::mutex> lock(jobsMu_);
          allJobs_.push_back(job);
        }
        settleTerminal(job, JobPhase::Completed, "", std::move(products),
                       /*countedPrimary=*/false);
        return job;
      } catch (const Error&) {
        // A digest-valid entry that fails structural deserialization is a
        // version skew, not corruption: treat as a miss and recompute.
      }
    }
  }

  // Coalesce onto an identical in-flight spec, or register as primary.
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    auto it = primaryByHash_.find(job->hash);
    if (it != primaryByHash_.end()) {
      job->coalesced = true;
      followersByHash_[job->hash].push_back(job);
      allJobs_.push_back(job);
      ++outstanding_;
      return job;
    }
    primaryByHash_[job->hash] = job;
    allJobs_.push_back(job);
    ++outstanding_;
  }

  const auto result = queue_.push(job);
  if (result != AdmissionQueue::PushResult::Admitted) {
    telemetry::count(telemetry::Counter::ScenariosRejected);
    const char* why = result == AdmissionQueue::PushResult::Closed
                          ? "service closed"
                          : "admission queue full";
    settleTerminal(job, JobPhase::Rejected, why, {}, /*countedPrimary=*/true);
    return job;
  }
  {
    std::lock_guard<std::mutex> lock(dispatchMu_);
    signal_ = true;
  }
  dispatchCv_.notify_all();
  return job;
}

AWP_HOT bool ScenarioService::dispatchNext(Dispatch& out) {
  telemetry::ScopedSpan span(telemetry::Phase::SchedQueue);
  int freeCores = 0;
  for (std::size_t i = 0; i < coreBusy_.size(); ++i)
    if (coreBusy_[i] == 0) ++freeCores;
  std::size_t freeBytes = 0;  // 0 = unlimited for popFit
  if (config_.memoryBudgetBytes != 0)
    freeBytes = config_.memoryBudgetBytes > memoryUsed_
                    ? config_.memoryBudgetBytes - memoryUsed_
                    : 1;  // fully committed: nothing real fits
  JobHandle job = queue_.popFit(freeCores, freeBytes);
  if (job == nullptr) return false;
  // Contiguous first-fit core range (slot = base + rank needs a run).
  const int need = job->spec.nranks;
  int base = -1;
  int run = 0;
  for (std::size_t i = 0; i < coreBusy_.size(); ++i) {
    if (coreBusy_[i] != 0) {
      run = 0;
      continue;
    }
    ++run;
    if (run == need) {
      base = static_cast<int>(i) - need + 1;
      break;
    }
  }
  if (base < 0) {
    // Enough cores but fragmented: put the job back, retry on release.
    queue_.pushRequeue(std::move(job));
    return false;
  }
  for (int i = 0; i < need; ++i)
    coreBusy_[static_cast<std::size_t>(base + i)] = 1;
  const std::size_t bytes = job->spec.estimatedBytes();
  memoryUsed_ += bytes;
  out.job = std::move(job);
  out.coreBase = base;
  out.bytes = bytes;
  return true;
}

void ScenarioService::dispatcherLoop() {
  if (config_.dispatcherTelemetrySlot >= 0) {
    // Claim a private span lane: several services sharing one session
    // (the hazard fabric's brokers) must not interleave single-writer
    // span state on the off-rank slot.
    fault::setThreadRank(0);
    telemetry::setThreadSlotBase(config_.dispatcherTelemetrySlot);
    telemetry::resetThreadSpans();
  }
  std::unique_lock<std::mutex> lock(dispatchMu_);
  for (;;) {
    dispatchCv_.wait(lock, [&] { return signal_; });
    signal_ = false;
    for (;;) {
      Dispatch d;
      if (!dispatchNext(d)) break;
      ++activeWorkers_;
      {
        telemetry::ScopedSpan span(telemetry::Phase::SchedDispatch);
        lock.unlock();
        std::thread([this, d = std::move(d)]() mutable {
          workerMain(std::move(d));
        }).detach();
        lock.lock();
      }
    }
    if (stopping_ && activeWorkers_ == 0 && queue_.empty()) return;
  }
}

void ScenarioService::workerMain(Dispatch d) {
  if (aborting_.load(std::memory_order_relaxed)) {
    // Dispatched after (or racing) an abort: never start the attempt.
    settleTerminal(d.job, JobPhase::Failed, "service aborted", {},
                   /*countedPrimary=*/true);
    {
      std::lock_guard<std::mutex> lock(dispatchMu_);
      for (int i = 0; i < d.job->spec.nranks; ++i)
        coreBusy_[static_cast<std::size_t>(d.coreBase + i)] = 0;
      memoryUsed_ -= d.bytes;
      --activeWorkers_;
      signal_ = true;
      // Workers are detached: notify under the mutex so the dispatcher
      // (and the destructor behind it) cannot observe activeWorkers_==0,
      // exit, and destroy the condvar while this broadcast is in flight.
      dispatchCv_.notify_all();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(d.job->mutex);
    d.job->phase = JobPhase::Running;
    ++d.job->attempts;
    if (d.job->startSeconds <= 0.0) d.job->startSeconds = epoch_.seconds();
  }
  executedAttempts_.fetch_add(1, std::memory_order_relaxed);
  try {
    ScenarioProducts products =
        d.job->spec.kind == ScenarioKind::Wave
            ? attemptWave(*d.job, d.coreBase)
            : attemptRupture(*d.job, d.coreBase);
    if (config_.cacheProducts)
      cache_.put(productKey(d.job->hash), products.serialize());
    if (config_.publisher != nullptr &&
        d.job->spec.kind == ScenarioKind::Wave) {
      SurfaceRunInfo info;
      info.specHash = d.job->hash;
      info.spec = d.job->spec;
      info.surfacePath =
          (fs::path(jobDirFor(d.job->hash)) / "surface.bin").string();
      config_.publisher->onScenarioComplete(info, config_.publishOriginId,
                                            products);
    }
    settleTerminal(d.job, JobPhase::Completed, "", std::move(products),
                   /*countedPrimary=*/true);
  } catch (const CancelledError& e) {
    maybeRequeue(d.job, e.cause(), e.step(), e.what());
  } catch (const vcluster::RespawnExhaustedError& e) {
    // Ladder rung 2: the in-place respawn budget is spent. Fall back to
    // the legacy cancel-and-requeue path with the loss's attribution.
    {
      std::lock_guard<std::mutex> lock(d.job->mutex);
      ++d.job->respawnEscalations;
    }
    telemetry::count(telemetry::Counter::RespawnEscalations);
    recordRecoveryInstant(
        "respawn escalation rank " + std::to_string(e.rank()),
        std::chrono::steady_clock::now());
    maybeRequeue(d.job,
                 e.cause() == "stall" ? RequeueCause::Stall
                                      : RequeueCause::WorkerCrash,
                 d.job->lastStep.load(std::memory_order_relaxed), e.what());
  } catch (const Error& e) {
    if (d.job->spec.kind == ScenarioKind::Rupture) {
      // Rupture attempts have no checkpoint to resume from: errors are
      // terminal, not retryable.
      settleTerminal(d.job, JobPhase::Failed, e.what(), {},
                     /*countedPrimary=*/true);
    } else {
      // A health-guard abort (rollback budget exhausted) surfaces here as
      // a collective Error: requeue with a tightened dt.
      maybeRequeue(d.job, RequeueCause::FatalVerdict,
                   d.job->lastStep.load(std::memory_order_relaxed),
                   e.what());
    }
  } catch (const std::exception& e) {
    settleTerminal(d.job, JobPhase::Failed, e.what(), {},
                   /*countedPrimary=*/true);
  }
  {
    std::lock_guard<std::mutex> lock(dispatchMu_);
    for (int i = 0; i < d.job->spec.nranks; ++i)
      coreBusy_[static_cast<std::size_t>(d.coreBase + i)] = 0;
    memoryUsed_ -= d.bytes;
    --activeWorkers_;
    signal_ = true;
    // Detached-thread epilogue: see the abort branch above — the notify
    // must complete before the dispatcher can see activeWorkers_==0.
    dispatchCv_.notify_all();
  }
}

ScenarioProducts ScenarioService::attemptWave(JobState& job, int coreBase) {
  const ScenarioSpec& spec = job.spec;
  const std::string jobDir = jobDirFor(job.hash);
  fs::create_directories(fs::path(jobDir) / "ckpt");

  // Mesh generation is deduplicated across jobs (and across attempts of
  // one job): the cache's single-flight getOrCompute means N concurrent
  // jobs over the same domain pay for one sampling pass.
  std::vector<std::byte> meshBytes;
  if (spec.useCvm) {
    bool computedHere = false;
    meshBytes = cache_.getOrCompute(meshKey(spec), [&] {
      computedHere = true;
      return buildGlobalMesh(spec);
    });
    if (!computedHere)
      telemetry::count(telemetry::Counter::ArtifactCacheHits);
    AWP_CHECK(meshBytes.size() ==
              spec.dims.count() * sizeof(vmodel::Material));
  }

  // Recovery ladder: with a respawn budget the attempt runs under a
  // SupervisedCluster, a dead/stalled rank is respawned in place, and the
  // replacement restores disklessly from its ring buddy's in-memory blob
  // (disk checkpoints are the fallback). The buddy store is fresh per
  // attempt so a requeued attempt never restores stale state.
  const bool useLadder = config_.respawnBudget > 0;
  const bool useBuddies =
      config_.buddyCheckpoints && spec.checkpointEverySteps > 0;
  io::BuddyStore buddies(spec.nranks);

  // Quiesce spans bracket a survivor rank's wait at the respawn fence.
  // awplint: manual-span(the wait spans the unwound rank fn's scope; the fenced frame stack is reset before begin)
  std::vector<telemetry::ManualSpan> quiesceSpans(
      static_cast<std::size_t>(spec.nranks));

  std::unique_ptr<vcluster::SupervisedCluster> cluster;
  if (useLadder) {
    vcluster::SupervisorOptions opts;
    opts.respawnBudget = config_.respawnBudget;
    opts.onRespawn = [this, &job, &buddies, useBuddies,
                      coreBase](const vcluster::RespawnEvent& ev) {
      // A dead rank's in-memory blob died with it (this hook runs before
      // the replacement thread exists, so the restore below it cannot see
      // the stale self copy): the replacement restores from the ring
      // buddy's replica, or from disk. A stall respawn loses no memory.
      if (useBuddies && ev.cause == "rank-death") buddies.noteDeath(ev.rank);
      // Stall respawns leave a ZOMBIE incarnation that may still be
      // executing (the wedge is a sleep, not an exit): fence its telemetry
      // slot and drain any in-flight span write before the replacement —
      // spawned after this hook returns — reuses it. Death respawns get
      // the same treatment for uniformity (the drain is instant).
      telemetry::retireSlot(config_.telemetrySlotBase + coreBase + ev.rank);
      {
        std::lock_guard<std::mutex> lock(job.mutex);
        ++job.respawns;
      }
      telemetry::count(telemetry::Counter::RankRespawns);
      recordRecoveryInstant("respawn rank " + std::to_string(ev.rank) +
                                " (" + ev.cause + ")",
                            ev.at);
    };
    opts.onQuiesce = [&quiesceSpans](int rank, bool entering) {
      auto& span = quiesceSpans[static_cast<std::size_t>(rank)];
      if (entering) {
        // The fenced rank's fn just unwound, leaving its frame stack
        // dangling on the slot: reset before opening the quiesce span
        // (close() chases the parent frame pointer).
        telemetry::resetThreadSpans();
        span.begin(telemetry::Phase::RespawnQuiesce);
      } else {
        span.end();
      }
    };
    cluster =
        std::make_unique<vcluster::SupervisedCluster>(spec.nranks, opts);
  }

  // Per-attempt heartbeat board + watchdog. A stall episode first asks
  // the supervisor for an in-place respawn (ladder rung 1); only when the
  // budget is spent — or the ladder is off — does it request a collective
  // cancel. Injected stalls are transient, so on the cancel path the
  // wedged rank wakes, reaches the cancel-check allreduce, and every rank
  // unwinds together.
  health::HeartbeatBoard board(spec.nranks);
  // Heartbeats stop when the step loop ends, so the post-run epilogue
  // (gather, product assembly) would eventually look like a stall; the
  // done flag keeps such phantom episodes out of the record.
  std::atomic<bool> attemptDone{false};
  std::unique_ptr<health::Watchdog> dog;
  if (config_.stallTimeoutSeconds > 0.0)
    dog = std::make_unique<health::Watchdog>(
        board, config_.stallTimeoutSeconds,
        [this, &job, &attemptDone,
         sup = cluster.get()](const health::StallReport& r) {
          if (attemptDone.load(std::memory_order_relaxed)) return;
          recordStall(r);
          if (sup != nullptr && sup->requestRespawn(r.rank, "stall"))
            return;
          job.requestCancel(RequeueCause::Stall);
        },
        config_.watchdogPollSeconds, config_.watchdogMissThreshold);

  io::CheckpointStore checkpoints((fs::path(jobDir) / "ckpt").string());
  const std::string surfacePath =
      (fs::path(jobDir) / "surface.bin").string();
  const int cancelEvery = std::max(1, config_.cancelCheckEverySteps);
  double dtOverride = 0.0;
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    dtOverride = job.dtOverride;
  }

  // The same rank function runs under either cluster flavour; after a
  // respawn the supervisor re-enters it from the top, so the checkpoint
  // agreement below doubles as the collective recovery fence.
  const vcluster::ThreadCluster::RankFn rankFn =
      [&](vcluster::Communicator& comm) {
        // Concurrent jobs share one telemetry session sized to the core
        // budget: shift this job's ranks onto its lease's slot range, and
        // clear any frame stack a previous (possibly unwound) attempt left
        // on the slot.
        telemetry::setThreadSlotBase(config_.telemetrySlotBase + coreBase);
        telemetry::resetThreadSpans();

        const auto cart = vcluster::CartTopology::balancedDims(
            spec.nranks, spec.dims.nx, spec.dims.ny, spec.dims.nz);
        vcluster::CartTopology topo(cart);

        core::SolverConfig config;
        config.globalDims = spec.dims;
        config.h = spec.h;
        config.dt = dtOverride > 0.0 ? dtOverride : 0.0;
        config.absorbing = core::AbsorbingType::Sponge;
        config.spongeWidth = spec.spongeWidth;
        config.health.enabled = true;
        config.health.monitor.everySteps = spec.healthEverySteps;
        config.health.maxRollbacks = spec.maxRollbacks;
        config.health.stallTimeoutSeconds = config_.stallTimeoutSeconds;
        config.health.watchdogMissThreshold = config_.watchdogMissThreshold;
        config.health.respawnBudget = config_.respawnBudget;
        config.health.heartbeats = &board;
        config.telemetry.emitAggregates = false;

        std::unique_ptr<core::WaveSolver> solver;
        if (spec.useCvm) {
          const mesh::MeshSpec mspec{spec.dims.nx, spec.dims.ny,
                                     spec.dims.nz, spec.h, 0.0, 0.0};
          mesh::MeshBlock block;
          block.spec = mesh::subdomainFor(topo, mspec, comm.rank());
          block.points.resize(block.spec.pointCount());
          const auto* field =
              reinterpret_cast<const vmodel::Material*>(meshBytes.data());
          for (std::size_t k = 0; k < block.spec.z.count(); ++k)
            for (std::size_t j = 0; j < block.spec.y.count(); ++j)
              for (std::size_t i = 0; i < block.spec.x.count(); ++i)
                block.at(i, j, k) =
                    field[(block.spec.x.begin + i) +
                          spec.dims.nx * ((block.spec.y.begin + j) +
                                          spec.dims.ny *
                                              (block.spec.z.begin + k))];
          solver = std::make_unique<core::WaveSolver>(comm, topo, config,
                                                      block);
        } else {
          const vmodel::Material uniform{6000.0f, 3464.0f, 2700.0f};
          solver = std::make_unique<core::WaveSolver>(comm, topo, config,
                                                      uniform);
        }

        // Source: an isotropic Ricker pulse at the domain centre. The
        // wavelet is sampled at the EFFECTIVE dt (CFL-derived or the
        // retry's tightened override), which every rank agrees on.
        const double dt = solver->dt();
        const double f0 =
            spec.sourceFreqHz > 0.0 ? spec.sourceFreqHz : 1.0 / (20.0 * dt);
        solver->addSource(core::explosionPointSource(
            spec.dims.nx / 2, spec.dims.ny / 2, spec.dims.nz / 2,
            core::rickerWavelet(f0, 1.5 / f0, dt, spec.steps,
                                spec.sourceAmplitude)));

        // Surface output: unbuffered, undecimated, step-indexed writes to
        // a file that PERSISTS across attempts (open never truncates), so
        // a resumed attempt rewrites its replay window in place and keeps
        // every earlier sample — the canonical wave product.
        io::SharedFile surface(surfacePath,
                               io::SharedFile::Mode::ReadWrite);
        core::SurfaceOutputConfig out;
        out.file = &surface;
        out.sampleEverySteps = spec.surfaceSampleEverySteps;
        out.spatialDecimation = 1;
        out.flushEverySamples = 1;
        if (config_.publisher != nullptr) {
          // Serving-tier hook: every durable-prefix advance of this rank's
          // writer is reported (on the rank thread) so partial hazard
          // products can be folded mid-run.
          SurfaceRunInfo info;
          info.specHash = job.hash;
          info.spec = spec;
          info.surfacePath = surfacePath;
          ProductPublisher* pub = config_.publisher;
          const int origin = config_.publishOriginId;
          const int rank = comm.rank();
          out.flushObserver = [pub, info = std::move(info), origin, rank](
                                  std::uint64_t durableSamples,
                                  std::uint64_t lowestRewritten) {
            pub->onWindowFlush(info, origin, rank, durableSamples,
                               lowestRewritten);
          };
        }
        solver->attachSurfaceOutput(out);

        if (spec.checkpointEverySteps > 0) {
          solver->attachCheckpoints(&checkpoints,
                                    spec.checkpointEverySteps);
          if (useBuddies)
            solver->attachBuddies(&buddies, spec.checkpointEverySteps);
          // Collective resume agreement: restart only when EVERY rank has
          // a valid generation somewhere — on disk or in buddy memory (a
          // fresh job has none anywhere). After a respawn every rank
          // re-enters here, so this allreduce is the recovery fence.
          std::int64_t have =
              checkpoints.newestValidStep(comm.rank()).has_value() ? 1 : 0;
          if (useBuddies && buddies.newestStep(comm.rank()).has_value())
            have = 1;
          if (comm.allreduce(have, vcluster::ReduceOp::Min) == 1)
            solver->restart();
        }

        if (comm.rank() == 0) {
          job.lastDt.store(solver->dt(), std::memory_order_relaxed);
          job.lastStep.store(solver->currentStep(),
                             std::memory_order_relaxed);
        }

        const std::size_t target = spec.steps;
        if (solver->currentStep() >= target) return;
        solver->run(target - solver->currentStep(), [&](std::size_t step) {
          if (comm.rank() == 0) {
            job.lastStep.store(step, std::memory_order_relaxed);
            job.lastDt.store(solver->dt(), std::memory_order_relaxed);
            // Worker-crash injection point. The consult is rank-0-only
            // (non-collective is fine: it only SETS the flag); the
            // cancellation itself is agreed below by allreduce.
            if (fault::injectionEnabled()) {
              if (fault::activeInjector()->check("sched.job.step", 0))
                job.requestCancel(RequeueCause::WorkerCrash);
            }
          }
          if (step % static_cast<std::size_t>(cancelEvery) == 0) {
            const std::int64_t flag = comm.allreduce(
                static_cast<std::int64_t>(
                    job.cancelRequested.load(std::memory_order_relaxed)),
                vcluster::ReduceOp::Max);
            if (flag != 0)
              throw CancelledError(static_cast<RequeueCause>(flag), step);
          }
        });
      };

  if (cluster != nullptr)
    cluster->run(rankFn);
  else
    vcluster::ThreadCluster::run(spec.nranks, rankFn);
  attemptDone.store(true, std::memory_order_relaxed);
  if (dog) dog->stop();

  // Products from the canonical bytes on disk.
  ScenarioProducts products;
  products.specHash = job.hash;
  products.completedSteps = spec.steps;
  products.dt = job.lastDt.load(std::memory_order_relaxed);
  auto surfaceBytes = readFileBytes(surfacePath);
  const std::size_t stepFloats = 3 * spec.dims.nx * spec.dims.ny;
  products.blobs.emplace_back("pgvh.bin",
                              ArtifactBlob::fromBytes(derivePgvh(
                                  surfaceBytes, stepFloats)));
  products.blobs.emplace_back(
      "surface.bin", ArtifactBlob::fromBytes(std::move(surfaceBytes)));
  return products;
}

ScenarioProducts ScenarioService::attemptRupture(JobState& job,
                                                 int coreBase) {
  const ScenarioSpec& spec = job.spec;
  rupture::RuptureConfig config;
  // Round, don't truncate: a lengthKm produced as nx*h/1000 must map back
  // to exactly nx nodes (the cycle bridge's stress override is sized that
  // way, and the solver rejects a dimension mismatch).
  const auto nx = static_cast<std::size_t>(
      std::llround(spec.lengthKm * 1000.0 / spec.h));
  const auto nzFault = static_cast<std::size_t>(
      std::llround(spec.depthKm * 1000.0 / spec.h));
  const std::size_t margin = 14;
  config.globalDims = {nx + 2 * margin, 2 * margin + 2, nzFault + margin};
  config.h = spec.h;
  config.faultJ = margin;
  config.fi0 = margin;
  config.fi1 = margin + nx;
  config.fk1 = config.globalDims.nz - 1;
  config.fk0 = config.fk1 - nzFault;
  config.spongeWidth = 10;
  config.friction.dc = 1.5e-3 * spec.h;
  config.friction.dcSurface = 3.0 * config.friction.dc;
  config.stress.seed = spec.seed;
  config.stress.corrX = 0.1 * spec.lengthKm * 1000.0;
  config.stress.corrZ = 0.3 * spec.depthKm * 1000.0;
  config.stress.nucX = spec.nucFraction * spec.lengthKm * 1000.0;
  config.stress.nucZ = 0.6 * spec.depthKm * 1000.0;
  config.stress.nucRadius = std::max(8.0 * spec.h, 4000.0);
  config.stress.nucExcess = 0.15;
  config.timeDecimation = 2;
  config.slipRateThreshold = 0.01;
  // A cycle-bridged scenario nucleates from its interseismically evolved
  // stress snapshot instead of the seeded random-field model.
  if (spec.cycleStress) config.stressOverride = spec.cycleStress;

  rupture::FaultHistory history;
  vcluster::ThreadCluster::run(
      spec.nranks, [&](vcluster::Communicator& comm) {
        telemetry::setThreadSlotBase(config_.telemetrySlotBase + coreBase);
        telemetry::resetThreadSpans();
        const auto cart = vcluster::CartTopology::balancedDims(
            spec.nranks, config.globalDims.nx, config.globalDims.ny,
            config.globalDims.nz);
        vcluster::CartTopology topo(cart);
        const auto model = vmodel::LayeredModel::socalBackground();
        rupture::DynamicRuptureSolver solver(comm, topo, config, model);
        solver.run(spec.steps);
        if (comm.rank() == 0)
          job.lastStep.store(solver.currentStep(),
                             std::memory_order_relaxed);
        auto h = solver.gather();
        if (comm.rank() == 0) history = std::move(h);
      });

  ScenarioProducts products;
  products.specHash = job.hash;
  products.completedSteps = spec.steps;
  products.dt = history.dt;
  products.blobs.emplace_back(
      "fault_history",
      ArtifactBlob::fromBytes(serializeFaultHistory(history)));
  return products;
}

void ScenarioService::maybeRequeue(const JobHandle& job, RequeueCause cause,
                                   std::uint64_t atStep,
                                   const std::string& why) {
  bool requeue = false;
  // An aborting service never requeues: the broker this service backs is
  // modelled as dead, and the fabric replays its work elsewhere.
  const bool aborting = aborting_.load(std::memory_order_relaxed) ||
                        cause == RequeueCause::Aborted;
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    if (!aborting &&
        static_cast<int>(job->requeues.size()) < config_.maxRetries) {
      requeue = true;
      RequeueEvent ev;
      ev.cause = cause;
      ev.attempt = job->attempts;
      ev.atStep = atStep;
      if (cause == RequeueCause::FatalVerdict) {
        // The attempt was numerically unstable: resume on a tighter dt.
        const double last = job->lastDt.load(std::memory_order_relaxed);
        if (last > 0.0) job->dtOverride = last * config_.retryDtTighten;
      }
      // Crash/stall retries keep dt so the resumed run is bit-identical.
      ev.dtNext = job->dtOverride;
      job->requeues.push_back(ev);
      job->phase = JobPhase::Queued;
      job->cancelRequested.store(0, std::memory_order_relaxed);
      job->fatalAbort.store(false, std::memory_order_relaxed);
    }
  }
  if (!requeue) {
    settleTerminal(job, JobPhase::Failed,
                   std::string("retry budget exhausted (") +
                       toString(cause) + "): " + why,
                   {}, /*countedPrimary=*/true);
    return;
  }
  telemetry::count(telemetry::Counter::ScenarioRetries);
  queue_.pushRequeue(job);
  {
    std::lock_guard<std::mutex> lock(dispatchMu_);
    signal_ = true;
    // Runs on a detached worker: notify under the mutex (see workerMain).
    dispatchCv_.notify_all();
  }
}

void ScenarioService::settleTerminal(const JobHandle& job, JobPhase phase,
                                     const std::string& error,
                                     ScenarioProducts products,
                                     bool countedPrimary) {
  std::vector<JobHandle> followers;
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    auto it = primaryByHash_.find(job->hash);
    if (it != primaryByHash_.end() && it->second == job) {
      primaryByHash_.erase(it);
      auto fit = followersByHash_.find(job->hash);
      if (fit != followersByHash_.end()) {
        followers = std::move(fit->second);
        followersByHash_.erase(fit);
      }
    }
  }
  const double now = epoch_.seconds();
  auto finish = [&](const JobHandle& j, bool copyProducts) {
    {
      std::lock_guard<std::mutex> lock(j->mutex);
      j->phase = phase;
      j->error = error;
      if (phase == JobPhase::Completed)
        j->products = copyProducts ? products : std::move(products);
      j->endSeconds = now;
    }
    j->settled.notify_all();
    if (phase == JobPhase::Completed)
      telemetry::count(telemetry::Counter::ScenariosCompleted);
  };
  for (const auto& f : followers) finish(f, /*copyProducts=*/true);
  finish(job, /*copyProducts=*/false);
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    outstanding_ -= followers.size() + (countedPrimary ? 1 : 0);
    // Runs on a detached worker: drain() exits (and the service can be
    // destroyed) the moment outstanding_ hits zero, so the broadcast must
    // land before this mutex is released.
    drainCv_.notify_all();
  }
}

void ScenarioService::recordStall(const health::StallReport& report) {
  std::lock_guard<std::mutex> lock(stallMu_);
  stalls_.push_back(report);
}

void ScenarioService::recordRecoveryInstant(
    const std::string& name, std::chrono::steady_clock::time_point at) {
  const telemetry::Session* session = telemetry::activeSession();
  if (session == nullptr) return;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      at - session->epoch())
                      .count();
  telemetry::InstantEvent ev;
  ev.name = name;
  ev.tsNs = ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
  std::lock_guard<std::mutex> lock(recoveryMu_);
  recoveryInstants_.push_back(std::move(ev));
}

std::vector<health::StallReport> ScenarioService::stallEpisodes() const {
  std::lock_guard<std::mutex> lock(stallMu_);
  return stalls_;
}

void ScenarioService::drain() {
  std::unique_lock<std::mutex> lock(jobsMu_);
  drainCv_.wait(lock, [&] { return outstanding_ == 0; });
}

void ScenarioService::abort(const std::string& why) {
  bool expected = false;
  if (!aborting_.compare_exchange_strong(expected, true)) {
    drain();  // a concurrent abort is already sweeping; wait it out
    return;
  }
  queue_.close();
  // Fail everything still queued (requeues included: the abort flag keeps
  // maybeRequeue from re-admitting anything behind our back).
  for (auto& job : queue_.drainAll())
    settleTerminal(job, JobPhase::Failed, "service aborted: " + why, {},
                   /*countedPrimary=*/true);
  // Cancel running attempts; each unwinds at its next collective
  // cancel-check and settles Failed through the aborting maybeRequeue.
  std::vector<JobHandle> jobs;
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    jobs = allJobs_;
  }
  for (const auto& j : jobs) {
    bool running = false;
    {
      std::lock_guard<std::mutex> lock(j->mutex);
      running = j->phase == JobPhase::Running;
    }
    if (running) j->requestCancel(RequeueCause::Aborted);
  }
  drain();
}

void ScenarioService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(dispatchMu_);
    if (shutdownDone_) return;
    shutdownDone_ = true;
  }
  queue_.close();
  drain();
  {
    std::lock_guard<std::mutex> lock(dispatchMu_);
    stopping_ = true;
    signal_ = true;
  }
  dispatchCv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (ownedSession_ != nullptr) {
    if (!config_.chromeTracePath.empty()) {
      std::vector<telemetry::InstantEvent> instants;
      {
        std::lock_guard<std::mutex> lock(recoveryMu_);
        instants = recoveryInstants_;
      }
      telemetry::writeChromeTraceFile(config_.chromeTracePath,
                                      *ownedSession_, instants);
    }
    telemetry::installSession(nullptr);
  }
}

std::optional<ScenarioProducts> ScenarioService::cachedProducts(
    const std::string& hash) {
  if (!config_.cacheProducts) return std::nullopt;
  auto bytes = cache_.get(productKey(hash));
  if (!bytes) return std::nullopt;
  try {
    return ScenarioProducts::deserialize(*bytes);
  } catch (const Error&) {
    return std::nullopt;  // version skew: a miss, not an error
  }
}

ServiceReport ScenarioService::report() const {
  ServiceReport r;
  r.coreBudget = config_.coreBudget;
  r.wallSeconds = epoch_.seconds();
  r.cache = cache_.stats();
  r.executedAttempts = executedAttempts_.load(std::memory_order_relaxed);
  // Process-wide per-site retry stats: in a fabric every broker's report
  // shows the same registry (the fabric report dedupes), which is the
  // point — forwarding and lease-renewal retries are visible wherever an
  // operator happens to look.
  r.retrySites = util::retryRegistrySnapshot();

  std::vector<JobHandle> jobs;
  {
    std::lock_guard<std::mutex> lock(jobsMu_);
    jobs = allJobs_;
  }
  r.submitted = jobs.size();
  double latSum = 0.0;
  std::uint64_t latCount = 0;
  for (const auto& j : jobs) {
    std::lock_guard<std::mutex> lock(j->mutex);
    JobRow row;
    row.name = j->spec.name;
    row.kind = toString(j->spec.kind);
    row.hash = j->hash;
    row.priority = j->spec.priority;
    row.phase = toString(j->phase);
    row.attempts = j->attempts;
    row.retries = static_cast<int>(j->requeues.size());
    row.respawns = j->respawns;
    row.cacheHit = j->cacheHit;
    row.coalesced = j->coalesced;
    if (j->phase == JobPhase::Completed)
      row.completedSteps = j->products.completedSteps;
    if (j->startSeconds > 0.0) {
      row.queueSeconds = j->startSeconds - j->submitSeconds;
      const double end =
          j->endSeconds > 0.0 ? j->endSeconds : r.wallSeconds;
      row.runSeconds = end - j->startSeconds;
      latSum += row.queueSeconds;
      ++latCount;
      if (latCount == 1 || row.queueSeconds < r.queueLatencyMin)
        r.queueLatencyMin = row.queueSeconds;
      if (row.queueSeconds > r.queueLatencyMax)
        r.queueLatencyMax = row.queueSeconds;
    }
    row.error = j->error;
    r.retries += j->requeues.size();
    r.respawns += static_cast<std::uint64_t>(j->respawns);
    r.respawnEscalations +=
        static_cast<std::uint64_t>(j->respawnEscalations);
    // Disjoint outcome classes (cache-served and coalesced submissions
    // complete without executing): completed counts executed completions.
    if (j->cacheHit) {
      ++r.cacheHits;
    } else if (j->coalesced) {
      ++r.coalesced;
    } else if (j->phase == JobPhase::Completed) {
      ++r.completed;
    } else if (j->phase == JobPhase::Failed) {
      ++r.failed;
    } else if (j->phase == JobPhase::Rejected) {
      ++r.rejected;
    }
    r.jobs.push_back(std::move(row));
  }
  if (latCount > 0) r.queueLatencyMean = latSum / latCount;
  if (r.wallSeconds > 0.0)
    r.throughputPerSecond =
        static_cast<double>(r.completed) / r.wallSeconds;
  return r;
}

}  // namespace awp::sched
