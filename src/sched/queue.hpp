#pragma once
// Bounded priority admission queue. Admission control is the service's
// backpressure valve: the queue holds at most `capacity` jobs, and a full
// queue either rejects the submission (Reject — the caller gets an
// immediate Rejected handle) or blocks the submitting thread until space
// frees (Block). Requeues after a crash/stall bypass the bound: work the
// service already accepted must never be dropped by its own backpressure.
//
// Storage is a vector kept sorted so that the BACK is always the next job
// to run (highest priority; FIFO within a priority via the submit
// sequence number). push pays the O(n) sorted insert on the admission
// path; pop and popFit — the dispatcher's hot path — take from the back
// with no allocation and no throw (registered in awplint's hot registry).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sched/job.hpp"
#include "util/guarded.hpp"

namespace awp::sched {

class AdmissionQueue {
 public:
  enum class AdmitPolicy { Reject, Block };
  enum class PushResult { Admitted, Rejected, Closed };

  AdmissionQueue(std::size_t capacity, AdmitPolicy policy);

  // Admission push (honours the bound and policy). Block-policy pushes
  // wait for space; close() releases them with Closed.
  PushResult push(JobHandle job);
  // Requeue push: bypasses the bound (and admission accounting).
  void pushRequeue(JobHandle job);

  // Highest-priority job, or nullptr when empty. No allocation, no throw.
  [[nodiscard]] JobHandle pop();
  // Highest-priority job satisfying the resource fit (nranks <= freeCores
  // and estimatedBytes <= freeBytes; freeBytes == 0 means unlimited), or
  // nullptr. Scans from the back so priority order is preserved among
  // fitting jobs. No allocation, no throw.
  [[nodiscard]] JobHandle popFit(int freeCores, std::size_t freeBytes);

  // No further admissions; pending jobs remain poppable. Wakes blocked
  // pushers (they get Closed).
  void close();

  // Remove and return every queued job at once (highest priority last,
  // matching pop order). The service's fail-fast abort settles them all
  // as Failed; callers normally close() first so nothing refills behind.
  [[nodiscard]] std::vector<JobHandle> drainAll();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t requeued = 0;
    std::uint64_t blockedPushes = 0;  // pushes that had to wait for space
  };
  [[nodiscard]] Stats stats() const;

 private:
  // Storage order: ascending (priority, descending seq), so back() = max
  // priority, min seq.
  void insertSorted(JobHandle job) AWP_REQUIRES(mutex_);

  std::size_t capacity_;
  AdmitPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable space_;
  std::vector<JobHandle> items_ AWP_GUARDED_BY(mutex_);
  bool closed_ AWP_GUARDED_BY(mutex_) = false;
  Stats stats_ AWP_GUARDED_BY(mutex_);
};

}  // namespace awp::sched
