#include "sched/artifact_cache.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "util/error.hpp"
#include "util/md5.hpp"

namespace awp::sched {

namespace fs = std::filesystem;

ArtifactCache::ArtifactCache(std::string directory)
    : directory_(std::move(directory)) {
  if (!directory_.empty()) fs::create_directories(directory_);
}

std::string ArtifactCache::entryPath(const std::string& key) const {
  return (fs::path(directory_) /
          (Md5::hexDigest(key.data(), key.size()) + ".blob"))
      .string();
}

std::optional<std::vector<std::byte>> ArtifactCache::loadDisk(
    const std::string& key) {
  if (directory_.empty()) return std::nullopt;
  std::ifstream in(entryPath(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::array<std::uint8_t, 16> stored{};
  in.read(reinterpret_cast<char*>(stored.data()),
          static_cast<std::streamsize>(stored.size()));
  if (!in) return std::nullopt;
  std::vector<std::byte> payload;
  {
    std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    payload.resize(raw.size());
    std::memcpy(payload.data(), raw.data(), raw.size());
  }
  // Digest-gate the load: torn or corrupted entries are misses.
  if (Md5::hash(payload.data(), payload.size()) != stored)
    return std::nullopt;
  return payload;
}

void ArtifactCache::storeDisk(const std::string& key,
                              const std::vector<std::byte>& value) const {
  if (directory_.empty()) return;
  const std::string target = entryPath(key);
  // Unique tmp name: several caches may share one disk tier (the hazard
  // fabric points every broker at the same directory), and two brokers
  // finishing the same digest concurrently must not interleave bytes in
  // one tmp file. The rename stays atomic; last writer wins.
  static std::atomic<std::uint64_t> tmpSeq{0};
  const std::string tmp =
      target + ".tmp." +
      std::to_string(tmpSeq.fetch_add(1, std::memory_order_relaxed));
  const auto digest = Md5::hash(value.data(), value.size());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("sched: cache cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(digest.data()),
              static_cast<std::streamsize>(digest.size()));
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.size()));
    out.flush();
    if (!out) throw Error("sched: cache short write to " + tmp);
  }
  fs::rename(tmp, target);
}

std::optional<std::vector<std::byte>> ArtifactCache::get(
    const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = memory_.find(key);
    if (it != memory_.end()) {
      ++stats_.hits;
      ++stats_.memoryHits;
      return it->second;
    }
    ++stats_.memoryMisses;
  }
  // Disk probe outside the lock: I/O must not serialize memory hits.
  auto fromDisk = loadDisk(key);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!fromDisk.has_value()) {
    ++stats_.misses;
    ++stats_.diskMisses;
    return std::nullopt;
  }
  ++stats_.hits;
  ++stats_.diskLoads;
  ++stats_.diskHits;
  memory_[key] = *fromDisk;
  return fromDisk;
}

void ArtifactCache::accountPutLocked(const std::string& key,
                                     std::uint64_t bytes, bool stored) {
  ++stats_.puts;
  stats_.logicalBytes += bytes;
  auto& entry = accounting_[key];
  entry.logicalBytes += bytes;
  if (stored) {
    stats_.storedBytes += bytes;
    entry.storedBytes += bytes;
  } else {
    ++stats_.dedupHits;
    ++entry.dedupPuts;
  }
}

void ArtifactCache::put(const std::string& key, std::vector<std::byte> value) {
  storeDisk(key, value);
  std::lock_guard<std::mutex> lock(mutex_);
  accountPutLocked(key, value.size(), /*stored=*/true);
  memory_[key] = std::move(value);
}

bool ArtifactCache::putDedup(const std::string& key,
                             std::vector<std::byte> value) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (memory_.count(key) > 0) {
      accountPutLocked(key, value.size(), /*stored=*/false);
      return false;
    }
  }
  // The key embeds the payload digest (content addressing), so a disk hit
  // is the same bytes — promote it and absorb the put.
  auto fromDisk = loadDisk(key);
  if (fromDisk.has_value()) {
    std::lock_guard<std::mutex> lock(mutex_);
    accountPutLocked(key, value.size(), /*stored=*/false);
    memory_[key] = std::move(*fromDisk);
    return false;
  }
  storeDisk(key, value);
  std::lock_guard<std::mutex> lock(mutex_);
  accountPutLocked(key, value.size(), /*stored=*/true);
  memory_[key] = std::move(value);
  return true;
}

std::vector<std::byte> ArtifactCache::getOrCompute(
    const std::string& key,
    const std::function<std::vector<std::byte>()>& compute) {
  for (;;) {
    std::shared_ptr<Pending> waitOn;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      auto hit = memory_.find(key);
      if (hit != memory_.end()) {
        ++stats_.hits;
        ++stats_.memoryHits;
        return hit->second;
      }
      auto inFlight = pending_.find(key);
      if (inFlight == pending_.end()) {
        // This caller computes; publish the pending marker first.
        pending_[key] = std::make_shared<Pending>();
        break;
      }
      waitOn = inFlight->second;
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      waitOn->cv.wait(lock, [&] { return waitOn->done; });
      if (!waitOn->failed) {
        auto hit = memory_.find(key);
        if (hit != memory_.end()) {
          ++stats_.hits;
          ++stats_.memoryHits;
          return hit->second;
        }
      }
      // Winner failed (or entry vanished): loop and retry as a candidate
      // computer.
    }
  }

  // We are the single in-flight computer for this key. Check the disk
  // tier before paying for the compute.
  auto finish = [&](bool failed) {
    std::shared_ptr<Pending> p;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = pending_.find(key);
      p = it->second;
      pending_.erase(it);
      p->done = true;
      p->failed = failed;
    }
    p->cv.notify_all();
  };

  try {
    auto fromDisk = loadDisk(key);
    std::vector<std::byte> value;
    if (fromDisk.has_value()) {
      value = std::move(*fromDisk);
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.hits;
      ++stats_.diskLoads;
      ++stats_.diskHits;
      ++stats_.memoryMisses;
      memory_[key] = value;
    } else {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        ++stats_.computes;
        ++stats_.memoryMisses;
        ++stats_.diskMisses;
      }
      value = compute();
      storeDisk(key, value);
      std::lock_guard<std::mutex> lock(mutex_);
      accountPutLocked(key, value.size(), /*stored=*/true);
      memory_[key] = value;
    }
    finish(/*failed=*/false);
    return value;
  } catch (...) {
    finish(/*failed=*/true);
    throw;
  }
}

bool ArtifactCache::contains(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (memory_.count(key) > 0) return true;
  }
  auto fromDisk = loadDisk(key);
  if (!fromDisk.has_value()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  memory_[key] = std::move(*fromDisk);
  return true;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s = stats_;
  s.entries = memory_.size();
  return s;
}

std::map<std::string, EntryAccounting> ArtifactCache::entryAccounting()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accounting_;
}

}  // namespace awp::sched
