#pragma once
// Service-level reporting: the JSON summary a batch operator reads after
// (or while) running an ensemble through the scenario service — queue
// latency, throughput, cache effectiveness, retry counts, and one row per
// job. Schema-validated like the telemetry report (the CI chaos job and
// tests call the validator rather than eyeballing text).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sched/artifact_cache.hpp"
#include "sched/job.hpp"
#include "util/retry.hpp"

namespace awp::sched {

struct JobRow {
  std::string name;
  std::string kind;      // "wave" | "rupture"
  std::string hash;      // spec hash (hex)
  int priority = 0;
  std::string phase;     // terminal JobPhase name
  int attempts = 0;
  int retries = 0;       // requeue count
  int respawns = 0;      // in-place rank respawns absorbed by this job
  bool cacheHit = false;
  bool coalesced = false;
  std::uint64_t completedSteps = 0;
  double queueSeconds = 0.0;  // submit -> first dispatch
  double runSeconds = 0.0;    // first dispatch -> settle
  std::string error;
};

struct ServiceReport {
  double wallSeconds = 0.0;
  int coreBudget = 0;

  std::uint64_t submitted = 0;   // submit() calls, including rejections
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cacheHits = 0;   // product-cache served submissions
  std::uint64_t coalesced = 0;   // merged into an in-flight identical spec
  std::uint64_t retries = 0;     // requeue events across all jobs
  // Recovery ladder: single-rank losses repaired in place (no requeue),
  // and losses that escalated to the cancel-and-requeue path.
  std::uint64_t respawns = 0;
  std::uint64_t respawnEscalations = 0;
  std::uint64_t executedAttempts = 0;  // attempts actually run on workers
  double throughputPerSecond = 0.0;    // completed / wallSeconds

  // Queue latency over jobs that reached a worker (submit -> dispatch).
  double queueLatencyMin = 0.0;
  double queueLatencyMean = 0.0;
  double queueLatencyMax = 0.0;

  CacheStats cache;  // artifact cache (mesh dedupe + product memoization)

  // Per-site retry/backoff statistics (util::retryRegistrySnapshot at
  // report time, process-wide): how often each fault-tolerant path — I/O,
  // transfers, fabric forwarding and lease renewal — actually retried.
  std::map<std::string, util::RetrySiteStats> retrySites;

  std::vector<JobRow> jobs;

  [[nodiscard]] bool valid() const { return coreBudget > 0; }
};

// Render as JSON (schema "awp-sched-service-report", version 1).
std::string toJson(const ServiceReport& report);

// Write toJson(report) to `path` atomically (tmp + rename).
void writeServiceReportFile(const std::string& path,
                            const ServiceReport& report);

// Validate rendered report text. Returns violations (empty = valid).
std::vector<std::string> validateServiceReportJson(const std::string& text);

}  // namespace awp::sched
