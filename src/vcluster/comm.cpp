#include "vcluster/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "fault/injector.hpp"
#include "util/hot.hpp"

namespace awp::vcluster {

ClusterState::ClusterState(int nranks)
    : size(nranks), barrier(nranks) {
  AWP_CHECK(nranks > 0);
  mailboxes.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes.push_back(std::make_unique<Mailbox>());
    mailboxes.back()->setFencedCounter(&stats.messagesFenced);
  }
}

AWP_HOT bool Communicator::fenced() const {
  return state_->epoch.load(std::memory_order_acquire) != epochSeen_;
}

void Communicator::throwFenced() const {
  throw EpochFenced(rank_, epochSeen_,
                    state_->epoch.load(std::memory_order_acquire));
}

void Communicator::fencePoint() const {
  if (fenced()) throwFenced();
}

void Communicator::send(int dest, int tag, const void* data,
                        std::size_t bytes) {
  AWP_CHECK_MSG(dest >= 0 && dest < size(), "send: destination out of range");
  fencePoint();
  Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.epoch = epochSeen_;
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);

  bool duplicate = false;
  if (fault::injectionEnabled()) {  // fast path when disabled: one branch
    if (auto act = fault::activeInjector()->check("comm.send", rank_)) {
      switch (act->kind) {
        case fault::FaultKind::MessageDrop:
          // The message vanishes in flight; the sender never learns.
          state_->stats.messagesDropped.fetch_add(1,
                                                  std::memory_order_relaxed);
          return;
        case fault::FaultKind::MessageDuplicate:
          duplicate = true;
          state_->stats.messagesDuplicated.fetch_add(
              1, std::memory_order_relaxed);
          break;
        case fault::FaultKind::BitFlip:
          if (!msg.payload.empty()) {
            const std::uint64_t bit =
                act->flipBit % (msg.payload.size() * 8);
            msg.payload[bit / 8] ^=
                static_cast<std::byte>(1u << (bit % 8));
          }
          break;
        case fault::FaultKind::RankStall:
          std::this_thread::sleep_for(
              std::chrono::duration<double>(act->stallSeconds));
          break;
        default:
          break;  // I/O kinds do not apply to message sends
      }
    }
  }
  if (duplicate)
    state_->mailboxes[static_cast<std::size_t>(dest)]->push(msg);
  state_->mailboxes[static_cast<std::size_t>(dest)]->push(std::move(msg));
  state_->stats.messagesSent.fetch_add(1, std::memory_order_relaxed);
  state_->stats.bytesSent.fetch_add(bytes, std::memory_order_relaxed);
}

void Communicator::recv(int src, int tag, void* data, std::size_t bytes) {
  AWP_CHECK_MSG(src >= 0 && src < size(), "recv: source out of range");
  fencePoint();
  Message msg =
      state_->mailboxes[static_cast<std::size_t>(rank_)]->popMatch(
          src, tag, EpochGuard{&state_->epoch, epochSeen_});
  AWP_CHECK_MSG(msg.payload.size() == bytes,
                "recv: payload size mismatch for (src, tag) envelope");
  if (bytes > 0) std::memcpy(data, msg.payload.data(), bytes);
}

Request Communicator::isend(int dest, int tag, const void* data,
                            std::size_t bytes) {
  // Buffered-send semantics: the payload is copied now, so the request is
  // already complete. Matches how AWP-ODC uses mpi_isend + waitall.
  send(dest, tag, data, bytes);
  Request req;
  req.kind_ = Request::Kind::Send;
  req.peer_ = dest;
  req.tag_ = tag;
  return req;
}

Request Communicator::irecv(int src, int tag, void* data, std::size_t bytes) {
  Request req;
  req.kind_ = Request::Kind::Recv;
  req.peer_ = src;
  req.tag_ = tag;
  req.buf_ = data;
  req.bytes_ = bytes;
  return req;
}

void Communicator::wait(Request& req) {
  if (req.kind_ == Request::Kind::Recv) {
    recv(req.peer_, req.tag_, req.buf_, req.bytes_);
  }
  req.kind_ = Request::Kind::None;
}

void Communicator::waitAll(std::span<Request> reqs) {
  for (auto& r : reqs) wait(r);
}

void Communicator::barrier() {
  state_->stats.barriers.fetch_add(1, std::memory_order_relaxed);
  if (state_->interruptibleBarrier) {
    // Message-based barrier: every blocking wait goes through a mailbox,
    // so a respawn epoch bump can wake and fence it. A std::barrier wait
    // cannot be interrupted, which would deadlock survivors whenever a
    // rank dies between their arrival and its own.
    fencePoint();
    const std::uint8_t token = 1;
    if (rank_ == 0) {
      for (int r = 1; r < size(); ++r)
        (void)recvValue<std::uint8_t>(r, kTagBarrierBase);
      for (int r = 1; r < size(); ++r) sendValue(r, kTagBarrierBase, token);
    } else {
      sendValue(0, kTagBarrierBase, token);
      (void)recvValue<std::uint8_t>(0, kTagBarrierBase);
    }
    return;
  }
  state_->barrier.arrive_and_wait();
}

template <typename T>
T Communicator::allreduceImpl(T value, ReduceOp op) {
  // Gather to rank 0 in rank order (deterministic), reduce, broadcast.
  T result = value;
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      const T v = recvValue<T>(r, kTagReduce);
      switch (op) {
        case ReduceOp::Sum:
          result += v;
          break;
        case ReduceOp::Min:
          result = std::min(result, v);
          break;
        case ReduceOp::Max:
          result = std::max(result, v);
          break;
      }
    }
    for (int r = 1; r < size(); ++r) sendValue(r, kTagReduce, result);
  } else {
    sendValue(0, kTagReduce, value);
    result = recvValue<T>(0, kTagReduce);
  }
  return result;
}

double Communicator::allreduce(double value, ReduceOp op) {
  return allreduceImpl(value, op);
}

std::int64_t Communicator::allreduce(std::int64_t value, ReduceOp op) {
  return allreduceImpl(value, op);
}

void Communicator::bcast(int root, void* data, std::size_t bytes) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send(r, kTagBcast, data, bytes);
  } else {
    recv(root, kTagBcast, data, bytes);
  }
}

std::vector<std::vector<std::byte>> Communicator::gatherBytes(
    int root, std::span<const std::byte> payload) {
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] =
        std::vector<std::byte>(payload.begin(), payload.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      const auto n = recvValue<std::uint64_t>(r, kTagGatherSize);
      auto& dst = out[static_cast<std::size_t>(r)];
      dst.resize(n);
      recv(r, kTagGatherData, dst.data(), n);
    }
  } else {
    sendValue(root, kTagGatherSize,
              static_cast<std::uint64_t>(payload.size()));
    send(root, kTagGatherData, payload.data(), payload.size());
  }
  return out;
}

std::vector<std::int64_t> Communicator::allgather(std::int64_t value) {
  std::vector<std::int64_t> out(static_cast<std::size_t>(size()), 0);
  if (rank_ == 0) {
    out[0] = value;
    for (int r = 1; r < size(); ++r)
      out[static_cast<std::size_t>(r)] = recvValue<std::int64_t>(r, kTagReduce);
  } else {
    sendValue(0, kTagReduce, value);
  }
  bcast(0, out.data(), out.size() * sizeof(std::int64_t));
  return out;
}

}  // namespace awp::vcluster
