#pragma once
// ThreadCluster launches N "ranks" as threads and runs a rank function on
// each, giving every rank a Communicator. This stands in for the MPI job
// launch on the paper's machines (Table 1): same SPMD structure, same
// message-passing discipline, laptop-scale execution.

#include <functional>

#include "vcluster/comm.hpp"

namespace awp::vcluster {

class ThreadCluster {
 public:
  using RankFn = std::function<void(Communicator&)>;

  // Run `fn` on `nranks` ranks; blocks until all complete. If any rank
  // throws, the first exception (by rank order) is rethrown after join.
  static void run(int nranks, const RankFn& fn);
};

}  // namespace awp::vcluster
