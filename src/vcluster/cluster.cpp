#include "vcluster/cluster.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "fault/injector.hpp"

namespace awp::vcluster {

void ThreadCluster::run(int nranks, const RankFn& fn) {
  AWP_CHECK(nranks > 0);
  ClusterState state(nranks);

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      // Tag the thread so fault-injection hooks below the Communicator
      // (SharedFile, Mailbox) can attribute operations to this rank.
      fault::setThreadRank(r);
      Communicator comm(r, &state);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Retire from the barrier so surviving ranks are not deadlocked at
        // their next synchronization point. This mirrors the fail-stop
        // tolerance direction of §III.F: non-failing processes continue
        // and the environment adapts to the failure.
        state.barrier.arrive_and_drop();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace awp::vcluster
