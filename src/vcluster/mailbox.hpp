#pragma once
// Per-rank mailbox for the virtual cluster. Messages are matched on
// (source, tag) exactly as MPI point-to-point envelopes; out-of-order
// arrival across different (source, tag) pairs is allowed, which is what
// the paper's asynchronous communication redesign relies on (§IV.A:
// "unique tagging to avoid source/destination ambiguity ... allows
// out-of-order arrival and the unique tags maintain data integrity").

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace awp::vcluster {

struct Message {
  int src = -1;
  int tag = 0;
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  void push(Message msg);

  // Block until a message with matching (src, tag) arrives, then remove and
  // return it. FIFO among messages with the same envelope.
  Message popMatch(int src, int tag);

  // Non-blocking variant; returns false if no match is queued.
  bool tryPopMatch(int src, int tag, Message& out);

  // Number of currently queued messages (for tests / diagnostics).
  std::size_t depth() const;

 private:
  // Finds the first queued match; caller must hold the lock.
  bool extractLocked(int src, int tag, Message& out);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace awp::vcluster
