#pragma once
// Per-rank mailbox for the virtual cluster. Messages are matched on
// (source, tag) exactly as MPI point-to-point envelopes; out-of-order
// arrival across different (source, tag) pairs is allowed, which is what
// the paper's asynchronous communication redesign relies on (§IV.A:
// "unique tagging to avoid source/destination ambiguity ... allows
// out-of-order arrival and the unique tags maintain data integrity").
//
// Messages additionally carry the sender's incarnation epoch (see
// epoch.hpp). Under a SupervisedCluster a respawn bumps the cluster
// epoch; matches from an older epoch are from a dead incarnation and are
// silently discarded instead of delivered, and blocked receivers holding
// a fenced EpochGuard wake and throw EpochFenced.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "util/guarded.hpp"
#include "vcluster/epoch.hpp"

namespace awp::vcluster {

struct Message {
  int src = -1;
  int tag = 0;
  std::uint64_t epoch = 0;  // sender's incarnation epoch
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  void push(Message msg);

  // Block until a message with matching (src, tag) arrives, then remove and
  // return it. FIFO among messages with the same envelope. The guarded
  // overload delivers only messages stamped with guard.mine, discards
  // stale-epoch matches, and throws EpochFenced when the guard fences.
  Message popMatch(int src, int tag);
  Message popMatch(int src, int tag, const EpochGuard& guard);

  // Non-blocking variant; returns false if no match is queued.
  bool tryPopMatch(int src, int tag, Message& out);

  // Wake every blocked receiver so it can re-check its EpochGuard. Called
  // by the respawn supervisor right after bumping the cluster epoch.
  // Registered hot path: no allocation, no throw.
  void wakeAll();

  // Drop every queued message stamped below `epoch` (dead-incarnation
  // mail that no live receiver will ever match). Returns the drop count.
  std::size_t purgeBelow(std::uint64_t epoch);

  // Number of currently queued messages (for tests / diagnostics).
  std::size_t depth() const;

  // Where to count discarded stale-epoch messages (CommStats wiring;
  // nullptr = uncounted).
  void setFencedCounter(std::atomic<std::uint64_t>* counter) {
    fencedCounter_ = counter;
  }

 private:
  // Finds the first queued match stamped with `epoch`, discarding older
  // stamps along the way.
  bool extractLocked(int src, int tag, std::uint64_t epoch, Message& out)
      AWP_REQUIRES(mutex_);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_ AWP_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t>* fencedCounter_ = nullptr;
};

}  // namespace awp::vcluster
