#include "vcluster/cart.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace awp::vcluster {

CartTopology::CartTopology(Dims3 dims) : dims_(dims) {
  AWP_CHECK(dims.x > 0 && dims.y > 0 && dims.z > 0);
}

Dims3 CartTopology::balancedDims(int nranks, std::size_t nx, std::size_t ny,
                                 std::size_t nz) {
  AWP_CHECK(nranks > 0);
  Dims3 best{nranks, 1, 1};
  double bestCost = std::numeric_limits<double>::max();
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px != 0) continue;
    const int rem = nranks / px;
    for (int py = 1; py <= rem; ++py) {
      if (rem % py != 0) continue;
      const int pz = rem / py;
      // Require at least 4 points per axis per block (the 4th-order stencil
      // footprint); skip degenerate splits when the grid allows better.
      const double lx = static_cast<double>(nx) / px;
      const double ly = static_cast<double>(ny) / py;
      const double lz = static_cast<double>(nz) / pz;
      if (lx < 1.0 || ly < 1.0 || lz < 1.0) continue;
      // Ghost-exchange surface per rank (three face pairs).
      const double cost = lx * ly + lx * lz + ly * lz;
      if (cost < bestCost) {
        bestCost = cost;
        best = Dims3{px, py, pz};
      }
    }
  }
  return best;
}

int CartTopology::rankOf(int cx, int cy, int cz) const {
  AWP_CHECK(cx >= 0 && cx < dims_.x && cy >= 0 && cy < dims_.y && cz >= 0 &&
            cz < dims_.z);
  return cx + dims_.x * (cy + dims_.y * cz);
}

Dims3 CartTopology::coordsOf(int rank) const {
  AWP_CHECK(rank >= 0 && rank < size());
  Dims3 c;
  c.x = rank % dims_.x;
  c.y = (rank / dims_.x) % dims_.y;
  c.z = rank / (dims_.x * dims_.y);
  return c;
}

int CartTopology::neighbor(int rank, int axis, int dir) const {
  AWP_CHECK(axis >= 0 && axis < 3);
  AWP_CHECK(dir == -1 || dir == 1);
  Dims3 c = coordsOf(rank);
  int* coord = (axis == 0) ? &c.x : (axis == 1) ? &c.y : &c.z;
  const int limit = (axis == 0) ? dims_.x : (axis == 1) ? dims_.y : dims_.z;
  *coord += dir;
  if (*coord < 0 || *coord >= limit) return -1;
  return rankOf(c.x, c.y, c.z);
}

Range CartTopology::blockRange(std::size_t n, int parts, int coord) {
  AWP_CHECK(parts > 0 && coord >= 0 && coord < parts);
  const std::size_t base = n / static_cast<std::size_t>(parts);
  const std::size_t rem = n % static_cast<std::size_t>(parts);
  const auto c = static_cast<std::size_t>(coord);
  Range r;
  r.begin = c * base + std::min(c, rem);
  r.end = r.begin + base + (c < rem ? 1 : 0);
  return r;
}

}  // namespace awp::vcluster
