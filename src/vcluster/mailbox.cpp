#include "vcluster/mailbox.hpp"

#include <chrono>
#include <thread>

#include "fault/injector.hpp"
#include "util/hot.hpp"

namespace awp::vcluster {

void Mailbox::push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

bool Mailbox::extractLocked(int src, int tag, std::uint64_t epoch,
                            Message& out) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->src != src || it->tag != tag) {
      ++it;
      continue;
    }
    if (it->epoch < epoch) {
      // Mail from a dead incarnation: discard so a replayed exchange under
      // the new epoch cannot consume a stale payload.
      it = queue_.erase(it);
      if (fencedCounter_ != nullptr)
        fencedCounter_->fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (it->epoch > epoch) {
      // Mail from a NEWER incarnation than this receiver: leave it queued
      // for the receiver's post-resume replay (the receiver is about to
      // fence out of this wait).
      ++it;
      continue;
    }
    out = std::move(*it);
    queue_.erase(it);
    return true;
  }
  return false;
}

Message Mailbox::popMatch(int src, int tag) {
  return popMatch(src, tag, EpochGuard{});
}

Message Mailbox::popMatch(int src, int tag, const EpochGuard& guard) {
  if (fault::injectionEnabled()) {
    // Receive-side stall: this rank goes quiet for a while before it starts
    // waiting, letting chaos tests model a slow/hung peer (§III.F).
    if (auto act = fault::activeInjector()->check("mailbox.pop",
                                                  fault::threadRank());
        act && act->kind == fault::FaultKind::RankStall)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(act->stallSeconds));
  }
  std::unique_lock<std::mutex> lock(mutex_);
  Message out;
  bool got = false;
  cv_.wait(lock, [&] {
    // Fence first: a fenced receiver must never consume a message, even a
    // matching one — the replacement incarnation will re-run the exchange.
    if (guard.fenced()) return true;
    got = extractLocked(src, tag, guard.mine, out);
    return got;
  });
  if (!got)
    throw EpochFenced(fault::threadRank(), guard.mine,
                      guard.current->load(std::memory_order_acquire));
  return out;
}

bool Mailbox::tryPopMatch(int src, int tag, Message& out) {
  // Epoch-agnostic (diagnostic/test path): first (src, tag) match wins.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->src == src && it->tag == tag) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

AWP_HOT void Mailbox::wakeAll() {
  // Take the lock briefly so a waiter past its predicate check cannot miss
  // the notification, then notify outside the critical section.
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
}

std::size_t Mailbox::purgeBelow(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->epoch < epoch) {
      it = queue_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0 && fencedCounter_ != nullptr)
    fencedCounter_->fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

std::size_t Mailbox::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace awp::vcluster
