#include "vcluster/mailbox.hpp"

#include <chrono>
#include <thread>

#include "fault/injector.hpp"

namespace awp::vcluster {

void Mailbox::push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

bool Mailbox::extractLocked(int src, int tag, Message& out) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->src == src && it->tag == tag) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

Message Mailbox::popMatch(int src, int tag) {
  if (fault::injectionEnabled()) {
    // Receive-side stall: this rank goes quiet for a while before it starts
    // waiting, letting chaos tests model a slow/hung peer (§III.F).
    if (auto act = fault::activeInjector()->check("mailbox.pop",
                                                  fault::threadRank());
        act && act->kind == fault::FaultKind::RankStall)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(act->stallSeconds));
  }
  std::unique_lock<std::mutex> lock(mutex_);
  Message out;
  cv_.wait(lock, [&] { return extractLocked(src, tag, out); });
  return out;
}

bool Mailbox::tryPopMatch(int src, int tag, Message& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  return extractLocked(src, tag, out);
}

std::size_t Mailbox::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace awp::vcluster
