#pragma once
// 3D Cartesian process topology and block decomposition, as used by the
// AWP-ODC solver's 3D domain decomposition (§III.A): the simulation volume
// is partitioned into PX × PY × PZ subgrids, one per rank, with 2-cell
// ghost layers exchanged between face neighbors.

#include <cstddef>

namespace awp::vcluster {

struct Dims3 {
  int x = 1, y = 1, z = 1;
  [[nodiscard]] int total() const { return x * y * z; }
};

// Half-open index range [begin, end) along one axis.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t count() const { return end - begin; }
};

class CartTopology {
 public:
  explicit CartTopology(Dims3 dims);

  // Pick the factorization PX*PY*PZ = nranks that minimizes the total ghost
  // surface for a global grid of nx × ny × nz points.
  static Dims3 balancedDims(int nranks, std::size_t nx, std::size_t ny,
                            std::size_t nz);

  [[nodiscard]] Dims3 dims() const { return dims_; }
  [[nodiscard]] int size() const { return dims_.total(); }

  [[nodiscard]] int rankOf(int cx, int cy, int cz) const;
  [[nodiscard]] Dims3 coordsOf(int rank) const;

  // Face neighbor along axis (0=x, 1=y, 2=z) in direction dir (-1 or +1).
  // Returns -1 at a non-periodic boundary.
  [[nodiscard]] int neighbor(int rank, int axis, int dir) const;

  // Buddy-checkpoint partner: the next rank on the periodic ring through
  // the topology's rank ordering. Guarantees a single cycle covering every
  // rank (unlike face neighbors, which dead-end at domain boundaries), so
  // each rank holds exactly one replica and is held by exactly one peer.
  [[nodiscard]] int ringBuddy(int rank) const {
    return (rank + 1) % dims_.total();
  }

  // Block range owned by coordinate `coord` when `n` points are split over
  // `parts` blocks (remainder spread over the lowest coordinates).
  static Range blockRange(std::size_t n, int parts, int coord);

 private:
  Dims3 dims_;
};

}  // namespace awp::vcluster
