#include "vcluster/respawn.hpp"

#include "fault/injector.hpp"

namespace awp::vcluster {

SupervisedCluster::SupervisedCluster(int nranks, SupervisorOptions options)
    : nranks_(nranks), options_(std::move(options)) {
  AWP_CHECK_MSG(nranks_ > 0, "SupervisedCluster requires at least one rank");
  AWP_CHECK_MSG(options_.respawnBudget >= 0,
                "respawn budget must be non-negative");
}

SupervisedCluster::~SupervisedCluster() {
  // run() joins everything it spawned; nothing outlives it.
}

bool SupervisedCluster::allRanksDoneLocked() const {
  for (int r = 0; r < nranks_; ++r)
    if (!rankDone_[static_cast<std::size_t>(r)]) return false;
  return true;
}

void SupervisedCluster::bumpEpochLocked() {
  const std::uint64_t next =
      state_->epoch.load(std::memory_order_relaxed) + 1;
  state_->epoch.store(next, std::memory_order_release);
}

void SupervisedCluster::abortLocked() {
  aborting_ = true;
  bumpEpochLocked();
  for (auto& mb : state_->mailboxes) mb->wakeAll();
  cv_.notify_all();
}

void SupervisedCluster::escalateLocked(const Pending& p) {
  if (p.death) rankDone_[static_cast<std::size_t>(p.rank)] = true;
  abortError_ = std::make_exception_ptr(RespawnExhaustedError(
      p.rank, p.cause, respawnsUsed_, options_.respawnBudget));
  abortLocked();
}

void SupervisedCluster::handleLocked(const Pending& p,
                                     std::vector<RespawnEvent>& emitted) {
  const auto slot = static_cast<std::size_t>(p.rank);
  if (p.incarnation != incarnation_[slot]) return;  // stale incarnation
  if (rankDone_[slot]) return;
  if (aborting_ || finished_) {
    // Too late to repair; a dead rank is still terminal for bookkeeping.
    if (p.death) rankDone_[slot] = true;
    return;
  }
  if (!p.death && quiescing_[slot]) return;  // already recovering: absorb
  if (anyCompleted_ || respawnsUsed_ >= options_.respawnBudget) {
    escalateLocked(p);
    return;
  }

  ++respawnsUsed_;
  bumpEpochLocked();
  const std::uint64_t epoch = state_->epoch.load(std::memory_order_relaxed);
  // Dead-incarnation mail must not survive into the replay: purge every
  // mailbox, then wake all waiters so survivors reach their fence.
  for (auto& mb : state_->mailboxes) mb->purgeBelow(epoch);
  for (auto& mb : state_->mailboxes) mb->wakeAll();
  incarnation_[slot] += 1;
  quiescing_[slot] = 0;

  RespawnEvent ev;
  ev.rank = p.rank;
  ev.incarnation = incarnation_[slot];
  ev.epoch = epoch;
  ev.cause = p.cause;
  ev.at = std::chrono::steady_clock::now();
  events_.push_back(ev);
  // The replacement thread is spawned by the supervisor loop AFTER the
  // onRespawn callback has run, so the callback can invalidate state the
  // dead rank is modelled to have lost (e.g. its in-memory checkpoint
  // blob) before the replacement can possibly restore from it.
  emitted.push_back(std::move(ev));
  settledEpoch_ = epoch;
  cv_.notify_all();
}

SupervisedCluster::Decision SupervisedCluster::awaitDecision(
    int rank, int incarnation) {
  const auto slot = static_cast<std::size_t>(rank);
  std::unique_lock<std::mutex> lock(mu_);
  if (incarnation == incarnation_[slot]) quiescing_[slot] = 1;
  cv_.wait(lock, [&] {
    return aborting_ || incarnation != incarnation_[slot] ||
           settledEpoch_ == state_->epoch.load(std::memory_order_relaxed);
  });
  if (incarnation == incarnation_[slot]) quiescing_[slot] = 0;
  if (incarnation != incarnation_[slot]) return Decision::Retire;
  if (aborting_) {
    // This incarnation is terminal: exit silently so the recorded error
    // (or the supervisor's escalation error) propagates instead.
    rankDone_[slot] = true;
    cv_.notify_all();
    return Decision::Abort;
  }
  return Decision::Resume;
}

void SupervisedCluster::rankMain(int rank, int incarnation) {
  fault::setThreadRank(rank);
  Communicator comm(rank, state_.get());
  comm.adoptEpoch();  // a replacement joins under the current epoch
  const auto slot = static_cast<std::size_t>(rank);
  {
    // A replacement can start into a cluster that aborted (or moved on)
    // between its respawn decision and this thread running. Entering the
    // rank function then would block forever on peers that already
    // unwound — with an epoch adopted AFTER the abort bump, no fence
    // would ever wake it. (If the abort lands after this check instead,
    // the epoch we adopted above predates the abort bump and the normal
    // fence path catches us.)
    std::lock_guard<std::mutex> lock(mu_);
    if (aborting_ || incarnation != incarnation_[slot]) {
      if (incarnation == incarnation_[slot]) rankDone_[slot] = true;
      cv_.notify_all();
      return;
    }
  }
  for (;;) {
    try {
      (*fn_)(comm);
      std::lock_guard<std::mutex> lock(mu_);
      if (incarnation == incarnation_[slot]) {
        rankDone_[slot] = true;
        anyCompleted_ = true;
        cv_.notify_all();
      }
      return;
    } catch (const RankDeathError&) {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(Pending{rank, incarnation, true, "rank-death"});
      cv_.notify_all();
      return;  // the thread IS the failure domain: it exits here
    } catch (const EpochFenced&) {
      bool current;
      {
        std::lock_guard<std::mutex> lock(mu_);
        current = (incarnation == incarnation_[slot]);
      }
      if (current && options_.onQuiesce) options_.onQuiesce(rank, true);
      const Decision d = awaitDecision(rank, incarnation);
      if (current && options_.onQuiesce) options_.onQuiesce(rank, false);
      if (d != Decision::Resume) return;
      comm.adoptEpoch();
      continue;  // re-enter the rank function under the new epoch
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (incarnation == incarnation_[slot]) {
        errors_[slot] = std::current_exception();
        rankDone_[slot] = true;
        // Unblock peers waiting on this rank so they unwind via the fence
        // instead of deadlocking; the recorded error wins at rethrow time.
        if (!aborting_ && !finished_) abortLocked();
        cv_.notify_all();
      }
      return;
    }
  }
}

void SupervisedCluster::run(const RankFn& fn) {
  state_ = std::make_unique<ClusterState>(nranks_);
  state_->interruptibleBarrier = true;
  fn_ = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    AWP_CHECK_MSG(!running_, "SupervisedCluster::run is single-shot");
    running_ = true;
    incarnation_.assign(static_cast<std::size_t>(nranks_), 0);
    rankDone_.assign(static_cast<std::size_t>(nranks_), 0);
    quiescing_.assign(static_cast<std::size_t>(nranks_), 0);
    errors_.assign(static_cast<std::size_t>(nranks_), nullptr);
    threads_.reserve(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r)
      threads_.emplace_back([this, r] { rankMain(r, 0); });
  }

  // Supervisor loop on the calling thread: field loss reports, decide
  // respawn vs escalate, and wait for every rank to reach terminal state.
  for (;;) {
    std::vector<RespawnEvent> emitted;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock,
               [&] { return !pending_.empty() || allRanksDoneLocked(); });
      while (!pending_.empty()) {
        const Pending p = std::move(pending_.front());
        pending_.pop_front();
        handleLocked(p, emitted);
      }
      if (emitted.empty() && allRanksDoneLocked()) {
        finished_ = true;
        break;
      }
    }
    // Callbacks run outside the lock: they touch job/telemetry state.
    if (options_.onRespawn)
      for (const auto& ev : emitted) options_.onRespawn(ev);
    if (!emitted.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& ev : emitted)
        threads_.emplace_back([this, rank = ev.rank,
                               inc = ev.incarnation] { rankMain(rank, inc); });
    }
  }

  // Detach the thread handles under the lock, join outside it: a child
  // still unwinding must never find the supervisor holding mu_ at join.
  std::vector<std::thread> joiners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    joiners.swap(threads_);
  }
  for (auto& t : joiners) t.join();
  fn_ = nullptr;

  std::lock_guard<std::mutex> lock(mu_);
  for (int r = 0; r < nranks_; ++r)
    if (errors_[static_cast<std::size_t>(r)])
      std::rethrow_exception(errors_[static_cast<std::size_t>(r)]);
  if (abortError_) std::rethrow_exception(abortError_);
}

bool SupervisedCluster::requestRespawn(int rank, const std::string& cause) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_ || finished_ || aborting_) return false;
  if (rank < 0 || rank >= nranks_) return false;
  const auto slot = static_cast<std::size_t>(rank);
  if (rankDone_[slot]) return false;
  if (anyCompleted_) return false;  // epilogue: too late to replay safely
  if (quiescing_[slot]) return true;  // absorbed: already recovering
  for (const auto& p : pending_)
    if (p.rank == rank) return true;  // absorbed: request already queued
  if (respawnsUsed_ >= options_.respawnBudget) return false;
  pending_.push_back(Pending{rank, incarnation_[slot], false, cause});
  cv_.notify_all();
  return true;
}

std::vector<RespawnEvent> SupervisedCluster::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

int SupervisedCluster::respawnsUsed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return respawnsUsed_;
}

}  // namespace awp::vcluster
