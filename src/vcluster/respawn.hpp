#pragma once
// SupervisedCluster: ThreadCluster plus the rank-level recovery ladder.
// The launcher thread doubles as a supervisor: when a rank thread dies
// (the "rank_death" fault site, modelling fail-stop node loss per §III.F)
// or a watchdog asks for a respawn of a wedged rank, the supervisor bumps
// the cluster incarnation epoch, purges dead-incarnation mail, and spawns
// a replacement thread for the lost rank. Surviving ranks quiesce at the
// epoch fence (every communication primitive checks it), re-enter the
// rank function under the new epoch, and the whole cluster re-agrees on a
// restore point — so a single-rank loss costs one rollback window instead
// of the whole attempt.
//
// Escalation: when the respawn budget is exhausted (or a loss happens
// after some rank already finished the rank function, where a mid-ladder
// respawn could strand the finished rank), the supervisor aborts the run
// with RespawnExhaustedError and the scenario service falls back to its
// existing collective cancel-and-requeue.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/guarded.hpp"
#include "vcluster/comm.hpp"
#include "vcluster/epoch.hpp"

namespace awp::vcluster {

// One successful in-place respawn, as recorded by the supervisor.
struct RespawnEvent {
  int rank = -1;
  int incarnation = 0;      // 1-based incarnation of the replacement
  std::uint64_t epoch = 0;  // cluster epoch the replacement joined under
  std::string cause;        // "rank-death" | "stall"
  std::chrono::steady_clock::time_point at{};
};

// Terminal outcome when the ladder cannot repair the attempt in place.
class RespawnExhaustedError : public Error {
 public:
  RespawnExhaustedError(int rank, std::string cause, int respawnsUsed,
                        int budget)
      : Error("respawn budget exhausted: rank " + std::to_string(rank) +
              " lost (" + cause + ") after " +
              std::to_string(respawnsUsed) + "/" + std::to_string(budget) +
              " respawns; escalating to collective cancel"),
        rank_(rank),
        cause_(std::move(cause)) {}

  [[nodiscard]] int rank() const { return rank_; }
  // "stall" when the loss came from a watchdog respawn request.
  [[nodiscard]] const std::string& cause() const { return cause_; }

 private:
  int rank_;
  std::string cause_;
};

struct SupervisorOptions {
  // In-place respawns allowed per run; a loss beyond the budget escalates.
  int respawnBudget = 1;
  // Called on the supervisor thread for each successful respawn, BEFORE
  // the replacement thread starts — so the callback can invalidate state
  // the lost rank is modelled to have lost with it (e.g. its in-memory
  // checkpoint blob) ahead of any restore attempt.
  std::function<void(const RespawnEvent&)> onRespawn;
  // Called on a quiescing rank's own thread when it enters (true) and
  // leaves (false) the epoch fence — the service wraps these in telemetry
  // spans (vcluster itself stays telemetry-free).
  std::function<void(int rank, bool quiescing)> onQuiesce;
};

class SupervisedCluster {
 public:
  using RankFn = std::function<void(Communicator&)>;

  SupervisedCluster(int nranks, SupervisorOptions options);
  ~SupervisedCluster();
  SupervisedCluster(const SupervisedCluster&) = delete;
  SupervisedCluster& operator=(const SupervisedCluster&) = delete;

  // Run `fn` on every rank; blocks until all complete (possibly through
  // respawns). Rethrows the first rank error by rank order, or
  // RespawnExhaustedError when the ladder escalated. The rank function
  // must be RESTARTABLE: a surviving rank re-enters it from the top after
  // a respawn, so it must rebuild its state and resume from the agreed
  // restore point (the scenario service's attempt body already is, by the
  // same property its requeue path relies on).
  void run(const RankFn& fn);

  // Watchdog entry point (any thread): ask for an in-place respawn of a
  // suspected-wedged rank. Returns true when the request is accepted or
  // absorbed by an in-flight recovery of the same rank; false when the
  // ladder cannot help (not running, budget exhausted, rank already
  // terminal, or some rank already finished) and the caller should fall
  // back to collective cancellation.
  bool requestRespawn(int rank, const std::string& cause);

  [[nodiscard]] std::vector<RespawnEvent> events() const;
  [[nodiscard]] int respawnsUsed() const;
  [[nodiscard]] CommStats* stats() const {
    return state_ ? &state_->stats : nullptr;
  }

 private:
  enum class Decision { Resume, Retire, Abort };

  struct Pending {
    int rank = -1;
    int incarnation = 0;
    bool death = false;  // thread already exited (vs wedged-but-alive)
    std::string cause;
  };

  void rankMain(int rank, int incarnation);
  Decision awaitDecision(int rank, int incarnation);
  void handleLocked(const Pending& p, std::vector<RespawnEvent>& emitted)
      AWP_REQUIRES(mu_);
  void escalateLocked(const Pending& p) AWP_REQUIRES(mu_);
  void abortLocked() AWP_REQUIRES(mu_);
  void bumpEpochLocked() AWP_REQUIRES(mu_);
  [[nodiscard]] bool allRanksDoneLocked() const AWP_REQUIRES(mu_);

  const int nranks_;
  SupervisorOptions options_;
  std::unique_ptr<ClusterState> state_;
  const RankFn* fn_ = nullptr;  // valid for the duration of run()

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // current incarnation per rank
  std::vector<int> incarnation_ AWP_GUARDED_BY(mu_);
  // current incarnation reached terminal
  std::vector<char> rankDone_ AWP_GUARDED_BY(mu_);
  // current incarnation is at the fence
  std::vector<char> quiescing_ AWP_GUARDED_BY(mu_);
  std::vector<std::exception_ptr> errors_ AWP_GUARDED_BY(mu_);
  std::deque<Pending> pending_ AWP_GUARDED_BY(mu_);
  std::vector<std::thread> threads_ AWP_GUARDED_BY(mu_);
  std::vector<RespawnEvent> events_ AWP_GUARDED_BY(mu_);
  std::exception_ptr abortError_ AWP_GUARDED_BY(mu_);
  // last fully-configured epoch
  std::uint64_t settledEpoch_ AWP_GUARDED_BY(mu_) = 0;
  int respawnsUsed_ AWP_GUARDED_BY(mu_) = 0;
  bool running_ AWP_GUARDED_BY(mu_) = false;
  bool finished_ AWP_GUARDED_BY(mu_) = false;
  bool aborting_ AWP_GUARDED_BY(mu_) = false;
  bool anyCompleted_ AWP_GUARDED_BY(mu_) = false;
};

}  // namespace awp::vcluster
