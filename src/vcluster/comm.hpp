#pragma once
// Communicator: the MPI-substitute interface used by every parallel
// component of the reproduction (solver halo exchange, mesh partitioner,
// parallel I/O, checksum generation). It provides the subset of MPI that
// AWP-ODC relies on — tagged point-to-point (blocking and non-blocking),
// barrier, reductions, broadcast and gather — over in-process mailboxes.
//
// Permission model mirrors MPI buffered sends: send() copies the payload
// and returns immediately; recv() blocks until a matching envelope arrives.

#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "vcluster/mailbox.hpp"

namespace awp::vcluster {

// Aggregate communication statistics, shared by all ranks of a cluster.
// The reduced-communication experiment (§IV.A) asserts on bytesSent.
struct CommStats {
  std::atomic<std::uint64_t> messagesSent{0};
  std::atomic<std::uint64_t> bytesSent{0};
  std::atomic<std::uint64_t> barriers{0};
  // Fault injection ("comm.send" site): messages dropped in flight or
  // delivered twice. Always zero when no injector is installed.
  std::atomic<std::uint64_t> messagesDropped{0};
  std::atomic<std::uint64_t> messagesDuplicated{0};
  // Dead-incarnation mail discarded by epoch fencing (respawn recovery).
  std::atomic<std::uint64_t> messagesFenced{0};

  void reset() {
    messagesSent = 0;
    bytesSent = 0;
    barriers = 0;
    messagesDropped = 0;
    messagesDuplicated = 0;
    messagesFenced = 0;
  }
};

// Shared state for one virtual cluster; owned by ThreadCluster (where the
// epoch stays 0 forever) or SupervisedCluster (which bumps it on respawn).
struct ClusterState {
  explicit ClusterState(int nranks);

  int size;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::barrier<> barrier;
  CommStats stats;
  // Cluster incarnation epoch (see epoch.hpp). Bumped by the respawn
  // supervisor; Communicators built before the bump fence on their next
  // communication call.
  std::atomic<std::uint64_t> epoch{0};
  // When set, barrier() synchronizes over mailboxes (fence-interruptible)
  // instead of the native std::barrier, which cannot be woken by a
  // respawn. SupervisedCluster sets this before launching rank threads.
  bool interruptibleBarrier = false;
};

enum class ReduceOp { Sum, Min, Max };

class Request {
 public:
  Request() = default;
  [[nodiscard]] bool valid() const { return kind_ != Kind::None; }

 private:
  friend class Communicator;
  enum class Kind { None, Send, Recv };
  Kind kind_ = Kind::None;
  int peer_ = -1;
  int tag_ = 0;
  void* buf_ = nullptr;
  std::size_t bytes_ = 0;
};

class Communicator {
 public:
  Communicator(int rank, ClusterState* state)
      : rank_(rank),
        state_(state),
        epochSeen_(state->epoch.load(std::memory_order_acquire)) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return state_->size; }
  [[nodiscard]] CommStats& stats() const { return state_->stats; }

  // --- Incarnation epoch (respawn fencing; see epoch.hpp) -----------------
  // The epoch this Communicator is operating under.
  [[nodiscard]] std::uint64_t epoch() const { return epochSeen_; }
  // True when the cluster epoch moved past this incarnation. Registered
  // hot path: one atomic load, no allocation, no throw.
  [[nodiscard]] bool fenced() const;
  // Throw EpochFenced if fenced; called at the top of every communication
  // primitive and at the solver's per-step fence point, so a woken zombie
  // quiesces before touching shared per-rank state.
  void fencePoint() const;
  // Adopt the current cluster epoch (a surviving rank resuming after a
  // respawn decision, or a replacement joining fresh).
  void adoptEpoch() {
    epochSeen_ = state_->epoch.load(std::memory_order_acquire);
  }

  // --- Point-to-point -----------------------------------------------------
  void send(int dest, int tag, const void* data, std::size_t bytes);
  void recv(int src, int tag, void* data, std::size_t bytes);

  // Non-blocking: isend completes eagerly (buffered); irecv registers the
  // destination buffer, and wait()/waitAll() perform the matching receive.
  Request isend(int dest, int tag, const void* data, std::size_t bytes);
  Request irecv(int src, int tag, void* data, std::size_t bytes);
  void wait(Request& req);
  void waitAll(std::span<Request> reqs);

  // Typed convenience wrappers.
  template <typename T>
  void sendSpan(int dest, int tag, std::span<const T> data) {
    send(dest, tag, data.data(), data.size_bytes());
  }
  template <typename T>
  void recvSpan(int src, int tag, std::span<T> data) {
    recv(src, tag, data.data(), data.size_bytes());
  }
  template <typename T>
  void sendValue(int dest, int tag, const T& v) {
    send(dest, tag, &v, sizeof(T));
  }
  template <typename T>
  T recvValue(int src, int tag) {
    T v{};
    recv(src, tag, &v, sizeof(T));
    return v;
  }

  // --- Collectives (deterministic: reduce in rank order at root 0) --------
  void barrier();
  double allreduce(double value, ReduceOp op);
  std::int64_t allreduce(std::int64_t value, ReduceOp op);
  void bcast(int root, void* data, std::size_t bytes);
  // Gather variable-length byte payloads to root; non-root ranks get {}.
  std::vector<std::vector<std::byte>> gatherBytes(
      int root, std::span<const std::byte> payload);
  // Every rank contributes one value and receives the full rank-indexed
  // vector (the health guard's per-rank verdict tables use this).
  std::vector<std::int64_t> allgather(std::int64_t value);

 private:
  template <typename T>
  T allreduceImpl(T value, ReduceOp op);
  [[noreturn]] void throwFenced() const;

  int rank_;
  ClusterState* state_;
  std::uint64_t epochSeen_;
};

// Internal tag space for collectives; user tags must be >= 0.
inline constexpr int kTagBarrierBase = -1;  // interruptible-barrier rounds
inline constexpr int kTagReduce = -2;
inline constexpr int kTagBcast = -3;
inline constexpr int kTagGatherSize = -4;
inline constexpr int kTagGatherData = -5;
// Buddy-checkpoint replica exchange (io::BuddyStore via the solver).
inline constexpr int kTagBuddySize = -6;
inline constexpr int kTagBuddyData = -7;

}  // namespace awp::vcluster
