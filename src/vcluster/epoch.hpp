#pragma once
// Incarnation epochs for in-place rank respawn. A supervised cluster keeps
// one monotonically increasing cluster epoch; every message is stamped
// with the sender's epoch and every blocking wait carries an EpochGuard.
// When the supervisor bumps the epoch (because a rank died or is being
// replaced), all blocked receivers wake, observe the fence, and unwind
// with EpochFenced — the collective quiesce point of the recovery ladder.
// Messages stamped with an older epoch are from a dead incarnation and are
// discarded on match instead of being delivered.

#include <atomic>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace awp::vcluster {

// A receiver-side fence check: `current` points at the cluster epoch,
// `mine` is the epoch this Communicator joined under. Default-constructed
// guards never fence (plain ThreadCluster runs stay epoch-0 forever).
struct EpochGuard {
  const std::atomic<std::uint64_t>* current = nullptr;
  std::uint64_t mine = 0;

  [[nodiscard]] bool fenced() const {
    return current != nullptr &&
           current->load(std::memory_order_acquire) != mine;
  }
};

// Thrown by communication primitives when the cluster epoch moved past the
// caller's incarnation: the rank must quiesce and await the supervisor's
// decision (resume under the new epoch, retire, or abort).
class EpochFenced : public Error {
 public:
  EpochFenced(int rank, std::uint64_t seen, std::uint64_t current)
      : Error("epoch fence: rank " + std::to_string(rank) + " at epoch " +
              std::to_string(seen) + " superseded by epoch " +
              std::to_string(current)),
        rank_(rank),
        seen_(seen),
        current_(current) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] std::uint64_t seen() const { return seen_; }
  [[nodiscard]] std::uint64_t current() const { return current_; }

 private:
  int rank_;
  std::uint64_t seen_;
  std::uint64_t current_;
};

// Thrown by the "rank_death" fault site: the fail-stop loss of one rank
// thread. A SupervisedCluster catches it in the rank wrapper and spawns a
// replacement incarnation; an unsupervised cluster propagates it like any
// other rank error.
class RankDeathError : public Error {
 public:
  RankDeathError(int rank, std::uint64_t step)
      : Error("rank death: rank " + std::to_string(rank) +
              " killed at step " + std::to_string(step)),
        rank_(rank),
        step_(step) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] std::uint64_t step() const { return step_; }

 private:
  int rank_;
  std::uint64_t step_;
};

}  // namespace awp::vcluster
