#include "cycle/bridge.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <string>

#include "rupture/friction.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"

namespace awp::cycle {

namespace {

// Bilinear sample of a cycle-grid field at fractional node coordinates
// (x in [0, nx-1], z in [0, nz-1]).
double sampleBilinear(const std::vector<double>& field, std::size_t nx,
                      std::size_t nz, double x, double z) {
  x = std::clamp(x, 0.0, static_cast<double>(nx - 1));
  z = std::clamp(z, 0.0, static_cast<double>(nz - 1));
  const auto i0 = static_cast<std::size_t>(x);
  const auto k0 = static_cast<std::size_t>(z);
  const std::size_t i1 = std::min(i0 + 1, nx - 1);
  const std::size_t k1 = std::min(k0 + 1, nz - 1);
  const double fx = x - static_cast<double>(i0);
  const double fz = z - static_cast<double>(k0);
  const double a = field[i0 + nx * k0] * (1.0 - fx) + field[i1 + nx * k0] * fx;
  const double b = field[i0 + nx * k1] * (1.0 - fx) + field[i1 + nx * k1] * fx;
  return a * (1.0 - fz) + b * fz;
}

// The snapshot's shear-to-normal stress ratio, resampled onto the rupture
// fault plane and normalized to [0, 1]. Both grids share the rupture
// solver's axis convention (k increases upward, the top row at the free
// surface), so the depth map is a straight proportional stretch.
std::vector<double> resamplePattern(const CycleEvent& event, std::size_t rnx,
                                    std::size_t rnz) {
  const std::size_t n = event.nx * event.nz;
  std::vector<double> ratio(n);
  double lo = 0.0, hi = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double compression = std::max(-event.sigmaN[i], 1.0);
    ratio[i] = event.tau[i] / compression;
    if (i == 0 || ratio[i] < lo) lo = ratio[i];
    if (i == 0 || ratio[i] > hi) hi = ratio[i];
  }
  const double spread = hi - lo;

  std::vector<double> pattern(rnx * rnz);
  for (std::size_t k = 0; k < rnz; ++k) {
    const double upFrac =
        rnz > 1 ? static_cast<double>(k) / static_cast<double>(rnz - 1) : 0.5;
    const double zc = upFrac * static_cast<double>(event.nz - 1);
    for (std::size_t i = 0; i < rnx; ++i) {
      const double xc = (static_cast<double>(i) + 0.5) /
                            static_cast<double>(rnx) *
                            static_cast<double>(event.nx) -
                        0.5;
      const double r = sampleBilinear(ratio, event.nx, event.nz, xc, zc);
      pattern[i + rnx * k] = spread > 0.0 ? (r - lo) / spread : 0.5;
    }
  }
  return pattern;
}

// Nucleation disk around the event's peak-slip-rate node, mapped onto the
// rupture grid and capped at maxNucFraction of the fault area so the
// preflight's supercritical gate always passes (>= 1 node so it never
// degrades to "cannot nucleate" either).
std::vector<char> nucleationMask(const CycleEvent& event,
                                 const BridgeConfig& config, std::size_t rnx,
                                 std::size_t rnz) {
  const double strikeFrac = (static_cast<double>(event.nucI) + 0.5) /
                            static_cast<double>(event.nx);
  const auto iN = std::min(
      rnx - 1, static_cast<std::size_t>(strikeFrac * static_cast<double>(rnx)));
  const double upFrac =
      event.nz > 1 ? static_cast<double>(event.nucK) /
                         static_cast<double>(event.nz - 1)
                   : 0.5;
  const auto kN = rnz > 1 ? static_cast<std::size_t>(std::llround(
                                static_cast<double>(rnz - 1) * upFrac))
                          : 0;

  // The service's own patch radius (max(8h, 4 km)), shrunk to the cap.
  const double area = static_cast<double>(rnx * rnz);
  const double rCap =
      std::sqrt(std::max(config.maxNucFraction, 0.0) * area / M_PI);
  const double rPreferred = std::max(8.0 * config.h, 4000.0) / config.h;
  const double radius = std::max(1.0, std::min(rPreferred, rCap));

  std::vector<char> mask(rnx * rnz, 0);
  for (std::size_t k = 0; k < rnz; ++k)
    for (std::size_t i = 0; i < rnx; ++i) {
      const double di = static_cast<double>(i) - static_cast<double>(iN);
      const double dk = static_cast<double>(k) - static_cast<double>(kN);
      if (di * di + dk * dk <= radius * radius) mask[i + rnx * k] = 1;
    }
  mask[iN + rnx * kN] = 1;
  return mask;
}

CycleCatalog catalogShell(const CycleConfig& cycleConfig,
                          const CycleRunSummary& summary) {
  CycleCatalog catalog;
  catalog.nx = cycleConfig.nx;
  catalog.nz = cycleConfig.nz;
  catalog.cell = cycleConfig.cell;
  catalog.years = cycleConfig.years;
  catalog.seed = cycleConfig.seed;
  catalog.steps = summary.steps;
  return catalog;
}

CycleCatalogRow rowShell(const CycleEvent& event) {
  CycleCatalogRow row;
  row.index = event.index;
  row.onsetSeconds = event.onsetSeconds;
  row.durationSeconds = event.durationSeconds;
  row.magnitude = event.magnitude;
  row.momentNm = event.momentNm;
  row.peakSlipRate = event.peakSlipRate;
  row.eventDigest = event.digest;
  return row;
}

}  // namespace

BridgeConfig BridgeConfig::fromRuntime(const core::RuntimeConfig& rc) {
  BridgeConfig config;
  config.priority = rc.cycle.priority;
  return config;
}

sched::ScenarioSpec eventSpec(const CycleEvent& event,
                              const BridgeConfig& config) {
  AWP_CHECK(!event.digest.empty());
  AWP_CHECK(event.nx > 0 && event.nz > 0);
  AWP_CHECK(event.tau.size() == event.nx * event.nz);
  AWP_CHECK(config.h > 0.0 && config.steps > 0 && config.nranks > 0);

  // Rupture fault plane covering the cycle fault at the rupture spacing.
  const auto rnx = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::llround(
             static_cast<double>(event.nx) * event.cell / config.h)));
  const auto rnz = std::max<std::size_t>(
      4, static_cast<std::size_t>(std::llround(
             static_cast<double>(event.nz) * event.cell / config.h)));

  const auto pattern = resamplePattern(event, rnx, rnz);
  const auto mask = nucleationMask(event, config, rnx, rnz);

  // Mirror the service's rupture friction setup so the accommodation band
  // is the band the solver will actually run with.
  rupture::FrictionParams fp;
  fp.dc = 1.5e-3 * config.h;
  fp.dcSurface = 3.0 * fp.dc;
  const rupture::SlipWeakeningFriction friction(fp);

  sched::ScenarioSpec spec;
  spec.kind = sched::ScenarioKind::Rupture;
  spec.steps = config.steps;
  spec.nranks = config.nranks;
  spec.h = config.h;
  spec.lengthKm = static_cast<double>(rnx) * config.h / 1000.0;
  spec.depthKm = static_cast<double>(rnz) * config.h / 1000.0;
  spec.nucFraction = (static_cast<double>(event.nucI) + 0.5) /
                     static_cast<double>(event.nx);
  spec.cycleDigest = event.digest;
  spec.cycleStress = std::make_shared<rupture::FaultInitialStress>(
      rupture::accommodateStressPattern(pattern, mask, rnx, rnz, config.h,
                                        config.stress, friction));
  spec.name = "cycle-ev-" + std::to_string(event.index);
  spec.priority = config.priority;
  return spec;
}

CycleCatalog submitCatalog(fabric::HazardFabric& fabric,
                           const CycleConfig& cycleConfig,
                           const CycleRunSummary& summary,
                           const std::vector<CycleEvent>& events,
                           const BridgeConfig& config) {
  telemetry::ScopedSpan span(telemetry::Phase::CycleBridge);
  CycleCatalog catalog = catalogShell(cycleConfig, summary);

  std::vector<fabric::FabricJobHandle> handles;
  handles.reserve(events.size());
  for (const CycleEvent& event : events) {
    handles.push_back(fabric.submit(eventSpec(event, config)));
    telemetry::count(telemetry::Counter::CycleEventsSubmitted);
  }
  fabric::HazardFabric::waitAll(handles);

  for (std::size_t n = 0; n < events.size(); ++n) {
    CycleCatalogRow row = rowShell(events[n]);
    const auto& handle = handles[n];
    if (handle == nullptr) {
      row.phase = "rejected";
    } else {
      row.specHash = handle->digest;
      std::lock_guard<std::mutex> lock(handle->mu);
      row.phase = sched::toString(handle->phase);
      row.completions = handle->completions;
      if (const auto* blob = handle->products.find("fault_history"))
        row.productDigest = blob->md5Hex;
    }
    catalog.rows.push_back(std::move(row));
  }
  return catalog;
}

CycleCatalog submitCatalog(sched::ScenarioService& service,
                           const CycleConfig& cycleConfig,
                           const CycleRunSummary& summary,
                           const std::vector<CycleEvent>& events,
                           const BridgeConfig& config) {
  telemetry::ScopedSpan span(telemetry::Phase::CycleBridge);
  CycleCatalog catalog = catalogShell(cycleConfig, summary);

  std::vector<sched::JobHandle> handles;
  handles.reserve(events.size());
  for (const CycleEvent& event : events) {
    handles.push_back(service.submit(eventSpec(event, config)));
    telemetry::count(telemetry::Counter::CycleEventsSubmitted);
  }
  for (const auto& handle : handles)
    if (handle != nullptr) handle->wait();

  for (std::size_t n = 0; n < events.size(); ++n) {
    CycleCatalogRow row = rowShell(events[n]);
    const auto& handle = handles[n];
    if (handle == nullptr) {
      row.phase = "rejected";
    } else {
      row.specHash = handle->hash;
      std::lock_guard<std::mutex> lock(handle->mutex);
      row.phase = sched::toString(handle->phase);
      row.completions = handle->phase == sched::JobPhase::Completed ? 1 : 0;
      if (const auto* blob = handle->products.find("fault_history"))
        row.productDigest = blob->md5Hex;
    }
    catalog.rows.push_back(std::move(row));
  }
  return catalog;
}

}  // namespace awp::cycle
