#pragma once
// Quasi-static elastic stress transfer over a discretized planar fault —
// the precomputed stiffness kernel of the cycle solver. The off-diagonal
// interaction is a translation-invariant stencil with the static 1/r³
// far-field decay of a dislocation cell, S(di,dk) = χ·μ·cell²/r³,
// truncated at a configured radius; each node's self term is then set to
// −(κ·μ/cell + Σ local off-diagonal row) so that a uniformly slipping
// fault unloads through EXACTLY the loading stiffness k = κ·μ/cell at
// every node, boundary rows included. Two consequences anchor the tests:
// a 1×1 fault reduces to the classical spring slider with k = κ·μ/cell
// (stick-slip iff k < kc, recurrence T ≈ Δτ/(k·Vpl)), and backslip
// loading τ̇_i = Σ_j K_ij·(V_j − Vpl) needs no separate loading term
// (Rice 1993's formulation; cells are larger than the nucleation length,
// so the model is "inherently discrete" in the Ben-Zion–Rice sense —
// exactly what the catalog wants: cell-scale events, not one fault-wide
// limit cycle).

#include <cstddef>
#include <vector>

#include "util/hot.hpp"

namespace awp::cycle {

struct KernelConfig {
  std::size_t nx = 0, nz = 0;  // fault nodes (strike x depth)
  double cell = 500.0;         // node spacing [m]
  double mu = 30.0e9;          // rigidity [Pa]
  double loadingFactor = 0.1;  // κ: uniform loading stiffness κ·μ/cell
  double interaction = 0.25;   // χ: off-diagonal stencil amplitude
  int radius = 8;              // stencil truncation radius [nodes]
};

class StiffnessKernel {
 public:
  explicit StiffnessKernel(const KernelConfig& config);

  // τ̇_i = Σ_j K_ij·(V_j − Vpl), written into `out` (sized nx·nz, as is
  // `v`). Registered hot path: no allocation, no throw — the stencil taps
  // and per-node self terms are precomputed by the constructor.
  void stressingRate(const std::vector<double>& v, double vpl,
                     std::vector<double>& out) const;

  // κ·μ/cell — the uniform loading (and uniform-mode unloading) stiffness.
  [[nodiscard]] double loadingStiffness() const { return kLoad_; }
  [[nodiscard]] const KernelConfig& config() const { return config_; }

 private:
  struct Tap {
    int di, dk;
    double w;  // S(di,dk) >= 0 [Pa/m]
  };

  KernelConfig config_;
  double kLoad_ = 0.0;
  std::vector<Tap> taps_;
  std::vector<double> self_;  // per-node K_ii [i + nx*k]
};

}  // namespace awp::cycle
