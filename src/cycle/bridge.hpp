#pragma once
// The cycle → rupture catalog bridge. Each CycleEvent (an interseismically
// evolved nucleation snapshot, content-addressed by its canonical digest)
// becomes one dynamic-rupture ScenarioSpec: the snapshot's τ/(−σn) ratio
// field is resampled onto the rupture fault plane, accommodated into the
// slip-weakening strength band (rupture/stress_model.hpp's
// accommodateStressPattern — the preflight's supercritical-fraction gate
// still applies), and attached as the spec's unhashed stress carrier while
// the event digest rides in the hashed cycleDigest field (canonical
// encoding v2). The specs are then submitted — through the HazardFabric
// for the fault-tolerant path or a bare ScenarioService for benches —
// and the settled handles are folded into a CycleCatalog whose canonical
// bytes are bit-identical across reruns: every row is derived from the
// deterministic solver output and the content-addressed products, never
// from wall-clock or broker topology.

#include <cstdint>
#include <vector>

#include "core/runtime_config.hpp"
#include "cycle/catalog.hpp"
#include "cycle/solver.hpp"
#include "fabric/fabric.hpp"
#include "rupture/stress_model.hpp"
#include "sched/service.hpp"
#include "sched/spec.hpp"

namespace awp::cycle {

struct BridgeConfig {
  double h = 600.0;          // rupture grid spacing [m]
  std::uint64_t steps = 16;  // rupture steps per event scenario
  int nranks = 2;
  int priority = 5;          // bridged scenarios outrank routine ensembles
  // Fraction of the fault area the nucleation patch may cover; kept well
  // under the preflight's maxSupercriticalFraction (0.25) so the
  // accommodated field always clears the gate.
  double maxNucFraction = 0.1;
  // Strength-band accommodation knobs (normal-stress profile, reload/max
  // fractions, nucExcess). Random-field members are ignored on this path.
  rupture::StressModelConfig stress;

  static BridgeConfig fromRuntime(const core::RuntimeConfig& rc);
};

// Map one detected event onto a rupture scenario. The returned spec hashes
// under encoding v2 (cycleDigest = event.digest) and carries the
// accommodated FaultInitialStress in its unhashed cycleStress field.
// Deterministic: equal events produce byte-identical canonical encodings.
sched::ScenarioSpec eventSpec(const CycleEvent& event,
                              const BridgeConfig& config);

// Submit every event through the fabric, wait for all digests to settle,
// and assemble the catalog (rows in event order; specHash / productDigest /
// phase / completions from the settled handles). wallSeconds is left 0 for
// the caller to stamp — it is outside the canonical bytes.
CycleCatalog submitCatalog(fabric::HazardFabric& fabric,
                           const CycleConfig& cycleConfig,
                           const CycleRunSummary& summary,
                           const std::vector<CycleEvent>& events,
                           const BridgeConfig& config);

// Same catalog through a standalone ScenarioService (the bench path —
// no broker fabric, completions is 1 for every completed job).
CycleCatalog submitCatalog(sched::ScenarioService& service,
                           const CycleConfig& cycleConfig,
                           const CycleRunSummary& summary,
                           const std::vector<CycleEvent>& events,
                           const BridgeConfig& config);

}  // namespace awp::cycle
