#include "cycle/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "fault/injector.hpp"
#include "rupture/stress_model.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"

namespace awp::cycle {

namespace {
constexpr double kSecondsPerYear = 365.25 * 86400.0;
constexpr double kThetaFloor = 1.0e-12;
}  // namespace

CycleConfig CycleConfig::fromRuntime(const core::RuntimeConfig& rc) {
  CycleConfig c;
  c.nx = static_cast<std::size_t>(rc.cycle.nx);
  c.nz = static_cast<std::size_t>(rc.cycle.nz);
  c.cell = rc.cycle.cellMeters;
  c.years = rc.cycle.years;
  c.maxEvents = rc.cycle.maxEvents;
  c.seed = rc.cycle.seed;
  c.eventRate = rc.cycle.eventRate;
  c.lockRate = rc.cycle.lockRate;
  return c;
}

CycleSolver::CycleSolver(const CycleConfig& config)
    : config_(config),
      friction_(config.friction),
      kernel_({config.nx, config.nz, config.cell, config.mu,
               config.loadingFactor, config.interaction,
               config.stencilRadius}) {
  AWP_CHECK(config_.nx > 0 && config_.nz > 0);
  AWP_CHECK(config_.vpl > 0.0 && config_.sigma > 0.0);
  AWP_CHECK(config_.eventRate > config_.lockRate);
  AWP_CHECK(config_.epsTheta > 0.0 && config_.epsSlip > 0.0 &&
            config_.epsTau > 0.0);
  eta_ = config_.mu / (2.0 * config_.cs);

  const std::size_t n = config_.nx * config_.nz;
  const auto& p = config_.friction;

  aNode_.assign(n, p.a);
  if (config_.rimNodes > 0) {
    const auto rim = static_cast<std::size_t>(config_.rimNodes);
    for (std::size_t k = 0; k < config_.nz; ++k)
      for (std::size_t i = 0; i < config_.nx; ++i) {
        const bool inRim = i < rim || i >= config_.nx - std::min(rim, config_.nx) ||
                           k < rim || k >= config_.nz - std::min(rim, config_.nz);
        if (inRim) aNode_[i + config_.nx * k] = config_.aStrengthened;
      }
  }
  sigma_.assign(n, config_.sigma);

  // Steady state at the plate rate, plus the seeded stress heterogeneity
  // that staggers nucleation across the fault. A 1×1 grid (the spring-
  // slider limit) or heterogeneity = 0 skips the field draw entirely.
  theta_.assign(n, p.L / config_.vpl);
  v_.assign(n, config_.vpl);
  slip_.assign(n, 0.0);
  tau_.assign(n, 0.0);
  std::vector<double> noise;
  if (config_.heterogeneity > 0.0 && n > 1)
    noise = rupture::vonKarmanField(config_.nx, config_.nz, config_.cell,
                                    config_.corrX, config_.corrZ,
                                    config_.hurst, config_.seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double fss = p.f0 + (aNode_[i] - p.b) * std::log(config_.vpl / p.V0);
    double tau = sigma_[i] * fss + eta_ * config_.vpl;
    tau += config_.initialKick * (p.b - p.a) * sigma_[i];
    if (!noise.empty())
      tau += config_.heterogeneity * (p.b - p.a) * sigma_[i] * noise[i];
    tau_[i] = tau;
  }

  tauRate_.assign(n, 0.0);
  thetaRate_.assign(n, 0.0);
  tauHalf_.assign(n, 0.0);
  thetaHalf_.assign(n, 0.0);
  vHalf_.assign(n, 0.0);
  tauRate2_.assign(n, 0.0);
  thetaRate2_.assign(n, 0.0);
  lnvGuess_.assign(n, std::log(config_.vpl / p.V0));
  slipAtOpen_.assign(n, 0.0);
}

double CycleSolver::solveSlipRate(std::size_t n, double tau,
                                  double theta) const {
  // Strength balance in x = ln(V/V0):
  //   g(x) = σ·(f0 + a·x + b·ln(V0·θ/L)) + η·V0·e^x − τ = 0.
  // g is strictly increasing and convex (g' = σ·a + η·V0·e^x > 0), so the
  // safeguarded Newton below converges for any bracketed root.
  const auto& p = config_.friction;
  const double sigma = sigma_[n];
  const double a = aNode_[n];
  const double state =
      sigma * (p.f0 + p.b * std::log(p.V0 * std::max(theta, kThetaFloor) /
                                     p.L));
  const double etaV0 = eta_ * p.V0;
  constexpr double kXMin = -60.0;  // V0·e^-60 ~ 1e-32 m/s: fully locked
  constexpr double kXMax = 25.0;   // V0·e^25 ~ 7e4 m/s: never reached
  double x = std::clamp(lnvGuess_[n], kXMin, kXMax);
  for (int it = 0; it < 100; ++it) {
    const double ex = std::exp(x);
    const double g = state + sigma * a * x + etaV0 * ex - tau;
    const double gp = sigma * a + etaV0 * ex;
    double dx = -g / gp;
    dx = std::clamp(dx, -30.0, 30.0);
    x = std::clamp(x + dx, kXMin, kXMax);
    if (std::abs(dx) < 1.0e-13 * std::max(1.0, std::abs(x))) break;
  }
  lnvGuess_[n] = x;
  return p.V0 * std::exp(x);
}

void CycleSolver::derivatives(const std::vector<double>& tau,
                              const std::vector<double>& theta,
                              std::vector<double>& v,
                              std::vector<double>& tauRate,
                              std::vector<double>& thetaRate) const {
  const std::size_t n = tau.size();
  const double L = config_.friction.L;
  for (std::size_t i = 0; i < n; ++i) {
    const double th = std::max(theta[i], kThetaFloor);
    v[i] = solveSlipRate(i, tau[i], th);
    thetaRate[i] = 1.0 - v[i] * th / L;
  }
  kernel_.stressingRate(v, config_.vpl, tauRate);
}

double CycleSolver::pickDt(const std::vector<double>& v,
                           const std::vector<double>& theta,
                           const std::vector<double>& thetaRate,
                           const std::vector<double>& tauRate) const {
  const double L = config_.friction.L;
  double dt = config_.dtMax;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double th = std::max(theta[i], kThetaFloor);
    const double rate = std::abs(thetaRate[i]);
    if (rate > 0.0) dt = std::min(dt, config_.epsTheta * th / rate);
    if (v[i] > 0.0) dt = std::min(dt, config_.epsSlip * L / v[i]);
    const double loading = std::abs(tauRate[i]);
    if (loading > 0.0)
      dt = std::min(dt,
                    config_.epsTau * aNode_[i] * sigma_[i] / loading);
  }
  return std::max(dt, config_.dtMin);
}

void CycleSolver::consultFaultSite() {
  if (!fault::injectionEnabled()) return;
  const auto action =
      fault::activeInjector()->check("cycle.step", config_.rank);
  if (!action) return;
  switch (action->kind) {
    case fault::FaultKind::RankStall:
      std::this_thread::sleep_for(std::chrono::duration<double>(
          action->stallSeconds));
      break;
    case fault::FaultKind::FieldPoison: {
      // Deterministic finite state perturbation: one node's θ scaled by
      // a large factor. The adaptive stepper must absorb it — the node
      // locks, heals back toward steady state, and evolution continues
      // without a NaN anywhere.
      const std::size_t node =
          static_cast<std::size_t>(summary_.steps) % theta_.size();
      theta_[node] *= 1.0e3;
      ++summary_.statePerturbs;
      telemetry::count(telemetry::Counter::CycleStatePerturbs);
      break;
    }
    default:
      break;  // other kinds have no cycle.step semantics
  }
}

double CycleSolver::step() {
  telemetry::ScopedSpan span(telemetry::Phase::CycleStep);
  if (config_.heartbeat != nullptr)
    config_.heartbeat->beat(config_.rank, summary_.steps);
  consultFaultSite();

  const std::size_t n = tau_.size();
  derivatives(tau_, theta_, v_, tauRate_, thetaRate_);
  const double dt = pickDt(v_, theta_, thetaRate_, tauRate_);

  // Midpoint rule on (τ, θ); slip advances at the midpoint rate, which is
  // also the rate event detection sees.
  for (std::size_t i = 0; i < n; ++i) {
    tauHalf_[i] = tau_[i] + 0.5 * dt * tauRate_[i];
    thetaHalf_[i] =
        std::max(theta_[i] + 0.5 * dt * thetaRate_[i], kThetaFloor);
  }
  derivatives(tauHalf_, thetaHalf_, vHalf_, tauRate2_, thetaRate2_);
  double peak = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    tau_[i] += dt * tauRate2_[i];
    theta_[i] = std::max(theta_[i] + dt * thetaRate2_[i], kThetaFloor);
    slip_[i] += dt * vHalf_[i];
    v_[i] = vHalf_[i];
    if (vHalf_[i] > peak) peak = vHalf_[i];
  }
  time_ += dt;
  peakRateNow_ = peak;
  summary_.peakSlipRate = std::max(summary_.peakSlipRate, peak);
  ++summary_.steps;
  summary_.simulatedSeconds = time_;
  telemetry::count(telemetry::Counter::CycleSteps);

  detectEvents();
  return dt;
}

void CycleSolver::detectEvents() {
  const std::size_t n = v_.size();
  if (!windowOpen_ && peakRateNow_ > config_.eventRate) {
    windowOpen_ = true;
    windowPeak_ = peakRateNow_;
    std::size_t nuc = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (v_[i] > v_[nuc]) nuc = i;
    pending_ = CycleEvent{};
    pending_.index = static_cast<int>(events_.size());
    pending_.onsetSeconds = time_;
    pending_.nucI = nuc % config_.nx;
    pending_.nucK = nuc / config_.nx;
    pending_.nx = config_.nx;
    pending_.nz = config_.nz;
    pending_.cell = config_.cell;
    pending_.tau = tau_;
    pending_.theta = theta_;
    pending_.sigmaN.resize(n);
    for (std::size_t i = 0; i < n; ++i) pending_.sigmaN[i] = -sigma_[i];
    slipAtOpen_ = slip_;
    telemetry::count(telemetry::Counter::CycleEventsDetected);
    return;
  }
  if (windowOpen_) {
    windowPeak_ = std::max(windowPeak_, peakRateNow_);
    if (peakRateNow_ < config_.lockRate) {
      windowOpen_ = false;
      pending_.durationSeconds = time_ - pending_.onsetSeconds;
      pending_.peakSlipRate = windowPeak_;
      double moment = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        moment += slip_[i] - slipAtOpen_[i];
      moment *= config_.mu * config_.cell * config_.cell;
      pending_.momentNm = moment;
      pending_.magnitude =
          moment > 0.0 ? (std::log10(moment) - 9.05) / 1.5 : 0.0;
      pending_.tauCloseNuc =
          tau_[pending_.nucI + config_.nx * pending_.nucK];
      pending_.digest = pending_.computeDigest();
      events_.push_back(pending_);
      summary_.eventsDetected = static_cast<int>(events_.size());
    }
  }
}

CycleRunSummary CycleSolver::run() {
  const double span = config_.years * kSecondsPerYear;
  while (summary_.steps < config_.stepCap) {
    const bool spanDone = time_ >= span;
    const bool capDone =
        config_.maxEvents > 0 &&
        static_cast<int>(events_.size()) >= config_.maxEvents;
    // Finish an in-flight event before stopping so the catalog never
    // carries a half-detected nucleation.
    if ((spanDone || capDone) && !windowOpen_) break;
    step();
  }
  return summary_;
}

}  // namespace awp::cycle
