#pragma once
// CycleSolver: the quasi-dynamic earthquake-sequence engine. A planar
// rate-and-state fault (aging law, src/rupture/rate_state.hpp) is loaded
// at the plate rate through the precomputed stiffness kernel; inertia is
// approximated by radiation damping η·V with η = μ/(2·cs) (Rice 1993;
// Ozawa et al., arXiv:2110.12165). Each step solves the strength balance
//   τ_i = (−σn_i)·f(V_i, θ_i) + η·V_i
// per node by a safeguarded Newton iteration in ln V (monotone: the
// damping term makes the balance strictly increasing), advances (τ, θ)
// with a midpoint rule, and picks the next dt adaptively — bounded
// fractional change of θ and of slip per L — so the step shrinks from
// years in the interseismic to fractions of a second coseismically.
// Event detection: peak slip rate crossing eventRate opens a window
// (snapshotting τ/σ/θ into a content-addressed CycleEvent at nucleation);
// dropping below lockRate closes (heals) it. Evolution is deterministic
// and seed-reproducible: pure double arithmetic in a fixed iteration
// order, heterogeneity drawn once from the seeded von Kármán field.
//
// Observability: CycleStep/CycleBridge telemetry phases, Cycle* counters,
// the "cycle.step" fault site (deterministic state perturbation absorbed
// by the adaptive stepper; stall caught by the heartbeat watchdog), and
// cycle_* runtime keys (core/runtime_config.hpp).

#include <cstdint>
#include <vector>

#include "core/runtime_config.hpp"
#include "cycle/catalog.hpp"
#include "cycle/kernel.hpp"
#include "health/watchdog.hpp"
#include "rupture/rate_state.hpp"

namespace awp::cycle {

struct CycleConfig {
  std::size_t nx = 96, nz = 32;  // fault nodes (strike x depth)
  double cell = 500.0;           // node spacing [m]
  double mu = 30.0e9;            // rigidity [Pa]
  double cs = 3464.0;            // shear speed [m/s]; η = μ/(2·cs)
  double vpl = 1.0e-9;           // plate loading rate [m/s] (~32 mm/yr)

  rupture::RateStateParams friction;  // velocity-weakening interior
  // Velocity-strengthening rim: `a` raised above b in the outer rimNodes
  // ring so events arrest before the grid edge (0 = no rim).
  double aStrengthened = 0.025;
  int rimNodes = 2;
  double sigma = 50.0e6;  // effective normal stress magnitude [Pa]

  // Seeded heterogeneity of the initial shear stress: a von Kármán field
  // scaled to heterogeneity·(b−a)·σ (0 = homogeneous; the spring-slider
  // tests want the clean analytic limit and a 1×1 grid draws no field).
  double heterogeneity = 0.3;
  double corrX = 8000.0, corrZ = 4000.0, hurst = 0.75;
  std::uint64_t seed = 1;
  // Uniform initial over-stress, in fractions of (b−a)·σ. Steady state at
  // the plate rate is an exact (unstable) equilibrium of the discrete
  // system; this deterministic kick moves every node off it so the
  // instability actually develops — essential for the homogeneous
  // spring-slider limit, harmless next to the heterogeneity field.
  double initialKick = 0.05;

  // Stiffness kernel (cycle/kernel.hpp): κ, χ, truncation radius.
  double loadingFactor = 0.1;
  double interaction = 0.25;
  int stencilRadius = 8;

  // Run span and event detection.
  double years = 600.0;
  int maxEvents = 0;          // stop after n closed events (0 = no cap)
  double eventRate = 1.0e-3;  // peak V opening an event window [m/s]
  double lockRate = 1.0e-5;   // peak V closing (healing) the window [m/s]

  // Adaptive stepping: dt = min over nodes of (epsTheta·θ/|θ̇|,
  // epsSlip·L/V, epsTau·a·σ/|τ̇|), clamped to [dtMin, dtMax]. The τ bound
  // keeps one step's stress change a fraction of the direct-effect scale
  // a·σ — without it a deeply locked node (θ̇ ≈ 1 allows a decade-long
  // step) can reload straight past its strength inside a single step.
  double epsTheta = 0.2, epsSlip = 0.2, epsTau = 0.2;
  double dtMin = 1.0e-4;
  double dtMax = 3.15e8;           // ~10 years
  std::uint64_t stepCap = 5'000'000;  // hard stop (wedged-run guard)

  // Observability: rank id for cycle.step fault attribution; optional
  // heartbeat board beaten once per step so a watchdog catches a wedged
  // stepping loop (not owned; may be null).
  int rank = 0;
  health::HeartbeatBoard* heartbeat = nullptr;

  static CycleConfig fromRuntime(const core::RuntimeConfig& rc);
};

struct CycleRunSummary {
  std::uint64_t steps = 0;
  double simulatedSeconds = 0.0;
  double peakSlipRate = 0.0;        // over the whole run [m/s]
  int eventsDetected = 0;           // closed windows
  std::uint64_t statePerturbs = 0;  // injected cycle.step perturbations
};

class CycleSolver {
 public:
  explicit CycleSolver(const CycleConfig& config);

  // Advance until the configured span (or the event cap) is reached; an
  // event window still open at span end is stepped to its close. Returns
  // the run summary; detected events accumulate in events().
  CycleRunSummary run();
  // One adaptive step (exposed for tests); returns the dt taken [s].
  double step();

  [[nodiscard]] const std::vector<CycleEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const CycleRunSummary& summary() const { return summary_; }
  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] double peakRate() const { return peakRateNow_; }
  [[nodiscard]] const std::vector<double>& tau() const { return tau_; }
  [[nodiscard]] const std::vector<double>& theta() const { return theta_; }
  [[nodiscard]] const std::vector<double>& slip() const { return slip_; }
  [[nodiscard]] const StiffnessKernel& kernel() const { return kernel_; }
  [[nodiscard]] const CycleConfig& config() const { return config_; }

 private:
  // Solve V at one node from the strength balance (Newton in ln V).
  double solveSlipRate(std::size_t n, double tau, double theta) const;
  // v/tauRate/thetaRate from a (tau, theta) state.
  void derivatives(const std::vector<double>& tau,
                   const std::vector<double>& theta, std::vector<double>& v,
                   std::vector<double>& tauRate,
                   std::vector<double>& thetaRate) const;
  [[nodiscard]] double pickDt(const std::vector<double>& v,
                              const std::vector<double>& theta,
                              const std::vector<double>& thetaRate,
                              const std::vector<double>& tauRate) const;
  void detectEvents();
  void consultFaultSite();

  CycleConfig config_;
  rupture::RateStateFriction friction_;
  StiffnessKernel kernel_;
  double eta_ = 0.0;  // radiation damping [Pa·s/m]

  std::vector<double> aNode_;   // direct-effect a per node (VS rim)
  std::vector<double> sigma_;   // compression magnitude per node [Pa]
  std::vector<double> tau_, theta_, v_, slip_;
  // Scratch for the midpoint rule (sized once; step() never allocates).
  std::vector<double> tauRate_, thetaRate_, tauHalf_, thetaHalf_, vHalf_,
      tauRate2_, thetaRate2_;
  mutable std::vector<double> lnvGuess_;  // warm-start Newton iterate

  double time_ = 0.0;
  double peakRateNow_ = 0.0;

  // Open event window.
  bool windowOpen_ = false;
  CycleEvent pending_;
  std::vector<double> slipAtOpen_;
  double windowPeak_ = 0.0;

  std::vector<CycleEvent> events_;
  CycleRunSummary summary_;
};

}  // namespace awp::cycle
