#include "cycle/kernel.hpp"

#include <cmath>

#include "util/error.hpp"

namespace awp::cycle {

StiffnessKernel::StiffnessKernel(const KernelConfig& config)
    : config_(config) {
  AWP_CHECK(config_.nx > 0 && config_.nz > 0);
  AWP_CHECK(config_.cell > 0.0 && config_.mu > 0.0);
  AWP_CHECK(config_.loadingFactor > 0.0 && config_.interaction >= 0.0);
  AWP_CHECK(config_.radius >= 0);
  kLoad_ = config_.loadingFactor * config_.mu / config_.cell;

  const int r = config_.radius;
  for (int dk = -r; dk <= r; ++dk)
    for (int di = -r; di <= r; ++di) {
      if (di == 0 && dk == 0) continue;
      const double d2 = static_cast<double>(di * di + dk * dk);
      if (d2 > static_cast<double>(r * r)) continue;
      const double dist = config_.cell * std::sqrt(d2);
      const double w = config_.interaction * config_.mu * config_.cell *
                       config_.cell / (dist * dist * dist);
      taps_.push_back({di, dk, w});
    }

  // Per-node self term: −(kLoad + in-bounds off-diagonal row sum). Row
  // sums shrink at the fault edges exactly as the in-bounds taps do, so
  // the uniform-slip mode unloads through kLoad at every node.
  const auto nx = static_cast<int>(config_.nx);
  const auto nz = static_cast<int>(config_.nz);
  self_.assign(config_.nx * config_.nz, 0.0);
  for (int k = 0; k < nz; ++k)
    for (int i = 0; i < nx; ++i) {
      double row = 0.0;
      for (const Tap& tap : taps_) {
        const int si = i + tap.di;
        const int sk = k + tap.dk;
        if (si < 0 || si >= nx || sk < 0 || sk >= nz) continue;
        row += tap.w;
      }
      self_[static_cast<std::size_t>(i + nx * k)] = -(kLoad_ + row);
    }
}

AWP_HOT void StiffnessKernel::stressingRate(const std::vector<double>& v,
                                            double vpl,
                                            std::vector<double>& out) const {
  const auto nx = static_cast<int>(config_.nx);
  const auto nz = static_cast<int>(config_.nz);
  for (int k = 0; k < nz; ++k)
    for (int i = 0; i < nx; ++i) {
      const auto n = static_cast<std::size_t>(i + nx * k);
      double rate = self_[n] * (v[n] - vpl);
      for (const Tap& tap : taps_) {
        const int si = i + tap.di;
        const int sk = k + tap.dk;
        if (si < 0 || si >= nx || sk < 0 || sk >= nz) continue;
        rate += tap.w * (v[static_cast<std::size_t>(si + nx * sk)] - vpl);
      }
      out[n] = rate;
    }
}

}  // namespace awp::cycle
