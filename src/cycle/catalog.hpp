#pragma once
// CycleEvent and CycleCatalog: the content-addressed products of the
// earthquake-cycle engine. Each nucleation the quasi-dynamic solver
// detects snapshots the fault's stress/state into a CycleEvent whose MD5
// digest is its identity — the same content-addressing discipline as
// ScenarioSpec/ArtifactBlob, so bridged rupture scenarios are hashed (and
// cached, and deduplicated by the fabric) per event. The catalog is the
// run's operator-facing report: one row per event carrying the detection
// summary plus the bridged scenario's spec hash and product digest, with
// a canonical byte encoding that excludes wall-clock so two reruns of one
// seed are bit-identical — the reproducibility gate of the chaos tests.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace awp::cycle {

struct CycleEvent {
  int index = 0;                 // 0-based detection order
  double onsetSeconds = 0.0;     // window open (peak V crossed eventRate)
  double durationSeconds = 0.0;  // open -> healed (peak V below lockRate)
  double peakSlipRate = 0.0;     // max over the window [m/s]
  double momentNm = 0.0;         // μ·cell²·Σ window slip
  double magnitude = 0.0;        // moment magnitude Mw
  std::size_t nucI = 0, nucK = 0;  // argmax-V node at onset
  double tauCloseNuc = 0.0;      // τ at the nucleation node when healed

  // Onset snapshot of the fault, node-major [i + nx*k] with row depth
  // (nz-1-k)·cell — the rupture solver's axis convention. σn is negative
  // (compression), ready for accommodation into a rupture initial stress.
  std::size_t nx = 0, nz = 0;
  double cell = 0.0;
  std::vector<double> tau;     // elastic shear stress [Pa]
  std::vector<double> sigmaN;  // effective normal stress [Pa]
  std::vector<double> theta;   // rate-and-state state variable [s]

  // MD5 of canonicalBytes(), filled by the solver at window close — the
  // event's content address, carried into the bridged spec's cycleDigest.
  std::string digest;

  // Canonical fixed-width little-endian encoding of the detection fields
  // and the snapshot (excludes `digest` itself).
  [[nodiscard]] std::vector<std::byte> canonicalBytes() const;
  [[nodiscard]] std::string computeDigest() const;
};

// One catalog row: detection summary + the fate of the bridged scenario.
struct CycleCatalogRow {
  int index = 0;
  double onsetSeconds = 0.0;
  double durationSeconds = 0.0;
  double magnitude = 0.0;
  double momentNm = 0.0;
  double peakSlipRate = 0.0;
  std::string eventDigest;    // CycleEvent content address
  std::string specHash;       // bridged ScenarioSpec identity
  std::string productDigest;  // fault_history blob MD5 ("" until completed)
  std::string phase;          // terminal phase name ("completed"/"failed")
  int completions = 0;        // settle deliveries (fabric dedup holds at 1)
};

struct CycleCatalog {
  // Run configuration echo (the seed is the whole catalog's provenance).
  std::size_t nx = 0, nz = 0;
  double cell = 0.0;
  double years = 0.0;
  std::uint64_t seed = 0;

  std::uint64_t steps = 0;    // adaptive solver steps taken
  double wallSeconds = 0.0;   // catalog wall time (NOT in canonical bytes)
  std::vector<CycleCatalogRow> rows;

  // Canonical encoding of everything deterministic (wallSeconds is
  // excluded): bit-identical across reruns of one seed, broker deaths
  // included.
  [[nodiscard]] std::vector<std::byte> canonicalBytes() const;
  [[nodiscard]] std::string digestHex() const;
};

// Render as JSON (schema "awp-cycle-catalog", version 1).
std::string toJson(const CycleCatalog& catalog);

// Validate rendered catalog text the way validateServiceReportJson
// validates the service report. Returns violations (empty = valid).
std::vector<std::string> validateCycleCatalogJson(const std::string& text);

}  // namespace awp::cycle
